package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// benchRegressTolerance is the fractional events_per_sec drop tolerated
// between two BENCH_*.json files before -bench-compare fails. Wall-clock
// throughput is machine-noisy; 10% separates drift worth blocking a merge
// over from run-to-run jitter. Alloc counts are exact and deterministic,
// so any growth at all fails.
const benchRegressTolerance = 0.10

// loadBenchReport reads and schema-checks one BENCH_*.json file.
func loadBenchReport(path string) (*BenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r BenchReport
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != benchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, r.Schema, benchSchema)
	}
	return &r, nil
}

// runBenchCompare diffs two benchmark-trajectory files and fails (non-nil
// error) on any >10%% events_per_sec regression or any allocs_per_run
// growth — the CI gate that keeps engine_dispatch from silently drifting
// again. Benchmarks present only in the new file are reported but never
// fail; benchmarks dropped from the new file do fail, since a silently
// vanished case is how a regression hides.
func runBenchCompare(oldPath, newPath string) error {
	oldRep, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}

	newBy := make(map[string]BenchResult, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		newBy[b.Name] = b
	}

	fmt.Printf("bench-compare %s -> %s\n", oldPath, newPath)
	fmt.Printf("%-42s %14s %14s %8s %10s %10s\n",
		"benchmark", "old ev/s", "new ev/s", "delta", "old allocs", "new allocs")

	var failures []string
	seen := make(map[string]bool, len(oldRep.Benchmarks))
	for _, o := range oldRep.Benchmarks {
		seen[o.Name] = true
		n, ok := newBy[o.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in %s but missing from %s", o.Name, oldPath, newPath))
			continue
		}
		delta := 0.0
		if o.EventsPerSec > 0 {
			delta = n.EventsPerSec/o.EventsPerSec - 1
		}
		mark := ""
		if o.EventsPerSec > 0 && delta < -benchRegressTolerance {
			mark = "  REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: events_per_sec %.0f -> %.0f (%.1f%%, tolerance -%.0f%%)",
				o.Name, o.EventsPerSec, n.EventsPerSec, 100*delta, 100*benchRegressTolerance))
		}
		if n.AllocsPerRun > o.AllocsPerRun {
			mark += "  ALLOC GROWTH"
			failures = append(failures, fmt.Sprintf("%s: allocs_per_run %d -> %d (any growth fails)",
				o.Name, o.AllocsPerRun, n.AllocsPerRun))
		}
		fmt.Printf("%-42s %14.0f %14.0f %+7.1f%% %10d %10d%s\n",
			o.Name, o.EventsPerSec, n.EventsPerSec, 100*delta, o.AllocsPerRun, n.AllocsPerRun, mark)
	}
	for _, n := range newRep.Benchmarks {
		if !seen[n.Name] {
			fmt.Printf("%-42s %14s %14.0f %8s %10s %10d  (new)\n",
				n.Name, "-", n.EventsPerSec, "-", "-", n.AllocsPerRun)
		}
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "gsbench: bench-compare:", f)
		}
		return fmt.Errorf("%d regression(s)", len(failures))
	}
	fmt.Println("bench-compare: ok (no >10% throughput regression, no alloc growth)")
	return nil
}
