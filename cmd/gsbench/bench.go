package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/sim"
	"repro/internal/units"
)

// benchSchema versions the BENCH_*.json layout so downstream tooling can
// detect format changes.
const benchSchema = "gsbench-bench/v1"

// BenchResult is one benchmark's record in the -bench-json output. Events
// and allocation counts are exact and deterministic for a given build; the
// wall-clock figures (wall_ns, ns_per_event, events_per_sec, sim_x_real)
// vary with the machine and are the trajectory the file exists to track.
type BenchResult struct {
	Name         string  `json:"name"`
	Events       uint64  `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	NSPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	AllocsPerRun uint64  `json:"allocs_per_run"`
	BytesPerRun  uint64  `json:"bytes_per_run"`
	SimXReal     float64 `json:"sim_x_real"`
}

// BenchReport is the top-level -bench-json document.
type BenchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchCases is the fixed trajectory suite: the paper's central condition
// under both competitor CCAs, the BBR-starved shallow-queue cell, a solo
// baseline, and the deep-queue AQM variant — one full-fidelity trace each,
// with fixed seeds so events and allocs are reproducible run to run.
var benchCases = []struct {
	name string
	cfg  experiment.RunConfig
}{
	{"single_run_stadia_cubic_B25_q2", experiment.RunConfig{
		Condition: experiment.Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2},
		Seed:      1,
	}},
	{"single_run_stadia_bbr_B25_q2", experiment.RunConfig{
		Condition: experiment.Condition{System: gamestream.Stadia, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 2},
		Seed:      1,
	}},
	{"single_run_luna_bbr_B25_q0.5", experiment.RunConfig{
		Condition: experiment.Condition{System: gamestream.Luna, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 0.5},
		Seed:      1,
	}},
	{"single_run_geforce_solo_B15_q2", experiment.RunConfig{
		Condition: experiment.Condition{System: gamestream.GeForce, Capacity: units.Mbps(15), QueueMult: 2},
		Seed:      1,
	}},
	{"single_run_stadia_cubic_B25_q7_codel", experiment.RunConfig{
		Condition: experiment.Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 7, AQM: experiment.AQMCoDel},
		Seed:      1,
	}},
	{"many_flows_200", experiment.RunConfig{
		Condition:  experiment.Condition{System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2},
		Population: experiment.FlowPopulation{Flows: 200},
		Seed:       1,
	}},
}

// benchReps is how many times each case is measured; the fastest rep is
// reported. Events and allocs are deterministic so any rep carries them;
// taking the minimum wall time filters scheduler and cache noise that a
// single-shot measurement passes straight into the trajectory file — and
// from there into spurious bench-compare regressions.
const benchReps = 3

// measureBest measures fn benchReps times and keeps the fastest rep.
func measureBest(fn func() (events uint64, simTime time.Duration)) BenchResult {
	best := measure(fn)
	for i := 1; i < benchReps; i++ {
		if r := measure(fn); r.WallNS < best.WallNS {
			best = r
		}
	}
	return best
}

// measure runs fn once and returns wall time plus the goroutine-local
// allocation deltas. A GC up front keeps dead objects from a previous case
// out of this case's numbers.
func measure(fn func() (events uint64, simTime time.Duration)) BenchResult {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	events, simTime := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	r := BenchResult{
		Events:       events,
		WallNS:       wall.Nanoseconds(),
		AllocsPerRun: after.Mallocs - before.Mallocs,
		BytesPerRun:  after.TotalAlloc - before.TotalAlloc,
	}
	if events > 0 {
		r.NSPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	if wall > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
		r.SimXReal = simTime.Seconds() / wall.Seconds()
	}
	return r
}

// runBenchJSON executes the trajectory suite and writes the report to path.
func runBenchJSON(path string) error {
	report := BenchReport{
		Schema:    benchSchema,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}

	// Engine microbenchmark: raw schedule+dispatch throughput with a
	// reused closure, the figure that bounds every number below.
	const microEvents = 2_000_000
	micro := measureBest(func() (uint64, time.Duration) {
		e := sim.NewEngine(1)
		n := 0
		var fn func()
		fn = func() {
			n++
			if n < microEvents {
				e.Schedule(time.Microsecond, fn)
			}
		}
		e.Schedule(time.Microsecond, fn)
		e.Run(sim.End)
		return e.Stats().EventsDispatched, e.Stats().SimTime.Duration()
	})
	micro.Name = "engine_dispatch"
	micro.SimXReal = 0 // virtual microseconds per event; speedup is meaningless here
	report.Benchmarks = append(report.Benchmarks, micro)

	for _, bc := range benchCases {
		cfg := bc.cfg
		r := measureBest(func() (uint64, time.Duration) {
			res := experiment.Run(cfg)
			return res.Engine.EventsDispatched, res.Engine.SimTime.Duration()
		})
		r.Name = bc.name
		report.Benchmarks = append(report.Benchmarks, r)
		fmt.Fprintf(os.Stderr, "gsbench: bench %-40s %9d events  %7.1f ns/event  %8d allocs\n",
			r.Name, r.Events, r.NSPerEvent, r.AllocsPerRun)
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
