// Command gsbench regenerates the paper's tables and figures from the
// simulated testbed. Each experiment runs the sweep it needs (sharing runs
// where tables come from the same traces) and prints the same rows/series
// the paper reports.
//
// Usage:
//
//	gsbench -exp all                     # everything, full fidelity
//	gsbench -exp table4 -iters 5         # one table, fewer runs
//	gsbench -exp figure2 -scale 0.2      # compressed timeline
//	gsbench -exp figure3 -aqm fq_codel   # future-work AQM variant
//	gsbench -exp all -progress -runlog runs.jsonl
//	gsbench -exp all -cache runs.cache   # incremental: re-runs replay hits
//	gsbench -bench-json BENCH_3.json     # benchmark-trajectory suite only
//
// Ctrl-C cancels the in-progress sweep: in-flight runs drain, tables
// rendered from the partial data mark missing cells with "-", and the
// remaining experiments are skipped. With -cache, completed runs are
// already stored, so re-invoking the same command executes only the
// missing ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/runcache"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table1|figure2|figure3|figure4|table3|table4|table5|loss|harm|mix|flowcount|aqmcmp|ablation|responserecovery|qoe|summary|all")
		iters   = flag.Int("iters", 15, "iterations per condition (paper: 15)")
		scale   = flag.Float64("scale", 1.0, "timeline compression factor (1.0 = full 9-minute traces)")
		workers = flag.Int("workers", experiment.DefaultWorkers(), "parallel runs")
		aqm     = flag.String("aqm", experiment.AQMDropTail, "bottleneck queue discipline: droptail|codel|fq_codel")
		saveDir = flag.String("save", "", "save materialised sweeps into this directory")
		loadDir = flag.String("load", "", "load previously saved sweeps from this directory")

		cacheDir   = flag.String("cache", "", "content-addressed run cache directory (created if missing); repeated campaigns replay hits instead of re-running")
		cacheStats = flag.Bool("cache-stats", false, "print run-cache hit/miss/store counters to stderr on exit")

		progress   = flag.Bool("progress", false, "print live sweep progress to stderr")
		runlog     = flag.String("runlog", "", "write one JSONL record per completed run to this file (truncates)")
		telAddr    = flag.String("telemetry-addr", "", "serve live campaign telemetry over HTTP at this address (e.g. :9300): /metrics is Prometheus text, /snapshot JSON")
		telOut     = flag.String("telemetry-out", "", "write the final telemetry snapshot (metric sketches + health) to this JSON file")
		telLog     = flag.String("telemetry-log", "", "append the JSONL health timeline (progress, cache hit rate, events/sec drift) to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		benchJSON    = flag.String("bench-json", "", "run the fixed benchmark-trajectory suite and write BENCH_*.json to this path, then exit")
		benchCompare = flag.String("bench-compare", "", "diff this BENCH_*.json baseline against the file given as the positional arg; exit 1 on >10% events_per_sec regression or any allocs_per_run growth")

		probeOn       = flag.Bool("probe", false, "attach CC/queue instrumentation to every run")
		probeInterval = flag.Duration("probe-interval", 100*time.Millisecond, "probe sampling interval (0 = snapshot on every ACK)")
		events        = flag.Int("events", 0, "packet lifecycle event ring capacity per run (0 = off)")
		probeDir      = flag.String("probe-out", "probes", "directory receiving per-run probe exports")

		loss     = flag.String("loss", "", `downlink loss sweep axis, |-separated: "1%|ge:p=0.01,r=0.25"`)
		jitter   = flag.Duration("jitter", 0, "downlink delay jitter applied to every impairment profile")
		reorder  = flag.Bool("reorder", false, "allow jitter to reorder packets instead of clamping")
		dup      = flag.String("dup", "", `downlink duplicate probability applied to every profile: "1%" or "0.01"`)
		schedule = flag.String("schedule", "", `mid-run retuning program applied to every run, e.g. "60s rate=10mbit; 120s down; 121s up"`)
	)
	flag.Parse()

	impairments, sched, err := parseImpairFlags(*loss, *jitter, *reorder, *dup, *schedule)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsbench:", err)
		os.Exit(1)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench: bench-json:", err)
			os.Exit(1)
		}
		return
	}

	if *benchCompare != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "gsbench: usage: gsbench -bench-compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := runBenchCompare(*benchCompare, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench: bench-compare:", err)
			os.Exit(1)
		}
		return
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	opts := figures.Options{
		Iterations:  *iters,
		TimeScale:   *scale,
		Workers:     *workers,
		AQM:         *aqm,
		Impairments: impairments,
		Schedule:    sched,
	}
	var cache *runcache.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = runcache.Open(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench:", err)
			os.Exit(1)
		}
		opts.Cache = cache
	}
	if *probeOn {
		opts.Probe = &probe.Config{Interval: *probeInterval, Events: *events}
		if *probeInterval == 0 {
			opts.Probe.PerAck = true
		}
		opts.ProbeDir = *probeDir
	}
	if *progress {
		opts.Progress = obs.NewPrinter(os.Stderr)
	}
	if *runlog != "" {
		f, err := os.Create(*runlog)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gsbench:", err)
			os.Exit(1)
		}
		// Unbuffered on purpose: one small write per completed run keeps
		// the log tail-able while the campaign executes.
		defer f.Close()
		opts.RunLog = obs.NewJSONL(f)
	}
	if *telAddr != "" || *telOut != "" || *telLog != "" {
		opts.Telemetry = obs.NewAggregator()
		if *telLog != "" {
			f, err := os.OpenFile(*telLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gsbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			opts.Telemetry.Timeline = f
		}
		if *telAddr != "" {
			srv, err := obs.ServeTelemetry(*telAddr, opts.Telemetry)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gsbench:", err)
				os.Exit(1)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "gsbench: telemetry at http://%s/ (/metrics, /snapshot)\n", srv.Addr())
		}
		if *telOut != "" {
			out := *telOut
			ag := opts.Telemetry
			defer func() {
				if err := obs.WriteSnapshot(out, ag.Snapshot()); err != nil {
					fmt.Fprintln(os.Stderr, "gsbench:", err)
				} else {
					fmt.Fprintf(os.Stderr, "gsbench: telemetry snapshot written to %s\n", out)
				}
			}()
		}
	}
	c := figures.NewCampaign(opts)
	c.SetContext(ctx)

	if *loadDir != "" {
		if err := c.Load(*loadDir); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench: load:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	run := func(name string) {
		switch name {
		case "table1":
			fmt.Println(c.Table1())
		case "figure2":
			panels := c.Figure2()
			var names []string
			for n := range panels {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("## Figure 2 panel: %s (25 Mb/s)\n%s\n", n, panels[n])
			}
		case "figure3":
			for _, h := range c.Figure3() {
				fmt.Println(h)
			}
		case "figure4":
			fmt.Println(c.Figure4Table())
		case "table3":
			fmt.Println(c.Table3())
		case "table4":
			fmt.Println(c.Table4())
		case "table5":
			fmt.Println(c.Table5())
		case "loss":
			fmt.Println(c.LossTables())
		case "harm":
			fmt.Println(c.HarmTable())
		case "mix":
			fmt.Println(c.MixTable())
		case "flowcount":
			fmt.Println(c.FlowCountTable())
		case "aqmcmp":
			fmt.Println(c.AQMTable())
		case "ablation":
			fmt.Println(c.AblationTable())
		case "responserecovery":
			fmt.Println(c.ResponseRecoveryTable())
		case "qoe":
			fmt.Println(c.QoETable())
		case "summary":
			fmt.Println(c.Summary())
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
	}

	names := []string{
		"table1", "figure2", "figure3", "figure4",
		"table3", "table4", "table5", "loss",
		"responserecovery", "summary",
	}
	if *exp != "all" {
		// Comma-separated experiments share one campaign (one set of
		// sweeps) within this process.
		names = strings.Split(*exp, ",")
	}
	for _, name := range names {
		run(strings.TrimSpace(name))
		if c.Interrupted() {
			fmt.Fprintln(os.Stderr, "gsbench: interrupted — results above are partial; skipping remaining experiments")
			break
		}
	}
	if *saveDir != "" {
		if err := c.Save(*saveDir); err != nil {
			fmt.Fprintln(os.Stderr, "gsbench: save:", err)
			os.Exit(1)
		}
	}
	if *cacheStats && cache != nil {
		fmt.Fprintf(os.Stderr, "gsbench: cache %s: %s\n", cache.Dir(), cache.Stats())
	}
	fmt.Fprintf(os.Stderr, "gsbench: done in %v (iters=%d scale=%g workers=%d aqm=%s)\n",
		time.Since(start), *iters, *scale, *workers, *aqm)
}

// parseImpairFlags builds the impairment sweep axis from the CLI flags. The
// -loss axis is |-separated (GE specs contain commas); -jitter/-reorder/-dup
// apply to every profile on the axis. Jitter/dup/schedule without -loss
// yield a single lossless impaired profile.
func parseImpairFlags(loss string, jitter time.Duration, reorder bool, dup, schedule string) ([]netem.Impairment, []experiment.ScheduleStep, error) {
	base := netem.Impairment{Jitter: jitter, Reorder: reorder}
	if dup != "" {
		p, err := experiment.ParseProb(dup)
		if err != nil {
			return nil, nil, fmt.Errorf("-dup: %v", err)
		}
		base.Duplicate = p
	}
	var imps []netem.Impairment
	if loss != "" {
		for _, spec := range strings.Split(loss, "|") {
			im := base
			if err := experiment.ParseLoss(strings.TrimSpace(spec), &im); err != nil {
				return nil, nil, err
			}
			imps = append(imps, im)
		}
	} else if base.Enabled() {
		imps = []netem.Impairment{base}
	}
	sched, err := experiment.ParseSchedule(schedule)
	if err != nil {
		return nil, nil, err
	}
	return imps, sched, nil
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsbench:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "gsbench:", err)
	}
}
