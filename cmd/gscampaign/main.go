// Command gscampaign coordinates sharded measurement campaigns. It expands
// a campaign spec (a grid over the paper's axes, or Monte-Carlo draws from
// empirical rate/RTT/queue distributions) into a deterministic cell list,
// partitions it into shards, and executes the shards through the shared
// content-addressed run cache — either entirely in-process or across a
// fleet of worker processes that claim shards via lease files in the
// campaign directory.
//
// The coordinator spawns the workers (this binary re-executing itself with
// -worker), sweeps up anything they leave behind, and merges the per-shard
// telemetry snapshots in shard order, so the merged deterministic JSON is
// byte-identical however many workers ran and however many of them crashed.
// A SIGKILL'd worker loses at most the uncached runs of its in-flight
// shard; -resume re-expands the manifest and executes only missing shards.
//
// Usage:
//
//	gscampaign -spec paper.campaign -dir camp -workers 4
//	gscampaign -dir camp -status
//	gscampaign -dir camp -resume
//	gsreport -campaign camp
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/campaign"
	"repro/internal/figures"
	"repro/internal/runcache"
)

func main() {
	var (
		specPath = flag.String("spec", "", "campaign spec file; omit with -resume/-status/-worker to adopt the directory's campaign")
		dir      = flag.String("dir", "", "campaign directory: manifest, shard claims/outputs, merged artefacts (required)")
		cacheDir = flag.String("cache", "", "shared run cache directory (default <dir>/cache); all workers must use the same one")
		workers  = flag.Int("workers", 0, "worker processes to spawn; 0 executes every shard in-process")
		lease    = flag.Duration("lease", campaign.DefaultLease, "shard claim lease; a crashed worker's shard is re-claimed after this expires")
		poll     = flag.Duration("poll", campaign.DefaultPoll, "idle wait between shard scans when all unfinished shards are claimed")
		resume   = flag.Bool("resume", false, "resume an initialised campaign directory, executing only missing shards")
		status   = flag.Bool("status", false, "print shard completion for the campaign directory and exit")
		worker   = flag.Bool("worker", false, "run as a single worker over an initialised directory (what -workers children execute)")
		owner    = flag.String("owner", "", "worker claim owner name (default w-<pid>)")
		ignore   = flag.Bool("ignore-claims", false, "skip claim files so this worker races others on every shard (cache-contention testing)")
		quiet    = flag.Bool("quiet", false, "suppress per-shard progress lines")
	)
	flag.Parse()

	if *dir == "" {
		fmt.Fprintln(os.Stderr, "gscampaign: -dir is required")
		os.Exit(2)
	}
	if err := run(*specPath, *dir, *cacheDir, *workers, *lease, *poll, *resume, *status, *worker, *owner, *ignore, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "gscampaign:", err)
		os.Exit(1)
	}
}

func run(specPath, dir, cacheDir string, workers int, lease, poll time.Duration, resume, status, worker bool, owner string, ignore, quiet bool) error {
	if status {
		return printStatus(dir)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cacheDir == "" {
		cacheDir = filepath.Join(dir, "cache")
	}
	cache, err := runcache.Open(cacheDir)
	if err != nil {
		return err
	}

	var sp *campaign.Spec
	if specPath != "" {
		if sp, err = campaign.ParseSpecFile(specPath); err != nil {
			return err
		}
	}

	log := os.Stderr
	var logw *os.File
	if !quiet {
		logw = log
	}

	if worker {
		// Worker mode: adopt the directory's campaign and run shards until
		// none are missing. The coordinator initialised the directory before
		// spawning us, so a missing manifest is an error, not a race.
		m, msp, err := campaign.Init(dir, sp, true)
		if err != nil {
			return err
		}
		if owner == "" {
			owner = fmt.Sprintf("w-%d", os.Getpid())
		}
		w := &campaign.Worker{
			Dir: dir, Manifest: m, Spec: msp, Cache: cache,
			Owner: owner, Lease: lease, Poll: poll, IgnoreClaims: ignore,
		}
		if logw != nil {
			w.Log = logw
		}
		before := cache.Stats()
		n, err := w.Run(ctx)
		delta := cache.Stats().Sub(before)
		fmt.Fprintf(log, "worker %s: published %d shards; cache: %s\n", owner, n, delta)
		return err
	}

	o := campaign.Options{
		Dir: dir, Cache: cache, Workers: workers,
		Resume: resume, Lease: lease, Poll: poll, IgnoreClaims: ignore,
	}
	if logw != nil {
		o.Log = logw
	}
	if workers > 0 {
		exe, err := os.Executable()
		if err != nil {
			return fmt.Errorf("cannot re-execute for -workers: %w", err)
		}
		o.Spawn = func(ctx context.Context, i int) *exec.Cmd {
			args := []string{
				"-worker", "-dir", dir, "-cache", cacheDir,
				"-owner", fmt.Sprintf("w%d-%d", i, os.Getpid()),
				"-lease", lease.String(), "-poll", poll.String(),
			}
			if ignore {
				args = append(args, "-ignore-claims")
			}
			if quiet {
				args = append(args, "-quiet")
			}
			cmd := exec.CommandContext(ctx, exe, args...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			return cmd
		}
	}

	res, err := campaign.Run(ctx, sp, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(log, "campaign %s (%s) merged: %s\n", res.Manifest.Name, res.Manifest.ID, res.SnapPath)
	fmt.Fprintf(log, "deterministic telemetry: %s\nmerged runlog: %s\n", res.DetPath, res.RunlogPath)
	figures.RenderTelemetry(os.Stdout, dir, res.Snapshot)
	return nil
}

// printStatus reports per-shard completion without touching any claims.
func printStatus(dir string) error {
	m, _, err := campaign.ReadManifest(dir)
	if err != nil {
		return err
	}
	done, n := campaign.Status(dir, m)
	fmt.Printf("campaign %s (%s): %d runs in %d shards of ≤%d\n", m.Name, m.ID, m.Total, m.Shards, m.ShardSize)
	fmt.Printf("done: %d/%d\n", n, m.Shards)
	for i, d := range done {
		mark := "missing"
		if d {
			mark = "done"
		} else if info, ok, err := runcache.ReadClaim(campaign.ClaimPath(dir, i)); err == nil && ok {
			mark = "claimed by " + info.Owner
			if info.Expired(time.Now()) {
				mark += fmt.Sprintf(" (lease expired %.0fs ago)", time.Since(time.Unix(0, info.Expires)).Seconds())
			}
		}
		fmt.Printf("  shard %04d  %s\n", i, mark)
	}
	return nil
}
