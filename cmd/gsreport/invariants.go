package main

import (
	"fmt"

	"repro/internal/figures"
	"repro/internal/scenario"
)

// reportInvariants renders a chaos campaign report JSON (written by
// gssim -chaos -invariants-out) as the per-invariant verdict table, with
// reproduction details for every recorded violation.
func reportInvariants(path string) error {
	rep, err := scenario.LoadReport(path)
	if err != nil {
		return err
	}
	fmt.Print(figures.InvariantTable(rep))
	for _, inv := range rep.Invariants {
		for _, v := range inv.ViolationList {
			fmt.Printf("%s: run %d (seed %d): %s\n", inv.Name, v.Run, v.Seed, v.Detail)
		}
	}
	if rep.Passed() {
		fmt.Printf("all invariants held over %d runs\n", rep.Runs)
	} else {
		fmt.Printf("%d violation(s); reproduce a run with its seed: the campaign is a pure function of (seed, runs, scale)\n", rep.Violations)
	}
	return nil
}
