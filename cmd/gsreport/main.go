// Command gsreport reads artefacts produced by gssim and recomputes the
// paper's derived measures offline. In its default mode it parses a trace
// CSV and reports original/adjusted bitrates, response and recovery times,
// adaptiveness inputs, fairness ratio, and RTT/frame rate summaries. With
// -runlog it instead aggregates a JSONL run log (written by gssim -sweep
// or gsbench) per condition — including interrupted, partial campaigns.
// With -telemetry it renders quantiles-with-CI tables for every paper
// metric from a persisted sketch snapshot (gssim/gsbench -telemetry-out)
// alone — no per-run data needed, however large the campaign was.
// With -campaign it reports a gscampaign directory: shard completion from
// the manifest, then the merged campaign's telemetry tables.
// With -cc / -queue it summarises probe exports (gssim -probe): per-flow
// cwnd-vs-time and per-queue depth-vs-time with terminal sparklines.
// This separates data collection from analysis the way the paper's
// Wireshark-then-scripts pipeline did.
//
// Usage:
//
//	gssim -system luna -cca bbr > trace.csv
//	gsreport -capacity 25 trace.csv
//
//	gssim -sweep -runlog runs.jsonl
//	gsreport -runlog runs.jsonl
//
//	gssim -sweep -telemetry-out telemetry.json
//	gsreport -telemetry telemetry.json
//
//	gscampaign -spec paper.campaign -dir camp -workers 4
//	gsreport -campaign camp
//
//	gssim -cca cubic,bbr -probe -probe-out demo
//	gsreport -cc demo.cc.csv -queue demo.queue.csv
//
//	gssim -chaos -invariants-out campaign.json
//	gsreport -invariants campaign.json
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	capacity := flag.Float64("capacity", 25, "bottleneck capacity in Mb/s (for the fairness ratio)")
	flowStart := flag.Float64("flow-start", 185, "competing flow arrival (s)")
	flowStop := flag.Float64("flow-stop", 370, "competing flow departure (s)")
	runlog := flag.String("runlog", "", "aggregate a JSONL run log instead of a trace CSV")
	telemetry := flag.String("telemetry", "", "render quantiles-with-CI tables from a telemetry snapshot (gssim/gsbench -telemetry-out)")
	campaignDir := flag.String("campaign", "", "render a gscampaign directory: shard status plus the merged telemetry tables")
	ccPath := flag.String("cc", "", "summarise a probe cc.csv export (cwnd-vs-time per flow)")
	queuePath := flag.String("queue", "", "summarise a probe queue.csv export (depth-vs-time per queue)")
	dropsPath := flag.String("drops", "", "summarise a probe drops.csv export as loss episodes")
	dropsGap := flag.Duration("drops-gap", 100*time.Millisecond, "gap that separates two loss episodes in -drops mode")
	invariants := flag.String("invariants", "", "render a chaos campaign report (gssim -chaos -invariants-out) as a per-invariant verdict table")
	flag.Parse()

	if *invariants != "" {
		if err := reportInvariants(*invariants); err != nil {
			fmt.Fprintln(os.Stderr, "gsreport:", err)
			os.Exit(1)
		}
		return
	}
	if *campaignDir != "" {
		if err := reportCampaign(*campaignDir); err != nil {
			fmt.Fprintln(os.Stderr, "gsreport:", err)
			os.Exit(1)
		}
		return
	}
	if *telemetry != "" {
		if err := reportTelemetry(*telemetry); err != nil {
			fmt.Fprintln(os.Stderr, "gsreport:", err)
			os.Exit(1)
		}
		return
	}
	if *runlog != "" {
		if err := reportRunLog(*runlog); err != nil {
			fmt.Fprintln(os.Stderr, "gsreport:", err)
			os.Exit(1)
		}
		return
	}
	if *ccPath != "" || *queuePath != "" || *dropsPath != "" {
		if *ccPath != "" {
			if err := reportCC(*ccPath); err != nil {
				fmt.Fprintln(os.Stderr, "gsreport:", err)
				os.Exit(1)
			}
		}
		if *queuePath != "" {
			if err := reportQueue(*queuePath); err != nil {
				fmt.Fprintln(os.Stderr, "gsreport:", err)
				os.Exit(1)
			}
		}
		if *dropsPath != "" {
			if err := reportDrops(*dropsPath, *dropsGap); err != nil {
				fmt.Fprintln(os.Stderr, "gsreport:", err)
				os.Exit(1)
			}
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsreport [flags] trace.csv  |  gsreport -runlog runs.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsreport:", err)
		os.Exit(1)
	}
	defer f.Close()

	cols, err := readCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsreport:", err)
		os.Exit(1)
	}
	tcol, ok := cols["t_sec"]
	if !ok || len(tcol) < 2 {
		fmt.Fprintln(os.Stderr, "gsreport: trace has no t_sec column")
		os.Exit(1)
	}
	bin := time.Duration((tcol[1] - tcol[0]) * float64(time.Second))
	tl := metrics.Timeline{
		FlowStart: time.Duration(*flowStart * float64(time.Second)),
		FlowStop:  time.Duration(*flowStop * float64(time.Second)),
		TraceEnd:  time.Duration(tcol[len(tcol)-1]*float64(time.Second)) + bin,
	}

	game := metrics.Series{Bin: bin, V: cols["game_mbps"]}
	tcp := metrics.Series{Bin: bin, V: cols["tcp_mbps"]}

	rr := metrics.MeasureResponseRecovery(game, tl)
	ff, ft := tl.FairnessWindow()
	g := game.MeanBetween(ff, ft)
	t := tcp.MeanBetween(ff, ft)

	fmt.Printf("trace: %s (%d bins of %v)\n", flag.Arg(0), len(tcol), bin)
	fmt.Printf("original bitrate:   %6.1f Mb/s\n", rr.OriginalMbs)
	fmt.Printf("contended bitrate:  %6.1f Mb/s (tcp %.1f Mb/s)\n", rr.AdjustedMbs, t)
	fmt.Printf("fairness ratio:     %+6.2f\n", metrics.FairnessRatio(g, t, *capacity))
	fmt.Printf("response time:      %6.1f s (settled=%v)\n", rr.Response.Seconds(), rr.Responded)
	fmt.Printf("recovery time:      %6.1f s (settled=%v)\n", rr.Recovery.Seconds(), rr.Recovered)

	transient := (*flowStop - *flowStart) / 5
	if rtt := window(cols["rtt_ms"], tcol, *flowStart+transient, *flowStop); len(rtt) > 0 {
		s := stats.Summarize(nonzero(rtt))
		fmt.Printf("RTT (contention):   %6.1f ms (sd %.1f)\n", s.Mean, s.StdDev)
	}
	if fps := window(cols["fps"], tcol, *flowStart+transient, *flowStop); len(fps) > 0 {
		s := stats.Summarize(fps)
		fmt.Printf("frame rate:         %6.1f f/s (sd %.1f)\n", s.Mean, s.StdDev)
	}
	if loss := window(cols["game_loss"], tcol, *flowStart+transient, *flowStop); len(loss) > 0 {
		fmt.Printf("game loss:          %6.3f %%\n", 100*stats.Mean(loss))
	}
}

// reportRunLog aggregates a JSONL run log per condition: run counts, mean
// headline metrics, and the engine's aggregate throughput — a campaign
// health check that works on partial (interrupted) logs too.
func reportRunLog(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadJSONL(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s: no records", path)
	}

	type agg struct {
		n                         int
		game, tcp, fair, rtt, fps stats.Accumulator
		events                    uint64
		wall                      float64
		lossDrops, flapDrops      int
		flaps                     int
		downS                     float64
		impaired                  int
		cached                    int
		populated                 int
		flowSpec                  string
		jain, tputP50, rttInfl    stats.Accumulator
		starved                   int
	}
	byCond := map[string]*agg{}
	var totalEvents uint64
	var totalWall float64
	totalCached := 0
	anyImpaired := false
	anyFlows := false
	for _, r := range recs {
		a := byCond[r.Cond]
		if a == nil {
			a = &agg{}
			byCond[r.Cond] = a
		}
		a.n++
		a.game.Add(r.GameMbps)
		a.tcp.Add(r.TCPMbps)
		a.fair.Add(r.Fairness)
		a.rtt.Add(r.RTTMs)
		a.fps.Add(r.FPS)
		a.events += r.Engine.Events
		a.wall += r.Engine.WallSeconds
		totalEvents += r.Engine.Events
		totalWall += r.Engine.WallSeconds
		if r.Cached {
			a.cached++
			totalCached++
		}
		if r.Impair != nil {
			anyImpaired = true
			a.impaired++
			a.lossDrops += r.Impair.LossDrops
			a.flapDrops += r.Impair.FlapDrops
			a.flaps += r.Impair.Flaps
			a.downS += r.Impair.DownSeconds
		}
		if r.Flows != nil {
			anyFlows = true
			a.populated++
			a.flowSpec = r.Flows.Spec
			a.jain.Add(r.Flows.Jain)
			a.tputP50.Add(r.Flows.TputP50)
			a.rttInfl.Add(r.Flows.RTTInflP50)
			a.starved += r.Flows.Starved
		}
	}

	var conds []string
	for c := range byCond {
		conds = append(conds, c)
	}
	sort.Strings(conds)

	fmt.Printf("run log: %s (%d runs, %d conditions)\n", path, len(recs), len(conds))
	if totalCached > 0 {
		fmt.Printf("cache: %d of %d runs served from the run cache (%.1f%%)\n",
			totalCached, len(recs), 100*float64(totalCached)/float64(len(recs)))
	}
	fmt.Printf("%-28s %5s %10s %10s %9s %8s %7s\n",
		"condition", "runs", "game Mb/s", "tcp Mb/s", "fairness", "rtt ms", "fps")
	for _, c := range conds {
		a := byCond[c]
		fmt.Printf("%-28s %5d %10.1f %10.1f %+9.2f %8.1f %7.1f\n",
			c, a.n, a.game.Mean(), a.tcp.Mean(), a.fair.Mean(), a.rtt.Mean(), a.fps.Mean())
	}
	if anyImpaired {
		fmt.Printf("\nimpairments (totals across runs):\n")
		fmt.Printf("%-28s %5s %10s %10s %6s %8s\n",
			"condition", "runs", "loss drops", "flap drops", "flaps", "down s")
		for _, c := range conds {
			a := byCond[c]
			if a.impaired == 0 {
				continue
			}
			fmt.Printf("%-28s %5d %10d %10d %6d %8.1f\n",
				c, a.impaired, a.lossDrops, a.flapDrops, a.flaps, a.downS)
		}
	}
	if anyFlows {
		fmt.Printf("\nflow populations (means across runs; starved is a total):\n")
		fmt.Printf("%-28s %5s %-32s %6s %9s %9s %8s\n",
			"condition", "runs", "population", "jain", "tput p50", "rtt infl", "starved")
		for _, c := range conds {
			a := byCond[c]
			if a.populated == 0 {
				continue
			}
			fmt.Printf("%-28s %5d %-32s %6.3f %9.2f %9.2f %8d\n",
				c, a.populated, a.flowSpec, a.jain.Mean(), a.tputP50.Mean(), a.rttInfl.Mean(), a.starved)
		}
	}
	if totalWall > 0 {
		fmt.Printf("engine: %d events in %.1fs wall across runs = %.3g events/s\n",
			totalEvents, totalWall, float64(totalEvents)/totalWall)
	}
	return nil
}

// readCSV parses a headered numeric CSV into named columns.
func readCSV(f *os.File) (map[string][]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("empty file")
	}
	headers := strings.Split(strings.TrimSpace(sc.Text()), ",")
	cols := make(map[string][]float64, len(headers))
	for sc.Scan() {
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		for i, h := range headers {
			v := 0.0
			if i < len(fields) && fields[i] != "" {
				v, _ = strconv.ParseFloat(fields[i], 64)
			}
			cols[h] = append(cols[h], v)
		}
	}
	return cols, sc.Err()
}

// window selects vals whose timestamps fall in [from, to) seconds.
func window(vals, tcol []float64, from, to float64) []float64 {
	var out []float64
	for i, v := range vals {
		if i < len(tcol) && tcol[i] >= from && tcol[i] < to {
			out = append(out, v)
		}
	}
	return out
}

// nonzero filters zero placeholders (bins with no RTT sample).
func nonzero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x != 0 {
			out = append(out, x)
		}
	}
	return out
}
