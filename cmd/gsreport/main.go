// Command gsreport reads a trace CSV produced by gssim and recomputes the
// paper's derived measures offline: original/adjusted bitrates, response
// and recovery times, adaptiveness inputs, fairness ratio, and RTT/frame
// rate summaries. This separates data collection from analysis the way the
// paper's Wireshark-then-scripts pipeline did.
//
// Usage:
//
//	gssim -system luna -cca bbr > trace.csv
//	gsreport -capacity 25 trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/stats"
)

func main() {
	capacity := flag.Float64("capacity", 25, "bottleneck capacity in Mb/s (for the fairness ratio)")
	flowStart := flag.Float64("flow-start", 185, "competing flow arrival (s)")
	flowStop := flag.Float64("flow-stop", 370, "competing flow departure (s)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsreport [flags] trace.csv")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsreport:", err)
		os.Exit(1)
	}
	defer f.Close()

	cols, err := readCSV(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsreport:", err)
		os.Exit(1)
	}
	tcol, ok := cols["t_sec"]
	if !ok || len(tcol) < 2 {
		fmt.Fprintln(os.Stderr, "gsreport: trace has no t_sec column")
		os.Exit(1)
	}
	bin := time.Duration((tcol[1] - tcol[0]) * float64(time.Second))
	tl := metrics.Timeline{
		FlowStart: time.Duration(*flowStart * float64(time.Second)),
		FlowStop:  time.Duration(*flowStop * float64(time.Second)),
		TraceEnd:  time.Duration(tcol[len(tcol)-1]*float64(time.Second)) + bin,
	}

	game := metrics.Series{Bin: bin, V: cols["game_mbps"]}
	tcp := metrics.Series{Bin: bin, V: cols["tcp_mbps"]}

	rr := metrics.MeasureResponseRecovery(game, tl)
	ff, ft := tl.FairnessWindow()
	g := game.MeanBetween(ff, ft)
	t := tcp.MeanBetween(ff, ft)

	fmt.Printf("trace: %s (%d bins of %v)\n", flag.Arg(0), len(tcol), bin)
	fmt.Printf("original bitrate:   %6.1f Mb/s\n", rr.OriginalMbs)
	fmt.Printf("contended bitrate:  %6.1f Mb/s (tcp %.1f Mb/s)\n", rr.AdjustedMbs, t)
	fmt.Printf("fairness ratio:     %+6.2f\n", metrics.FairnessRatio(g, t, *capacity))
	fmt.Printf("response time:      %6.1f s (settled=%v)\n", rr.Response.Seconds(), rr.Responded)
	fmt.Printf("recovery time:      %6.1f s (settled=%v)\n", rr.Recovery.Seconds(), rr.Recovered)

	transient := (*flowStop - *flowStart) / 5
	if rtt := window(cols["rtt_ms"], tcol, *flowStart+transient, *flowStop); len(rtt) > 0 {
		s := stats.Summarize(nonzero(rtt))
		fmt.Printf("RTT (contention):   %6.1f ms (sd %.1f)\n", s.Mean, s.StdDev)
	}
	if fps := window(cols["fps"], tcol, *flowStart+transient, *flowStop); len(fps) > 0 {
		s := stats.Summarize(fps)
		fmt.Printf("frame rate:         %6.1f f/s (sd %.1f)\n", s.Mean, s.StdDev)
	}
	if loss := window(cols["game_loss"], tcol, *flowStart+transient, *flowStop); len(loss) > 0 {
		fmt.Printf("game loss:          %6.3f %%\n", 100*stats.Mean(loss))
	}
}

// readCSV parses a headered numeric CSV into named columns.
func readCSV(f *os.File) (map[string][]float64, error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("empty file")
	}
	headers := strings.Split(strings.TrimSpace(sc.Text()), ",")
	cols := make(map[string][]float64, len(headers))
	for sc.Scan() {
		fields := strings.Split(strings.TrimSpace(sc.Text()), ",")
		for i, h := range headers {
			v := 0.0
			if i < len(fields) && fields[i] != "" {
				v, _ = strconv.ParseFloat(fields[i], 64)
			}
			cols[h] = append(cols[h], v)
		}
	}
	return cols, sc.Err()
}

// window selects vals whose timestamps fall in [from, to) seconds.
func window(vals, tcol []float64, from, to float64) []float64 {
	var out []float64
	for i, v := range vals {
		if i < len(tcol) && tcol[i] >= from && tcol[i] < to {
			out = append(out, v)
		}
	}
	return out
}

// nonzero filters zero placeholders (bins with no RTT sample).
func nonzero(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if x != 0 {
			out = append(out, x)
		}
	}
	return out
}
