package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/stats"
)

// probeRows is a headered CSV parsed keeping every field as a string, since
// probe exports mix numeric and categorical columns (flow names, CC modes).
type probeRows struct {
	headers []string
	col     map[string]int
	rows    [][]string
}

func readProbeCSV(path string) (*probeRows, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty file", path)
	}
	p := &probeRows{
		headers: strings.Split(strings.TrimSpace(sc.Text()), ","),
		col:     map[string]int{},
	}
	for i, h := range p.headers {
		p.col[h] = i
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p.rows = append(p.rows, strings.Split(line, ","))
	}
	return p, sc.Err()
}

// field returns the named column of a row ("" when absent).
func (p *probeRows) field(row []string, name string) string {
	i, ok := p.col[name]
	if !ok || i >= len(row) {
		return ""
	}
	return row[i]
}

func (p *probeRows) num(row []string, name string) float64 {
	v, _ := strconv.ParseFloat(p.field(row, name), 64)
	return v
}

// sparkline renders vs as a fixed-width block-character strip, downsampling
// by bucket means — enough to see a Cubic sawtooth or a filling queue in a
// terminal without a plotting stack.
func sparkline(vs []float64, width int) string {
	if len(vs) == 0 {
		return ""
	}
	ramp := []rune("▁▂▃▄▅▆▇█")
	if width > len(vs) {
		width = len(vs)
	}
	buckets := make([]float64, width)
	for b := range buckets {
		lo, hi := b*len(vs)/width, (b+1)*len(vs)/width
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range vs[lo:hi] {
			sum += v
		}
		buckets[b] = sum / float64(hi-lo)
	}
	min, max := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	out := make([]rune, width)
	for i, v := range buckets {
		k := 0
		if max > min {
			k = int((v - min) / (max - min) * float64(len(ramp)-1))
		}
		out[i] = ramp[k]
	}
	return string(out)
}

// reportCC summarises a probe cc.csv: per-flow cwnd-vs-time with sample
// counts, byte summaries and a sparkline, plus the RTT picture and the CC
// mode mix — the quick-look version of the paper's cwnd mechanism plots.
func reportCC(path string) error {
	p, err := readProbeCSV(path)
	if err != nil {
		return err
	}
	if _, ok := p.col["cwnd_bytes"]; !ok {
		return fmt.Errorf("%s: not a cc probe export (no cwnd_bytes column)", path)
	}
	type flowAgg struct {
		alg    string
		t      []float64
		cwnd   []float64
		infl   []float64
		srttMS []float64
		modes  map[string]int
	}
	flows := map[string]*flowAgg{}
	var order []string
	for _, row := range p.rows {
		name := p.field(row, "flow")
		fa := flows[name]
		if fa == nil {
			fa = &flowAgg{alg: p.field(row, "alg"), modes: map[string]int{}}
			flows[name] = fa
			order = append(order, name)
		}
		fa.t = append(fa.t, p.num(row, "t_s"))
		fa.cwnd = append(fa.cwnd, p.num(row, "cwnd_bytes"))
		fa.infl = append(fa.infl, p.num(row, "inflight_bytes"))
		fa.srttMS = append(fa.srttMS, p.num(row, "srtt_us")/1000)
		if m := p.field(row, "mode"); m != "" {
			fa.modes[m]++
		}
	}
	fmt.Printf("cc probe: %s (%d samples, %d flows)\n", path, len(p.rows), len(flows))
	for _, name := range order {
		fa := flows[name]
		span := 0.0
		if n := len(fa.t); n > 0 {
			span = fa.t[n-1] - fa.t[0]
		}
		cw := stats.Summarize(fa.cwnd)
		in := stats.Summarize(fa.infl)
		rt := stats.Summarize(nonzero(fa.srttMS))
		fmt.Printf("\nflow %s (%s): %d samples over %.1f s\n", name, fa.alg, len(fa.t), span)
		cq := stats.Percentiles(fa.cwnd, 0.50, 0.90)
		fmt.Printf("  cwnd:     mean %7.1f kB  p50 %7.1f kB  p90 %7.1f kB  max %7.1f kB\n",
			cw.Mean/1000, cq[0]/1000, cq[1]/1000, maxOf(fa.cwnd)/1000)
		fmt.Printf("  cwnd/t:   %s\n", sparkline(fa.cwnd, 60))
		fmt.Printf("  inflight: mean %7.1f kB  max %7.1f kB\n", in.Mean/1000, maxOf(fa.infl)/1000)
		if rt.N > 0 {
			fmt.Printf("  srtt:     mean %7.1f ms  sd %.1f ms\n", rt.Mean, rt.StdDev)
		}
		if len(fa.modes) > 0 {
			var ms []string
			for m := range fa.modes {
				ms = append(ms, m)
			}
			sort.Strings(ms)
			parts := make([]string, len(ms))
			for i, m := range ms {
				parts[i] = fmt.Sprintf("%s %.0f%%", m, 100*float64(fa.modes[m])/float64(len(fa.t)))
			}
			fmt.Printf("  modes:    %s\n", strings.Join(parts, ", "))
		}
	}
	return nil
}

// reportQueue summarises a probe queue.csv: occupancy-vs-time per queue with
// a sparkline, sojourn statistics, and the drop total — the queue half of
// the paper's bufferbloat mechanism.
func reportQueue(path string) error {
	p, err := readProbeCSV(path)
	if err != nil {
		return err
	}
	if _, ok := p.col["sojourn_us"]; !ok {
		return fmt.Errorf("%s: not a queue probe export (no sojourn_us column)", path)
	}
	type qAgg struct {
		t, bytes, pkts []float64
		sojournMS      []float64
		drops          float64
	}
	queues := map[string]*qAgg{}
	var order []string
	for _, row := range p.rows {
		name := p.field(row, "queue")
		qa := queues[name]
		if qa == nil {
			qa = &qAgg{}
			queues[name] = qa
			order = append(order, name)
		}
		qa.t = append(qa.t, p.num(row, "t_s"))
		qa.bytes = append(qa.bytes, p.num(row, "bytes"))
		qa.pkts = append(qa.pkts, p.num(row, "packets"))
		if s := p.field(row, "sojourn_us"); s != "" {
			qa.sojournMS = append(qa.sojournMS, p.num(row, "sojourn_us")/1000)
		}
		qa.drops = p.num(row, "cum_drops") // cumulative; last row wins
	}
	fmt.Printf("queue probe: %s (%d samples, %d queues)\n", path, len(p.rows), len(queues))
	for _, name := range order {
		qa := queues[name]
		span := 0.0
		if n := len(qa.t); n > 0 {
			span = qa.t[n-1] - qa.t[0]
		}
		by := stats.Summarize(qa.bytes)
		fmt.Printf("\nqueue %s: %d samples over %.1f s\n", name, len(qa.t), span)
		fmt.Printf("  depth:    mean %7.1f kB  max %7.1f kB  (mean %.1f pkts)\n",
			by.Mean/1000, maxOf(qa.bytes)/1000, stats.Mean(qa.pkts))
		fmt.Printf("  depth/t:  %s\n", sparkline(qa.bytes, 60))
		if len(qa.sojournMS) > 0 {
			so := stats.Summarize(qa.sojournMS)
			fmt.Printf("  sojourn:  mean %7.1f ms  max %7.1f ms  (%d non-empty samples)\n",
				so.Mean, maxOf(qa.sojournMS), len(qa.sojournMS))
		}
		fmt.Printf("  drops:    %.0f\n", qa.drops)
	}
	return nil
}

// reportDrops summarises a probe drops.csv as loss episodes: consecutive
// drops on the same queue closer than gap are one episode (a GE bad-state
// burst or a link-flap window), reported with their span, drop count, and
// bytes lost. Singleton episodes are summarised in aggregate so Bernoulli
// noise does not swamp the genuine bursts.
func reportDrops(path string, gap time.Duration) error {
	p, err := readProbeCSV(path)
	if err != nil {
		return err
	}
	if _, ok := p.col["queue"]; !ok {
		return fmt.Errorf("%s: not a drops probe export (no queue column)", path)
	}
	type episode struct {
		from, to     float64
		drops, bytes int
	}
	type qAgg struct {
		episodes []episode
		drops    int
		bytes    int
	}
	queues := map[string]*qAgg{}
	var order []string
	gapS := gap.Seconds()
	for _, row := range p.rows {
		name := p.field(row, "queue")
		qa := queues[name]
		if qa == nil {
			qa = &qAgg{}
			queues[name] = qa
			order = append(order, name)
		}
		t := p.num(row, "t_s")
		size := int(p.num(row, "size"))
		qa.drops++
		qa.bytes += size
		if n := len(qa.episodes); n > 0 && t-qa.episodes[n-1].to <= gapS {
			ep := &qa.episodes[n-1]
			ep.to = t
			ep.drops++
			ep.bytes += size
		} else {
			qa.episodes = append(qa.episodes, episode{from: t, to: t, drops: 1, bytes: size})
		}
	}
	fmt.Printf("drops probe: %s (%d drops, %d queues, episode gap %v)\n", path, len(p.rows), len(queues), gap)
	for _, name := range order {
		qa := queues[name]
		singles, singleDrops := 0, 0
		var bursts []episode
		for _, ep := range qa.episodes {
			if ep.drops == 1 {
				singles++
				singleDrops += ep.drops
			} else {
				bursts = append(bursts, ep)
			}
		}
		fmt.Printf("\nqueue %s: %d drops (%.1f kB) in %d episodes\n",
			name, qa.drops, float64(qa.bytes)/1000, len(qa.episodes))
		for _, ep := range bursts {
			fmt.Printf("  burst %8.3fs - %8.3fs: %4d drops, %7.1f kB\n",
				ep.from, ep.to, ep.drops, float64(ep.bytes)/1000)
		}
		if singles > 0 {
			fmt.Printf("  plus %d isolated single drops\n", singles)
		}
	}
	return nil
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
