package main

import (
	"fmt"
	"os"

	"repro/internal/campaign"
	"repro/internal/figures"
	"repro/internal/obs"
)

// reportTelemetry renders a persisted telemetry snapshot (gssim/gsbench
// -telemetry-out, or a saved /snapshot body): quantiles-with-CI tables for
// every paper metric, computed from the sketches alone — no runlog needed.
func reportTelemetry(path string) error {
	snap, err := obs.ReadSnapshot(path)
	if err != nil {
		return err
	}
	figures.RenderTelemetry(os.Stdout, path, snap)
	return nil
}

// reportCampaign renders a gscampaign directory: shard completion status
// from the manifest, then the merged telemetry tables if the campaign has
// been merged (every table RenderTelemetry prints for a live snapshot).
func reportCampaign(dir string) error {
	m, _, err := campaign.ReadManifest(dir)
	if err != nil {
		return err
	}
	done, n := campaign.Status(dir, m)
	fmt.Printf("campaign %s (%s): %d runs in %d shards, %d done\n", m.Name, m.ID, m.Total, m.Shards, n)
	if n < m.Shards {
		missing := make([]int, 0, m.Shards-n)
		for i, d := range done {
			if !d {
				missing = append(missing, i)
			}
		}
		fmt.Printf("missing shards: %v (resume with gscampaign -dir %s -resume)\n", missing, dir)
		return nil
	}
	snap, err := obs.ReadSnapshot(campaign.MergedSnapPath(dir))
	if err != nil {
		return fmt.Errorf("campaign complete but not merged (run gscampaign -dir %s -resume): %w", dir, err)
	}
	fmt.Println()
	figures.RenderTelemetry(os.Stdout, dir, snap)
	return nil
}
