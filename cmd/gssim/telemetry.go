package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/runcache"
)

// telemetry bundles the optional campaign telemetry sinks: the streaming
// Aggregator, its live HTTP endpoint, the health-timeline file, and the
// final snapshot destination.
type telemetry struct {
	ag      *obs.Aggregator
	srv     *obs.TelemetryServer
	out     string
	logFile *os.File
}

// openTelemetry builds the telemetry stack from the -telemetry-* flags; all
// empty means a nil Aggregator and a no-op close.
func openTelemetry(addr, out, logPath string, cache *core.RunCache) (*telemetry, error) {
	t := &telemetry{out: out}
	if addr == "" && out == "" && logPath == "" {
		return t, nil
	}
	t.ag = obs.NewAggregator()
	if cache != nil {
		t.ag.CacheStats = func() runcache.Stats { return cache.Stats() }
	}
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		t.logFile = f
		t.ag.Timeline = f
	}
	if addr != "" {
		srv, err := obs.ServeTelemetry(addr, t.ag)
		if err != nil {
			return nil, err
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "gssim: telemetry at http://%s/ (/metrics, /snapshot)\n", srv.Addr())
	}
	return t, nil
}

// progress returns the Aggregator as a Progress sink (nil when telemetry is
// off — a plain nil *Aggregator must not become a non-nil interface).
func (t *telemetry) progress() obs.Progress {
	if t.ag == nil {
		return nil
	}
	return t.ag
}

// close persists the final snapshot (when -telemetry-out was given) and
// shuts the HTTP server and timeline file down.
func (t *telemetry) close() {
	if t.ag != nil && t.out != "" {
		if err := obs.WriteSnapshot(t.out, t.ag.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "gssim:", err)
		} else {
			fmt.Fprintf(os.Stderr, "gssim: telemetry snapshot written to %s\n", t.out)
		}
	}
	if t.srv != nil {
		t.srv.Close()
	}
	if t.logFile != nil {
		t.logFile.Close()
	}
}
