// Command gssim runs experiments directly. In its default single-run mode
// it executes one condition and prints its 0.5 s time series (game bitrate,
// competing-flow bitrate, RTT, frame rate, loss) as CSV — the raw data
// behind one line of Figure 2. With -sweep it instead executes the paper's
// full campaign grid (narrowed by -iters/-scale) with live progress,
// structured JSONL run logs, and clean SIGINT cancellation.
//
// Usage:
//
//	gssim -system stadia -cca cubic -capacity 25 -queue 2 > trace.csv
//	gssim -scenario scenarios/paper_1v1.scn > trace.csv
//	gssim -flows 20 -flow-mix "iperf:cubic,dash" -runlog runs.jsonl
//	gssim -sweep -progress -runlog runs.jsonl -iters 15
//	gssim -sweep -cache runs.cache -cache-stats   # resumable/incremental
//	gssim -sweep -iters 1 -scale 0.2 -cpuprofile cpu.out
//	gssim -chaos -chaos-runs 200 -seed 42 -scale 0.1 -cache runs.cache \
//	      -invariants-out campaign.json
//
// With -scenario the condition comes from a declarative scenario file
// (docs/SCENARIOS.md) instead of flags; the same condition built either way
// produces byte-identical results. With -chaos the tool generates a
// seed-derived random impairment campaign, checks every run against the
// metamorphic invariant suite, prints the per-invariant verdict table, and
// exits non-zero if any invariant was violated.
//
// A sweep interrupted with Ctrl-C drains its in-flight runs, reports the
// partial results, and marks them "interrupted" on stderr and in the exit
// summary; every completed run is already in the JSONL log.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/gamestream"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		system   = flag.String("system", "stadia", "game system: stadia|geforce|luna")
		cca      = flag.String("cca", "cubic", "competing flow: cubic|bbr|none")
		capacity = flag.Float64("capacity", 25, "bottleneck capacity in Mb/s")
		queue    = flag.Float64("queue", 2, "queue size in multiples of BDP")
		aqm      = flag.String("aqm", core.DropTail, "queue discipline")
		seed     = flag.Uint64("seed", 1, "run seed")
		scale    = flag.Float64("scale", 1, "timeline compression")
		pcapPath = flag.String("pcap", "", "also write the bottleneck trace as a pcap file")

		sweep   = flag.Bool("sweep", false, "run the paper's full sweep grid instead of a single condition")
		iters   = flag.Int("iters", 15, "sweep iterations per condition")
		workers = flag.Int("workers", 0, "sweep parallelism (0 = one worker per CPU)")

		scenarioPath = flag.String("scenario", "", "run a declarative scenario file instead of flag-built conditions (see docs/SCENARIOS.md)")
		chaos        = flag.Bool("chaos", false, "run a seed-derived chaos campaign checked against the invariant suite (-seed selects the campaign)")
		chaosRuns    = flag.Int("chaos-runs", 200, "with -chaos: number of generated runs")
		invOut       = flag.String("invariants-out", "", "with -chaos: write the campaign report JSON here (render with gsreport -invariants)")

		cacheDir   = flag.String("cache", "", "content-addressed run cache directory (created if missing)")
		cacheStats = flag.Bool("cache-stats", false, "print run-cache hit/miss/store counters to stderr on exit")

		progress   = flag.Bool("progress", false, "print live progress to stderr")
		runlog     = flag.String("runlog", "", "write one JSONL record per completed run to this file (truncates)")
		telAddr    = flag.String("telemetry-addr", "", "with -sweep: serve live telemetry over HTTP at this address (e.g. :9300): /metrics is Prometheus text, /snapshot JSON")
		telOut     = flag.String("telemetry-out", "", "with -sweep: write the final telemetry snapshot (metric sketches + health) to this JSON file")
		telLog     = flag.String("telemetry-log", "", "with -sweep: append the JSONL health timeline (progress, cache hit rate, events/sec drift) to this file")
		discard    = flag.Bool("discard-runs", false, "with -sweep: drop per-run results once the sinks have seen them, keeping memory O(conditions)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")

		probeOn       = flag.Bool("probe", false, "attach CC/queue instrumentation and export cc/queue/drops series")
		probeInterval = flag.Duration("probe-interval", 100*time.Millisecond, "probe sampling interval (0 = snapshot on every ACK)")
		events        = flag.Int("events", 0, "packet lifecycle event ring capacity (0 = off)")
		probeOut      = flag.String("probe-out", "probe", "probe export location: basename prefix for a single run, directory for -sweep")

		flows   = flag.Int("flows", 0, "competing flow slots sharing the bottleneck (0 = classic 1-vs-1)")
		streams = flag.Int("streams", 0, "additional concurrent game streams beyond the primary")
		flowMix = flag.String("flow-mix", "", `population traffic mix, cycled across slots: "iperf:cubic,dash,videocall"`)
		flowOn  = flag.Duration("flow-on", 0, "mean ON duration per flow arrival (Pareto; 0 = window/6)")
		flowOff = flag.Duration("flow-off", 0, "mean OFF gap between a flow's sessions (exponential; 0 = on/2)")

		loss     = flag.String("loss", "", `downlink loss: "2%", "0.02", or "ge:p=0.01,r=0.25[,good=0,bad=1]"`)
		jitter   = flag.Duration("jitter", 0, "downlink delay jitter (uniform 0..j per packet)")
		reorder  = flag.Bool("reorder", false, "allow jitter to reorder packets instead of clamping")
		dup      = flag.String("dup", "", `downlink duplicate probability: "1%" or "0.01"`)
		schedule = flag.String("schedule", "", `mid-run retuning program, e.g. "60s rate=10mbit; 120s down; 121s up"`)
	)
	flag.Parse()

	var impair core.Impairment
	if err := core.ParseLoss(*loss, &impair); err != nil {
		fatal(err)
	}
	impair.Jitter = *jitter
	impair.Reorder = *reorder
	if *dup != "" {
		p, err := core.ParseProb(*dup)
		if err != nil {
			fatal(fmt.Errorf("-dup: %w", err))
		}
		impair.Duplicate = p
	}
	sched, err := core.ParseSchedule(*schedule)
	if err != nil {
		fatal(err)
	}

	mix, err := core.ParseMix(*flowMix)
	if err != nil {
		fatal(err)
	}
	pop := core.FlowPopulation{Flows: *flows, Streams: *streams, Mix: mix, MeanOn: *flowOn, MeanOff: *flowOff}

	var probeCfg *core.ProbeConfig
	if *probeOn {
		probeCfg = &core.ProbeConfig{Interval: *probeInterval, Events: *events}
		if *probeInterval == 0 {
			probeCfg.PerAck = true
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	var runLog *obs.JSONL
	if *runlog != "" {
		f, err := os.Create(*runlog)
		if err != nil {
			fatal(err)
		}
		// Unbuffered on purpose: one small write per completed run keeps
		// the log tail-able while the sweep executes.
		runLog = obs.NewJSONL(f)
		defer f.Close()
	}

	var cache *core.RunCache
	if *cacheDir != "" {
		cache, err = core.OpenCache(*cacheDir)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if *cacheStats {
				fmt.Fprintf(os.Stderr, "gssim: cache %s: %s\n", cache.Dir(), cache.Stats())
			}
		}()
	}

	telem, err := openTelemetry(*telAddr, *telOut, *telLog, cache)
	if err != nil {
		fatal(err)
	}
	defer telem.close()

	if *chaos {
		runChaos(*seed, *chaosRuns, *scale, *workers, *invOut, *progress, runLog, cache)
		return
	}
	if *scenarioPath != "" {
		runScenario(*scenarioPath, *progress, runLog, cache)
		return
	}
	if *sweep {
		runSweep(*iters, *scale, *workers, *aqm, *progress, runLog, probeCfg, *probeOut, impair, sched, pop, cache, telem, *discard)
		return
	}
	runSingle(*system, *cca, *capacity, *queue, *aqm, *seed, *scale, *pcapPath, *progress, runLog, probeCfg, *probeOut, impair, sched, pop, cache)
}

// runScenario executes every iteration of a scenario file. A single
// iteration prints the same CSV time series as the flag path (the scenario
// and flag constructions of the same condition are byte-identical); multi-
// iteration scenarios print one summary line per run.
func runScenario(path string, progress bool, runLog *obs.JSONL, cache *core.RunCache) {
	sp, err := core.LoadScenario(path)
	if err != nil {
		fatal(err)
	}
	iters := sp.Iterations
	if iters <= 0 {
		iters = 1
	}
	fmt.Fprintf(os.Stderr, "gssim: scenario %q: %d iteration(s), seed %d\n", sp.Name, iters, sp.Seed)
	for it := 0; it < iters; it++ {
		res := core.RunScenario(sp, it, cache)
		if runLog != nil {
			rec := res.Record(it)
			rec.Cached = res.Cached
			if err := runLog.Log(rec); err != nil {
				fmt.Fprintln(os.Stderr, "gssim:", err)
			}
		}
		if iters == 1 {
			printTrace(res)
		} else {
			rr := res.ResponseRecovery()
			fmt.Printf("iter %2d seed %d: original %5.1f Mb/s, contended %5.1f Mb/s, fairness %+5.2f, rtt %5.1f ms\n",
				it, res.Cfg.Seed, rr.OriginalMbs, rr.AdjustedMbs, res.FairnessRatio(), res.MeanRTT())
		}
		if progress {
			src := "run"
			if res.Cached {
				src = "cache hit"
			}
			fmt.Fprintf(os.Stderr, "gssim: scenario iter %d/%d (%s)\n", it+1, iters, src)
		}
	}
}

// printTrace writes a run's 0.5 s time series as CSV, the single-run
// output contract shared by the flag and scenario paths.
func printTrace(res core.Result) {
	n := len(res.GameMbps)
	tcol := make([]float64, n)
	rttCol := make([]float64, n)
	fpsCol := make([]float64, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * res.Bin
		tcol[i] = at.Seconds()
		if xs := res.RTTBetween(at, at+res.Bin); len(xs) > 0 {
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			rttCol[i] = sum / float64(len(xs))
		}
		fpsBin := int(at / time.Second)
		if fpsBin < len(res.FPSBins) {
			fpsCol[i] = res.FPSBins[fpsBin]
		}
	}
	fmt.Print(report.CSV(
		[]string{"t_sec", "game_mbps", "tcp_mbps", "rtt_ms", "fps", "game_loss"},
		[][]float64{tcol, res.GameMbps, res.TCPMbps, rttCol, fpsCol, res.GameLossBins},
	))
}

// runChaos executes a seed-derived chaos campaign, prints the per-invariant
// verdict table, and exits non-zero when any invariant was violated.
func runChaos(seed uint64, runs int, scale float64, workers int, invOut string, progress bool, runLog *obs.JSONL, cache *core.RunCache) {
	opts := core.ChaosOptions{
		Seed:    seed,
		Runs:    runs,
		Scale:   scale,
		Workers: workers,
		Cache:   cache,
	}
	if workers == 0 {
		opts.Workers = runtime.NumCPU()
	}
	if runLog != nil {
		opts.Log = runLog
	}
	if progress {
		opts.Progress = func(done, total, violations int) {
			fmt.Fprintf(os.Stderr, "\rgssim: chaos %d/%d runs, %d violations", done, total, violations)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}
	start := time.Now()
	rep, err := core.RunChaos(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Print(figures.InvariantTable(rep))
	fmt.Fprintf(os.Stderr, "gssim: chaos campaign: %d runs in %v, %d cache hits, %d violations\n",
		rep.Runs, time.Since(start).Round(time.Millisecond), rep.CacheHits, rep.Violations)
	if invOut != "" {
		if err := core.SaveCampaignReport(invOut, rep); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "gssim: campaign report written to %s\n", invOut)
	}
	if !rep.Passed() {
		os.Exit(1)
	}
}

// runSweep executes the paper's campaign with live observability and clean
// SIGINT cancellation, printing one summary line per condition at the end.
func runSweep(iters int, scale float64, workers int, aqm string, progress bool, runLog *obs.JSONL, probeCfg *core.ProbeConfig, probeDir string, impair core.Impairment, sched []core.ScheduleStep, pop core.FlowPopulation, cache *core.RunCache, telem *telemetry, discard bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := core.SweepOptions{
		Iterations:  iters,
		TimeScale:   scale,
		Workers:     workers,
		AQM:         aqm,
		Schedule:    sched,
		Population:  pop,
		Cache:       cache,
		DiscardRuns: discard,
	}
	if impair.Enabled() {
		opts.Impairments = []core.Impairment{impair}
	}
	if probeCfg != nil {
		opts.Probe = probeCfg
		opts.ProbeDir = probeDir
	}
	if runLog != nil {
		opts.RunLog = runLog
	}
	var printer obs.Progress
	if progress {
		printer = obs.NewPrinter(os.Stderr)
	}
	opts.Progress = obs.MultiProgress(printer, telem.progress())

	start := time.Now()
	sw := core.SweepContext(ctx, opts)

	total := 0
	if discard && telem.ag != nil {
		// Per-run results were dropped; the streaming sinks kept count.
		total = telem.ag.Done()
	}
	for _, cond := range sw.Conditions {
		total += len(cond.Runs)
		ff, ft := cond.ContentionWindow()
		g := cond.GameRate(ff, ft)
		t := cond.TCPRate(ff, ft)
		fmt.Printf("%-28s runs %2d  game %5.1f Mb/s  tcp %5.1f Mb/s  fairness %+5.2f\n",
			cond.Cond, len(cond.Runs), g.Mean, t.Mean, cond.FairnessRatio())
	}
	state := "completed"
	if sw.Interrupted {
		state = "interrupted"
	}
	fmt.Fprintf(os.Stderr, "gssim: sweep %s: %d runs across %d conditions in %v\n",
		state, total, len(sw.Conditions), time.Since(start).Round(time.Second))
	if cache != nil {
		fmt.Fprintf(os.Stderr, "gssim: sweep cache: %s\n", sw.Cache)
	}
	if runLog != nil {
		fmt.Fprintf(os.Stderr, "gssim: %d JSONL records written\n", runLog.Count())
	}
}

// runSingle executes one condition and prints its time series as CSV. The
// -cca flag accepts a comma-separated list (e.g. "cubic,bbr") to put
// several bulk flows on the bottleneck at once.
func runSingle(system, cca string, capacity, queue float64, aqm string, seed uint64, scale float64, pcapPath string, progress bool, runLog *obs.JSONL, probeCfg *core.ProbeConfig, probeOut string, impair core.Impairment, sched []core.ScheduleStep, pop core.FlowPopulation, cache *core.RunCache) {
	ccaVal := cca
	if ccaVal == "none" {
		ccaVal = core.None
	}
	cfg := core.Config{
		System:     gamestream.System(system),
		CCA:        ccaVal,
		Capacity:   core.Mbps(capacity),
		Queue:      queue,
		AQM:        aqm,
		Seed:       seed,
		TimeScale:  scale,
		Probe:      probeCfg,
		Impair:     impair,
		Schedule:   sched,
		Population: pop,
		Cache:      cache,
	}
	if ccas := strings.Split(ccaVal, ","); len(ccas) > 1 {
		cfg.CCA = ccas[0] // condition label; the competitor list drives the run
		cfg.Competitors = ccas
	}
	if pcapPath != "" {
		f, err := os.Create(pcapPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		pw, err := pcap.NewWriter(bw)
		if err != nil {
			fatal(err)
		}
		cfg.OnPacket = func(at sim.Time, p *packet.Packet) {
			if err := pw.Write(at, p); err != nil {
				fatal(fmt.Errorf("pcap: %w", err))
			}
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "gssim: wrote %d packets to %s\n", pw.Packets(), pcapPath)
		}()
	}
	res := core.Run(cfg)
	var pmeta *obs.ProbeMeta
	if res.Probe != nil {
		dir, base := filepath.Split(probeOut)
		if dir == "" {
			dir = "."
		}
		m, err := res.Probe.Export(dir, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gssim:", err)
		} else {
			fmt.Fprintf(os.Stderr, "gssim: probe: %d cc samples, %d queue samples, %d events -> %s.{cc,queue,drops}.csv\n",
				m.CCSamples, m.QueueSamples, m.Events, probeOut)
		}
		pmeta = &m
	}
	if runLog != nil {
		rec := res.Record(0)
		rec.Probe = pmeta
		rec.Cached = res.Cached
		if err := runLog.Log(rec); err != nil {
			fmt.Fprintln(os.Stderr, "gssim:", err)
		}
	}
	if res.Cached {
		fmt.Fprintln(os.Stderr, "gssim: run served from cache")
	}

	printTrace(res)

	if pop.Flows > 0 || pop.Streams > 0 {
		fs := res.FlowSummary
		fmt.Fprintf(os.Stderr,
			"flows %s: %d active, jain %.3f, tput p10/p50/p90 %.2f/%.2f/%.2f Mb/s, rtt-infl p50 %.2fx, %d starved\n",
			res.Cfg.Population, fs.Active, fs.Jain,
			fs.TputP10Mbps, fs.TputP50Mbps, fs.TputP90Mbps, fs.RTTInflP50, fs.Starved)
	}
	if impair.Enabled() || len(sched) > 0 {
		is := res.Impair
		fmt.Fprintf(os.Stderr,
			"impair %s: %d packets, %d loss drops, %d flap drops, %d dup, %d reordered, %d flaps (%.1fs down)\n",
			impair, is.Packets, is.LossDrops, is.FlapDrops, is.Duplicates, is.Reordered, is.Flaps, is.Down.Seconds())
	}
	rr := res.ResponseRecovery()
	fmt.Fprintf(os.Stderr,
		"run %s: original %.1f Mb/s, contended %.1f Mb/s, fairness %+.2f, response %.0fs, recovery %.0fs, rtt %.1f ms, fps %.1f\n",
		res.Cfg.Condition, rr.OriginalMbs, rr.AdjustedMbs, res.FairnessRatio(),
		rr.Response.Seconds(), rr.Recovery.Seconds(), res.MeanRTT(), res.MeanFPS())
	if progress {
		es := res.Engine
		fmt.Fprintf(os.Stderr,
			"engine: %d events (%d peak pending), %.0fs sim in %.2fs wall = %.0fx real time, %.2g events/s\n",
			es.EventsDispatched, es.PeakPending, es.SimTime.Seconds(), es.WallTime.Seconds(),
			es.Speedup(), es.EventsPerSecond())
	}
}

func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gssim:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "gssim:", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gssim:", err)
	os.Exit(1)
}
