// Command gssim runs a single experiment condition and prints its 0.5 s
// time series (game bitrate, competing-flow bitrate, RTT, frame rate, loss)
// as CSV — the raw data behind one line of Figure 2.
//
// Usage:
//
//	gssim -system stadia -cca cubic -capacity 25 -queue 2 > trace.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gamestream"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	var (
		system   = flag.String("system", "stadia", "game system: stadia|geforce|luna")
		cca      = flag.String("cca", "cubic", "competing flow: cubic|bbr|none")
		capacity = flag.Float64("capacity", 25, "bottleneck capacity in Mb/s")
		queue    = flag.Float64("queue", 2, "queue size in multiples of BDP")
		aqm      = flag.String("aqm", core.DropTail, "queue discipline")
		seed     = flag.Uint64("seed", 1, "run seed")
		scale    = flag.Float64("scale", 1, "timeline compression")
		pcapPath = flag.String("pcap", "", "also write the bottleneck trace as a pcap file")
	)
	flag.Parse()

	ccaVal := *cca
	if ccaVal == "none" {
		ccaVal = core.None
	}
	cfg := core.Config{
		System:    gamestream.System(*system),
		CCA:       ccaVal,
		Capacity:  core.Mbps(*capacity),
		Queue:     *queue,
		AQM:       *aqm,
		Seed:      *seed,
		TimeScale: *scale,
	}
	if *pcapPath != "" {
		f, err := os.Create(*pcapPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gssim:", err)
			os.Exit(1)
		}
		defer f.Close()
		bw := bufio.NewWriterSize(f, 1<<20)
		defer bw.Flush()
		pw, err := pcap.NewWriter(bw)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gssim:", err)
			os.Exit(1)
		}
		cfg.OnPacket = func(at sim.Time, p *packet.Packet) {
			if err := pw.Write(at, p); err != nil {
				fmt.Fprintln(os.Stderr, "gssim: pcap:", err)
				os.Exit(1)
			}
		}
		defer func() {
			fmt.Fprintf(os.Stderr, "gssim: wrote %d packets to %s\n", pw.Packets(), *pcapPath)
		}()
	}
	res := core.Run(cfg)

	n := len(res.GameMbps)
	tcol := make([]float64, n)
	rttCol := make([]float64, n)
	fpsCol := make([]float64, n)
	for i := 0; i < n; i++ {
		at := time.Duration(i) * res.Bin
		tcol[i] = at.Seconds()
		if xs := res.RTTBetween(at, at+res.Bin); len(xs) > 0 {
			sum := 0.0
			for _, x := range xs {
				sum += x
			}
			rttCol[i] = sum / float64(len(xs))
		}
		fpsBin := int(at / time.Second)
		if fpsBin < len(res.FPSBins) {
			fpsCol[i] = res.FPSBins[fpsBin]
		}
	}
	fmt.Print(report.CSV(
		[]string{"t_sec", "game_mbps", "tcp_mbps", "rtt_ms", "fps", "game_loss"},
		[][]float64{tcol, res.GameMbps, res.TCPMbps, rttCol, fpsCol, res.GameLossBins},
	))

	rr := res.ResponseRecovery()
	fmt.Fprintf(os.Stderr,
		"run %s: original %.1f Mb/s, contended %.1f Mb/s, fairness %+.2f, response %.0fs, recovery %.0fs, rtt %.1f ms, fps %.1f\n",
		res.Cfg.Condition, rr.OriginalMbs, rr.AdjustedMbs, res.FairnessRatio(),
		rr.Response.Seconds(), rr.Recovery.Seconds(), res.MeanRTT(), res.MeanFPS())
}
