// Mixtraffic: the paper's future-work scenario — a game stream sharing the
// last mile with realistic home traffic instead of a single bulk download:
// an adaptive video (DASH) session, a video call, and combinations.
package main

import (
	"flag"
	"fmt"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/units"
)

func main() {
	scale := flag.Float64("scale", 0.4, "timeline compression")
	flag.Parse()

	mixes := []struct {
		name  string
		comps []experiment.Competitor
	}{
		{"bulk download (cubic)", []experiment.Competitor{{Kind: experiment.CompIperf, CCA: "cubic"}}},
		{"Netflix-style ABR video", []experiment.Competitor{{Kind: experiment.CompDash, CCA: "cubic"}}},
		{"video call", []experiment.Competitor{{Kind: experiment.CompVideoCall}}},
		{"ABR video + video call", []experiment.Competitor{
			{Kind: experiment.CompDash, CCA: "cubic"},
			{Kind: experiment.CompVideoCall},
		}},
		{"two bulk downloads", []experiment.Competitor{
			{Kind: experiment.CompIperf, CCA: "cubic"},
			{Kind: experiment.CompIperf, CCA: "bbr"},
		}},
	}

	fmt.Println("Stadia on a 25 Mb/s home link (2x BDP queue) vs household traffic")
	fmt.Printf("%-26s  %12s  %13s  %9s  %6s\n", "competing traffic", "game (Mb/s)", "cross (Mb/s)", "RTT (ms)", "f/s")
	tl := metrics.PaperTimeline.Scale(*scale)
	for _, mix := range mixes {
		r := experiment.Run(experiment.RunConfig{
			Condition: experiment.Condition{
				System:    gamestream.Stadia,
				Capacity:  units.Mbps(25),
				QueueMult: 2,
			},
			Competitors: mix.comps,
			Timeline:    tl,
			Seed:        21,
		})
		ff, ft := tl.FairnessWindow()
		rtt := stats.Mean(r.RTTBetween(ff, ft))
		fmt.Printf("%-26s  %12.1f  %13.1f  %9.1f  %6.1f\n",
			mix.name,
			r.GameSeries().MeanBetween(ff, ft),
			r.TCPSeries().MeanBetween(ff, ft),
			rtt,
			r.FPSSeries().MeanBetween(ff, ft))
	}
	fmt.Println("\nABR video and calls leave the stream most of the link; bulk TCP does not.")
}
