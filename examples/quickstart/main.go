// Quickstart: run one experiment — Google Stadia competing with a TCP
// Cubic bulk download on a 25 Mb/s bottleneck with a 2x-BDP queue — and
// print the headline measurements the paper reports for that condition.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 1.0, "timeline compression (1.0 = full 9-minute trace)")
	flag.Parse()

	fmt.Println("Running: Stadia vs TCP Cubic, 25 Mb/s, 2x BDP queue (9-minute trace)...")
	res := core.Run(core.Config{
		System:    core.Stadia,
		CCA:       core.Cubic,
		Capacity:  core.Mbps(25),
		Queue:     2,
		Seed:      1,
		TimeScale: *scale,
	})

	rr := res.ResponseRecovery()
	fmt.Printf("\nBitrate before the TCP flow arrives:  %5.1f Mb/s\n", rr.OriginalMbs)
	fmt.Printf("Bitrate while competing (stabilised): %5.1f Mb/s\n", rr.AdjustedMbs)
	fmt.Printf("Fairness ratio (game-tcp)/capacity:   %+5.2f  (0 = equal split)\n", res.FairnessRatio())
	fmt.Printf("Response time after flow arrival:     %5.1f s (responded=%v)\n",
		rr.Response.Seconds(), rr.Responded)
	fmt.Printf("Recovery time after flow departure:   %5.1f s (recovered=%v)\n",
		rr.Recovery.Seconds(), rr.Recovered)
	fmt.Printf("Mean RTT during contention:           %5.1f ms\n", res.MeanRTT())
	fmt.Printf("Displayed frame rate:                 %5.1f f/s\n", res.MeanFPS())
	fmt.Printf("\nFrames: %d displayed, %d dropped; %d NACK retransmissions; %d TCP retransmits\n",
		res.FramesDisplayed, res.FramesDropped, res.NackRetx, res.TCPRetransmits)
}
