// Bufferbloat: sweep the bottleneck queue size for one system against both
// TCP Cubic and TCP BBR, showing how router buffering drives the game's
// round-trip time (the Table 3/4 motif): Cubic fills whatever buffer
// exists, while BBR's 2x-BDP inflight cap bounds the damage.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 0.4, "timeline compression")
	flag.Parse()

	fmt.Println("GeForce Now on a 25 Mb/s bottleneck, queue sweep (compressed timeline)")
	fmt.Printf("%-8s  %-22s  %-22s\n", "queue", "vs TCP Cubic", "vs TCP BBR")
	fmt.Printf("%-8s  %-10s %-11s  %-10s %-11s\n", "", "RTT (ms)", "game (Mb/s)", "RTT (ms)", "game (Mb/s)")

	for _, q := range []float64{0.5, 1, 2, 4, 7, 12} {
		row := fmt.Sprintf("%-8s", fmt.Sprintf("%.1fx", q))
		for _, cca := range []string{core.Cubic, core.BBR} {
			res := core.Run(core.Config{
				System:    core.GeForce,
				CCA:       cca,
				Capacity:  core.Mbps(25),
				Queue:     q,
				Seed:      7,
				TimeScale: *scale, // default 3.6-minute trace: enough for steady state
			})
			from, to := res.Cfg.Timeline.FairnessWindow()
			row += fmt.Sprintf("  %-10.1f %-11.1f", res.MeanRTT(),
				res.GameSeries().MeanBetween(from, to))
		}
		fmt.Println(row)
	}
	fmt.Println("\nNote how RTT grows with the buffer against Cubic (bufferbloat) but")
	fmt.Println("saturates against BBR, whose inflight cap bounds the standing queue.")
}
