// Fairness: build a Figure-3-style heatmap for every system against a
// chosen congestion control — the normalised bitrate difference
// (game − tcp)/capacity across the capacity × queue grid.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/gamestream"
	"repro/internal/report"
)

func main() {
	cca := flag.String("cca", core.Cubic, "competing flow: cubic or bbr")
	scale := flag.Float64("scale", 0.4, "timeline compression")
	flag.Parse()

	for _, sys := range core.Systems {
		h := &report.Heatmap{
			Title: fmt.Sprintf("(game - tcp)/capacity: %s vs TCP %s", sys, *cca),
			Cols:  []string{"q 0.5x", "q 2x", "q 7x"},
		}
		for _, capMb := range []float64{35, 25, 15} {
			h.Rows = append(h.Rows, fmt.Sprintf("%.0f Mb/s", capMb))
			var row []float64
			for _, q := range []float64{0.5, 2, 7} {
				res := core.Run(core.Config{
					System:    gamestream.System(sys),
					CCA:       *cca,
					Capacity:  core.Mbps(capMb),
					Queue:     q,
					Seed:      11,
					TimeScale: *scale,
				})
				row = append(row, res.FairnessRatio())
			}
			h.Cells = append(h.Cells, row)
		}
		fmt.Println(h)
	}
}
