// Package examples holds runnable demonstration programs; this harness
// builds and executes each one on a heavily compressed timeline so
// `go test ./examples/...` proves every example still compiles, runs to
// completion, and prints its report.
package examples

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs skipped in -short mode")
	}

	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	bindir := t.TempDir()
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, name)
			build := exec.Command("go", "build", "-o", bin, "./examples/"+name)
			build.Dir = ".." // module root, so package paths resolve
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}

			// Every example takes -scale; 0.05 compresses the 9-minute
			// trace to ~27 s of simulated time per run.
			out, err := exec.Command(bin, "-scale", "0.05").CombinedOutput()
			if err != nil {
				t.Fatalf("run: %v\n%s", err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatal("example produced no output")
			}
			t.Logf("%s: %d bytes of output", name, len(out))
		})
	}
}
