// AQM: the paper's future-work experiment — rerun a bad bufferbloat
// condition (7x BDP queue, competing TCP Cubic) with the drop-tail queue
// replaced by CoDel and FQ-CoDel, showing active queue management removes
// the latency penalty the paper measured and FQ-CoDel additionally isolates
// the game stream's share.
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
)

func main() {
	scale := flag.Float64("scale", 0.4, "timeline compression")
	flag.Parse()

	fmt.Println("Stadia vs TCP Cubic, 25 Mb/s, 7x BDP buffer — queue discipline comparison")
	fmt.Printf("%-10s  %10s  %12s  %12s  %8s\n", "qdisc", "RTT (ms)", "game (Mb/s)", "tcp (Mb/s)", "f/s")
	for _, aqm := range []string{core.DropTail, core.CoDel, core.FQCoDel} {
		res := core.Run(core.Config{
			System:    core.Stadia,
			CCA:       core.Cubic,
			Capacity:  core.Mbps(25),
			Queue:     7,
			AQM:       aqm,
			Seed:      3,
			TimeScale: *scale,
		})
		from, to := res.Cfg.Timeline.FairnessWindow()
		fmt.Printf("%-10s  %10.1f  %12.1f  %12.1f  %8.1f\n",
			aqm, res.MeanRTT(),
			res.GameSeries().MeanBetween(from, to),
			res.TCPSeries().MeanBetween(from, to),
			res.MeanFPS())
	}
	fmt.Println("\nDrop-tail shows the paper's ~110 ms bufferbloat RTT; CoDel keeps the")
	fmt.Println("queue near its 5 ms target; FQ-CoDel also gives the stream its fair share.")
}
