// Benchmarks regenerating each of the paper's tables and figures. One
// benchmark iteration runs the full (reduced-size) campaign a figure needs
// and renders it; -benchtime=1x gives one regeneration per target.
//
// The campaign size is kept small (1 iteration, 0.15x timeline) so the
// whole suite completes in minutes on one core; cmd/gsbench runs the
// full-fidelity versions (15 iterations, 9-minute traces).
package main

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/figures"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/units"
)

// benchOpts is the reduced campaign used by the benchmarks.
func benchOpts() figures.Options {
	return figures.Options{Iterations: 1, TimeScale: 0.15, Workers: 8}
}

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		out := c.Table1().String()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		panels := c.Figure2()
		if len(panels) != 6 {
			b.Fatalf("panels = %d", len(panels))
		}
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		maps := c.Figure3()
		if len(maps) != 6 {
			b.Fatalf("heatmaps = %d", len(maps))
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		pts := c.Figure4()
		if len(pts) != 54 {
			b.Fatalf("points = %d", len(pts))
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		out := c.Table3().String()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		out := c.Table4().String()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		out := c.Table5().String()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkLossRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		out := c.LossTables().String()
		if len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkSingleRun measures the cost of one full-fidelity 9-minute trace
// (the unit of work behind every table cell) and reports simulated events
// per run, engine dispatch throughput, and the sim/wall speedup. Metrics
// are aggregated across iterations and reported once — ReportMetric inside
// the loop would leave only the last iteration's numbers.
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	var events float64
	var wall, simTime float64
	for i := 0; i < b.N; i++ {
		res := experiment.Run(experiment.RunConfig{
			Condition: experiment.Condition{
				System:    gamestream.Stadia,
				CCA:       "cubic",
				Capacity:  units.Mbps(25),
				QueueMult: 2,
			},
			Seed: uint64(i + 1),
		})
		events += float64(res.EventsProcessed)
		wall += res.Engine.WallTime.Seconds()
		simTime += res.Engine.SimTime.Seconds()
	}
	b.ReportMetric(events/float64(b.N), "events/run")
	if wall > 0 {
		b.ReportMetric(events/wall, "events/sec")
		b.ReportMetric(simTime/wall, "sim_x_real")
	}
}

// BenchmarkBatchDispatchManyFlows measures the engine's fixed 64-slot
// dispatch batch buffer where it earns its keep: the many_flows_200
// condition, whose 200 on/off flows pile events onto shared timestamps. The
// serial sub-benchmark runs the identical workload with the batched drain
// loop disabled (SetBatchDispatch(false) via SerialDispatch), so the pair
// isolates exactly what the batch buffer buys. gsbench pins the
// full-fidelity batched number in BENCH_*.json as many_flows_200.
func BenchmarkBatchDispatchManyFlows(b *testing.B) {
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"batched", false}, {"serial", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var events, wall float64
			for i := 0; i < b.N; i++ {
				res := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2,
					},
					Population:     experiment.FlowPopulation{Flows: 200},
					Timeline:       metrics.PaperTimeline.Scale(0.15),
					Seed:           uint64(i + 1),
					SerialDispatch: mode.serial,
				})
				events += float64(res.EventsProcessed)
				wall += res.Engine.WallTime.Seconds()
			}
			b.ReportMetric(events/float64(b.N), "events/run")
			if wall > 0 {
				b.ReportMetric(events/wall, "events/sec")
			}
		})
	}
}

// BenchmarkAblationAQM compares the drop-tail bufferbloat condition against
// the future-work AQM variants (DESIGN.md ablation).
func BenchmarkAblationAQM(b *testing.B) {
	for _, aqm := range []string{experiment.AQMDropTail, experiment.AQMCoDel, experiment.AQMFQCoDel} {
		b.Run(aqm, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System:    gamestream.Stadia,
						CCA:       "cubic",
						Capacity:  units.Mbps(25),
						QueueMult: 7,
						AQM:       aqm,
					},
					Timeline: metrics.PaperTimeline.Scale(0.2),
					Seed:     uint64(i + 1),
				})
				ff, ft := res.Cfg.Timeline.FairnessWindow()
				xs := res.RTTBetween(ff, ft)
				mean := 0.0
				for _, x := range xs {
					mean += x
				}
				if len(xs) > 0 {
					mean /= float64(len(xs))
				}
				b.ReportMetric(mean, "rtt_ms")
			}
		})
	}
}

// BenchmarkHarmTable regenerates the future-work harm analysis.
func BenchmarkHarmTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		if len(c.HarmTable().Rows) == 0 {
			b.Fatal("empty harm table")
		}
	}
}

// BenchmarkQoETable regenerates the future-work QoE comparison.
func BenchmarkQoETable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		if len(c.QoETable().Rows) == 0 {
			b.Fatal("empty QoE table")
		}
	}
}

// BenchmarkMixTable regenerates the future-work traffic mixtures.
func BenchmarkMixTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		if len(c.MixTable().Rows) == 0 {
			b.Fatal("empty mix table")
		}
	}
}

// BenchmarkAblationTable regenerates the mechanism knock-out comparison.
func BenchmarkAblationTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		if len(c.AblationTable().Rows) == 0 {
			b.Fatal("empty ablation table")
		}
	}
}

// BenchmarkResponseRecoveryTable regenerates the tech-report breakdown.
func BenchmarkResponseRecoveryTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := figures.NewCampaign(benchOpts())
		if len(c.ResponseRecoveryTable().Rows) == 0 {
			b.Fatal("empty response/recovery table")
		}
	}
}

// BenchmarkAblationBBRv2 contrasts the paper's BBRv1 competitor with BBRv2
// against the most BBR-sensitive system (Luna) at the paper's starvation
// cell: v2's loss response should leave Luna a larger share.
func BenchmarkAblationBBRv2(b *testing.B) {
	for _, cca := range []string{"bbr", "bbr2"} {
		b.Run(cca, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System:    gamestream.Luna,
						CCA:       cca,
						Capacity:  units.Mbps(25),
						QueueMult: 0.5,
					},
					Timeline: metrics.PaperTimeline.Scale(0.15),
					Seed:     uint64(i + 1),
				})
				ff, ft := r.Cfg.Timeline.FairnessWindow()
				b.ReportMetric(r.GameSeries().MeanBetween(ff, ft), "game_mbps")
			}
		})
	}
}
