# Verification entry points. `make verify` is the tier-1 gate plus the
# static and race checks that keep the concurrent sweep code honest; CI and
# pre-commit hooks should call it rather than re-listing the steps.

GO ?= go

.PHONY: verify build test vet race bench bench-json bench-compare probe-demo fuzz-smoke cover-netem cover-runcache cover-obs cover-campaign impair-demo docs-check chaos-smoke campaign-smoke

# BENCH_N matches this PR's position in the stacked sequence; bump it when a
# later change re-baselines the trajectory file. BENCH_PREV is the baseline
# the bench-compare gate diffs against.
BENCH_N ?= 10
BENCH_PREV ?= 9

verify: build vet test race cover-netem cover-runcache cover-obs cover-campaign

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The sweep runner, the observability sinks, the run cache, and the campaign
# coordinator are the only concurrent code in the repository; keep them
# race-clean. netem and tcp ride along: they are single-threaded by design,
# and -race on them proves a future refactor didn't quietly share an
# impairer or a sender across workers.
race:
	$(GO) test -race ./internal/experiment/... ./internal/sim/... ./internal/obs/... ./internal/netem/... ./internal/tcp/... ./internal/runcache/... ./internal/campaign/...

# Short coverage-guided sessions: the receiver-reassembly target, the
# three experiment-flag parsers (schedule/loss/probability), the
# scenario-file parser, and the campaign-spec parser. Corpora are checked
# in under internal/*/testdata/fuzz. Raise FUZZTIME (and PARSEFUZZTIME for
# the cheap string parsers) for a real local campaign.
FUZZTIME ?= 30s
PARSEFUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/tcp -run '^$$' -fuzz FuzzReceiverReassembly -fuzztime $(FUZZTIME)
	$(GO) test ./internal/experiment -run '^$$' -fuzz FuzzParseSchedule -fuzztime $(PARSEFUZZTIME)
	$(GO) test ./internal/experiment -run '^$$' -fuzz FuzzParseLoss -fuzztime $(PARSEFUZZTIME)
	$(GO) test ./internal/experiment -run '^$$' -fuzz FuzzParseProb -fuzztime $(PARSEFUZZTIME)
	$(GO) test ./internal/scenario -run '^$$' -fuzz FuzzParseScenario -fuzztime $(PARSEFUZZTIME)
	$(GO) test ./internal/campaign -run '^$$' -fuzz FuzzParseCampaign -fuzztime $(PARSEFUZZTIME)

# The impairment subsystem is the loss model under every CC validation
# claim; hold its statement coverage at >= 80%.
cover-netem:
	@$(GO) test -coverprofile=netem.cover.out ./internal/netem > /dev/null
	@$(GO) tool cover -func=netem.cover.out | awk '/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < 80) { printf "netem coverage %.1f%% < 80%%\n", $$3; exit 1 } \
		else printf "netem coverage %.1f%% (gate 80%%)\n", $$3 }'
	@rm -f netem.cover.out

# The run cache substitutes stored bytes for executions; a silent bug there
# corrupts every downstream table. Hold its statement coverage at >= 80%.
cover-runcache:
	@$(GO) test -coverprofile=runcache.cover.out ./internal/runcache > /dev/null
	@$(GO) tool cover -func=runcache.cover.out | awk '/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < 80) { printf "runcache coverage %.1f%% < 80%%\n", $$3; exit 1 } \
		else printf "runcache coverage %.1f%% (gate 80%%)\n", $$3 }'
	@rm -f runcache.cover.out

# The telemetry aggregator folds every campaign's metrics into the sketches
# the live endpoint and gsreport -telemetry serve; a folding bug biases every
# published quantile. Hold its statement coverage at >= 80%.
cover-obs:
	@$(GO) test -coverprofile=obs.cover.out ./internal/obs > /dev/null
	@$(GO) tool cover -func=obs.cover.out | awk '/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < 80) { printf "obs coverage %.1f%% < 80%%\n", $$3; exit 1 } \
		else printf "obs coverage %.1f%% (gate 80%%)\n", $$3 }'
	@rm -f obs.cover.out

# The campaign coordinator turns a spec into the merged telemetry every
# report consumes; a sharding or merge bug silently biases whole campaigns.
# Hold its statement coverage at >= 80%.
cover-campaign:
	@$(GO) test -short -coverprofile=campaign.cover.out ./internal/campaign > /dev/null
	@$(GO) tool cover -func=campaign.cover.out | awk '/^total:/ { gsub(/%/, "", $$3); \
		if ($$3 + 0 < 80) { printf "campaign coverage %.1f%% < 80%%\n", $$3; exit 1 } \
		else printf "campaign coverage %.1f%% (gate 80%%)\n", $$3 }'
	@rm -f campaign.cover.out

# One regeneration per benchmark target (reduced-size campaigns), then the
# fixed trajectory suite written as BENCH_$(BENCH_N).json (see README).
bench: bench-json
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

bench-json:
	$(GO) run ./cmd/gsbench -bench-json BENCH_$(BENCH_N).json

# Regression gate between the two newest checked-in trajectory files: fail
# on any >10% events_per_sec drop or any allocs_per_run growth. CI's
# bench-gate job runs this plus a freshly measured file against the
# checked-in baseline.
bench-compare:
	$(GO) run ./cmd/gsbench -bench-compare BENCH_$(BENCH_PREV).json BENCH_$(BENCH_N).json

# Documentation gate: every markdown link and backticked file reference in
# the root and docs/ markdown must resolve to a real file, and every
# shipped scenario and campaign file must parse to a cacheable
# configuration.
docs-check:
	$(GO) test -run 'TestDocsLinksResolve|TestScenarioFilesParse|TestCampaignFilesParse' -count=1 .

# A sharded campaign end to end at CI size: the coordinator spawns two
# gscampaign worker processes over a throwaway directory, sweeps up and
# merges their shards, and gsreport renders the merged telemetry. The
# second pass resumes the finished campaign (a pure re-merge) and must
# leave the deterministic artefact byte-identical.
campaign-smoke:
	rm -rf campaign-smoke.dir
	printf '%s\n' '[campaign]' 'name = ci-smoke' 'seed = 42' 'iterations = 2' \
		'scale = 0.05' 'shards = 4' '' '[grid]' 'systems = stadia, luna' \
		'ccas = cubic, solo' 'capacities = 25mbit' 'queue_mults = 2' \
		> campaign-smoke.campaign
	$(GO) run ./cmd/gscampaign -spec campaign-smoke.campaign -dir campaign-smoke.dir -workers 2
	cp campaign-smoke.dir/merged.det.json campaign-smoke.det1.json
	$(GO) run ./cmd/gscampaign -dir campaign-smoke.dir -resume > /dev/null
	cmp campaign-smoke.det1.json campaign-smoke.dir/merged.det.json
	$(GO) run ./cmd/gsreport -campaign campaign-smoke.dir
	rm -rf campaign-smoke.dir campaign-smoke.campaign campaign-smoke.det1.json

# The EXPERIMENTS.md chaos example at CI size: a seeded campaign through a
# throwaway cache, rendered as the per-invariant verdict table, then
# re-run to prove the 100% cache hit. Exit status is non-zero on any
# invariant violation.
chaos-smoke:
	rm -rf chaos-smoke.cache
	$(GO) run ./cmd/gssim -chaos -chaos-runs 40 -seed 42 -scale 0.05 \
		-cache chaos-smoke.cache -invariants-out chaos-smoke.json
	$(GO) run ./cmd/gssim -chaos -chaos-runs 40 -seed 42 -scale 0.05 \
		-cache chaos-smoke.cache
	$(GO) run ./cmd/gsreport -invariants chaos-smoke.json
	rm -rf chaos-smoke.cache chaos-smoke.json

# The EXPERIMENTS.md worked example: one probed Cubic-vs-BBR run plus the
# terminal summaries of the exported CC and queue telemetry.
probe-demo:
	$(GO) run ./cmd/gssim -cca cubic,bbr -probe -probe-out demo > demo.trace.csv
	$(GO) run ./cmd/gsreport -cc demo.cc.csv -queue demo.queue.csv

# The EXPERIMENTS.md impairment example: Gilbert-Elliott loss plus a mid-run
# link flap, with the loss episodes surfaced from the probe's drop log.
impair-demo:
	$(GO) run ./cmd/gssim -loss "ge:p=0.01,r=0.25" -jitter 2ms \
		-schedule "240s down; 242s up" -probe -probe-out impair \
		-runlog impair.jsonl > impair.trace.csv
	$(GO) run ./cmd/gsreport -drops impair.drops.csv
	$(GO) run ./cmd/gsreport -runlog impair.jsonl
