# Verification entry points. `make verify` is the tier-1 gate plus the
# static and race checks that keep the concurrent sweep code honest; CI and
# pre-commit hooks should call it rather than re-listing the steps.

GO ?= go

.PHONY: verify build test vet race bench bench-json probe-demo

# BENCH_N matches this PR's position in the stacked sequence; bump it when a
# later change re-baselines the trajectory file.
BENCH_N ?= 3

verify: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The sweep runner and the observability sinks are the only concurrent
# code in the repository; keep them race-clean.
race:
	$(GO) test -race ./internal/experiment/... ./internal/sim/... ./internal/obs/...

# One regeneration per benchmark target (reduced-size campaigns), then the
# fixed trajectory suite written as BENCH_$(BENCH_N).json (see README).
bench: bench-json
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

bench-json:
	$(GO) run ./cmd/gsbench -bench-json BENCH_$(BENCH_N).json

# The EXPERIMENTS.md worked example: one probed Cubic-vs-BBR run plus the
# terminal summaries of the exported CC and queue telemetry.
probe-demo:
	$(GO) run ./cmd/gssim -cca cubic,bbr -probe -probe-out demo > demo.trace.csv
	$(GO) run ./cmd/gsreport -cc demo.cc.csv -queue demo.queue.csv
