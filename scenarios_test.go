package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/campaign"
	"repro/internal/experiment"
	"repro/internal/scenario"
)

// TestScenarioFilesParse keeps every shipped scenario file loadable and
// compilable to a cacheable run configuration — the same gate docs-check
// applies to markdown links. A scenario that ships broken is worse than no
// scenario at all.
func TestScenarioFilesParse(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.scn")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario files found under scenarios/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			sp, err := scenario.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			iters := sp.Iterations
			if iters <= 0 {
				iters = 1
			}
			for it := 0; it < iters; it++ {
				cfg := sp.RunConfig(it).Defaults()
				if _, ok := experiment.CacheKey(cfg); !ok {
					t.Fatalf("iteration %d not cacheable: %+v", it, cfg)
				}
			}
		})
	}
}

// TestCampaignFilesParse applies the same ship-nothing-broken gate to the
// shipped campaign specs: each must parse, re-render to a canonical fixed
// point, and expand to cells that compile into cacheable runs.
func TestCampaignFilesParse(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.campaign")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no campaign files found under scenarios/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			sp, err := campaign.ParseSpecFile(f)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Total() <= 0 {
				t.Fatal("campaign expands to no runs")
			}
			canon := sp.Canonical()
			back, err := campaign.ParseSpec(strings.NewReader(canon))
			if err != nil || back.Canonical() != canon {
				t.Fatalf("canonical text not a fixed point (err %v):\n%s", err, canon)
			}
			cells := sp.Cells()
			if len(cells) != sp.Total() {
				t.Fatalf("expanded %d cells, want %d", len(cells), sp.Total())
			}
			for _, c := range []campaign.Cell{cells[0], cells[len(cells)-1]} {
				if _, ok := experiment.CacheKey(c.RunConfig(sp)); !ok {
					t.Fatalf("cell %d not cacheable", c.Index)
				}
			}
		})
	}
}
