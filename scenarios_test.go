package main

import (
	"path/filepath"
	"testing"

	"repro/internal/experiment"
	"repro/internal/scenario"
)

// TestScenarioFilesParse keeps every shipped scenario file loadable and
// compilable to a cacheable run configuration — the same gate docs-check
// applies to markdown links. A scenario that ships broken is worse than no
// scenario at all.
func TestScenarioFilesParse(t *testing.T) {
	files, err := filepath.Glob("scenarios/*.scn")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no scenario files found under scenarios/")
	}
	for _, f := range files {
		t.Run(filepath.Base(f), func(t *testing.T) {
			sp, err := scenario.Load(f)
			if err != nil {
				t.Fatal(err)
			}
			iters := sp.Iterations
			if iters <= 0 {
				iters = 1
			}
			for it := 0; it < iters; it++ {
				cfg := sp.RunConfig(it).Defaults()
				if _, ok := experiment.CacheKey(cfg); !ok {
					t.Fatalf("iteration %d not cacheable: %+v", it, cfg)
				}
			}
		})
	}
}
