package main

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsLinksResolve walks every markdown file in the repository and
// checks that the documents it points at exist: both real markdown links
// `[text](path)` and the backticked `path/to/FILE.md` convention the prose
// uses. A reference resolves if it exists relative to the referencing
// file's directory or to the repository root (the prose convention). This
// is the `make docs-check` gate — documentation that names a file that
// moved or was never written fails CI, not a reader.
func TestDocsLinksResolve(t *testing.T) {
	var mdFiles []string
	for _, pattern := range []string{"*.md", "docs/*.md"} {
		m, err := filepath.Glob(pattern)
		if err != nil {
			t.Fatal(err)
		}
		mdFiles = append(mdFiles, m...)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("found only %d markdown files — checker looking in the wrong place?", len(mdFiles))
	}

	linkRe := regexp.MustCompile(`\]\(([^)]+)\)`)
	tickRe := regexp.MustCompile("`([A-Za-z0-9_./-]+\\.md)`")

	resolves := func(from, ref string) bool {
		ref = strings.TrimSuffix(ref, "/")
		if _, err := os.Stat(filepath.Join(filepath.Dir(from), ref)); err == nil {
			return true
		}
		_, err := os.Stat(ref)
		return err == nil
	}

	for _, f := range mdFiles {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		var refs []string
		for _, m := range linkRe.FindAllStringSubmatch(string(data), -1) {
			ref := strings.TrimSpace(m[1])
			if strings.Contains(ref, "://") || strings.HasPrefix(ref, "mailto:") || strings.HasPrefix(ref, "#") {
				continue // external links and intra-doc anchors
			}
			if i := strings.IndexByte(ref, '#'); i >= 0 {
				ref = ref[:i]
			}
			if ref != "" {
				refs = append(refs, ref)
			}
		}
		for _, m := range tickRe.FindAllStringSubmatch(string(data), -1) {
			refs = append(refs, m[1])
		}
		for _, ref := range refs {
			if !resolves(f, ref) {
				t.Errorf("%s references %q, which does not exist", f, ref)
			}
		}
	}
}
