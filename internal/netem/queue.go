// Package netem provides the simulated network elements that replace the
// paper's physical testbed: serialising links, netem-style fixed delays,
// tc-tbf token-bucket shapers with pluggable queues (drop-tail, CoDel,
// FQ-CoDel), and a router that ties them together. Parameters deliberately
// mirror the tc command line the paper ran on its Raspberry Pi router
// (rate / burst / limit / delay).
package netem

import (
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Queue buffers packets at a bottleneck. Implementations decide drop policy
// on enqueue (drop-tail) or dequeue (CoDel). All queue state is in bytes as
// well as packets, since tc limits are byte-denominated.
type Queue interface {
	// Enqueue offers p to the queue at time now. It returns false if the
	// packet was dropped instead of queued.
	Enqueue(p *packet.Packet, now sim.Time) bool
	// Dequeue removes and returns the next packet to transmit, or nil if
	// the queue is empty. AQM implementations may drop packets internally
	// during this call; such drops are reported via the drop callback.
	Dequeue(now sim.Time) *packet.Packet
	// Peek returns the next packet without removing it, or nil.
	Peek() *packet.Packet
	// Len returns the number of queued packets.
	Len() int
	// Bytes returns the total queued bytes.
	Bytes() units.ByteSize
	// SetDropCallback registers fn to be invoked for every dropped packet.
	SetDropCallback(fn func(*packet.Packet))
}

// HeadSojourner is the optional telemetry side of a Queue: implementations
// report how long their oldest packet has been waiting — the queue's
// current sojourn time, the quantity CoDel's control law acts on. The probe
// layer type-asserts for it, so queues without sojourn accounting (e.g.
// schedulers whose "head" depends on a pending scheduling decision) simply
// produce no sojourn series.
type HeadSojourner interface {
	// HeadSojourn returns the waiting time of the oldest queued packet at
	// time now. ok is false when the queue is empty.
	HeadSojourn(now sim.Time) (d time.Duration, ok bool)
}

// queued wraps a packet with its enqueue time, needed by CoDel's sojourn
// accounting.
type queued struct {
	p  *packet.Packet
	at sim.Time
}

// fifo is a slice-backed ring buffer shared by the queue implementations.
type fifo struct {
	items []queued
	head  int
	bytes units.ByteSize
}

func (f *fifo) push(q queued) {
	f.items = append(f.items, q)
	f.bytes += units.ByteSize(q.p.Size)
}

func (f *fifo) pop() (queued, bool) {
	if f.head >= len(f.items) {
		return queued{}, false
	}
	q := f.items[f.head]
	f.items[f.head] = queued{} // release reference
	f.head++
	f.bytes -= units.ByteSize(q.p.Size)
	// Compact once the dead prefix dominates, keeping amortised O(1).
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return q, true
}

func (f *fifo) peek() (queued, bool) {
	if f.head >= len(f.items) {
		return queued{}, false
	}
	return f.items[f.head], true
}

func (f *fifo) len() int { return len(f.items) - f.head }

// DropTail is the classic byte-limited FIFO queue: packets that would push
// occupancy past the limit are dropped on arrival. This matches the paper's
// router configuration (tbf "limit").
type DropTail struct {
	limit  units.ByteSize
	q      fifo
	onDrop func(*packet.Packet)

	// Drops counts packets dropped since creation.
	Drops int
}

// NewDropTail returns a drop-tail queue holding at most limit bytes.
// A non-positive limit means unlimited (used for access links).
func NewDropTail(limit units.ByteSize) *DropTail {
	return &DropTail{limit: limit}
}

// Enqueue implements Queue.
func (d *DropTail) Enqueue(p *packet.Packet, now sim.Time) bool {
	if d.limit > 0 && d.q.bytes+units.ByteSize(p.Size) > d.limit {
		d.Drops++
		if d.onDrop != nil {
			d.onDrop(p)
		}
		return false
	}
	d.q.push(queued{p: p, at: now})
	return true
}

// Dequeue implements Queue.
func (d *DropTail) Dequeue(now sim.Time) *packet.Packet {
	q, ok := d.q.pop()
	if !ok {
		return nil
	}
	return q.p
}

// Peek implements Queue.
func (d *DropTail) Peek() *packet.Packet {
	q, ok := d.q.peek()
	if !ok {
		return nil
	}
	return q.p
}

// Len implements Queue.
func (d *DropTail) Len() int { return d.q.len() }

// Bytes implements Queue.
func (d *DropTail) Bytes() units.ByteSize { return d.q.bytes }

// Limit returns the configured byte limit (0 = unlimited).
func (d *DropTail) Limit() units.ByteSize { return d.limit }

// HeadSojourn implements HeadSojourner.
func (d *DropTail) HeadSojourn(now sim.Time) (time.Duration, bool) {
	q, ok := d.q.peek()
	if !ok {
		return 0, false
	}
	return now.Sub(q.at), true
}

// SetDropCallback implements Queue.
func (d *DropTail) SetDropCallback(fn func(*packet.Packet)) { d.onDrop = fn }
