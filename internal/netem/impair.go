package netem

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Loss model selectors for Impairment.LossModel.
const (
	// LossBernoulli drops each packet independently with probability
	// LossRate — `netem loss <p>%`.
	LossBernoulli = "bernoulli"
	// LossGE is the two-state Gilbert-Elliott bursty loss model — `netem
	// loss gemodel p r 1-h 1-k`: the chain moves Good→Bad with probability
	// GEGoodBad and Bad→Good with GEBadGood per packet, and drops with
	// probability GELossGood / GELossBad in the respective state.
	LossGE = "ge"
)

// Impairment configures an Impairer. The zero value is a clean path. All
// fields are scalars so the struct stays comparable and can ride inside
// grid-condition keys.
type Impairment struct {
	// LossModel selects the drop process: "", LossBernoulli or LossGE.
	LossModel string
	// LossRate is the Bernoulli per-packet drop probability.
	LossRate float64
	// GEGoodBad (p) and GEBadGood (r) are the Gilbert-Elliott transition
	// probabilities per packet; GELossGood (1-k) and GELossBad (1-h) the
	// per-state drop probabilities. When both per-state probabilities are
	// zero the classic Gilbert model is assumed: lossless Good state,
	// fully lossy Bad state.
	GEGoodBad  float64
	GEBadGood  float64
	GELossGood float64
	GELossBad  float64
	// Jitter adds a per-packet extra delay uniform in [0, Jitter] — the
	// spread of `netem delay <d> <jitter>` (the base delay stays on the
	// Delay element). Without Reorder, delivery order is preserved, like
	// netem above a rate-limited child qdisc.
	Jitter time.Duration
	// Reorder lets jittered packets overtake each other, the behaviour
	// netem exhibits with a bare `delay ± jitter`.
	Reorder bool
	// Duplicate emits a copy of each packet with this probability —
	// `netem duplicate <p>%`.
	Duplicate float64
}

// Enabled reports whether the impairment does anything at all. Scenario
// builders use it to skip constructing (and RNG-forking for) an Impairer on
// clean-path runs, keeping their event and random streams unchanged.
func (im Impairment) Enabled() bool {
	return im.LossModel != "" || im.Jitter > 0 || im.Duplicate > 0
}

// String renders the impairment compactly and deterministically, e.g.
// "loss2%+jit3ms~+dup1%" or "geP0.01R0.25". The zero value renders "none".
func (im Impairment) String() string {
	var parts []string
	switch im.LossModel {
	case LossBernoulli:
		parts = append(parts, fmt.Sprintf("loss%g%%", im.LossRate*100))
	case LossGE:
		s := fmt.Sprintf("geP%gR%g", im.GEGoodBad, im.GEBadGood)
		if im.GELossGood != 0 || im.GELossBad != 0 {
			s += fmt.Sprintf("g%gb%g", im.GELossGood, im.GELossBad)
		}
		parts = append(parts, s)
	}
	if im.Jitter > 0 {
		s := "jit" + im.Jitter.String()
		if im.Reorder {
			s += "~"
		}
		parts = append(parts, s)
	}
	if im.Duplicate > 0 {
		parts = append(parts, fmt.Sprintf("dup%g%%", im.Duplicate*100))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// ImpairStats accumulates an Impairer's counters.
type ImpairStats struct {
	// Packets counts packets entering the impairer.
	Packets int
	// LossDrops counts packets killed by the loss model, FlapDrops the
	// ones killed because the link was down.
	LossDrops int
	FlapDrops int
	// Duplicates counts extra copies emitted, Reordered the packets that
	// overtook an earlier one.
	Duplicates int
	Reordered  int
	// Flaps counts down transitions; Down is cumulative link-down time
	// (use Snapshot to include an episode still open at end of run).
	Flaps int
	Down  time.Duration
}

// Impairer is the stochastic netem element: Bernoulli or Gilbert-Elliott
// loss, uniform delay jitter with optional reordering, duplicate injection,
// and a link-flap switch — everything `tc netem` adds beyond rate and fixed
// delay. It draws from its own forked RNG so runs stay deterministic and
// byte-identical regardless of worker count, and it releases every packet it
// drops back to the run's packet pool.
//
// All mutators (SetDown, SetLossRate, SetJitter) are safe to call mid-run
// from sim events; the Schedule layer in internal/experiment does exactly
// that.
type Impairer struct {
	eng  *sim.Engine
	cfg  Impairment
	rng  *sim.RNG
	next packet.Handler

	pool   *packet.Pool
	onDrop func(*packet.Packet)

	geBad     bool
	down      bool
	downSince sim.Time
	// lastOut is the latest scheduled delivery: the order clamp without
	// Reorder, the overtake detector with it.
	lastOut sim.Time
	deliver func(any)
	Stats   ImpairStats
}

// NewImpairer returns an impairer delivering to next, drawing from rng. The
// classic Gilbert default (lossless Good, fully lossy Bad) is applied when a
// GE model leaves both per-state loss probabilities zero.
func NewImpairer(eng *sim.Engine, cfg Impairment, rng *sim.RNG, next packet.Handler) *Impairer {
	if cfg.LossModel == LossGE && cfg.GELossGood == 0 && cfg.GELossBad == 0 {
		cfg.GELossBad = 1
	}
	i := &Impairer{eng: eng, cfg: cfg, rng: rng, next: next}
	i.deliver = func(x any) { i.next.Handle(x.(*packet.Packet)) }
	return i
}

// SetPool attaches the run's packet freelist; dropped packets (and nothing
// else) are released to it. A nil pool degrades to garbage collection.
func (i *Impairer) SetPool(p *packet.Pool) { i.pool = p }

// SetDropCallback registers fn to observe every packet the impairer kills
// (loss-model drops and link-down drops alike), before the packet returns to
// the pool. The callback must not retain the packet.
func (i *Impairer) SetDropCallback(fn func(*packet.Packet)) { i.onDrop = fn }

// SetDown raises or clears the link-flap state. While down, every packet is
// dropped. Transitions are edge-triggered; repeated calls with the same
// state are no-ops.
func (i *Impairer) SetDown(down bool) {
	if down == i.down {
		return
	}
	i.down = down
	if down {
		i.Stats.Flaps++
		i.downSince = i.eng.Now()
	} else {
		i.Stats.Down += i.eng.Now().Sub(i.downSince)
	}
}

// Down reports whether the link is currently flapped down.
func (i *Impairer) Down() bool { return i.down }

// SetLossRate retunes the Bernoulli drop probability mid-run, switching the
// loss model to Bernoulli if a different one was active.
func (i *Impairer) SetLossRate(p float64) {
	i.cfg.LossModel = LossBernoulli
	i.cfg.LossRate = p
}

// SetJitter retunes the jitter spread mid-run.
func (i *Impairer) SetJitter(j time.Duration) { i.cfg.Jitter = j }

// Config returns the impairer's current (possibly retuned) configuration.
func (i *Impairer) Config() Impairment { return i.cfg }

// Snapshot returns the counters with any still-open down episode accounted
// up to the current sim time.
func (i *Impairer) Snapshot() ImpairStats {
	s := i.Stats
	if i.down {
		s.Down += i.eng.Now().Sub(i.downSince)
	}
	return s
}

// Handle implements packet.Handler.
func (i *Impairer) Handle(p *packet.Packet) {
	i.Stats.Packets++
	if i.down {
		i.Stats.FlapDrops++
		i.drop(p)
		return
	}
	if i.shouldLose() {
		i.Stats.LossDrops++
		i.drop(p)
		return
	}
	if i.cfg.Duplicate > 0 && i.rng.Float64() < i.cfg.Duplicate {
		i.Stats.Duplicates++
		i.forward(i.pool.Clone(p))
	}
	i.forward(p)
}

// shouldLose advances the loss process one packet and returns its verdict.
func (i *Impairer) shouldLose() bool {
	switch i.cfg.LossModel {
	case LossBernoulli:
		return i.cfg.LossRate > 0 && i.rng.Float64() < i.cfg.LossRate
	case LossGE:
		if i.geBad {
			if i.rng.Float64() < i.cfg.GEBadGood {
				i.geBad = false
			}
		} else {
			if i.rng.Float64() < i.cfg.GEGoodBad {
				i.geBad = true
			}
		}
		pl := i.cfg.GELossGood
		if i.geBad {
			pl = i.cfg.GELossBad
		}
		switch {
		case pl <= 0:
			return false
		case pl >= 1:
			return true
		}
		return i.rng.Float64() < pl
	}
	return false
}

// forward delivers p, applying jitter. Without jitter the hand-off is
// synchronous — a loss-only impairer adds no events to the run at all.
func (i *Impairer) forward(p *packet.Packet) {
	if i.cfg.Jitter <= 0 {
		i.next.Handle(p)
		return
	}
	out := i.eng.Now().Add(time.Duration(i.rng.Float64() * float64(i.cfg.Jitter)))
	if out < i.lastOut {
		if i.cfg.Reorder {
			i.Stats.Reordered++
		} else {
			out = i.lastOut
		}
	}
	if out > i.lastOut {
		i.lastOut = out
	}
	i.eng.ScheduleCallAt(out, i.deliver, p)
}

// drop runs the drop callback and recycles the packet.
func (i *Impairer) drop(p *packet.Packet) {
	if i.onDrop != nil {
		i.onDrop(p)
	}
	i.pool.Put(p)
}
