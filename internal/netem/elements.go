package netem

import (
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// Stats accumulates per-element forwarding counters.
type Stats struct {
	Packets int
	Bytes   units.ByteSize
	Drops   int
}

// Link models a store-and-forward link: packets serialise at Rate one at a
// time and then propagate for Delay. The internal buffer is unbounded — use
// a Shaper with a Queue where a bounded bottleneck is required. Packets are
// delivered in order.
type Link struct {
	eng   *sim.Engine
	rate  units.Rate
	delay time.Duration
	next  packet.Handler

	busyUntil sim.Time
	deliver   func(any) // prebuilt so per-packet scheduling allocates nothing
	Stats     Stats
}

// NewLink returns a link serialising at rate with propagation delay d,
// delivering to next. A non-positive rate serialises instantaneously.
func NewLink(eng *sim.Engine, rate units.Rate, d time.Duration, next packet.Handler) *Link {
	l := &Link{eng: eng, rate: rate, delay: d, next: next}
	l.deliver = func(x any) { l.next.Handle(x.(*packet.Packet)) }
	return l
}

// Handle implements packet.Handler.
func (l *Link) Handle(p *packet.Packet) {
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	done := start.Add(l.rate.TimeToTransmit(units.ByteSize(p.Size)))
	l.busyUntil = done
	l.Stats.Packets++
	l.Stats.Bytes += units.ByteSize(p.Size)
	l.eng.ScheduleCallAt(done.Add(l.delay), l.deliver, p)
}

// Delay forwards packets after a fixed delay, preserving order — the
// equivalent of `netem delay <d>`. With jitter configured it matches
// `netem delay <d> <jitter>`: per-packet delays vary uniformly in
// [d-jitter, d+jitter] but delivery order is still preserved (like netem
// with a rate-limited child qdisc, reordering is suppressed).
type Delay struct {
	eng    *sim.Engine
	d      time.Duration
	next   packet.Handler
	jitter time.Duration
	rng    *sim.RNG
	// lastOut enforces in-order delivery under jitter.
	lastOut sim.Time
	deliver func(any)
	Stats   Stats
}

// NewDelay returns a fixed-delay element delivering to next.
func NewDelay(eng *sim.Engine, d time.Duration, next packet.Handler) *Delay {
	de := &Delay{eng: eng, d: d, next: next}
	de.deliver = func(x any) { de.next.Handle(x.(*packet.Packet)) }
	return de
}

// SetJitter enables uniform ± jitter around the base delay, drawn from rng.
func (d *Delay) SetJitter(jitter time.Duration, rng *sim.RNG) {
	d.jitter = jitter
	d.rng = rng
}

// Handle implements packet.Handler.
func (d *Delay) Handle(p *packet.Packet) {
	d.Stats.Packets++
	d.Stats.Bytes += units.ByteSize(p.Size)
	delay := d.d
	if d.jitter > 0 && d.rng != nil {
		delay += time.Duration((2*d.rng.Float64() - 1) * float64(d.jitter))
		if delay < 0 {
			delay = 0
		}
	}
	out := d.eng.Now().Add(delay)
	if out < d.lastOut {
		out = d.lastOut // preserve order
	}
	d.lastOut = out
	d.eng.ScheduleCallAt(out, d.deliver, p)
}

// SetDelay changes the delay for subsequently handled packets.
func (d *Delay) SetDelay(nd time.Duration) { d.d = nd }

// Shaper is a token-bucket filter with an attached queue: the software
// equivalent of `tc qdisc ... tbf rate R burst B limit L` (with the queue
// type swappable for AQM experiments). Tokens accrue at Rate up to Burst
// bytes; packets that cannot be sent immediately wait in the queue, whose
// policy decides drops.
type Shaper struct {
	eng   *sim.Engine
	rate  units.Rate
	burst units.ByteSize
	queue Queue
	next  packet.Handler

	tokens     float64 // bytes
	lastRefill sim.Time
	drainTimer *sim.Timer
	Stats      Stats

	// onEnqueue/onDequeue, when non-nil, observe packets entering and
	// leaving the attached queue (the probe layer's lifecycle taps). They
	// do not fire for packets that pass straight through on spare tokens —
	// those never touch the queue.
	onEnqueue func(*packet.Packet)
	onDequeue func(*packet.Packet)
}

// NewShaper returns a shaper emitting to next. Burst is clamped below at one
// MTU so a full-size packet can always eventually pass.
func NewShaper(eng *sim.Engine, rate units.Rate, burst units.ByteSize, q Queue, next packet.Handler) *Shaper {
	if burst < packet.MTU {
		burst = packet.MTU
	}
	s := &Shaper{
		eng:    eng,
		rate:   rate,
		burst:  burst,
		queue:  q,
		tokens: float64(burst),
		next:   next,
	}
	s.drainTimer = sim.NewTimer(eng, s.drain)
	return s
}

// Queue exposes the attached queue (e.g. for occupancy probes in tests).
func (s *Shaper) Queue() Queue { return s.queue }

// Rate returns the configured shaping rate.
func (s *Shaper) Rate() units.Rate { return s.rate }

// SetRate changes the shaping rate mid-run — `tc qdisc change ... tbf rate R`.
// Tokens already accrued at the old rate are kept (capped at the burst), and
// a pending drain is re-armed so a queued head packet waits the right time
// under the new rate. Non-positive rates are ignored.
func (s *Shaper) SetRate(r units.Rate) {
	if r <= 0 {
		return
	}
	s.refill() // account the elapsed interval at the old rate first
	s.rate = r
	s.drainTimer.Stop()
	s.armDrain()
}

// SetQueueTap registers observers for packets entering and leaving the
// attached queue. Either may be nil; unset taps cost one nil check per
// packet.
func (s *Shaper) SetQueueTap(onEnqueue, onDequeue func(*packet.Packet)) {
	s.onEnqueue = onEnqueue
	s.onDequeue = onDequeue
}

func (s *Shaper) refill() {
	now := s.eng.Now()
	elapsed := now.Sub(s.lastRefill)
	if elapsed > 0 {
		s.tokens += float64(s.rate) / 8 * elapsed.Seconds()
		if s.tokens > float64(s.burst) {
			s.tokens = float64(s.burst)
		}
	}
	s.lastRefill = now
}

// Handle implements packet.Handler.
func (s *Shaper) Handle(p *packet.Packet) {
	s.refill()
	if s.queue.Len() == 0 && s.tokens >= float64(p.Size) {
		s.emit(p)
		return
	}
	if s.queue.Enqueue(p, s.eng.Now()) {
		if s.onEnqueue != nil {
			s.onEnqueue(p)
		}
		s.armDrain()
	} else {
		s.Stats.Drops++
	}
}

func (s *Shaper) emit(p *packet.Packet) {
	s.tokens -= float64(p.Size)
	s.Stats.Packets++
	s.Stats.Bytes += units.ByteSize(p.Size)
	s.next.Handle(p)
}

func (s *Shaper) armDrain() {
	if s.drainTimer.Armed() {
		return
	}
	head := s.queue.Peek()
	if head == nil {
		return
	}
	need := float64(head.Size) - s.tokens
	var wait time.Duration
	if need > 0 {
		wait = time.Duration(need * 8 / float64(s.rate) * float64(time.Second))
		if wait <= 0 {
			wait = time.Nanosecond
		}
	}
	s.drainTimer.Reset(wait)
}

func (s *Shaper) drain() {
	s.refill()
	for {
		head := s.queue.Peek()
		if head == nil {
			return
		}
		if s.tokens < float64(head.Size) {
			break
		}
		p := s.queue.Dequeue(s.eng.Now())
		if p == nil {
			// AQM dropped the whole backlog during dequeue.
			return
		}
		if s.onDequeue != nil {
			s.onDequeue(p)
		}
		s.emit(p)
	}
	s.armDrain()
}

// maxDenseAddr bounds the Addr range served by the router's dense route
// table; scenario builders assign small consecutive addresses, so every
// route lands in the table and the map spill stays empty.
const maxDenseAddr = 1 << 10

// Router forwards packets by destination address through per-destination
// egress pipelines, with optional taps invoked on every forwarded packet
// (the simulator's Wireshark capture point).
type Router struct {
	// routes is a dense table indexed by Addr: per-packet forwarding is a
	// bounds check plus a slice load. Addresses at or above maxDenseAddr
	// (or negative) spill into routesHi.
	routes   []packet.Handler
	routesHi map[packet.Addr]packet.Handler
	taps     []func(*packet.Packet)
	Stats    Stats
}

// NewRouter returns an empty router.
func NewRouter() *Router {
	return &Router{}
}

// Route installs the egress pipeline for packets addressed to dst.
func (r *Router) Route(dst packet.Addr, next packet.Handler) {
	if dst >= 0 && dst < maxDenseAddr {
		if int(dst) >= len(r.routes) {
			nr := make([]packet.Handler, dst+1)
			copy(nr, r.routes)
			r.routes = nr
		}
		r.routes[dst] = next
		return
	}
	if r.routesHi == nil {
		r.routesHi = make(map[packet.Addr]packet.Handler)
	}
	r.routesHi[dst] = next
}

// Tap registers fn to observe every packet the router forwards.
func (r *Router) Tap(fn func(*packet.Packet)) {
	r.taps = append(r.taps, fn)
}

// Handle implements packet.Handler. Packets with no route are dropped and
// counted, which in a correctly wired scenario indicates a configuration
// bug; tests assert the drop counter stays zero.
func (r *Router) Handle(p *packet.Packet) {
	for _, tap := range r.taps {
		tap(p)
	}
	var next packet.Handler
	if d := p.Dst; d >= 0 && int(d) < len(r.routes) {
		next = r.routes[d]
	} else {
		next = r.routesHi[d]
	}
	if next == nil {
		r.Stats.Drops++
		return
	}
	r.Stats.Packets++
	r.Stats.Bytes += units.ByteSize(p.Size)
	next.Handle(p)
}

// maxDenseFlow bounds the FlowID range served by the hosts' dense dispatch
// tables; scenario builders assign small consecutive IDs, so in practice
// every flow lands in the table and the map spill stays empty.
const maxDenseFlow = 1 << 14

// Host is a network endpoint: applications register per-flow handlers for
// delivery and send packets via the host's first hop.
type Host struct {
	Addr packet.Addr

	eng *sim.Engine
	out packet.Handler
	// flows is a dense dispatch table indexed by FlowID: per-packet
	// dispatch is a bounds check plus a slice load, O(1) in the flow
	// population size. IDs at or above maxDenseFlow spill into flowsHi.
	flows    []packet.Handler
	flowsHi  map[packet.FlowID]packet.Handler
	fallback packet.Handler
	nextID   *uint64 // shared packet ID counter
	pool     *packet.Pool
}

// NewHost returns a host with address addr sending into out. ids is the
// shared packet-ID counter for the scenario.
func NewHost(eng *sim.Engine, addr packet.Addr, out packet.Handler, ids *uint64) *Host {
	return &Host{
		Addr:   addr,
		eng:    eng,
		out:    out,
		nextID: ids,
	}
}

// SetOut changes the host's first hop.
func (h *Host) SetOut(out packet.Handler) { h.out = out }

// SetPool attaches a per-run packet freelist. Endpoints on the host then
// allocate via NewPacket, and every packet the host delivers is recycled
// after its flow handler returns — handlers must copy what they need and
// must not retain the *Packet (or its App payload) past Handle. All hosts
// of one engine share one pool; a nil pool (the default) means packets are
// ordinary garbage-collected allocations.
func (h *Host) SetPool(p *packet.Pool) { h.pool = p }

// Pool returns the attached freelist, or nil.
func (h *Host) Pool() *packet.Pool { return h.pool }

// NewPacket returns a zeroed packet, reusing a recycled one when a pool is
// attached.
func (h *Host) NewPacket() *packet.Packet { return h.pool.Get() }

// Bind registers handler to receive packets for flow.
func (h *Host) Bind(flow packet.FlowID, handler packet.Handler) {
	if flow >= 0 && flow < maxDenseFlow {
		if int(flow) >= len(h.flows) {
			if int(flow) < cap(h.flows) {
				h.flows = h.flows[:flow+1]
			} else {
				// Grow geometrically: population flow IDs ascend one at
				// a time, and reallocating per new maximum would make
				// binding N flows O(N²).
				newCap := 2 * (int(flow) + 1)
				nf := make([]packet.Handler, flow+1, newCap)
				copy(nf, h.flows)
				h.flows = nf
			}
		}
		h.flows[flow] = handler
		return
	}
	if h.flowsHi == nil {
		h.flowsHi = make(map[packet.FlowID]packet.Handler)
	}
	h.flowsHi[flow] = handler
}

// BindFallback registers a handler for packets whose flow has no binding.
func (h *Host) BindFallback(handler packet.Handler) { h.fallback = handler }

// Handle implements packet.Handler, dispatching to the bound flow handler.
// The host is the end of a packet's life: once the handler returns, the
// packet is released to the pool (when one is attached).
func (h *Host) Handle(p *packet.Packet) {
	var hd packet.Handler
	if f := p.Flow; f >= 0 && int(f) < len(h.flows) {
		hd = h.flows[f]
	} else if h.flowsHi != nil {
		hd = h.flowsHi[p.Flow]
	}
	if hd != nil {
		hd.Handle(p)
	} else if h.fallback != nil {
		h.fallback.Handle(p)
	}
	h.pool.Put(p)
}

// Send stamps and transmits p via the host's first hop.
func (h *Host) Send(p *packet.Packet) {
	*h.nextID++
	p.ID = *h.nextID
	p.Src = h.Addr
	p.SentAt = h.eng.Now()
	h.out.Handle(p)
}

// Now returns the current simulation time, a convenience for applications
// holding only a host reference.
func (h *Host) Now() sim.Time { return h.eng.Now() }

// Engine returns the simulation engine driving this host.
func (h *Host) Engine() *sim.Engine { return h.eng }
