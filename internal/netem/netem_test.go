package netem

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
	eng   *sim.Engine
}

func (c *collector) Handle(p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.eng.Now())
}

func mkpkt(size int, flow packet.FlowID) *packet.Packet {
	return &packet.Packet{Size: size, Flow: flow, Kind: packet.KindData}
}

func TestLinkSerialisationTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	// 12 Mb/s: 1500 B takes exactly 1 ms; 5 ms propagation.
	link := NewLink(eng, units.Mbps(12), 5*time.Millisecond, sink)
	link.Handle(mkpkt(1500, 1))
	link.Handle(mkpkt(1500, 1))
	eng.Run(sim.End)
	if len(sink.times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(sink.times))
	}
	if sink.times[0] != sim.At(6*time.Millisecond) {
		t.Errorf("first delivery at %v, want 6ms", sink.times[0])
	}
	// Second packet waits for the first to serialise: 2 ms + 5 ms.
	if sink.times[1] != sim.At(7*time.Millisecond) {
		t.Errorf("second delivery at %v, want 7ms", sink.times[1])
	}
}

func TestLinkInfiniteRate(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	link := NewLink(eng, 0, time.Millisecond, sink)
	link.Handle(mkpkt(1500, 1))
	eng.Run(sim.End)
	if sink.times[0] != sim.At(time.Millisecond) {
		t.Errorf("delivery at %v, want 1ms (propagation only)", sink.times[0])
	}
}

func TestLinkPreservesOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	link := NewLink(eng, units.Mbps(10), time.Millisecond, sink)
	for i := 0; i < 50; i++ {
		p := mkpkt(100+i*17%1400, 1)
		p.Seq = int64(i)
		link.Handle(p)
	}
	eng.Run(sim.End)
	for i, p := range sink.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("packet %d has seq %d: reordering", i, p.Seq)
		}
	}
}

func TestDelayElement(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	d := NewDelay(eng, 4*time.Millisecond, sink)
	eng.Schedule(time.Millisecond, func() { d.Handle(mkpkt(100, 1)) })
	eng.Run(sim.End)
	if sink.times[0] != sim.At(5*time.Millisecond) {
		t.Errorf("delivery at %v, want 5ms", sink.times[0])
	}
}

func TestDropTailLimit(t *testing.T) {
	q := NewDropTail(3000)
	ok1 := q.Enqueue(mkpkt(1500, 1), 0)
	ok2 := q.Enqueue(mkpkt(1500, 1), 0)
	ok3 := q.Enqueue(mkpkt(1500, 1), 0)
	if !ok1 || !ok2 {
		t.Error("packets within limit were dropped")
	}
	if ok3 {
		t.Error("packet exceeding limit was queued")
	}
	if q.Drops != 1 {
		t.Errorf("Drops = %d, want 1", q.Drops)
	}
	if q.Bytes() != 3000 {
		t.Errorf("Bytes = %d, want 3000", q.Bytes())
	}
}

func TestDropTailFIFO(t *testing.T) {
	q := NewDropTail(0)
	for i := 0; i < 200; i++ {
		p := mkpkt(100, 1)
		p.Seq = int64(i)
		q.Enqueue(p, 0)
	}
	for i := 0; i < 200; i++ {
		p := q.Dequeue(0)
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue(0) != nil {
		t.Error("dequeue from empty queue returned a packet")
	}
}

func TestDropTailDropCallback(t *testing.T) {
	q := NewDropTail(1000)
	var dropped []*packet.Packet
	q.SetDropCallback(func(p *packet.Packet) { dropped = append(dropped, p) })
	q.Enqueue(mkpkt(800, 1), 0)
	q.Enqueue(mkpkt(800, 2), 0)
	if len(dropped) != 1 || dropped[0].Flow != 2 {
		t.Errorf("drop callback got %v", dropped)
	}
}

// Property: drop-tail conserves packets — everything enqueued is either
// delivered by Dequeue or counted as a drop, and occupancy never exceeds the
// limit.
func TestDropTailConservation(t *testing.T) {
	f := func(sizes []uint16, limitKB uint8) bool {
		limit := units.ByteSize(int64(limitKB)+1) * 1000
		q := NewDropTail(limit)
		queued := 0
		for _, s := range sizes {
			size := int(s%1400) + 100
			if q.Bytes() > limit {
				return false
			}
			if q.Enqueue(mkpkt(size, 1), 0) {
				queued++
			}
		}
		got := 0
		for q.Dequeue(0) != nil {
			got++
		}
		return got == queued && queued+q.Drops == len(sizes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShaperRateConservation(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	rate := units.Mbps(15)
	sh := NewShaper(eng, rate, 125000, NewDropTail(510000/8), sink)
	// Offer 30 Mb/s for 10 s: 1500 B every 0.4 ms.
	var tick *sim.Ticker
	n := 0
	tick = sim.NewTicker(eng, 400*time.Microsecond, func() {
		sh.Handle(mkpkt(1500, 1))
		n++
		if n >= 25000 {
			tick.Stop()
		}
	})
	tick.Start(true)
	eng.Run(sim.At(10 * time.Second))
	var bytes units.ByteSize
	for _, p := range sink.pkts {
		bytes += units.ByteSize(p.Size)
	}
	gotRate := units.RateFromBytes(bytes, 10*time.Second)
	// Output must be within burst tolerance of the shaping rate and never
	// meaningfully above it.
	if gotRate.Mbit() > 15.2 {
		t.Errorf("shaper emitted %.2f Mb/s, above 15 Mb/s rate", gotRate.Mbit())
	}
	if gotRate.Mbit() < 14.5 {
		t.Errorf("shaper emitted only %.2f Mb/s with saturating input", gotRate.Mbit())
	}
	if sh.Queue().(*DropTail).Drops == 0 {
		t.Error("expected drops at 2x overload with finite queue")
	}
}

func TestShaperBurstPasses(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	sh := NewShaper(eng, units.Mbps(1), 10*1500, NewDropTail(0), sink)
	// With a full bucket, a burst up to the bucket size passes immediately.
	for i := 0; i < 10; i++ {
		sh.Handle(mkpkt(1500, 1))
	}
	eng.Run(sim.Start)
	if len(sink.pkts) != 10 {
		t.Errorf("burst delivered %d packets immediately, want 10", len(sink.pkts))
	}
}

func TestShaperQueueDelay(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	// Rate 12.112 Mb/s (1514 B = 1 ms), burst exactly one MTU packet.
	sh := NewShaper(eng, units.Rate(1514*8*1000), 1514, NewDropTail(0), sink)
	for i := 0; i < 5; i++ {
		sh.Handle(mkpkt(1514, 1))
	}
	eng.Run(sim.End)
	if len(sink.times) != 5 {
		t.Fatalf("delivered %d, want 5", len(sink.times))
	}
	// First passes at t=0 on the full bucket; each subsequent waits 1 ms
	// for tokens.
	for i := 1; i < 5; i++ {
		want := sim.At(time.Duration(i) * time.Millisecond)
		diff := sink.times[i].Sub(want)
		if diff < -time.Microsecond || diff > time.Microsecond {
			t.Errorf("packet %d at %v, want ~%v", i, sink.times[i], want)
		}
	}
}

func TestShaperConservation(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	q := NewDropTail(20000)
	sh := NewShaper(eng, units.Mbps(5), 3000, q, sink)
	sent := 0
	var tick *sim.Ticker
	tick = sim.NewTicker(eng, 100*time.Microsecond, func() {
		sh.Handle(mkpkt(1200, 1))
		sent++
		if sent >= 5000 {
			tick.Stop()
		}
	})
	tick.Start(true)
	eng.Run(sim.End)
	if len(sink.pkts)+q.Drops != sent {
		t.Errorf("conservation violated: %d delivered + %d dropped != %d sent",
			len(sink.pkts), q.Drops, sent)
	}
}

func TestRouterRoutesByDestination(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &collector{eng: eng}
	b := &collector{eng: eng}
	r := NewRouter()
	r.Route(1, a)
	r.Route(2, b)
	p1 := mkpkt(100, 1)
	p1.Dst = 1
	p2 := mkpkt(100, 2)
	p2.Dst = 2
	r.Handle(p1)
	r.Handle(p2)
	if len(a.pkts) != 1 || len(b.pkts) != 1 {
		t.Errorf("routing failed: a=%d b=%d", len(a.pkts), len(b.pkts))
	}
}

func TestRouterTap(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	r := NewRouter()
	r.Route(1, sink)
	seen := 0
	r.Tap(func(p *packet.Packet) { seen++ })
	p := mkpkt(100, 1)
	p.Dst = 1
	r.Handle(p)
	if seen != 1 {
		t.Errorf("tap saw %d packets, want 1", seen)
	}
}

func TestRouterUnroutedDrops(t *testing.T) {
	r := NewRouter()
	p := mkpkt(100, 1)
	p.Dst = 99
	r.Handle(p)
	if r.Stats.Drops != 1 {
		t.Errorf("unrouted packet not counted as drop")
	}
}

func TestHostBindAndSend(t *testing.T) {
	eng := sim.NewEngine(1)
	var ids uint64
	sink := &collector{eng: eng}
	h := NewHost(eng, 7, sink, &ids)
	got := 0
	h.Bind(3, packet.HandlerFunc(func(p *packet.Packet) { got++ }))
	fallback := 0
	h.BindFallback(packet.HandlerFunc(func(p *packet.Packet) { fallback++ }))

	h.Send(mkpkt(100, 3))
	if len(sink.pkts) != 1 {
		t.Fatal("send did not reach first hop")
	}
	sent := sink.pkts[0]
	if sent.Src != 7 || sent.ID != 1 {
		t.Errorf("sent packet not stamped: src=%v id=%d", sent.Src, sent.ID)
	}
	h.Handle(mkpkt(100, 3))
	h.Handle(mkpkt(100, 9))
	if got != 1 || fallback != 1 {
		t.Errorf("dispatch: bound=%d fallback=%d, want 1/1", got, fallback)
	}
}

func TestCoDelDropsOnPersistentQueue(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCoDel(0)
	// Enqueue a standing queue, then dequeue slowly so sojourn times stay
	// far above target for longer than interval.
	for i := 0; i < 500; i++ {
		c.Enqueue(mkpkt(1500, 1), eng.Now())
	}
	deliveries := 0
	for tms := 20; tms <= 2000; tms += 20 {
		now := sim.At(time.Duration(tms) * time.Millisecond)
		// Refill queue to keep it standing.
		if p := c.Dequeue(now); p != nil {
			deliveries++
		}
		c.Enqueue(mkpkt(1500, 1), now)
	}
	if c.Drops == 0 {
		t.Error("CoDel never dropped despite a standing queue far above target")
	}
	if deliveries == 0 {
		t.Error("CoDel delivered nothing")
	}
}

func TestCoDelNoDropsWhenIdle(t *testing.T) {
	c := NewCoDel(0)
	// Sojourn below target: enqueue and immediately dequeue.
	for i := 0; i < 1000; i++ {
		now := sim.At(time.Duration(i) * time.Millisecond)
		c.Enqueue(mkpkt(1500, 1), now)
		if p := c.Dequeue(now.Add(time.Millisecond)); p == nil {
			t.Fatal("lost a packet")
		}
	}
	if c.Drops != 0 {
		t.Errorf("CoDel dropped %d packets with sub-target sojourn", c.Drops)
	}
}

func TestFQCoDelIsolatesFlows(t *testing.T) {
	// A heavy flow (1) and a light flow (2) share the queue; DRR must
	// deliver flow 2's packets without making them wait behind the bulk
	// backlog.
	f := NewFQCoDel(0)
	for i := 0; i < 100; i++ {
		f.Enqueue(mkpkt(1500, 1), 0)
	}
	f.Enqueue(mkpkt(200, 2), 0)
	// Within the first few dequeues we must see flow 2.
	sawLight := false
	for i := 0; i < 5; i++ {
		p := f.Dequeue(0)
		if p == nil {
			break
		}
		if p.Flow == 2 {
			sawLight = true
			break
		}
	}
	if !sawLight {
		t.Error("light flow starved behind bulk flow in FQ-CoDel")
	}
}

func TestFQCoDelConservation(t *testing.T) {
	f := NewFQCoDel(50000)
	enq := 0
	for i := 0; i < 200; i++ {
		flow := packet.FlowID(i % 3)
		if f.Enqueue(mkpkt(1000, flow), 0) {
			enq++
		}
	}
	deq := 0
	for f.Dequeue(0) != nil {
		deq++
	}
	if deq != enq {
		t.Errorf("dequeued %d != enqueued %d", deq, enq)
	}
	if enq+f.Drops != 200 {
		t.Errorf("conservation: %d + %d != 200", enq, f.Drops)
	}
	if f.Bytes() != 0 {
		t.Errorf("residual bytes %d after draining", f.Bytes())
	}
}

func TestFQCoDelRoundRobinFair(t *testing.T) {
	f := NewFQCoDel(0)
	for i := 0; i < 60; i++ {
		f.Enqueue(mkpkt(1500, packet.FlowID(i%2)), 0)
	}
	counts := map[packet.FlowID]int{}
	for i := 0; i < 20; i++ {
		p := f.Dequeue(0)
		if p == nil {
			break
		}
		counts[p.Flow]++
	}
	if counts[0] < 8 || counts[1] < 8 {
		t.Errorf("DRR unfair over equal backlogs: %v", counts)
	}
}

func TestShaperBurstClampedToMTU(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	sh := NewShaper(eng, units.Mbps(1), 10, NewDropTail(0), sink)
	sh.Handle(mkpkt(1514, 1))
	eng.Run(sim.End)
	if len(sink.pkts) != 1 {
		t.Error("full-size packet never passed a tiny-burst shaper")
	}
}

func TestDelayJitterPreservesOrder(t *testing.T) {
	eng := sim.NewEngine(5)
	sink := &collector{eng: eng}
	d := NewDelay(eng, 10*time.Millisecond, sink)
	d.SetJitter(5*time.Millisecond, eng.Rand().Fork())
	for i := 0; i < 500; i++ {
		p := mkpkt(100, 1)
		p.Seq = int64(i)
		eng.Schedule(time.Duration(i)*200*time.Microsecond, func() { d.Handle(p) })
	}
	eng.Run(sim.End)
	if len(sink.pkts) != 500 {
		t.Fatalf("delivered %d", len(sink.pkts))
	}
	varied := false
	for i, p := range sink.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("reordering at %d", i)
		}
		lat := sink.times[i].Sub(sim.At(time.Duration(i) * 200 * time.Microsecond))
		if lat < 5*time.Millisecond || lat > 15*time.Millisecond+time.Millisecond {
			// order-preservation can push latency slightly above d+jitter
			if lat > 25*time.Millisecond {
				t.Fatalf("latency %v way out of jitter range", lat)
			}
		}
		if lat != 10*time.Millisecond {
			varied = true
		}
	}
	if !varied {
		t.Error("jitter produced identical delays")
	}
}
