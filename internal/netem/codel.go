package netem

import (
	"math"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// CoDel default parameters from RFC 8289.
const (
	CoDelTarget   = 5 * time.Millisecond
	CoDelInterval = 100 * time.Millisecond
)

// CoDel is the Controlled Delay AQM (RFC 8289) over a byte-limited FIFO.
// It drops at dequeue when the head packet's sojourn time has exceeded
// Target for at least Interval, then accelerates drops by sqrt(count).
// The paper lists AQM (specifically the CoDel family) as future work; it is
// included here so the contention experiments can be rerun without
// drop-tail's bufferbloat.
type CoDel struct {
	limit    units.ByteSize
	target   time.Duration
	interval time.Duration
	// ECN enables RFC 3168 marking: ECN-capable packets that CoDel would
	// drop at dequeue are CE-marked and delivered instead. Queue-overflow
	// drops still drop.
	ECN bool

	q          fifo
	onDrop     func(*packet.Packet)
	dropping   bool
	dropNext   sim.Time
	count      int
	lastCount  int
	firstAbove sim.Time

	// Drops counts packets dropped since creation; Marks counts ECN
	// CE-marks delivered in place of drops.
	Drops int
	Marks int
}

// NewCoDel returns a CoDel queue with RFC-default target and interval and
// the given byte limit (0 = unlimited; overflow still drops like drop-tail).
func NewCoDel(limit units.ByteSize) *CoDel {
	return &CoDel{limit: limit, target: CoDelTarget, interval: CoDelInterval}
}

// Enqueue implements Queue.
func (c *CoDel) Enqueue(p *packet.Packet, now sim.Time) bool {
	if c.limit > 0 && c.q.bytes+units.ByteSize(p.Size) > c.limit {
		c.drop(p)
		return false
	}
	c.q.push(queued{p: p, at: now})
	return true
}

func (c *CoDel) drop(p *packet.Packet) {
	c.Drops++
	if c.onDrop != nil {
		c.onDrop(p)
	}
}

// shouldDrop updates the first-above-target tracking and reports whether the
// packet popped at now has been queued too long.
func (c *CoDel) shouldDrop(q queued, now sim.Time) bool {
	sojourn := now.Sub(q.at)
	if sojourn < c.target || c.q.bytes < packet.MTU {
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now.Add(c.interval)
		return false
	}
	return now >= c.firstAbove
}

// controlLaw returns the next drop time after t given the current count.
func (c *CoDel) controlLaw(t sim.Time) sim.Time {
	return t.Add(time.Duration(float64(c.interval) / math.Sqrt(float64(c.count))))
}

// mark CE-marks an ECN-capable packet in place of a drop; returns false if
// the packet is not ECN-capable (so the caller must drop it).
func (c *CoDel) mark(p *packet.Packet) bool {
	if !c.ECN || !p.ECT {
		return false
	}
	p.CE = true
	c.Marks++
	return true
}

// Dequeue implements Queue, applying the CoDel state machine.
func (c *CoDel) Dequeue(now sim.Time) *packet.Packet {
	q, ok := c.q.pop()
	if !ok {
		c.dropping = false
		return nil
	}
	okToDrop := c.shouldDrop(q, now)
	if c.dropping {
		if !okToDrop {
			c.dropping = false
			return q.p
		}
		for now >= c.dropNext && c.dropping {
			if c.mark(q.p) {
				c.count++
				c.dropNext = c.controlLaw(c.dropNext)
				return q.p
			}
			c.drop(q.p)
			c.count++
			nq, ok := c.q.pop()
			if !ok {
				c.dropping = false
				return nil
			}
			q = nq
			if !c.shouldDrop(q, now) {
				c.dropping = false
				return q.p
			}
			c.dropNext = c.controlLaw(c.dropNext)
		}
		return q.p
	}
	if okToDrop && (now.Sub(c.dropNext) < c.interval || now.Sub(c.firstAbove) >= c.interval) {
		if c.mark(q.p) {
			c.dropping = true
			c.count = 1
			c.lastCount = 1
			c.dropNext = c.controlLaw(now)
			return q.p
		}
		c.drop(q.p)
		nq, ok := c.q.pop()
		c.dropping = true
		// RFC 8289 hysteresis: resume from a higher count if we were
		// recently dropping.
		if now.Sub(c.dropNext) < c.interval && c.lastCount > 2 {
			c.count = c.lastCount - 2
		} else {
			c.count = 1
		}
		c.lastCount = c.count
		c.dropNext = c.controlLaw(now)
		if !ok {
			c.dropping = false
			return nil
		}
		return nq.p
	}
	return q.p
}

// Peek implements Queue.
func (c *CoDel) Peek() *packet.Packet {
	q, ok := c.q.peek()
	if !ok {
		return nil
	}
	return q.p
}

// HeadSojourn implements HeadSojourner.
func (c *CoDel) HeadSojourn(now sim.Time) (time.Duration, bool) {
	q, ok := c.q.peek()
	if !ok {
		return 0, false
	}
	return now.Sub(q.at), true
}

// Len implements Queue.
func (c *CoDel) Len() int { return c.q.len() }

// Bytes implements Queue.
func (c *CoDel) Bytes() units.ByteSize { return c.q.bytes }

// SetDropCallback implements Queue.
func (c *CoDel) SetDropCallback(fn func(*packet.Packet)) { c.onDrop = fn }

// FQCoDel approximates the FQ-CoDel scheduler (RFC 8290): packets hash by
// flow into per-flow CoDel queues served by deficit round robin, with
// new flows given priority for one quantum. This keeps a bulk TCP flow from
// starving the latency-sensitive game stream at the bottleneck.
type FQCoDel struct {
	limit   units.ByteSize
	quantum int

	flows  map[packet.FlowID]*fqFlow
	newQ   []*fqFlow
	oldQ   []*fqFlow
	bytes  units.ByteSize
	onDrop func(*packet.Packet)

	// Drops counts packets dropped since creation.
	Drops int
}

type fqFlow struct {
	id      packet.FlowID
	codel   *CoDel
	deficit int
	queued  bool // on newQ or oldQ
	isNew   bool
}

// NewFQCoDel returns an FQ-CoDel queue with total byte limit and an MTU
// quantum.
func NewFQCoDel(limit units.ByteSize) *FQCoDel {
	return &FQCoDel{
		limit:   limit,
		quantum: packet.MTU,
		flows:   make(map[packet.FlowID]*fqFlow),
	}
}

// Enqueue implements Queue.
func (f *FQCoDel) Enqueue(p *packet.Packet, now sim.Time) bool {
	if f.limit > 0 && f.bytes+units.ByteSize(p.Size) > f.limit {
		f.Drops++
		if f.onDrop != nil {
			f.onDrop(p)
		}
		return false
	}
	fl, ok := f.flows[p.Flow]
	if !ok {
		fl = &fqFlow{id: p.Flow, codel: NewCoDel(0)}
		fl.codel.SetDropCallback(func(dp *packet.Packet) {
			f.Drops++
			f.bytes -= units.ByteSize(dp.Size)
			if f.onDrop != nil {
				f.onDrop(dp)
			}
		})
		f.flows[p.Flow] = fl
	}
	fl.codel.Enqueue(p, now)
	f.bytes += units.ByteSize(p.Size)
	if !fl.queued {
		fl.queued = true
		fl.isNew = true
		fl.deficit = f.quantum
		f.newQ = append(f.newQ, fl)
	}
	return true
}

// Dequeue implements Queue, running one DRR scheduling decision.
func (f *FQCoDel) Dequeue(now sim.Time) *packet.Packet {
	for i := 0; i < 2*(len(f.newQ)+len(f.oldQ))+2; i++ {
		fl := f.head()
		if fl == nil {
			return nil
		}
		if fl.deficit <= 0 {
			fl.deficit += f.quantum
			f.rotateToOld(fl)
			continue
		}
		p := fl.codel.Dequeue(now)
		if p == nil {
			// Flow empty: a new flow moves to old (per RFC to prevent
			// starvation games); an old empty flow leaves the schedule.
			f.popHead(fl)
			continue
		}
		f.bytes -= units.ByteSize(p.Size)
		fl.deficit -= p.Size
		return p
	}
	return nil
}

func (f *FQCoDel) head() *fqFlow {
	if len(f.newQ) > 0 {
		return f.newQ[0]
	}
	if len(f.oldQ) > 0 {
		return f.oldQ[0]
	}
	return nil
}

func (f *FQCoDel) rotateToOld(fl *fqFlow) {
	if len(f.newQ) > 0 && f.newQ[0] == fl {
		f.newQ = f.newQ[1:]
	} else if len(f.oldQ) > 0 && f.oldQ[0] == fl {
		f.oldQ = f.oldQ[1:]
	}
	fl.isNew = false
	f.oldQ = append(f.oldQ, fl)
}

func (f *FQCoDel) popHead(fl *fqFlow) {
	if len(f.newQ) > 0 && f.newQ[0] == fl {
		f.newQ = f.newQ[1:]
		// Empty new flow becomes old if it may still receive packets;
		// since its queue is empty we simply deschedule it.
	} else if len(f.oldQ) > 0 && f.oldQ[0] == fl {
		f.oldQ = f.oldQ[1:]
	}
	fl.queued = false
}

// Peek implements Queue.
func (f *FQCoDel) Peek() *packet.Packet {
	if fl := f.head(); fl != nil {
		if p := fl.codel.Peek(); p != nil {
			return p
		}
		// Head flow may be empty pending a scheduling pass; scan others.
		for _, q := range append(append([]*fqFlow{}, f.newQ...), f.oldQ...) {
			if p := q.codel.Peek(); p != nil {
				return p
			}
		}
	}
	return nil
}

// Len implements Queue.
func (f *FQCoDel) Len() int {
	n := 0
	for _, fl := range f.flows {
		n += fl.codel.Len()
	}
	return n
}

// Bytes implements Queue.
func (f *FQCoDel) Bytes() units.ByteSize { return f.bytes }

// SetDropCallback implements Queue.
func (f *FQCoDel) SetDropCallback(fn func(*packet.Packet)) { f.onDrop = fn }
