package netem

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// feed pushes n packets through imp at the given spacing and runs the engine
// to completion.
func feed(eng *sim.Engine, imp *Impairer, n int, spacing time.Duration) {
	for i := 0; i < n; i++ {
		p := mkpkt(1000, 1)
		p.Seq = int64(i)
		eng.Schedule(time.Duration(i)*spacing, func() { imp.Handle(p) })
	}
	eng.Run(sim.End)
}

func TestImpairerBernoulliLossRate(t *testing.T) {
	eng := sim.NewEngine(3)
	sink := &collector{eng: eng}
	imp := NewImpairer(eng, Impairment{LossModel: LossBernoulli, LossRate: 0.05}, eng.Rand().Fork(), sink)
	dropped := 0
	imp.SetDropCallback(func(*packet.Packet) { dropped++ })

	const n = 20000
	feed(eng, imp, n, 10*time.Microsecond)

	if len(sink.pkts)+dropped != n {
		t.Errorf("conservation: %d delivered + %d dropped != %d offered", len(sink.pkts), dropped, n)
	}
	if imp.Stats.LossDrops != dropped {
		t.Errorf("Stats.LossDrops = %d, callback saw %d", imp.Stats.LossDrops, dropped)
	}
	frac := float64(dropped) / n
	if frac < 0.04 || frac > 0.06 {
		t.Errorf("Bernoulli loss fraction %.4f, want ~0.05", frac)
	}
	// A loss-only impairer must forward synchronously: no extra events.
	for i, p := range sink.pkts {
		if i > 0 && p.Seq <= sink.pkts[i-1].Seq {
			t.Fatal("loss-only impairer reordered packets")
		}
	}
}

// TestImpairerGEBurstiness: at the same average loss rate, Gilbert-Elliott
// losses arrive in bursts — the mean run of consecutive drops tracks 1/r,
// where a Bernoulli process would sit near 1.
func TestImpairerGEBurstiness(t *testing.T) {
	eng := sim.NewEngine(11)
	sink := &collector{eng: eng}
	// p/(p+r) ~ 3.8% average loss, mean burst length 1/r = 4.
	imp := NewImpairer(eng, Impairment{LossModel: LossGE, GEGoodBad: 0.01, GEBadGood: 0.25}, eng.Rand().Fork(), sink)
	lost := map[int64]bool{}
	imp.SetDropCallback(func(p *packet.Packet) { lost[p.Seq] = true })

	const n = 50000
	feed(eng, imp, n, 10*time.Microsecond)

	if len(lost) == 0 {
		t.Fatal("GE model dropped nothing")
	}
	frac := float64(len(lost)) / n
	if frac < 0.02 || frac > 0.06 {
		t.Errorf("GE loss fraction %.4f, want ~0.038", frac)
	}
	bursts, runLen, cur := 0, 0, 0
	for i := int64(0); i < n; i++ {
		if lost[i] {
			cur++
		} else if cur > 0 {
			bursts++
			runLen += cur
			cur = 0
		}
	}
	mean := float64(runLen) / float64(bursts)
	if mean < 2.5 {
		t.Errorf("mean GE loss burst %.2f packets, want bursty (~4); Bernoulli would be ~1", mean)
	}
}

// TestImpairerGEDefaultsToClassicGilbert: a GE spec without per-state loss
// probabilities gets the lossless-Good/lossy-Bad defaults instead of
// silently dropping nothing.
func TestImpairerGEDefaultsToClassicGilbert(t *testing.T) {
	eng := sim.NewEngine(1)
	imp := NewImpairer(eng, Impairment{LossModel: LossGE, GEGoodBad: 0.5, GEBadGood: 0.5}, eng.Rand().Fork(), &collector{eng: eng})
	if imp.Config().GELossBad != 1 {
		t.Fatalf("GELossBad defaulted to %v, want 1", imp.Config().GELossBad)
	}
	feed(eng, imp, 1000, time.Microsecond)
	if imp.Stats.LossDrops == 0 {
		t.Error("classic Gilbert default dropped nothing at p=r=0.5")
	}
}

func TestImpairerJitterPreservesOrderByDefault(t *testing.T) {
	eng := sim.NewEngine(9)
	sink := &collector{eng: eng}
	imp := NewImpairer(eng, Impairment{Jitter: 5 * time.Millisecond}, eng.Rand().Fork(), sink)
	feed(eng, imp, 500, 200*time.Microsecond)
	if len(sink.pkts) != 500 {
		t.Fatalf("delivered %d, want 500", len(sink.pkts))
	}
	for i, p := range sink.pkts {
		if p.Seq != int64(i) {
			t.Fatalf("reordering at %d without Reorder", i)
		}
	}
	if imp.Stats.Reordered != 0 {
		t.Errorf("Reordered = %d on an order-preserving impairer", imp.Stats.Reordered)
	}
}

func TestImpairerReorders(t *testing.T) {
	eng := sim.NewEngine(9)
	sink := &collector{eng: eng}
	imp := NewImpairer(eng, Impairment{Jitter: 5 * time.Millisecond, Reorder: true}, eng.Rand().Fork(), sink)
	feed(eng, imp, 500, 200*time.Microsecond)
	if len(sink.pkts) != 500 {
		t.Fatalf("delivered %d, want 500", len(sink.pkts))
	}
	swaps := 0
	for i := 1; i < len(sink.pkts); i++ {
		if sink.pkts[i].Seq < sink.pkts[i-1].Seq {
			swaps++
		}
	}
	if swaps == 0 {
		t.Error("Reorder produced an in-order stream at 25x jitter/spacing")
	}
	if imp.Stats.Reordered == 0 {
		t.Error("Stats.Reordered stayed zero despite observed reordering")
	}
}

func TestImpairerDuplicates(t *testing.T) {
	eng := sim.NewEngine(4)
	sink := &collector{eng: eng}
	pool := packet.NewPool()
	imp := NewImpairer(eng, Impairment{Duplicate: 0.1}, eng.Rand().Fork(), sink)
	imp.SetPool(pool)
	const n = 5000
	feed(eng, imp, n, 10*time.Microsecond)
	if got := len(sink.pkts) - n; got != imp.Stats.Duplicates {
		t.Errorf("extra deliveries %d != Stats.Duplicates %d", got, imp.Stats.Duplicates)
	}
	frac := float64(imp.Stats.Duplicates) / n
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("duplicate fraction %.4f, want ~0.1", frac)
	}
	// A duplicate is a full copy: same seq/size, delivered adjacent to the
	// original (no jitter configured).
	seen := map[int64]int{}
	for _, p := range sink.pkts {
		seen[p.Seq]++
	}
	for seq, c := range seen {
		if c > 2 {
			t.Fatalf("seq %d delivered %d times with single duplication", seq, c)
		}
	}
}

func TestImpairerFlap(t *testing.T) {
	eng := sim.NewEngine(2)
	sink := &collector{eng: eng}
	imp := NewImpairer(eng, Impairment{}, eng.Rand().Fork(), sink)
	pool := packet.NewPool()
	imp.SetPool(pool)
	var droppedAt []sim.Time
	imp.SetDropCallback(func(*packet.Packet) { droppedAt = append(droppedAt, eng.Now()) })

	down, up := 100*time.Millisecond, 300*time.Millisecond
	eng.Schedule(down, func() { imp.SetDown(true) })
	eng.Schedule(down, func() { imp.SetDown(true) }) // repeated call: no-op
	eng.Schedule(up, func() { imp.SetDown(false) })

	// One packet per millisecond for 500 ms; pool-allocated so drops recycle.
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * time.Millisecond
		eng.Schedule(at, func() {
			p := pool.Get()
			p.Size = 1000
			p.Flow = 1
			imp.Handle(p)
		})
	}
	eng.Run(sim.End)

	if imp.Stats.Flaps != 1 {
		t.Errorf("Flaps = %d, want 1", imp.Stats.Flaps)
	}
	if imp.Stats.Down != up-down {
		t.Errorf("Down = %v, want %v", imp.Stats.Down, up-down)
	}
	if imp.Stats.FlapDrops != len(droppedAt) || imp.Stats.FlapDrops == 0 {
		t.Fatalf("FlapDrops = %d, callback saw %d", imp.Stats.FlapDrops, len(droppedAt))
	}
	for _, at := range droppedAt {
		if at < sim.At(down) || at >= sim.At(up) {
			t.Fatalf("drop at %v outside the down window [%v,%v)", at, down, up)
		}
	}
	// Every flap drop went back to the freelist.
	if st := pool.Stats(); st.Puts != uint64(imp.Stats.FlapDrops) {
		t.Errorf("pool puts %d != flap drops %d", st.Puts, imp.Stats.FlapDrops)
	}
	if imp.Down() {
		t.Error("link still down after up step")
	}
}

// TestImpairerSnapshotOpenEpisode: Snapshot accounts a down episode still
// open at the end of the run; the raw Stats field does not.
func TestImpairerSnapshotOpenEpisode(t *testing.T) {
	eng := sim.NewEngine(2)
	imp := NewImpairer(eng, Impairment{}, eng.Rand().Fork(), &collector{eng: eng})
	eng.Schedule(100*time.Millisecond, func() { imp.SetDown(true) })
	eng.Run(sim.At(250 * time.Millisecond))
	if imp.Stats.Down != 0 {
		t.Errorf("raw Down = %v before the episode closed", imp.Stats.Down)
	}
	if got := imp.Snapshot().Down; got != 150*time.Millisecond {
		t.Errorf("Snapshot Down = %v, want 150ms", got)
	}
}

func TestImpairerRetune(t *testing.T) {
	eng := sim.NewEngine(8)
	sink := &collector{eng: eng}
	imp := NewImpairer(eng, Impairment{}, eng.Rand().Fork(), sink)
	eng.Schedule(50*time.Millisecond, func() { imp.SetLossRate(1) })
	eng.Schedule(100*time.Millisecond, func() { imp.SetLossRate(0) })
	eng.Schedule(150*time.Millisecond, func() { imp.SetJitter(2 * time.Millisecond) })
	feed(eng, imp, 200, time.Millisecond)
	// 50 packets fell in the loss=100% window.
	if imp.Stats.LossDrops != 50 {
		t.Errorf("LossDrops = %d, want 50 from the retuned window", imp.Stats.LossDrops)
	}
	if imp.Config().Jitter != 2*time.Millisecond {
		t.Errorf("Jitter retune not applied: %v", imp.Config().Jitter)
	}
	if len(sink.pkts) != 150 {
		t.Errorf("delivered %d, want 150", len(sink.pkts))
	}
}

// TestImpairerDeterminism: the same seed reproduces the exact drop pattern;
// a different seed changes it.
func TestImpairerDeterminism(t *testing.T) {
	pattern := func(seed uint64) []int64 {
		eng := sim.NewEngine(seed)
		imp := NewImpairer(eng, Impairment{
			LossModel: LossGE, GEGoodBad: 0.02, GEBadGood: 0.3,
			Jitter: time.Millisecond, Reorder: true, Duplicate: 0.02,
		}, eng.Rand().Fork(), &collector{eng: eng})
		var lost []int64
		imp.SetDropCallback(func(p *packet.Packet) { lost = append(lost, p.Seq) })
		feed(eng, imp, 5000, 100*time.Microsecond)
		return lost
	}
	a, b, c := pattern(42), pattern(42), pattern(43)
	if len(a) == 0 {
		t.Fatal("no drops to compare")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different drop counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at drop %d: %d vs %d", i, a[i], b[i])
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns")
	}
}

func TestShaperSetRate(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	q := NewDropTail(200000)
	sh := NewShaper(eng, units.Mbps(10), 2*packet.MTU, q, sink)
	// Saturate: 20 Mb/s offered for 10 s.
	var tick *sim.Ticker
	n := 0
	tick = sim.NewTicker(eng, 400*time.Microsecond, func() {
		sh.Handle(mkpkt(1000, 1))
		n++
		if n >= 25000 {
			tick.Stop()
		}
	})
	tick.Start(true)
	eng.Schedule(5*time.Second, func() { sh.SetRate(units.Mbps(2)) })
	eng.Schedule(5*time.Second, func() { sh.SetRate(0) }) // ignored
	eng.Run(sim.At(10 * time.Second))

	var first, second units.ByteSize
	for i, p := range sink.pkts {
		if sink.times[i] < sim.At(5*time.Second) {
			first += units.ByteSize(p.Size)
		} else {
			second += units.ByteSize(p.Size)
		}
	}
	r1 := units.RateFromBytes(first, 5*time.Second).Mbit()
	r2 := units.RateFromBytes(second, 5*time.Second).Mbit()
	if r1 < 9.5 || r1 > 10.2 {
		t.Errorf("pre-step rate %.2f Mb/s, want ~10", r1)
	}
	if r2 < 1.8 || r2 > 2.2 {
		t.Errorf("post-step rate %.2f Mb/s, want ~2", r2)
	}
	if sh.Rate() != units.Mbps(2) {
		t.Errorf("Rate() = %v after step", sh.Rate())
	}
}

func TestImpairmentStringAndEnabled(t *testing.T) {
	cases := []struct {
		im      Impairment
		want    string
		enabled bool
	}{
		{Impairment{}, "none", false},
		{Impairment{LossModel: LossBernoulli, LossRate: 0.02}, "loss2%", true},
		{Impairment{LossModel: LossGE, GEGoodBad: 0.01, GEBadGood: 0.25}, "geP0.01R0.25", true},
		{Impairment{LossModel: LossGE, GEGoodBad: 0.01, GEBadGood: 0.25, GELossGood: 0.001, GELossBad: 0.9},
			"geP0.01R0.25g0.001b0.9", true},
		{Impairment{Jitter: 3 * time.Millisecond}, "jit3ms", true},
		{Impairment{Jitter: 3 * time.Millisecond, Reorder: true}, "jit3ms~", true},
		{Impairment{Duplicate: 0.01}, "dup1%", true},
		{Impairment{LossModel: LossBernoulli, LossRate: 0.02, Jitter: time.Millisecond, Duplicate: 0.01},
			"loss2%+jit1ms+dup1%", true},
	}
	for _, c := range cases {
		if got := c.im.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
		if got := c.im.Enabled(); got != c.enabled {
			t.Errorf("%q Enabled() = %v, want %v", c.want, got, c.enabled)
		}
	}
}

// TestShaperCoDelTapsAndSojourn drives a CoDel-backed shaper through
// overload with queue taps attached: enqueue/dequeue taps fire for every
// queued packet, the head sojourn is observable, and delay steps retarget
// subsequent traffic — the combination the impairment schedule retunes.
func TestShaperCoDelTapsAndSojourn(t *testing.T) {
	eng := sim.NewEngine(1)
	sink := &collector{eng: eng}
	q := NewCoDel(50000)
	d := NewDelay(eng, 10*time.Millisecond, sink)
	sh := NewShaper(eng, units.Mbps(5), 2*packet.MTU, q, d)
	enq, deq := 0, 0
	sh.SetQueueTap(func(*packet.Packet) { enq++ }, func(*packet.Packet) { deq++ })
	sawSojourn := false
	probe := sim.NewTicker(eng, 10*time.Millisecond, func() {
		if q.Len() > 0 {
			if _, ok := q.HeadSojourn(eng.Now()); ok {
				sawSojourn = true
			}
			if q.Peek() == nil || q.Bytes() == 0 {
				t.Error("non-empty CoDel with nil head or zero bytes")
			}
		}
	})
	probe.Start(false)
	eng.Schedule(time.Second, func() { d.SetDelay(30 * time.Millisecond) })
	var tick *sim.Ticker
	n := 0
	tick = sim.NewTicker(eng, 500*time.Microsecond, func() { // 16 Mb/s offered
		sh.Handle(mkpkt(1000, 1))
		n++
		if n >= 4000 {
			tick.Stop()
		}
	})
	tick.Start(true)
	eng.Run(sim.At(3 * time.Second))
	if enq == 0 || deq == 0 {
		t.Fatalf("queue taps never fired: enq=%d deq=%d", enq, deq)
	}
	if !sawSojourn {
		t.Error("head sojourn never observed on a standing CoDel queue")
	}
	if len(sink.times) == 0 {
		t.Fatal("nothing delivered")
	}
	// After the delay step the gap between shaper emit (paced at 1.6 ms per
	// 1000 B) and delivery grows by 20 ms; just assert late deliveries exist
	// well past the old 10 ms horizon of the last offered packet.
	last := sink.times[len(sink.times)-1]
	if last < sim.At(2*time.Second+30*time.Millisecond) {
		t.Errorf("last delivery %v shows the 30ms delay step never applied", last)
	}
}

// TestImpairerDropPoolDiscipline: every loss-model drop returns its packet
// to the pool, and duplicates draw from it.
func TestImpairerDropPoolDiscipline(t *testing.T) {
	eng := sim.NewEngine(6)
	pool := packet.NewPool()
	// Sink recycles like a Host does, so the pool sees every packet back.
	sink := packet.HandlerFunc(func(p *packet.Packet) { pool.Put(p) })
	imp := NewImpairer(eng, Impairment{LossModel: LossBernoulli, LossRate: 0.5, Duplicate: 0.2}, eng.Rand().Fork(), sink)
	imp.SetPool(pool)
	const n = 2000
	for i := 0; i < n; i++ {
		eng.Schedule(time.Duration(i)*time.Microsecond, func() {
			p := pool.Get()
			p.Size = 1000
			imp.Handle(p)
		})
	}
	eng.Run(sim.End)
	st := pool.Stats()
	if st.Gets != st.Puts {
		t.Errorf("pool gets %d != puts %d: packets leaked or double-released", st.Gets, st.Puts)
	}
	if int(st.Gets) != n+imp.Stats.Duplicates {
		t.Errorf("gets %d, want offered %d + duplicates %d", st.Gets, n, imp.Stats.Duplicates)
	}
}
