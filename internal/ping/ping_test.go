package ping

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// loop wires two hosts with a fixed one-way delay in each direction.
func loop(owd time.Duration) (*sim.Engine, *netem.Host, *netem.Host) {
	eng := sim.NewEngine(1)
	var ids uint64
	var a, b *netem.Host
	toB := netem.NewDelay(eng, owd, packet.HandlerFunc(func(p *packet.Packet) { b.Handle(p) }))
	toA := netem.NewDelay(eng, owd, packet.HandlerFunc(func(p *packet.Packet) { a.Handle(p) }))
	a = netem.NewHost(eng, 1, toB, &ids)
	b = netem.NewHost(eng, 2, toA, &ids)
	return eng, a, b
}

func TestPingMeasuresRTT(t *testing.T) {
	eng, cli, srv := loop(8 * time.Millisecond)
	p := NewPinger(cli, 1, srv.Addr, time.Second)
	NewResponder(srv, 1)
	p.Start()
	eng.Run(sim.At(5500 * time.Millisecond))
	p.Stop()
	if len(p.Samples) != 6 { // t=0..5s inclusive
		t.Fatalf("samples = %d, want 6", len(p.Samples))
	}
	for _, s := range p.Samples {
		if s.RTT != 16*time.Millisecond {
			t.Errorf("RTT = %v, want 16ms", s.RTT)
		}
	}
}

func TestRTTsBetween(t *testing.T) {
	eng, cli, srv := loop(5 * time.Millisecond)
	p := NewPinger(cli, 1, srv.Addr, time.Second)
	r := NewResponder(srv, 1)
	p.Start()
	eng.Run(sim.At(10 * time.Second))
	window := p.RTTsBetween(sim.At(2*time.Second), sim.At(5*time.Second))
	if len(window) != 3 {
		t.Errorf("window samples = %d, want 3", len(window))
	}
	for _, ms := range window {
		if ms != 10 {
			t.Errorf("sample = %v ms, want 10", ms)
		}
	}
	// The ping sent exactly at the run boundary is still in flight.
	if r.Answered < p.Sent-1 {
		t.Errorf("answered %d, sent %d", r.Answered, p.Sent)
	}
}

func TestPingStop(t *testing.T) {
	eng, cli, srv := loop(time.Millisecond)
	p := NewPinger(cli, 1, srv.Addr, 100*time.Millisecond)
	NewResponder(srv, 1)
	p.Start()
	eng.Schedule(time.Second, p.Stop)
	eng.Run(sim.At(5 * time.Second))
	if p.Sent > 11 {
		t.Errorf("pinger kept sending after Stop: %d", p.Sent)
	}
}

func TestResponderIgnoresOtherKinds(t *testing.T) {
	_, _, srv := loop(time.Millisecond)
	r := NewResponder(srv, 1)
	r.Handle(&packet.Packet{Flow: 1, Kind: packet.KindData})
	if r.Answered != 0 {
		t.Error("responder answered a non-ping packet")
	}
}
