// Package ping implements the periodic echo probe the paper's methodology
// runs from the client to the game server: it measures round-trip time
// through the same bottleneck the game stream traverses, including queueing
// delay, yielding the samples behind Tables 3 and 4.
package ping

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// Size is the on-wire size of an echo packet (standard 64-byte ICMP payload
// plus headers).
const Size = 98

// Sample is one completed round trip.
type Sample struct {
	At  sim.Time // when the reply arrived
	RTT time.Duration
}

// Pinger sends an echo every Interval and records replies. The peer side
// is a Responder bound to the same flow.
type Pinger struct {
	host   *netem.Host
	eng    *sim.Engine
	flow   packet.FlowID
	dst    packet.Addr
	ticker *sim.Ticker
	seq    int64

	// Samples holds completed round trips in arrival order.
	Samples []Sample
	// Sent counts echo requests.
	Sent int
}

// NewPinger creates a pinger on host probing dst at the given interval.
func NewPinger(host *netem.Host, flow packet.FlowID, dst packet.Addr, interval time.Duration) *Pinger {
	p := &Pinger{host: host, eng: host.Engine(), flow: flow, dst: dst}
	p.ticker = sim.NewTicker(p.eng, interval, p.sendEcho)
	host.Bind(flow, p)
	return p
}

// Start begins probing.
func (p *Pinger) Start() { p.ticker.Start(true) }

// Stop halts probing; in-flight replies are still recorded.
func (p *Pinger) Stop() { p.ticker.Stop() }

func (p *Pinger) sendEcho() {
	p.seq++
	p.Sent++
	pk := p.host.NewPacket()
	pk.Flow = p.flow
	pk.Kind = packet.KindPing
	pk.Dst = p.dst
	pk.Seq = p.seq
	pk.Size = Size
	p.host.Send(pk)
}

// Handle implements packet.Handler, recording echo replies.
func (p *Pinger) Handle(pk *packet.Packet) {
	if pk.Kind != packet.KindPong {
		return
	}
	now := p.eng.Now()
	p.Samples = append(p.Samples, Sample{At: now, RTT: now.Sub(pk.EchoTS)})
}

// RTTsBetween returns RTT samples (in milliseconds) whose replies arrived
// in [from, to).
func (p *Pinger) RTTsBetween(from, to sim.Time) []float64 {
	var out []float64
	for _, s := range p.Samples {
		if s.At >= from && s.At < to {
			out = append(out, float64(s.RTT)/float64(time.Millisecond))
		}
	}
	return out
}

// Responder answers echo requests; it lives on the server-side host.
type Responder struct {
	host *netem.Host
	flow packet.FlowID
	// Answered counts echoes returned.
	Answered int
}

// NewResponder creates a responder bound to flow on host.
func NewResponder(host *netem.Host, flow packet.FlowID) *Responder {
	r := &Responder{host: host, flow: flow}
	host.Bind(flow, r)
	return r
}

// Handle implements packet.Handler, reflecting echo requests.
func (r *Responder) Handle(pk *packet.Packet) {
	if pk.Kind != packet.KindPing {
		return
	}
	r.Answered++
	reply := r.host.NewPacket()
	reply.Flow = r.flow
	reply.Kind = packet.KindPong
	reply.Dst = pk.Src
	reply.Seq = pk.Seq
	reply.Size = Size
	reply.EchoTS = pk.SentAt
	r.host.Send(reply)
}
