package qoe

import (
	"math"
	"time"
)

// Model parameterises the score; DefaultModel matches the paper's cited
// calibration points.
type Model struct {
	// TargetFPS saturates the frame-rate utility (the paper's 60 f/s).
	TargetFPS float64
	// MinFPS is the frame rate of zero utility.
	MinFPS float64
	// BaseRTT is the delay included in the experience baseline; only
	// delay beyond it is penalised.
	BaseRTT time.Duration
	// DelayPenaltyPer55ms is the QoE fraction lost per 55 ms of added
	// delay (Wahab et al.: ~0.10).
	DelayPenaltyPer55ms float64
	// MaxDelayPenalty caps the delay term.
	MaxDelayPenalty float64
	// LossKnee is the loss fraction where degradation accelerates.
	LossKnee float64
}

// DefaultModel returns the calibration used in the tables.
func DefaultModel() Model {
	return Model{
		TargetFPS:           60,
		MinFPS:              6,
		BaseRTT:             16500 * time.Microsecond,
		DelayPenaltyPer55ms: 0.10,
		MaxDelayPenalty:     0.45,
		LossKnee:            0.01,
	}
}

// FrameRateUtility returns the 0–1 frame-rate component.
func (m Model) FrameRateUtility(fps float64) float64 {
	if fps <= m.MinFPS {
		return 0
	}
	u := math.Log(fps/m.MinFPS) / math.Log(m.TargetFPS/m.MinFPS)
	if u > 1 {
		u = 1
	}
	return u
}

// DelayPenalty returns the 0–MaxDelayPenalty fraction lost to added delay.
func (m Model) DelayPenalty(rtt time.Duration) float64 {
	extra := rtt - m.BaseRTT
	if extra <= 0 {
		return 0
	}
	p := m.DelayPenaltyPer55ms * float64(extra) / float64(55*time.Millisecond)
	if p > m.MaxDelayPenalty {
		p = m.MaxDelayPenalty
	}
	return p
}

// LossPenalty returns the 0–1 fraction lost to packet loss: gentle below
// the knee, quadratic above it, saturating at 5x the knee.
func (m Model) LossPenalty(loss float64) float64 {
	if loss <= 0 {
		return 0
	}
	if loss <= m.LossKnee {
		return 0.1 * loss / m.LossKnee
	}
	over := (loss - m.LossKnee) / (4 * m.LossKnee)
	p := 0.1 + 0.9*over*over
	if p > 1 {
		p = 1
	}
	return p
}

// Score combines the components into 0–100.
func (m Model) Score(fps float64, rtt time.Duration, loss float64) float64 {
	s := 100 * m.FrameRateUtility(fps) * (1 - m.DelayPenalty(rtt)) * (1 - m.LossPenalty(loss))
	if s < 0 {
		s = 0
	}
	if s > 100 {
		s = 100
	}
	return s
}
