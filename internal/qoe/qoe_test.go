package qoe

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPerfectConditions(t *testing.T) {
	m := DefaultModel()
	s := m.Score(60, m.BaseRTT, 0)
	if s != 100 {
		t.Errorf("Score at target = %v, want 100", s)
	}
}

func TestPaperDelayCalibration(t *testing.T) {
	// §4.3: 110 ms vs 55 ms RTT is "about a 10% decrease in QoE".
	m := DefaultModel()
	a := m.Score(60, 55*time.Millisecond, 0)
	b := m.Score(60, 110*time.Millisecond, 0)
	drop := (a - b) / a
	if drop < 0.08 || drop < 0 || drop > 0.15 {
		t.Errorf("QoE drop from 55->110 ms = %.3f, want ~0.10", drop)
	}
}

func TestFrameRateUtilityShape(t *testing.T) {
	m := DefaultModel()
	if m.FrameRateUtility(60) != 1 {
		t.Error("60 f/s should saturate")
	}
	if m.FrameRateUtility(90) != 1 {
		t.Error("above-target fps should clamp at 1")
	}
	if u := m.FrameRateUtility(22); u < 0.4 || u > 0.8 {
		t.Errorf("utility at Luna's 22 f/s = %.2f, want mid-range", u)
	}
	if m.FrameRateUtility(3) != 0 {
		t.Error("below MinFPS should be 0")
	}
}

func TestLossPenaltyShape(t *testing.T) {
	m := DefaultModel()
	if p := m.LossPenalty(0.005); p > 0.06 {
		t.Errorf("sub-knee loss penalty %.3f too harsh", p)
	}
	if p := m.LossPenalty(0.05); p < 0.9 {
		t.Errorf("5%% loss penalty %.3f too lenient", p)
	}
	if m.LossPenalty(0.5) != 1 {
		t.Error("catastrophic loss should saturate at 1")
	}
}

// Properties: score bounded, monotone in each argument.
func TestScoreProperties(t *testing.T) {
	m := DefaultModel()
	f := func(fps10 uint16, rttMs uint16, lossPm uint16) bool {
		fps := float64(fps10%700) / 10
		rtt := time.Duration(rttMs%300) * time.Millisecond
		loss := float64(lossPm%100) / 1000
		s := m.Score(fps, rtt, loss)
		if s < 0 || s > 100 {
			return false
		}
		// Monotone: more fps never hurts, more delay/loss never helps.
		return m.Score(fps+5, rtt, loss) >= s &&
			m.Score(fps, rtt+10*time.Millisecond, loss) <= s &&
			m.Score(fps, rtt, loss+0.005) <= s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperScenarioOrdering(t *testing.T) {
	// §4.3's qualitative ordering: GeForce's resilient 60 f/s at moderate
	// delay beats Luna's 22 f/s at low delay.
	m := DefaultModel()
	geforce := m.Score(59.5, 25*time.Millisecond, 0.002)
	luna := m.Score(22.3, 18*time.Millisecond, 0.005)
	if geforce <= luna {
		t.Errorf("GeForce %f <= Luna %f: frame-rate collapse should dominate", geforce, luna)
	}
	// Bufferbloat (110 ms) vs healthy delay at equal fps.
	healthy := m.Score(58, 20*time.Millisecond, 0)
	bloated := m.Score(58, 110*time.Millisecond, 0)
	if bloated >= healthy {
		t.Error("bufferbloat did not reduce the score")
	}
}
