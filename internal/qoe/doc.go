// Package qoe combines the paper's quality-of-experience indicators
// (§4.3: frame rate, round-trip delay, loss rate) into a single 0–100
// score, following the shape of its cited QoE literature: frame-rate
// utility is logarithmic and saturates at the 60 f/s target (Claypool &
// Claypool), added network delay costs roughly 10% of QoE per ~55 ms
// (Wahab et al. — the paper's own §4.3 calibration point), and loss is
// tolerated up to a few percent before degrading steeply (Di Domenico et
// al. found services resilient to 5% loss).
//
// The absolute scale is a model, not a measurement; its value is ranking
// conditions and systems consistently with the paper's §4.3 discussion.
package qoe
