package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/ping"
	"repro/internal/units"
)

// Negative tests: every invariant checker must be shown to fire on an
// injected violation. A checker that has never turned red is not evidence
// of anything when it stays green.

// fabricateRun builds a result whose game bitrate follows rate(t), binned
// at one-second resolution over the run's timeline.
func fabricateRun(tl metrics.Timeline, rate func(t time.Duration) float64) *experiment.RunResult {
	bin := time.Second
	r := &experiment.RunResult{
		Cfg: experiment.RunConfig{
			Condition: experiment.Condition{
				System:    gamestream.Stadia,
				CCA:       "cubic",
				Capacity:  units.Mbps(25),
				QueueMult: 2,
				AQM:       experiment.AQMDropTail,
			},
			Timeline: tl,
			Seed:     1,
		},
		Bin: bin,
	}
	for t := time.Duration(0); t < tl.TraceEnd; t += bin {
		r.GameMbps = append(r.GameMbps, rate(t))
	}
	return r
}

// steadyThen returns a rate curve: pre Mb/s before the competing flow
// arrives, mid during contention, post after departure.
func steadyThen(tl metrics.Timeline, pre, mid, post float64) func(time.Duration) float64 {
	return func(t time.Duration) float64 {
		switch {
		case t < tl.FlowStart:
			return pre
		case t < tl.FlowStop:
			return mid
		default:
			return post
		}
	}
}

func outcomeOf(t *testing.T, name string, cr *ChaosRun, sampleEvery int) (skip bool, violation string) {
	t.Helper()
	for _, inv := range Invariants {
		if inv.Name == name {
			return inv.Check(cr, sampleEvery)
		}
	}
	t.Fatalf("no invariant named %q", name)
	return false, ""
}

func TestRecoveryCheckerFires(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1) // tail 17s: room for small deficits
	// Mild contention (deficit 1 Mb/s -> settle well inside the tail), then
	// the stream collapses instead of recovering: must fire.
	cr := &ChaosRun{Result: fabricateRun(tl, steadyThen(tl, 25, 24, 5))}
	if skip, v := outcomeOf(t, "recovery-after-departure", cr, 0); skip || v == "" {
		t.Fatalf("collapsed tail not flagged (skip=%v, violation=%q)", skip, v)
	}
	// Full recovery: must pass.
	cr = &ChaosRun{Result: fabricateRun(tl, steadyThen(tl, 25, 24, 25))}
	if skip, v := outcomeOf(t, "recovery-after-departure", cr, 0); skip || v != "" {
		t.Fatalf("recovered run flagged (skip=%v, violation=%q)", skip, v)
	}
	// Deep contention: the slowest controller cannot close a 20 Mb/s
	// deficit inside a 17 s tail, so the run must be skipped, not failed.
	cr = &ChaosRun{Result: fabricateRun(tl, steadyThen(tl, 25, 5, 5))}
	if skip, _ := outcomeOf(t, "recovery-after-departure", cr, 0); !skip {
		t.Fatal("undecidable run (tail shorter than required settle) was not skipped")
	}
	// A stream that never established is outside the invariant.
	cr = &ChaosRun{Result: fabricateRun(tl, steadyThen(tl, 0.2, 0.2, 0.2))}
	if skip, _ := outcomeOf(t, "recovery-after-departure", cr, 0); !skip {
		t.Fatal("never-established stream was not skipped")
	}
}

func TestQueueBoundCheckerFires(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	res := fabricateRun(tl, steadyThen(tl, 25, 20, 25))
	cfg := res.Cfg.Defaults()
	// One sample just under the bound: pass. One absurd sample: fire.
	sojourn := time.Duration(float64(cfg.QueueBytes()) * 8 / float64(cfg.Capacity) * float64(time.Second))
	bound := cfg.BaseRTT + sojourn + queueBoundPad
	res.RTT = []ping.Sample{{At: 0, RTT: bound - time.Millisecond}}
	cr := &ChaosRun{Result: res}
	if skip, v := outcomeOf(t, "queue-bound", cr, 0); skip || v != "" {
		t.Fatalf("in-bound RTT flagged (skip=%v, violation=%q)", skip, v)
	}
	res.RTT = append(res.RTT, ping.Sample{At: 0, RTT: bound + 10*time.Millisecond})
	if skip, v := outcomeOf(t, "queue-bound", cr, 0); skip || v == "" {
		t.Fatalf("out-of-bound RTT not flagged (skip=%v, violation=%q)", skip, v)
	}
	// A delay retune moves the base RTT out from under the bound: skip.
	res.Cfg.Schedule = []experiment.ScheduleStep{{At: tl.FlowStart, Kind: experiment.ScheduleDelay, Delay: 50 * time.Millisecond}}
	if skip, _ := outcomeOf(t, "queue-bound", cr, 0); !skip {
		t.Fatal("delay-retuned run was not skipped")
	}
}

// swapRunFn substitutes the differential runner for one test.
func swapRunFn(t *testing.T, fn func(experiment.RunConfig) *experiment.RunResult) {
	t.Helper()
	prev := runFn
	runFn = fn
	t.Cleanup(func() { runFn = prev })
}

func TestDeterminismCheckerFires(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	res := fabricateRun(tl, steadyThen(tl, 25, 20, 25))
	cr := &ChaosRun{Index: 0, Cfg: res.Cfg, Result: res}

	// Re-run reproduces the result: pass.
	swapRunFn(t, func(experiment.RunConfig) *experiment.RunResult { return res })
	if skip, v := outcomeOf(t, "determinism", cr, 1); skip || v != "" {
		t.Fatalf("identical re-run flagged (skip=%v, violation=%q)", skip, v)
	}
	// Re-run diverges by a single counter: fire.
	diverged := *res
	diverged.FramesSent = res.FramesSent + 1
	swapRunFn(t, func(experiment.RunConfig) *experiment.RunResult { return &diverged })
	if skip, v := outcomeOf(t, "determinism", cr, 1); skip || v == "" {
		t.Fatalf("diverged re-run not flagged (skip=%v, violation=%q)", skip, v)
	}
	// Off-sample runs are skipped and must not pay the extra simulation.
	called := false
	swapRunFn(t, func(experiment.RunConfig) *experiment.RunResult { called = true; return res })
	off := &ChaosRun{Index: 1, Cfg: res.Cfg, Result: res}
	if skip, _ := outcomeOf(t, "determinism", off, 2); !skip || called {
		t.Fatalf("off-sample run not skipped (called=%v)", called)
	}
}

func TestLossMonotonicCheckerFires(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	res := fabricateRun(tl, steadyThen(tl, 20, 15, 20))
	cr := &ChaosRun{Index: 0, Cfg: res.Cfg, Result: res}

	var gotCfg experiment.RunConfig
	// Perturbed run delivers MORE under added loss: fire.
	more := fabricateRun(tl, steadyThen(tl, 25, 25, 25))
	swapRunFn(t, func(cfg experiment.RunConfig) *experiment.RunResult { gotCfg = cfg; return more })
	if skip, v := outcomeOf(t, "loss-monotonicity", cr, 1); skip || v == "" {
		t.Fatalf("anti-monotone delivery not flagged (skip=%v, violation=%q)", skip, v)
	}
	// The perturbation itself must actually add loss.
	if gotCfg.Impair.LossModel != netem.LossBernoulli || gotCfg.Impair.LossRate != extraLoss {
		t.Fatalf("perturbed config did not add loss: %+v", gotCfg.Impair)
	}
	// Less delivery under loss: pass.
	less := fabricateRun(tl, steadyThen(tl, 15, 10, 15))
	swapRunFn(t, func(experiment.RunConfig) *experiment.RunResult { return less })
	if skip, v := outcomeOf(t, "loss-monotonicity", cr, 1); skip || v != "" {
		t.Fatalf("monotone delivery flagged (skip=%v, violation=%q)", skip, v)
	}
}

// TestLossMonotonicLiftsScheduledLoss pins the schedule-aware part of the
// perturbation: loss steps must be lifted by the same extra rate, or the
// impairer's Bernoulli rate would be overwritten mid-run and the perturbed
// run would not be uniformly lossier.
func TestLossMonotonicLiftsScheduledLoss(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	res := fabricateRun(tl, steadyThen(tl, 20, 15, 20))
	res.Cfg.Schedule = []experiment.ScheduleStep{
		{At: tl.FlowStart, Kind: experiment.ScheduleLoss, LossRate: 0.02},
		{At: tl.FlowStop, Kind: experiment.ScheduleLoss},
	}
	cr := &ChaosRun{Index: 0, Cfg: res.Cfg, Result: res}
	var gotCfg experiment.RunConfig
	swapRunFn(t, func(cfg experiment.RunConfig) *experiment.RunResult { gotCfg = cfg; return res })
	if skip, v := outcomeOf(t, "loss-monotonicity", cr, 1); skip || v != "" {
		t.Fatalf("equal delivery flagged (skip=%v, violation=%q)", skip, v)
	}
	if got := gotCfg.Schedule[0].LossRate; got != 0.02+extraLoss {
		t.Fatalf("scheduled loss step not lifted: %g", got)
	}
	if got := gotCfg.Schedule[1].LossRate; got != extraLoss {
		t.Fatalf("restore step not lifted: %g", got)
	}
	// The original config's schedule must not have been mutated in place.
	if cr.Cfg.Schedule[0].LossRate != 0.02 {
		t.Fatal("perturbation mutated the original schedule")
	}
}

func TestCleanEquivalenceCheckerFires(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	res := fabricateRun(tl, steadyThen(tl, 25, 20, 25))
	cr := &ChaosRun{Index: 0, Cfg: res.Cfg, Result: res}

	// Forced stage changes behaviour (one extra frame): fire.
	swapRunFn(t, func(cfg experiment.RunConfig) *experiment.RunResult {
		r := *res
		if cfg.ForceImpairer {
			r.FramesSent++
		}
		return &r
	})
	if skip, v := outcomeOf(t, "clean-run-equivalence", cr, 0); skip || v == "" {
		t.Fatalf("behaviour change not flagged (skip=%v, violation=%q)", skip, v)
	}
	// Forced stage only counts packets (pure bookkeeping): pass.
	swapRunFn(t, func(cfg experiment.RunConfig) *experiment.RunResult {
		r := *res
		if cfg.ForceImpairer {
			r.Impair.Packets = 12345
		}
		return &r
	})
	if skip, v := outcomeOf(t, "clean-run-equivalence", cr, 0); skip || v != "" {
		t.Fatalf("bookkeeping-only stage flagged (skip=%v, violation=%q)", skip, v)
	}
	// Only run 0 of a campaign pays the two extra simulations.
	if skip, _ := outcomeOf(t, "clean-run-equivalence", &ChaosRun{Index: 3, Cfg: res.Cfg, Result: res}, 0); !skip {
		t.Fatal("non-zero index not skipped")
	}
}

// TestDigestSensitivity proves the digest covers each field class it
// claims to: flipping any one of them must change the hash.
func TestDigestSensitivity(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	base := fabricateRun(tl, steadyThen(tl, 25, 20, 25))
	base.RTT = []ping.Sample{{At: 1000, RTT: 20 * time.Millisecond}}
	base.CompetitorTraces = []experiment.CompetitorTrace{{Competitor: experiment.Competitor{Kind: "iperf", CCA: "cubic"}, Mbps: []float64{1, 2}}}
	base.Flows = []experiment.FlowStats{{Arrivals: 3, ActiveSec: 1.5, MeanMbps: 4, SRTTms: 20}}
	d0 := Digest(base)
	if d1 := Digest(base); d1 != d0 {
		t.Fatal("digest not deterministic")
	}
	mutations := map[string]func(r *experiment.RunResult){
		"game series":  func(r *experiment.RunResult) { r.GameMbps[0]++ },
		"rtt sample":   func(r *experiment.RunResult) { r.RTT[0].RTT += time.Millisecond },
		"frames":       func(r *experiment.RunResult) { r.FramesDisplayed++ },
		"retransmits":  func(r *experiment.RunResult) { r.TCPRetransmits++ },
		"engine":       func(r *experiment.RunResult) { r.Engine.EventsDispatched++ },
		"impair drops": func(r *experiment.RunResult) { r.Impair.LossDrops++ },
		"trace":        func(r *experiment.RunResult) { r.CompetitorTraces[0].Mbps[0]++ },
		"flow stats":   func(r *experiment.RunResult) { r.Flows[0].MeanMbps++ },
	}
	for name, mutate := range mutations {
		c := *base
		c.GameMbps = append([]float64(nil), base.GameMbps...)
		c.RTT = append([]ping.Sample(nil), base.RTT...)
		c.CompetitorTraces = []experiment.CompetitorTrace{{
			Competitor: experiment.Competitor{Kind: "iperf", CCA: "cubic"},
			Mbps:       append([]float64(nil), base.CompetitorTraces[0].Mbps...),
		}}
		c.Flows = append([]experiment.FlowStats(nil), base.Flows...)
		mutate(&c)
		if Digest(&c) == d0 {
			t.Errorf("digest blind to %s", name)
		}
	}
}

// TestViolationMessagesCarryReproInfo pins the report contract: a
// violation message names concrete quantities, and the campaign report
// records the run index and seed that reproduce it.
func TestViolationMessagesCarryReproInfo(t *testing.T) {
	tl := metrics.PaperTimeline.Scale(0.1)
	cr := &ChaosRun{Result: fabricateRun(tl, steadyThen(tl, 25, 24, 5))}
	_, v := outcomeOf(t, "recovery-after-departure", cr, 0)
	for _, want := range []string{"Mb/s", "deficit", "settle"} {
		if !strings.Contains(v, want) {
			t.Errorf("violation %q missing %q", v, want)
		}
	}
}
