package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// FuzzParseScenario feeds the spec parser arbitrary file contents. The
// parser must never panic, must be deterministic, and any spec it accepts
// must satisfy the structural contract RunConfig depends on: a valid
// system, a resolvable path with a well-defined bottleneck, finite
// positive capacity, a consistent timeline, and a buildable, cacheable
// run configuration for iteration 0.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		headlineSpec,
		// A spec exercising every section.
		`[run]
name = full
seed = 9
iterations = 2
scale = 0.5
[game]
system = luna
[link access]
rate = 100mbit
delay = 2ms
[link bottleneck]
rate = 25mbit
delay = 6.25ms
queue = 4
aqm = codel
[path]
hops = access, bottleneck
[flow a]
kind = iperf
cca = bbr
[flow b]
kind = dash
[impair]
loss = 1%
jitter = 2ms
[schedule]
step = 100s rate=10mbit
step = 120s rate=25mbit
[population]
flows = 8
mix = iperf:cubic,dash
`,
		// Hostile shapes the parser must reject without panicking.
		"[link l]\nrate = NaN",
		"[link l]\nrate = +Inf\ndelay = -1ms",
		"[game]\nsystem = stadia\n[link a]\nrate = 1mbit\n[path]\nhops = a, a",
		"[game]\nsystem = stadia\n[link l]\nrate = 25mbit\nqueue = 1e308xbdp",
		"[schedule]\nstep = 10s loss=200%",
		"[flow f]\nstart = 100000h\nstop = -3s",
		"[run]\nseed = 99999999999999999999999999",
		"= value without key",
		"[link " + strings.Repeat("x", 100) + "]\nrate = 1mbit",
		"\x00\x01\x02[game]",
		"[game]\nsystem = stadia\n" + strings.Repeat("#pad\n", 50),
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		sp, err := Parse(strings.NewReader(text))
		if err != nil {
			if sp != nil {
				t.Fatalf("Parse returned both a spec and an error: %v", err)
			}
			return
		}
		// Determinism: same bytes, same spec.
		sp2, err2 := Parse(strings.NewReader(text))
		if err2 != nil || !reflect.DeepEqual(sp, sp2) {
			t.Fatalf("re-parse diverged: %v", err2)
		}
		// Structural contract of an accepted spec.
		if sp.System == "" || len(sp.Links) == 0 {
			t.Fatalf("accepted spec missing system or links: %+v", sp)
		}
		bn := sp.bottleneck()
		if bn.Rate <= 0 || math.IsNaN(float64(bn.Rate)) || math.IsInf(float64(bn.Rate), 0) {
			t.Fatalf("bottleneck rate %v not finite positive", bn.Rate)
		}
		if sp.BaseRTT() < 0 {
			t.Fatalf("negative base RTT %v", sp.BaseRTT())
		}
		cfg := sp.RunConfig(0).Defaults()
		tl := cfg.Timeline
		if !(tl.FlowStart < tl.FlowStop && tl.FlowStop <= tl.TraceEnd) {
			t.Fatalf("inconsistent timeline %+v", tl)
		}
		for _, st := range cfg.Schedule {
			if st.At < 0 || st.At > tl.TraceEnd {
				t.Fatalf("schedule step outside trace: %+v", st)
			}
		}
		if cfg.QueueBytes() <= 0 {
			t.Fatalf("non-positive queue: %d", cfg.QueueBytes())
		}
		if _, ok := experiment.CacheKey(cfg); !ok {
			t.Fatalf("spec-built config not cacheable: %+v", cfg)
		}
	})
}
