package scenario

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/runcache"
)

func TestGenerateChaosRunDeterministic(t *testing.T) {
	for i := 0; i < 10; i++ {
		a := GenerateChaosRun(42, i, 0.1)
		b := GenerateChaosRun(42, i, 0.1)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("run %d: generator not deterministic", i)
		}
	}
	if reflect.DeepEqual(GenerateChaosRun(42, 0, 0.1).Cfg, GenerateChaosRun(43, 0, 0.1).Cfg) {
		t.Fatal("different campaign seeds produced identical run 0")
	}
}

func TestChaosEpisodesWellFormed(t *testing.T) {
	for i := 0; i < 50; i++ {
		cr := GenerateChaosRun(7, i, 0.1)
		tl := cr.Cfg.Timeline
		if len(cr.Episodes) < 1 || len(cr.Episodes) > 3 {
			t.Fatalf("run %d: %d episodes", i, len(cr.Episodes))
		}
		prevEnd := tl.FlowStart
		for _, ep := range cr.Episodes {
			if ep.Start < prevEnd || ep.End <= ep.Start || ep.End >= tl.FlowStop {
				t.Fatalf("run %d: episode %+v outside or overlapping (prev end %v, window %v-%v)",
					i, ep, prevEnd, tl.FlowStart, tl.FlowStop)
			}
			prevEnd = ep.End
		}
		// Every episode's knob must be restored: equal numbers of enter and
		// restore steps, and steps sorted.
		if len(cr.Cfg.Schedule) != 2*len(cr.Episodes) {
			t.Fatalf("run %d: %d steps for %d episodes", i, len(cr.Cfg.Schedule), len(cr.Episodes))
		}
		for s := 1; s < len(cr.Cfg.Schedule); s++ {
			if cr.Cfg.Schedule[s].At < cr.Cfg.Schedule[s-1].At {
				t.Fatalf("run %d: schedule not sorted", i)
			}
		}
	}
}

// memLog collects runlog records for order-independent comparison.
type memLog struct {
	mu   sync.Mutex
	recs []obs.Record
}

func (m *memLog) Log(r obs.Record) error {
	m.mu.Lock()
	m.recs = append(m.recs, r)
	m.mu.Unlock()
	return nil
}

// canonical sorts records by seed and zeroes the wall-clock-only engine
// fields, leaving exactly the deterministic content.
func canonical(recs []obs.Record) []obs.Record {
	out := make([]obs.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].Engine.WallSeconds = 0
		out[i].Engine.Speedup = 0
		out[i].Engine.EventsPerSecond = 0
		out[i].Cached = false
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seed < out[j].Seed })
	return out
}

func TestChaosCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full chaos campaign")
	}
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	log := &memLog{}
	cc := ChaosConfig{
		Seed:        42,
		Runs:        8,
		Scale:       0.05,
		Workers:     4,
		Cache:       cache,
		Log:         log,
		SampleEvery: 4,
	}
	rep, err := RunChaos(cc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violations != 0 {
		t.Fatalf("campaign reported violations:\n%+v", rep.Invariants)
	}
	for _, inv := range rep.Invariants {
		if inv.Checked+inv.Skipped != cc.Runs {
			t.Fatalf("%s: checked %d + skipped %d != %d runs", inv.Name, inv.Checked, inv.Skipped, cc.Runs)
		}
	}
	// The always-on invariants must actually have checked something.
	for _, name := range []string{"recovery-after-departure", "queue-bound"} {
		found := false
		for _, inv := range rep.Invariants {
			if inv.Name == name && inv.Checked > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("invariant %s never checked", name)
		}
	}
	if len(log.recs) != cc.Runs {
		t.Fatalf("runlog got %d records, want %d", len(log.recs), cc.Runs)
	}

	// Same seed, same campaign: every run must now be a cache hit and the
	// report (and canonical runlog) byte-identical.
	log2 := &memLog{}
	cc2 := cc
	cc2.Log = log2
	cc2.Workers = 1
	rep2, err := RunChaos(cc2)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.CacheHits != cc.Runs {
		t.Fatalf("re-run cache hits = %d, want %d", rep2.CacheHits, cc.Runs)
	}
	r1, r2 := *rep, *rep2
	r1.CacheHits, r2.CacheHits = 0, 0
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("re-run report differs:\n%+v\n%+v", rep, rep2)
	}
	if !reflect.DeepEqual(canonical(log.recs), canonical(log2.recs)) {
		t.Fatal("re-run runlog differs from original")
	}
}

// TestChaosWorkersInvariant proves worker count cannot change a campaign:
// the golden-file round-trip across parallelism levels.
func TestChaosWorkersInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three chaos campaigns")
	}
	var reports []*CampaignReport
	var logs [][]obs.Record
	for _, workers := range []int{1, 4, 8} {
		log := &memLog{}
		rep, err := RunChaos(ChaosConfig{
			Seed: 9, Runs: 4, Scale: 0.05, Workers: workers, Log: log, SampleEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, rep)
		logs = append(logs, canonical(log.recs))
	}
	for i := 1; i < len(reports); i++ {
		if !reflect.DeepEqual(reports[0], reports[i]) {
			t.Fatalf("reports differ between workers=1 and variant %d:\n%+v\n%+v", i, reports[0], reports[i])
		}
		if !reflect.DeepEqual(logs[0], logs[i]) {
			t.Fatalf("runlogs differ between workers=1 and variant %d", i)
		}
	}
}
