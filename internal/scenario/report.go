package scenario

import (
	"encoding/json"
	"fmt"
	"os"
)

// Load parses a scenario file from disk.
func Load(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	defer f.Close()
	sp, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return sp, nil
}

// SaveReport writes a campaign report as indented JSON, the interchange
// format gsreport -invariants renders.
func SaveReport(path string, rep *CampaignReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: encode report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: save report: %w", err)
	}
	return nil
}

// LoadReport reads a campaign report previously written by SaveReport.
func LoadReport(path string) (*CampaignReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: load report: %w", err)
	}
	var rep CampaignReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("scenario: parse report %s: %w", path, err)
	}
	return &rep, nil
}
