package scenario

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"math"
	"time"

	"repro/internal/experiment"
	"repro/internal/netem"
)

// The metamorphic invariant suite: properties every chaos run must
// satisfy regardless of what the random episode program did. Each
// invariant either passes, fails with a concrete violation message, or
// reports itself not applicable to the run (gated invariants, and the
// sampled differential ones, which pay an extra simulation and therefore
// run on a subset).
//
// Every checker here has a negative test in invariants_test.go that
// injects a violation and proves the checker catches it — a green
// invariant is only evidence if it is known to be able to turn red.

// InvariantOutcome is one invariant's verdict on one run.
type InvariantOutcome struct {
	Name     string
	Skipped  bool
	Violation string // empty = pass (when not skipped)
}

// Violation pins one failure to its reproducer: the run index within the
// campaign and the run seed (GenerateChaosRun(campaignSeed, Run, scale)
// rebuilds the exact configuration).
type Violation struct {
	Run    int    `json:"run"`
	Seed   uint64 `json:"seed"`
	Detail string `json:"detail"`
}

// InvariantResult aggregates one invariant over a campaign.
type InvariantResult struct {
	Name    string `json:"name"`
	Desc    string `json:"desc"`
	Checked int    `json:"checked"`
	Passed  int    `json:"passed"`
	Skipped int    `json:"skipped"`
	// ViolationList holds the first few failures with reproduction info.
	ViolationList []Violation `json:"violations,omitempty"`
}

// maxViolationsKept bounds per-invariant failure detail in the report.
const maxViolationsKept = 20

// CampaignReport is the chaos campaign summary gsreport renders.
type CampaignReport struct {
	Seed       uint64            `json:"seed"`
	Runs       int               `json:"runs"`
	Scale      float64           `json:"scale"`
	CacheHits  int               `json:"cache_hits"`
	Violations int               `json:"violations"`
	Invariants []InvariantResult `json:"invariants"`
}

// Passed reports whether the campaign saw zero violations.
func (r *CampaignReport) Passed() bool { return r.Violations == 0 }

// Invariant is one checkable property. Check returns skip=true when the
// run is outside the invariant's applicability gate; otherwise violation
// is empty on pass and a concrete, reproducible message on failure.
// sampleEvery is the campaign's differential sampling period (<= 0
// disables the sampled invariants).
type Invariant struct {
	Name  string
	Desc  string
	Check func(cr *ChaosRun, sampleEvery int) (skip bool, violation string)
}

// Thresholds. These are deliberately loose enough that the properties
// hold by mechanism, not by luck: recovery compares smoothed means over
// multi-second windows, the queue bound carries scheduling slack, and
// monotonicity tolerates the frame-pipeline quantisation noise that added
// loss can shift either way by a frame or two.
const (
	recoveryFrac   = 0.75             // post-departure bitrate vs pre-contention
	queueBoundPad  = 3 * time.Millisecond
	monotonicSlack = 1.02             // added loss may not raise delivery by >2%
	extraLoss      = 0.03             // monotonicity perturbation

	// Controllers recover in absolute time — the ramp clock does not
	// compress with the timeline — and the fleet has two slow families:
	// additive recovery at 0.4 Mb/s per second (GeForce's RampPerSec;
	// Stadia's near-capacity additive mode) and multiplicative growth at
	// 1.5% per second (Luna's GrowthPerSec). The recovery invariant gates
	// itself on whether the post-departure tail leaves the slower of the
	// two enough time to close the deficit the run actually measured, with
	// headroom for clean-path hold-offs and feedback quantisation.
	slowestRampMbpsPerSec = 0.4
	slowestGrowthPerSec   = 0.015
	recoverySettleFactor  = 1.5
	recoverySettleSlack   = 2 * time.Second
	minRecoveryWindow     = 2 * time.Second
)

// runFn executes a run for the differential invariants. It is a variable
// so the negative tests can substitute a runner that fabricates a
// violating result and prove each checker actually fires.
var runFn = experiment.Run

// Invariants is the suite, in report order.
var Invariants = []Invariant{
	{
		Name:  "recovery-after-departure",
		Desc:  "game bitrate returns to its pre-contention level after the competing flow departs (all chaos episodes end before departure by construction)",
		Check: checkRecovery,
	},
	{
		Name:  "queue-bound",
		Desc:  "no RTT sample exceeds base RTT + worst-case bottleneck queueing delay + configured jitter (drop-tail physics)",
		Check: checkQueueBound,
	},
	{
		Name:  "determinism",
		Desc:  "re-running the identical configuration reproduces the result digest bit for bit (sampled; also differentially validates cache decode)",
		Check: checkDeterminism,
	},
	{
		Name:  "loss-monotonicity",
		Desc:  "adding loss everywhere on the path does not increase total delivered traffic, game plus competitor (sampled)",
		Check: checkLossMonotonic,
	},
	{
		Name:  "clean-run-equivalence",
		Desc:  "a force-constructed but unconfigured impairment stage leaves the run byte-identical to no stage at all (run 0 of each campaign)",
		Check: checkCleanEquivalence,
	},
}

// CheckInvariants runs the full suite against one executed chaos run.
func CheckInvariants(cr *ChaosRun, sampleEvery int) []InvariantOutcome {
	out := make([]InvariantOutcome, len(Invariants))
	for i, inv := range Invariants {
		skip, viol := inv.Check(cr, sampleEvery)
		out[i] = InvariantOutcome{Name: inv.Name, Skipped: skip, Violation: viol}
	}
	return out
}

func checkRecovery(cr *ChaosRun, _ int) (bool, string) {
	tl := cr.Result.Cfg.Timeline
	series := cr.Result.GameSeries()
	of, ot := tl.OriginalWindow()
	baseline := series.MeanBetween(of, ot)
	if baseline < 1 {
		// A sub-1 Mb/s baseline means the stream never established; the
		// recovery question is not defined for that run.
		return true, ""
	}
	// How far contention pushed the stream down, from the settled portion
	// of the contention window itself.
	af, at := tl.AdjustedWindow()
	contended := series.MeanBetween(af, at)
	deficit := baseline - contended
	if deficit < 0 {
		deficit = 0
	}
	// Settle time the slowest controller needs to climb that deficit back:
	// the worse of the additive and multiplicative recovery families. If
	// the compressed tail cannot fit the settle plus a meaningful
	// measurement window, the invariant is not decidable for this run —
	// the stream did not fail to recover, it was never given the time the
	// mechanism requires.
	additiveSec := deficit / slowestRampMbpsPerSec
	floor := contended
	if floor < 0.5 {
		floor = 0.5
	}
	growthSec := 0.0
	if baseline > floor {
		growthSec = math.Log(baseline/floor) / slowestGrowthPerSec
	}
	rampSec := additiveSec
	if growthSec > rampSec {
		rampSec = growthSec
	}
	settle := time.Duration(rampSec*recoverySettleFactor*float64(time.Second)) +
		recoverySettleSlack
	tail := tl.TraceEnd - tl.FlowStop
	if tail-settle < minRecoveryWindow {
		return true, ""
	}
	post := series.MeanBetween(tl.FlowStop+settle, tl.TraceEnd)
	if post < recoveryFrac*baseline {
		return false, fmt.Sprintf("post-departure bitrate %.2f Mb/s < %.0f%% of pre-contention %.2f Mb/s (deficit %.1f Mb/s, settle %.1fs, tail %.1fs)",
			post, recoveryFrac*100, baseline, deficit, settle.Seconds(), tail.Seconds())
	}
	return false, ""
}

func checkQueueBound(cr *ChaosRun, _ int) (bool, string) {
	cfg := cr.Result.Cfg.Defaults()
	if cfg.AQM != experiment.AQMDropTail {
		// AQM sojourn control changes the bound's form; the chaos
		// generator only emits drop-tail, but gate anyway.
		return true, ""
	}
	// Worst-case one-way sojourn: a full queue draining at the slowest
	// rate the schedule ever sets.
	minRate := cfg.Capacity
	var maxJitter time.Duration
	for _, st := range cfg.Schedule {
		if st.Kind == experiment.ScheduleRate && st.Rate < minRate {
			minRate = st.Rate
		}
		if st.Kind == experiment.ScheduleJitter && st.Jitter > maxJitter {
			maxJitter = st.Jitter
		}
		if st.Kind == experiment.ScheduleDelay {
			// Delay retunes move base RTT out from under the bound.
			return true, ""
		}
	}
	if minRate <= 0 {
		return true, ""
	}
	sojourn := time.Duration(float64(cfg.QueueBytes()) * 8 / float64(minRate) * float64(time.Second))
	bound := cfg.BaseRTT + sojourn + maxJitter + queueBoundPad
	for _, s := range cr.Result.RTT {
		if s.RTT > bound {
			return false, fmt.Sprintf("RTT %.2f ms at t=%.1fs exceeds bound %.2f ms (base %.1f + queue %.1f + jitter %.1f)",
				float64(s.RTT)/1e6, s.At.Duration().Seconds(), float64(bound)/1e6,
				float64(cfg.BaseRTT)/1e6, float64(sojourn)/1e6, float64(maxJitter)/1e6)
		}
	}
	return false, ""
}

func checkDeterminism(cr *ChaosRun, sampleEvery int) (bool, string) {
	if sampleEvery <= 0 || cr.Index%sampleEvery != 0 {
		return true, ""
	}
	fresh := runFn(cr.Cfg)
	want, got := Digest(cr.Result), Digest(fresh)
	if want != got {
		src := "prior run"
		if cr.Cached {
			src = "cache entry"
		}
		return false, fmt.Sprintf("re-run digest %s != %s digest %s", got[:16], src, want[:16])
	}
	return false, ""
}

func checkLossMonotonic(cr *ChaosRun, sampleEvery int) (bool, string) {
	if sampleEvery <= 0 || cr.Index%sampleEvery != sampleEvery/2 {
		return true, ""
	}
	if cr.Cfg.Impair.LossModel != "" && cr.Cfg.Impair.LossModel != netem.LossBernoulli {
		return true, ""
	}
	lossier := cr.Cfg
	lossier.Impair.LossModel = netem.LossBernoulli
	lossier.Impair.LossRate = cr.Cfg.Impair.LossRate + extraLoss
	// Schedule loss steps overwrite the impairer's Bernoulli rate, so lift
	// each one by the same amount — the perturbed run then sees strictly
	// more loss at every instant.
	if len(lossier.Schedule) > 0 {
		steps := make([]experiment.ScheduleStep, len(lossier.Schedule))
		copy(steps, lossier.Schedule)
		for i := range steps {
			if steps[i].Kind == experiment.ScheduleLoss {
				steps[i].LossRate += extraLoss
			}
		}
		lossier.Schedule = steps
	}
	perturbed := runFn(lossier)
	base := deliveredMbps(cr.Result)
	pert := deliveredMbps(perturbed)
	if pert > base*monotonicSlack {
		return false, fmt.Sprintf("total delivered bitrate rose from %.3f to %.3f Mb/s under +%.0f%% loss",
			base, pert, extraLoss*100)
	}
	return false, ""
}

// deliveredMbps is the whole-trace mean of game plus competitor delivered
// bitrate — the monotonicity metric. The game share ALONE is not monotone
// under path loss: loss collapses the loss-sensitive TCP competitor first,
// and the rate-adaptive stream then claims the freed capacity (observed
// empirically: +3% loss raised one run's game bitrate 32% while its Cubic
// competitor starved). What loss cannot do is increase the total the
// bottleneck delivers.
func deliveredMbps(r *experiment.RunResult) float64 {
	end := r.Cfg.Timeline.TraceEnd
	return r.GameSeries().MeanBetween(0, end) + r.TCPSeries().MeanBetween(0, end)
}

func checkCleanEquivalence(cr *ChaosRun, _ int) (bool, string) {
	if cr.Index != 0 {
		return true, ""
	}
	base := cr.Cfg
	base.Schedule = nil
	base.Impair = netem.Impairment{}
	plain := runFn(base)
	forced := base
	forced.ForceImpairer = true
	withStage := runFn(forced)
	// The stage legitimately counts the packets that pass through it, so
	// compare behaviour with the bookkeeping counters zeroed: everything
	// the client experienced must be identical.
	pc, fc := *plain, *withStage
	pc.Impair, fc.Impair = netem.ImpairStats{}, netem.ImpairStats{}
	if a, b := Digest(&pc), Digest(&fc); a != b {
		return false, fmt.Sprintf("inert impairment stage changed the run: %s != %s", b[:16], a[:16])
	}
	return false, ""
}

// Digest hashes every deterministic field of a run result — the full
// bitrate/FPS/loss series, RTT samples, competitor traces, end-state
// counters, impairer counters, and per-flow summaries — into a hex
// SHA-256. Wall-clock engine fields are excluded; everything else is part
// of the simulator's pure-function contract, so two results with equal
// digests came from equivalent runs.
func Digest(r *experiment.RunResult) string {
	h := sha256.New()
	hashI64(h, int64(r.Bin))
	hashF64s(h, r.GameMbps)
	hashF64s(h, r.TCPMbps)
	hashF64s(h, r.FPSBins)
	hashF64s(h, r.GameLossBins)
	hashF64s(h, r.TCPLossBins)
	hashI64(h, int64(len(r.RTT)))
	for _, s := range r.RTT {
		hashI64(h, int64(s.At))
		hashI64(h, int64(s.RTT))
	}
	hashI64(h, int64(len(r.CompetitorTraces)))
	for _, ct := range r.CompetitorTraces {
		h.Write([]byte(ct.Kind))
		h.Write([]byte(ct.CCA))
		hashF64s(h, ct.Mbps)
	}
	hashI64(h, r.FramesSent)
	hashI64(h, r.FramesDisplayed)
	hashI64(h, r.FramesDropped)
	hashI64(h, r.NackRetx)
	hashI64(h, int64(r.TCPRetransmits))
	hashI64(h, int64(r.Engine.EventsDispatched))
	hashI64(h, int64(r.Impair.Packets))
	hashI64(h, int64(r.Impair.LossDrops))
	hashI64(h, int64(r.Impair.FlapDrops))
	hashI64(h, int64(r.Impair.Duplicates))
	hashI64(h, int64(r.Impair.Reordered))
	hashI64(h, int64(len(r.Flows)))
	for i := range r.Flows {
		hashI64(h, int64(r.Flows[i].Arrivals))
		hashF64(h, r.Flows[i].ActiveSec)
		hashF64(h, r.Flows[i].MeanMbps)
		hashF64(h, r.Flows[i].SRTTms)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func hashI64(h hash.Hash, v int64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
}

func hashF64(h hash.Hash, v float64) { hashI64(h, int64(math.Float64bits(v))) }

func hashF64s(h hash.Hash, vs []float64) {
	hashI64(h, int64(len(vs)))
	for _, v := range vs {
		hashF64(h, v)
	}
}
