package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/units"
)

// headlineSpec reproduces the paper's 1-vs-1 condition: Stadia against one
// Cubic bulk flow over a 25 Mb/s bottleneck with a 2×BDP drop-tail queue
// and 16.5 ms base RTT. It must compile to exactly the configuration the
// CLI flags build.
const headlineSpec = `
# The paper's headline condition, as a scenario file.
[run]
name = paper-1v1
seed = 1

[game]
system = stadia

[link bottleneck]
rate  = 25mbit
delay = 8.25ms   # one-way; base RTT = 2 x 8.25 = 16.5 ms
queue = 2        # x BDP
aqm   = droptail

[flow bulk]
kind = iperf
cca  = cubic
`

func parseSpec(t *testing.T, text string) *Spec {
	t.Helper()
	sp, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return sp
}

func TestHeadlineSpecMatchesFlagConfig(t *testing.T) {
	sp := parseSpec(t, headlineSpec)

	// The flag path: what cmd/gssim -system stadia -cca cubic -capacity 25
	// -queue 2 -seed 1 constructs (core.Run's mapping).
	flagCfg := experiment.RunConfig{
		Condition: experiment.Condition{
			System:    gamestream.Stadia,
			CCA:       "cubic",
			Capacity:  units.Mbps(25),
			QueueMult: 2,
			AQM:       experiment.AQMDropTail,
		},
		Timeline: metrics.PaperTimeline,
		Seed:     1,
	}.Defaults()

	specCfg := sp.RunConfig(0).Defaults()
	if !reflect.DeepEqual(specCfg, flagCfg) {
		t.Fatalf("spec-built config differs from flag-built:\nspec: %+v\nflag: %+v", specCfg, flagCfg)
	}
	if key1, ok1 := experiment.CacheKey(specCfg); ok1 {
		key2, ok2 := experiment.CacheKey(flagCfg)
		if !ok2 || key1 != key2 {
			t.Fatalf("cache keys differ: %v vs %v", key1, key2)
		}
	} else {
		t.Fatal("spec config not cacheable")
	}
}

// TestHeadlineSpecRunByteIdentical runs both constructions end-to-end and
// requires bit-identical results — the acceptance criterion that a
// scenario file can replace the flag path without changing a single byte
// of output.
func TestHeadlineSpecRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full runs")
	}
	sp := parseSpec(t, strings.Replace(headlineSpec, "seed = 1", "seed = 1\nscale = 0.1", 1))
	flagCfg := experiment.RunConfig{
		Condition: experiment.Condition{
			System:    gamestream.Stadia,
			CCA:       "cubic",
			Capacity:  units.Mbps(25),
			QueueMult: 2,
		},
		Timeline: metrics.PaperTimeline.Scale(0.1),
		Seed:     1,
	}
	a := experiment.Run(sp.RunConfig(0))
	b := experiment.Run(flagCfg)
	if da, db := Digest(a), Digest(b); da != db {
		t.Fatalf("spec run digest %s != flag run digest %s", da, db)
	}
	// The runlog records must agree too, once the wall-clock-only engine
	// fields are ignored.
	ra, rb := a.Record(0), b.Record(0)
	ra.Engine.WallSeconds, rb.Engine.WallSeconds = 0, 0
	ra.Engine.Speedup, rb.Engine.Speedup = 0, 0
	ra.Engine.EventsPerSecond, rb.Engine.EventsPerSecond = 0, 0
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("runlog records differ:\nspec: %+v\nflag: %+v", ra, rb)
	}
}

func TestParseFullSpec(t *testing.T) {
	sp := parseSpec(t, `
[run]
seed = 7
iterations = 3
scale = 0.5

[game]
system = luna

[link access]
rate  = 100mbit
delay = 2ms

[link bottleneck]
rate  = 25mbit
delay = 6.25ms
queue = 4
aqm   = codel

[path]
hops = access, bottleneck

[flow a]
kind = iperf
cca  = bbr

[flow b]
kind = dash

[flow call]
kind = videocall

[impair]
loss      = 1%
jitter    = 2ms
duplicate = 0.5%

[schedule]
step = 100s rate=10mbit
step = 120s rate=25mbit

[population]
flows   = 8
mix     = iperf:cubic,dash
mean_on = 20s
shape   = 1.5
`)
	if sp.Seed != 7 || sp.Iterations != 3 || sp.Scale != 0.5 {
		t.Fatalf("run header: %+v", sp)
	}
	if got := sp.BaseRTT(); got != 2*(2*time.Millisecond+6250*time.Microsecond) {
		t.Fatalf("BaseRTT = %v", got)
	}
	cfg := sp.RunConfig(1)
	if cfg.Seed != 8 {
		t.Fatalf("iteration seed = %d, want 8", cfg.Seed)
	}
	if cfg.Capacity != units.Mbps(25) || cfg.QueueMult != 4 || cfg.AQM != experiment.AQMCoDel {
		t.Fatalf("bottleneck mapping: %+v", cfg.Condition)
	}
	if len(cfg.Competitors) != 3 || cfg.Competitors[0].CCA != "bbr" ||
		cfg.Competitors[1].Kind != experiment.CompDash || cfg.Competitors[2].Kind != experiment.CompVideoCall {
		t.Fatalf("competitors: %+v", cfg.Competitors)
	}
	if cfg.Impair.LossRate != 0.01 || cfg.Impair.Jitter != 2*time.Millisecond || cfg.Impair.Duplicate != 0.005 {
		t.Fatalf("impair: %+v", cfg.Impair)
	}
	if len(cfg.Schedule) != 2 || cfg.Schedule[0].Rate != units.Mbps(10) {
		t.Fatalf("schedule: %+v", cfg.Schedule)
	}
	if cfg.Population.Flows != 8 || len(cfg.Population.Mix) != 2 || cfg.Population.MeanOn != 20*time.Second {
		t.Fatalf("population: %+v", cfg.Population)
	}
	if cfg.Timeline != metrics.PaperTimeline.Scale(0.5) {
		t.Fatalf("timeline: %+v", cfg.Timeline)
	}
}

func TestFlowWindowOverridesTimeline(t *testing.T) {
	sp := parseSpec(t, `
[game]
system = stadia
[link l]
rate = 25mbit
delay = 8.25ms
[flow f]
kind = iperf
start = 60s
stop  = 120s
`)
	cfg := sp.RunConfig(0)
	if cfg.Timeline.FlowStart != 60*time.Second || cfg.Timeline.FlowStop != 120*time.Second {
		t.Fatalf("timeline window: %+v", cfg.Timeline)
	}
	if cfg.Timeline.TraceEnd != metrics.PaperTimeline.TraceEnd {
		t.Fatalf("trace end changed: %v", cfg.Timeline.TraceEnd)
	}
}

func TestParseRejectsHostileSpecs(t *testing.T) {
	cases := []struct {
		name, spec, want string
	}{
		{"nan rate", "[game]\nsystem = stadia\n[link l]\nrate = NaN\ndelay = 1ms", "bad rate"},
		{"inf rate", "[game]\nsystem = stadia\n[link l]\nrate = +Inf\ndelay = 1ms", "bad rate"},
		{"negative delay", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\ndelay = -5ms", "delay"},
		{"nan queue", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\nqueue = NaN", "queue"},
		{"cyclic path", "[game]\nsystem = stadia\n[link a]\nrate = 25mbit\n[link b]\nrate = 50mbit\n[path]\nhops = a, b, a", "twice"},
		{"unknown hop", "[game]\nsystem = stadia\n[link a]\nrate = 25mbit\n[path]\nhops = a, ghost", "not a declared link"},
		{"unknown cca", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[flow f]\ncca = quic", "unknown cca"},
		{"unknown system", "[game]\nsystem = psnow\n[link l]\nrate = 25mbit", "unknown system"},
		{"unknown section", "[warp]\nspeed = 9", "unknown section"},
		{"unknown key", "[game]\nsystem = stadia\nconsole = yes", "unknown key"},
		{"duplicate section", "[game]\nsystem = stadia\n[game]\nsystem = luna", "duplicate section"},
		{"duplicate link", "[game]\nsystem = stadia\n[link l]\nrate = 1mbit\n[link l]\nrate = 2mbit", "duplicate link"},
		{"duplicate key", "[game]\nsystem = stadia\nsystem = luna", "duplicate key"},
		{"no topology", "[game]\nsystem = stadia", "no [link]"},
		{"missing system", "[link l]\nrate = 25mbit", "missing [game]"},
		{"videocall cca", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[flow f]\nkind = videocall\ncca = cubic", "videocall"},
		{"inverted window", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[flow f]\nkind = iperf\nstart = 100s\nstop = 50s", "not before"},
		{"bare value", "[game]\nsystem = stadia\njunk", "key = value"},
		{"nan loss", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[impair]\nloss = NaN", "probability"},
		{"negative flows", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[population]\nflows = -3", "outside"},
		{"huge iterations", "[run]\niterations = 99999999", "outside"},
		{"bad schedule", "[game]\nsystem = stadia\n[link l]\nrate = 25mbit\n[schedule]\nstep = 10s warp=9", "step"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted:\n%s", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestMultiLinkBottleneckSelection(t *testing.T) {
	sp := parseSpec(t, `
[game]
system = geforce
[link fast]
rate  = 1000mbit
delay = 1ms
queue = 7
[link slow]
rate  = 15mbit
delay = 5ms
queue = 0.5
aqm   = fq_codel
[path]
hops = fast, slow
`)
	cfg := sp.RunConfig(0)
	if cfg.Capacity != units.Mbps(15) {
		t.Fatalf("capacity = %v, want bottleneck 15mbit", cfg.Capacity)
	}
	if cfg.QueueMult != 0.5 || cfg.AQM != experiment.AQMFQCoDel {
		t.Fatalf("queue config should come from the bottleneck hop: %+v", cfg.Condition)
	}
	if cfg.BaseRTT != 12*time.Millisecond {
		t.Fatalf("BaseRTT = %v, want 12ms (2 x (1+5)ms)", cfg.BaseRTT)
	}
}
