package scenario

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Chaos campaigns: seed-derived random impairment programs run at volume
// through the cache, with every run checked against the metamorphic
// invariant suite (invariants.go). A campaign is a pure function of
// (Seed, Runs, Scale): the same campaign seed always generates the same
// run configurations, so re-running one is a 100% cache hit and a
// violation is reproducible from its run seed alone.

// Episode kinds: which knob a chaos episode shakes.
const (
	EpLossBurst   = "loss-burst"   // Bernoulli loss switched on then off
	EpRateCrush   = "rate-crush"   // bottleneck rate cut then restored
	EpJitterStorm = "jitter-storm" // jitter spread raised then cleared
	EpLinkFlap    = "link-flap"    // full outage then restore
)

var episodeKinds = []string{EpLossBurst, EpRateCrush, EpJitterStorm, EpLinkFlap}

// Episode is one bounded impairment burst inside the contention window.
// Every episode restores its knob when it ends, which is what makes the
// recovery and queue-bound invariants decidable.
type Episode struct {
	Kind       string
	Start, End time.Duration
	// LossRate applies to loss-burst, RateFrac (fraction of capacity) to
	// rate-crush, Jitter to jitter-storm.
	LossRate float64
	RateFrac float64
	Jitter   time.Duration
}

// ChaosRun is one generated run: its configuration, the episode program
// behind the schedule, and (after execution) the result.
type ChaosRun struct {
	Index    int
	Seed     uint64
	Cfg      experiment.RunConfig
	Episodes []Episode

	Result *experiment.RunResult
	Cached bool
}

// chaosTag separates the generator's RNG stream from the run's own seed.
const chaosTag uint64 = 0x6368616f73 // "chaos"

// chaosSeed derives run i's seed from the campaign seed with a golden-ratio
// stride (the splitmix64 increment), so consecutive runs get well-separated
// generator and simulation streams.
func chaosSeed(campaign uint64, i int) uint64 {
	return campaign + uint64(i)*0x9e3779b97f4a7c15
}

// Chaos draw ranges. Capacities and queue multiples follow the paper's
// grid; episode severities span "annoying" to "brutal" without leaving the
// regime the invariants can reason about.
var (
	chaosCapsMbps = []float64{15, 25, 35, 50, 75}
	chaosQMults   = []float64{1, 2, 4}
	chaosCCAs     = []string{tcp.AlgCubic, tcp.AlgBBR}
)

// GenerateChaosRun deterministically builds run i of a campaign. scale
// compresses the paper timeline (1.0 = full 540 s trace).
func GenerateChaosRun(campaign uint64, i int, scale float64) *ChaosRun {
	seed := chaosSeed(campaign, i)
	rng := sim.NewRNG(seed ^ chaosTag)
	tl := timelineScaled(scale)

	cr := &ChaosRun{Index: i, Seed: seed}
	linkCap := units.Mbps(chaosCapsMbps[rng.Intn(len(chaosCapsMbps))])
	cfg := experiment.RunConfig{
		Condition: experiment.Condition{
			System:    gamestream.Systems[rng.Intn(len(gamestream.Systems))],
			CCA:       chaosCCAs[rng.Intn(len(chaosCCAs))],
			Capacity:  linkCap,
			QueueMult: chaosQMults[rng.Intn(len(chaosQMults))],
			AQM:       experiment.AQMDropTail,
		},
		Timeline: tl,
		Seed:     seed,
	}

	// Episodes: 1-3 bursts, each confined to its own slice of the
	// contention window so episodes never overlap and the last one is done
	// well before the competing flow departs (the recovery invariant needs
	// a clean post-departure tail).
	n := 1 + rng.Intn(3)
	window := tl.FlowStop - tl.FlowStart
	margin := window / 8
	span := (window - 2*margin) / time.Duration(n)
	for e := 0; e < n; e++ {
		slot := tl.FlowStart + margin + time.Duration(e)*span
		kind := episodeKinds[rng.Intn(len(episodeKinds))]
		// Duration: 5-25% of the slot, flaps capped harder — an outage
		// longer than a few RTO backoffs stops being an episode and
		// becomes a different experiment.
		dur := time.Duration((0.05 + 0.20*rng.Float64()) * float64(span))
		if kind == EpLinkFlap {
			if max := 2 * time.Second; dur > max {
				dur = max
			}
		}
		start := slot + time.Duration(rng.Float64()*float64(span-dur))
		ep := Episode{Kind: kind, Start: start, End: start + dur}
		switch kind {
		case EpLossBurst:
			ep.LossRate = 0.01 + 0.07*rng.Float64()
		case EpRateCrush:
			ep.RateFrac = 0.2 + 0.4*rng.Float64()
		case EpJitterStorm:
			ep.Jitter = time.Duration(1+rng.Intn(8)) * time.Millisecond
		}
		cr.Episodes = append(cr.Episodes, ep)
	}
	cfg.Schedule = scheduleFor(cr.Episodes, linkCap)
	cr.Cfg = cfg
	return cr
}

// scheduleFor renders episodes as the schedule-step program the run
// executes: one step entering each episode, one restoring the knob.
func scheduleFor(eps []Episode, cap units.Rate) []experiment.ScheduleStep {
	var steps []experiment.ScheduleStep
	for _, ep := range eps {
		switch ep.Kind {
		case EpLossBurst:
			steps = append(steps,
				experiment.ScheduleStep{At: ep.Start, Kind: experiment.ScheduleLoss, LossRate: ep.LossRate},
				experiment.ScheduleStep{At: ep.End, Kind: experiment.ScheduleLoss})
		case EpRateCrush:
			steps = append(steps,
				experiment.ScheduleStep{At: ep.Start, Kind: experiment.ScheduleRate, Rate: units.Rate(float64(cap) * ep.RateFrac)},
				experiment.ScheduleStep{At: ep.End, Kind: experiment.ScheduleRate, Rate: cap})
		case EpJitterStorm:
			steps = append(steps,
				experiment.ScheduleStep{At: ep.Start, Kind: experiment.ScheduleJitter, Jitter: ep.Jitter},
				experiment.ScheduleStep{At: ep.End, Kind: experiment.ScheduleJitter})
		case EpLinkFlap:
			steps = append(steps,
				experiment.ScheduleStep{At: ep.Start, Kind: experiment.ScheduleDown},
				experiment.ScheduleStep{At: ep.End, Kind: experiment.ScheduleUp})
		}
	}
	return steps
}

// timelineScaled is the chaos timeline at the given compression.
func timelineScaled(scale float64) metrics.Timeline {
	if scale <= 0 {
		scale = 1
	}
	return metrics.PaperTimeline.Scale(scale)
}

// ChaosConfig configures a campaign.
type ChaosConfig struct {
	// Seed is the campaign seed; Runs the number of generated runs.
	Seed uint64
	Runs int
	// Scale compresses the paper timeline (default 1.0; CI smoke uses
	// 0.1-0.25 for speed).
	Scale float64
	// Workers bounds run concurrency (default 1: fully serial).
	Workers int
	// Cache, when non-nil, serves and stores runs content-addressed; a
	// same-seed campaign re-run is then a 100% hit.
	Cache *runcache.Cache
	// Log, when non-nil, receives one record per run (the standard runlog
	// schema, so chaos campaigns are grep-able like sweeps).
	Log obs.RunLog
	// SampleEvery is the period of the expensive differential invariants
	// (determinism re-run, loss monotonicity): every Nth run pays one extra
	// simulation. 0 defaults to 16; negative disables sampling.
	SampleEvery int
	// Progress, when non-nil, is called after each completed run with
	// (done, total, violations so far).
	Progress func(done, total, violations int)
}

// RunChaos executes a campaign: generate Runs configurations from Seed,
// run each (through the cache when provided), check every invariant
// against every run, and aggregate a report. The report is deterministic
// for a given (Seed, Runs, Scale) regardless of Workers or cache state.
func RunChaos(cc ChaosConfig) (*CampaignReport, error) {
	if cc.Runs <= 0 {
		return nil, fmt.Errorf("scenario: chaos campaign needs Runs > 0")
	}
	if cc.Scale <= 0 {
		cc.Scale = 1
	}
	if cc.SampleEvery == 0 {
		cc.SampleEvery = 16
	}
	workers := cc.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > cc.Runs {
		workers = cc.Runs
	}

	runs := make([]*ChaosRun, cc.Runs)
	outcomes := make([][]InvariantOutcome, cc.Runs)
	hits := make([]bool, cc.Runs)

	var (
		mu         sync.Mutex
		done, viol int
	)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				cr := GenerateChaosRun(cc.Seed, i, cc.Scale)
				res, hit := experiment.RunCached(cc.Cache, cr.Cfg)
				cr.Result, cr.Cached = res, hit
				out := CheckInvariants(cr, cc.SampleEvery)
				runs[i], outcomes[i], hits[i] = cr, out, hit

				if cc.Log != nil {
					rec := res.Record(i)
					rec.Cached = hit
					_ = cc.Log.Log(rec)
				}
				if cc.Progress != nil {
					mu.Lock()
					done++
					for _, o := range out {
						if o.Violation != "" {
							viol++
						}
					}
					cc.Progress(done, cc.Runs, viol)
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < cc.Runs; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	rep := &CampaignReport{
		Seed:  cc.Seed,
		Runs:  cc.Runs,
		Scale: cc.Scale,
	}
	rep.Invariants = make([]InvariantResult, len(Invariants))
	byName := map[string]*InvariantResult{}
	for i, inv := range Invariants {
		rep.Invariants[i] = InvariantResult{Name: inv.Name, Desc: inv.Desc}
		byName[inv.Name] = &rep.Invariants[i]
	}
	for i := range runs {
		if hits[i] {
			rep.CacheHits++
		}
		for _, o := range outcomes[i] {
			ir := byName[o.Name]
			switch {
			case o.Skipped:
				ir.Skipped++
			case o.Violation != "":
				ir.Checked++
				rep.Violations++
				if len(ir.ViolationList) < maxViolationsKept {
					ir.ViolationList = append(ir.ViolationList, Violation{
						Run: i, Seed: runs[i].Seed, Detail: o.Violation,
					})
				}
			default:
				ir.Checked++
				ir.Passed++
			}
		}
	}
	return rep, nil
}
