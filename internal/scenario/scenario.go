// Package scenario implements the declarative experiment spec: a small
// INI-style file format describing topology (links and a routed path with
// per-hop shaping), flows (kind, congestion control, start/stop schedule,
// N-flow populations) and impairments (static profiles plus the mid-run
// schedule language), compiled into the existing experiment.RunConfig —
// so a new experiment needs a text file, not Go code.
//
// The same package hosts the seed-driven chaos campaign generator
// (chaos.go) and the metamorphic invariant suite (invariants.go) that
// turn the one-shot conformance battery into a continuously exercised
// property suite. See docs/SCENARIOS.md for the grammar and a worked
// example.
package scenario

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/tcp"
	"repro/internal/units"
)

// Parser safety bounds. Specs are small human-written files; anything
// past these limits is hostile or corrupt input and is rejected rather
// than amplified into memory or CPU (the fuzz harness leans on this).
const (
	maxSpecBytes  = 1 << 20 // 1 MiB
	maxLineBytes  = 4096
	maxLinks      = 64
	maxHops       = 64
	maxFlows      = 64
	maxScheduleBy = 4096 // schedule steps per spec
	maxPopFlows   = 100000
	maxIterations = 1000000
)

// Link is one named hop of the topology: a shaped, delayed segment. The
// bottleneck hop (minimum rate along the path) contributes the queue
// sizing and AQM discipline; every hop contributes its propagation delay.
type Link struct {
	Name  string
	Rate  units.Rate
	Delay time.Duration
	// QueueMult sizes the hop's queue in BDP multiples (of the whole
	// path's base RTT, following the paper's `queue = N × BDP` setup).
	// Zero means unset; only the bottleneck hop's value is used.
	QueueMult float64
	// AQM is the hop's queue discipline; empty means drop-tail. Only the
	// bottleneck hop's value is used.
	AQM string
}

// Flow is one declared cross-traffic source.
type Flow struct {
	Name string
	// Kind is "iperf", "dash", or "videocall".
	Kind string
	// CCA is the TCP congestion control for iperf/dash flows.
	CCA string
	// Start/Stop are trace offsets; zero means the timeline default.
	Start, Stop time.Duration
}

// Spec is a parsed scenario file: everything needed to construct
// experiment.RunConfig values with zero Go code.
type Spec struct {
	// Name identifies the scenario (the [run] name key, or the file
	// basename when parsed from a file).
	Name string
	// Seed is the base run seed; Iterations > 1 derives per-iteration
	// seeds the same way sweeps do.
	Seed       uint64
	Iterations int
	// Scale compresses the paper timeline (1.0 = the full 540 s trace).
	Scale float64

	System gamestream.System

	Links []Link
	// Path lists hop names in order; BaseRTT is twice the summed one-way
	// delays, capacity is the minimum hop rate.
	Path []string

	Flows      []Flow
	Impair     netem.Impairment
	Schedule   []experiment.ScheduleStep
	Population experiment.FlowPopulation
}

// ParseFile parses a scenario file from disk, naming it after the file.
func ParseFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sp, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if sp.Name == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		sp.Name = strings.TrimSuffix(base, ".scn")
	}
	return sp, nil
}

// Parse reads a scenario spec. The format is line-oriented:
//
//	# comment (full-line or trailing)
//	[section]            — run, game, path, impair, schedule, population
//	[link <name>]        — one topology hop
//	[flow <name>]        — one cross-traffic source
//	key = value
//
// Sections may appear in any order; links and flows keep file order.
// Unknown sections or keys, duplicate definitions, and out-of-range
// values (NaN rates, negative delays, cyclic paths) are errors — a spec
// either compiles exactly or not at all.
func Parse(r io.Reader) (*Spec, error) {
	sp := &Spec{Iterations: 1, Scale: 1}
	var (
		section  string // current section kind
		secName  string // current link/flow name
		curLink  *Link
		curFlow  *Flow
		seenSec  = map[string]bool{}
		seenKey  = map[string]bool{}
		schedule []string
		lineNo   int
		total    int
	)
	flowDefined := map[string]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 256), maxLineBytes)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		total += len(line) + 1
		if total > maxSpecBytes {
			return nil, fmt.Errorf("line %d: spec exceeds %d bytes", lineNo, maxSpecBytes)
		}
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("line %d: unterminated section header %q", lineNo, line)
			}
			header := strings.TrimSpace(line[1 : len(line)-1])
			kind, name, _ := strings.Cut(header, " ")
			kind = strings.ToLower(strings.TrimSpace(kind))
			name = strings.TrimSpace(name)
			switch kind {
			case "run", "game", "path", "impair", "schedule", "population":
				if name != "" {
					return nil, fmt.Errorf("line %d: section [%s] takes no name", lineNo, kind)
				}
				if seenSec[kind] {
					return nil, fmt.Errorf("line %d: duplicate section [%s]", lineNo, kind)
				}
				seenSec[kind] = true
				curLink, curFlow = nil, nil
			case "link":
				if err := checkName(name); err != nil {
					return nil, fmt.Errorf("line %d: link name: %v", lineNo, err)
				}
				if len(sp.Links) >= maxLinks {
					return nil, fmt.Errorf("line %d: more than %d links", lineNo, maxLinks)
				}
				if sp.linkIndex(name) >= 0 {
					return nil, fmt.Errorf("line %d: duplicate link %q", lineNo, name)
				}
				sp.Links = append(sp.Links, Link{Name: name})
				curLink, curFlow = &sp.Links[len(sp.Links)-1], nil
			case "flow":
				if err := checkName(name); err != nil {
					return nil, fmt.Errorf("line %d: flow name: %v", lineNo, err)
				}
				if len(sp.Flows) >= maxFlows {
					return nil, fmt.Errorf("line %d: more than %d flows", lineNo, maxFlows)
				}
				if flowDefined[name] {
					return nil, fmt.Errorf("line %d: duplicate flow %q", lineNo, name)
				}
				flowDefined[name] = true
				sp.Flows = append(sp.Flows, Flow{Name: name, Kind: "iperf"})
				curFlow, curLink = &sp.Flows[len(sp.Flows)-1], nil
			default:
				return nil, fmt.Errorf("line %d: unknown section [%s]", lineNo, header)
			}
			section, secName = kind, name
			continue
		}

		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: want \"key = value\", got %q", lineNo, line)
		}
		key = strings.ToLower(strings.TrimSpace(key))
		val = strings.TrimSpace(val)
		if section == "" {
			return nil, fmt.Errorf("line %d: %q outside any section", lineNo, key)
		}
		// Schedule steps are the one repeatable key; everything else must
		// be unique within its section.
		if !(section == "schedule" && key == "step") {
			id := section + "\x00" + secName + "\x00" + key
			if seenKey[id] {
				return nil, fmt.Errorf("line %d: duplicate key %q in [%s]", lineNo, key, section)
			}
			seenKey[id] = true
		}

		var err error
		switch section {
		case "run":
			err = sp.setRunKey(key, val)
		case "game":
			err = sp.setGameKey(key, val)
		case "link":
			err = curLink.setKey(key, val)
		case "path":
			err = sp.setPathKey(key, val)
		case "flow":
			err = curFlow.setKey(key, val)
		case "impair":
			err = sp.setImpairKey(key, val)
		case "schedule":
			if key != "step" {
				err = fmt.Errorf("unknown key %q (want step)", key)
			} else if len(schedule) >= maxScheduleBy {
				err = fmt.Errorf("more than %d schedule steps", maxScheduleBy)
			} else {
				schedule = append(schedule, val)
			}
		case "population":
			err = sp.setPopulationKey(key, val)
		}
		if err != nil {
			return nil, fmt.Errorf("line %d: [%s] %s: %v", lineNo, section, key, err)
		}
	}
	if err := sc.Err(); err != nil {
		if err == bufio.ErrTooLong {
			return nil, fmt.Errorf("line %d: line exceeds %d bytes", lineNo+1, maxLineBytes)
		}
		return nil, err
	}

	if len(schedule) > 0 {
		steps, err := experiment.ParseSchedule(strings.Join(schedule, "; "))
		if err != nil {
			return nil, err
		}
		sp.Schedule = steps
	}
	if err := sp.validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// checkName bounds link/flow names to short identifier-like tokens.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("missing")
	}
	if len(name) > 64 {
		return fmt.Errorf("%q longer than 64 bytes", name)
	}
	for _, r := range name {
		if !(r == '-' || r == '_' || r == '.' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')) {
			return fmt.Errorf("%q contains %q (want letters, digits, -_.)", name, r)
		}
	}
	return nil
}

func (sp *Spec) linkIndex(name string) int {
	for i := range sp.Links {
		if sp.Links[i].Name == name {
			return i
		}
	}
	return -1
}

func (sp *Spec) setRunKey(key, val string) error {
	switch key {
	case "name":
		if err := checkName(val); err != nil {
			return err
		}
		sp.Name = val
		return nil
	case "seed":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", val)
		}
		sp.Seed = v
		return nil
	case "iterations":
		v, err := strconv.Atoi(val)
		if err != nil || v < 1 || v > maxIterations {
			return fmt.Errorf("iterations %q outside [1,%d]", val, maxIterations)
		}
		sp.Iterations = v
		return nil
	case "scale":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 100 {
			return fmt.Errorf("scale %q outside (0,100]", val)
		}
		sp.Scale = v
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setGameKey(key, val string) error {
	if key != "system" {
		return fmt.Errorf("unknown key %q (want system)", key)
	}
	for _, sys := range gamestream.Systems {
		if string(sys) == val {
			sp.System = sys
			return nil
		}
	}
	return fmt.Errorf("unknown system %q (want stadia, geforce, or luna)", val)
}

func (l *Link) setKey(key, val string) error {
	switch key {
	case "rate":
		r, err := experiment.ParseRate(val)
		if err != nil {
			return err
		}
		if r <= 0 {
			return fmt.Errorf("rate %q must be positive", val)
		}
		l.Rate = r
		return nil
	case "delay":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 || d > time.Hour {
			return fmt.Errorf("delay %q outside [0,1h]", val)
		}
		l.Delay = d
		return nil
	case "queue":
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.ToLower(val), "xbdp"), 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > 1000 {
			return fmt.Errorf("queue %q outside (0,1000] BDP multiples", val)
		}
		l.QueueMult = v
		return nil
	case "aqm":
		switch val {
		case experiment.AQMDropTail, experiment.AQMCoDel, experiment.AQMFQCoDel:
			l.AQM = val
			return nil
		}
		return fmt.Errorf("unknown aqm %q", val)
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setPathKey(key, val string) error {
	if key != "hops" {
		return fmt.Errorf("unknown key %q (want hops)", key)
	}
	for _, h := range strings.Split(val, ",") {
		h = strings.TrimSpace(h)
		if err := checkName(h); err != nil {
			return fmt.Errorf("hop: %v", err)
		}
		if len(sp.Path) >= maxHops {
			return fmt.Errorf("more than %d hops", maxHops)
		}
		sp.Path = append(sp.Path, h)
	}
	return nil
}

func (f *Flow) setKey(key, val string) error {
	switch key {
	case "kind":
		switch val {
		case experiment.CompIperf, experiment.CompDash, experiment.CompVideoCall:
			f.Kind = val
			return nil
		}
		return fmt.Errorf("unknown kind %q (want iperf, dash, or videocall)", val)
	case "cca":
		if !validCCA(val) {
			return fmt.Errorf("unknown cca %q", val)
		}
		f.CCA = val
		return nil
	case "start", "stop":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 || d > 24*time.Hour {
			return fmt.Errorf("%s %q outside [0,24h]", key, val)
		}
		if key == "start" {
			f.Start = d
		} else {
			f.Stop = d
		}
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}

// validCCA accepts the congestion controllers tcp.New knows, so a bad
// name fails at parse time with an error instead of at run time with a
// panic.
func validCCA(name string) bool {
	switch name {
	case tcp.AlgCubic, tcp.AlgBBR, tcp.AlgBBR2, tcp.AlgReno, tcp.AlgVegas, tcp.AlgLEDBAT:
		return true
	}
	return false
}

func (sp *Spec) setImpairKey(key, val string) error {
	switch key {
	case "loss":
		return experiment.ParseLoss(val, &sp.Impair)
	case "jitter":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 || d > time.Minute {
			return fmt.Errorf("jitter %q outside [0,1m]", val)
		}
		sp.Impair.Jitter = d
		return nil
	case "reorder":
		switch val {
		case "true", "yes", "on":
			sp.Impair.Reorder = true
		case "false", "no", "off":
			sp.Impair.Reorder = false
		default:
			return fmt.Errorf("reorder %q (want true/false)", val)
		}
		return nil
	case "duplicate":
		p, err := experiment.ParseProb(val)
		if err != nil {
			return err
		}
		sp.Impair.Duplicate = p
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}

func (sp *Spec) setPopulationKey(key, val string) error {
	switch key {
	case "flows", "streams":
		v, err := strconv.Atoi(val)
		if err != nil || v < 0 || v > maxPopFlows {
			return fmt.Errorf("%s %q outside [0,%d]", key, val, maxPopFlows)
		}
		if key == "flows" {
			sp.Population.Flows = v
		} else {
			sp.Population.Streams = v
		}
		return nil
	case "mix":
		mix, err := experiment.ParseMix(val)
		if err != nil {
			return err
		}
		sp.Population.Mix = mix
		return nil
	case "mean_on", "mean_off":
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 || d > 24*time.Hour {
			return fmt.Errorf("%s %q outside [0,24h]", key, val)
		}
		if key == "mean_on" {
			sp.Population.MeanOn = d
		} else {
			sp.Population.MeanOff = d
		}
		return nil
	case "shape":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v <= 1 || v > 100 {
			return fmt.Errorf("shape %q outside (1,100]", val)
		}
		sp.Population.Shape = v
		return nil
	}
	return fmt.Errorf("unknown key %q", key)
}

// validate cross-checks the assembled spec: the topology must resolve to
// an acyclic path with a bottleneck, the flows must agree on a contention
// window inside the trace, and the game system must be declared.
func (sp *Spec) validate() error {
	if sp.System == "" {
		return fmt.Errorf("missing [game] system")
	}
	if len(sp.Links) == 0 {
		return fmt.Errorf("no [link] sections: the topology needs at least a bottleneck hop")
	}
	// Resolve the path. A single link needs no [path]; several do, since
	// hop order determines nothing today but the declared topology must
	// still be explicit and acyclic.
	if len(sp.Path) == 0 {
		if len(sp.Links) > 1 {
			return fmt.Errorf("%d links but no [path]: declare hops = <name>,<name>,...", len(sp.Links))
		}
		sp.Path = []string{sp.Links[0].Name}
	}
	seen := map[string]bool{}
	for _, hop := range sp.Path {
		if sp.linkIndex(hop) < 0 {
			return fmt.Errorf("path hop %q is not a declared link", hop)
		}
		if seen[hop] {
			return fmt.Errorf("path visits link %q twice: topology must be acyclic", hop)
		}
		seen[hop] = true
	}
	for i := range sp.Links {
		l := &sp.Links[i]
		if l.Rate <= 0 && seen[l.Name] {
			return fmt.Errorf("link %q has no rate", l.Name)
		}
	}
	// Flow windows must agree: the experiment timeline has one global
	// contention window.
	var start, stop time.Duration
	for i := range sp.Flows {
		f := &sp.Flows[i]
		if f.Kind == experiment.CompVideoCall && f.CCA != "" {
			return fmt.Errorf("flow %q: videocall takes no CCA", f.Name)
		}
		if (f.Kind == experiment.CompIperf || f.Kind == experiment.CompDash) && f.CCA == "" {
			f.CCA = tcp.AlgCubic
		}
		if (f.Start != 0 || f.Stop != 0) && f.Start >= f.Stop {
			return fmt.Errorf("flow %q: start %v not before stop %v", f.Name, f.Start, f.Stop)
		}
		if f.Start != 0 || f.Stop != 0 {
			if start == 0 && stop == 0 {
				start, stop = f.Start, f.Stop
			} else if f.Start != start || f.Stop != stop {
				return fmt.Errorf("flow %q: window %v-%v disagrees with %v-%v (the timeline has one contention window)",
					f.Name, f.Start, f.Stop, start, stop)
			}
		}
	}
	tl := sp.timeline()
	if stop != 0 && stop > tl.TraceEnd {
		return fmt.Errorf("flow window ends at %v, after the %v trace end", stop, tl.TraceEnd)
	}
	for _, st := range sp.Schedule {
		if st.At > tl.TraceEnd {
			return fmt.Errorf("schedule step at %v is after the %v trace end", st.At, tl.TraceEnd)
		}
	}
	return nil
}

// timeline resolves the spec's run timeline: the paper timeline at Scale,
// with the contention window overridden when flows declare one.
func (sp *Spec) timeline() metrics.Timeline {
	tl := metrics.PaperTimeline.Scale(sp.Scale)
	var start, stop time.Duration
	for _, f := range sp.Flows {
		if f.Start != 0 || f.Stop != 0 {
			start, stop = f.Start, f.Stop
			break
		}
	}
	if stop != 0 {
		tl.FlowStart, tl.FlowStop = start, stop
	}
	return tl
}

// BaseRTT is the path's no-load round-trip: twice the summed hop delays.
func (sp *Spec) BaseRTT() time.Duration {
	var owd time.Duration
	for _, hop := range sp.Path {
		owd += sp.Links[sp.linkIndex(hop)].Delay
	}
	return 2 * owd
}

// bottleneck returns the minimum-rate hop (first wins on ties).
func (sp *Spec) bottleneck() *Link {
	var bn *Link
	for _, hop := range sp.Path {
		l := &sp.Links[sp.linkIndex(hop)]
		if bn == nil || l.Rate < bn.Rate {
			bn = l
		}
	}
	return bn
}

// RunConfig compiles the spec into the run configuration for iteration
// iter (0-based): the same mapping for every iteration except the seed,
// which is derived exactly like sweep position seeds so a one-iteration
// spec reproduces the equivalent flag-built run bit for bit.
func (sp *Spec) RunConfig(iter int) experiment.RunConfig {
	bn := sp.bottleneck()
	cond := experiment.Condition{
		System:    sp.System,
		Capacity:  bn.Rate,
		QueueMult: bn.QueueMult,
		AQM:       bn.AQM,
		Impair:    sp.Impair,
	}
	if cond.QueueMult == 0 {
		cond.QueueMult = 2
	}
	cfg := experiment.RunConfig{
		Condition: cond,
		Timeline:  sp.timeline(),
		Seed:      sp.Seed + uint64(iter),
		Schedule:  sp.Schedule,
		BaseRTT:   sp.BaseRTT(),
	}
	// A single iperf flow maps onto the paper's Condition.CCA slot (so
	// the condition string, seeds, and runlog match the flag-built
	// equivalent); anything else becomes an explicit competitor mix.
	if len(sp.Flows) == 1 && sp.Flows[0].Kind == experiment.CompIperf {
		cfg.CCA = sp.Flows[0].CCA
	} else if len(sp.Flows) > 0 {
		comps := make([]experiment.Competitor, len(sp.Flows))
		for i, f := range sp.Flows {
			comps[i] = experiment.Competitor{Kind: f.Kind, CCA: f.CCA}
		}
		cfg.Competitors = comps
	}
	cfg.Population = sp.Population
	return cfg
}
