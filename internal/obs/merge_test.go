package obs

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/runcache"
)

// mergeRec builds a synthetic record whose metric values are a deterministic
// function of (cond, iter) so shard partitions of the same record set always
// carry identical samples.
func mergeRec(cond string, iter int, base float64) *Record {
	v := base + float64(iter)
	return &Record{
		Cond:      cond,
		Iteration: iter,
		Seed:      uint64(iter + 1),
		GameMbps:  v,
		TCPMbps:   v / 2,
		Fairness:  0.5,
		RTTMs:     20 + v,
		FPS:       60 - v/10,
		LossPct:   v / 100,
		Engine:    EngineStats{Events: 1000, WallSeconds: 0.5, Speedup: 100, EventsPerSecond: 2000},
	}
}

// shardSnapshot folds the given records through a fresh Aggregator the way a
// campaign worker does: SweepStart, RunDone per record, SweepDone, Snapshot.
func shardSnapshot(t *testing.T, recs []*Record) *Snapshot {
	t.Helper()
	a := NewAggregator()
	a.SweepStart(len(recs))
	for _, r := range recs {
		a.RunDone(Update{Record: r})
	}
	a.SweepDone(false, 0)
	return a.Snapshot()
}

// roundTrip pushes a snapshot through its on-disk form, canonicalising the
// sketches the way the coordinator sees them when it reads worker files.
func roundTrip(t *testing.T, snap *Snapshot) *Snapshot {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := WriteSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestMergeSnapshotsValidation(t *testing.T) {
	if _, err := MergeSnapshots(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := MergeSnapshots([]*Snapshot{nil}); err == nil {
		t.Error("nil snapshot accepted")
	}
	bad := &Snapshot{Schema: "wrong-schema"}
	if _, err := MergeSnapshots([]*Snapshot{bad}); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestMergeSnapshotsTotalsAndCache(t *testing.T) {
	s1 := shardSnapshot(t, []*Record{mergeRec("a", 0, 10)})
	s2 := shardSnapshot(t, []*Record{mergeRec("b", 0, 20)})
	s1.Total, s1.Done, s1.Cached, s1.ElapsedS = 5, 3, 1, 2.5
	s2.Total, s2.Done, s2.Cached, s2.ElapsedS = 7, 4, 2, 1.5
	s2.Interrupted = true
	s1.Cache = &runcache.Stats{Hits: 1, Misses: 2, Stored: 2}
	s2.Cache = &runcache.Stats{Hits: 10, Misses: 20, Stored: 20}

	m, err := MergeSnapshots([]*Snapshot{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total != 12 || m.Done != 7 || m.Cached != 3 {
		t.Fatalf("totals = %d/%d/%d, want 12/7/3", m.Total, m.Done, m.Cached)
	}
	if math.Abs(m.ElapsedS-4.0) > 1e-12 {
		t.Fatalf("ElapsedS = %g, want 4", m.ElapsedS)
	}
	if !m.Interrupted {
		t.Fatal("Interrupted flag not propagated")
	}
	if m.Cache == nil || m.Cache.Hits != 11 || m.Cache.Misses != 22 || m.Cache.Stored != 22 {
		t.Fatalf("cache sum = %+v", m.Cache)
	}
	if m.Health != nil {
		t.Fatal("merged snapshot must not carry a live health point")
	}
}

func TestMergeSnapshotsCondUnion(t *testing.T) {
	// Shard 1 covers conditions {a, y}; shard 2 covers {y, z}. The merge
	// must union them sorted, and sum y's runs across shards.
	s1 := shardSnapshot(t, []*Record{
		mergeRec("y", 0, 10), mergeRec("a", 0, 1), mergeRec("y", 1, 10),
	})
	s2 := shardSnapshot(t, []*Record{
		mergeRec("z", 0, 30), mergeRec("y", 2, 10),
	})

	m, err := MergeSnapshots([]*Snapshot{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, c := range m.Conditions {
		names = append(names, c.Cond)
	}
	want := []string{"a", "y", "z"}
	if len(names) != 3 || names[0] != "a" || names[1] != "y" || names[2] != "z" {
		t.Fatalf("conditions = %v, want %v", names, want)
	}
	y := m.Conditions[1]
	if y.Runs != 3 {
		t.Fatalf("y.Runs = %d, want 3", y.Runs)
	}
	// Welford merge is exact: game_mbps samples for y are 10, 11, 12.
	gm := y.Metrics["game_mbps"]
	if gm.N() != 3 || math.Abs(gm.Mean()-11) > 1e-12 {
		t.Fatalf("y game_mbps: n=%d mean=%g, want n=3 mean=11", gm.N(), gm.Mean())
	}
	// Campaign-wide sketch spans all five runs.
	if cg := m.Campaign["game_mbps"]; cg.N() != 5 {
		t.Fatalf("campaign game_mbps n = %d, want 5", cg.N())
	}
}

// TestMergeSnapshotsSingleShardIdentity pins the core byte-identity contract
// at its smallest size: merging a single shard snapshot reproduces that
// snapshot's DeterministicJSON exactly, because MergeSnapshots rebuilds the
// campaign section with the same sorted-order merge discipline as
// Aggregator.Snapshot and the canonical (round-tripped) sketch form is a
// fixed point of re-merging.
func TestMergeSnapshotsSingleShardIdentity(t *testing.T) {
	recs := []*Record{
		mergeRec("b", 0, 5), mergeRec("a", 0, 1), mergeRec("a", 1, 1), mergeRec("b", 1, 5),
	}
	snap := roundTrip(t, shardSnapshot(t, recs))
	wantJSON, err := snap.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}

	m, err := MergeSnapshots([]*Snapshot{snap})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := m.DeterministicJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("merge of one shard drifted:\n got %s\nwant %s", gotJSON, wantJSON)
	}
}

// TestMergeSnapshotsDeterministic pins the crash/resume contract at unit
// level: shard snapshots re-created from scratch (as a resumed worker does
// after a SIGKILL) merge to byte-identical DeterministicJSON, and merging is
// stable across repeated invocations and across the on-disk round trip.
func TestMergeSnapshotsDeterministic(t *testing.T) {
	shard0 := []*Record{mergeRec("a", 0, 1), mergeRec("a", 1, 1), mergeRec("c", 0, 9)}
	shard1 := []*Record{mergeRec("b", 0, 4), mergeRec("b", 1, 4)}
	shard2 := []*Record{mergeRec("a", 2, 1), mergeRec("c", 1, 9)}

	build := func() []byte {
		snaps := []*Snapshot{
			roundTrip(t, shardSnapshot(t, shard0)),
			roundTrip(t, shardSnapshot(t, shard1)),
			roundTrip(t, shardSnapshot(t, shard2)),
		}
		m, err := MergeSnapshots(snaps)
		if err != nil {
			t.Fatal(err)
		}
		data, err := m.DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	first := build()
	second := build() // fresh aggregators + fresh round trips, same records
	if !bytes.Equal(first, second) {
		t.Fatal("re-executed shards merged to different deterministic JSON")
	}
	if !bytes.Contains(first, []byte(`"cond":"a"`)) {
		t.Fatalf("merged JSON missing condition: %s", first)
	}
}
