package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/runcache"
	"repro/internal/stats"
)

// aggRecord builds a deterministic record for condition c, iteration i, with
// metrics that vary by (c, i) so sketches have real distributions.
func aggRecord(c string, i int) *Record {
	h := float64((len(c)*131 + i*17) % 97)
	r := sampleRecord(i)
	r.Cond = c
	r.GameMbps = 10 + h/10
	r.TCPMbps = 3 + h/20
	r.RTTMs = 20 + h/5
	r.FPS = 60 - h/30
	r.LossPct = h / 100
	r.Fairness = 0.4 + h/300
	r.Engine.WallSeconds = 1
	r.Engine.Events = 1_000_000
	r.Engine.EventsPerSecond = 1_000_000
	return &r
}

// feed replays a full grid of conds×iters through ag in the given
// completion order (a permutation of indices into the job list).
func feed(ag *Aggregator, conds []string, iters int, order []int) {
	type job struct {
		cond string
		iter int
	}
	jobs := make([]job, 0, len(conds)*iters)
	for _, c := range conds {
		for i := 0; i < iters; i++ {
			jobs = append(jobs, job{c, i})
		}
	}
	ag.SweepStart(len(jobs))
	for n, idx := range order {
		j := jobs[idx]
		ag.RunDone(Update{
			Done: n + 1, Total: len(jobs),
			Cond: j.cond, Iteration: j.iter,
			RunWall: time.Millisecond,
			Record:  aggRecord(j.cond, j.iter),
		})
	}
	ag.SweepDone(false, time.Second)
}

// TestAggregatorDeterministicAcrossOrders is the acceptance property at the
// obs layer: however the scheduler interleaves run completions, the
// deterministic snapshot section serialises byte-identically.
func TestAggregatorDeterministicAcrossOrders(t *testing.T) {
	conds := []string{"stadia/cubic/B25/q2.0x", "luna/bbr/B25/q2.0x", "gfn/cubic/B75/q0.5x"}
	const iters = 40
	n := len(conds) * iters

	inOrder := make([]int, n)
	for i := range inOrder {
		inOrder[i] = i
	}
	var ref []byte
	for trial := 0; trial < 4; trial++ {
		order := append([]int(nil), inOrder...)
		if trial > 0 {
			// Shuffles simulate different worker counts / scheduling.
			rand.New(rand.NewSource(int64(trial))).Shuffle(n, func(i, j int) {
				order[i], order[j] = order[j], order[i]
			})
		}
		ag := NewAggregator()
		feed(ag, conds, iters, order)
		got, err := ag.Snapshot().DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("trial %d: deterministic snapshot differs from in-order reference", trial)
		}
	}

	// Sanity: the snapshot actually carries data.
	var det struct {
		Conditions []struct {
			Cond    string                         `json:"cond"`
			Runs    int                            `json:"runs"`
			Metrics map[string]*stats.MetricSketch `json:"metrics"`
		}
		Campaign map[string]*stats.MetricSketch
	}
	if err := json.Unmarshal(ref, &det); err != nil {
		t.Fatal(err)
	}
	if len(det.Conditions) != len(conds) {
		t.Fatalf("snapshot has %d conditions, want %d", len(det.Conditions), len(conds))
	}
	if got := det.Campaign["game_mbps"].N(); got != int64(n) {
		t.Errorf("campaign game_mbps N = %d, want %d", got, n)
	}
}

// TestAggregatorMatchesDirectFold: sketches through the reorder machinery
// equal a direct in-order fold of the same records, and the campaign merge
// equals folding everything per sorted condition.
func TestAggregatorMatchesDirectFold(t *testing.T) {
	conds := []string{"a/cubic/B25/q2.0x", "b/bbr/B25/q2.0x"}
	const iters = 25
	order := rand.New(rand.NewSource(9)).Perm(len(conds) * iters)
	ag := NewAggregator()
	feed(ag, conds, iters, order)
	snap := ag.Snapshot()

	for ci, c := range conds {
		want := stats.NewMetricSketch(0)
		for i := 0; i < iters; i++ {
			want.Add(aggRecord(c, i).GameMbps)
		}
		got := snap.Conditions[ci].Metrics["game_mbps"]
		if got.N() != want.N() || got.Mean() != want.Mean() || got.Quantile(0.5) != want.Quantile(0.5) {
			t.Errorf("cond %s: aggregated sketch differs from direct fold", c)
		}
	}
	if got, want := snap.Campaign["rtt_ms"].N(), int64(len(conds)*iters); got != want {
		t.Errorf("campaign rtt_ms N = %d, want %d", got, want)
	}
}

// TestAggregatorMidSweepSnapshot: a snapshot taken while records are parked
// in the reorder buffer still includes them, and taking it does not disturb
// the final deterministic state.
func TestAggregatorMidSweepSnapshot(t *testing.T) {
	ag := NewAggregator()
	ag.SweepStart(4)
	c := "x/cubic/B25/q2.0x"
	// Iterations 1 and 3 arrive first and park (0 is missing).
	ag.RunDone(Update{Done: 1, Total: 4, Cond: c, Iteration: 1, Record: aggRecord(c, 1)})
	ag.RunDone(Update{Done: 2, Total: 4, Cond: c, Iteration: 3, Record: aggRecord(c, 3)})
	mid := ag.Snapshot()
	if got := mid.Conditions[0].Metrics["game_mbps"].N(); got != 2 {
		t.Errorf("mid-sweep snapshot N = %d, want 2 (parked records must be visible)", got)
	}
	ag.RunDone(Update{Done: 3, Total: 4, Cond: c, Iteration: 0, Record: aggRecord(c, 0)})
	ag.RunDone(Update{Done: 4, Total: 4, Cond: c, Iteration: 2, Record: aggRecord(c, 2)})
	ag.SweepDone(false, time.Second)

	want := NewAggregator()
	feed(want, []string{c}, 4, []int{0, 1, 2, 3})
	got, _ := ag.Snapshot().DeterministicJSON()
	ref, _ := want.Snapshot().DeterministicJSON()
	if !bytes.Equal(got, ref) {
		t.Error("mid-sweep snapshot perturbed the final deterministic state")
	}
}

// TestAggregatorMultiSweep: chained sweeps (as figures campaigns run) extend
// the totals and restart per-condition iteration numbering cleanly.
func TestAggregatorMultiSweep(t *testing.T) {
	ag := NewAggregator()
	feed(ag, []string{"s1/cubic/B25/q2.0x"}, 3, []int{2, 0, 1})
	feed(ag, []string{"s1/cubic/B25/q2.0x", "s2/bbr/B25/q2.0x"}, 2, []int{1, 3, 0, 2})
	if ag.Total() != 7 || ag.Done() != 7 {
		t.Fatalf("totals = %d/%d, want 7/7", ag.Done(), ag.Total())
	}
	snap := ag.Snapshot()
	if len(snap.Conditions) != 2 {
		t.Fatalf("conditions = %d, want 2", len(snap.Conditions))
	}
	if got := snap.Conditions[0].Runs; got != 5 {
		t.Errorf("s1 runs = %d, want 5 (3 from sweep 1 + 2 from sweep 2)", got)
	}
	if got := snap.Campaign["fps"].N(); got != 7 {
		t.Errorf("campaign fps N = %d, want 7", got)
	}
}

// TestAggregatorFlowsMetrics: population metrics appear only when records
// carry FlowsMeta, with NaN-free counts matching the flow-run subset.
func TestAggregatorFlowsMetrics(t *testing.T) {
	ag := NewAggregator()
	ag.SweepStart(2)
	c := "f/cubic/B25/q2.0x"
	r0 := aggRecord(c, 0)
	r0.Flows = &FlowsMeta{Jain: 0.91, TputP50: 2.5, RTTInflP50: 1.4}
	ag.RunDone(Update{Done: 1, Total: 2, Cond: c, Iteration: 0, Record: r0})
	ag.RunDone(Update{Done: 2, Total: 2, Cond: c, Iteration: 1, Record: aggRecord(c, 1)})
	ag.SweepDone(false, time.Second)
	m := ag.Snapshot().Conditions[0].Metrics
	if m["jain"].N() != 1 || m["jain"].Mean() != 0.91 {
		t.Errorf("jain sketch = %+v, want N=1 mean=0.91", m["jain"].Summary())
	}
	if m["rtt_infl_p50"].N() != 1 {
		t.Errorf("rtt_infl_p50 N = %d, want 1", m["rtt_infl_p50"].N())
	}
	if m["game_mbps"].N() != 2 {
		t.Errorf("game_mbps N = %d, want 2", m["game_mbps"].N())
	}
}

// TestAggregatorHealthTimeline: timeline lines are valid JSONL, include
// cache counters from the injected hook, and the drift warning fires when
// the rolling engine rate sinks >10% below the opening window.
func TestAggregatorHealthTimeline(t *testing.T) {
	var buf bytes.Buffer
	ag := NewAggregator()
	ag.Timeline = &buf
	ag.Every = 0 // default 10s would throttle everything but the final line
	ag.Every = time.Nanosecond
	ag.CacheStats = func() runcache.Stats { return runcache.Stats{Hits: 30, Misses: 10} }

	const n = 3 * healthWindow
	ag.SweepStart(n)
	c := "h/cubic/B25/q2.0x"
	for i := 0; i < n; i++ {
		r := aggRecord(c, i)
		// Opening window runs at 1M events/s; later runs collapse to half
		// that — a 50% deficit that must trip the 10% drift rule.
		r.Engine.WallSeconds = 1
		r.Engine.Events = 1_000_000
		if i >= healthWindow {
			r.Engine.Events = 500_000
		}
		ag.RunDone(Update{Done: i + 1, Total: n, Cond: c, Iteration: i, Record: r})
	}
	ag.SweepDone(false, time.Second)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < n {
		t.Fatalf("timeline has %d lines, want >= %d", len(lines), n)
	}
	var last HealthPoint
	for _, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &last); err != nil {
			t.Fatalf("timeline line is not valid JSON: %v\n%s", err, ln)
		}
	}
	if !last.Final || last.Done != n || last.Total != n {
		t.Errorf("final line = %+v, want final done=%d", last, n)
	}
	if last.CacheHits != 30 || last.CacheLookups != 40 || math.Abs(last.CacheHitPct-75) > 1e-9 {
		t.Errorf("cache fields = %d/%d/%.1f%%, want 30/40/75%%", last.CacheHits, last.CacheLookups, last.CacheHitPct)
	}
	if !last.Drift || last.DriftPct < 10 {
		t.Errorf("drift warning not raised: %+v", last)
	}
	if last.EventsPerSRoll >= last.EventsPerSOpen {
		t.Errorf("rolling %.0f should be below opening %.0f", last.EventsPerSRoll, last.EventsPerSOpen)
	}

	// Steady throughput must NOT warn.
	ag2 := NewAggregator()
	ag2.Timeline = io.Discard
	ag2.SweepStart(n)
	for i := 0; i < n; i++ {
		ag2.RunDone(Update{Done: i + 1, Total: n, Cond: c, Iteration: i, Record: aggRecord(c, i)})
	}
	ag2.SweepDone(false, time.Second)
	if h := ag2.Snapshot().Health; h.Drift {
		t.Errorf("steady campaign raised a drift warning: %+v", h)
	}
}

// TestAggregatorConcurrentHammer drives RunDone from 8 goroutines while a
// 9th polls Snapshot and a 10th scrapes the live HTTP endpoint — the race
// coverage the telemetry path needs (run under -race in CI).
func TestAggregatorConcurrentHammer(t *testing.T) {
	ag := NewAggregator()
	ag.Timeline = io.Discard
	ag.Every = time.Nanosecond
	ag.CacheStats = func() runcache.Stats { return runcache.Stats{Hits: 1, Misses: 1} }

	ts, err := ServeTelemetry("127.0.0.1:0", ag)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	const workers, per = 8, 50
	ag.SweepStart(workers * per)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Snapshot poller.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := ag.Snapshot()
				if s.Done > workers*per {
					t.Error("done overran total")
					return
				}
			}
		}
	}()
	// HTTP scraper.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			path := "/metrics"
			if i%2 == 1 {
				path = "/snapshot"
			}
			resp, err := http.Get("http://" + ts.Addr() + path)
			if err != nil {
				continue
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := fmt.Sprintf("w%d/cubic/B25/q2.0x", w)
			for i := 0; i < per; i++ {
				ag.RunDone(Update{Cond: c, Iteration: i, Record: aggRecord(c, i)})
			}
		}(w)
	}
	// Wait for producers by watching the done counter, then stop the pollers.
	for ag.Done() < workers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	ag.SweepDone(false, time.Second)

	snap := ag.Snapshot()
	if snap.Done != workers*per {
		t.Fatalf("done = %d, want %d", snap.Done, workers*per)
	}
	if got := snap.Campaign["game_mbps"].N(); got != int64(workers*per) {
		t.Errorf("campaign game_mbps N = %d, want %d", got, workers*per)
	}
	for _, c := range snap.Conditions {
		if c.Runs != per {
			t.Errorf("cond %s runs = %d, want %d", c.Cond, c.Runs, per)
		}
	}
}

// TestTelemetryEndpoints checks the content of both endpoints against a
// small deterministic campaign.
func TestTelemetryEndpoints(t *testing.T) {
	ag := NewAggregator()
	ag.CacheStats = func() runcache.Stats { return runcache.Stats{Hits: 5, Misses: 5} }
	feed(ag, []string{"e/cubic/B25/q2.0x"}, 10, []int{3, 1, 4, 0, 5, 9, 2, 6, 8, 7})

	ts, err := ServeTelemetry("127.0.0.1:0", ag)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	get := func(path string) string {
		resp, err := http.Get("http://" + ts.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		return string(body)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"gs_runs_total 10", "gs_runs_done 10", "gs_events_per_sec",
		"gs_cache_hit_pct 50", "gs_metric_mean{metric=\"game_mbps\"}",
		"gs_metric_quantile{metric=\"rtt_ms\",q=\"0.50\"}",
		"gs_cond_runs{cond=\"e/cubic/B25/q2.0x\"} 10",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/snapshot")), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != SnapshotSchema || snap.Done != 10 {
		t.Errorf("snapshot = schema %q done %d", snap.Schema, snap.Done)
	}
	if snap.Campaign["game_mbps"].N() != 10 {
		t.Errorf("snapshot campaign game_mbps N = %d", snap.Campaign["game_mbps"].N())
	}

	index := get("/")
	if !strings.Contains(index, "10/10 runs") {
		t.Errorf("index = %q", index)
	}
}

// TestSnapshotFileRoundTrip: WriteSnapshot/ReadSnapshot preserve sketches,
// and schema mismatches are rejected.
func TestSnapshotFileRoundTrip(t *testing.T) {
	ag := NewAggregator()
	feed(ag, []string{"p/cubic/B25/q2.0x"}, 15, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	snap := ag.Snapshot()

	path := t.TempDir() + "/telemetry.json"
	if err := WriteSnapshot(path, snap); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	orig := snap.Campaign["game_mbps"]
	got := back.Campaign["game_mbps"]
	if got.N() != orig.N() || got.Mean() != orig.Mean() || got.CI95() != orig.CI95() {
		t.Error("round trip lost campaign moments")
	}
	if got.Quantile(0.9) != orig.Quantile(0.9) {
		t.Error("round trip changed quantiles")
	}
	if len(back.Conditions) != 1 || back.Conditions[0].Metrics["rtt_ms"].N() != 15 {
		t.Error("round trip lost condition sketches")
	}

	bad := path + ".bad"
	if err := WriteSnapshot(bad, &Snapshot{Schema: "nope"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSnapshot(bad); err == nil {
		t.Error("schema mismatch not rejected")
	}
}

// TestMultiProgress: the tee forwards every callback to all sinks and
// collapses degenerate cases.
func TestMultiProgress(t *testing.T) {
	if MultiProgress() != nil || MultiProgress(nil, nil) != nil {
		t.Error("empty tee should be nil")
	}
	p := NewPrinter(io.Discard)
	if MultiProgress(nil, p) != Progress(p) {
		t.Error("single-sink tee should unwrap")
	}
	var buf bytes.Buffer
	pr := NewPrinter(&buf)
	pr.Every = 0
	ag := NewAggregator()
	tee := MultiProgress(pr, ag)
	tee.SweepStart(1)
	tee.RunDone(Update{Done: 1, Total: 1, Cond: "m/cubic/B25/q2.0x", Iteration: 0,
		Record: aggRecord("m/cubic/B25/q2.0x", 0)})
	tee.SweepDone(false, time.Second)
	if !strings.Contains(buf.String(), "1/1") {
		t.Error("printer sink missed the update")
	}
	if ag.Done() != 1 || ag.Snapshot().Campaign["fps"].N() != 1 {
		t.Error("aggregator sink missed the update")
	}
}
