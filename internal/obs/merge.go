package obs

import (
	"fmt"
	"sort"

	"repro/internal/runcache"
	"repro/internal/stats"
)

// MergeSnapshots folds an ordered sequence of shard snapshots into one
// campaign snapshot. It is the coordinator half of the sharded-campaign
// telemetry contract: each worker produces a per-shard Snapshot whose
// deterministic section is a pure function of (spec, shard), and the
// coordinator merges them in shard order — per-condition sketches merge in
// input order, then the campaign-wide sketches are rebuilt from the merged
// conditions in sorted-condition order, exactly the way Aggregator.Snapshot
// builds them. Because both the shard snapshots and the merge order are
// independent of how many workers ran (or died and were re-run), the merged
// DeterministicJSON is byte-identical to a single-process campaign of the
// same spec.
//
// Wall-clock sections combine as aggregates: ElapsedS and WallS sum to
// total compute time (not makespan), cache stats add counter-wise, and the
// Health timeline — a live-process concern — is left nil.
func MergeSnapshots(snaps []*Snapshot) (*Snapshot, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("obs: merge: no snapshots")
	}
	out := &Snapshot{
		Schema:   SnapshotSchema,
		Campaign: make(map[string]*stats.MetricSketch),
		Engine:   make(map[string]*stats.MetricSketch),
	}

	merged := make(map[string]*CondSketches)
	var order []string
	var cacheSum runcache.Stats
	haveCache := false
	for i, s := range snaps {
		if s == nil {
			return nil, fmt.Errorf("obs: merge: snapshot %d is nil", i)
		}
		if s.Schema != SnapshotSchema {
			return nil, fmt.Errorf("obs: merge: snapshot %d has schema %q, want %q", i, s.Schema, SnapshotSchema)
		}
		out.Total += s.Total
		out.Done += s.Done
		out.Cached += s.Cached
		out.ElapsedS += s.ElapsedS
		if s.Interrupted {
			out.Interrupted = true
		}
		if s.Cache != nil {
			cacheSum = cacheSum.Add(*s.Cache)
			haveCache = true
		}
		for _, c := range s.Conditions {
			dst, ok := merged[c.Cond]
			if !ok {
				dst = &CondSketches{
					Cond:    c.Cond,
					Metrics: make(map[string]*stats.MetricSketch),
					Engine:  make(map[string]*stats.MetricSketch),
				}
				merged[c.Cond] = dst
				order = append(order, c.Cond)
			}
			dst.Runs += c.Runs
			dst.Cached += c.Cached
			dst.WallS += c.WallS
			mergeSketchGroup(dst.Metrics, c.Metrics)
			mergeSketchGroup(dst.Engine, c.Engine)
		}
	}
	if haveCache {
		out.Cache = &cacheSum
	}

	// Conditions sort by name in the output, and the campaign-wide sketches
	// are rebuilt by merging the per-condition sketches in that same sorted
	// order — the Aggregator.Snapshot discipline.
	sort.Strings(order)
	for _, name := range order {
		c := merged[name]
		out.Conditions = append(out.Conditions, *c)
		mergeSketchGroup(out.Campaign, c.Metrics)
		mergeSketchGroup(out.Engine, c.Engine)
	}
	return out, nil
}

// mergeSketchGroup folds src's sketches into dst in sorted-key order.
func mergeSketchGroup(dst, src map[string]*stats.MetricSketch) {
	keys := make([]string, 0, len(src))
	for k := range src {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ms, ok := dst[k]
		if !ok {
			ms = stats.NewMetricSketch(0)
			dst[k] = ms
		}
		ms.Merge(src[k])
	}
}
