package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONL is a RunLog that appends one JSON object per line to a writer. It
// serialises concurrent Log calls with a mutex, so a single JSONL can be
// shared by all of a sweep's workers. Wrap files in a bufio.Writer and
// flush after the sweep if write volume matters; a full paper campaign is
// 810 lines, so it rarely does.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	n   int
}

// NewJSONL returns a JSONL writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Log appends one record as a single JSON line.
func (l *JSONL) Log(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.enc.Encode(r); err != nil {
		return fmt.Errorf("obs: jsonl: %w", err)
	}
	l.n++
	return nil
}

// Count reports how many records have been written.
func (l *JSONL) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.n
}

// ReadJSONL parses a run log previously written by JSONL. Blank lines are
// skipped, so logs survive manual editing and concatenation.
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return out, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return out, fmt.Errorf("obs: jsonl: %w", err)
	}
	return out, nil
}
