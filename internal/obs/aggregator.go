package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/runcache"
	"repro/internal/stats"
)

// SnapshotSchema tags serialised telemetry snapshots so gsreport can reject
// files from an incompatible revision.
const SnapshotSchema = "gs-telemetry-v1"

// PaperMetrics lists the deterministic per-run metrics the Aggregator
// sketches, in canonical order. These are pure functions of (config, seed) —
// the same discipline the run cache relies on — so their sketches are
// byte-comparable across worker counts and across cached/live replays.
var PaperMetrics = []string{
	"game_mbps", "tcp_mbps", "fairness", "rtt_ms", "fps", "loss_pct",
	"jain", "tput_p50_mbps", "rtt_infl_p50",
}

// EngineMetrics lists the wall-clock execution metrics sketched alongside.
// They depend on host load and scheduling, so they live in a separate
// snapshot section that byte-identity checks must exclude.
var EngineMetrics = []string{"events_per_s", "speedup", "wall_s"}

// paperSamples extracts the deterministic metric vector from a record. The
// jain / tput_p50_mbps / rtt_infl_p50 entries are only defined for N-flow
// population runs; NaN-skipping sketches ignore the rest.
func paperSamples(r *Record, f func(name string, v float64)) {
	f("game_mbps", r.GameMbps)
	f("tcp_mbps", r.TCPMbps)
	f("fairness", r.Fairness)
	f("rtt_ms", r.RTTMs)
	f("fps", r.FPS)
	f("loss_pct", r.LossPct)
	if r.Flows != nil {
		f("jain", r.Flows.Jain)
		f("tput_p50_mbps", r.Flows.TputP50)
		if r.Flows.RTTInflP50 > 0 {
			f("rtt_infl_p50", r.Flows.RTTInflP50)
		}
	}
}

func engineSamples(r *Record, f func(name string, v float64)) {
	f("events_per_s", r.Engine.EventsPerSecond)
	f("speedup", r.Engine.Speedup)
	f("wall_s", r.Engine.WallSeconds)
}

// condAgg is the per-condition state: one MetricSketch per metric plus the
// reorder buffer that makes the fold order deterministic. Workers finish
// runs in scheduler order, but every run carries its grid iteration index;
// folding strictly in iteration order per condition makes each condition
// sketch — and therefore the whole snapshot — independent of worker count.
type condAgg struct {
	runs    int
	cached  int
	wall    time.Duration
	metrics map[string]*stats.MetricSketch
	engine  map[string]*stats.MetricSketch

	// next is the iteration the fold is waiting for; records arriving early
	// park in pending until the gap fills. Out-of-orderness is bounded by
	// the worker count, so pending stays tiny.
	next    int
	pending map[int][]*Record
}

// HealthPoint is one line of the JSONL health timeline: campaign progress,
// cache effectiveness, and engine throughput drift, stamped with wall time
// since the campaign started.
type HealthPoint struct {
	TimeS    float64 `json:"t_s"`
	Done     int     `json:"done"`
	Total    int     `json:"total"`
	Pct      float64 `json:"pct"`
	ETAS     float64 `json:"eta_s"`
	RunsPerS float64 `json:"runs_per_s"`
	// Cache counters come from the injected CacheStats hook (zero when the
	// campaign runs uncached).
	CacheHits    uint64  `json:"cache_hits"`
	CacheLookups uint64  `json:"cache_lookups"`
	CacheHitPct  float64 `json:"cache_hit_pct"`
	// EventsPerSOpen is the engine dispatch rate over the campaign's opening
	// window, EventsPerSRoll over the most recent window. A rolling rate
	// more than DriftFrac below the opening rate raises Drift — the early
	// warning that the host is thermal-throttling, swapping, or being
	// crowded by other tenants mid-campaign.
	EventsPerSOpen float64 `json:"events_per_s_open,omitempty"`
	EventsPerSRoll float64 `json:"events_per_s_roll,omitempty"`
	DriftPct       float64 `json:"drift_pct,omitempty"`
	Drift          bool    `json:"drift_warning,omitempty"`
	Final          bool    `json:"final,omitempty"`
}

// CondSketches is one condition's slice of a Snapshot: deterministic paper
// metrics and wall-clock engine metrics, kept in separate groups so byte
// comparisons can target the former.
type CondSketches struct {
	Cond    string                         `json:"cond"`
	Runs    int                            `json:"runs"`
	Cached  int                            `json:"cached,omitempty"`
	WallS   float64                        `json:"wall_s"`
	Metrics map[string]*stats.MetricSketch `json:"metrics"`
	Engine  map[string]*stats.MetricSketch `json:"engine,omitempty"`
}

// Snapshot is the Aggregator's full exported state: per-condition sketches
// (sorted by condition), campaign-wide sketches (per-condition sketches
// merged in sorted order), and the wall-clock health section. The Conditions
// and Campaign fields are deterministic for a completed campaign — byte-
// identical across worker counts; Engine groups, Health and Cache are not.
type Snapshot struct {
	Schema      string  `json:"schema"`
	Total       int     `json:"total"`
	Done        int     `json:"done"`
	Cached      int     `json:"cached"`
	Interrupted bool    `json:"interrupted,omitempty"`
	ElapsedS    float64 `json:"elapsed_s"`

	Conditions []CondSketches                 `json:"conditions"`
	Campaign   map[string]*stats.MetricSketch `json:"campaign"`
	Engine     map[string]*stats.MetricSketch `json:"engine,omitempty"`

	Health *HealthPoint    `json:"health,omitempty"`
	Cache  *runcache.Stats `json:"cache,omitempty"`
}

// DeterministicJSON serialises only the worker-count-independent part of the
// snapshot: per-condition paper-metric sketches plus the campaign merge.
// Two completed runs of the same campaign grid marshal byte-identically
// here regardless of parallelism; wall-clock sections are excluded.
func (s *Snapshot) DeterministicJSON() ([]byte, error) {
	type detCond struct {
		Cond    string                         `json:"cond"`
		Runs    int                            `json:"runs"`
		Metrics map[string]*stats.MetricSketch `json:"metrics"`
	}
	det := struct {
		Schema     string                         `json:"schema"`
		Total      int                            `json:"total"`
		Done       int                            `json:"done"`
		Conditions []detCond                      `json:"conditions"`
		Campaign   map[string]*stats.MetricSketch `json:"campaign"`
	}{Schema: s.Schema, Total: s.Total, Done: s.Done, Campaign: s.Campaign}
	for _, c := range s.Conditions {
		det.Conditions = append(det.Conditions, detCond{Cond: c.Cond, Runs: c.Runs, Metrics: c.Metrics})
	}
	return json.Marshal(det)
}

// healthWindow is the default run count for the opening/rolling engine
// throughput comparison.
const healthWindow = 32

// Aggregator is a Progress sink that folds every finished run's metrics into
// per-condition and campaign-wide MetricSketches — O(conditions) memory, no
// per-run records retained — and optionally emits a JSONL health timeline.
// It is goroutine-safe: sweeps call RunDone from worker goroutines.
//
// Determinism: each condition folds its runs strictly in iteration order via
// a reorder buffer, and the campaign-wide sketches are built at snapshot
// time by merging condition sketches in sorted-condition order, so the
// deterministic snapshot section is byte-identical however many workers the
// sweep used. Configure the exported knobs before the first sweep starts.
type Aggregator struct {
	// Compression is the t-digest δ for every sketch (0 = stats default).
	Compression float64
	// Timeline, when non-nil, receives JSONL HealthPoint lines. Every
	// throttles them (default 10s); a final line is always written at
	// SweepDone. Timeline writes are serialised under the Aggregator lock.
	Timeline io.Writer
	Every    time.Duration
	// CacheStats, when non-nil, is polled for run-cache counters to include
	// in timeline lines and snapshots.
	CacheStats func() runcache.Stats
	// DriftFrac is the rolling-vs-opening events/sec deficit that raises a
	// drift warning (default 0.10 — the ">10% below opening" rule).
	DriftFrac float64

	mu          sync.Mutex
	total       int
	done        int
	cached      int
	interrupted bool
	start       time.Time
	elapsed     time.Duration
	lastEmit    time.Time
	conds       map[string]*condAgg

	// Engine-health ring: events/wall sums over the opening window and a
	// rolling window of the most recent completions (completion order —
	// health is a wall-clock concern, not a deterministic one).
	openEvents, openWall float64
	openN                int
	ring                 []runPerf
	ringHead             int
	rollEvents, rollWall float64
}

type runPerf struct{ events, wall float64 }

// NewAggregator returns an Aggregator with default settings.
func NewAggregator() *Aggregator {
	return &Aggregator{conds: make(map[string]*condAgg)}
}

func (a *Aggregator) cond(name string) *condAgg {
	c, ok := a.conds[name]
	if !ok {
		c = &condAgg{
			metrics: make(map[string]*stats.MetricSketch, len(PaperMetrics)),
			engine:  make(map[string]*stats.MetricSketch, len(EngineMetrics)),
			pending: make(map[int][]*Record),
		}
		a.conds[name] = c
	}
	return c
}

// SweepStart accumulates the new sweep's run count into the campaign total.
// A campaign may chain several sweeps (contended + solo + baseline); each
// sweep restarts iteration numbering, so every condition's reorder cursor
// rewinds after flushing anything a cancelled predecessor left parked.
func (a *Aggregator) SweepStart(total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.total += total
	if a.start.IsZero() {
		a.start = time.Now()
	}
	for _, c := range a.conds {
		c.flushPending(a.Compression)
		c.next = 0
	}
}

// RunDone folds one finished run into the sketches. Safe for concurrent use.
func (a *Aggregator) RunDone(u Update) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done++
	a.elapsed = time.Since(a.start)
	if r := u.Record; r != nil {
		c := a.cond(r.Cond)
		c.runs++
		c.wall += u.RunWall
		if r.Cached {
			c.cached++
			a.cached++
		}
		a.observePerf(r)
		switch {
		case r.Iteration == c.next:
			c.fold(r, a.Compression)
			c.next++
			for {
				parked, ok := c.pending[c.next]
				if !ok {
					break
				}
				delete(c.pending, c.next)
				for _, p := range parked {
					c.fold(p, a.Compression)
				}
				c.next++
			}
		case r.Iteration < c.next:
			// Can't happen for a well-formed sweep; fold rather than drop.
			c.fold(r, a.Compression)
		default:
			c.pending[r.Iteration] = append(c.pending[r.Iteration], r)
		}
	}
	a.maybeEmitLocked(u, false)
}

// SweepDone flushes every reorder buffer (a cancelled sweep leaves gaps; the
// leftovers fold in ascending-iteration order so the final state is still a
// deterministic function of the completed-run set) and emits a final
// timeline line.
func (a *Aggregator) SweepDone(interrupted bool, elapsed time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if interrupted {
		a.interrupted = true
	}
	a.elapsed = time.Since(a.start)
	for _, c := range a.conds {
		c.flushPending(a.Compression)
	}
	a.maybeEmitLocked(Update{}, true)
}

// fold adds one record's samples to the condition sketches.
func (c *condAgg) fold(r *Record, compression float64) {
	add := func(group map[string]*stats.MetricSketch) func(string, float64) {
		return func(name string, v float64) {
			ms, ok := group[name]
			if !ok {
				ms = stats.NewMetricSketch(compression)
				group[name] = ms
			}
			ms.Add(v)
		}
	}
	paperSamples(r, add(c.metrics))
	engineSamples(r, add(c.engine))
}

// flushPending folds parked records in ascending iteration order.
func (c *condAgg) flushPending(compression float64) {
	if len(c.pending) == 0 {
		return
	}
	iters := make([]int, 0, len(c.pending))
	for it := range c.pending {
		iters = append(iters, it)
	}
	sort.Ints(iters)
	for _, it := range iters {
		for _, r := range c.pending[it] {
			c.fold(r, compression)
		}
		delete(c.pending, it)
	}
}

// observePerf feeds the engine-throughput drift detector. Cached runs are
// excluded: their stored counters describe the original execution, not this
// host right now.
func (a *Aggregator) observePerf(r *Record) {
	if r.Cached || r.Engine.WallSeconds <= 0 {
		return
	}
	p := runPerf{events: float64(r.Engine.Events), wall: r.Engine.WallSeconds}
	if a.openN < healthWindow {
		a.openEvents += p.events
		a.openWall += p.wall
		a.openN++
	}
	if len(a.ring) < healthWindow {
		a.ring = append(a.ring, p)
	} else {
		old := a.ring[a.ringHead]
		a.rollEvents -= old.events
		a.rollWall -= old.wall
		a.ring[a.ringHead] = p
		a.ringHead = (a.ringHead + 1) % healthWindow
	}
	a.rollEvents += p.events
	a.rollWall += p.wall
}

// healthLocked assembles the current HealthPoint. Caller holds a.mu.
func (a *Aggregator) healthLocked(final bool) HealthPoint {
	h := HealthPoint{
		TimeS: a.elapsed.Seconds(),
		Done:  a.done,
		Total: a.total,
		Final: final,
	}
	if a.total > 0 {
		h.Pct = 100 * float64(a.done) / float64(a.total)
	}
	if el := a.elapsed.Seconds(); el > 0 && a.done > 0 {
		h.RunsPerS = float64(a.done) / el
		h.ETAS = float64(a.total-a.done) / h.RunsPerS
	}
	if a.CacheStats != nil {
		cs := a.CacheStats()
		h.CacheHits = cs.Hits
		h.CacheLookups = cs.Lookups()
		h.CacheHitPct = cs.HitRate()
	}
	if a.openWall > 0 {
		h.EventsPerSOpen = a.openEvents / a.openWall
	}
	if a.rollWall > 0 {
		h.EventsPerSRoll = a.rollEvents / a.rollWall
	}
	// Only flag drift once both windows are fully populated — comparing a
	// half-filled opening window against itself would always read clean,
	// and a two-run rolling window is noise.
	driftFrac := a.DriftFrac
	if driftFrac <= 0 {
		driftFrac = 0.10
	}
	if a.openN == healthWindow && len(a.ring) == healthWindow && h.EventsPerSOpen > 0 {
		deficit := 1 - h.EventsPerSRoll/h.EventsPerSOpen
		if deficit > 0 {
			h.DriftPct = 100 * deficit
		}
		h.Drift = deficit > driftFrac
	}
	return h
}

// maybeEmitLocked writes a timeline line if due. Caller holds a.mu.
func (a *Aggregator) maybeEmitLocked(u Update, final bool) {
	if a.Timeline == nil {
		return
	}
	every := a.Every
	if every <= 0 {
		every = 10 * time.Second
	}
	now := time.Now()
	if !final && !a.lastEmit.IsZero() && now.Sub(a.lastEmit) < every {
		return
	}
	a.lastEmit = now
	h := a.healthLocked(final)
	if data, err := json.Marshal(h); err == nil {
		fmt.Fprintf(a.Timeline, "%s\n", data)
	}
}

// Done and Total report campaign progress.
func (a *Aggregator) Done() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.done
}

// Total reports the accumulated campaign size across sweeps.
func (a *Aggregator) Total() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// Snapshot exports the current state. The per-condition sketches are cloned
// (with any still-parked records folded into the clones in iteration order,
// so a mid-sweep snapshot misses nothing), and campaign-wide sketches are
// built by merging condition sketches in sorted-condition order.
func (a *Aggregator) Snapshot() *Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()

	snap := &Snapshot{
		Schema:      SnapshotSchema,
		Total:       a.total,
		Done:        a.done,
		Cached:      a.cached,
		Interrupted: a.interrupted,
		ElapsedS:    a.elapsed.Seconds(),
		Campaign:    make(map[string]*stats.MetricSketch),
		Engine:      make(map[string]*stats.MetricSketch),
	}

	names := make([]string, 0, len(a.conds))
	for name := range a.conds {
		names = append(names, name)
	}
	sort.Strings(names)

	cloneGroup := func(g map[string]*stats.MetricSketch) map[string]*stats.MetricSketch {
		out := make(map[string]*stats.MetricSketch, len(g))
		for k, v := range g {
			out[k] = v.Clone()
		}
		return out
	}

	for _, name := range names {
		c := a.conds[name]
		cs := CondSketches{
			Cond:    name,
			Runs:    c.runs,
			Cached:  c.cached,
			WallS:   c.wall.Seconds(),
			Metrics: cloneGroup(c.metrics),
			Engine:  cloneGroup(c.engine),
		}
		if len(c.pending) > 0 {
			// Fold parked records into the clones only — the live reorder
			// buffer keeps waiting for its gap.
			tmp := condAgg{metrics: cs.Metrics, engine: cs.Engine}
			iters := make([]int, 0, len(c.pending))
			for it := range c.pending {
				iters = append(iters, it)
			}
			sort.Ints(iters)
			for _, it := range iters {
				for _, r := range c.pending[it] {
					tmp.fold(r, a.Compression)
				}
			}
		}
		snap.Conditions = append(snap.Conditions, cs)

		mergeInto := func(dst map[string]*stats.MetricSketch, src map[string]*stats.MetricSketch) {
			ks := make([]string, 0, len(src))
			for k := range src {
				ks = append(ks, k)
			}
			sort.Strings(ks)
			for _, k := range ks {
				ms, ok := dst[k]
				if !ok {
					ms = stats.NewMetricSketch(a.Compression)
					dst[k] = ms
				}
				ms.Merge(src[k])
			}
		}
		mergeInto(snap.Campaign, cs.Metrics)
		mergeInto(snap.Engine, cs.Engine)
	}

	h := a.healthLocked(a.done == a.total && a.total > 0)
	snap.Health = &h
	if a.CacheStats != nil {
		cs := a.CacheStats()
		snap.Cache = &cs
	}
	return snap
}

// WriteSnapshot persists a snapshot as indented JSON at path.
func WriteSnapshot(path string, snap *Snapshot) error {
	data, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadSnapshot loads a snapshot written by WriteSnapshot.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: read snapshot: %w", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("obs: decode snapshot %s: %w", path, err)
	}
	if snap.Schema != SnapshotSchema {
		return nil, fmt.Errorf("obs: snapshot %s has schema %q, want %q", path, snap.Schema, SnapshotSchema)
	}
	return &snap, nil
}
