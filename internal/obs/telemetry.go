package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// promQuantiles are the quantile labels exported per campaign metric.
var promQuantiles = []float64{0.10, 0.50, 0.90}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): campaign progress gauges, cache counters, engine
// throughput with the drift signal, campaign-wide metric means/quantiles,
// and per-condition run counts and means.
func WritePrometheus(w io.Writer, snap *Snapshot) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("gs_runs_total", "Planned runs across the campaign's sweeps.", float64(snap.Total))
	gauge("gs_runs_done", "Completed runs so far.", float64(snap.Done))
	gauge("gs_runs_cached", "Completed runs served from the run cache.", float64(snap.Cached))
	gauge("gs_conditions", "Distinct conditions touched so far.", float64(len(snap.Conditions)))
	gauge("gs_elapsed_seconds", "Wall time since the campaign started.", snap.ElapsedS)
	interrupted := 0.0
	if snap.Interrupted {
		interrupted = 1
	}
	gauge("gs_sweep_interrupted", "1 when a sweep was cancelled before finishing.", interrupted)

	if h := snap.Health; h != nil {
		gauge("gs_eta_seconds", "Projected remaining wall time.", h.ETAS)
		gauge("gs_runs_per_sec", "Campaign run completion rate.", h.RunsPerS)
		gauge("gs_events_per_sec", "Engine dispatch rate over the rolling window.", h.EventsPerSRoll)
		gauge("gs_events_per_sec_opening", "Engine dispatch rate over the opening window.", h.EventsPerSOpen)
		drift := 0.0
		if h.Drift {
			drift = 1
		}
		gauge("gs_events_drift_warning", "1 when the rolling dispatch rate fell >10% below the opening window.", drift)
	}
	if c := snap.Cache; c != nil {
		gauge("gs_cache_hits", "Run-cache hits.", float64(c.Hits))
		gauge("gs_cache_misses", "Run-cache misses.", float64(c.Misses))
		gauge("gs_cache_stored", "Run-cache entries stored.", float64(c.Stored))
		gauge("gs_cache_hit_pct", "Run-cache hit rate in percent.", c.HitRate())
	}

	// Campaign-wide metric sketches: mean, CI half-width, and quantiles.
	names := make([]string, 0, len(snap.Campaign))
	for name := range snap.Campaign {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "# HELP gs_metric_mean Campaign-wide mean per paper metric.\n# TYPE gs_metric_mean gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "gs_metric_mean{metric=%q} %g\n", name, snap.Campaign[name].Mean())
	}
	fmt.Fprintf(w, "# HELP gs_metric_ci95 95%% confidence half-width on the campaign mean.\n# TYPE gs_metric_ci95 gauge\n")
	for _, name := range names {
		fmt.Fprintf(w, "gs_metric_ci95{metric=%q} %g\n", name, snap.Campaign[name].CI95())
	}
	fmt.Fprintf(w, "# HELP gs_metric_quantile Campaign-wide t-digest quantile per paper metric.\n# TYPE gs_metric_quantile gauge\n")
	for _, name := range names {
		ms := snap.Campaign[name]
		for _, q := range promQuantiles {
			fmt.Fprintf(w, "gs_metric_quantile{metric=%q,q=%q} %g\n", name, fmt.Sprintf("%.2f", q), ms.Quantile(q))
		}
	}

	fmt.Fprintf(w, "# HELP gs_cond_runs Completed runs per condition.\n# TYPE gs_cond_runs gauge\n")
	for _, c := range snap.Conditions {
		fmt.Fprintf(w, "gs_cond_runs{cond=%q} %d\n", c.Cond, c.Runs)
	}
	fmt.Fprintf(w, "# HELP gs_cond_metric_mean Per-condition mean per paper metric.\n# TYPE gs_cond_metric_mean gauge\n")
	for _, c := range snap.Conditions {
		ns := make([]string, 0, len(c.Metrics))
		for name := range c.Metrics {
			ns = append(ns, name)
		}
		sort.Strings(ns)
		for _, name := range ns {
			fmt.Fprintf(w, "gs_cond_metric_mean{cond=%q,metric=%q} %g\n", c.Cond, name, c.Metrics[name].Mean())
		}
	}
}

// TelemetryServer serves an Aggregator's live state over HTTP:
//
//	/metrics   Prometheus text exposition format
//	/snapshot  full JSON Snapshot
//	/          plain-text index
//
// Close it when the campaign ends; the final state can still be persisted
// with WriteSnapshot.
type TelemetryServer struct {
	ag  *Aggregator
	ln  net.Listener
	srv *http.Server
}

// ServeTelemetry binds addr (e.g. ":9300" or "127.0.0.1:0") and serves the
// aggregator's state until Close. It returns once the listener is bound, so
// a caller that starts it before the sweep can be scraped immediately.
func ServeTelemetry(addr string, ag *Aggregator) (*TelemetryServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: telemetry listen %s: %w", addr, err)
	}
	ts := &TelemetryServer{ag: ag, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ts.handleMetrics)
	mux.HandleFunc("/snapshot", ts.handleSnapshot)
	mux.HandleFunc("/", ts.handleIndex)
	ts.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go ts.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return ts, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *TelemetryServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *TelemetryServer) Close() error { return s.srv.Close() }

func (s *TelemetryServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WritePrometheus(w, s.ag.Snapshot())
}

func (s *TelemetryServer) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(s.ag.Snapshot()) //nolint:errcheck // best-effort over HTTP
}

func (s *TelemetryServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	snap := s.ag.Snapshot()
	fmt.Fprintf(&b, "gs telemetry: %d/%d runs", snap.Done, snap.Total)
	if h := snap.Health; h != nil && h.ETAS > 0 {
		fmt.Fprintf(&b, " (eta %.0fs)", h.ETAS)
	}
	b.WriteString("\n\nendpoints:\n  /metrics   Prometheus text format\n  /snapshot  JSON snapshot\n")
	io.WriteString(w, b.String()) //nolint:errcheck
}
