package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Update describes the state of a sweep just after one run completed.
type Update struct {
	// Done and Total count completed runs against the campaign size.
	Done, Total int
	// Cond is the finished run's condition string; Seed and Iteration
	// identify the run within its cell.
	Cond      string
	Seed      uint64
	Iteration int
	// RunWall is the wall-clock time the finished run took.
	RunWall time.Duration
	// Elapsed is wall-clock time since the sweep started.
	Elapsed time.Duration
	// ETA is the projected remaining wall time, extrapolated from the
	// mean per-run cost so far. Zero when Done == Total.
	ETA time.Duration
	// Record, when non-nil, is the finished run's structured record — the
	// same one a RunLog sink receives. Sinks that aggregate run metrics
	// (e.g. Aggregator) read it; plain progress printers ignore it.
	Record *Record
}

// Progress is the sink a sweep reports to while it executes. SweepStart is
// called once before any run, RunDone after every completed run (from
// worker goroutines — implementations must be goroutine-safe), and
// SweepDone exactly once when the sweep returns, with interrupted true if
// the sweep was cancelled before finishing.
type Progress interface {
	SweepStart(total int)
	RunDone(Update)
	SweepDone(interrupted bool, elapsed time.Duration)
}

// Printer is a Progress that renders throttled single-line updates to a
// writer (typically os.Stderr) and accumulates per-condition wall time.
// The zero value is not usable; create one with NewPrinter.
type Printer struct {
	// Every is the minimum interval between printed lines; updates
	// arriving sooner are folded into the counters silently. NewPrinter
	// sets 1 second.
	Every time.Duration
	// Verbose makes SweepDone print the full per-condition wall-time
	// breakdown instead of only the three slowest conditions.
	Verbose bool

	w        io.Writer
	mu       sync.Mutex
	total    int
	last     time.Time
	condWall map[string]time.Duration
}

// NewPrinter returns a Printer writing to w at most once per second.
func NewPrinter(w io.Writer) *Printer {
	return &Printer{w: w, Every: time.Second, condWall: make(map[string]time.Duration)}
}

// SweepStart announces the campaign size.
func (p *Printer) SweepStart(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
	p.last = time.Now()
	fmt.Fprintf(p.w, "sweep: starting %d runs\n", total)
}

// RunDone folds one run into the counters and prints a progress line if
// enough wall time has passed since the last one (or the sweep finished).
func (p *Printer) RunDone(u Update) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.condWall[u.Cond] += u.RunWall
	now := time.Now()
	if u.Done < u.Total && now.Sub(p.last) < p.Every {
		return
	}
	p.last = now
	fmt.Fprintf(p.w, "sweep: %d/%d (%.1f%%) %s elapsed %s eta %s\n",
		u.Done, u.Total, 100*float64(u.Done)/float64(u.Total),
		u.Cond, round(u.Elapsed), round(u.ETA))
}

// SweepDone prints the closing summary and the per-condition wall-time
// breakdown (the slowest three conditions, or all of them when Verbose).
func (p *Printer) SweepDone(interrupted bool, elapsed time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	state := "done"
	if interrupted {
		state = "interrupted"
	}
	fmt.Fprintf(p.w, "sweep: %s after %s (%d conditions touched)\n", state, round(elapsed), len(p.condWall))

	type cw struct {
		cond string
		wall time.Duration
	}
	var byWall []cw
	for c, w := range p.condWall {
		byWall = append(byWall, cw{c, w})
	}
	sort.Slice(byWall, func(i, j int) bool { return byWall[i].wall > byWall[j].wall })
	n := 3
	if p.Verbose || len(byWall) < n {
		n = len(byWall)
	}
	for _, e := range byWall[:n] {
		fmt.Fprintf(p.w, "sweep:   %-28s %s\n", e.cond, round(e.wall))
	}
}

// CondWall returns a copy of the accumulated per-condition wall times.
func (p *Printer) CondWall() map[string]time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]time.Duration, len(p.condWall))
	for c, w := range p.condWall {
		out[c] = w
	}
	return out
}

// multiProgress fans every Progress callback out to several sinks, in order.
type multiProgress []Progress

func (m multiProgress) SweepStart(total int) {
	for _, p := range m {
		p.SweepStart(total)
	}
}

func (m multiProgress) RunDone(u Update) {
	for _, p := range m {
		p.RunDone(u)
	}
}

func (m multiProgress) SweepDone(interrupted bool, elapsed time.Duration) {
	for _, p := range m {
		p.SweepDone(interrupted, elapsed)
	}
}

// MultiProgress tees sweep progress to every non-nil sink — e.g. a Printer
// for the terminal plus an Aggregator for telemetry. Nil sinks are dropped;
// with zero or one survivor it returns nil or the survivor unwrapped.
func MultiProgress(sinks ...Progress) Progress {
	var live multiProgress
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// round trims durations to a display-friendly resolution.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
