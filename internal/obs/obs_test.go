package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleRecord(i int) Record {
	return Record{
		Cond: "stadia/cubic/B25/q2.0x", System: "stadia", CCA: "cubic",
		CapacityMbps: 25, QueueMult: 2, AQM: "droptail",
		Seed: uint64(100 + i), Iteration: i,
		Engine:   EngineStats{Events: 1000, Scheduled: 1010, PeakPending: 40, SimSeconds: 540, WallSeconds: 2, Speedup: 270},
		GameMbps: 18.5, TCPMbps: 5.1, Fairness: 0.53, RTTMs: 21.0, FPS: 59.2, LossPct: 0.4,
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	for i := 0; i < 3; i++ {
		if err := l.Log(sampleRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Count() != 3 {
		t.Errorf("Count = %d, want 3", l.Count())
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Errorf("output has %d lines, want 3", got)
	}
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, r := range recs {
		if r != sampleRecord(i) {
			t.Errorf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, r, sampleRecord(i))
		}
	}
}

func TestJSONLConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONL(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = l.Log(sampleRecord(w*50 + i))
			}
		}(w)
	}
	wg.Wait()
	recs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("interleaved writes corrupted the log: %v", err)
	}
	if len(recs) != 400 || l.Count() != 400 {
		t.Errorf("records = %d, Count = %d, want 400", len(recs), l.Count())
	}
}

func TestReadJSONLSkipsBlankAndRejectsGarbage(t *testing.T) {
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank log: recs=%d err=%v", len(recs), err)
	}
	if _, err := ReadJSONL(strings.NewReader("{\"cond\":\"x\"}\nnot json\n")); err == nil {
		t.Error("garbage line did not error")
	}
}

func TestPrinterLifecycle(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf)
	p.Every = 0 // print every update
	p.SweepStart(4)
	for i := 1; i <= 4; i++ {
		p.RunDone(Update{
			Done: i, Total: 4, Cond: "luna/bbr/B25/q7.0x",
			RunWall: 100 * time.Millisecond, Elapsed: time.Duration(i) * time.Second,
			ETA: time.Duration(4-i) * time.Second,
		})
	}
	p.SweepDone(false, 4*time.Second)
	out := buf.String()
	for _, want := range []string{"starting 4 runs", "4/4 (100.0%)", "luna/bbr/B25/q7.0x", "done after 4s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if w := p.CondWall()["luna/bbr/B25/q7.0x"]; w != 400*time.Millisecond {
		t.Errorf("per-condition wall = %v, want 400ms", w)
	}
}

func TestPrinterThrottles(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf)
	p.Every = time.Hour // nothing but the final update may print
	p.SweepStart(100)
	for i := 1; i <= 100; i++ {
		p.RunDone(Update{Done: i, Total: 100, Cond: "c"})
	}
	lines := strings.Count(buf.String(), "\n")
	// One "starting" line plus exactly one progress line (the 100/100 one).
	if lines != 2 {
		t.Errorf("throttled printer wrote %d lines, want 2:\n%s", lines, buf.String())
	}
}

func TestPrinterInterruptedSummary(t *testing.T) {
	var buf bytes.Buffer
	p := NewPrinter(&buf)
	p.SweepStart(10)
	p.RunDone(Update{Done: 1, Total: 10, Cond: "a", RunWall: time.Second})
	p.SweepDone(true, 30*time.Second)
	if !strings.Contains(buf.String(), "interrupted after 30s") {
		t.Errorf("missing interrupted summary:\n%s", buf.String())
	}
}
