package obs

// EngineStats is the JSON-friendly form of the discrete-event engine's
// execution counters (sim.Stats), flattened to plain numbers so run logs
// stay readable without knowing the simulator's internal types.
type EngineStats struct {
	// Events is the number of events dispatched by the engine.
	Events uint64 `json:"events"`
	// Scheduled is the number of events ever scheduled (dispatched plus
	// still pending when the run ended).
	Scheduled uint64 `json:"scheduled"`
	// PeakPending is the high-water mark of the event queue depth.
	PeakPending int `json:"peak_pending"`
	// SimSeconds is how much virtual time the run advanced.
	SimSeconds float64 `json:"sim_s"`
	// WallSeconds is how much wall-clock time the engine spent dispatching.
	WallSeconds float64 `json:"wall_s"`
	// Speedup is SimSeconds/WallSeconds: how much faster than real time
	// the run executed.
	Speedup float64 `json:"speedup"`
	// EventsPerSecond is the engine's dispatch throughput.
	EventsPerSecond float64 `json:"events_per_s"`
}

// ProbeMeta summarises the instrumentation attached to a run: how the
// congestion-control sampler was configured, how many samples each probe
// layer captured, and where the exported artefacts landed (paths are
// relative to the run-log location, empty when the run was not exported).
type ProbeMeta struct {
	// IntervalMS is the sampling interval in milliseconds; 0 means the
	// sampler snapshotted on every ACK instead of on a timer.
	IntervalMS float64 `json:"interval_ms"`
	// PerAck reports whether ACK-driven sampling was active.
	PerAck bool `json:"per_ack,omitempty"`
	// CCSamples, QueueSamples and Events count captured datapoints.
	CCSamples    int    `json:"cc_samples"`
	QueueSamples int    `json:"queue_samples"`
	Events       uint64 `json:"events"`
	// EventsLost counts lifecycle events overwritten in the bounded ring.
	EventsLost uint64 `json:"events_lost,omitempty"`
	// Exported artefact filenames, empty when not written.
	CCCSV       string `json:"cc_csv,omitempty"`
	QueueCSV    string `json:"queue_csv,omitempty"`
	DropsCSV    string `json:"drops_csv,omitempty"`
	EventsJSONL string `json:"events_jsonl,omitempty"`
}

// ImpairMeta summarises the path impairments applied to a run: the static
// profile, and what the impairer actually did — drops by cause, duplicate
// and reorder counts, and link-flap accounting.
type ImpairMeta struct {
	// Spec is the compact impairment string ("loss2%+jit3ms", "none" for a
	// schedule-only run).
	Spec string `json:"spec"`
	// Schedule is the mid-run retuning program in ParseSchedule syntax,
	// empty when the run had none.
	Schedule string `json:"schedule,omitempty"`
	// Packets counts packets entering the impairer.
	Packets int `json:"packets"`
	// LossDrops and FlapDrops split impairer drops by cause.
	LossDrops int `json:"loss_drops"`
	FlapDrops int `json:"flap_drops,omitempty"`
	// Duplicates and Reordered count injected copies and overtakes.
	Duplicates int `json:"duplicates,omitempty"`
	Reordered  int `json:"reordered,omitempty"`
	// Flaps is the number of down transitions; DownSeconds the cumulative
	// time the link spent down.
	Flaps       int     `json:"flaps,omitempty"`
	DownSeconds float64 `json:"down_s,omitempty"`
}

// FlowsMeta summarises an N-flow population run: the configured population
// shape and the cross-flow fairness metrics over the fairness window.
type FlowsMeta struct {
	// Spec is the compact population string, e.g.
	// "flows=32(iperf:cubic)/on=30s/off=15s/a=1.5".
	Spec string `json:"spec"`
	// Flows is the configured competing-slot count; Streams counts game
	// streams including the primary.
	Flows   int `json:"flows"`
	Streams int `json:"streams"`
	// Active is the number of flows included in fairness accounting.
	Active int `json:"active"`
	// Jain is Jain's fairness index over per-flow window throughputs.
	Jain float64 `json:"jain"`
	// TputP10/P50/P90 are per-flow throughput quantiles in Mb/s.
	TputP10 float64 `json:"tput_p10_mbps"`
	TputP50 float64 `json:"tput_p50_mbps"`
	TputP90 float64 `json:"tput_p90_mbps"`
	// RTTInflP50/P90 are smoothed-RTT inflation quantiles over TCP slots
	// (SRTT / base RTT).
	RTTInflP50 float64 `json:"rtt_infl_p50,omitempty"`
	RTTInflP90 float64 `json:"rtt_infl_p90,omitempty"`
	// Starved counts flows below 5% of the equal share.
	Starved int `json:"starved"`
}

// Record is the structured log line one experiment run emits: where the run
// sits in the grid, how it was seeded, how the engine performed, and the
// headline metrics the paper's tables report. One Record per run makes a
// campaign grep-able ("every Luna/BBR cell"), tail-able while it executes,
// and diffable across code revisions.
type Record struct {
	// Cond is the compact condition string, e.g. "stadia/cubic/B25/q2.0x".
	Cond string `json:"cond"`
	// System, CCA, CapacityMbps, QueueMult and AQM are the condition's
	// individual coordinates, duplicated from Cond for structured queries.
	System       string  `json:"system"`
	CCA          string  `json:"cca"`
	CapacityMbps float64 `json:"capacity_mbps"`
	QueueMult    float64 `json:"queue_mult"`
	AQM          string  `json:"aqm"`
	// Seed is the run's deterministic seed; Iteration its index within the
	// grid cell.
	Seed      uint64 `json:"seed"`
	Iteration int    `json:"iter"`
	// Cached marks a run served from the content-addressed run cache
	// instead of being executed; its metrics (and the stored engine
	// counters) are byte-identical to the original execution's, but its
	// wall-clock cost was a file read.
	Cached bool `json:"cached,omitempty"`

	// Engine holds the run's execution counters.
	Engine EngineStats `json:"engine"`

	// Probe carries instrumentation metadata when the run was probed.
	Probe *ProbeMeta `json:"probe,omitempty"`

	// Impair carries impairment metadata when the run had a static
	// impairment profile or a retuning schedule.
	Impair *ImpairMeta `json:"impair,omitempty"`

	// Flows carries population metadata when the run had an N-flow
	// population configured.
	Flows *FlowsMeta `json:"flows,omitempty"`

	// Headline metrics over the paper's stabilised contention window.
	GameMbps float64 `json:"game_mbps"`
	TCPMbps  float64 `json:"tcp_mbps"`
	Fairness float64 `json:"fairness"`
	RTTMs    float64 `json:"rtt_ms"`
	FPS      float64 `json:"fps"`
	LossPct  float64 `json:"loss_pct"`

	// End-state counters for the whole trace.
	FramesSent      int64 `json:"frames_sent"`
	FramesDisplayed int64 `json:"frames_displayed"`
	FramesDropped   int64 `json:"frames_dropped"`
	NackRetx        int64 `json:"nack_retx"`
	TCPRetransmits  int   `json:"tcp_retx"`
}

// RunLog consumes one Record per completed run. Implementations must be
// safe for concurrent use: sweeps log from worker goroutines.
type RunLog interface {
	Log(Record) error
}
