// Package obs is the observability layer of the simulated testbed: live
// progress reporting for experiment sweeps and structured, grep-able run
// logs — the simulator's stand-in for the paper's always-on Wireshark,
// ping, and PresentMon instrumentation.
//
// The package sits deliberately below internal/experiment in the import
// graph: it defines the sink interfaces and record shapes, and experiment
// (the producer) depends on it, never the other way round. Nothing in obs
// touches the simulation clock; every timestamp here is wall-clock time,
// which keeps the discrete-event engine a pure function of its inputs.
//
// # Progress
//
// Progress is the sink a sweep reports to while it executes. The
// experiment runner calls SweepStart once with the total run count, RunDone
// after every completed run (with completed/total counters, wall-clock
// elapsed, and a projected ETA), and SweepDone exactly once when the sweep
// returns — whether it completed or was cancelled. Implementations must be
// safe for concurrent use: RunDone is invoked from worker goroutines.
//
// Printer is the standard implementation: it renders throttled,
// single-line progress to a writer (typically stderr) and accumulates
// per-condition wall time so a sweep's cost breakdown is visible at the
// end:
//
//	sweep: 123/810 (15.2%) luna/bbr/B25/q7.0x elapsed 41s eta 3m52s
//
// # Run logs
//
// Record is the structured form of one run: the condition coordinates,
// the seed, the engine's execution counters, and the headline metrics the
// paper reports (bitrates, fairness, RTT, frame rate, loss). RunLog
// consumes one Record per run; JSONL implements it by appending one JSON
// object per line, so campaigns can be tailed live, grepped, and diffed
// across revisions:
//
//	gssim -sweep -progress -runlog runs.jsonl &
//	tail -f runs.jsonl | grep '"cond":"stadia/bbr/B25/q0.5x"'
//
// ReadJSONL is the inverse, used by gsreport to re-aggregate a finished
// (or interrupted) campaign offline.
package obs
