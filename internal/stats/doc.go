// Package stats provides the statistical accumulators and summaries the
// paper's analysis uses: streaming (Welford) mean/variance, Student-t 95%
// confidence intervals across run samples, and percentiles — plus the
// mergeable sketches campaign-scale telemetry is built on.
//
// Everything here is allocation-light by design: Accumulator is a fixed
// struct fed one sample at a time, and Percentile sorts a caller-owned
// slice in place (Percentiles amortises one sort across several quantiles).
// The multi-flow fairness summaries (per-flow throughput and RTT-inflation
// quantiles in experiment.FlowSummary) are built from these primitives.
//
// # Sketches
//
// TDigest is a mergeable, serialisable quantile sketch with bounded
// centroids, and MetricSketch bundles one with an Accumulator: exact
// moments plus approximate quantiles for an unbounded sample stream in
// O(1) memory. Both are deterministic — state is a pure function of the
// insertion sequence, merges are pure functions of their operands, and
// queries never mutate — so a campaign that folds runs in a canonical
// order serialises byte-identically however its workers were scheduled.
// The obs.Aggregator keeps one MetricSketch per (condition, metric) and is
// what lets a 10⁵–10⁶-run Monte-Carlo campaign report quantiles with
// confidence intervals without retaining per-run records.
package stats
