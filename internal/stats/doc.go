// Package stats provides the statistical accumulators and summaries the
// paper's analysis uses: streaming (Welford) mean/variance, Student-t 95%
// confidence intervals across run samples, and percentiles.
//
// Everything here is allocation-light by design: Accumulator is a fixed
// struct fed one sample at a time, and Percentile sorts a caller-owned
// slice in place. The multi-flow fairness summaries (per-flow throughput
// and RTT-inflation quantiles in experiment.FlowSummary) are built from
// these primitives.
package stats
