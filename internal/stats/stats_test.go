package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasic(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Unbiased variance of this classic set is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.CI95() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

// Property: Welford matches the naive two-pass computation.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var a Accumulator
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r) / 7
			a.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		varsum := 0.0
		for _, x := range xs {
			varsum += (x - mean) * (x - mean)
		}
		naive := varsum / float64(len(xs)-1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-naive) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging accumulators equals accumulating the concatenation.
func TestMergeEquivalence(t *testing.T) {
	f := func(xs, ys []int16) bool {
		var a, b, all Accumulator
		for _, x := range xs {
			a.Add(float64(x))
			all.Add(float64(x))
		}
		for _, y := range ys {
			b.Add(float64(y))
			all.Add(float64(y))
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-all.Variance()) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: merging an arbitrary partition of a sample stream — including
// empty partitions — is equivalent to accumulating the whole stream in one
// Accumulator (N exact, mean and variance within 1e-9).
func TestMergeArbitraryPartitions(t *testing.T) {
	f := func(samples []int16, cuts []uint8) bool {
		xs := make([]float64, len(samples))
		var single Accumulator
		for i, s := range samples {
			xs[i] = float64(s) / 7 // non-integer values
			single.Add(xs[i])
		}
		// Partition xs at the (sorted, deduplicated, clamped) cut points;
		// repeated cuts produce empty partitions on purpose.
		bounds := []int{0}
		for _, c := range cuts {
			p := int(c) % (len(xs) + 1)
			bounds = append(bounds, p)
		}
		bounds = append(bounds, len(xs))
		sort.Ints(bounds)

		var merged Accumulator
		merged.Merge(&Accumulator{}) // empty-into-empty edge
		for i := 1; i < len(bounds); i++ {
			var part Accumulator
			for _, x := range xs[bounds[i-1]:bounds[i]] {
				part.Add(x)
			}
			merged.Merge(&part) // includes empty partitions when bounds repeat
		}
		var empty Accumulator
		merged.Merge(&empty) // trailing empty partition

		if merged.N() != single.N() {
			return false
		}
		// 1e-9 absolute on the mean, 1e-9 relative on the variance (whose
		// magnitude grows with the square of the sample range).
		varTol := 1e-9 * math.Max(1, math.Abs(single.Variance()))
		return math.Abs(merged.Mean()-single.Mean()) < 1e-9 &&
			math.Abs(merged.Variance()-single.Variance()) < varTol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTCritical(t *testing.T) {
	if got := TCritical95(14); got != 2.145 {
		t.Errorf("t(14) = %v, want 2.145 (the paper's 15-run CI)", got)
	}
	if got := TCritical95(1000); got != 1.96 {
		t.Errorf("t(1000) = %v, want 1.96", got)
	}
	if !math.IsNaN(TCritical95(0)) {
		t.Error("t(0) should be NaN")
	}
}

func TestCI95(t *testing.T) {
	var a Accumulator
	for i := 0; i < 15; i++ {
		a.Add(float64(i % 2)) // mean .466, n=15
	}
	ci := a.CI95()
	want := 2.145 * a.StdDev() / math.Sqrt(15)
	if math.Abs(ci-want) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", ci, want)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || s.Mean != 2 || math.Abs(s.StdDev-1) > 1e-12 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p*100, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("percentile of empty should be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

// Percentiles must agree with per-quantile Percentile calls while sorting
// only once, and must not mutate its input.
func TestPercentiles(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ps := []float64{0, 0.10, 0.25, 0.5, 0.75, 0.90, 1}
	got := Percentiles(xs, ps...)
	for i, p := range ps {
		if want := Percentile(xs, p); got[i] != want {
			t.Errorf("Percentiles[%d] (p=%.2f) = %v, want %v", i, p, got[i], want)
		}
	}
	if xs[0] != 5 {
		t.Error("Percentiles mutated its input")
	}
	for _, v := range Percentiles(nil, 0.1, 0.5, 0.9) {
		if !math.IsNaN(v) {
			t.Error("Percentiles of empty input should be all-NaN")
		}
	}
	if n := len(Percentiles([]float64{1})); n != 0 {
		t.Errorf("Percentiles with no ps returned %d values", n)
	}
}

func TestMeanStdDevHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Error("Mean")
	}
	if math.Abs(StdDev([]float64{2, 4})-math.Sqrt2) > 1e-12 {
		t.Errorf("StdDev = %v", StdDev([]float64{2, 4}))
	}
}
