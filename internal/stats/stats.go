package stats

import (
	"math"
	"sort"
)

// Accumulator computes running mean and variance with Welford's algorithm,
// numerically stable over millions of samples.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the sample count.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Merge combines another accumulator into this one (parallel Welford).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.mean += d * float64(b.n) / float64(n)
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.n = n
}

// t975 holds two-sided 95% Student-t critical values by degrees of freedom
// (1-30), falling back to the normal value 1.96 beyond.
var t975 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
	2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if df < int64(len(t975)) {
		return t975[df]
	}
	return 1.96
}

// CI95 returns the half-width of the 95% confidence interval for the mean.
func (a *Accumulator) CI95() float64 {
	if a.n < 2 {
		return 0
	}
	return TCritical95(a.n-1) * a.StdDev() / math.Sqrt(float64(a.n))
}

// Summary is a static snapshot of a sample set.
type Summary struct {
	N      int64
	Mean   float64
	StdDev float64
	CI95   float64
}

// Summarize computes a Summary from raw samples.
func Summarize(xs []float64) Summary {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return Summary{N: a.N(), Mean: a.Mean(), StdDev: a.StdDev(), CI95: a.CI95()}
}

// Percentile returns the p-quantile (0..1) of xs by linear interpolation.
// It returns NaN for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// Percentiles returns the ps-quantiles (each 0..1) of xs, sorting the input
// copy once instead of once per quantile the way repeated Percentile calls
// do. The result is parallel to ps; every entry is NaN for an empty slice.
func Percentiles(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = percentileSorted(s, p)
	}
	return out
}

// percentileSorted is Percentile's interpolation over an already-sorted
// slice.
func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	var a Accumulator
	for _, x := range xs {
		a.Add(x)
	}
	return a.StdDev()
}
