package stats

import (
	"fmt"
	"math"
)

// Segment is one piece of a Piecewise distribution: uniform mass W spread
// over [Lo, Hi]. A point mass is a segment with Lo == Hi.
type Segment struct {
	Lo, Hi, W float64
}

// Piecewise is a mixture of uniform segments — the empirical per-household
// condition distributions (access rate, base RTT, queue depth) Monte-Carlo
// campaigns draw from. Sampling goes through the inverse CDF, so one
// uniform variate from a deterministic RNG yields one deterministic draw:
// the property the campaign layer's reproducible cell expansion relies on.
//
// A Piecewise is immutable after construction; Quantile never mutates, so
// a single value is safe to share across worker goroutines.
type Piecewise struct {
	segs []Segment
	// cum[i] is the total weight of segs[:i]; cum[len(segs)] the grand total.
	cum []float64
}

// NewPiecewise validates and normalises the segments. Weights must be
// positive and finite, bounds finite with Hi >= Lo; at least one segment is
// required. Zero-weight segments are rejected rather than dropped so a
// typo'd spec fails loudly.
func NewPiecewise(segs []Segment) (*Piecewise, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("stats: piecewise: no segments")
	}
	p := &Piecewise{segs: append([]Segment(nil), segs...), cum: make([]float64, len(segs)+1)}
	for i, s := range p.segs {
		if math.IsNaN(s.Lo) || math.IsInf(s.Lo, 0) || math.IsNaN(s.Hi) || math.IsInf(s.Hi, 0) {
			return nil, fmt.Errorf("stats: piecewise: segment %d has non-finite bounds [%g, %g]", i, s.Lo, s.Hi)
		}
		if s.Hi < s.Lo {
			return nil, fmt.Errorf("stats: piecewise: segment %d inverted: [%g, %g]", i, s.Lo, s.Hi)
		}
		if !(s.W > 0) || math.IsInf(s.W, 0) {
			return nil, fmt.Errorf("stats: piecewise: segment %d weight %g not positive and finite", i, s.W)
		}
		p.cum[i+1] = p.cum[i] + s.W
	}
	return p, nil
}

// Segments returns a copy of the validated segments.
func (p *Piecewise) Segments() []Segment { return append([]Segment(nil), p.segs...) }

// Quantile maps u in [0, 1) through the inverse CDF: the draw lands in the
// segment whose cumulative weight interval contains u·total, uniformly
// within it. Quantile is monotone in u, and u exactly on a segment
// boundary belongs to the later segment.
func (p *Piecewise) Quantile(u float64) float64 {
	if math.IsNaN(u) || u < 0 {
		u = 0
	}
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	target := u * p.cum[len(p.segs)]
	// Binary search for the first cum[i+1] > target.
	lo, hi := 0, len(p.segs)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if p.cum[mid+1] > target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s := p.segs[lo]
	if s.Hi == s.Lo {
		return s.Lo
	}
	frac := (target - p.cum[lo]) / s.W
	return s.Lo + frac*(s.Hi-s.Lo)
}

// Mean returns the distribution's expectation.
func (p *Piecewise) Mean() float64 {
	total := p.cum[len(p.segs)]
	m := 0.0
	for _, s := range p.segs {
		m += s.W / total * (s.Lo + s.Hi) / 2
	}
	return m
}

// Bounds returns the distribution's support: the smallest Lo and largest Hi.
func (p *Piecewise) Bounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range p.segs {
		lo = math.Min(lo, s.Lo)
		hi = math.Max(hi, s.Hi)
	}
	return lo, hi
}
