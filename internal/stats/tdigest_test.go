package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// relErr is |got-want| / max(|want|, eps).
func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if w := math.Abs(want); w > 1e-9 {
		return d / w
	}
	return d
}

// distributions the accuracy property test draws from: all strictly
// positive so relative error against the exact quantile is meaningful.
var tdigestDists = []struct {
	name string
	// skip excludes quantiles where the exact answer is itself unstable
	// (a 50/50 bimodal mixture puts the median on a knife edge inside the
	// inter-mode gap; rank noise of ±ε flips it between ~6 and ~50, so no
	// rank-based sketch can pin it and the comparison is meaningless).
	skip func(q float64) bool
	draw func(r *rand.Rand) float64
}{
	{"uniform(10,20)", nil, func(r *rand.Rand) float64 { return 10 + 10*r.Float64() }},
	{"exp(mean 5)+1", nil, func(r *rand.Rand) float64 { return 1 + 5*r.ExpFloat64() }},
	{"lognormal", nil, func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
	{"bimodal", func(q float64) bool { return q > 0.4 && q < 0.6 }, func(r *rand.Rand) float64 {
		if r.Intn(2) == 0 {
			return 5 + r.Float64()
		}
		return 50 + 5*r.Float64()
	}},
}

var tdigestQuantiles = []float64{0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}

// TestTDigestAccuracy is the acceptance property: on 10⁴-sample streams the
// digest's quantiles stay within 1% relative error of the exact Percentile.
func TestTDigestAccuracy(t *testing.T) {
	for _, dist := range tdigestDists {
		for seed := int64(1); seed <= 5; seed++ {
			r := rand.New(rand.NewSource(seed))
			td := NewTDigest(0)
			xs := make([]float64, 0, 10000)
			for i := 0; i < 10000; i++ {
				x := dist.draw(r)
				xs = append(xs, x)
				td.Add(x)
			}
			for _, q := range tdigestQuantiles {
				if dist.skip != nil && dist.skip(q) {
					continue
				}
				exact := Percentile(xs, q)
				got := td.Quantile(q)
				if re := relErr(got, exact); re > 0.01 {
					t.Errorf("%s seed %d q%.2f: digest %.6g vs exact %.6g (rel err %.4f > 1%%)",
						dist.name, seed, q, got, exact, re)
				}
			}
		}
	}
}

// TestTDigestSmallStreams: on streams smaller than the buffer every point
// is a singleton centroid, so extremes are exact, the odd-length median is
// the middle sample, results are monotone in q, and everything stays inside
// the sample range. (Interior quantiles may differ from Percentile by up to
// one order statistic — the digest's rank convention is q·n against
// Percentile's q·(n−1) — so exact equality is only required where the two
// conventions coincide.)
func TestTDigestSmallStreams(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 10, 100} {
		td := NewTDigest(0)
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := r.Float64() * 100
			xs = append(xs, x)
			td.Add(x)
		}
		if got := td.Quantile(0); got != Percentile(xs, 0) {
			t.Errorf("n=%d min: got %.6g want %.6g", n, got, Percentile(xs, 0))
		}
		if got := td.Quantile(1); got != Percentile(xs, 1) {
			t.Errorf("n=%d max: got %.6g want %.6g", n, got, Percentile(xs, 1))
		}
		if n%2 == 1 && n > 2 {
			if got, want := td.Quantile(0.5), Percentile(xs, 0.5); got != want {
				t.Errorf("n=%d median: got %.6g want %.6g", n, got, want)
			}
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := td.Quantile(q)
			if v < prev-1e-12 {
				t.Errorf("n=%d: quantiles not monotone at q=%.2f (%g < %g)", n, q, v, prev)
			}
			if v < td.Min()-1e-12 || v > td.Max()+1e-12 {
				t.Errorf("n=%d q%.2f: %g outside sample range", n, q, v)
			}
			prev = v
		}
	}
}

func TestTDigestEmptyAndNaN(t *testing.T) {
	td := NewTDigest(0)
	if !math.IsNaN(td.Quantile(0.5)) || !math.IsNaN(td.Min()) || !math.IsNaN(td.Max()) {
		t.Error("empty digest should report NaN")
	}
	td.Add(math.NaN())
	if td.N() != 0 {
		t.Error("NaN sample should be ignored")
	}
	td.Add(3)
	if td.Quantile(0.5) != 3 || td.Min() != 3 || td.Max() != 3 {
		t.Error("single-sample digest should return the sample everywhere")
	}
}

// TestTDigestBoundedCentroids: centroid count stays bounded (~2δ plus the
// insertion buffer) however long the stream runs.
func TestTDigestBoundedCentroids(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	td := NewTDigest(100)
	for i := 0; i < 200000; i++ {
		td.Add(r.NormFloat64())
	}
	bound := int(2*td.Compression()) + tdigestBufCap
	if got := td.Centroids(); got > bound {
		t.Errorf("centroids = %d, want <= %d", got, bound)
	}
}

// TestTDigestMergeAccuracy: a digest assembled by merging per-partition
// digests matches the exact quantiles about as well as a single-stream one.
func TestTDigestMergeAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	const parts, per = 16, 1000
	var xs []float64
	merged := NewTDigest(0)
	for p := 0; p < parts; p++ {
		td := NewTDigest(0)
		for i := 0; i < per; i++ {
			x := 1 + 5*r.ExpFloat64()
			xs = append(xs, x)
			td.Add(x)
		}
		merged.Merge(td)
	}
	if merged.N() != parts*per {
		t.Fatalf("merged N = %d, want %d", merged.N(), parts*per)
	}
	for _, q := range tdigestQuantiles {
		exact := Percentile(xs, q)
		if re := relErr(merged.Quantile(q), exact); re > 0.01 {
			t.Errorf("q%.2f: merged %.6g vs exact %.6g (rel err %.4f)", q, merged.Quantile(q), exact, re)
		}
	}
}

// TestTDigestDeterministicSerialisation: the same insertion sequence yields
// byte-identical JSON, queries and marshalling never perturb the state, and
// a canonical merge order yields byte-identical results regardless of which
// digest held which partition.
func TestTDigestDeterministicSerialisation(t *testing.T) {
	feed := func() *TDigest {
		r := rand.New(rand.NewSource(42))
		td := NewTDigest(0)
		for i := 0; i < 5000; i++ {
			td.Add(r.Float64() * 30)
		}
		return td
	}
	a, b := feed(), feed()
	// Interleave queries and serialisation on a only.
	a.Quantile(0.5)
	j1, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	a.Quantile(0.99)
	j2, _ := json.Marshal(a)
	j3, _ := json.Marshal(b)
	if !bytes.Equal(j1, j2) {
		t.Error("serialisation changed after queries")
	}
	if !bytes.Equal(j1, j3) {
		t.Error("identical insertion sequences serialised differently")
	}

	// Canonical merge order: leaves merged 1,2,3 vs the same leaves built
	// by different "workers" must serialise identically.
	leaves := func(seedBase int64) []*TDigest {
		out := make([]*TDigest, 3)
		for i := range out {
			r := rand.New(rand.NewSource(seedBase + int64(i)))
			td := NewTDigest(0)
			for k := 0; k < 2000; k++ {
				td.Add(r.ExpFloat64())
			}
			out[i] = td
		}
		return out
	}
	m1, m2 := NewTDigest(0), NewTDigest(0)
	for _, l := range leaves(100) {
		m1.Merge(l)
	}
	for _, l := range leaves(100) {
		m2.Merge(l)
	}
	b1, _ := json.Marshal(m1)
	b2, _ := json.Marshal(m2)
	if !bytes.Equal(b1, b2) {
		t.Error("canonical-order merges serialised differently")
	}
}

func TestTDigestJSONRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	td := NewTDigest(0)
	for i := 0; i < 3000; i++ {
		td.Add(r.NormFloat64() * 10)
	}
	data, err := json.Marshal(td)
	if err != nil {
		t.Fatal(err)
	}
	var back TDigest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != td.N() || back.Min() != td.Min() || back.Max() != td.Max() {
		t.Fatalf("round trip lost count/extremes: %d/%g/%g vs %d/%g/%g",
			back.N(), back.Min(), back.Max(), td.N(), td.Min(), td.Max())
	}
	for _, q := range tdigestQuantiles {
		if got, want := back.Quantile(q), td.Quantile(q); relErr(got, want) > 1e-9 {
			t.Errorf("q%.2f changed across round trip: %g vs %g", q, got, want)
		}
	}
	// Round trip of an empty digest.
	data, err = json.Marshal(NewTDigest(0))
	if err != nil {
		t.Fatal(err)
	}
	var empty TDigest
	if err := json.Unmarshal(data, &empty); err != nil {
		t.Fatal(err)
	}
	if empty.N() != 0 || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty digest round trip broken")
	}
	empty.Add(1) // must be usable after decode
	if empty.N() != 1 {
		t.Error("decoded digest not usable")
	}
}

func TestMetricSketch(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	ms := NewMetricSketch(0)
	var xs []float64
	for i := 0; i < 5000; i++ {
		x := 20 + 4*r.NormFloat64()
		xs = append(xs, x)
		ms.Add(x)
	}
	exact := Summarize(xs)
	if ms.N() != exact.N {
		t.Fatalf("N = %d, want %d", ms.N(), exact.N)
	}
	if relErr(ms.Mean(), exact.Mean) > 1e-12 || relErr(ms.CI95(), exact.CI95) > 1e-9 {
		t.Errorf("moments drifted: mean %g/%g ci %g/%g", ms.Mean(), exact.Mean, ms.CI95(), exact.CI95)
	}
	if re := relErr(ms.Quantile(0.5), Percentile(xs, 0.5)); re > 0.01 {
		t.Errorf("median rel err %.4f", re)
	}

	// Merge equivalence: partitioned sketches merge to the same moments.
	a, b := NewMetricSketch(0), NewMetricSketch(0)
	for i, x := range xs {
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != ms.N() || relErr(a.Mean(), ms.Mean()) > 1e-12 || relErr(a.StdDev(), ms.StdDev()) > 1e-9 {
		t.Error("partitioned merge diverged from single-stream sketch")
	}

	// JSON round trip preserves moments and quantiles, and stays mergeable.
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	var back MetricSketch
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != ms.N() || relErr(back.Mean(), ms.Mean()) > 1e-12 {
		t.Error("sketch round trip lost moments")
	}
	if relErr(back.Quantile(0.9), ms.Quantile(0.9)) > 1e-9 {
		t.Error("sketch round trip changed quantiles")
	}
	back.Add(1)
	if back.N() != ms.N()+1 {
		t.Error("decoded sketch not usable")
	}
}
