package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// MetricSketch is the streaming summary of one metric across an unbounded
// run population: a Welford Accumulator for exact mean/variance/CI and a
// t-digest for quantiles, both mergeable. It is the unit the campaign
// telemetry layer keeps per (condition, metric): O(1)-ish memory however
// many runs fold in.
//
// Like TDigest, a MetricSketch's state is a pure function of its insertion
// sequence, and Merge is a pure function of its operands; queries and
// serialisation never mutate.
type MetricSketch struct {
	acc    Accumulator
	digest *TDigest
}

// NewMetricSketch returns an empty sketch (0 compression = default δ).
func NewMetricSketch(compression float64) *MetricSketch {
	return &MetricSketch{digest: NewTDigest(compression)}
}

// Add incorporates one sample; NaN samples are ignored.
func (m *MetricSketch) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	m.acc.Add(x)
	m.digest.Add(x)
}

// Merge folds other into m without mutating other.
func (m *MetricSketch) Merge(other *MetricSketch) {
	if other == nil {
		return
	}
	acc := other.acc
	m.acc.Merge(&acc)
	m.digest.Merge(other.digest)
}

// Clone returns an independent deep copy.
func (m *MetricSketch) Clone() *MetricSketch {
	return &MetricSketch{acc: m.acc, digest: m.digest.Clone()}
}

// N returns the sample count.
func (m *MetricSketch) N() int64 { return m.acc.N() }

// Mean returns the exact running mean.
func (m *MetricSketch) Mean() float64 { return m.acc.Mean() }

// StdDev returns the exact sample standard deviation.
func (m *MetricSketch) StdDev() float64 { return m.acc.StdDev() }

// CI95 returns the exact 95% confidence half-width on the mean.
func (m *MetricSketch) CI95() float64 { return m.acc.CI95() }

// Quantile returns the t-digest estimate of the p-quantile.
func (m *MetricSketch) Quantile(p float64) float64 { return m.digest.Quantile(p) }

// Min and Max return the exact stream extremes.
func (m *MetricSketch) Min() float64 { return m.digest.Min() }

// Max returns the largest sample seen.
func (m *MetricSketch) Max() float64 { return m.digest.Max() }

// Summary renders the exact moment statistics as a Summary.
func (m *MetricSketch) Summary() Summary {
	return Summary{N: m.acc.N(), Mean: m.acc.Mean(), StdDev: m.acc.StdDev(), CI95: m.acc.CI95()}
}

// metricSketchJSON is the serialised form. The accumulator's moments are
// stored raw (n, mean, m2) so a restored sketch keeps merging exactly.
type metricSketchJSON struct {
	N      int64    `json:"n"`
	Mean   float64  `json:"mean"`
	M2     float64  `json:"m2"`
	Digest *TDigest `json:"digest"`
}

// MarshalJSON serialises the sketch canonically (see TDigest.MarshalJSON).
func (m *MetricSketch) MarshalJSON() ([]byte, error) {
	return json.Marshal(metricSketchJSON{
		N:      m.acc.n,
		Mean:   m.acc.mean,
		M2:     m.acc.m2,
		Digest: m.digest,
	})
}

// UnmarshalJSON restores a sketch serialised by MarshalJSON.
func (m *MetricSketch) UnmarshalJSON(data []byte) error {
	j := metricSketchJSON{Digest: NewTDigest(0)}
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("stats: sketch: %w", err)
	}
	m.acc = Accumulator{n: j.N, mean: j.Mean, m2: j.M2}
	if j.Digest == nil {
		j.Digest = NewTDigest(0)
	}
	m.digest = j.Digest
	return nil
}
