package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultCompression is the t-digest δ used when NewTDigest is given zero:
// roughly 2δ centroids at most, with quantile error ~ q(1-q)/δ. 400 keeps a
// campaign-scale sketch under ~14 kB serialized while holding p01–p99
// inside 1% relative error on 10⁴-sample streams even for skewed (e.g.
// log-normal) metrics; sketches stay far smaller while their sample counts
// are below ~2δ, which covers every per-condition sketch of a paper-sized
// grid.
const DefaultCompression = 400

// tdigestBufCap is the number of unmerged samples buffered before an
// automatic compress. Larger buffers amortise sorting; the value only
// affects performance, never the deterministic state evolution (compression
// points are a pure function of the insertion sequence).
const tdigestBufCap = 512

// TDigest is a mergeable quantile sketch (Dunning's merging t-digest,
// scale function k1). It summarises an unbounded stream of float64 samples
// in bounded memory: at most ~2×compression centroids plus a fixed-size
// insertion buffer.
//
// Determinism: the digest's state is a pure function of its insertion
// sequence — compression happens only when the internal buffer fills, ties
// are broken by value, and no randomisation is used. Two digests fed the
// same samples in the same order are deeply equal, and Merge is a pure
// function of its operands, so a tree of digests merged in a deterministic
// order yields byte-identical serialisations regardless of which goroutine
// produced each leaf. Queries and serialisation never mutate state.
//
// The zero value is not usable; create one with NewTDigest.
type TDigest struct {
	compression float64

	// means/weights are the merged centroids, sorted by mean.
	means   []float64
	weights []float64

	// buf holds samples not yet merged into centroids.
	buf []float64

	count    int64
	min, max float64
}

// NewTDigest returns an empty digest with the given compression δ
// (0 = DefaultCompression).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = DefaultCompression
	}
	return &TDigest{compression: compression, min: math.Inf(1), max: math.Inf(-1)}
}

// Compression returns the digest's δ.
func (t *TDigest) Compression() float64 { return t.compression }

// N returns the number of samples added.
func (t *TDigest) N() int64 { return t.count }

// Min and Max return the exact extremes of the stream (NaN when empty).
func (t *TDigest) Min() float64 {
	if t.count == 0 {
		return math.NaN()
	}
	return t.min
}

// Max returns the largest sample seen (NaN when empty).
func (t *TDigest) Max() float64 {
	if t.count == 0 {
		return math.NaN()
	}
	return t.max
}

// Add incorporates one sample. NaN samples are ignored (a sketch over a
// metric that is undefined for some runs should summarise the defined ones).
func (t *TDigest) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	t.count++
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	t.buf = append(t.buf, x)
	if len(t.buf) >= tdigestBufCap {
		t.compress()
	}
}

// k is the k1 scale function, normalised so the full quantile range spans
// exactly `compression` units: k(q) = δ·(asin(2q−1)/π + ½).
func (t *TDigest) k(q float64) float64 {
	switch {
	case q <= 0:
		return 0
	case q >= 1:
		return t.compression
	}
	return t.compression * (math.Asin(2*q-1)/math.Pi + 0.5)
}

// compress merges the buffer into the centroid list, bounding the result at
// ~2δ centroids. It is the only operation that rewrites centroids, and it
// runs only from Add (buffer full) and Merge — never from queries — so the
// state evolution is a pure function of the insertion sequence.
func (t *TDigest) compress() {
	if len(t.buf) == 0 {
		return
	}
	// Gather centroids + buffered points into one (mean, weight) list.
	n := len(t.means) + len(t.buf)
	means := make([]float64, 0, n)
	weights := make([]float64, 0, n)
	means = append(means, t.means...)
	weights = append(weights, t.weights...)
	for _, x := range t.buf {
		means = append(means, x)
		weights = append(weights, 1)
	}
	t.buf = t.buf[:0]
	t.means, t.weights = mergeCentroids(t, means, weights)
}

// mergeCentroids sorts the given centroid set and greedily merges neighbours
// while the k-size budget allows, returning fresh slices. Ties on mean are
// broken by weight (ascending) so the pass is deterministic for any input
// permutation of equal-valued items.
func mergeCentroids(t *TDigest, means, weights []float64) (outM, outW []float64) {
	type idxSort struct {
		m, w float64
	}
	cs := make([]idxSort, len(means))
	for i := range means {
		cs[i] = idxSort{means[i], weights[i]}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].m != cs[j].m {
			return cs[i].m < cs[j].m
		}
		return cs[i].w < cs[j].w
	})
	total := 0.0
	for _, c := range cs {
		total += c.w
	}
	outM = make([]float64, 0, len(cs))
	outW = make([]float64, 0, len(cs))
	var (
		curM, curW float64
		soFar      float64 // weight fully emitted so far
		started    bool
	)
	emit := func() {
		outM = append(outM, curM)
		outW = append(outW, curW)
		soFar += curW
	}
	for _, c := range cs {
		if !started {
			curM, curW, started = c.m, c.w, true
			continue
		}
		q0 := soFar / total
		q2 := (soFar + curW + c.w) / total
		if t.k(q2)-t.k(q0) <= 1 {
			// Weighted-mean update keeps the merged centroid exact.
			curM = (curM*curW + c.m*c.w) / (curW + c.w)
			curW += c.w
		} else {
			emit()
			curM, curW = c.m, c.w
		}
	}
	if started {
		emit()
	}
	return outM, outW
}

// Merge folds other into t. It does not mutate other. Merge order matters
// for byte-identity (not for accuracy): merging a set of digests in a
// canonical order — e.g. sorted by condition name — gives byte-identical
// results regardless of how the leaves were produced.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil || other.count == 0 {
		return
	}
	t.count += other.count
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
	n := len(t.means) + len(t.buf) + len(other.means) + len(other.buf)
	means := make([]float64, 0, n)
	weights := make([]float64, 0, n)
	means = append(means, t.means...)
	weights = append(weights, t.weights...)
	for _, x := range t.buf {
		means = append(means, x)
		weights = append(weights, 1)
	}
	means = append(means, other.means...)
	weights = append(weights, other.weights...)
	for _, x := range other.buf {
		means = append(means, x)
		weights = append(weights, 1)
	}
	t.buf = t.buf[:0]
	t.means, t.weights = mergeCentroids(t, means, weights)
}

// Clone returns an independent deep copy.
func (t *TDigest) Clone() *TDigest {
	c := &TDigest{
		compression: t.compression,
		means:       append([]float64(nil), t.means...),
		weights:     append([]float64(nil), t.weights...),
		buf:         append([]float64(nil), t.buf...),
		count:       t.count,
		min:         t.min,
		max:         t.max,
	}
	return c
}

// Centroids returns the number of merged centroids plus buffered points —
// the sketch's current memory footprint in summary units.
func (t *TDigest) Centroids() int { return len(t.means) + len(t.buf) }

// Quantile returns the estimated p-quantile (0..1). It never mutates the
// digest: buffered points are folded into a temporary view. NaN when empty.
func (t *TDigest) Quantile(p float64) float64 {
	if t.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return t.min
	}
	if p >= 1 {
		return t.max
	}
	means, weights := t.means, t.weights
	if len(t.buf) > 0 {
		// Query-time fold on a copy; Add/Merge remain the only mutators.
		n := len(means) + len(t.buf)
		ms := make([]float64, 0, n)
		ws := make([]float64, 0, n)
		ms = append(ms, means...)
		ws = append(ws, weights...)
		for _, x := range t.buf {
			ms = append(ms, x)
			ws = append(ws, 1)
		}
		means, weights = mergeCentroids(t, ms, ws)
	}
	if len(means) == 1 {
		return means[0]
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	n := len(means)
	index := p * total
	// The interpolation scheme of Dunning's reference MergingDigest:
	// centroids are centred mass, singleton centroids are exact samples,
	// and the outermost unit of weight on each side is pinned to min/max.
	if index < 1 {
		return t.min
	}
	if weights[0] > 1 && index < weights[0]/2 {
		return t.min + (index-1)/(weights[0]/2-1)*(means[0]-t.min)
	}
	if index > total-1 {
		return t.max
	}
	if weights[n-1] > 1 && total-index <= weights[n-1]/2 {
		return t.max - (total-index-1)/(weights[n-1]/2-1)*(t.max-means[n-1])
	}
	soFar := weights[0] / 2
	for i := 0; i < n-1; i++ {
		dw := (weights[i] + weights[i+1]) / 2
		if soFar+dw > index {
			// Centroids i and i+1 bracket the target rank.
			leftUnit := 0.0
			if weights[i] == 1 {
				if index-soFar < 0.5 {
					return means[i]
				}
				leftUnit = 0.5
			}
			rightUnit := 0.0
			if weights[i+1] == 1 {
				if soFar+dw-index <= 0.5 {
					return means[i+1]
				}
				rightUnit = 0.5
			}
			z1 := index - soFar - leftUnit
			z2 := soFar + dw - index - rightUnit
			return weightedAverage(means[i], z2, means[i+1], z1)
		}
		soFar += dw
	}
	// Past the midpoint of the last centroid: interpolate toward max.
	z1 := index - total + weights[n-1]/2
	z2 := weights[n-1]/2 - z1
	return weightedAverage(means[n-1], z1, t.max, z2)
}

// weightedAverage interpolates between x1 and x2 (x1 <= x2) with the given
// weights, clamped to the [x1, x2] interval.
func weightedAverage(x1, w1, x2, w2 float64) float64 {
	if w1+w2 <= 0 {
		return (x1 + x2) / 2
	}
	x := (x1*w1 + x2*w2) / (w1 + w2)
	return math.Max(x1, math.Min(x, x2))
}

// tdigestJSON is the serialised form: the canonical (fully compressed)
// centroid list plus stream extremes and count.
type tdigestJSON struct {
	Compression float64   `json:"compression"`
	Count       int64     `json:"count"`
	Min         float64   `json:"min"`
	Max         float64   `json:"max"`
	Means       []float64 `json:"means"`
	Weights     []float64 `json:"weights"`
}

// MarshalJSON serialises the digest in canonical form: the buffer is folded
// (on a copy) so two digests with equal insertion sequences marshal to
// identical bytes regardless of when they were serialised.
func (t *TDigest) MarshalJSON() ([]byte, error) {
	c := t
	if len(t.buf) > 0 {
		c = t.Clone()
		c.compress()
	}
	j := tdigestJSON{
		Compression: c.compression,
		Count:       c.count,
		Means:       c.means,
		Weights:     c.weights,
	}
	if c.count > 0 {
		j.Min, j.Max = c.min, c.max
	}
	if j.Means == nil {
		j.Means = []float64{}
	}
	if j.Weights == nil {
		j.Weights = []float64{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a digest serialised by MarshalJSON.
func (t *TDigest) UnmarshalJSON(data []byte) error {
	var j tdigestJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return fmt.Errorf("stats: tdigest: %w", err)
	}
	if j.Compression <= 0 {
		j.Compression = DefaultCompression
	}
	if len(j.Means) != len(j.Weights) {
		return fmt.Errorf("stats: tdigest: %d means vs %d weights", len(j.Means), len(j.Weights))
	}
	t.compression = j.Compression
	t.count = j.Count
	t.means = j.Means
	t.weights = j.Weights
	t.buf = nil
	if j.Count > 0 {
		t.min, t.max = j.Min, j.Max
	} else {
		t.min, t.max = math.Inf(1), math.Inf(-1)
	}
	return nil
}
