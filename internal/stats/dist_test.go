package stats

import (
	"math"
	"testing"
)

func TestPiecewiseValidation(t *testing.T) {
	cases := []struct {
		name string
		segs []Segment
	}{
		{"empty", nil},
		{"zero-weight", []Segment{{Lo: 0, Hi: 1, W: 0}}},
		{"negative-weight", []Segment{{Lo: 0, Hi: 1, W: -2}}},
		{"nan-weight", []Segment{{Lo: 0, Hi: 1, W: math.NaN()}}},
		{"inf-weight", []Segment{{Lo: 0, Hi: 1, W: math.Inf(1)}}},
		{"inverted", []Segment{{Lo: 2, Hi: 1, W: 1}}},
		{"nan-bound", []Segment{{Lo: math.NaN(), Hi: 1, W: 1}}},
		{"inf-bound", []Segment{{Lo: 0, Hi: math.Inf(1), W: 1}}},
	}
	for _, c := range cases {
		if _, err := NewPiecewise(c.segs); err == nil {
			t.Errorf("%s: NewPiecewise accepted invalid segments", c.name)
		}
	}
}

func TestPiecewiseSingleUniform(t *testing.T) {
	p, err := NewPiecewise([]Segment{{Lo: 10, Hi: 20, W: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ u, want float64 }{
		{0, 10}, {0.5, 15}, {0.25, 12.5}, {0.999, 19.99},
	} {
		if got := p.Quantile(c.u); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.u, got, c.want)
		}
	}
	if m := p.Mean(); math.Abs(m-15) > 1e-12 {
		t.Errorf("Mean = %g, want 15", m)
	}
}

func TestPiecewisePointMasses(t *testing.T) {
	// Discrete distribution: 15 w.p. 0.25, 25 w.p. 0.5, 35 w.p. 0.25.
	p, err := NewPiecewise([]Segment{
		{Lo: 15, Hi: 15, W: 1},
		{Lo: 25, Hi: 25, W: 2},
		{Lo: 35, Hi: 35, W: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ u, want float64 }{
		{0, 15}, {0.24, 15}, {0.25, 25}, {0.5, 25}, {0.74, 25}, {0.75, 35}, {0.99, 35},
	} {
		if got := p.Quantile(c.u); got != c.want {
			t.Errorf("Quantile(%g) = %g, want %g", c.u, got, c.want)
		}
	}
	if m := p.Mean(); math.Abs(m-25) > 1e-12 {
		t.Errorf("Mean = %g, want 25", m)
	}
}

func TestPiecewiseMixtureWeights(t *testing.T) {
	// 70% in [0,1], 30% in [10,20]: a fine grid of quantiles must land in
	// each segment in proportion to its weight.
	p, err := NewPiecewise([]Segment{
		{Lo: 0, Hi: 1, W: 0.7},
		{Lo: 10, Hi: 20, W: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	low := 0
	for i := 0; i < n; i++ {
		u := (float64(i) + 0.5) / n
		v := p.Quantile(u)
		switch {
		case v >= 0 && v <= 1:
			low++
		case v >= 10 && v <= 20:
		default:
			t.Fatalf("Quantile(%g) = %g outside both segments", u, v)
		}
	}
	if frac := float64(low) / n; math.Abs(frac-0.7) > 0.001 {
		t.Errorf("low-segment mass %.4f, want 0.70", frac)
	}
	if m := p.Mean(); math.Abs(m-(0.7*0.5+0.3*15)) > 1e-12 {
		t.Errorf("Mean = %g", m)
	}
}

func TestPiecewiseMonotoneAndClamped(t *testing.T) {
	p, err := NewPiecewise([]Segment{
		{Lo: 1, Hi: 2, W: 1},
		{Lo: 5, Hi: 5, W: 1},
		{Lo: 7, Hi: 9, W: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for i := 0; i <= 1000; i++ {
		v := p.Quantile(float64(i) / 1000)
		if v < prev {
			t.Fatalf("Quantile not monotone at u=%g: %g < %g", float64(i)/1000, v, prev)
		}
		prev = v
	}
	lo, hi := p.Bounds()
	if lo != 1 || hi != 9 {
		t.Fatalf("Bounds = (%g, %g), want (1, 9)", lo, hi)
	}
	// Out-of-range and NaN inputs clamp to the support rather than panic.
	if v := p.Quantile(-3); v != 1 {
		t.Errorf("Quantile(-3) = %g, want 1", v)
	}
	if v := p.Quantile(2); v < lo || v > hi {
		t.Errorf("Quantile(2) = %g outside support", v)
	}
	if v := p.Quantile(math.NaN()); v != 1 {
		t.Errorf("Quantile(NaN) = %g, want 1", v)
	}
}

func TestPiecewiseSegmentsCopy(t *testing.T) {
	segs := []Segment{{Lo: 0, Hi: 1, W: 1}}
	p, err := NewPiecewise(segs)
	if err != nil {
		t.Fatal(err)
	}
	segs[0].Lo = 99 // mutating the input must not reach the distribution
	got := p.Segments()
	if got[0].Lo != 0 {
		t.Fatal("NewPiecewise aliased its input slice")
	}
	got[0].Hi = 99 // mutating the output must not either
	if p.Quantile(0.999) > 1 {
		t.Fatal("Segments leaked internal state")
	}
}
