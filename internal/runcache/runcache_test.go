package runcache

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded; want error")
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "cache")
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", c.Dir(), dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("cache directory not created: %v", err)
	}
}

func TestOpenFailsOnUnwritablePath(t *testing.T) {
	// A regular file where a directory is needed makes MkdirAll fail.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(filepath.Join(file, "cache")); err == nil {
		t.Fatal("Open under a regular file succeeded; want error")
	}
}

func TestGetPutRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Add("run", "42").Key()
	payload := []byte("the run result")

	if _, ok := c.Get(k); ok {
		t.Fatal("Get before Put reported a hit")
	}
	if err := c.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(k)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get after Put = %q, %v; want %q, true", got, ok, payload)
	}

	s := c.Stats()
	want := Stats{Hits: 1, Misses: 1, Stored: 1,
		BytesRead: uint64(len(payload)), BytesWritten: uint64(len(payload))}
	if s != want {
		t.Fatalf("Stats = %+v, want %+v", s, want)
	}
}

func TestEntrySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	k := NewKey().Add("persisted").Key()
	c1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Put(k, []byte("blob")); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := c2.Get(k); !ok || string(got) != "blob" {
		t.Fatalf("entry did not survive reopen: %q, %v", got, ok)
	}
	if n, err := c2.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1", n, err)
	}
}

func TestPutOverwritesExisting(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Add("k").Key()
	if err := c.Put(k, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.Get(k); string(got) != "second" {
		t.Fatalf("Get = %q after overwrite, want %q", got, "second")
	}
	if n, _ := c.Len(); n != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", n)
	}
}

func TestDiscardRemovesEntryAndReclassifies(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Add("corrupt").Key()
	if err := c.Put(k, []byte("torn entry")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(k); !ok {
		t.Fatal("expected a hit before Discard")
	}

	c.Discard(k)
	if _, ok := c.Get(k); ok {
		t.Fatal("entry still present after Discard")
	}
	s := c.Stats()
	// The Get hit was reclassified: 0 hits, 2 misses (reclassified +
	// post-discard probe), 1 error.
	if s.Hits != 0 || s.Misses != 2 || s.Errors != 1 {
		t.Fatalf("Stats after Discard = %+v; want 0 hits, 2 misses, 1 error", s)
	}

	// Discard without a preceding hit must not underflow the counter.
	c.Discard(NewKey().Add("never stored").Key())
	if s := c.Stats(); s.Hits != 0 {
		t.Fatalf("Hits underflowed to %d", s.Hits)
	}
}

func TestBypassCounts(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Bypass()
	c.Bypass()
	if s := c.Stats(); s.Bypassed != 2 || s.Lookups() != 0 {
		t.Fatalf("Stats = %+v; want 2 bypassed, 0 lookups", s)
	}
}

func TestPutErrorCounts(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Add("x").Key()
	// Occupy the shard directory's name with a regular file so the
	// shard MkdirAll inside Put fails.
	shard := filepath.Dir(c.path(k))
	if err := os.WriteFile(shard, []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(k, []byte("data")); err == nil {
		t.Fatal("Put into blocked shard succeeded; want error")
	}
	if s := c.Stats(); s.Errors != 1 || s.Stored != 0 {
		t.Fatalf("Stats = %+v; want 1 error, 0 stored", s)
	}
}

func TestShardedLayout(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey().Add("layout").Key()
	if err := c.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	hx := k.String()
	want := filepath.Join(c.Dir(), hx[:2], hx+".blob")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("entry not at sharded path %s: %v", want, err)
	}
	if len(hx) != 64 {
		t.Fatalf("Key.String() length = %d, want 64 hex chars", len(hx))
	}
}

func TestLenCountsOnlyBlobs(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := c.Put(NewKey().Addf("entry %d", i).Key(), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	// A stray temp file (e.g. left by a kill between write and rename)
	// must not count as an entry.
	if err := os.WriteFile(filepath.Join(dir, "put-stray.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Len(); err != nil || n != 5 {
		t.Fatalf("Len = %d, %v; want 5", n, err)
	}
}

func TestKeyBuilderNoConcatenationCollisions(t *testing.T) {
	// Length prefixes make part boundaries part of the identity.
	a := NewKey().Add("ab", "c").Key()
	b := NewKey().Add("a", "bc").Key()
	if a == b {
		t.Fatal("Add(\"ab\",\"c\") collided with Add(\"a\",\"bc\")")
	}
	// Order matters.
	if NewKey().Add("x", "y").Key() == NewKey().Add("y", "x").Key() {
		t.Fatal("part order did not change the key")
	}
	// Addf and Add of the same rendered string agree.
	if NewKey().Addf("n=%d", 7).Key() != NewKey().Add("n=7").Key() {
		t.Fatal("Addf diverged from Add of the same string")
	}
	// Same parts, same key (determinism).
	if NewKey().Add("ab", "c").Key() != a {
		t.Fatal("identical derivations produced different keys")
	}
}

func TestStatsSubAndHitRate(t *testing.T) {
	before := Stats{Hits: 2, Misses: 1, Stored: 1, BytesRead: 10, BytesWritten: 20}
	after := Stats{Hits: 5, Misses: 2, Stored: 2, Bypassed: 1, Errors: 1, BytesRead: 40, BytesWritten: 50}
	d := after.Sub(before)
	want := Stats{Hits: 3, Misses: 1, Stored: 1, Bypassed: 1, Errors: 1, BytesRead: 30, BytesWritten: 30}
	if d != want {
		t.Fatalf("Sub = %+v, want %+v", d, want)
	}
	if d.Lookups() != 4 {
		t.Fatalf("Lookups = %d, want 4", d.Lookups())
	}
	if got := d.HitRate(); got != 75 {
		t.Fatalf("HitRate = %g, want 75", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatal("HitRate of zero stats should be 0")
	}
	wantStr := "4 lookups, 3 hits (hit rate 75.0%), 1 stored, 1 bypassed"
	if d.String() != wantStr {
		t.Fatalf("String = %q, want %q", d.String(), wantStr)
	}
}

func TestConcurrentUse(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, entries = 8, 32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < entries; i++ {
				k := NewKey().Addf("entry %d", i).Key()
				payload := []byte(fmt.Sprintf("payload %d", i))
				if data, ok := c.Get(k); ok {
					if !bytes.Equal(data, payload) {
						t.Errorf("worker %d read torn entry %d: %q", w, i, data)
					}
					continue
				}
				if err := c.Put(k, payload); err != nil {
					t.Errorf("worker %d put %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	if n, err := c.Len(); err != nil || n != entries {
		t.Fatalf("Len = %d, %v; want %d", n, err, entries)
	}
	s := c.Stats()
	if s.Lookups() != workers*entries {
		t.Fatalf("Lookups = %d, want %d", s.Lookups(), workers*entries)
	}
	if s.Errors != 0 {
		t.Fatalf("Errors = %d, want 0", s.Errors)
	}
}

func TestCacheHandleGobTransparent(t *testing.T) {
	// Configs carrying a *Cache handle must pass through gob: the handle
	// field contributes nothing and decodes as nil/zero.
	type carrier struct {
		Name  string
		Cache *Cache
	}
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(carrier{Name: "x", Cache: c}); err != nil {
		t.Fatalf("encode with live handle: %v", err)
	}
	var got carrier
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Name != "x" {
		t.Fatalf("payload fields lost: %+v", got)
	}
	if got.Cache != nil && got.Cache.Dir() != "" {
		t.Fatalf("handle round-tripped state: %+v", got.Cache)
	}
}
