package runcache

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestClaimAcquireExclusive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0000.claim")

	c1, ok, err := AcquireClaim(path, "w1", time.Minute)
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	if c1.Owner() != "w1" {
		t.Fatalf("owner = %q", c1.Owner())
	}

	// A second worker must be refused while the lease is live.
	if _, ok, err := AcquireClaim(path, "w2", time.Minute); err != nil || ok {
		t.Fatalf("second acquire: ok=%v err=%v; want refused", ok, err)
	}

	info, found, err := ReadClaim(path)
	if err != nil || !found {
		t.Fatalf("ReadClaim: found=%v err=%v", found, err)
	}
	if info.Owner != "w1" || info.PID != os.Getpid() {
		t.Fatalf("claim info = %+v", info)
	}
	if info.Expired(time.Now()) {
		t.Fatal("fresh claim reads as expired")
	}

	if err := c1.Release(); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := ReadClaim(path); found {
		t.Fatal("claim file survived Release")
	}
	// Released claims are re-acquirable.
	if _, ok, err := AcquireClaim(path, "w2", time.Minute); err != nil || !ok {
		t.Fatalf("acquire after release: ok=%v err=%v", ok, err)
	}
}

func TestClaimStealAfterExpiry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0001.claim")

	// A dead worker: claim acquired with an already-past lease.
	if _, ok, err := AcquireClaim(path, "dead", -time.Second); err != nil || !ok {
		t.Fatalf("seed acquire: ok=%v err=%v", ok, err)
	}

	c2, ok, err := AcquireClaim(path, "alive", time.Minute)
	if err != nil || !ok {
		t.Fatalf("steal: ok=%v err=%v; want stolen", ok, err)
	}
	info, _, _ := ReadClaim(path)
	if info.Owner != "alive" {
		t.Fatalf("post-steal owner = %q", info.Owner)
	}

	// Renew pushes the deadline out; the claim stays unstealable.
	if err := c2.Renew(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := AcquireClaim(path, "vulture", time.Minute); ok {
		t.Fatal("renewed claim was stolen")
	}
}

func TestClaimStealRaceHasOneWinner(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "shard-0002.claim")
	if _, ok, err := AcquireClaim(path, "dead", -time.Second); err != nil || !ok {
		t.Fatalf("seed acquire: ok=%v err=%v", ok, err)
	}

	// Many workers race to steal the expired claim. At least one must win,
	// and the file must end owned by a winner (atomic rename: no torn or
	// mixed contents).
	const racers = 16
	winners := make(map[string]bool)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		owner := string(rune('a' + i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, ok, err := AcquireClaim(path, owner, time.Minute); err == nil && ok {
				mu.Lock()
				winners[owner] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(winners) == 0 {
		t.Fatal("no racer stole the expired claim")
	}
	info, found, err := ReadClaim(path)
	if err != nil || !found {
		t.Fatalf("post-race ReadClaim: found=%v err=%v", found, err)
	}
	if !winners[info.Owner] {
		t.Fatalf("file owned by %q, which did not report winning", info.Owner)
	}
}

func TestClaimTornFileIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard-0003.claim")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadClaim(path); err == nil {
		t.Fatal("torn claim file read without error")
	}
	// Acquire must surface the error, not silently steal.
	if _, ok, err := AcquireClaim(path, "w", time.Minute); err == nil || ok {
		t.Fatalf("acquire over torn claim: ok=%v err=%v; want error", ok, err)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Stored: 3, Bypassed: 4, Errors: 5, BytesRead: 6, BytesWritten: 7}
	b := Stats{Hits: 10, Misses: 20, Stored: 30, Bypassed: 40, Errors: 50, BytesRead: 60, BytesWritten: 70}
	got := a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Stored: 33, Bypassed: 44, Errors: 55, BytesRead: 66, BytesWritten: 77}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
	// Add and Sub are inverses.
	if got.Sub(b) != a {
		t.Fatal("Add then Sub did not round-trip")
	}
}

func TestStatsMarshalJSON(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Stored: 1, Bypassed: 2}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["lookups"] != float64(4) || m["hit_rate_pct"] != float64(75) {
		t.Fatalf("derived fields = %v / %v", m["lookups"], m["hit_rate_pct"])
	}
	// The derived keys decode back into a plain Stats without error.
	var back Stats
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %+v != %+v", back, s)
	}
}

// TestClaimPathErrors drives the filesystem-error returns: acquiring in a
// directory that does not exist fails outright (not "held"), and renewing
// a claim whose directory vanished surfaces the write error.
func TestClaimPathErrors(t *testing.T) {
	dir := t.TempDir()
	gone := filepath.Join(dir, "nonexistent", "shard-0000.claim")
	if _, ok, err := AcquireClaim(gone, "w1", time.Minute); err == nil || ok {
		t.Fatalf("acquire in missing dir: ok=%v err=%v; want error", ok, err)
	}

	sub := filepath.Join(dir, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	c, ok, err := AcquireClaim(filepath.Join(sub, "shard-0001.claim"), "w1", time.Minute)
	if err != nil || !ok {
		t.Fatalf("acquire: ok=%v err=%v", ok, err)
	}
	if err := os.RemoveAll(sub); err != nil {
		t.Fatal(err)
	}
	if err := c.Renew(time.Minute); err == nil {
		t.Fatal("renew with the claim directory gone succeeded")
	}
	// Release of an already-gone claim is a no-op, not an error.
	if err := c.Release(); err != nil {
		t.Fatal(err)
	}
}

func TestClaimInfoRoundTrip(t *testing.T) {
	info := ClaimInfo{Owner: "w9", PID: 1234, Expires: time.Now().Add(time.Hour).UnixNano()}
	data, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var back ClaimInfo
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != info {
		t.Fatalf("round trip: %+v != %+v", back, info)
	}
}
