// Claim files give cooperating processes a way to partition work over a
// shared cache directory without ever locking the blobs themselves. A claim
// is a small JSON file created atomically (O_EXCL, or temp+rename when
// stealing an expired one) that says "this worker is computing this unit
// until this deadline". Claims are advisory: they keep workers off each
// other's shards in the common case, but correctness never depends on them
// — the blobs are content-addressed and written atomically, so two workers
// that do end up racing the same unit merely duplicate work and produce
// identical entries. A worker that dies (SIGKILL, OOM, power loss) simply
// stops renewing; once the lease expires, any other worker steals the
// claim and re-executes the unit, replaying whatever runs the dead worker
// already cached.
package runcache

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ClaimInfo is the on-disk payload of one claim file.
type ClaimInfo struct {
	// Owner identifies the claiming worker (unique per worker process).
	Owner string `json:"owner"`
	// PID is the claiming process, recorded for post-mortem debugging only;
	// expiry decisions use the lease deadline, never PID liveness (the PID
	// may belong to a different host sharing the cache directory).
	PID int `json:"pid"`
	// Expires is the lease deadline in Unix nanoseconds. A claim whose
	// deadline has passed is stale and may be stolen.
	Expires int64 `json:"expires_unix_ns"`
}

// Expired reports whether the lease deadline has passed at now.
func (c ClaimInfo) Expired(now time.Time) bool {
	return now.UnixNano() > c.Expires
}

// Claim is a held lease on one work unit.
type Claim struct {
	path  string
	owner string
}

// Owner returns the claim's owner string.
func (c *Claim) Owner() string { return c.owner }

// writeClaimTo writes info as JSON to path via temp+rename in the same
// directory, so readers never observe a torn claim.
func writeClaimTo(path string, info ClaimInfo) error {
	data, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("runcache: claim: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "claim-*.tmp")
	if err != nil {
		return fmt.Errorf("runcache: claim: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: claim: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: claim: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: claim: %w", err)
	}
	return nil
}

// ReadClaim reads the claim file at path. ok is false when no claim exists;
// an unreadable or torn claim file is reported as an error (callers treat
// it as held — it will be stolen once its mtime-independent lease encoding
// is readable again or the file is removed).
func ReadClaim(path string) (info ClaimInfo, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return ClaimInfo{}, false, nil
	}
	if err != nil {
		return ClaimInfo{}, false, fmt.Errorf("runcache: claim: %w", err)
	}
	if err := json.Unmarshal(data, &info); err != nil {
		return ClaimInfo{}, false, fmt.Errorf("runcache: claim %s: %w", path, err)
	}
	return info, true, nil
}

// AcquireClaim attempts to take the claim at path for owner with the given
// lease. It succeeds when no claim exists (created with O_EXCL, so exactly
// one of several simultaneous creators wins) or when the existing claim's
// lease has expired (stolen via temp+rename, then re-read to confirm the
// steal was not itself raced). ok is false when the claim is validly held
// by someone else.
func AcquireClaim(path, owner string, ttl time.Duration) (claim *Claim, ok bool, err error) {
	info := ClaimInfo{Owner: owner, PID: os.Getpid(), Expires: time.Now().Add(ttl).UnixNano()}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	switch {
	case err == nil:
		data, merr := json.Marshal(info)
		if merr == nil {
			_, merr = f.Write(data)
		}
		if cerr := f.Close(); merr == nil {
			merr = cerr
		}
		if merr != nil {
			os.Remove(path)
			return nil, false, fmt.Errorf("runcache: claim: %w", merr)
		}
		return &Claim{path: path, owner: owner}, true, nil
	case !os.IsExist(err):
		return nil, false, fmt.Errorf("runcache: claim: %w", err)
	}

	// The claim exists. Steal it only if its lease has expired.
	existing, found, err := ReadClaim(path)
	if err != nil {
		return nil, false, err
	}
	if found && !existing.Expired(time.Now()) {
		return nil, false, nil
	}
	// The holder is dead (or the claim vanished under us). Replace it
	// atomically, then re-read: if another worker stole it in the same
	// window, exactly one rename landed last and its owner reads back.
	if err := writeClaimTo(path, info); err != nil {
		return nil, false, err
	}
	confirm, found, err := ReadClaim(path)
	if err != nil {
		return nil, false, err
	}
	if !found || confirm.Owner != owner {
		return nil, false, nil // lost the steal race
	}
	return &Claim{path: path, owner: owner}, true, nil
}

// Renew extends the lease. The claim file is rewritten whole; a renewal of
// a claim that was meanwhile stolen (this worker stalled past its own
// lease) re-takes it, which is safe for the same reason stealing is: the
// protected work is idempotent.
func (c *Claim) Renew(ttl time.Duration) error {
	return writeClaimTo(c.path, ClaimInfo{
		Owner: c.owner, PID: os.Getpid(), Expires: time.Now().Add(ttl).UnixNano(),
	})
}

// Release removes the claim file. Releasing a claim someone else has since
// stolen removes their claim too — callers release only after publishing
// their result, at which point the unit's done-marker makes any claim
// irrelevant.
func (c *Claim) Release() error {
	if err := os.Remove(c.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("runcache: claim: %w", err)
	}
	return nil
}
