// Package runcache is a content-addressed, on-disk store for experiment
// artefacts. Entries are opaque byte blobs addressed by a 32-byte key the
// caller derives from everything that determines the blob's content (for
// run results: the canonical RunConfig serialisation, the seed, and the
// module version — see experiment.CacheKey and docs/ARCHITECTURE.md, "Run
// cache"). Because the simulator is a pure function of its config, a hit
// can be substituted for a run byte-for-byte; repeated campaigns become
// pure cache replay and an interrupted sweep resumes exactly where it
// stopped.
//
// The store is a plain directory tree — dir/ab/abcdef….blob, sharded on
// the first key byte so campaign-scale entry counts (hundreds to tens of
// thousands) never pile into one directory. Writes are atomic
// (temp file + rename), so a cache shared by concurrent sweep workers, or
// killed mid-write by Ctrl-C, never exposes a torn entry. All methods are
// safe for concurrent use.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Key addresses one cache entry: a SHA-256 over the entry's full identity.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the on-disk entry name.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// KeyBuilder accumulates the parts of an entry's identity into a Key.
// Every part is written length-prefixed, so distinct part sequences can
// never collide by concatenation ("ab"+"c" vs "a"+"bc").
type KeyBuilder struct {
	h hash.Hash
}

// NewKey starts a fresh key derivation.
func NewKey() *KeyBuilder { return &KeyBuilder{h: sha256.New()} }

// Add appends identity parts in order. Order matters: the same parts in a
// different order produce a different key.
func (b *KeyBuilder) Add(parts ...string) *KeyBuilder {
	for _, p := range parts {
		b.h.Write(strconv.AppendInt(nil, int64(len(p)), 10))
		b.h.Write([]byte{'\n'})
		b.h.Write([]byte(p))
	}
	return b
}

// Addf appends one fmt-rendered identity part.
func (b *KeyBuilder) Addf(format string, args ...any) *KeyBuilder {
	return b.Add(fmt.Sprintf(format, args...))
}

// Key finalises the derivation.
func (b *KeyBuilder) Key() Key {
	var k Key
	b.h.Sum(k[:0])
	return k
}

// Stats counts what the cache did since it was opened. Counters only ever
// increase; take deltas with Sub to scope them to one sweep or campaign.
type Stats struct {
	// Hits and Misses count Get outcomes; Stored counts completed Puts.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stored uint64 `json:"stored"`
	// Bypassed counts runs that were not cacheable at all (live probe
	// captures, packet taps, profile overrides) and never consulted the
	// store.
	Bypassed uint64 `json:"bypassed,omitempty"`
	// Errors counts I/O or decode failures. An unreadable entry is
	// counted both here and as a miss: the caller re-runs and overwrites.
	Errors uint64 `json:"errors,omitempty"`
	// BytesRead and BytesWritten meter entry payloads (not metadata).
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
}

// Add returns s + o counter-wise: the combined activity of two processes
// sharing one cache directory (e.g. campaign workers whose stats the
// coordinator folds together).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:         s.Hits + o.Hits,
		Misses:       s.Misses + o.Misses,
		Stored:       s.Stored + o.Stored,
		Bypassed:     s.Bypassed + o.Bypassed,
		Errors:       s.Errors + o.Errors,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
	}
}

// Sub returns s - o counter-wise: the activity between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		Hits:         s.Hits - o.Hits,
		Misses:       s.Misses - o.Misses,
		Stored:       s.Stored - o.Stored,
		Bypassed:     s.Bypassed - o.Bypassed,
		Errors:       s.Errors - o.Errors,
		BytesRead:    s.BytesRead - o.BytesRead,
		BytesWritten: s.BytesWritten - o.BytesWritten,
	}
}

// Lookups is the number of Get calls that reached the store.
func (s Stats) Lookups() uint64 { return s.Hits + s.Misses }

// HitRate is Hits/Lookups in percent; 0 when nothing was looked up.
func (s Stats) HitRate() float64 {
	if n := s.Lookups(); n > 0 {
		return 100 * float64(s.Hits) / float64(n)
	}
	return 0
}

// MarshalJSON serialises the counters plus the derived lookup count and hit
// rate, so telemetry consumers (the /snapshot endpoint, health timelines)
// get the headline figure without recomputing it. Decoding the result back
// into a Stats works with the default decoder — the derived keys have no
// matching field and are ignored.
func (s Stats) MarshalJSON() ([]byte, error) {
	type plain Stats // shed the method to avoid recursing
	return json.Marshal(struct {
		plain
		Lookups uint64  `json:"lookups"`
		HitRate float64 `json:"hit_rate_pct"`
	}{plain(s), s.Lookups(), s.HitRate()})
}

// String renders the stats the way the binaries report them, e.g.
// "54 lookups, 54 hits (hit rate 100.0%), 0 stored, 0 bypassed".
func (s Stats) String() string {
	return fmt.Sprintf("%d lookups, %d hits (hit rate %.1f%%), %d stored, %d bypassed",
		s.Lookups(), s.Hits, s.HitRate(), s.Stored, s.Bypassed)
}

// Cache is one on-disk store rooted at a directory.
type Cache struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open returns a cache rooted at dir, creating the directory if needed.
// Several processes may share one directory; entries are content-addressed
// and written atomically, so concurrent writers at worst duplicate work.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runcache: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runcache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// GobEncode and GobDecode make the type trivially encodable, so configs
// that carry a *Cache handle (e.g. experiment.SweepConfig) pass gob's
// eager field-type check. A cache is a live handle to a directory, not
// data: nothing is transmitted, and a decoded cache is the unusable zero
// value. Persisters strip the handle instead (see experiment.SaveSweep).
func (c *Cache) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder; see GobEncode.
func (c *Cache) GobDecode([]byte) error { return nil }

// path maps a key to its entry file, sharded on the first key byte.
func (c *Cache) path(k Key) string {
	hx := k.String()
	return filepath.Join(c.dir, hx[:2], hx+".blob")
}

// Get returns the entry stored under k, or (nil, false) when absent. An
// entry that exists but cannot be read counts as a miss plus an error, so
// callers recompute and overwrite rather than fail.
func (c *Cache) Get(k Key) ([]byte, bool) {
	data, err := os.ReadFile(c.path(k))
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case err == nil:
		c.stats.Hits++
		c.stats.BytesRead += uint64(len(data))
		return data, true
	case os.IsNotExist(err):
		c.stats.Misses++
		return nil, false
	default:
		c.stats.Misses++
		c.stats.Errors++
		return nil, false
	}
}

// Put stores data under k atomically: the blob is written to a temp file in
// the same shard directory and renamed into place, so readers (including
// concurrent sweep workers and future processes) only ever see complete
// entries. Writing the same key twice is harmless — content addressing
// means both writers carry identical bytes.
func (c *Cache) Put(k Key, data []byte) error {
	dst := c.path(k)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return c.putErr(err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*.tmp")
	if err != nil {
		return c.putErr(err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return c.putErr(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return c.putErr(err)
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return c.putErr(err)
	}
	c.mu.Lock()
	c.stats.Stored++
	c.stats.BytesWritten += uint64(len(data))
	c.mu.Unlock()
	return nil
}

func (c *Cache) putErr(err error) error {
	c.mu.Lock()
	c.stats.Errors++
	c.mu.Unlock()
	return fmt.Errorf("runcache: put: %w", err)
}

// Discard removes the entry under k and reclassifies the hit that fetched
// it as a miss plus an error. Callers use it when a fetched entry fails to
// decode (torn by a crash mid-rename on a non-atomic filesystem, or
// written by an incompatible build): the entry is deleted so the caller's
// recompute-and-Put overwrites it cleanly.
func (c *Cache) Discard(k Key) {
	_ = os.Remove(c.path(k))
	c.mu.Lock()
	if c.stats.Hits > 0 {
		c.stats.Hits--
	}
	c.stats.Misses++
	c.stats.Errors++
	c.mu.Unlock()
}

// Bypass records a run that could not use the cache at all (see
// Stats.Bypassed).
func (c *Cache) Bypass() {
	c.mu.Lock()
	c.stats.Bypassed++
	c.mu.Unlock()
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len walks the store and counts entries on disk — all of them, including
// ones written by earlier processes (unlike Stats, which only meters this
// Cache's activity).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".blob" {
			n++
		}
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("runcache: len: %w", err)
	}
	return n, nil
}
