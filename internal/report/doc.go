// Package report renders experiment results in the shapes the paper
// presents them: plain-text tables with mean (stddev) cells, text heatmaps
// of the fairness ratio (Figure 3), scatter summaries (Figure 4), and CSV
// series suitable for replotting Figure 2.
//
// The renderers are deliberately dumb — they format what they are given
// and never recompute statistics — so the same Table can be filled from a
// live sweep, a cached campaign, or a parsed run log and produce identical
// output.
package report
