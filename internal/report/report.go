package report

import (
	"fmt"
	"strings"
)

// Table is a simple text table builder with right-aligned numeric cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i := 0; i < len(t.Headers); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "  %*s", widths[i], c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// MeanStd formats "mean (std)" the way the paper's tables do.
func MeanStd(mean, std float64) string {
	return fmt.Sprintf("%.1f (%.1f)", mean, std)
}

// MeanStd2 formats with two decimals, for sub-unit quantities.
func MeanStd2(mean, std float64) string {
	return fmt.Sprintf("%.2f (%.2f)", mean, std)
}

// MeanCI formats "mean ± ci" with the 95% confidence half-width, the form
// the telemetry quantile tables report campaign means in.
func MeanCI(mean, ci float64) string {
	return fmt.Sprintf("%.2f ± %.2f", mean, ci)
}

// HeatCell renders one fairness-ratio cell with a temperature glyph, the
// text analogue of Figure 3's colour scale: '#' hot (game dominant) through
// '.' neutral to '~' cool (TCP dominant).
func HeatCell(v float64) string {
	glyph := "."
	switch {
	case v >= 0.35:
		glyph = "##"
	case v >= 0.15:
		glyph = "#"
	case v <= -0.35:
		glyph = "~~"
	case v <= -0.15:
		glyph = "~"
	}
	return fmt.Sprintf("%+.2f%-2s", v, glyph)
}

// Heatmap renders a Figure-3-style grid: rows are capacities, columns are
// queue multiples.
type Heatmap struct {
	Title string
	Rows  []string // row labels (capacities)
	Cols  []string // column labels (queue sizes)
	Cells [][]float64
}

// String renders the heatmap.
func (h *Heatmap) String() string {
	var b strings.Builder
	if h.Title != "" {
		b.WriteString(h.Title + "\n")
	}
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range h.Cols {
		fmt.Fprintf(&b, "  %-9s", c)
	}
	b.WriteString("\n")
	for i, r := range h.Rows {
		fmt.Fprintf(&b, "%-10s", r)
		for j := range h.Cols {
			v := 0.0
			if i < len(h.Cells) && j < len(h.Cells[i]) {
				v = h.Cells[i][j]
			}
			fmt.Fprintf(&b, "  %-9s", HeatCell(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders named columns of equal length as comma-separated values with
// a header row. Short columns render as empty cells.
func CSV(headers []string, cols [][]float64) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteString("\n")
	n := 0
	for _, c := range cols {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		for j, c := range cols {
			if j > 0 {
				b.WriteString(",")
			}
			if i < len(c) {
				fmt.Fprintf(&b, "%g", c[i])
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
