package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table 1: Bitrates", "System", "Bitrate (Mb/s)")
	tb.AddRow("Stadia", MeanStd(27.5, 2.3))
	tb.AddRow("GeForce", MeanStd(24.5, 1.8))
	tb.AddRow("Luna", MeanStd(23.7, 0.9))
	out := tb.String()
	for _, want := range []string{"Table 1", "System", "Stadia", "27.5 (2.3)", "Luna", "23.7 (0.9)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title + header + rule + 3 rows
		t.Errorf("table has %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("x")
	out := tb.String()
	if !strings.Contains(out, "x") {
		t.Error("short row dropped")
	}
}

func TestMeanStdFormats(t *testing.T) {
	if got := MeanStd(111.6, 12.4); got != "111.6 (12.4)" {
		t.Errorf("MeanStd = %q", got)
	}
	if got := MeanStd2(0.25, 0.01); got != "0.25 (0.01)" {
		t.Errorf("MeanStd2 = %q", got)
	}
}

func TestHeatCellGlyphs(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.62, "##"},
		{0.2, "#"},
		{0.0, "."},
		{-0.2, "~"},
		{-0.62, "~~"},
	}
	for _, c := range cases {
		got := HeatCell(c.v)
		if !strings.Contains(got, c.want) {
			t.Errorf("HeatCell(%v) = %q, want glyph %q", c.v, got, c.want)
		}
	}
}

func TestHeatmapRendering(t *testing.T) {
	h := &Heatmap{
		Title: "stadia vs cubic",
		Rows:  []string{"35 Mb/s", "25 Mb/s", "15 Mb/s"},
		Cols:  []string{"0.5x", "2x", "7x"},
		Cells: [][]float64{{0.5, 0.3, -0.2}, {0.4, 0.2, -0.3}, {0.2, 0.1, -0.25}},
	}
	out := h.String()
	for _, want := range []string{"stadia vs cubic", "35 Mb/s", "0.5x", "+0.50", "-0.30"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	out := CSV([]string{"t", "a", "b"}, [][]float64{{0, 0.5}, {1, 2}, {3}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "0,1,3" {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "0.5,2," {
		t.Errorf("row 2 = %q", lines[2])
	}
}
