package experiment

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/dash"
	"repro/internal/gamestream"
	"repro/internal/iperf"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tcp"
	"repro/internal/trace"
)

// Flow identifier bases for population slots and extra game streams. They
// sit far above the legacy competitor IDs (flowIperf + 10·i), so existing
// mixed-traffic runs keep their exact flow numbering.
const (
	popFlowBase    packet.FlowID = 1000
	streamFlowBase packet.FlowID = 600
)

// paretoShapeDefault is the tail index of slot ON durations. 1.5 is the
// classic heavy-tailed traffic value: finite mean, infinite variance, so a
// few long-lived "elephant" arrivals coexist with many short ones.
const paretoShapeDefault = 1.5

// starvedShareFrac marks a flow as starved when its fairness-window
// throughput falls below this fraction of the equal share.
const starvedShareFrac = 0.05

// FlowPopulation describes an N-flow bottleneck scenario: M competing flow
// slots cycling through ON/OFF periods with heavy-tailed ON durations, plus
// K additional always-on game streams next to the primary one. The zero
// value disables the population entirely, leaving the classic 1-vs-1 (or
// explicit Competitors mix) topology untouched.
//
// Each slot is a persistent set of endpoints reused across arrivals — the
// flyweight per-flow state story: a new "arrival" resets the slot's TCP
// connection in place (tcp.Sender.Reset / tcp.Receiver.ResetAt) instead of
// allocating new senders, scoreboards, and timers, so a 500-flow run costs
// 500 slot setups once, not one setup per arrival, and steady-state allocs
// stay independent of both flow count and packet count.
//
// All arrival/departure times are drawn up front from a single RNG fork
// taken only when the population is enabled, so clean runs keep their
// random streams — and therefore their runlogs — byte-identical.
type FlowPopulation struct {
	// Flows is the number of competing flow slots (M).
	Flows int
	// Streams is the number of additional concurrent game streams beyond
	// the primary (K-1 in the K-streams reading).
	Streams int
	// Mix lists the slot traffic models, cycled across slots. Empty means
	// every slot is an iperf bulk flow using the Condition's CCA (or cubic
	// when the condition is solo).
	Mix []Competitor
	// MeanOn is the mean ON (active) duration per arrival; ON durations
	// are Pareto with shape Shape. Zero defaults to a sixth of the
	// contention window, which scales with compressed timelines.
	MeanOn time.Duration
	// MeanOff is the mean OFF (idle) gap between a slot's departures and
	// its next arrival; OFF gaps are exponential. Zero defaults to half of
	// MeanOn.
	MeanOff time.Duration
	// Shape is the Pareto tail index for ON durations (>1 for a finite
	// mean); zero defaults to 1.5.
	Shape float64
}

// Enabled reports whether the population changes the topology at all.
func (p FlowPopulation) Enabled() bool { return p.Flows > 0 || p.Streams > 0 }

// ParseMix parses a comma-separated population mix spec into competitors.
// Each entry is kind[:cca] with kind one of iperf, dash, videocall — e.g.
// "iperf:cubic,iperf:bbr,dash,videocall". TCP kinds default to cubic.
func ParseMix(spec string) ([]Competitor, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var mix []Competitor
	for _, entry := range strings.Split(spec, ",") {
		kind, cca, _ := strings.Cut(strings.TrimSpace(entry), ":")
		switch kind {
		case CompIperf, CompDash:
			if cca == "" {
				cca = "cubic"
			}
		case CompVideoCall:
			if cca != "" {
				return nil, fmt.Errorf("experiment: mix entry %q: videocall takes no CCA", entry)
			}
		default:
			return nil, fmt.Errorf("experiment: mix entry %q: unknown kind (want iperf, dash, or videocall)", entry)
		}
		mix = append(mix, Competitor{Kind: kind, CCA: cca})
	}
	return mix, nil
}

// withDefaults resolves zero fields against the contention window span.
func (p FlowPopulation) withDefaults(span time.Duration) FlowPopulation {
	if p.MeanOn <= 0 {
		p.MeanOn = span / 6
	}
	if p.MeanOff <= 0 {
		p.MeanOff = p.MeanOn / 2
	}
	if p.Shape <= 1 {
		p.Shape = paretoShapeDefault
	}
	return p
}

// String renders the population compactly for logs and tables, e.g.
// "flows=32(iperf:cubic)/streams=2/on=30s/off=15s/a=1.5". The zero value
// renders as "none".
func (p FlowPopulation) String() string {
	if !p.Enabled() {
		return "none"
	}
	s := fmt.Sprintf("flows=%d", p.Flows)
	if len(p.Mix) > 0 {
		s += "("
		for i, m := range p.Mix {
			if i > 0 {
				s += ","
			}
			s += m.Kind
			if m.CCA != "" {
				s += ":" + m.CCA
			}
		}
		s += ")"
	}
	if p.Streams > 0 {
		s += fmt.Sprintf("/streams=%d", p.Streams)
	}
	if p.MeanOn > 0 {
		s += fmt.Sprintf("/on=%s", p.MeanOn)
	}
	if p.MeanOff > 0 {
		s += fmt.Sprintf("/off=%s", p.MeanOff)
	}
	if p.Shape > 0 {
		s += fmt.Sprintf("/a=%.2g", p.Shape)
	}
	return s
}

// FlowStats is one population member's end-of-run summary.
type FlowStats struct {
	// Kind is "iperf", "dash", "videocall", or "stream" (extra game
	// stream).
	Kind string
	// CCA is the TCP congestion control for iperf/dash slots.
	CCA string
	// Flow is the slot's FlowID.
	Flow int
	// Arrivals counts ON transitions.
	Arrivals int
	// ActiveSec is the cumulative ON time in seconds.
	ActiveSec float64
	// MeanMbps is delivered throughput averaged over the active time.
	MeanMbps float64
	// SRTTms is the last smoothed RTT observed at a departure (or run
	// end), milliseconds; 0 for non-TCP slots.
	SRTTms float64
}

// FlowSummary aggregates cross-flow fairness and starvation metrics over
// the paper's fairness window.
type FlowSummary struct {
	// Flows and Streams echo the population configuration (Streams counts
	// the primary game stream too).
	Flows   int
	Streams int
	// Active is the number of flows included in the fairness accounting:
	// the game streams plus every slot that delivered bytes inside the
	// fairness window.
	Active int
	// Jain is Jain's fairness index over the included flows' window
	// throughputs (1 = perfectly equal shares).
	Jain float64
	// TputP10/P50/P90Mbps are per-flow window-throughput quantiles.
	TputP10Mbps float64
	TputP50Mbps float64
	TputP90Mbps float64
	// RTTInflP10/P50/P90 are smoothed-RTT inflation quantiles over TCP
	// slots (SRTT divided by the configured base RTT; 1.0 = no queueing).
	RTTInflP10 float64
	RTTInflP50 float64
	RTTInflP90 float64
	// Starved counts included flows whose window throughput fell below
	// 5% of the equal share.
	Starved int
}

// popSlot is one competing-flow slot: endpoints built once, reused across
// every arrival.
type popSlot struct {
	kind string
	cca  string
	flow packet.FlowID
	eng  *sim.Engine

	bulk *iperf.Flow
	sess *dash.Session
	vsrv *gamestream.Server

	on       bool
	lastOn   sim.Time
	active   time.Duration
	arrivals int
	srttMS   float64
}

// popSlotStart and popSlotStop are the shared schedule callbacks: every
// arrival/departure event across the whole population carries one of
// these two functions plus its slot pointer, so scheduling a slot's
// entire ON/OFF history allocates no closures at all.
func popSlotStart(a any) { sl := a.(*popSlot); sl.start(sl.eng.Now()) }

func popSlotStop(a any) { sl := a.(*popSlot); sl.stop(sl.eng.Now()) }

// start activates the slot (an arrival).
func (sl *popSlot) start(now sim.Time) {
	if sl.on {
		return
	}
	sl.on = true
	sl.lastOn = now
	sl.arrivals++
	switch {
	case sl.bulk != nil:
		sl.bulk.Restart(sl.cca)
	case sl.sess != nil:
		sl.sess.Start()
	case sl.vsrv != nil:
		sl.vsrv.Start()
	}
}

// stop idles the slot (a departure), sampling the TCP RTT estimator before
// it is reset by the next arrival.
func (sl *popSlot) stop(now sim.Time) {
	if !sl.on {
		return
	}
	sl.on = false
	sl.active += now.Sub(sl.lastOn)
	switch {
	case sl.bulk != nil:
		sl.bulk.Stop()
		sl.sampleSRTT(sl.bulk.Sender.SRTT())
	case sl.sess != nil:
		sl.sess.Stop()
		sl.sampleSRTT(sl.sess.Sender.SRTT())
	case sl.vsrv != nil:
		sl.vsrv.Stop()
	}
}

func (sl *popSlot) sampleSRTT(srtt time.Duration) {
	if srtt > 0 {
		sl.srttMS = float64(srtt) / float64(time.Millisecond)
	}
}

// population is the run-time state of a flow population inside one run.
type population struct {
	cfg     FlowPopulation
	slots   []*popSlot
	streams []packet.FlowID // extra game-stream flow IDs

	// slotStore and bulkStore are the bulk backing arrays the slot
	// pointers index into; binStore backs every iperf slot's goodput
	// bins. One allocation each, however many flows the population has.
	slotStore []popSlot
	bulkStore []iperf.Flow
	binStore  []int64
	// segPool/ackPool are the shared TCP freelists across all iperf
	// slots: records in circulation scale with concurrent in-flight
	// data, not with slot count.
	segPool tcp.SegPool
	ackPool tcp.AckPool
}

// popHosts carries the four endpoint hosts a population attaches to.
type popHosts struct {
	gameServer, gameClient   *netem.Host
	iperfServer, iperfClient *netem.Host
}

// buildPopulation wires the population into the topology and schedules
// every arrival and departure up front. rng must be a dedicated fork taken
// only for the population. Extra game streams run for the whole trace;
// slots churn inside [FlowStart, FlowStop].
func buildPopulation(eng *sim.Engine, cfg RunConfig, hosts popHosts, prb *probe.Probe, rng *sim.RNG) *population {
	winStart := sim.At(cfg.Timeline.FlowStart)
	winStop := sim.At(cfg.Timeline.FlowStop)
	span := cfg.Timeline.FlowStop - cfg.Timeline.FlowStart
	pcfg := cfg.Population.withDefaults(span)

	pop := &population{cfg: pcfg}

	// Extra always-on game streams share the game hosts; the primary
	// stream keeps flowGame and remains the one measured by GameMbps.
	for j := 0; j < pcfg.Streams; j++ {
		flow := streamFlowBase + packet.FlowID(j)
		var profile gamestream.Profile
		if cfg.Profile != nil {
			profile = *cfg.Profile
		} else {
			profile = gamestream.ProfileFor(cfg.System)
		}
		srv := gamestream.NewServer(hosts.gameServer, flow, addrGameClient, profile, rng.Fork())
		gamestream.NewClient(hosts.gameClient, flow, addrGameServer, profile)
		srv.Start()
		pop.streams = append(pop.streams, flow)
	}

	// Slot endpoints: one persistent set per slot, kinds cycled from the
	// mix. Slots are built in slot order and scheduled in slot order, so
	// the whole construction is a deterministic function of (cfg, seed).
	mix := pcfg.Mix
	if len(mix) == 0 {
		cca := cfg.CCA
		if cca == "" {
			cca = "cubic"
		}
		mix = []Competitor{{Kind: CompIperf, CCA: cca}}
	}
	// Slots, iperf endpoints, and goodput bins live in bulk arrays sized
	// up front: a 500-flow population costs a handful of allocations, not
	// a handful per slot. Slot pointers into slotStore are stable because
	// the array never grows.
	nIperf := 0
	for i := 0; i < pcfg.Flows; i++ {
		if mix[i%len(mix)].Kind == CompIperf {
			nIperf++
		}
	}
	pop.slotStore = make([]popSlot, pcfg.Flows)
	pop.bulkStore = make([]iperf.Flow, nIperf)
	binDur := sim.At(trace.DefaultBin)
	// Bins cover the whole trace, not just the contention window: flows
	// stop sending at FlowStop but in-flight data keeps delivering while
	// it drains, and a too-short carve would spill every late bin to the
	// heap.
	binsPer := int(sim.At(cfg.Timeline.TraceEnd)/binDur) + 2
	if nIperf > 0 {
		pop.binStore = make([]int64, nIperf*binsPer)
	}
	pop.slots = make([]*popSlot, 0, pcfg.Flows)

	// Controllers for iperf slots come from per-algorithm bulk arrays,
	// consumed in slot order.
	ccCount := make(map[string]int)
	for i := 0; i < pcfg.Flows; i++ {
		if m := mix[i%len(mix)]; m.Kind == CompIperf {
			ccCount[m.CCA]++
		}
	}
	ccByAlg := make(map[string][]tcp.CongestionControl, len(ccCount))
	for alg, n := range ccCount {
		ccByAlg[alg] = tcp.NewBulk(alg, n)
	}

	nextBulk := 0
	for i := 0; i < pcfg.Flows; i++ {
		m := mix[i%len(mix)]
		sl := &pop.slotStore[i]
		sl.kind, sl.cca, sl.flow, sl.eng = m.Kind, m.CCA, popFlowBase+packet.FlowID(i), eng
		switch m.Kind {
		case CompIperf:
			sl.bulk = &pop.bulkStore[nextBulk]
			ccs := ccByAlg[m.CCA]
			sl.bulk.InitWithCC(hosts.iperfServer, hosts.iperfClient, sl.flow, ccs[0], binDur)
			ccByAlg[m.CCA] = ccs[1:]
			sl.bulk.ShareSegPool(&pop.segPool, &pop.ackPool)
			// Carve this slot's bin capacity out of the bulk store; the
			// three-index slice pins cap so a (theoretical) overflow
			// spills to a fresh array instead of a neighbour's bins.
			sl.bulk.SetBinStore(pop.binStore[nextBulk*binsPer : nextBulk*binsPer : (nextBulk+1)*binsPer])
			nextBulk++
			if prb != nil {
				prb.AttachSender(fmt.Sprintf("pop-iperf-%s-%d", m.CCA, i), sl.bulk.Sender)
			}
		case CompDash:
			sl.sess = dash.New(hosts.iperfServer, hosts.iperfClient, sl.flow, dash.Config{CCA: m.CCA})
		case CompVideoCall:
			vp := gamestream.VideoCallProfile()
			sl.vsrv = gamestream.NewServer(hosts.iperfServer, sl.flow, addrIperfClient, vp, rng.Fork())
			gamestream.NewClient(hosts.iperfClient, sl.flow, addrIperfServer, vp)
		default:
			panic("experiment: unknown population kind " + m.Kind)
		}
		pop.slots = append(pop.slots, sl)

		// Draw the slot's full ON/OFF schedule now. Phases are staggered
		// by a uniform initial offset so the population doesn't arrive in
		// lockstep at FlowStart. The two shared callbacks serve every
		// period, so schedule length costs events, not closures.
		t := winStart.Add(time.Duration(rng.Float64() * float64(pcfg.MeanOn+pcfg.MeanOff)))
		for t < winStop {
			onDur := paretoDuration(rng, pcfg.MeanOn, pcfg.Shape)
			end := t.Add(onDur)
			if end > winStop {
				end = winStop
			}
			eng.ScheduleCallAt(t, popSlotStart, sl)
			eng.ScheduleCallAt(end, popSlotStop, sl)
			off := time.Duration(rng.Exp(pcfg.MeanOff.Seconds()) * float64(time.Second))
			t = end.Add(off)
		}
	}
	return pop
}

// paretoDuration draws a Pareto-distributed duration with the given mean
// and tail index: X = xm · U^(−1/α) with xm = mean·(α−1)/α. The draw is
// capped at 20× the mean so one arrival cannot swallow an entire long
// campaign window (the fairness window still sees plenty of churn).
func paretoDuration(rng *sim.RNG, mean time.Duration, shape float64) time.Duration {
	xm := float64(mean) * (shape - 1) / shape
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	d := xm * math.Pow(1/u, 1/shape)
	if max := 20 * float64(mean); d > max {
		d = max
	}
	return time.Duration(d)
}

// finish closes the activity accounting at run end, sampling RTT from
// slots still active.
func (pop *population) finish(end sim.Time) {
	for _, sl := range pop.slots {
		if sl.on {
			sl.active += end.Sub(sl.lastOn)
			sl.on = false
			switch {
			case sl.bulk != nil:
				sl.sampleSRTT(sl.bulk.Sender.SRTT())
			case sl.sess != nil:
				sl.sampleSRTT(sl.sess.Sender.SRTT())
			}
		}
	}
}

// stats produces the per-member summaries from the bottleneck capture.
// end is the trace end, normalising the always-on streams' means.
func (pop *population) stats(capture *trace.Capture, end sim.Time) []FlowStats {
	endSec := end.Duration().Seconds()
	out := make([]FlowStats, 0, len(pop.slots)+len(pop.streams))
	for _, flow := range pop.streams {
		ft := capture.Flow(flow)
		fs := FlowStats{Kind: "stream", Flow: int(flow), Arrivals: 1, ActiveSec: endSec}
		if endSec > 0 {
			fs.MeanMbps = float64(ft.Delivered) * 8 / endSec / 1e6
		}
		out = append(out, fs)
	}
	for _, sl := range pop.slots {
		ft := capture.Flow(sl.flow)
		fs := FlowStats{
			Kind:      sl.kind,
			CCA:       sl.cca,
			Flow:      int(sl.flow),
			Arrivals:  sl.arrivals,
			ActiveSec: sl.active.Seconds(),
			SRTTms:    sl.srttMS,
		}
		if fs.ActiveSec > 0 {
			fs.MeanMbps = float64(ft.Delivered) * 8 / fs.ActiveSec / 1e6
		}
		out = append(out, fs)
	}
	return out
}

// summarize computes the cross-flow fairness metrics over the fairness
// window [from, to). Game streams (primary plus extras) always count;
// slots count when they delivered bytes inside the window. trace duration
// normalisation is uniform, so an ON/OFF slot's low window average is the
// starvation signal, not an artefact.
func (pop *population) summarize(capture *trace.Capture, cfg RunConfig, from, to sim.Time) FlowSummary {
	sum := FlowSummary{Flows: pop.cfg.Flows, Streams: pop.cfg.Streams + 1}

	var tputs []float64
	add := func(flow packet.FlowID, always bool) {
		mbps := float64(capture.RateBetween(flow, from, to)) / 1e6
		if always || mbps > 0 {
			tputs = append(tputs, mbps)
		}
	}
	add(flowGame, true)
	for _, flow := range pop.streams {
		add(flow, true)
	}
	for _, sl := range pop.slots {
		add(sl.flow, false)
	}
	sum.Active = len(tputs)
	sum.Jain = metrics.JainIndex(tputs)
	tq := stats.Percentiles(tputs, 0.10, 0.50, 0.90)
	sum.TputP10Mbps, sum.TputP50Mbps, sum.TputP90Mbps = tq[0], tq[1], tq[2]

	fair := cfg.Capacity.Mbit() / float64(len(tputs))
	for _, v := range tputs {
		if v < fair*starvedShareFrac {
			sum.Starved++
		}
	}

	baseMS := float64(cfg.BaseRTT) / float64(time.Millisecond)
	var infl []float64
	for _, sl := range pop.slots {
		if sl.srttMS > 0 && baseMS > 0 {
			infl = append(infl, sl.srttMS/baseMS)
		}
	}
	if len(infl) > 0 {
		iq := stats.Percentiles(infl, 0.10, 0.50, 0.90)
		sum.RTTInflP10, sum.RTTInflP50, sum.RTTInflP90 = iq[0], iq[1], iq[2]
	}
	return sum
}
