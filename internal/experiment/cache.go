package experiment

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"runtime/debug"

	"repro/internal/runcache"
)

// cacheSchema versions the cache key layout and the stored run encoding.
// Bump it whenever run semantics change in a way the key fields cannot see
// (a profile recalibration, a new default, a persistence format change):
// every old entry then misses and is recomputed. See docs/ARCHITECTURE.md,
// "Run cache: the key contract".
const cacheSchema = "run-v4"

// cacheVersion is the module-version component of every cache key: the
// schema generation plus the main module's version and VCS revision when
// the build carries them. Two different builds of the simulator may
// legitimately produce different traces, so results they cache must never
// be confused — including the build identity in the key makes a stale
// cache directory merely cold, never wrong. Dev builds without VCS
// stamping (go test, go run) all read "(devel)" and share entries; the
// schema constant is the manual invalidation knob for those.
var cacheVersion = func() string {
	v := cacheSchema
	if bi, ok := debug.ReadBuildInfo(); ok {
		v += "/" + bi.Main.Path + "@" + bi.Main.Version
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v += "+" + s.Value
			}
		}
	}
	return v
}()

// Cacheable reports whether a run can be served from (and stored into) a
// run cache. Runs carrying live observers — a probe capture, a per-packet
// tap, a profile override — are excluded: their value is exactly the part
// of the run a stored RunResult does not round-trip. ForceImpairer runs
// are excluded too: they exist to differentially test the impairment
// stage, and serving them from the cache of their (equivalent) plain runs
// would erase exactly the difference under test.
func (c RunConfig) Cacheable() bool {
	return c.Probe == nil && c.OnPacket == nil && c.Profile == nil && !c.ForceImpairer
}

// CacheKey derives the content address of cfg's result: a SHA-256 over the
// canonical serialisation of every field that feeds the simulation (the
// full condition including impairments, the timeline, the seed, the path
// constants, competitors, and the retuning schedule) plus the module
// version. ok is false when the run is not Cacheable. Field values are
// written length-prefixed and in a fixed order, so the key is stable
// across processes and architectures.
func CacheKey(cfg RunConfig) (key runcache.Key, ok bool) {
	if !cfg.Cacheable() {
		return runcache.Key{}, false
	}
	cfg = cfg.Defaults()
	b := runcache.NewKey()
	b.Add(cacheVersion)
	// Condition coordinates. Scalars are rendered explicitly rather than
	// via Condition.String(), which elides disabled impairment fields.
	b.Add(string(cfg.System), cfg.CCA, cfg.AQM)
	b.Addf("cap=%d", int64(cfg.Capacity))
	b.Addf("qmult=%g", cfg.QueueMult)
	im := cfg.Impair
	b.Addf("impair=%s/%g/%g/%g/%g/%g/%d/%t/%g",
		im.LossModel, im.LossRate, im.GEGoodBad, im.GEBadGood,
		im.GELossGood, im.GELossBad, im.Jitter.Nanoseconds(), im.Reorder, im.Duplicate)
	// Run parameters.
	b.Addf("timeline=%d/%d/%d",
		cfg.Timeline.FlowStart.Nanoseconds(), cfg.Timeline.FlowStop.Nanoseconds(),
		cfg.Timeline.TraceEnd.Nanoseconds())
	b.Addf("seed=%d", cfg.Seed)
	b.Addf("rtt=%d burst=%d ping=%d",
		cfg.BaseRTT.Nanoseconds(), int64(cfg.Burst), cfg.PingInterval.Nanoseconds())
	b.Addf("competitors=%d", len(cfg.Competitors))
	for _, comp := range cfg.Competitors {
		b.Add(comp.Kind, comp.CCA)
	}
	// Flow population. Written unconditionally (the zero value included),
	// so a cached 1-vs-1 result can never be served for an N-flow run.
	pop := cfg.Population
	b.Addf("population=%d/%d/%d/%d/%g",
		pop.Flows, pop.Streams,
		pop.MeanOn.Nanoseconds(), pop.MeanOff.Nanoseconds(), pop.Shape)
	b.Addf("popmix=%d", len(pop.Mix))
	for _, m := range pop.Mix {
		b.Add(m.Kind, m.CCA)
	}
	b.Addf("schedule=%d", len(cfg.Schedule))
	for _, st := range cfg.Schedule {
		b.Addf("%d/%s/%d/%d/%g/%d",
			st.At.Nanoseconds(), st.Kind, int64(st.Rate),
			st.Delay.Nanoseconds(), st.LossRate, st.Jitter.Nanoseconds())
	}
	return b.Key(), true
}

// RunCached executes cfg through the cache: a hit decodes and returns the
// stored result (byte-identical to what the run would produce — the
// simulator is a pure function of cfg), a miss runs and stores. A nil
// cache, or an uncacheable cfg, degrades to a plain Run. hit reports
// whether the result came from the store.
func RunCached(c *runcache.Cache, cfg RunConfig) (res *RunResult, hit bool) {
	if c == nil {
		return Run(cfg), false
	}
	key, ok := CacheKey(cfg)
	if !ok {
		c.Bypass()
		return Run(cfg), false
	}
	if data, found := c.Get(key); found {
		if r, err := decodeRun(data); err == nil {
			return r, true
		}
		// A torn or stale-format entry: drop it and recompute below.
		c.Discard(key)
	}
	r := Run(cfg)
	if data, err := encodeRun(r); err == nil {
		// A full store failing (disk full, permissions) must not kill the
		// campaign; the run result is still good, the entry just stays
		// cold. The cache's Errors counter records the failure.
		_ = c.Put(key, data)
	}
	return r, false
}

// encodeRun renders a run result as the cache entry payload: gzipped gob of
// the same persisted form SaveSweep uses.
func encodeRun(r *RunResult) ([]byte, error) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(gz).Encode(toPersisted(r)); err != nil {
		return nil, fmt.Errorf("experiment: encode run: %w", err)
	}
	if err := gz.Close(); err != nil {
		return nil, fmt.Errorf("experiment: encode run: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeRun parses a cache entry payload back into a run result.
func decodeRun(data []byte) (*RunResult, error) {
	gz, err := gzip.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("experiment: decode run: %w", err)
	}
	var p persistedRun
	if err := gob.NewDecoder(gz).Decode(&p); err != nil {
		return nil, fmt.Errorf("experiment: decode run: %w", err)
	}
	// Require a clean gzip tail so a truncated entry cannot decode.
	if _, err := io.Copy(io.Discard, gz); err != nil {
		return nil, fmt.Errorf("experiment: decode run: %w", err)
	}
	return fromPersisted(&p), nil
}
