package experiment

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/netem"
	"repro/internal/units"
)

// Schedule step kinds: which bottleneck element a step retunes.
const (
	ScheduleRate   = "rate"   // shaper rate step (tc qdisc change tbf)
	ScheduleDelay  = "delay"  // one-way propagation delay change
	ScheduleLoss   = "loss"   // Bernoulli loss-rate change on the impairer
	ScheduleJitter = "jitter" // jitter-spread change on the impairer
	ScheduleDown   = "down"   // link flap: drop everything from here
	ScheduleUp     = "up"     // link restore
)

// ScheduleStep retunes one bottleneck element at a fixed trace offset,
// modelling mid-run condition changes (capacity drops, WiFi-like loss
// episodes, full link flaps) that a static grid condition cannot express.
// Exactly one of the value fields is meaningful, selected by Kind.
type ScheduleStep struct {
	At       time.Duration
	Kind     string
	Rate     units.Rate
	Delay    time.Duration
	LossRate float64
	Jitter   time.Duration
}

// String renders the step the way ParseSchedule accepts it.
func (s ScheduleStep) String() string {
	switch s.Kind {
	case ScheduleRate:
		return fmt.Sprintf("%v rate=%gmbit", s.At, s.Rate.Mbit())
	case ScheduleDelay:
		return fmt.Sprintf("%v delay=%v", s.At, s.Delay)
	case ScheduleLoss:
		return fmt.Sprintf("%v loss=%g%%", s.At, s.LossRate*100)
	case ScheduleJitter:
		return fmt.Sprintf("%v jitter=%v", s.At, s.Jitter)
	default:
		return fmt.Sprintf("%v %s", s.At, s.Kind)
	}
}

// ParseProb reads a probability given either as a percentage ("2%", "0.5%")
// or a plain fraction ("0.02").
func ParseProb(s string) (float64, error) { return parseProb(s) }

// ParseRate reads a rate given as "10mbit", "250kbit", or a bare number of
// Mb/s ("10").
func ParseRate(s string) (units.Rate, error) { return parseRate(s) }

// parseProb reads a probability given either as a percentage ("2%", "0.5%")
// or a plain fraction ("0.02").
func parseProb(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad probability %q", s)
	}
	if pct {
		v /= 100
	}
	// NaN slips past both range checks below; reject it explicitly.
	if math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %q outside [0,1]", s)
	}
	return v, nil
}

// parseRate reads a rate given as "10mbit", "250kbit", or a bare number of
// Mb/s ("10").
func parseRate(s string) (units.Rate, error) {
	ls := strings.ToLower(s)
	toRate := units.Mbps
	num := ls
	switch {
	case strings.HasSuffix(ls, "mbit"):
		num = strings.TrimSuffix(ls, "mbit")
	case strings.HasSuffix(ls, "kbit"):
		num = strings.TrimSuffix(ls, "kbit")
		toRate = units.Kbps
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("bad rate %q", s)
	}
	return toRate(v), nil
}

// ParseLoss fills the loss-model fields of an Impairment from a -loss flag
// value: "" or "none" (no loss), a Bernoulli probability ("2%", "0.02"), or
// a Gilbert-Elliott spec "ge:p=0.01,r=0.25[,good=0.001][,bad=0.9]" with the
// classic Gilbert per-state defaults when good/bad are omitted. Non-loss
// fields of im are left untouched.
func ParseLoss(spec string, im *netem.Impairment) error {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		im.LossModel = ""
		return nil
	}
	if after, ok := strings.CutPrefix(spec, "ge:"); ok {
		im.LossModel = netem.LossGE
		for _, kv := range strings.Split(after, ",") {
			k, v, found := strings.Cut(strings.TrimSpace(kv), "=")
			if !found {
				return fmt.Errorf("loss %q: want ge:p=...,r=...", spec)
			}
			p, err := parseProb(v)
			if err != nil {
				return fmt.Errorf("loss %q: %v", spec, err)
			}
			switch k {
			case "p":
				im.GEGoodBad = p
			case "r":
				im.GEBadGood = p
			case "good":
				im.GELossGood = p
			case "bad":
				im.GELossBad = p
			default:
				return fmt.Errorf("loss %q: unknown GE parameter %q", spec, k)
			}
		}
		if im.GEGoodBad == 0 {
			return fmt.Errorf("loss %q: GE model needs p > 0", spec)
		}
		return nil
	}
	p, err := parseProb(spec)
	if err != nil {
		return fmt.Errorf("loss %q: %v", spec, err)
	}
	im.LossModel = netem.LossBernoulli
	im.LossRate = p
	return nil
}

// ParseSchedule reads a -schedule flag value: semicolon-separated steps of
// the form "<offset> <kind>[=<value>]", e.g.
//
//	"15s rate=10mbit; 30s loss=2%; 45s down; 50s up; 60s jitter=3ms"
//
// Offsets are time.ParseDuration strings relative to trace start. Steps may
// be given in any order; they are returned sorted by offset (stable).
func ParseSchedule(spec string) ([]ScheduleStep, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var steps []ScheduleStep
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Fields(part)
		if len(fields) != 2 {
			return nil, fmt.Errorf("schedule step %q: want \"<offset> <kind>[=<value>]\"", part)
		}
		at, err := time.ParseDuration(fields[0])
		if err != nil || at < 0 {
			return nil, fmt.Errorf("schedule step %q: bad offset %q", part, fields[0])
		}
		kind, val, hasVal := strings.Cut(fields[1], "=")
		st := ScheduleStep{At: at, Kind: kind}
		switch kind {
		case ScheduleRate:
			if st.Rate, err = parseRate(val); err != nil {
				return nil, fmt.Errorf("schedule step %q: %v", part, err)
			}
		case ScheduleDelay:
			if st.Delay, err = time.ParseDuration(val); err != nil || st.Delay < 0 {
				return nil, fmt.Errorf("schedule step %q: bad delay %q", part, val)
			}
		case ScheduleLoss:
			if st.LossRate, err = parseProb(val); err != nil {
				return nil, fmt.Errorf("schedule step %q: %v", part, err)
			}
		case ScheduleJitter:
			if st.Jitter, err = time.ParseDuration(val); err != nil || st.Jitter < 0 {
				return nil, fmt.Errorf("schedule step %q: bad jitter %q", part, val)
			}
		case ScheduleDown, ScheduleUp:
			if hasVal {
				return nil, fmt.Errorf("schedule step %q: %s takes no value", part, kind)
			}
		default:
			return nil, fmt.Errorf("schedule step %q: unknown kind %q", part, kind)
		}
		steps = append(steps, st)
	}
	// Stable insertion sort by offset keeps equal-time steps in input order.
	for i := 1; i < len(steps); i++ {
		for j := i; j > 0 && steps[j].At < steps[j-1].At; j-- {
			steps[j], steps[j-1] = steps[j-1], steps[j]
		}
	}
	return steps, nil
}

// ScheduleString renders steps the way ParseSchedule accepts them.
func ScheduleString(steps []ScheduleStep) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "; ")
}
