package experiment

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/probe"
	"repro/internal/units"
)

var updateGolden = flag.Bool("update", false, "rewrite checked-in golden digests")

func TestParseLoss(t *testing.T) {
	cases := []struct {
		spec    string
		want    netem.Impairment
		wantErr bool
	}{
		{spec: "", want: netem.Impairment{}},
		{spec: "none", want: netem.Impairment{}},
		{spec: "2%", want: netem.Impairment{LossModel: netem.LossBernoulli, LossRate: 0.02}},
		{spec: "0.02", want: netem.Impairment{LossModel: netem.LossBernoulli, LossRate: 0.02}},
		{spec: "ge:p=0.01,r=0.25", want: netem.Impairment{LossModel: netem.LossGE, GEGoodBad: 0.01, GEBadGood: 0.25}},
		{spec: "ge:p=1%,r=25%,good=0.001,bad=0.9", want: netem.Impairment{
			LossModel: netem.LossGE, GEGoodBad: 0.01, GEBadGood: 0.25, GELossGood: 0.001, GELossBad: 0.9}},
		{spec: "150%", wantErr: true},
		{spec: "-0.1", wantErr: true},
		{spec: "abc", wantErr: true},
		{spec: "ge:r=0.25", wantErr: true},       // GE needs p > 0
		{spec: "ge:p=0.01,q=0.5", wantErr: true}, // unknown parameter
		{spec: "ge:p0.01", wantErr: true},        // missing '='
	}
	for _, tc := range cases {
		var im netem.Impairment
		err := ParseLoss(tc.spec, &im)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseLoss(%q): want error, got %+v", tc.spec, im)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLoss(%q): %v", tc.spec, err)
			continue
		}
		if im != tc.want {
			t.Errorf("ParseLoss(%q) = %+v, want %+v", tc.spec, im, tc.want)
		}
	}

	// ParseLoss must not clobber non-loss fields, and must clear a prior
	// loss model on "none".
	im := netem.Impairment{Jitter: 3 * time.Millisecond, Duplicate: 0.01}
	if err := ParseLoss("5%", &im); err != nil {
		t.Fatal(err)
	}
	if im.Jitter != 3*time.Millisecond || im.Duplicate != 0.01 || im.LossRate != 0.05 {
		t.Errorf("ParseLoss clobbered non-loss fields: %+v", im)
	}
	if err := ParseLoss("none", &im); err != nil {
		t.Fatal(err)
	}
	if im.LossModel != "" || im.Jitter != 3*time.Millisecond {
		t.Errorf("ParseLoss(none) wrong result: %+v", im)
	}
}

func TestParseProb(t *testing.T) {
	if p, err := ParseProb("1%"); err != nil || p != 0.01 {
		t.Errorf("ParseProb(1%%) = %v, %v", p, err)
	}
	if _, err := ParseProb("two"); err == nil {
		t.Error("ParseProb(two): want error")
	}
}

func TestParseSchedule(t *testing.T) {
	steps, err := ParseSchedule("30s loss=2%; 15s rate=10mbit; 45s down; 50s up; 60s jitter=3ms; 70s delay=20ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 6 {
		t.Fatalf("got %d steps", len(steps))
	}
	// Sorted by offset regardless of input order.
	for i := 1; i < len(steps); i++ {
		if steps[i].At < steps[i-1].At {
			t.Fatalf("steps not sorted: %v", steps)
		}
	}
	if steps[0].Kind != ScheduleRate || steps[0].Rate != units.Mbps(10) {
		t.Errorf("step 0 = %+v, want 15s rate=10mbit", steps[0])
	}
	if steps[1].Kind != ScheduleLoss || steps[1].LossRate != 0.02 {
		t.Errorf("step 1 = %+v, want 30s loss=2%%", steps[1])
	}

	// Round-trip: rendering and re-parsing reproduces the steps.
	again, err := ParseSchedule(ScheduleString(steps))
	if err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(again) != len(steps) {
		t.Fatalf("round-trip length %d != %d", len(again), len(steps))
	}
	for i := range steps {
		if again[i] != steps[i] {
			t.Errorf("round-trip step %d: %+v != %+v", i, again[i], steps[i])
		}
	}

	if s, err := ParseSchedule(""); err != nil || s != nil {
		t.Errorf("empty schedule: %v, %v", s, err)
	}
	for _, bad := range []string{
		"x rate=10mbit", // bad offset
		"10s warp=9",    // unknown kind
		"10s down=1",    // down takes no value
		"10s rate=fast", // bad rate
		"10s loss=2",    // probability outside [0,1]
		"10s",           // missing kind
		"-5s down",      // negative offset
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): want error", bad)
		}
	}
}

func TestConditionStringImpair(t *testing.T) {
	base := Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	plain := base.String()
	if strings.Contains(plain, "loss") {
		t.Fatalf("clean condition string mentions loss: %q", plain)
	}
	base.Impair = netem.Impairment{LossModel: netem.LossBernoulli, LossRate: 0.02, Jitter: 3 * time.Millisecond}
	got := base.String()
	if !strings.HasPrefix(got, plain+"/") || !strings.Contains(got, "loss2%") || !strings.Contains(got, "jit3ms") {
		t.Errorf("impaired condition string = %q", got)
	}
}

// impairedRun is the golden-seed workload for the impairment determinism
// contract: GE loss, reordering jitter, duplicates, and a schedule touching
// every retunable element (rate step, extra loss, a flap, a delay change),
// all under full probe capture.
func impairedRun(seed uint64) *RunResult {
	sched, err := ParseSchedule("8s rate=15mbit; 15s loss=3%; 20s down; 21s up; 30s delay=20ms; 35s jitter=1ms")
	if err != nil {
		panic(err)
	}
	return Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
			Impair: netem.Impairment{
				LossModel: netem.LossGE,
				GEGoodBad: 0.005, GEBadGood: 0.3,
				Jitter:    2 * time.Millisecond,
				Reorder:   true,
				Duplicate: 0.005,
			},
		},
		Timeline: metrics.PaperTimeline.Scale(0.1),
		Seed:     seed,
		Schedule: sched,
		Probe:    &probe.Config{Interval: 100 * time.Millisecond, Events: 1 << 12},
	})
}

func TestImpairedRunEndToEnd(t *testing.T) {
	r := impairedRun(11)
	is := r.Impair
	if is.Packets == 0 {
		t.Fatal("impairer saw no packets")
	}
	if is.LossDrops == 0 {
		t.Error("GE loss produced no drops")
	}
	if is.FlapDrops == 0 {
		t.Error("link flap produced no drops")
	}
	if is.Flaps != 1 {
		t.Errorf("Flaps = %d, want 1", is.Flaps)
	}
	wantDown := time.Second // 20s..21s at scale 0.1 is still 1 s of sim time
	if is.Down != wantDown {
		t.Errorf("Down = %v, want %v", is.Down, wantDown)
	}
	if is.Duplicates == 0 || is.Reordered == 0 {
		t.Errorf("Duplicates = %d, Reordered = %d, want both > 0", is.Duplicates, is.Reordered)
	}

	// The structured record carries the impairment block.
	rec := r.Record(0)
	if rec.Impair == nil {
		t.Fatal("Record.Impair nil for impaired run")
	}
	if rec.Impair.LossDrops != is.LossDrops || rec.Impair.Flaps != 1 || rec.Impair.DownSeconds != 1 {
		t.Errorf("Record.Impair = %+v", rec.Impair)
	}
	if rec.Impair.Spec != r.Cfg.Impair.String() || rec.Impair.Schedule == "" {
		t.Errorf("Record.Impair spec/schedule = %q / %q", rec.Impair.Spec, rec.Impair.Schedule)
	}
	if !strings.Contains(rec.Cond, "ge") {
		t.Errorf("impaired condition label %q lacks impairment suffix", rec.Cond)
	}

	// Impairer drops must be visible in the probe's drop series.
	found := false
	for _, qp := range r.Probe.Queues() {
		if qp.Name == "impairer" && qp.DropEvents.Len() > 0 {
			found = true
		}
	}
	if !found {
		t.Error("no impairer drop events in probe capture")
	}

	// A clean run's record must NOT carry an impairment block.
	clean := Run(RunConfig{
		Condition: Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2},
		Timeline:  metrics.PaperTimeline.Scale(0.05),
		Seed:      11,
	})
	if rec := clean.Record(0); rec.Impair != nil {
		t.Errorf("clean run Record.Impair = %+v, want nil", rec.Impair)
	}
}

// TestImpairedGoldenSeed extends the determinism contract to the impairment
// path: the impairer's forked RNG, jittered delivery timers, and schedule
// retunes must all replay byte-identically for a fixed seed.
func TestImpairedGoldenSeed(t *testing.T) {
	a := impairedRun(42)
	b := impairedRun(42)
	if a.EventsProcessed != b.EventsProcessed {
		t.Errorf("EventsProcessed diverged: %d vs %d", a.EventsProcessed, b.EventsProcessed)
	}
	if a.Impair != b.Impair {
		t.Errorf("impairment stats diverged: %+v vs %+v", a.Impair, b.Impair)
	}
	ea, eb := exportBytes(t, a), exportBytes(t, b)
	for name := range ea {
		if len(ea[name]) == 0 {
			t.Errorf("%s export empty — test exercises nothing", name)
		}
		if !bytes.Equal(ea[name], eb[name]) {
			t.Errorf("%s export not byte-identical across impaired runs", name)
		}
	}
	c := impairedRun(43)
	if ec := exportBytes(t, c); bytes.Equal(ea["cc.csv"], ec["cc.csv"]) {
		t.Error("different seeds produced identical impaired cc.csv")
	}
}

// TestImpairedGoldenDigest pins the impaired probe exports to a checked-in
// SHA-256, so a change anywhere in the packet path (RNG fork order, event
// ordering, pool reuse) that silently shifts impaired traces fails CI.
// Regenerate with: go test ./internal/experiment -run ImpairedGoldenDigest -update
func TestImpairedGoldenDigest(t *testing.T) {
	r := impairedRun(42)
	ex := exportBytes(t, r)
	h := sha256.New()
	for _, name := range []string{"cc.csv", "queue.csv", "drops.csv", "events.jsonl"} {
		h.Write(ex[name])
	}
	got := hex.EncodeToString(h.Sum(nil))

	path := filepath.Join("testdata", "impaired_golden.sha256")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != strings.TrimSpace(string(want)) {
		t.Errorf("impaired golden digest changed:\n got %s\nwant %s\nIf the trace change is intended, regenerate with -update.", got, strings.TrimSpace(string(want)))
	}
}

// TestImpairedSweepAcrossWorkers checks that the impairment axis keeps the
// worker-count independence guarantee: per-run RNG forks and per-run
// impairers must make 1-, 4- and 8-worker sweeps agree run for run.
func TestImpairedSweepAcrossWorkers(t *testing.T) {
	sched, err := ParseSchedule("10s down; 11s up")
	if err != nil {
		t.Fatal(err)
	}
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		BaseSeed:   7,
		Impairments: []netem.Impairment{
			{LossModel: netem.LossBernoulli, LossRate: 0.01},
			{LossModel: netem.LossGE, GEGoodBad: 0.01, GEBadGood: 0.25, Jitter: time.Millisecond, Reorder: true},
		},
		Schedule: sched,
	}
	var sweeps []*SweepResult
	for _, w := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = w
		sweeps = append(sweeps, RunSweep(context.Background(), cfg))
	}
	ra := sweeps[0]
	// 1 system x 2 CCAs x 2 impairments = 4 conditions.
	if len(ra.Conditions) != 4 {
		t.Fatalf("got %d conditions, want 4", len(ra.Conditions))
	}
	for _, rb := range sweeps[1:] {
		for _, ca := range ra.Conditions {
			cb := rb.Find(ca.Cond)
			if cb == nil {
				t.Fatalf("condition %s missing", ca.Cond)
			}
			for i := range ca.Runs {
				x, y := ca.Runs[i], cb.Runs[i]
				if x.EventsProcessed != y.EventsProcessed || x.Impair != y.Impair {
					t.Errorf("%s run %d diverged across worker counts: %+v vs %+v",
						ca.Cond, i, x.Impair, y.Impair)
				}
				for j := range x.GameMbps {
					if x.GameMbps[j] != y.GameMbps[j] {
						t.Fatalf("%s run %d bin %d diverged", ca.Cond, i, j)
					}
				}
			}
		}
	}
	// Each impaired run must actually have flapped once (schedule applied
	// in sweep workers too).
	for _, ca := range ra.Conditions {
		for i, r := range ca.Runs {
			if r.Impair.Flaps != 1 || r.Impair.FlapDrops == 0 {
				t.Errorf("%s run %d: Flaps=%d FlapDrops=%d, want schedule applied",
					ca.Cond, i, r.Impair.Flaps, r.Impair.FlapDrops)
			}
		}
	}
}
