package experiment

import (
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/units"
)

func mixRun(t *testing.T, comps []Competitor, seed uint64) *RunResult {
	t.Helper()
	return Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2,
		},
		Competitors: comps,
		Timeline:    quickTL,
		Seed:        seed,
	})
}

func TestTwoIperfFlowsShareWithGame(t *testing.T) {
	r := mixRun(t, []Competitor{
		{Kind: CompIperf, CCA: "cubic"},
		{Kind: CompIperf, CCA: "cubic"},
	}, 1)
	if len(r.CompetitorTraces) != 2 {
		t.Fatalf("traces = %d, want 2", len(r.CompetitorTraces))
	}
	ff, ft := quickTL.FairnessWindow()
	agg := r.TCPSeries().MeanBetween(ff, ft)
	var sum float64
	for _, c := range r.CompetitorTraces {
		s := metricsSeries(r, c.Mbps).MeanBetween(ff, ft)
		if s <= 0 {
			t.Errorf("competitor %v idle during contention", c.Competitor)
		}
		sum += s
	}
	if diff := agg - sum; diff > 0.01 || diff < -0.01 {
		t.Errorf("aggregate %.2f != sum of competitors %.2f", agg, sum)
	}
	// Two bulk flows should squeeze the game below its solo level.
	game := r.GameSeries().MeanBetween(ff, ft)
	if game > 20 {
		t.Errorf("game at %.1f Mb/s despite two competing bulk flows", game)
	}
}

func TestMixedCubicBBR(t *testing.T) {
	r := mixRun(t, []Competitor{
		{Kind: CompIperf, CCA: "cubic"},
		{Kind: CompIperf, CCA: "bbr"},
	}, 2)
	ff, ft := quickTL.FairnessWindow()
	total := r.GameSeries().MeanBetween(ff, ft) + r.TCPSeries().MeanBetween(ff, ft)
	// The three flows together should utilise most of the 25 Mb/s link.
	if total < 20 || total > 26 {
		t.Errorf("total utilisation %.1f Mb/s, want near capacity", total)
	}
}

func TestDashCompetitorOnOff(t *testing.T) {
	r := mixRun(t, []Competitor{{Kind: CompDash, CCA: "cubic"}}, 3)
	ff, ft := quickTL.FairnessWindow()
	dashRate := metricsSeries(r, r.CompetitorTraces[0].Mbps).MeanBetween(ff, ft)
	if dashRate <= 0 {
		t.Fatal("dash competitor transferred nothing")
	}
	// An ABR session caps at its top rung (16 Mb/s) even on a shared
	// 25 Mb/s link; average must stay below bulk-transfer levels.
	if dashRate > 17 {
		t.Errorf("dash averaged %.1f Mb/s, more than its ladder top", dashRate)
	}
	// The game should retain more share than against a bulk flow.
	game := r.GameSeries().MeanBetween(ff, ft)
	if game < 5 {
		t.Errorf("game starved (%.1f Mb/s) by an ABR flow", game)
	}
}

func TestVideoCallCompetitorSmall(t *testing.T) {
	r := mixRun(t, []Competitor{{Kind: CompVideoCall}}, 4)
	ff, ft := quickTL.FairnessWindow()
	call := metricsSeries(r, r.CompetitorTraces[0].Mbps).MeanBetween(ff, ft)
	if call <= 0 {
		t.Fatal("video call sent nothing")
	}
	if call > 4 {
		t.Errorf("video call at %.1f Mb/s, above its 3.5 Mb/s cap", call)
	}
	// A 3.5 Mb/s call should leave the game most of a 25 Mb/s link.
	game := r.GameSeries().MeanBetween(ff, ft)
	if game < 15 {
		t.Errorf("game at %.1f Mb/s against a small video call", game)
	}
}

func TestUnknownCompetitorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown competitor kind did not panic")
		}
	}()
	mixRun(t, []Competitor{{Kind: "carrier-pigeon"}}, 5)
}

func TestSingleCompetitorMatchesLegacyPath(t *testing.T) {
	// Explicit one-iperf Competitors config must behave like the legacy
	// Condition.CCA path (same flow id, same traffic).
	legacy := Run(RunConfig{
		Condition: Condition{System: gamestream.Luna, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2},
		Timeline:  quickTL, Seed: 9,
	})
	explicit := Run(RunConfig{
		Condition:   Condition{System: gamestream.Luna, Capacity: units.Mbps(25), QueueMult: 2},
		Competitors: []Competitor{{Kind: CompIperf, CCA: "cubic"}},
		Timeline:    quickTL, Seed: 9,
	})
	for i := range legacy.TCPMbps {
		if legacy.TCPMbps[i] != explicit.TCPMbps[i] {
			t.Fatalf("bin %d: legacy %v != explicit %v", i, legacy.TCPMbps[i], explicit.TCPMbps[i])
		}
	}
}

// metricsSeries adapts a raw bin slice to a Series with the run's bin size.
func metricsSeries(r *RunResult, v []float64) interface {
	MeanBetween(from, to time.Duration) float64
} {
	return seriesAdapter{r: r, v: v}
}

type seriesAdapter struct {
	r *RunResult
	v []float64
}

func (s seriesAdapter) MeanBetween(from, to time.Duration) float64 {
	lo := int(from / s.r.Bin)
	hi := int(to / s.r.Bin)
	if hi > len(s.v) {
		hi = len(s.v)
	}
	if hi <= lo {
		return 0
	}
	sum := 0.0
	for i := lo; i < hi; i++ {
		sum += s.v[i]
	}
	return sum / float64(hi-lo)
}
