// Package experiment reproduces the paper's methodology: it wires the
// Figure-1 testbed (game server and iperf server behind a shaped bottleneck
// router, game client and iperf client on the LAN side), runs the 9-minute
// automated procedure with the competing TCP flow active in the middle
// third, and sweeps the full parameter grid — system × congestion control ×
// capacity × queue size × iteration — collecting the traces behind every
// table and figure.
//
// # Single runs
//
// Run executes one condition end to end and is a pure function of its
// RunConfig, including the Seed: the engine never consults the wall clock
// for simulation decisions, so identical configs produce bit-identical
// RunResults.
//
// # Sweeps
//
// RunSweep executes a campaign across a bounded worker pool. Every run's
// seed derives from its grid position (runSeed), so the result set is
// deterministic regardless of worker count or scheduling order. Workers
// defaults to DefaultWorkers (runtime.NumCPU) — the single place the
// repository's parallelism default lives.
//
// Sweeps are cancellable and observable: RunSweep takes a context.Context,
// and SweepConfig carries optional obs.Progress and obs.RunLog sinks.
// Cancelling the context stops new runs from starting; in-flight runs
// complete (a full-fidelity run is seconds of wall time), workers drain
// cleanly, and the partial SweepResult comes back with Interrupted set so
// downstream consumers can label the data.
//
// # Persistence
//
// SaveSweep/LoadSweep round-trip a SweepResult through gzipped gob so
// additional tables can be rendered without re-running hundreds of
// simulations; RunResult.Record renders a run as an obs.Record for
// JSONL run logs.
package experiment
