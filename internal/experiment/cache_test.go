package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/runcache"
	"repro/internal/units"
)

// cacheCfg is the small run the cache tests execute repeatedly.
func cacheCfg(seed uint64) RunConfig {
	return RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
		},
		Timeline: metrics.PaperTimeline.Scale(0.05),
		Seed:     seed,
	}
}

func TestCacheKeyStabilityAndSensitivity(t *testing.T) {
	base := cacheCfg(42)
	k1, ok := CacheKey(base)
	if !ok {
		t.Fatal("base config not cacheable")
	}
	if k2, _ := CacheKey(base); k2 != k1 {
		t.Fatal("same config produced different keys")
	}

	// Defaults canonicalisation: a zero field and its explicit default
	// describe the same run and must share one entry.
	explicit := base
	explicit.PingInterval = 500 * time.Millisecond // Defaults() value
	if k, _ := CacheKey(explicit); k != k1 {
		t.Error("explicit default PingInterval changed the key")
	}

	// Every simulation-relevant field must move the key.
	mutations := map[string]func(*RunConfig){
		"seed":       func(c *RunConfig) { c.Seed = 43 },
		"system":     func(c *RunConfig) { c.System = gamestream.Luna },
		"cca":        func(c *RunConfig) { c.CCA = "bbr" },
		"capacity":   func(c *RunConfig) { c.Capacity = units.Mbps(35) },
		"queue":      func(c *RunConfig) { c.QueueMult = 7 },
		"aqm":        func(c *RunConfig) { c.AQM = AQMCoDel },
		"timeline":   func(c *RunConfig) { c.Timeline = metrics.PaperTimeline.Scale(0.1) },
		"base-rtt":   func(c *RunConfig) { c.BaseRTT = 30 * time.Millisecond },
		"ping":       func(c *RunConfig) { c.PingInterval = time.Second },
		"impair":     func(c *RunConfig) { c.Impair.LossRate = 0.01; c.Impair.LossModel = "bernoulli" },
		"competitor": func(c *RunConfig) { c.Competitors = []Competitor{{Kind: CompIperf, CCA: "bbr"}} },
		// Population fields: a cached 1-vs-1 result must never be served
		// for an N-flow run, and every shape knob must move the key.
		"pop-flows":    func(c *RunConfig) { c.Population.Flows = 20 },
		"pop-streams":  func(c *RunConfig) { c.Population.Streams = 2 },
		"pop-mean-on":  func(c *RunConfig) { c.Population = FlowPopulation{Flows: 20, MeanOn: 10 * time.Second} },
		"pop-mean-off": func(c *RunConfig) { c.Population = FlowPopulation{Flows: 20, MeanOff: 5 * time.Second} },
		"pop-shape":    func(c *RunConfig) { c.Population = FlowPopulation{Flows: 20, Shape: 2.5} },
		"pop-mix": func(c *RunConfig) {
			c.Population = FlowPopulation{Flows: 20, Mix: []Competitor{{Kind: CompDash, CCA: "cubic"}}}
		},
		"schedule": func(c *RunConfig) {
			s, err := ParseSchedule("10s rate=10mbit")
			if err != nil {
				t.Fatal(err)
			}
			c.Schedule = s
		},
	}
	keys := map[runcache.Key]string{k1: "base"}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		k, ok := CacheKey(cfg)
		if !ok {
			t.Fatalf("%s: mutated config not cacheable", name)
		}
		if prev, dup := keys[k]; dup {
			t.Errorf("mutation %q collided with %q", name, prev)
		}
		keys[k] = name
	}

	// Observer-carrying runs are not cacheable: their value is the live
	// capture a stored result cannot carry.
	probed := base
	probed.Probe = &probe.Config{Interval: time.Second}
	if _, ok := CacheKey(probed); ok {
		t.Error("probed config reported cacheable")
	}
}

func TestRunCachedHitMatchesFreshRun(t *testing.T) {
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheCfg(42)

	fresh := Run(cfg)
	miss, hit := RunCached(cache, cfg)
	if hit {
		t.Fatal("first RunCached reported a hit on an empty cache")
	}
	replay, hit := RunCached(cache, cfg)
	if !hit {
		t.Fatal("second RunCached missed")
	}

	// The persisted form is the contract: the replayed result must carry
	// exactly what a fresh execution persists, field for field. Only the
	// engine's wall-clock differs legitimately between executions.
	strip := func(r *RunResult) persistedRun {
		p := toPersisted(r)
		p.Engine.WallTime = 0
		return p
	}
	want := strip(fresh)
	for name, r := range map[string]*RunResult{"missed": miss, "replayed": replay} {
		if got := strip(r); !reflect.DeepEqual(got, want) {
			t.Errorf("%s result diverges from fresh run", name)
		}
	}
	if s := cache.Stats(); s.Hits != 1 || s.Misses != 1 || s.Stored != 1 {
		t.Fatalf("Stats = %+v; want 1 hit, 1 miss, 1 stored", s)
	}
}

func TestRunCachedBypassesAndDegrades(t *testing.T) {
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// Probed runs bypass: the capture must come back live.
	cfg := cacheCfg(7)
	cfg.Probe = &probe.Config{Interval: 100 * time.Millisecond}
	res, hit := RunCached(cache, cfg)
	if hit || res.Probe == nil {
		t.Fatalf("probed run: hit=%v probe=%v; want bypass with live capture", hit, res.Probe != nil)
	}
	if s := cache.Stats(); s.Bypassed != 1 || s.Lookups() != 0 {
		t.Fatalf("Stats = %+v; want 1 bypassed, 0 lookups", s)
	}

	// A nil cache degrades to a plain run.
	if res, hit := RunCached(nil, cacheCfg(7)); hit || res == nil {
		t.Fatal("nil cache did not degrade to a plain run")
	}
}

func TestRunCachedRecoversFromCorruptEntry(t *testing.T) {
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheCfg(42)
	key, ok := CacheKey(cfg)
	if !ok {
		t.Fatal("config not cacheable")
	}
	if err := cache.Put(key, []byte("not a gzip entry")); err != nil {
		t.Fatal(err)
	}

	res, hit := RunCached(cache, cfg)
	if hit || res == nil {
		t.Fatalf("corrupt entry: hit=%v; want recompute", hit)
	}
	if s := cache.Stats(); s.Errors == 0 {
		t.Fatal("corrupt entry left no error in stats")
	}
	// The recompute overwrote the entry; the next lookup replays cleanly.
	if _, hit := RunCached(cache, cfg); !hit {
		t.Fatal("entry not repaired after corrupt read")
	}
}

// TestRunCachedRejectsTruncatedBlob corrupts an entry the way a dying
// machine would — the blob file loses its tail on disk — and proves the
// decode check fires: the lookup must not replay the damaged entry, the
// recompute must repair it, and the repaired entry must replay cleanly.
func TestRunCachedRejectsTruncatedBlob(t *testing.T) {
	dir := t.TempDir()
	cache, err := runcache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := cacheCfg(42)
	fresh, hit := RunCached(cache, cfg)
	if hit {
		t.Fatal("first run hit an empty cache")
	}

	blobs, err := filepath.Glob(filepath.Join(dir, "*", "*.blob"))
	if err != nil || len(blobs) != 1 {
		t.Fatalf("want exactly 1 blob, got %d (err %v)", len(blobs), err)
	}
	fi, err := os.Stat(blobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(blobs[0], fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	res, hit := RunCached(cache, cfg)
	if hit {
		t.Fatal("truncated blob was replayed as a hit")
	}
	if s := cache.Stats(); s.Errors == 0 {
		t.Fatalf("truncated blob left no error in stats: %+v", s)
	}
	strip := func(r *RunResult) persistedRun {
		p := toPersisted(r)
		p.Engine.WallTime = 0
		return p
	}
	if !reflect.DeepEqual(strip(res), strip(fresh)) {
		t.Fatal("recompute after truncation diverged from the fresh run")
	}
	// The recompute overwrote the damaged entry.
	if _, hit := RunCached(cache, cfg); !hit {
		t.Fatal("entry not repaired after truncation")
	}
}

// memLog collects run records in memory.
type memLog struct {
	mu   sync.Mutex
	recs []obs.Record
}

func (m *memLog) Log(r obs.Record) error {
	m.mu.Lock()
	m.recs = append(m.recs, r)
	m.mu.Unlock()
	return nil
}

// cancelAfter is a Progress sink that cancels a context after n completed
// runs — the test's stand-in for Ctrl-C mid-campaign.
type cancelAfter struct {
	n      int32
	after  int32
	cancel context.CancelFunc
}

func (c *cancelAfter) SweepStart(int) {}
func (c *cancelAfter) RunDone(obs.Update) {
	if atomic.AddInt32(&c.n, 1) == c.after {
		c.cancel()
	}
}
func (c *cancelAfter) SweepDone(bool, time.Duration) {}

// normalizeJSONL renders records as sorted JSONL with the fields that
// legitimately differ between an executed and a replayed run zeroed: the
// Cached marker and the engine's wall-clock-derived numbers. Everything
// else — every metric, every counter, every seed — must be byte-identical.
func normalizeJSONL(t *testing.T, recs []obs.Record) []byte {
	t.Helper()
	rs := append([]obs.Record(nil), recs...)
	for i := range rs {
		rs[i].Cached = false
		rs[i].Engine.WallSeconds = 0
		rs[i].Engine.Speedup = 0
		rs[i].Engine.EventsPerSecond = 0
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Cond != rs[j].Cond {
			return rs[i].Cond < rs[j].Cond
		}
		if rs[i].Seed != rs[j].Seed {
			return rs[i].Seed < rs[j].Seed
		}
		return rs[i].Iteration < rs[j].Iteration
	})
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range rs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestSweepCacheDeterminism is the cache's end-to-end contract: a fresh
// sweep, a fully cached replay, and an interrupted-then-resumed sweep must
// all export byte-identical (normalised) JSONL, across worker counts.
func TestSweepCacheDeterminism(t *testing.T) {
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia, gamestream.Luna},
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		BaseSeed:   7,
	}
	const total = 2 * 2 * 2 // systems × ccas × iterations

	sweep := func(workers int, cache *runcache.Cache, ctx context.Context, prog obs.Progress) (*SweepResult, []obs.Record) {
		cfg := base
		cfg.Workers = workers
		cfg.Cache = cache
		cfg.Progress = prog
		log := &memLog{}
		cfg.RunLog = log
		if ctx == nil {
			ctx = context.Background()
		}
		return RunSweep(ctx, cfg), log.recs
	}

	// Reference: no cache, sequential.
	refRes, refRecs := sweep(1, nil, nil, nil)
	if len(refRecs) != total {
		t.Fatalf("reference sweep logged %d runs, want %d", len(refRecs), total)
	}
	want := normalizeJSONL(t, refRecs)

	// Cold cache: everything misses and is stored.
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coldRes, coldRecs := sweep(4, cache, nil, nil)
	if got := normalizeJSONL(t, coldRecs); !bytes.Equal(got, want) {
		t.Error("cold cached sweep JSONL diverges from uncached reference")
	}
	if c := coldRes.Cache; c.Misses != total || c.Stored != total || c.Hits != 0 {
		t.Fatalf("cold sweep cache stats = %+v; want %d misses/stored", c, total)
	}

	// Warm cache: pure replay, across two worker counts.
	for _, workers := range []int{4, 8} {
		warmRes, warmRecs := sweep(workers, cache, nil, nil)
		if got := normalizeJSONL(t, warmRecs); !bytes.Equal(got, want) {
			t.Errorf("warm cached sweep (workers=%d) JSONL diverges from reference", workers)
		}
		if c := warmRes.Cache; c.Hits != total || c.Misses != 0 {
			t.Fatalf("warm sweep (workers=%d) cache stats = %+v; want %d hits", workers, c, total)
		}
		for _, r := range warmRecs {
			if !r.Cached {
				t.Fatalf("warm sweep run %s/seed%d not marked cached", r.Cond, r.Seed)
			}
		}
	}

	// Interrupt a fresh campaign after three runs, then resume with the
	// same cache: only the missing runs may execute.
	resumeCache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partialRes, partialRecs := sweep(2, resumeCache, ctx, &cancelAfter{after: 3, cancel: cancel})
	completed := len(partialRecs)
	if !partialRes.Interrupted || completed >= total {
		t.Fatalf("partial sweep: interrupted=%v completed=%d; want an interrupted sweep with <%d runs",
			partialRes.Interrupted, completed, total)
	}
	if c := partialRes.Cache; c.Stored != uint64(completed) {
		t.Fatalf("partial sweep stored %d of %d completed runs", c.Stored, completed)
	}

	resumedRes, resumedRecs := sweep(2, resumeCache, nil, nil)
	if got := normalizeJSONL(t, resumedRecs); !bytes.Equal(got, want) {
		t.Error("resumed sweep JSONL diverges from reference")
	}
	if c := resumedRes.Cache; c.Hits != uint64(completed) || c.Misses != uint64(total-completed) {
		t.Fatalf("resumed sweep cache stats = %+v; want %d hits, %d misses (only missing runs execute)",
			c, completed, total-completed)
	}
	if resumedRes.Interrupted || refRes.Interrupted {
		t.Fatal("uncancelled sweep reported Interrupted")
	}
}
