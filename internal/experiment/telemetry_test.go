package experiment

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/units"
)

// telemetrySweep is the golden-seed grid the telemetry acceptance tests run:
// small enough to be quick, wide enough to exercise several conditions.
func telemetrySweep() SweepConfig {
	return SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia, gamestream.Luna},
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 3,
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		BaseSeed:   7,
	}
}

// TestTelemetrySketchesIdenticalAcrossWorkers is the acceptance criterion:
// the Aggregator's deterministic snapshot section is byte-identical across
// worker counts 1, 4 and 8 on a golden-seed sweep.
func TestTelemetrySketchesIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the grid three times")
	}
	var ref []byte
	for _, workers := range []int{1, 4, 8} {
		cfg := telemetrySweep()
		cfg.Workers = workers
		ag := obs.NewAggregator()
		cfg.Progress = ag
		cfg.DiscardRuns = true
		RunSweep(context.Background(), cfg)
		got, err := ag.Snapshot().DeterministicJSON()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(ref, got) {
			t.Fatalf("workers=%d: deterministic snapshot differs from 1-worker reference", workers)
		}
	}
}

// TestTelemetryDiscardRuns: with DiscardRuns the sweep keeps no per-run
// results (O(conditions) memory) while the Aggregator still sees every run.
func TestTelemetryDiscardRuns(t *testing.T) {
	cfg := telemetrySweep()
	cfg.Workers = 4
	ag := obs.NewAggregator()
	cfg.Progress = ag
	cfg.DiscardRuns = true
	sw := RunSweep(context.Background(), cfg)

	if len(sw.Conditions) != 0 {
		t.Fatalf("DiscardRuns retained %d conditions of run results", len(sw.Conditions))
	}
	if sw.Interrupted {
		t.Fatal("sweep reported interrupted")
	}
	total := 4 * cfg.Iterations // 2 systems × 2 CCAs × 3 iterations
	snap := ag.Snapshot()
	if snap.Done != total {
		t.Fatalf("aggregator saw %d runs, want %d", snap.Done, total)
	}
	if len(snap.Conditions) != 4 {
		t.Fatalf("aggregator has %d conditions, want 4", len(snap.Conditions))
	}
	for _, c := range snap.Conditions {
		if got := c.Metrics["game_mbps"].N(); got != int64(cfg.Iterations) {
			t.Errorf("%s: game_mbps N = %d, want %d", c.Cond, got, cfg.Iterations)
		}
	}
	if got := snap.Campaign["game_mbps"].N(); got != int64(total) {
		t.Errorf("campaign game_mbps N = %d, want %d", got, total)
	}
}

// TestTelemetryMatchesRunLog: the snapshot's per-condition stream-bitrate
// mean and CI must equal the values computed from the runlog records — the
// sketches are a lossless replacement for moment statistics.
func TestTelemetryMatchesRunLog(t *testing.T) {
	cfg := telemetrySweep()
	cfg.Workers = 4
	ag := obs.NewAggregator()
	cfg.Progress = ag
	var buf bytes.Buffer
	cfg.RunLog = obs.NewJSONL(&buf)
	RunSweep(context.Background(), cfg)

	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byCond := make(map[string]*stats.Accumulator)
	for _, r := range recs {
		acc := byCond[r.Cond]
		if acc == nil {
			acc = &stats.Accumulator{}
			byCond[r.Cond] = acc
		}
		acc.Add(r.GameMbps)
	}
	snap := ag.Snapshot()
	if len(snap.Conditions) != len(byCond) {
		t.Fatalf("snapshot has %d conditions, runlog %d", len(snap.Conditions), len(byCond))
	}
	for _, c := range snap.Conditions {
		want := byCond[c.Cond]
		if want == nil {
			t.Fatalf("condition %s missing from runlog", c.Cond)
		}
		ms := c.Metrics["game_mbps"]
		if ms.N() != want.N() {
			t.Errorf("%s: N %d vs %d", c.Cond, ms.N(), want.N())
		}
		if math.Abs(ms.Mean()-want.Mean()) > 1e-12 {
			t.Errorf("%s: mean %.9f vs runlog %.9f", c.Cond, ms.Mean(), want.Mean())
		}
		if math.Abs(ms.CI95()-want.CI95()) > 1e-12 {
			t.Errorf("%s: CI95 %.9f vs runlog %.9f", c.Cond, ms.CI95(), want.CI95())
		}
	}
}
