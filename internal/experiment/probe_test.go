package experiment

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
)

func TestProbeOffByDefault(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 1)
	if r.Probe != nil {
		t.Fatal("probe attached without RunConfig.Probe")
	}
}

func TestProbeCapturesCCAndQueue(t *testing.T) {
	r := Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2,
		},
		Competitors: []Competitor{
			{Kind: CompIperf, CCA: "cubic"},
			{Kind: CompIperf, CCA: "bbr"},
		},
		Timeline: metrics.PaperTimeline.Scale(0.1),
		Seed:     1,
		Probe:    &probe.Config{Interval: 100 * time.Millisecond, Events: 1 << 12},
	})
	p := r.Probe
	if p == nil {
		t.Fatal("RunResult.Probe nil with probing enabled")
	}
	flows := p.Flows()
	if len(flows) != 2 {
		t.Fatalf("flow probes = %d, want 2", len(flows))
	}
	for _, fp := range flows {
		if fp.Samples.Len() == 0 {
			t.Fatalf("flow %s has no CC samples", fp.Name)
		}
		var maxCwnd int64
		for i := 0; i < fp.Samples.Len(); i++ {
			if s := fp.Samples.At(i); s.CwndBytes > maxCwnd {
				maxCwnd = s.CwndBytes
			}
		}
		if maxCwnd == 0 {
			t.Errorf("flow %s never grew cwnd", fp.Name)
		}
	}
	qs := p.Queues()
	if len(qs) != 1 || qs[0].Samples.Len() == 0 {
		t.Fatal("no bottleneck queue samples")
	}
	var sawOccupied bool
	for i := 0; i < qs[0].Samples.Len(); i++ {
		if s := qs[0].Samples.At(i); s.Packets > 0 && s.HasSojourn {
			sawOccupied = true
			break
		}
	}
	if !sawOccupied {
		t.Error("queue never observed occupied during contention")
	}
	if p.Events() == nil || p.Events().Total() == 0 {
		t.Error("event ring recorded nothing")
	}
}

// TestProbeExportDeterministicAcrossWorkers runs the same probed sweep with
// one and four workers and requires the exported telemetry files to be
// byte-identical: runs are pure functions of (condition, seed), so worker
// scheduling must not leak into the artefacts.
func TestProbeExportDeterministicAcrossWorkers(t *testing.T) {
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		Probe:      &probe.Config{Interval: 200 * time.Millisecond},
	}
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for i, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		cfg.ProbeDir = dirs[i]
		RunSweep(context.Background(), cfg)
	}

	files := [2][]string{}
	for i, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			files[i] = append(files[i], e.Name())
		}
	}
	if len(files[0]) == 0 {
		t.Fatal("no probe exports written")
	}
	if len(files[0]) != len(files[1]) {
		t.Fatalf("file counts differ: %d vs %d", len(files[0]), len(files[1]))
	}
	for i, name := range files[0] {
		if files[1][i] != name {
			t.Fatalf("file %d: %q vs %q", i, name, files[1][i])
		}
		a, err := os.ReadFile(filepath.Join(dirs[0], name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between 1 and 4 workers (%d vs %d bytes)", name, len(a), len(b))
		}
	}
}
