package experiment

import (
	"bufio"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"os"
	"time"

	"repro/internal/netem"
	"repro/internal/ping"
	"repro/internal/sim"
)

// persisted strips non-encodable fields (the Profile override and packet
// observer are functions/pointers that cannot and should not round-trip).
type persistedRun struct {
	Cfg              RunConfig
	Bin              int64
	GameMbps         []float64
	TCPMbps          []float64
	FPSBins          []float64
	RTT              []persistedSample
	GameLossBins     []float64
	TCPLossBins      []float64
	CompetitorTraces []CompetitorTrace
	FramesSent       int64
	FramesDisplayed  int64
	FramesDropped    int64
	NackRetx         int64
	TCPRetransmits   int
	EventsProcessed  uint64
	Engine           sim.Stats
	Impair           netem.ImpairStats
	Flows            []FlowStats
	FlowSummary      FlowSummary
}

type persistedSample struct {
	At  int64
	RTT int64
}

func init() {
	gob.Register(persistedRun{})
}

// SaveSweep writes the sweep to path as gzipped gob, so later gsbench
// invocations can render additional tables without re-running hundreds of
// simulations.
func SaveSweep(path string, s *SweepResult) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiment: save sweep: %w", err)
	}
	defer f.Close()
	bw := bufio.NewWriterSize(f, 1<<20)
	gz := gzip.NewWriter(bw)
	enc := gob.NewEncoder(gz)

	type header struct {
		Cfg        SweepConfig
		Conditions int
	}
	// The observability sinks and the run cache are live objects, not
	// data; strip them so the header stays encodable and self-contained.
	cfg := s.Cfg
	cfg.Progress = nil
	cfg.RunLog = nil
	cfg.Cache = nil
	if err := enc.Encode(header{Cfg: cfg, Conditions: len(s.Conditions)}); err != nil {
		return fmt.Errorf("experiment: save sweep header: %w", err)
	}
	for _, cond := range s.Conditions {
		if err := enc.Encode(cond.Cond); err != nil {
			return fmt.Errorf("experiment: save condition: %w", err)
		}
		if err := enc.Encode(len(cond.Runs)); err != nil {
			return err
		}
		for _, r := range cond.Runs {
			if err := enc.Encode(toPersisted(r)); err != nil {
				return fmt.Errorf("experiment: save run: %w", err)
			}
		}
	}
	if err := gz.Close(); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadSweep reads a sweep previously written by SaveSweep.
func LoadSweep(path string) (*SweepResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: load sweep: %w", err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("experiment: load sweep: %w", err)
	}
	dec := gob.NewDecoder(gz)

	type header struct {
		Cfg        SweepConfig
		Conditions int
	}
	var h header
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("experiment: load sweep header: %w", err)
	}
	out := &SweepResult{Cfg: h.Cfg}
	for i := 0; i < h.Conditions; i++ {
		var cond Condition
		if err := dec.Decode(&cond); err != nil {
			return nil, fmt.Errorf("experiment: load condition: %w", err)
		}
		var n int
		if err := dec.Decode(&n); err != nil {
			return nil, err
		}
		cr := &ConditionResult{Cond: cond}
		for j := 0; j < n; j++ {
			var p persistedRun
			if err := dec.Decode(&p); err != nil {
				return nil, fmt.Errorf("experiment: load run: %w", err)
			}
			cr.Runs = append(cr.Runs, fromPersisted(&p))
		}
		out.Conditions = append(out.Conditions, cr)
	}
	return out, nil
}

func toPersisted(r *RunResult) persistedRun {
	cfg := r.Cfg
	cfg.Profile = nil
	cfg.OnPacket = nil
	p := persistedRun{
		Cfg:              cfg,
		Bin:              int64(r.Bin),
		GameMbps:         r.GameMbps,
		TCPMbps:          r.TCPMbps,
		FPSBins:          r.FPSBins,
		GameLossBins:     r.GameLossBins,
		TCPLossBins:      r.TCPLossBins,
		CompetitorTraces: r.CompetitorTraces,
		FramesSent:       r.FramesSent,
		FramesDisplayed:  r.FramesDisplayed,
		FramesDropped:    r.FramesDropped,
		NackRetx:         r.NackRetx,
		TCPRetransmits:   r.TCPRetransmits,
		EventsProcessed:  r.EventsProcessed,
		Engine:           r.Engine,
		Impair:           r.Impair,
		Flows:            r.Flows,
		FlowSummary:      r.FlowSummary,
	}
	for _, s := range r.RTT {
		p.RTT = append(p.RTT, persistedSample{At: int64(s.At), RTT: int64(s.RTT)})
	}
	return p
}

func fromPersisted(p *persistedRun) *RunResult {
	r := &RunResult{
		Cfg:              p.Cfg,
		Bin:              timeDuration(p.Bin),
		GameMbps:         p.GameMbps,
		TCPMbps:          p.TCPMbps,
		FPSBins:          p.FPSBins,
		GameLossBins:     p.GameLossBins,
		TCPLossBins:      p.TCPLossBins,
		CompetitorTraces: p.CompetitorTraces,
		FramesSent:       p.FramesSent,
		FramesDisplayed:  p.FramesDisplayed,
		FramesDropped:    p.FramesDropped,
		NackRetx:         p.NackRetx,
		TCPRetransmits:   p.TCPRetransmits,
		EventsProcessed:  p.EventsProcessed,
		Engine:           p.Engine,
		Impair:           p.Impair,
		Flows:            p.Flows,
		FlowSummary:      p.FlowSummary,
	}
	for _, s := range p.RTT {
		r.RTT = append(r.RTT, pingSample(s.At, s.RTT))
	}
	return r
}

// timeDuration converts stored nanoseconds back to a duration.
func timeDuration(n int64) time.Duration { return time.Duration(n) }

// pingSample rebuilds a ping.Sample from stored nanoseconds.
func pingSample(at, rtt int64) ping.Sample {
	return ping.Sample{At: sim.Time(at), RTT: time.Duration(rtt)}
}
