package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"sort"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/units"
)

// goldenRunDispatch is goldenRun with the dispatch mode explicit, for the
// batched-vs-serial differential tests.
func goldenRunDispatch(seed uint64, serial bool) *RunResult {
	return Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 2,
		},
		Timeline:       metrics.PaperTimeline.Scale(0.1),
		Seed:           seed,
		Probe:          &probe.Config{Interval: 100 * time.Millisecond, Events: 1 << 12},
		SerialDispatch: serial,
	})
}

// TestBatchedVsSerialGoldenExports is the batched-dispatch determinism
// contract: draining all same-timestamp events into the on-stack batch
// buffer must be invisible in every output. A golden-seed run under
// batched and serial dispatch must agree on every engine counter and
// produce byte-identical probe exports.
func TestBatchedVsSerialGoldenExports(t *testing.T) {
	b := goldenRunDispatch(42, false)
	s := goldenRunDispatch(42, true)

	if b.EventsProcessed != s.EventsProcessed {
		t.Errorf("EventsProcessed diverged: batched %d vs serial %d",
			b.EventsProcessed, s.EventsProcessed)
	}
	if b.Engine.EventsDispatched != s.Engine.EventsDispatched ||
		b.Engine.EventsScheduled != s.Engine.EventsScheduled ||
		b.Engine.EventsCancelled != s.Engine.EventsCancelled ||
		b.Engine.TimerMoves != s.Engine.TimerMoves ||
		b.Engine.PeakPending != s.Engine.PeakPending {
		t.Errorf("engine stats diverged:\nbatched %+v\nserial  %+v", b.Engine, s.Engine)
	}

	eb, es := exportBytes(t, b), exportBytes(t, s)
	for name := range eb {
		if len(eb[name]) == 0 && name != "drops.csv" {
			t.Errorf("%s export empty — test exercises nothing", name)
		}
		if !bytes.Equal(eb[name], es[name]) {
			t.Errorf("%s export not byte-identical between batched and serial dispatch", name)
		}
	}
}

// runlogRecords executes a small sweep with the given worker count and
// dispatch mode and returns its runlog records, sorted into grid order
// with machine-dependent wall-clock fields zeroed.
func runlogRecords(t *testing.T, workers int, serial bool) []obs.Record {
	t.Helper()
	var buf bytes.Buffer
	jl := obs.NewJSONL(&buf)
	RunSweep(context.Background(), SweepConfig{
		Systems:        []gamestream.System{gamestream.Stadia, gamestream.Luna},
		CCAs:           []string{"cubic", "bbr"},
		Capacities:     []units.Rate{units.Mbps(25)},
		QueueMults:     []float64{2},
		Iterations:     2,
		Timeline:       metrics.PaperTimeline.Scale(0.05),
		BaseSeed:       7,
		Workers:        workers,
		RunLog:         jl,
		SerialDispatch: serial,
	})
	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("runlog parse: %v", err)
	}
	for i := range recs {
		recs[i].Engine.WallSeconds = 0
		recs[i].Engine.Speedup = 0
		recs[i].Engine.EventsPerSecond = 0
	}
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Cond != recs[j].Cond {
			return recs[i].Cond < recs[j].Cond
		}
		return recs[i].Seed < recs[j].Seed
	})
	return recs
}

// TestBatchedVsSerialRunlogAcrossWorkers sweeps the same grid under every
// combination of dispatch mode and worker count {1, 4, 8} and asserts all
// six runlogs are identical record for record (wall-clock fields aside):
// neither goroutine scheduling nor the batch drain loop may leak into
// results.
func TestBatchedVsSerialRunlogAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("six sweeps of the grid; skipped in -short")
	}
	ref := runlogRecords(t, 1, true) // serial single-worker = reference semantics
	if len(ref) != 8 {
		t.Fatalf("reference runlog has %d records, want 8", len(ref))
	}
	refJSON := make([][]byte, len(ref))
	for i, r := range ref {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		refJSON[i] = b
	}
	for _, workers := range []int{1, 4, 8} {
		for _, serial := range []bool{false, true} {
			if workers == 1 && serial {
				continue // the reference itself
			}
			got := runlogRecords(t, workers, serial)
			if len(got) != len(ref) {
				t.Fatalf("workers=%d serial=%v: %d records, want %d", workers, serial, len(got), len(ref))
			}
			for i := range got {
				b, err := json.Marshal(got[i])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(b, refJSON[i]) {
					t.Errorf("workers=%d serial=%v record %d diverged:\n got %s\nwant %s",
						workers, serial, i, b, refJSON[i])
				}
			}
		}
	}
}
