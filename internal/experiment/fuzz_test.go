package experiment

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/netem"
)

// FuzzParseProb feeds the probability parser arbitrary flag strings: any
// accepted value must be a real number in [0,1], and its shortest decimal
// rendering must parse back to exactly the same value.
func FuzzParseProb(f *testing.F) {
	for _, seed := range []string{
		"0", "1", "0.5", "2%", "0.5%", "100%", "1e-3", "-1", "101%",
		"NaN", "nan%", "+Inf", "0x1p-2", ".5", "5e-1%", "", "%",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		v, err := ParseProb(s)
		if err != nil {
			if v != 0 {
				t.Fatalf("ParseProb(%q) error with non-zero value %g", s, v)
			}
			return
		}
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Fatalf("ParseProb(%q) = %g outside [0,1]", s, v)
		}
		rt, err := ParseProb(fmt.Sprintf("%g", v))
		if err != nil || rt != v {
			t.Fatalf("ParseProb(%q) = %g does not round-trip: %g, %v", s, v, rt, err)
		}
	})
}

// FuzzParseLoss feeds the loss-spec parser arbitrary flag strings: any
// accepted spec must leave the impairment in a consistent state — a known
// loss model with all probabilities in [0,1] — and parsing must be
// deterministic.
func FuzzParseLoss(f *testing.F) {
	for _, seed := range []string{
		"", "none", "2%", "0.02", "ge:p=0.01,r=0.25",
		"ge:p=1%,r=25%,good=0.001,bad=0.9", "ge:p=0", "ge:x=1",
		"ge:", "ge:p", "101%", "nan", "ge:p=nan,r=0.25",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		var im netem.Impairment
		if err := ParseLoss(s, &im); err != nil {
			return
		}
		switch im.LossModel {
		case "":
			if im.LossRate != 0 {
				t.Fatalf("ParseLoss(%q): no model but LossRate %g", s, im.LossRate)
			}
		case netem.LossBernoulli:
			if math.IsNaN(im.LossRate) || im.LossRate < 0 || im.LossRate > 1 {
				t.Fatalf("ParseLoss(%q): LossRate %g outside [0,1]", s, im.LossRate)
			}
		case netem.LossGE:
			for name, p := range map[string]float64{
				"p": im.GEGoodBad, "r": im.GEBadGood,
				"good": im.GELossGood, "bad": im.GELossBad,
			} {
				if math.IsNaN(p) || p < 0 || p > 1 {
					t.Fatalf("ParseLoss(%q): GE %s=%g outside [0,1]", s, name, p)
				}
			}
			if im.GEGoodBad == 0 {
				t.Fatalf("ParseLoss(%q): GE model accepted with p=0", s)
			}
		default:
			t.Fatalf("ParseLoss(%q): unknown model %q", s, im.LossModel)
		}
		var again netem.Impairment
		if err := ParseLoss(s, &again); err != nil || again != im {
			t.Fatalf("ParseLoss(%q) not deterministic: %+v vs %+v (%v)", s, im, again, err)
		}
	})
}

// FuzzParseSchedule feeds the retuning-program parser arbitrary flag
// strings: any accepted program must come back sorted by offset with only
// known step kinds and in-range values, and its ScheduleString rendering
// must re-parse to a program of the same shape.
func FuzzParseSchedule(f *testing.F) {
	for _, seed := range []string{
		"", "15s rate=10mbit; 30s loss=2%; 45s down; 50s up; 60s jitter=3ms",
		"1s delay=20ms", "0s rate=250kbit", "2s rate=5", "1s down=1",
		"9s up; 3s down", "1s loss=nan%", "-1s down", "1s rate=-5mbit",
		"x down", "1s", "1s rate=", ";;", "1s  down ;", "1h0m0.5s delay=1ms",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		steps, err := ParseSchedule(s)
		if err != nil {
			return
		}
		for i, st := range steps {
			if st.At < 0 {
				t.Fatalf("ParseSchedule(%q): step %d at negative offset %v", s, i, st.At)
			}
			if i > 0 && st.At < steps[i-1].At {
				t.Fatalf("ParseSchedule(%q): steps not sorted at %d", s, i)
			}
			switch st.Kind {
			case ScheduleRate:
				if st.Rate < 0 {
					t.Fatalf("ParseSchedule(%q): negative rate %d", s, st.Rate)
				}
			case ScheduleDelay:
				if st.Delay < 0 {
					t.Fatalf("ParseSchedule(%q): negative delay %v", s, st.Delay)
				}
			case ScheduleLoss:
				if math.IsNaN(st.LossRate) || st.LossRate < 0 || st.LossRate > 1 {
					t.Fatalf("ParseSchedule(%q): loss %g outside [0,1]", s, st.LossRate)
				}
			case ScheduleJitter:
				if st.Jitter < 0 {
					t.Fatalf("ParseSchedule(%q): negative jitter %v", s, st.Jitter)
				}
			case ScheduleDown, ScheduleUp:
			default:
				t.Fatalf("ParseSchedule(%q): unknown kind %q", s, st.Kind)
			}
		}
		// The renderer must produce a spec the parser accepts again, with
		// identical offsets and kinds. Values may round (floats render in
		// shortest form, rates truncate to bits/s), so shape, not bytes,
		// is the contract.
		again, err := ParseSchedule(ScheduleString(steps))
		if err != nil {
			t.Fatalf("ParseSchedule(ScheduleString) failed: %v", err)
		}
		if len(again) != len(steps) {
			t.Fatalf("round-trip changed step count: %d vs %d", len(steps), len(again))
		}
		for i := range steps {
			if again[i].At != steps[i].At || again[i].Kind != steps[i].Kind {
				t.Fatalf("round-trip changed step %d: %v vs %v", i, steps[i], again[i])
			}
		}
	})
}
