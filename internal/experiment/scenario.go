package experiment

import (
	"fmt"
	"time"

	"repro/internal/dash"
	"repro/internal/gamestream"
	"repro/internal/iperf"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/ping"
	"repro/internal/probe"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Host addresses in the testbed.
const (
	addrGameServer  packet.Addr = 1
	addrIperfServer packet.Addr = 2
	addrGameClient  packet.Addr = 11
	addrIperfClient packet.Addr = 12
)

// Flow identifiers.
const (
	flowGame  packet.FlowID = 1
	flowIperf packet.FlowID = 2
	flowPing  packet.FlowID = 3
)

// impairerSeedTag ("impairer" in ASCII) separates the impairment stage's
// random stream from the engine stream it used to fork from. Deriving it
// straight from the run seed makes the stage's presence invisible to every
// other component's stream — the property the clean-run-equivalence
// invariant checks.
const impairerSeedTag uint64 = 0x696d706169726572

// Queue disciplines for the bottleneck.
const (
	AQMDropTail = "droptail"
	AQMCoDel    = "codel"
	AQMFQCoDel  = "fq_codel"
)

// Condition is one cell of the experimental grid (Table 2).
type Condition struct {
	System gamestream.System
	// CCA is the competing flow's congestion control ("cubic" or "bbr"),
	// or empty for no competing flow.
	CCA       string
	Capacity  units.Rate
	QueueMult float64 // bottleneck queue in multiples of the BDP
	AQM       string  // bottleneck discipline; default drop-tail
	// Impair adds stochastic path impairments at the bottleneck (loss,
	// jitter/reordering, duplication). The zero value is the clean path of
	// the paper's testbed; only scalar fields live here so Condition stays
	// usable as a map key.
	Impair netem.Impairment
}

// String renders the condition compactly, e.g. "stadia/cubic/B25/q2.0x".
// Impairments append their own compact suffix ("…/loss2%+jit3ms") only when
// enabled, so clean-path condition strings — and the run seeds derived from
// them — are unchanged from the unimpaired grid.
func (c Condition) String() string {
	cca := c.CCA
	if cca == "" {
		cca = "solo"
	}
	s := fmt.Sprintf("%s/%s/B%.0f/q%.1fx", c.System, cca, c.Capacity.Mbit(), c.QueueMult)
	if c.Impair.Enabled() {
		s += "/" + c.Impair.String()
	}
	return s
}

// Competitor describes one cross-traffic source sharing the bottleneck
// during the contention phase — the paper's future-work "multiple flows
// and mixtures of flows".
type Competitor struct {
	// Kind selects the traffic model: "iperf" (bulk TCP download),
	// "dash" (HTTP adaptive video over TCP), or "videocall" (small
	// GCC-controlled UDP stream).
	Kind string
	// CCA is the TCP congestion control for iperf/dash competitors.
	CCA string
}

// Competitor kinds.
const (
	CompIperf     = "iperf"
	CompDash      = "dash"
	CompVideoCall = "videocall"
)

// CompetitorTrace is one competitor's delivered bitrate series.
type CompetitorTrace struct {
	Competitor
	Mbps []float64
}

// RunConfig fully specifies one run.
type RunConfig struct {
	Condition
	Timeline metrics.Timeline
	Seed     uint64
	// Competitors, when non-empty, replaces the single Condition.CCA
	// iperf flow with an arbitrary mix of cross-traffic sources.
	Competitors []Competitor
	// Population adds an N-flow population on top of the base scenario:
	// ON/OFF flow slots with heavy-tailed schedules plus optional extra
	// game streams. The zero value leaves the topology unchanged (see
	// docs/SCENARIOS.md).
	Population FlowPopulation
	// Profile, when non-nil, overrides the stock profile for the game
	// system — the hook for ablation studies on controller mechanisms.
	Profile *gamestream.Profile
	// OnPacket, when non-nil, observes every packet the bottleneck router
	// forwards (e.g. a pcap writer tap).
	OnPacket func(at sim.Time, p *packet.Packet)
	// BaseRTT is the no-load round-trip time the paper equalised to
	// 16.5 ms across systems.
	BaseRTT time.Duration
	// Burst is the token-bucket burst (tc tbf burst 1mbit = 125 kB).
	Burst units.ByteSize
	// PingInterval spaces the RTT probes.
	PingInterval time.Duration
	// Probe, when non-nil, attaches the tcp_probe-style instrumentation
	// layer: per-flow CC samplers on every TCP competitor, occupancy and
	// sojourn telemetry on the bottleneck queue, and (capacity permitting)
	// a packet lifecycle event ring. The populated probe comes back on
	// RunResult.Probe.
	Probe *probe.Config
	// Schedule retunes bottleneck elements mid-run (rate steps, delay and
	// loss changes, link flaps) at fixed trace offsets. Steps execute via
	// sim timers, so scheduled runs stay deterministic per seed.
	Schedule []ScheduleStep
	// SerialDispatch disables the engine's batched same-timestamp drain
	// loop and dispatches strictly one event at a time. Batched and serial
	// dispatch are contractually identical (same order, same output, same
	// stats); this knob exists so differential tests can prove it.
	SerialDispatch bool
	// ForceImpairer constructs the impairment stage even when no static
	// impairment or schedule is configured. An inert impairer is
	// contractually invisible — no events, no RNG draws, no extra delay —
	// and this knob lets differential tests (the clean-run-equivalence
	// invariant) prove it by comparing against a run without the stage.
	ForceImpairer bool
}

// Defaults fills zero fields with the paper's parameters.
func (c RunConfig) Defaults() RunConfig {
	if c.Timeline == (metrics.Timeline{}) {
		c.Timeline = metrics.PaperTimeline
	}
	if c.BaseRTT == 0 {
		c.BaseRTT = 16500 * time.Microsecond
	}
	if c.Burst == 0 {
		c.Burst = 125 * units.KB
	}
	if c.PingInterval == 0 {
		c.PingInterval = 500 * time.Millisecond
	}
	if c.AQM == "" {
		c.AQM = AQMDropTail
	}
	return c
}

// QueueBytes returns the bottleneck queue limit for the condition.
func (c RunConfig) QueueBytes() units.ByteSize {
	bdp := units.BDP(c.Capacity, c.BaseRTT)
	q := units.ByteSize(float64(bdp) * c.QueueMult)
	if q < 2*packet.MTU {
		q = 2 * packet.MTU
	}
	return q
}

// RunResult holds everything a single run contributes to the analysis.
type RunResult struct {
	Cfg RunConfig

	// Bin is the bitrate series resolution (0.5 s).
	Bin time.Duration
	// GameMbps and TCPMbps are downstream on-wire bitrates per bin.
	GameMbps []float64
	TCPMbps  []float64
	// FPSBins is displayed frames per 1-second bin.
	FPSBins []float64
	// RTT samples from the ping probe.
	RTT []ping.Sample
	// GameLoss and TCPLoss are bottleneck loss fractions over the whole
	// trace; windowed values come from the capture-derived bins below.
	GameLossBins []float64 // loss fraction per 0.5 s bin
	TCPLossBins  []float64

	// CompetitorTraces holds per-competitor bitrate series for mixed-
	// traffic runs (TCPMbps is then their aggregate).
	CompetitorTraces []CompetitorTrace

	// Server/client end-state counters.
	FramesSent      int64
	FramesDisplayed int64
	FramesDropped   int64
	NackRetx        int64
	TCPRetransmits  int
	EventsProcessed uint64
	// Engine is the full engine counter snapshot at the end of the run
	// (EventsProcessed is kept alongside for older call sites).
	Engine sim.Stats

	// Probe holds the instrumentation capture when Cfg.Probe was set; nil
	// otherwise. It is not persisted by SaveSweep (export it to CSV/JSONL
	// instead).
	Probe *probe.Probe

	// Impair holds the impairer's end-of-run counters when the run was
	// impaired (static impairment or schedule); zero otherwise.
	Impair netem.ImpairStats

	// Flows holds per-member summaries for flow-population runs (extra
	// game streams first, then slots); nil when no population was
	// configured.
	Flows []FlowStats
	// FlowSummary aggregates cross-flow fairness and starvation metrics
	// over the fairness window; zero when no population was configured.
	FlowSummary FlowSummary
}

// GameSeries returns the game bitrate as a metrics.Series.
func (r *RunResult) GameSeries() metrics.Series {
	return metrics.Series{Bin: r.Bin, V: r.GameMbps}
}

// TCPSeries returns the competing-flow bitrate as a metrics.Series.
func (r *RunResult) TCPSeries() metrics.Series {
	return metrics.Series{Bin: r.Bin, V: r.TCPMbps}
}

// FPSSeries returns displayed frame rate as a 1-second series.
func (r *RunResult) FPSSeries() metrics.Series {
	return metrics.Series{Bin: time.Second, V: r.FPSBins}
}

// RTTBetween returns ping RTTs (ms) observed in [from, to) trace offsets.
func (r *RunResult) RTTBetween(from, to time.Duration) []float64 {
	var out []float64
	for _, s := range r.RTT {
		at := s.At.Duration()
		if at >= from && at < to {
			out = append(out, float64(s.RTT)/float64(time.Millisecond))
		}
	}
	return out
}

// LossBetween returns the mean per-bin loss fraction of the game flow over
// [from, to).
func (r *RunResult) LossBetween(from, to time.Duration) float64 {
	s := metrics.Series{Bin: r.Bin, V: r.GameLossBins}
	return s.MeanBetween(from, to)
}

// Run executes one complete experiment run and returns its result. The run
// is a pure function of cfg (including Seed).
func Run(cfg RunConfig) *RunResult {
	cfg = cfg.Defaults()
	eng := sim.NewEngine(cfg.Seed)
	eng.SetBatchDispatch(!cfg.SerialDispatch)
	var ids uint64

	// --- Topology (paper Figure 1) ---
	// Downstream: servers --1G links--> router -> shaper(queue) ->
	// delay(owd) -> client switch -> clients.
	// Upstream: clients -> delay(owd) -> 200M link -> server switch.
	owd := cfg.BaseRTT / 2

	clientSwitch := netem.NewRouter()
	serverSwitch := netem.NewRouter()

	var q netem.Queue
	switch cfg.AQM {
	case AQMDropTail:
		q = netem.NewDropTail(cfg.QueueBytes())
	case AQMCoDel:
		q = netem.NewCoDel(cfg.QueueBytes())
	case AQMFQCoDel:
		q = netem.NewFQCoDel(cfg.QueueBytes())
	default:
		panic("experiment: unknown AQM " + cfg.AQM)
	}

	capture := trace.NewCapture(eng, trace.DefaultBin)
	capture.SetHorizon(cfg.Timeline.TraceEnd)

	// One packet freelist per run: every endpoint allocates through it, the
	// hosts recycle packets after delivery, and the bottleneck drop callback
	// recycles the ones the queue kills. Single-goroutine and deterministic
	// — see docs/ARCHITECTURE.md, "hot path & memory discipline".
	pool := packet.NewPool()

	// The queue invokes its drop callback for every packet it refuses or
	// sheds, so chaining the pool release here covers enqueue-overflow and
	// AQM dequeue drops for all three disciplines.
	q.SetDropCallback(func(p *packet.Packet) {
		capture.OnDrop(p)
		pool.Put(p)
	})

	// Instrumentation: when probing, the drop callback chains into the
	// probe's drop-event recorder and the shaper/delivery taps feed the
	// lifecycle ring. When not probing, every hook stays nil.
	var prb *probe.Probe
	if cfg.Probe != nil {
		prb = probe.New(eng, *cfg.Probe)
		qp := prb.AttachQueue("bottleneck", q)
		q.SetDropCallback(func(p *packet.Packet) {
			capture.OnDrop(p)
			prb.OnDrop(qp, p)
			pool.Put(p)
		})
	}

	downDelay := netem.NewDelay(eng, owd, clientSwitch)
	var deliveredTap packet.Handler = packet.HandlerFunc(func(p *packet.Packet) {
		capture.TapDelivered(p)
		downDelay.Handle(p)
	})
	if prb != nil {
		inner := deliveredTap
		deliveredTap = packet.HandlerFunc(func(p *packet.Packet) {
			prb.Log(probe.EvDeliver, p)
			inner.Handle(p)
		})
	}
	// Impairments sit between the shaper and the delivered tap: a packet the
	// impairer kills was offered to the bottleneck (counted by the router
	// tap) but never delivered, so it shows up as loss in the capture — the
	// same accounting as a queue drop. The impairer exists only when
	// something is configured (or ForceImpairer demands it), and its RNG is
	// derived directly from the run seed rather than forked from the engine
	// stream, so whether the stage is present or not, every other
	// component's random stream is bit-for-bit unchanged.
	var impairer *netem.Impairer
	shaperOut := deliveredTap
	if cfg.Impair.Enabled() || len(cfg.Schedule) > 0 || cfg.ForceImpairer {
		impairer = netem.NewImpairer(eng, cfg.Impair, sim.NewRNG(cfg.Seed^impairerSeedTag), deliveredTap)
		impairer.SetPool(pool)
		if prb != nil {
			ip := prb.AttachDropSource("impairer")
			impairer.SetDropCallback(func(p *packet.Packet) {
				capture.OnDrop(p)
				prb.OnDrop(ip, p)
			})
		} else {
			impairer.SetDropCallback(capture.OnDrop)
		}
		shaperOut = impairer
	}
	shaper := netem.NewShaper(eng, cfg.Capacity, cfg.Burst, q, shaperOut)
	if prb != nil {
		shaper.SetQueueTap(prb.LogTap(probe.EvEnqueue), prb.LogTap(probe.EvDequeue))
	}
	downRouter := netem.NewRouter()
	downRouter.Tap(capture.Tap)
	if cfg.OnPacket != nil {
		downRouter.Tap(func(p *packet.Packet) { cfg.OnPacket(eng.Now(), p) })
	}
	downRouter.Route(addrGameClient, shaper)
	downRouter.Route(addrIperfClient, shaper)

	// Server access links: 1 Gb/s with negligible extra delay.
	gameUplink := netem.NewLink(eng, units.Gbps(1), 50*time.Microsecond, downRouter)
	iperfUplink := netem.NewLink(eng, units.Gbps(1), 50*time.Microsecond, downRouter)

	upLink := netem.NewLink(eng, units.Mbps(200), 0, serverSwitch)
	upDelay := netem.NewDelay(eng, owd, upLink)

	gameServerHost := netem.NewHost(eng, addrGameServer, gameUplink, &ids)
	iperfServerHost := netem.NewHost(eng, addrIperfServer, iperfUplink, &ids)
	gameClientHost := netem.NewHost(eng, addrGameClient, upDelay, &ids)
	iperfClientHost := netem.NewHost(eng, addrIperfClient, upDelay, &ids)
	for _, h := range []*netem.Host{gameServerHost, iperfServerHost, gameClientHost, iperfClientHost} {
		h.SetPool(pool)
	}

	serverSwitch.Route(addrGameServer, gameServerHost)
	serverSwitch.Route(addrIperfServer, iperfServerHost)
	clientSwitch.Route(addrGameClient, gameClientHost)
	clientSwitch.Route(addrIperfClient, iperfClientHost)

	// --- Applications ---
	var profile gamestream.Profile
	if cfg.Profile != nil {
		profile = *cfg.Profile
	} else {
		profile = gamestream.ProfileFor(cfg.System)
	}
	server := gamestream.NewServer(gameServerHost, flowGame, addrGameClient, profile, eng.Rand().Fork())
	client := gamestream.NewClient(gameClientHost, flowGame, addrGameServer, profile)

	fpsBins := []float64{}
	client.OnFrame = func(fr gamestream.FrameResult) {
		if !fr.Displayed {
			return
		}
		bin := int(fr.At.Duration() / time.Second)
		for len(fpsBins) <= bin {
			fpsBins = append(fpsBins, 0)
		}
		fpsBins[bin]++
	}

	// Cross traffic: the paper's single iperf flow, or an arbitrary mix.
	comps := cfg.Competitors
	if len(comps) == 0 && cfg.CCA != "" {
		comps = []Competitor{{Kind: CompIperf, CCA: cfg.CCA}}
	}
	var bulk *iperf.Flow // first iperf competitor, for retransmit stats
	compFlows := make([]packet.FlowID, len(comps))
	for i, comp := range comps {
		flow := flowIperf + packet.FlowID(i*10)
		compFlows[i] = flow
		startAt := sim.At(cfg.Timeline.FlowStart)
		stopAt := sim.At(cfg.Timeline.FlowStop)
		switch comp.Kind {
		case CompIperf:
			f := iperf.New(iperfServerHost, iperfClientHost, flow, comp.CCA, sim.At(trace.DefaultBin))
			f.ScheduleRun(startAt, stopAt)
			if bulk == nil {
				bulk = f
			}
			if prb != nil {
				prb.AttachSender(fmt.Sprintf("iperf-%s-%d", comp.CCA, i), f.Sender)
			}
		case CompDash:
			sess := dash.New(iperfServerHost, iperfClientHost, flow, dash.Config{CCA: comp.CCA})
			eng.ScheduleAt(startAt, sess.Start)
			eng.ScheduleAt(stopAt, sess.Stop)
			if prb != nil {
				prb.AttachSender(fmt.Sprintf("dash-%s-%d", comp.CCA, i), sess.Sender)
			}
		case CompVideoCall:
			vp := gamestream.VideoCallProfile()
			vs := gamestream.NewServer(iperfServerHost, flow, addrIperfClient, vp, eng.Rand().Fork())
			gamestream.NewClient(iperfClientHost, flow, addrIperfServer, vp)
			eng.ScheduleAt(startAt, vs.Start)
			eng.ScheduleAt(stopAt, vs.Stop)
		default:
			panic("experiment: unknown competitor kind " + comp.Kind)
		}
	}

	// N-flow population: slots and extra streams attach to the same four
	// hosts. The RNG fork happens only when a population is configured, so
	// clean runs keep their random streams byte-identical.
	var pop *population
	if cfg.Population.Enabled() {
		pop = buildPopulation(eng, cfg, popHosts{
			gameServer:  gameServerHost,
			gameClient:  gameClientHost,
			iperfServer: iperfServerHost,
			iperfClient: iperfClientHost,
		}, prb, eng.Rand().Fork())
	}

	pinger := ping.NewPinger(gameClientHost, flowPing, addrGameServer, cfg.PingInterval)
	ping.NewResponder(gameServerHost, flowPing)

	// Mid-run condition changes: each step is one sim event retuning its
	// element in place, so a scheduled run is still a pure function of cfg.
	for _, st := range cfg.Schedule {
		st := st
		at := sim.At(st.At)
		switch st.Kind {
		case ScheduleRate:
			eng.ScheduleAt(at, func() { shaper.SetRate(st.Rate) })
		case ScheduleDelay:
			eng.ScheduleAt(at, func() { downDelay.SetDelay(st.Delay) })
		case ScheduleLoss:
			eng.ScheduleAt(at, func() { impairer.SetLossRate(st.LossRate) })
		case ScheduleJitter:
			eng.ScheduleAt(at, func() { impairer.SetJitter(st.Jitter) })
		case ScheduleDown:
			eng.ScheduleAt(at, func() { impairer.SetDown(true) })
		case ScheduleUp:
			eng.ScheduleAt(at, func() { impairer.SetDown(false) })
		default:
			panic("experiment: unknown schedule kind " + st.Kind)
		}
	}

	// --- Procedure ---
	if prb != nil {
		prb.Start()
	}
	server.Start()
	pinger.Start()
	end := sim.At(cfg.Timeline.TraceEnd)
	eng.Run(end)

	// --- Collect ---
	nbins := int(cfg.Timeline.TraceEnd / trace.DefaultBin)
	// TCPMbps aggregates all competitor flows (identical to the single
	// iperf series in the paper's default configuration).
	tcpAgg := make([]float64, nbins)
	var compTraces []CompetitorTrace
	for i, flow := range compFlows {
		series := capture.BitrateSeries(flow, nbins)
		for b, v := range series {
			tcpAgg[b] += v
		}
		compTraces = append(compTraces, CompetitorTrace{Competitor: comps[i], Mbps: series})
	}

	res := &RunResult{
		Cfg:             cfg,
		Bin:             trace.DefaultBin,
		GameMbps:        capture.BitrateSeries(flowGame, nbins),
		TCPMbps:         tcpAgg,
		FPSBins:         fpsBins,
		RTT:             pinger.Samples,
		FramesSent:      server.FramesSent,
		FramesDisplayed: client.FramesDisplayed,
		FramesDropped:   client.FramesDropped,
		NackRetx:        server.Retransmits,
		EventsProcessed: eng.Processed(),
		Engine:          eng.Stats(),
	}
	res.GameLossBins = lossBins(capture, flowGame, nbins)
	res.TCPLossBins = lossBins(capture, flowIperf, nbins)
	res.CompetitorTraces = compTraces
	res.Probe = prb
	if impairer != nil {
		res.Impair = impairer.Snapshot()
	}
	if bulk != nil {
		res.TCPRetransmits = bulk.Sender.Stats.Retransmits
	}
	if pop != nil {
		pop.finish(end)
		res.Flows = pop.stats(capture, end)
		from, to := cfg.Timeline.FairnessWindow()
		res.FlowSummary = pop.summarize(capture, cfg, sim.At(from), sim.At(to))
	}
	return res
}

func lossBins(cap *trace.Capture, flow packet.FlowID, n int) []float64 {
	out := make([]float64, n)
	bin := cap.BinDuration()
	for i := 0; i < n; i++ {
		from := sim.At(time.Duration(i) * bin)
		to := sim.At(time.Duration(i+1) * bin)
		out[i] = cap.LossBetween(flow, from, to)
	}
	return out
}
