package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/units"
)

func TestParseMix(t *testing.T) {
	mix, err := ParseMix(" iperf:bbr, dash ,videocall")
	if err != nil {
		t.Fatal(err)
	}
	want := []Competitor{
		{Kind: CompIperf, CCA: "bbr"},
		{Kind: CompDash, CCA: "cubic"},
		{Kind: CompVideoCall},
	}
	if len(mix) != len(want) {
		t.Fatalf("got %d entries, want %d", len(mix), len(want))
	}
	for i := range want {
		if mix[i] != want[i] {
			t.Errorf("entry %d: got %+v, want %+v", i, mix[i], want[i])
		}
	}
	if m, err := ParseMix("  "); err != nil || m != nil {
		t.Errorf("blank spec: got %v, %v; want nil, nil", m, err)
	}
	for _, bad := range []string{"torrent", "videocall:cubic", "iperf,"} {
		if _, err := ParseMix(bad); err == nil {
			t.Errorf("ParseMix(%q) accepted an invalid spec", bad)
		}
	}
}

func TestFlowPopulationString(t *testing.T) {
	if s := (FlowPopulation{}).String(); s != "none" {
		t.Errorf("zero population renders %q, want none", s)
	}
	p := FlowPopulation{
		Flows: 32, Streams: 2,
		Mix:    []Competitor{{Kind: CompIperf, CCA: "cubic"}, {Kind: CompVideoCall}},
		MeanOn: 30 * time.Second, MeanOff: 15 * time.Second, Shape: 1.5,
	}
	want := "flows=32(iperf:cubic,videocall)/streams=2/on=30s/off=15s/a=1.5"
	if s := p.String(); s != want {
		t.Errorf("String() = %q, want %q", s, want)
	}
}

// TestJainIndexHandComputed pins the fairness index the flow summary is
// built on against hand-computed cases: (Σx)² / (n·Σx²).
func TestJainIndexHandComputed(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},        // equal shares
		{[]float64{1, 0, 0, 0}, 0.25},     // total starvation: 1/n
		{[]float64{2, 4}, 0.9},            // 36 / (2·20)
		{[]float64{5}, 1},                 // single flow is trivially fair
		{[]float64{1, 2, 3}, 36.0 / 42.0}, // 36 / (3·14)
	}
	for _, c := range cases {
		if got := metrics.JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// popRun is the small populated run the behaviour tests execute.
func popRun(flows, streams int, seed uint64) *RunResult {
	return Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
		},
		Population: FlowPopulation{Flows: flows, Streams: streams},
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		Seed:       seed,
	})
}

// TestPopulationProducesActivity checks the scheduler actually delivers
// traffic: slots arrive at least once, active time accumulates inside the
// contention window, and the summary includes the game streams.
func TestPopulationProducesActivity(t *testing.T) {
	r := popRun(8, 1, 42)
	if len(r.Flows) != 9 { // 1 extra stream + 8 slots
		t.Fatalf("got %d flow stats, want 9", len(r.Flows))
	}
	span := (r.Cfg.Timeline.FlowStop - r.Cfg.Timeline.FlowStart).Seconds()
	arrivals, active := 0, 0.0
	for _, fs := range r.Flows {
		if fs.Kind == "stream" {
			if fs.MeanMbps <= 0 {
				t.Errorf("extra stream %d delivered nothing", fs.Flow)
			}
			continue
		}
		arrivals += fs.Arrivals
		active += fs.ActiveSec
		if fs.ActiveSec > span+1e-9 {
			t.Errorf("flow %d active %.1fs exceeds the %.1fs window", fs.Flow, fs.ActiveSec, span)
		}
	}
	if arrivals < 8 {
		t.Errorf("only %d arrivals across 8 slots; scheduler barely ran", arrivals)
	}
	if active == 0 {
		t.Error("no slot accumulated active time")
	}
	sum := r.FlowSummary
	if sum.Streams != 2 || sum.Flows != 8 {
		t.Errorf("summary config echo wrong: %+v", sum)
	}
	if sum.Active < 2 {
		t.Errorf("summary includes %d flows, want at least the two game streams", sum.Active)
	}
	if sum.Jain <= 0 || sum.Jain > 1 {
		t.Errorf("Jain index %v out of (0, 1]", sum.Jain)
	}
	if sum.TputP90Mbps < sum.TputP50Mbps || sum.TputP50Mbps < sum.TputP10Mbps {
		t.Errorf("throughput quantiles not ordered: %+v", sum)
	}
	// With unequal shares (Jain well below 1) the quantiles must actually
	// spread — guards against passing a percentage where Percentile wants
	// a 0..1 fraction, which silently returns the max for every quantile.
	if sum.Jain < 0.9 && !(sum.TputP10Mbps < sum.TputP90Mbps) {
		t.Errorf("unequal shares (jain %.3f) but p10 == p90 == %v", sum.Jain, sum.TputP90Mbps)
	}
}

// TestPopulationDeterministicSchedule checks the arrival/departure sequence
// is a pure function of the seed: same seed → identical per-flow stats,
// different seed → a different schedule.
func TestPopulationDeterministicSchedule(t *testing.T) {
	a, b := popRun(8, 1, 42), popRun(8, 1, 42)
	if a.EventsProcessed != b.EventsProcessed {
		t.Errorf("events diverged: %d vs %d", a.EventsProcessed, b.EventsProcessed)
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Errorf("flow %d stats diverged: %+v vs %+v", i, a.Flows[i], b.Flows[i])
		}
	}
	if a.FlowSummary != b.FlowSummary {
		t.Errorf("summaries diverged: %+v vs %+v", a.FlowSummary, b.FlowSummary)
	}
	c := popRun(8, 1, 43)
	same := true
	for i := range a.Flows {
		if a.Flows[i] != c.Flows[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical per-flow stats")
	}
}

// TestPopulationCleanRunUnchanged is the no-regression guard for the
// population RNG fork: enabling a population must not perturb the random
// streams of a clean run with the same seed.
func TestPopulationCleanRunUnchanged(t *testing.T) {
	clean1 := popRun(0, 0, 42)
	_ = popRun(8, 1, 42) // interleave a populated run; it must not matter
	clean2 := popRun(0, 0, 42)
	if clean1.EventsProcessed != clean2.EventsProcessed {
		t.Fatalf("clean runs diverged: %d vs %d events", clean1.EventsProcessed, clean2.EventsProcessed)
	}
	for i := range clean1.GameMbps {
		if clean1.GameMbps[i] != clean2.GameMbps[i] {
			t.Fatalf("bin %d: %v vs %v", i, clean1.GameMbps[i], clean2.GameMbps[i])
		}
	}
	if clean1.Flows != nil || clean1.FlowSummary != (FlowSummary{}) {
		t.Error("clean run carries population results")
	}
}

// canonicalLog parses JSONL records, zeroes the wall-clock fields (the only
// legitimately machine-dependent values), re-marshals, and sorts the lines
// so worker completion order does not matter; everything else must match
// byte for byte.
func canonicalLog(t *testing.T, b []byte) string {
	t.Helper()
	var lines []string
	for _, line := range bytes.Split(bytes.TrimSpace(b), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var rec obs.Record
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("bad runlog line %q: %v", line, err)
		}
		rec.Engine.WallSeconds = 0
		rec.Engine.Speedup = 0
		rec.Engine.EventsPerSecond = 0
		out, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, string(out))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// lockedBuffer is a RunLog sink safe for concurrent workers.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

// TestPopulationSweepDeterministicAcrossWorkers is the acceptance check for
// the flow-population scheduler: a populated sweep's runlog records are
// byte-identical across 1, 4 and 8 workers (compared order-independently),
// and the per-run flow summaries agree run for run.
func TestPopulationSweepDeterministicAcrossWorkers(t *testing.T) {
	sweepWith := func(workers int) (*SweepResult, string) {
		var sink lockedBuffer
		res := RunSweep(context.Background(), SweepConfig{
			Systems:    []gamestream.System{gamestream.Stadia, gamestream.Luna},
			CCAs:       []string{"cubic"},
			Capacities: []units.Rate{units.Mbps(25)},
			QueueMults: []float64{2},
			Iterations: 2,
			Timeline:   metrics.PaperTimeline.Scale(0.05),
			BaseSeed:   7,
			Workers:    workers,
			Population: FlowPopulation{Flows: 6, Streams: 1},
			RunLog:     obs.NewJSONL(&sink),
		})
		return res, canonicalLog(t, sink.buf.Bytes())
	}
	refRes, refLog := sweepWith(1)
	if refLog == "" {
		t.Fatal("1-worker sweep produced an empty runlog")
	}
	for _, workers := range []int{4, 8} {
		res, log := sweepWith(workers)
		if log != refLog {
			t.Errorf("runlog with %d workers differs from 1-worker runlog", workers)
		}
		for _, ca := range refRes.Conditions {
			cb := res.Find(ca.Cond)
			if cb == nil || len(ca.Runs) != len(cb.Runs) {
				t.Fatalf("%s: runs missing with %d workers", ca.Cond, workers)
			}
			for i := range ca.Runs {
				if ca.Runs[i].FlowSummary != cb.Runs[i].FlowSummary {
					t.Errorf("%s run %d: flow summary diverged with %d workers", ca.Cond, i, workers)
				}
			}
		}
	}
}

// TestManyFlowsSteadyStateAllocs is the allocation-discipline acceptance
// check: with 200 flow slots, doubling the simulated time (and therefore
// roughly doubling the packet count) must not grow heap allocations
// proportionally — steady state is allocation-free, so the delta between a
// short and a long run stays a tiny fraction of the event delta.
func TestManyFlowsSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("200-flow smoke run is a few seconds")
	}
	run := func(scale float64) (allocs uint64, events uint64) {
		cfg := RunConfig{
			Condition: Condition{
				System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
			},
			Population: FlowPopulation{Flows: 200},
			Timeline:   metrics.PaperTimeline.Scale(scale),
			Seed:       1,
		}
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		r := Run(cfg)
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs, r.EventsProcessed
	}
	// Warm up once so lazily initialised globals (profiles, tables) are out
	// of the measured numbers.
	run(0.02)
	shortAllocs, shortEvents := run(0.03)
	longAllocs, longEvents := run(0.06)
	if longEvents < shortEvents*3/2 {
		t.Fatalf("long run barely longer: %d vs %d events", longEvents, shortEvents)
	}
	extraAllocs := int64(longAllocs) - int64(shortAllocs)
	extraEvents := int64(longEvents) - int64(shortEvents)
	if extraAllocs > extraEvents/100 {
		t.Errorf("steady state allocates: %d extra allocs over %d extra events (short %d, long %d)",
			extraAllocs, extraEvents, shortAllocs, longAllocs)
	}
}

// TestManyFlowsAllocBudget pins the absolute allocation cost of the
// 200-flow reference run (the many_flows_200 benchmark condition, full
// paper timeline): construction plus steady state must stay under 2,000
// heap allocations for the whole run. TestManyFlowsSteadyStateAllocs
// proves the steady state doesn't leak; this bound additionally pins the
// per-slot construction cost — bulk slot/endpoint arrays, shared
// scoreboard/ACK-option pools, and arena-carved trace state — so a
// regression back toward per-slot churn (~50 allocs per slot) fails
// loudly rather than fading into the benchmark noise.
func TestManyFlowsAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("two full-timeline 200-flow runs take a few seconds")
	}
	const budget = 2000
	cfg := RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2,
		},
		Population: FlowPopulation{Flows: 200},
		Seed:       1,
	}
	Run(cfg) // warm lazily initialised globals (profiles, tables, pools)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	Run(cfg)
	runtime.ReadMemStats(&after)
	if allocs := after.Mallocs - before.Mallocs; allocs > budget {
		t.Errorf("many_flows_200 run cost %d allocs, budget %d", allocs, budget)
	}
}

// TestSteadyStateAllocsBBRAndImpaired extends the allocation-discipline
// check beyond the cubic reference run to the two holdout classes the
// profile work targeted: a BBR competitor (delivery-rate sampling and the
// BtlBw filter must not allocate per ACK) and an impaired path (the
// Gilbert-Elliott loss process, NACK retransmissions, and jitter timers
// must not allocate per packet). Doubling simulated time must leave the
// alloc delta a tiny fraction of the event delta.
func TestSteadyStateAllocsBBRAndImpaired(t *testing.T) {
	if testing.Short() {
		t.Skip("several full-fidelity runs")
	}
	cases := []struct {
		name string
		cond Condition
	}{
		{"bbr", Condition{
			System: gamestream.Stadia, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 2,
		}},
		{"impaired", Condition{
			System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
			Impair: netem.Impairment{
				LossModel: netem.LossGE, GEGoodBad: 0.01, GEBadGood: 0.25,
				Jitter: 2 * time.Millisecond,
			},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(scale float64) (allocs uint64, events uint64) {
				cfg := RunConfig{
					Condition: tc.cond,
					Timeline:  metrics.PaperTimeline.Scale(scale),
					Seed:      1,
				}
				runtime.GC()
				var before, after runtime.MemStats
				runtime.ReadMemStats(&before)
				r := Run(cfg)
				runtime.ReadMemStats(&after)
				return after.Mallocs - before.Mallocs, r.EventsProcessed
			}
			run(0.02) // warm lazily initialised globals
			shortAllocs, shortEvents := run(0.05)
			longAllocs, longEvents := run(0.1)
			if longEvents < shortEvents*3/2 {
				t.Fatalf("long run barely longer: %d vs %d events", longEvents, shortEvents)
			}
			extraAllocs := int64(longAllocs) - int64(shortAllocs)
			extraEvents := int64(longEvents) - int64(shortEvents)
			if extraAllocs > extraEvents/100 {
				t.Errorf("steady state allocates: %d extra allocs over %d extra events (short %d, long %d)",
					extraAllocs, extraEvents, shortAllocs, longAllocs)
			}
		})
	}
}
