package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/runcache"
	"repro/internal/stats"
	"repro/internal/units"
)

// DefaultWorkers is the repository-wide default for run parallelism: one
// worker per CPU. Every layer that exposes a Workers knob (SweepConfig,
// figures.Options, cmd/gsbench) funnels its zero value through this
// function, so the default lives in exactly one place.
func DefaultWorkers() int { return runtime.NumCPU() }

// SweepConfig describes a full experimental campaign (Table 2 defaults).
type SweepConfig struct {
	Systems    []gamestream.System
	CCAs       []string // "" entries mean no competing flow
	Capacities []units.Rate
	QueueMults []float64
	AQM        string
	// Impairments is an extra grid axis of path impairment profiles; empty
	// means the single clean path of the paper's grid. Because an enabled
	// impairment extends Condition.String(), each profile gets its own
	// deterministic per-run seeds.
	Impairments []netem.Impairment
	// Schedule, when non-empty, applies the same mid-run retuning steps to
	// every run of the sweep.
	Schedule []ScheduleStep
	// Population, when enabled, attaches the same N-flow population (extra
	// game streams plus on/off competing flows) to every run of the sweep.
	// It does not extend Condition.String(), so a populated sweep reuses the
	// clean sweep's per-run seeds — deliberately: paired comparisons against
	// the 1-vs-1 baseline then differ only in the population.
	Population FlowPopulation
	Iterations int
	Timeline   metrics.Timeline
	BaseRTT    time.Duration
	Burst      units.ByteSize
	// Workers bounds run parallelism (<= 0 = DefaultWorkers, i.e. NumCPU).
	Workers int
	// BaseSeed derives all per-run seeds deterministically.
	BaseSeed uint64
	// Progress, when non-nil, receives live sweep progress (see obs). It
	// is never persisted by SaveSweep.
	Progress obs.Progress
	// RunLog, when non-nil, receives one structured record per completed
	// run (see obs.JSONL). It is never persisted by SaveSweep.
	RunLog obs.RunLog
	// Probe, when non-nil, instruments every run (see probe.Config); the
	// capture metadata rides along on each RunLog record.
	Probe *probe.Config
	// ProbeDir, when non-empty (and Probe is set), receives one set of
	// probe exports per run, named <cond>__seed<seed>.{cc,queue,drops}.csv
	// (plus .events.jsonl when the ring is on).
	ProbeDir string
	// Cache, when non-nil, serves each run from the content-addressed run
	// cache when its result is already stored and stores it otherwise, so
	// a repeated or resumed sweep only executes the missing runs. Probed
	// sweeps bypass the cache (see RunConfig.Cacheable). It is never
	// persisted by SaveSweep.
	Cache *runcache.Cache
	// DiscardRuns drops each RunResult after its sinks (Progress, RunLog)
	// have seen it, so the sweep runs in O(conditions) memory instead of
	// retaining every run. The returned SweepResult then has no Conditions
	// — campaign-scale runs consume their data through a streaming sink
	// such as obs.Aggregator.
	DiscardRuns bool
	// SerialDispatch forwards to RunConfig.SerialDispatch on every run:
	// one-event-at-a-time dispatch for differential testing against the
	// batched drain loop.
	SerialDispatch bool
}

// PaperSweep returns the paper's full grid: 3 systems × {cubic, bbr} ×
// {15, 25, 35} Mb/s × {0.5, 2, 7}×BDP × 15 iterations.
func PaperSweep() SweepConfig {
	return SweepConfig{
		Systems:    gamestream.Systems,
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)},
		QueueMults: []float64{0.5, 2, 7},
		Iterations: 15,
		Timeline:   metrics.PaperTimeline,
		BaseSeed:   20220322, // data gathered March 2022
	}
}

// Defaults fills zero fields.
func (s SweepConfig) Defaults() SweepConfig {
	if len(s.Systems) == 0 {
		s.Systems = gamestream.Systems
	}
	if len(s.CCAs) == 0 {
		s.CCAs = []string{"cubic", "bbr"}
	}
	if len(s.Capacities) == 0 {
		s.Capacities = []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)}
	}
	if len(s.QueueMults) == 0 {
		s.QueueMults = []float64{0.5, 2, 7}
	}
	if s.Iterations == 0 {
		s.Iterations = 15
	}
	if s.Timeline == (metrics.Timeline{}) {
		s.Timeline = metrics.PaperTimeline
	}
	if s.Workers <= 0 {
		s.Workers = DefaultWorkers()
	}
	if s.BaseSeed == 0 {
		s.BaseSeed = 20220322
	}
	return s
}

// probeBase derives a filesystem-safe export basename from a run's grid
// position, e.g. "stadia_cubic_B25_q2.0x__seed123".
func probeBase(cond Condition, seed uint64) string {
	return fmt.Sprintf("%s__seed%d", strings.ReplaceAll(cond.String(), "/", "_"), seed)
}

// RunSeed derives the deterministic seed for one run from its grid
// position, exactly as RunSweep does. External schedulers (the campaign
// coordinator) use it so their cells reproduce sweep-built runs bit for
// bit — same condition, same iteration, same seed, same cache key.
func RunSeed(base uint64, iter int, cond Condition) uint64 {
	return runSeed(base, iter, cond)
}

// runSeed derives a deterministic seed for one run from its grid position.
func runSeed(base uint64, iter int, cond Condition) uint64 {
	h := base
	mix := func(x uint64) {
		h ^= x
		h *= 0x100000001b3
		h ^= h >> 29
	}
	mix(uint64(iter) + 1)
	for _, c := range cond.String() {
		mix(uint64(c))
	}
	return h
}

// ConditionResult aggregates the runs of one grid cell.
type ConditionResult struct {
	Cond Condition
	Runs []*RunResult
}

// SweepResult holds all conditions of a campaign.
type SweepResult struct {
	Cfg        SweepConfig
	Conditions []*ConditionResult
	// Interrupted is set when the sweep's context was cancelled before
	// every run completed; the Conditions then hold only the runs that
	// finished.
	Interrupted bool
	// Cache holds this sweep's slice of the run-cache counters (hits,
	// misses, stores, bypasses) when the sweep ran with one; zero
	// otherwise.
	Cache runcache.Stats
}

// Find returns the result for a condition, or nil.
func (s *SweepResult) Find(cond Condition) *ConditionResult {
	for _, c := range s.Conditions {
		if c.Cond == cond {
			return c
		}
	}
	return nil
}

// RunSweep executes the campaign. Runs execute in parallel across workers;
// results are deterministic regardless of scheduling because every run has
// a position-derived seed. The iteration order mirrors the paper's striping
// (outer: iteration; inner: system) to document the methodology, although
// in simulation ordering has no temporal effect.
//
// Cancelling ctx stops new runs from starting; in-flight runs complete and
// the partial result comes back with Interrupted set. Progress and run-log
// sinks on cfg observe the sweep as it executes.
func RunSweep(ctx context.Context, cfg SweepConfig) *SweepResult {
	cfg = cfg.Defaults()
	if ctx == nil {
		ctx = context.Background()
	}

	type job struct {
		cond Condition
		iter int
	}
	imps := cfg.Impairments
	if len(imps) == 0 {
		imps = []netem.Impairment{{}}
	}
	var jobs []job
	for it := 0; it < cfg.Iterations; it++ {
		for _, imp := range imps {
			for _, cca := range cfg.CCAs {
				for _, capy := range cfg.Capacities {
					for _, qm := range cfg.QueueMults {
						for _, sys := range cfg.Systems {
							jobs = append(jobs, job{
								cond: Condition{System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: cfg.AQM, Impair: imp},
								iter: it,
							})
						}
					}
				}
			}
		}
	}
	total := len(jobs)
	if cfg.Progress != nil {
		cfg.Progress.SweepStart(total)
	}
	start := time.Now()
	var cacheBefore runcache.Stats
	if cfg.Cache != nil {
		cacheBefore = cfg.Cache.Stats()
	}

	// Feed jobs through a channel so cancellation simply stops the feed;
	// workers drain whatever is in flight and exit.
	jobCh := make(chan job)
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			}
		}
	}()

	results := make(map[Condition][]*RunResult)
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				runStart := time.Now()
				rc := RunConfig{
					Condition:      j.cond,
					Timeline:       cfg.Timeline,
					Seed:           runSeed(cfg.BaseSeed, j.iter, j.cond),
					BaseRTT:        cfg.BaseRTT,
					Burst:          cfg.Burst,
					Probe:          cfg.Probe,
					Schedule:       cfg.Schedule,
					Population:     cfg.Population,
					SerialDispatch: cfg.SerialDispatch,
				}
				res, hit := RunCached(cfg.Cache, rc)
				var pmeta *obs.ProbeMeta
				if res.Probe != nil {
					m := res.Probe.Meta()
					if cfg.ProbeDir != "" {
						// An export failure must not kill a campaign; the
						// meta then carries counts without filenames.
						if em, err := res.Probe.Export(cfg.ProbeDir, probeBase(j.cond, rc.Seed)); err == nil {
							m = em
						}
					}
					pmeta = &m
				}
				var rec *obs.Record
				if cfg.RunLog != nil || cfg.Progress != nil {
					r := res.Record(j.iter)
					r.Probe = pmeta
					r.Cached = hit
					rec = &r
				}
				if cfg.RunLog != nil {
					// Sinks serialise internally; errors are the sink's
					// to surface (a broken log must not kill a campaign).
					_ = cfg.RunLog.Log(*rec)
				}
				mu.Lock()
				if !cfg.DiscardRuns {
					results[j.cond] = append(results[j.cond], res)
				}
				done++
				d := done
				mu.Unlock()
				if cfg.Progress != nil {
					elapsed := time.Since(start)
					var eta time.Duration
					if d < total {
						eta = time.Duration(float64(elapsed) / float64(d) * float64(total-d))
					}
					cfg.Progress.RunDone(obs.Update{
						Done: d, Total: total,
						Cond: j.cond.String(), Seed: rc.Seed, Iteration: j.iter,
						RunWall: time.Since(runStart), Elapsed: elapsed, ETA: eta,
						Record: rec,
					})
				}
			}
		}()
	}
	wg.Wait()

	out := &SweepResult{Cfg: cfg, Interrupted: done < total}
	if cfg.Cache != nil {
		out.Cache = cfg.Cache.Stats().Sub(cacheBefore)
	}
	for cond, runs := range results {
		sort.Slice(runs, func(i, j int) bool { return runs[i].Cfg.Seed < runs[j].Cfg.Seed })
		out.Conditions = append(out.Conditions, &ConditionResult{Cond: cond, Runs: runs})
	}
	sort.Slice(out.Conditions, func(i, j int) bool {
		return out.Conditions[i].Cond.String() < out.Conditions[j].Cond.String()
	})
	if cfg.Progress != nil {
		cfg.Progress.SweepDone(out.Interrupted, time.Since(start))
	}
	return out
}

// --- Aggregations used by the tables and figures ---

// timeline returns the runs' timeline (all runs in a cell share one).
func (c *ConditionResult) timeline() metrics.Timeline {
	return c.Runs[0].Cfg.Timeline
}

// GameRate summarises the game flow's bitrate (Mb/s) over a window across
// runs.
func (c *ConditionResult) GameRate(from, to time.Duration) stats.Summary {
	var xs []float64
	for _, r := range c.Runs {
		xs = append(xs, r.GameSeries().MeanBetween(from, to))
	}
	return stats.Summarize(xs)
}

// GameRateBins pools every 0.5 s bitrate bin of every run in the window —
// the distribution behind the paper's "mean (stddev)" bitrate cells, where
// the deviation reflects bitrate variation over time, not just across runs.
func (c *ConditionResult) GameRateBins(from, to time.Duration) stats.Summary {
	var acc stats.Accumulator
	for _, r := range c.Runs {
		lo := int(from / r.Bin)
		hi := int(to / r.Bin)
		for i := lo; i < hi && i < len(r.GameMbps); i++ {
			acc.Add(r.GameMbps[i])
		}
	}
	return stats.Summary{N: acc.N(), Mean: acc.Mean(), StdDev: acc.StdDev(), CI95: acc.CI95()}
}

// TCPRate summarises the competing flow's bitrate over a window.
func (c *ConditionResult) TCPRate(from, to time.Duration) stats.Summary {
	var xs []float64
	for _, r := range c.Runs {
		xs = append(xs, r.TCPSeries().MeanBetween(from, to))
	}
	return stats.Summarize(xs)
}

// FairnessRatio returns the paper's normalised bitrate difference over the
// fairness window (220–370 s), averaged across runs.
func (c *ConditionResult) FairnessRatio() float64 {
	from, to := c.timeline().FairnessWindow()
	g := c.GameRate(from, to).Mean
	t := c.TCPRate(from, to).Mean
	return metrics.FairnessRatio(g, t, c.Cond.Capacity.Mbit())
}

// RTTStats summarises ping RTTs (ms) in a window across runs, pooling all
// samples as the paper's tables do.
func (c *ConditionResult) RTTStats(from, to time.Duration) stats.Summary {
	var xs []float64
	for _, r := range c.Runs {
		xs = append(xs, r.RTTBetween(from, to)...)
	}
	return stats.Summarize(xs)
}

// FPSStats summarises displayed frame rate over a window across runs
// (per-run mean first, then across runs, matching the paper's per-run
// sampling).
func (c *ConditionResult) FPSStats(from, to time.Duration) stats.Summary {
	var xs []float64
	for _, r := range c.Runs {
		xs = append(xs, r.FPSSeries().MeanBetween(from, to))
	}
	return stats.Summarize(xs)
}

// LossStats summarises game-flow loss fractions over a window across runs.
func (c *ConditionResult) LossStats(from, to time.Duration) stats.Summary {
	var xs []float64
	for _, r := range c.Runs {
		xs = append(xs, r.LossBetween(from, to))
	}
	return stats.Summarize(xs)
}

// ResponseRecovery measures §4.2 settling on the across-run mean bitrate
// series (the same series Figure 2 plots).
func (c *ConditionResult) ResponseRecovery() metrics.ResponseRecovery {
	mean, _ := c.MeanGameSeries()
	return metrics.MeasureResponseRecovery(mean, c.timeline())
}

// MeanGameSeries returns the across-run mean bitrate series and its 95% CI
// half-widths per bin — the data behind one Figure 2 line.
func (c *ConditionResult) MeanGameSeries() (mean metrics.Series, ci []float64) {
	if len(c.Runs) == 0 {
		return metrics.Series{}, nil
	}
	n := len(c.Runs[0].GameMbps)
	accs := make([]stats.Accumulator, n)
	for _, r := range c.Runs {
		for i := 0; i < n && i < len(r.GameMbps); i++ {
			accs[i].Add(r.GameMbps[i])
		}
	}
	v := make([]float64, n)
	ci = make([]float64, n)
	for i := range accs {
		v[i] = accs[i].Mean()
		ci[i] = accs[i].CI95()
	}
	return metrics.Series{Bin: c.Runs[0].Bin, V: v}, ci
}

// ContentionWindow returns the paper's stabilised contention window.
func (c *ConditionResult) ContentionWindow() (from, to time.Duration) {
	return c.timeline().FairnessWindow()
}
