package experiment

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/probe"
	"repro/internal/units"
)

// goldenRun executes one probed run for the determinism tests. The
// condition exercises every pooled subsystem at once: a streaming session
// (fragmenter + feedback), a competing TCP flow, the ping probe, and the
// full probe capture (CC samplers, queue telemetry, event ring).
func goldenRun(seed uint64) *RunResult {
	return Run(RunConfig{
		Condition: Condition{
			System: gamestream.Stadia, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 2,
		},
		Timeline: metrics.PaperTimeline.Scale(0.1),
		Seed:     seed,
		Probe:    &probe.Config{Interval: 100 * time.Millisecond, Events: 1 << 12},
	})
}

// exportBytes renders every probe export into memory.
func exportBytes(t *testing.T, r *RunResult) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for name, fn := range map[string]func(*bytes.Buffer) error{
		"cc.csv":       func(b *bytes.Buffer) error { return r.Probe.WriteCCCSV(b) },
		"queue.csv":    func(b *bytes.Buffer) error { return r.Probe.WriteQueueCSV(b) },
		"drops.csv":    func(b *bytes.Buffer) error { return r.Probe.WriteDropsCSV(b) },
		"events.jsonl": func(b *bytes.Buffer) error { return r.Probe.WriteEventsJSONL(b) },
	} {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("%s export: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	return out
}

// TestGoldenSeedByteIdentical is the determinism contract for the
// allocation-free core: two engines fed the same seed must dispatch the
// same number of events and produce byte-identical probe exports. Freelist
// reuse, in-place timer moves, and the typed heap must all be invisible in
// the output.
func TestGoldenSeedByteIdentical(t *testing.T) {
	a := goldenRun(42)
	b := goldenRun(42)

	if a.EventsProcessed != b.EventsProcessed {
		t.Errorf("EventsProcessed diverged: %d vs %d", a.EventsProcessed, b.EventsProcessed)
	}
	if a.Engine.EventsDispatched != b.Engine.EventsDispatched ||
		a.Engine.EventsScheduled != b.Engine.EventsScheduled ||
		a.Engine.EventsCancelled != b.Engine.EventsCancelled ||
		a.Engine.TimerMoves != b.Engine.TimerMoves {
		t.Errorf("engine stats diverged: %+v vs %+v", a.Engine, b.Engine)
	}

	ea, eb := exportBytes(t, a), exportBytes(t, b)
	for name := range ea {
		if len(ea[name]) == 0 && name != "drops.csv" {
			t.Errorf("%s export empty — test exercises nothing", name)
		}
		if !bytes.Equal(ea[name], eb[name]) {
			t.Errorf("%s export not byte-identical across runs", name)
		}
	}

	// A different seed must actually change the trace, or the comparison
	// above is vacuous.
	c := goldenRun(43)
	ec := exportBytes(t, c)
	if bytes.Equal(ea["cc.csv"], ec["cc.csv"]) {
		t.Error("different seeds produced identical cc.csv")
	}
}

// TestSweepDeterministicAcrossWorkers checks that worker-count (i.e.
// goroutine scheduling) has no effect on results: each run owns its engine
// and packet pool, so a 1-worker and a 4-worker sweep of the same grid must
// agree run for run.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia, gamestream.Luna},
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   metrics.PaperTimeline.Scale(0.05),
		BaseSeed:   7,
	}
	one, four := base, base
	one.Workers = 1
	four.Workers = 4
	ra := RunSweep(context.Background(), one)
	rb := RunSweep(context.Background(), four)

	if len(ra.Conditions) != len(rb.Conditions) || len(ra.Conditions) == 0 {
		t.Fatalf("condition counts differ: %d vs %d", len(ra.Conditions), len(rb.Conditions))
	}
	for _, ca := range ra.Conditions {
		cb := rb.Find(ca.Cond)
		if cb == nil {
			t.Fatalf("condition %s missing from 4-worker sweep", ca.Cond)
		}
		if len(ca.Runs) != len(cb.Runs) {
			t.Fatalf("%s: run counts differ", ca.Cond)
		}
		for i := range ca.Runs {
			x, y := ca.Runs[i], cb.Runs[i]
			if x.EventsProcessed != y.EventsProcessed ||
				x.FramesDisplayed != y.FramesDisplayed {
				t.Errorf("%s run %d diverged across worker counts", ca.Cond, i)
			}
			for j := range x.GameMbps {
				if x.GameMbps[j] != y.GameMbps[j] {
					t.Fatalf("%s run %d bin %d: %v vs %v",
						ca.Cond, i, j, x.GameMbps[j], y.GameMbps[j])
				}
			}
		}
	}
}
