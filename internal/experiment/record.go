package experiment

import (
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Record renders the run as a structured log record: condition coordinates,
// seed, engine counters, and the headline metrics over the paper's
// stabilised contention window. iter is the run's index within its grid
// cell (pass 0 for standalone runs).
func (r *RunResult) Record(iter int) obs.Record {
	ff, ft := r.Cfg.Timeline.FairnessWindow()
	game := r.GameSeries().MeanBetween(ff, ft)
	tcp := r.TCPSeries().MeanBetween(ff, ft)
	rtt := 0.0
	if xs := r.RTTBetween(ff, ft); len(xs) > 0 {
		for _, x := range xs {
			rtt += x
		}
		rtt /= float64(len(xs))
	}
	es := r.Engine
	var impair *obs.ImpairMeta
	if r.Cfg.Impair.Enabled() || len(r.Cfg.Schedule) > 0 {
		impair = &obs.ImpairMeta{
			Spec:        r.Cfg.Impair.String(),
			Schedule:    ScheduleString(r.Cfg.Schedule),
			Packets:     r.Impair.Packets,
			LossDrops:   r.Impair.LossDrops,
			FlapDrops:   r.Impair.FlapDrops,
			Duplicates:  r.Impair.Duplicates,
			Reordered:   r.Impair.Reordered,
			Flaps:       r.Impair.Flaps,
			DownSeconds: r.Impair.Down.Seconds(),
		}
	}
	var flows *obs.FlowsMeta
	if r.Cfg.Population.Enabled() {
		fsum := r.FlowSummary
		flows = &obs.FlowsMeta{
			Spec:       r.Cfg.Population.String(),
			Flows:      fsum.Flows,
			Streams:    fsum.Streams,
			Active:     fsum.Active,
			Jain:       fsum.Jain,
			TputP10:    fsum.TputP10Mbps,
			TputP50:    fsum.TputP50Mbps,
			TputP90:    fsum.TputP90Mbps,
			RTTInflP50: fsum.RTTInflP50,
			RTTInflP90: fsum.RTTInflP90,
			Starved:    fsum.Starved,
		}
	}
	return obs.Record{
		Cond:         r.Cfg.Condition.String(),
		System:       string(r.Cfg.System),
		CCA:          r.Cfg.CCA,
		CapacityMbps: r.Cfg.Capacity.Mbit(),
		QueueMult:    r.Cfg.QueueMult,
		AQM:          r.Cfg.AQM,
		Seed:         r.Cfg.Seed,
		Iteration:    iter,
		Impair:       impair,
		Flows:        flows,
		Engine: obs.EngineStats{
			Events:          es.EventsDispatched,
			Scheduled:       es.EventsScheduled,
			PeakPending:     es.PeakPending,
			SimSeconds:      es.SimTime.Seconds(),
			WallSeconds:     es.WallTime.Seconds(),
			Speedup:         es.Speedup(),
			EventsPerSecond: es.EventsPerSecond(),
		},
		GameMbps:        game,
		TCPMbps:         tcp,
		Fairness:        metrics.FairnessRatio(game, tcp, r.Cfg.Capacity.Mbit()),
		RTTMs:           rtt,
		FPS:             r.FPSSeries().MeanBetween(ff, ft),
		LossPct:         100 * r.LossBetween(ff, ft),
		FramesSent:      r.FramesSent,
		FramesDisplayed: r.FramesDisplayed,
		FramesDropped:   r.FramesDropped,
		NackRetx:        r.NackRetx,
		TCPRetransmits:  r.TCPRetransmits,
	}
}
