package experiment

import (
	"bytes"
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/units"
)

// quickTL compresses the 9-minute procedure to 1/5 for test speed; phase
// proportions (flow in the middle third) are preserved.
var quickTL = metrics.PaperTimeline.Scale(0.2)

func quickRun(t *testing.T, cond Condition, seed uint64) *RunResult {
	t.Helper()
	return Run(RunConfig{Condition: cond, Timeline: quickTL, Seed: seed})
}

func TestRunProducesCompleteSeries(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 1)
	wantBins := int(quickTL.TraceEnd / r.Bin)
	if len(r.GameMbps) != wantBins {
		t.Errorf("game series has %d bins, want %d", len(r.GameMbps), wantBins)
	}
	if len(r.TCPMbps) != wantBins {
		t.Errorf("tcp series has %d bins, want %d", len(r.TCPMbps), wantBins)
	}
	if len(r.RTT) == 0 {
		t.Error("no RTT samples")
	}
	if r.FramesDisplayed == 0 {
		t.Error("no frames displayed")
	}
	if r.EventsProcessed == 0 {
		t.Error("no events processed")
	}
}

func TestCompetingFlowOnlyInMiddlePhase(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Luna, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 2)
	tcp := r.TCPSeries()
	before := tcp.MeanBetween(0, quickTL.FlowStart-2*time.Second)
	during := tcp.MeanBetween(quickTL.FlowStart+5*time.Second, quickTL.FlowStop)
	if before > 0.01 {
		t.Errorf("TCP traffic before flow start: %.2f Mb/s", before)
	}
	if during < 1 {
		t.Errorf("TCP flow averaged %.2f Mb/s during its active phase", during)
	}
	// After departure only in-flight drains; the tail must fall to ~0.
	after := tcp.MeanBetween(quickTL.FlowStop+5*time.Second, quickTL.TraceEnd)
	if after > 0.1 {
		t.Errorf("TCP traffic after flow stop: %.2f Mb/s", after)
	}
}

func TestGameRespondsAndRecovers(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 3)
	game := r.GameSeries()
	pre := game.MeanBetween(quickTL.FlowStart/2, quickTL.FlowStart)
	during := game.MeanBetween(quickTL.FlowStart+10*time.Second, quickTL.FlowStop)
	if pre < 15 {
		t.Errorf("pre-contention bitrate %.1f Mb/s, want near capacity", pre)
	}
	if during >= pre {
		t.Errorf("no response to competing flow: pre %.1f, during %.1f", pre, during)
	}
}

func TestSoloRunHasNoCompetitor(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.GeForce, CCA: "", Capacity: units.Mbps(15), QueueMult: 2,
	}, 4)
	if got := r.TCPSeries().MeanBetween(0, quickTL.TraceEnd); got != 0 {
		t.Errorf("solo run shows TCP traffic: %v", got)
	}
	ff, ft := quickTL.FairnessWindow()
	if got := r.GameSeries().MeanBetween(ff, ft); got < 10 || got > 15.2 {
		t.Errorf("solo constrained bitrate %.1f, want ~12-15", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	cond := Condition{System: gamestream.Luna, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 0.5}
	a := quickRun(t, cond, 42)
	b := quickRun(t, cond, 42)
	if a.FramesDisplayed != b.FramesDisplayed || a.EventsProcessed != b.EventsProcessed {
		t.Error("identical configs diverged")
	}
	for i := range a.GameMbps {
		if a.GameMbps[i] != b.GameMbps[i] {
			t.Fatalf("bin %d differs: %v vs %v", i, a.GameMbps[i], b.GameMbps[i])
		}
	}
	c := quickRun(t, cond, 43)
	same := true
	for i := range a.GameMbps {
		if a.GameMbps[i] != c.GameMbps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestQueueBytes(t *testing.T) {
	cfg := RunConfig{Condition: Condition{Capacity: units.Mbps(25), QueueMult: 2}}.Defaults()
	// 2x BDP at 25 Mb/s, 16.5 ms = 2 * 51562 = 103124 bytes.
	if got := cfg.QueueBytes(); got != 103124 {
		t.Errorf("QueueBytes = %d, want 103124", got)
	}
	// Tiny queues clamp to 2 MTU.
	tiny := RunConfig{Condition: Condition{Capacity: units.Mbps(1), QueueMult: 0.1}}.Defaults()
	if got := tiny.QueueBytes(); got != 2*1514 {
		t.Errorf("tiny QueueBytes = %d, want %d", got, 2*1514)
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	if got := c.String(); got != "stadia/cubic/B25/q2.0x" {
		t.Errorf("String = %q", got)
	}
	solo := Condition{System: gamestream.Luna, Capacity: units.Mbps(15), QueueMult: 0.5}
	if got := solo.String(); got != "luna/solo/B15/q0.5x" {
		t.Errorf("String = %q", got)
	}
}

func TestRunSeedDistinct(t *testing.T) {
	c1 := Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	c2 := Condition{System: gamestream.Luna, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	seen := map[uint64]bool{}
	for it := 0; it < 10; it++ {
		for _, c := range []Condition{c1, c2} {
			s := runSeed(7, it, c)
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
		}
	}
}

func TestRunSweepAggregation(t *testing.T) {
	cfg := SweepConfig{
		Systems:    []gamestream.System{gamestream.GeForce},
		CCAs:       []string{"cubic"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 3,
		Timeline:   quickTL,
		Workers:    3,
	}
	sw := RunSweep(context.Background(), cfg)
	if sw.Interrupted {
		t.Error("uncancelled sweep flagged Interrupted")
	}
	if len(sw.Conditions) != 1 {
		t.Fatalf("conditions = %d, want 1", len(sw.Conditions))
	}
	cond := sw.Conditions[0]
	if len(cond.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(cond.Runs))
	}
	ff, ft := cond.ContentionWindow()
	gr := cond.GameRate(ff, ft)
	if gr.N != 3 || gr.Mean <= 0 {
		t.Errorf("GameRate summary = %+v", gr)
	}
	if fr := cond.FairnessRatio(); fr < -1 || fr > 1 {
		t.Errorf("fairness out of range: %v", fr)
	}
	rtt := cond.RTTStats(ff, ft)
	if rtt.Mean < 16 {
		t.Errorf("pooled RTT mean %.1f ms below base RTT", rtt.Mean)
	}
	fps := cond.FPSStats(ff, ft)
	if fps.Mean <= 0 || fps.Mean > 61 {
		t.Errorf("fps mean %.1f out of range", fps.Mean)
	}
	mean, ci := cond.MeanGameSeries()
	if len(mean.V) == 0 || len(ci) != len(mean.V) {
		t.Error("mean series malformed")
	}
	if sw.Find(cond.Cond) != cond {
		t.Error("Find did not locate the condition")
	}
	if sw.Find(Condition{System: "nope"}) != nil {
		t.Error("Find invented a condition")
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"bbr"},
		Capacities: []units.Rate{units.Mbps(15)},
		QueueMults: []float64{0.5},
		Iterations: 2,
		Timeline:   quickTL,
	}
	one := base
	one.Workers = 1
	four := base
	four.Workers = 4
	a := RunSweep(context.Background(), one)
	b := RunSweep(context.Background(), four)
	ra := a.Conditions[0].Runs
	rb := b.Conditions[0].Runs
	if len(ra) != len(rb) {
		t.Fatal("run counts differ")
	}
	for i := range ra {
		if ra[i].Cfg.Seed != rb[i].Cfg.Seed || ra[i].FramesDisplayed != rb[i].FramesDisplayed {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestAQMVariants(t *testing.T) {
	for _, aqm := range []string{AQMDropTail, AQMCoDel, AQMFQCoDel} {
		r := Run(RunConfig{
			Condition: Condition{
				System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25),
				QueueMult: 7, AQM: aqm,
			},
			Timeline: quickTL,
			Seed:     5,
		})
		ff, ft := quickTL.FairnessWindow()
		if got := r.GameSeries().MeanBetween(ff, ft); got <= 0 {
			t.Errorf("%s: game starved entirely", aqm)
		}
	}
}

func TestFQCoDelReducesRTTUnderBloat(t *testing.T) {
	run := func(aqm string) float64 {
		r := Run(RunConfig{
			Condition: Condition{
				System: gamestream.GeForce, CCA: "cubic", Capacity: units.Mbps(25),
				QueueMult: 7, AQM: aqm,
			},
			Timeline: quickTL,
			Seed:     6,
		})
		ff, ft := quickTL.FairnessWindow()
		xs := r.RTTBetween(ff, ft)
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	dt := run(AQMDropTail)
	fq := run(AQMFQCoDel)
	if fq >= dt/2 {
		t.Errorf("FQ-CoDel RTT %.1f ms not clearly below drop-tail %.1f ms", fq, dt)
	}
}

func TestUnknownAQMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown AQM did not panic")
		}
	}()
	Run(RunConfig{Condition: Condition{
		System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2, AQM: "red",
	}, Timeline: quickTL})
}

func TestSweepSaveLoadRoundtrip(t *testing.T) {
	cfg := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   quickTL,
		Workers:    2,
	}
	orig := RunSweep(context.Background(), cfg)
	path := t.TempDir() + "/sweep.gz"
	if err := SaveSweep(path, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Conditions) != len(orig.Conditions) {
		t.Fatalf("conditions %d != %d", len(loaded.Conditions), len(orig.Conditions))
	}
	oc, lc := orig.Conditions[0], loaded.Conditions[0]
	if oc.Cond != lc.Cond || len(oc.Runs) != len(lc.Runs) {
		t.Fatal("condition mismatch")
	}
	for i := range oc.Runs {
		a, b := oc.Runs[i], lc.Runs[i]
		if a.Cfg.Seed != b.Cfg.Seed || a.FramesDisplayed != b.FramesDisplayed {
			t.Fatalf("run %d scalar mismatch", i)
		}
		for j := range a.GameMbps {
			if a.GameMbps[j] != b.GameMbps[j] {
				t.Fatalf("run %d bin %d mismatch", i, j)
			}
		}
		if len(a.RTT) != len(b.RTT) || (len(a.RTT) > 0 && a.RTT[0] != b.RTT[0]) {
			t.Fatalf("run %d RTT mismatch", i)
		}
	}
	// Derived metrics must match exactly.
	ff, ft := oc.ContentionWindow()
	if oc.GameRate(ff, ft) != lc.GameRate(ff, ft) {
		t.Error("GameRate differs after roundtrip")
	}
	if oc.FairnessRatio() != lc.FairnessRatio() {
		t.Error("FairnessRatio differs after roundtrip")
	}
}

func TestLoadSweepMissingFile(t *testing.T) {
	if _, err := LoadSweep(t.TempDir() + "/nope.gz"); err == nil {
		t.Error("loading a missing sweep did not error")
	}
}

// cancellingProgress is a Progress sink that cancels the sweep's context
// after a fixed number of completed runs.
type cancellingProgress struct {
	cancel context.CancelFunc
	after  int

	mu       sync.Mutex
	total    int
	updates  []obs.Update
	finished bool
	partial  bool
}

func (p *cancellingProgress) SweepStart(total int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total = total
}

func (p *cancellingProgress) RunDone(u obs.Update) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.updates = append(p.updates, u)
	if len(p.updates) == p.after {
		p.cancel()
	}
}

func (p *cancellingProgress) SweepDone(interrupted bool, _ time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.finished = true
	p.partial = interrupted
}

func TestSweepCancellationReturnsPartialResults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &cancellingProgress{cancel: cancel, after: 2}

	before := runtime.NumGoroutine()
	cfg := SweepConfig{
		Systems:    gamestream.Systems,
		CCAs:       []string{"cubic", "bbr"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 4,
		Timeline:   quickTL,
		Workers:    2,
		Progress:   sink,
	}
	sw := RunSweep(ctx, cfg)

	if !sw.Interrupted {
		t.Error("cancelled sweep not flagged Interrupted")
	}
	done := 0
	for _, c := range sw.Conditions {
		done += len(c.Runs)
	}
	if done == 0 {
		t.Error("cancelled sweep returned no completed runs")
	}
	total := 3 * 2 * 4 // systems × ccas × iterations
	if done >= total {
		t.Errorf("cancelled sweep completed all %d runs", total)
	}
	sink.mu.Lock()
	if sink.total != total {
		t.Errorf("SweepStart total = %d, want %d", sink.total, total)
	}
	if len(sink.updates) != done {
		t.Errorf("progress saw %d runs, results hold %d", len(sink.updates), done)
	}
	if !sink.finished || !sink.partial {
		t.Error("SweepDone not called with interrupted=true")
	}
	sink.mu.Unlock()

	// Workers and the job feeder must have drained: the goroutine count
	// returns to (near) its pre-sweep level.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before sweep, %d after", before, runtime.NumGoroutine())
}

func TestSweepRunLogRecords(t *testing.T) {
	var buf bytes.Buffer
	log := obs.NewJSONL(&buf)
	cfg := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   quickTL,
		Workers:    2,
		RunLog:     log,
	}
	sw := RunSweep(context.Background(), cfg)
	recs, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("run log has %d records, want 2", len(recs))
	}
	runs := sw.Conditions[0].Runs
	seeds := map[uint64]bool{}
	for _, r := range runs {
		seeds[r.Cfg.Seed] = true
	}
	for _, rec := range recs {
		if !seeds[rec.Seed] {
			t.Errorf("record seed %d not among the sweep's runs", rec.Seed)
		}
		if rec.Cond != runs[0].Cfg.Condition.String() {
			t.Errorf("record cond = %q, want %q", rec.Cond, runs[0].Cfg.Condition.String())
		}
		if rec.Engine.Events == 0 || rec.Engine.Scheduled < rec.Engine.Events {
			t.Errorf("engine stats malformed: %+v", rec.Engine)
		}
		if rec.GameMbps <= 0 {
			t.Errorf("record game bitrate %v not positive", rec.GameMbps)
		}
	}
}

func TestRunResultRecordMatchesHeadlines(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 9)
	rec := r.Record(3)
	ff, ft := r.Cfg.Timeline.FairnessWindow()
	if rec.Iteration != 3 || rec.Seed != r.Cfg.Seed {
		t.Errorf("identity fields wrong: %+v", rec)
	}
	if want := r.GameSeries().MeanBetween(ff, ft); rec.GameMbps != want {
		t.Errorf("GameMbps = %v, want %v", rec.GameMbps, want)
	}
	if rec.Engine.Events != r.Engine.EventsDispatched {
		t.Errorf("Engine.Events = %d, want %d", rec.Engine.Events, r.Engine.EventsDispatched)
	}
	if rec.Engine.SimSeconds != r.Engine.SimTime.Seconds() {
		t.Errorf("Engine.SimSeconds = %v, want %v", rec.Engine.SimSeconds, r.Engine.SimTime.Seconds())
	}
	if rec.FramesDisplayed != r.FramesDisplayed {
		t.Errorf("FramesDisplayed = %d, want %d", rec.FramesDisplayed, r.FramesDisplayed)
	}
}

func TestDefaultWorkers(t *testing.T) {
	if DefaultWorkers() != runtime.NumCPU() {
		t.Errorf("DefaultWorkers = %d, want NumCPU %d", DefaultWorkers(), runtime.NumCPU())
	}
	if cfg := (SweepConfig{}).Defaults(); cfg.Workers != DefaultWorkers() {
		t.Errorf("SweepConfig default workers = %d, want %d", cfg.Workers, DefaultWorkers())
	}
	// A negative count would spawn zero workers and return an empty
	// "interrupted" sweep; Defaults must normalise it too.
	if cfg := (SweepConfig{Workers: -3}).Defaults(); cfg.Workers != DefaultWorkers() {
		t.Errorf("negative workers normalised to %d, want %d", cfg.Workers, DefaultWorkers())
	}
}
