package experiment

import (
	"testing"
	"time"

	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/units"
)

// quickTL compresses the 9-minute procedure to 1/5 for test speed; phase
// proportions (flow in the middle third) are preserved.
var quickTL = metrics.PaperTimeline.Scale(0.2)

func quickRun(t *testing.T, cond Condition, seed uint64) *RunResult {
	t.Helper()
	return Run(RunConfig{Condition: cond, Timeline: quickTL, Seed: seed})
}

func TestRunProducesCompleteSeries(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 1)
	wantBins := int(quickTL.TraceEnd / r.Bin)
	if len(r.GameMbps) != wantBins {
		t.Errorf("game series has %d bins, want %d", len(r.GameMbps), wantBins)
	}
	if len(r.TCPMbps) != wantBins {
		t.Errorf("tcp series has %d bins, want %d", len(r.TCPMbps), wantBins)
	}
	if len(r.RTT) == 0 {
		t.Error("no RTT samples")
	}
	if r.FramesDisplayed == 0 {
		t.Error("no frames displayed")
	}
	if r.EventsProcessed == 0 {
		t.Error("no events processed")
	}
}

func TestCompetingFlowOnlyInMiddlePhase(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Luna, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 2)
	tcp := r.TCPSeries()
	before := tcp.MeanBetween(0, quickTL.FlowStart-2*time.Second)
	during := tcp.MeanBetween(quickTL.FlowStart+5*time.Second, quickTL.FlowStop)
	if before > 0.01 {
		t.Errorf("TCP traffic before flow start: %.2f Mb/s", before)
	}
	if during < 1 {
		t.Errorf("TCP flow averaged %.2f Mb/s during its active phase", during)
	}
	// After departure only in-flight drains; the tail must fall to ~0.
	after := tcp.MeanBetween(quickTL.FlowStop+5*time.Second, quickTL.TraceEnd)
	if after > 0.1 {
		t.Errorf("TCP traffic after flow stop: %.2f Mb/s", after)
	}
}

func TestGameRespondsAndRecovers(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2,
	}, 3)
	game := r.GameSeries()
	pre := game.MeanBetween(quickTL.FlowStart/2, quickTL.FlowStart)
	during := game.MeanBetween(quickTL.FlowStart+10*time.Second, quickTL.FlowStop)
	if pre < 15 {
		t.Errorf("pre-contention bitrate %.1f Mb/s, want near capacity", pre)
	}
	if during >= pre {
		t.Errorf("no response to competing flow: pre %.1f, during %.1f", pre, during)
	}
}

func TestSoloRunHasNoCompetitor(t *testing.T) {
	r := quickRun(t, Condition{
		System: gamestream.GeForce, CCA: "", Capacity: units.Mbps(15), QueueMult: 2,
	}, 4)
	if got := r.TCPSeries().MeanBetween(0, quickTL.TraceEnd); got != 0 {
		t.Errorf("solo run shows TCP traffic: %v", got)
	}
	ff, ft := quickTL.FairnessWindow()
	if got := r.GameSeries().MeanBetween(ff, ft); got < 10 || got > 15.2 {
		t.Errorf("solo constrained bitrate %.1f, want ~12-15", got)
	}
}

func TestRunDeterminism(t *testing.T) {
	cond := Condition{System: gamestream.Luna, CCA: "bbr", Capacity: units.Mbps(25), QueueMult: 0.5}
	a := quickRun(t, cond, 42)
	b := quickRun(t, cond, 42)
	if a.FramesDisplayed != b.FramesDisplayed || a.EventsProcessed != b.EventsProcessed {
		t.Error("identical configs diverged")
	}
	for i := range a.GameMbps {
		if a.GameMbps[i] != b.GameMbps[i] {
			t.Fatalf("bin %d differs: %v vs %v", i, a.GameMbps[i], b.GameMbps[i])
		}
	}
	c := quickRun(t, cond, 43)
	same := true
	for i := range a.GameMbps {
		if a.GameMbps[i] != c.GameMbps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical series")
	}
}

func TestQueueBytes(t *testing.T) {
	cfg := RunConfig{Condition: Condition{Capacity: units.Mbps(25), QueueMult: 2}}.Defaults()
	// 2x BDP at 25 Mb/s, 16.5 ms = 2 * 51562 = 103124 bytes.
	if got := cfg.QueueBytes(); got != 103124 {
		t.Errorf("QueueBytes = %d, want 103124", got)
	}
	// Tiny queues clamp to 2 MTU.
	tiny := RunConfig{Condition: Condition{Capacity: units.Mbps(1), QueueMult: 0.1}}.Defaults()
	if got := tiny.QueueBytes(); got != 2*1514 {
		t.Errorf("tiny QueueBytes = %d, want %d", got, 2*1514)
	}
}

func TestConditionString(t *testing.T) {
	c := Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	if got := c.String(); got != "stadia/cubic/B25/q2.0x" {
		t.Errorf("String = %q", got)
	}
	solo := Condition{System: gamestream.Luna, Capacity: units.Mbps(15), QueueMult: 0.5}
	if got := solo.String(); got != "luna/solo/B15/q0.5x" {
		t.Errorf("String = %q", got)
	}
}

func TestRunSeedDistinct(t *testing.T) {
	c1 := Condition{System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	c2 := Condition{System: gamestream.Luna, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 2}
	seen := map[uint64]bool{}
	for it := 0; it < 10; it++ {
		for _, c := range []Condition{c1, c2} {
			s := runSeed(7, it, c)
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
		}
	}
}

func TestRunSweepAggregation(t *testing.T) {
	cfg := SweepConfig{
		Systems:    []gamestream.System{gamestream.GeForce},
		CCAs:       []string{"cubic"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 3,
		Timeline:   quickTL,
		Workers:    3,
	}
	sw := RunSweep(cfg)
	if len(sw.Conditions) != 1 {
		t.Fatalf("conditions = %d, want 1", len(sw.Conditions))
	}
	cond := sw.Conditions[0]
	if len(cond.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(cond.Runs))
	}
	ff, ft := cond.ContentionWindow()
	gr := cond.GameRate(ff, ft)
	if gr.N != 3 || gr.Mean <= 0 {
		t.Errorf("GameRate summary = %+v", gr)
	}
	if fr := cond.FairnessRatio(); fr < -1 || fr > 1 {
		t.Errorf("fairness out of range: %v", fr)
	}
	rtt := cond.RTTStats(ff, ft)
	if rtt.Mean < 16 {
		t.Errorf("pooled RTT mean %.1f ms below base RTT", rtt.Mean)
	}
	fps := cond.FPSStats(ff, ft)
	if fps.Mean <= 0 || fps.Mean > 61 {
		t.Errorf("fps mean %.1f out of range", fps.Mean)
	}
	mean, ci := cond.MeanGameSeries()
	if len(mean.V) == 0 || len(ci) != len(mean.V) {
		t.Error("mean series malformed")
	}
	if sw.Find(cond.Cond) != cond {
		t.Error("Find did not locate the condition")
	}
	if sw.Find(Condition{System: "nope"}) != nil {
		t.Error("Find invented a condition")
	}
}

func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	base := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"bbr"},
		Capacities: []units.Rate{units.Mbps(15)},
		QueueMults: []float64{0.5},
		Iterations: 2,
		Timeline:   quickTL,
	}
	one := base
	one.Workers = 1
	four := base
	four.Workers = 4
	a := RunSweep(one)
	b := RunSweep(four)
	ra := a.Conditions[0].Runs
	rb := b.Conditions[0].Runs
	if len(ra) != len(rb) {
		t.Fatal("run counts differ")
	}
	for i := range ra {
		if ra[i].Cfg.Seed != rb[i].Cfg.Seed || ra[i].FramesDisplayed != rb[i].FramesDisplayed {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

func TestAQMVariants(t *testing.T) {
	for _, aqm := range []string{AQMDropTail, AQMCoDel, AQMFQCoDel} {
		r := Run(RunConfig{
			Condition: Condition{
				System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25),
				QueueMult: 7, AQM: aqm,
			},
			Timeline: quickTL,
			Seed:     5,
		})
		ff, ft := quickTL.FairnessWindow()
		if got := r.GameSeries().MeanBetween(ff, ft); got <= 0 {
			t.Errorf("%s: game starved entirely", aqm)
		}
	}
}

func TestFQCoDelReducesRTTUnderBloat(t *testing.T) {
	run := func(aqm string) float64 {
		r := Run(RunConfig{
			Condition: Condition{
				System: gamestream.GeForce, CCA: "cubic", Capacity: units.Mbps(25),
				QueueMult: 7, AQM: aqm,
			},
			Timeline: quickTL,
			Seed:     6,
		})
		ff, ft := quickTL.FairnessWindow()
		xs := r.RTTBetween(ff, ft)
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	dt := run(AQMDropTail)
	fq := run(AQMFQCoDel)
	if fq >= dt/2 {
		t.Errorf("FQ-CoDel RTT %.1f ms not clearly below drop-tail %.1f ms", fq, dt)
	}
}

func TestUnknownAQMPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown AQM did not panic")
		}
	}()
	Run(RunConfig{Condition: Condition{
		System: gamestream.Stadia, Capacity: units.Mbps(25), QueueMult: 2, AQM: "red",
	}, Timeline: quickTL})
}

func TestSweepSaveLoadRoundtrip(t *testing.T) {
	cfg := SweepConfig{
		Systems:    []gamestream.System{gamestream.Stadia},
		CCAs:       []string{"cubic"},
		Capacities: []units.Rate{units.Mbps(25)},
		QueueMults: []float64{2},
		Iterations: 2,
		Timeline:   quickTL,
		Workers:    2,
	}
	orig := RunSweep(cfg)
	path := t.TempDir() + "/sweep.gz"
	if err := SaveSweep(path, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSweep(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Conditions) != len(orig.Conditions) {
		t.Fatalf("conditions %d != %d", len(loaded.Conditions), len(orig.Conditions))
	}
	oc, lc := orig.Conditions[0], loaded.Conditions[0]
	if oc.Cond != lc.Cond || len(oc.Runs) != len(lc.Runs) {
		t.Fatal("condition mismatch")
	}
	for i := range oc.Runs {
		a, b := oc.Runs[i], lc.Runs[i]
		if a.Cfg.Seed != b.Cfg.Seed || a.FramesDisplayed != b.FramesDisplayed {
			t.Fatalf("run %d scalar mismatch", i)
		}
		for j := range a.GameMbps {
			if a.GameMbps[j] != b.GameMbps[j] {
				t.Fatalf("run %d bin %d mismatch", i, j)
			}
		}
		if len(a.RTT) != len(b.RTT) || (len(a.RTT) > 0 && a.RTT[0] != b.RTT[0]) {
			t.Fatalf("run %d RTT mismatch", i)
		}
	}
	// Derived metrics must match exactly.
	ff, ft := oc.ContentionWindow()
	if oc.GameRate(ff, ft) != lc.GameRate(ff, ft) {
		t.Error("GameRate differs after roundtrip")
	}
	if oc.FairnessRatio() != lc.FairnessRatio() {
		t.Error("FairnessRatio differs after roundtrip")
	}
}

func TestLoadSweepMissingFile(t *testing.T) {
	if _, err := LoadSweep(t.TempDir() + "/nope.gz"); err == nil {
		t.Error("loading a missing sweep did not error")
	}
}
