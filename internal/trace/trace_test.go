package trace

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestBitrateBins(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 0)
	if c.BinDuration() != 500*time.Millisecond {
		t.Fatalf("default bin = %v", c.BinDuration())
	}
	// 1 Mb/s for one second: 125000 bytes split over two bins.
	for i := 0; i < 10; i++ {
		eng.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			p := &packet.Packet{Flow: 1, Size: 12500}
			c.Tap(p)
			c.TapDelivered(p)
		})
	}
	eng.Run(sim.At(time.Second))
	series := c.BitrateSeries(1, 2)
	if len(series) != 2 {
		t.Fatalf("series length %d", len(series))
	}
	for i, v := range series {
		if v < 0.99 || v > 1.01 {
			t.Errorf("bin %d = %.3f Mb/s, want 1.0", i, v)
		}
	}
}

func TestRateBetween(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	eng.Schedule(250*time.Millisecond, func() {
		p := &packet.Packet{Flow: 2, Size: 62500}
		c.Tap(p)
		c.TapDelivered(p)
	})
	eng.Run(sim.At(2 * time.Second))
	// 62500 B in the first 0.5 s bin = 1 Mb/s over that bin.
	got := c.RateBetween(2, 0, sim.At(500*time.Millisecond))
	if got.Mbit() < 0.99 || got.Mbit() > 1.01 {
		t.Errorf("RateBetween = %v", got)
	}
	// Averaged over 2 s it is 0.25 Mb/s.
	got = c.RateBetween(2, 0, sim.At(2*time.Second))
	if got.Mbit() < 0.24 || got.Mbit() > 0.26 {
		t.Errorf("RateBetween full = %v", got)
	}
}

func TestLossAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	for i := 0; i < 100; i++ {
		c.Tap(&packet.Packet{Flow: 3, Size: 1000})
	}
	for i := 0; i < 5; i++ {
		c.OnDrop(&packet.Packet{Flow: 3, Size: 1000})
	}
	loss := c.LossBetween(3, 0, sim.At(500*time.Millisecond))
	if loss != 0.05 {
		t.Errorf("loss = %v, want 0.05", loss)
	}
	if c.Flow(3).Drops != 5 || c.Flow(3).Packets != 100 {
		t.Errorf("totals: %+v", c.Flow(3))
	}
}

func TestFlowsIndependent(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	c.Tap(&packet.Packet{Flow: 1, Size: 1000})
	c.Tap(&packet.Packet{Flow: 2, Size: 9000})
	c.TapDelivered(&packet.Packet{Flow: 1, Size: 1000})
	if c.Flow(1).Bytes != 1000 || c.Flow(2).Bytes != 9000 {
		t.Error("flows mixed")
	}
	if c.LossBetween(1, 0, sim.At(time.Second)) != 0 {
		t.Error("phantom loss")
	}
	if c.Flow(1).Delivered != 1000 || c.Flow(2).Delivered != 0 {
		t.Error("delivered accounting wrong")
	}
	off := c.OfferedSeries(2, 1)
	if off[0] == 0 {
		t.Error("offered series empty for tapped flow")
	}
}

func TestUnknownFlowEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	if c.RateBetween(9, 0, sim.At(time.Second)) != 0 {
		t.Error("unknown flow rate should be 0")
	}
	series := c.BitrateSeries(9, 4)
	for _, v := range series {
		if v != 0 {
			t.Error("unknown flow series should be zero")
		}
	}
}

func TestRateBetweenEdgeCases(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	p := &packet.Packet{Flow: 1, Size: 62500}
	c.Tap(p)
	c.TapDelivered(p)

	// Inverted and empty windows yield zero, not a panic or a negative rate.
	if got := c.RateBetween(1, sim.At(time.Second), 0); got != 0 {
		t.Errorf("inverted window rate = %v, want 0", got)
	}
	if got := c.RateBetween(1, sim.At(time.Second), sim.At(time.Second)); got != 0 {
		t.Errorf("empty window rate = %v, want 0", got)
	}
	// A window extending past the recorded bins averages over the full
	// requested span (missing bins count as zero traffic).
	got := c.RateBetween(1, 0, sim.At(4*time.Second))
	want := 62500 * 8.0 / 4 / 1e6 // Mb over 4 s
	if got.Mbit() < want*0.99 || got.Mbit() > want*1.01 {
		t.Errorf("partial-bins rate = %v Mb/s, want %v", got.Mbit(), want)
	}
	// A window entirely beyond the data is zero.
	if got := c.RateBetween(1, sim.At(10*time.Second), sim.At(20*time.Second)); got != 0 {
		t.Errorf("beyond-data rate = %v, want 0", got)
	}
}

func TestLossBetweenEdgeCases(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	for i := 0; i < 10; i++ {
		c.Tap(&packet.Packet{Flow: 7, Size: 1000})
	}
	c.OnDrop(&packet.Packet{Flow: 7, Size: 1000})

	if got := c.LossBetween(7, sim.At(time.Second), 0); got != 0 {
		t.Errorf("inverted window loss = %v, want 0", got)
	}
	// Never-seen flow: no packets means loss 0, and querying must not
	// fabricate counters for later queries.
	if got := c.LossBetween(42, 0, sim.At(time.Second)); got != 0 {
		t.Errorf("unseen flow loss = %v, want 0", got)
	}
	// Window past the data still divides by the packets actually offered.
	if got := c.LossBetween(7, 0, sim.At(time.Hour)); got != 0.1 {
		t.Errorf("beyond-data loss = %v, want 0.1", got)
	}
	// Window starting beyond the data has no packets: loss 0.
	if got := c.LossBetween(7, sim.At(time.Minute), sim.At(time.Hour)); got != 0 {
		t.Errorf("late window loss = %v, want 0", got)
	}
}

func TestSetHorizonPreallocates(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	c.SetHorizon(10 * time.Second) // 20 bins + 1
	f := c.flow(1)
	if cap(f.bins) < 21 {
		t.Fatalf("bins cap = %d, want >= 21", cap(f.bins))
	}
	// Taps within the horizon must not reallocate.
	base := &f.bins[:1][0]
	eng.Schedule(9*time.Second+900*time.Millisecond, func() {
		c.Tap(&packet.Packet{Flow: 1, Size: 100})
	})
	eng.Run(sim.At(10 * time.Second))
	if &f.bins[0] != base {
		t.Error("tap within horizon reallocated the bin slice")
	}
	// Past the horizon the capture keeps working.
	eng.Schedule(25*time.Second, func() {
		c.Tap(&packet.Packet{Flow: 1, Size: 100})
	})
	eng.Run(sim.At(40 * time.Second))
	if f.Packets != 2 {
		t.Errorf("packets = %d, want 2", f.Packets)
	}
	if got := f.bins[len(f.bins)-1].bytes; got != 100 {
		t.Errorf("last bin = %d, want 100", got)
	}
}

func TestGrowDoubling(t *testing.T) {
	s := grow(nil, 0)
	if len(s) != 1 {
		t.Fatalf("len = %d", len(s))
	}
	s[0].pkts = 7
	s = grow(s, 100)
	if len(s) != 101 || s[0].pkts != 7 {
		t.Fatalf("len = %d, s[0] = %d", len(s), s[0].pkts)
	}
	for _, v := range s[1:] {
		if v != (binCount{}) {
			t.Fatal("grown region not zeroed")
		}
	}
	// Growing within capacity must not reallocate.
	c := cap(s)
	s2 := grow(s, c-1)
	if cap(s2) != c {
		t.Errorf("within-cap grow reallocated: cap %d -> %d", c, cap(s2))
	}
}

// BenchmarkBinGrowth isolates the packet-path cost of extending the bin
// array across a 9-minute trace (1080 bins, one count per bin): "horizon"
// preallocates via SetHorizon and never reallocates; "fallback" relies on
// grow's doubling. The previous element-at-a-time append walked every
// missing bin on each advance; both variants here are amortised O(1), with
// horizon eliminating reallocation entirely.
func BenchmarkBinGrowth(b *testing.B) {
	for _, pre := range []int{0, 1081} {
		name := "fallback"
		if pre > 0 {
			name = "horizon"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var s []binCount
				if pre > 0 {
					s = make([]binCount, 0, pre)
				}
				for bin := 0; bin <= 1080; bin++ {
					s = grow(s, bin)
					s[bin].pkts++
				}
			}
		})
	}
}
