package trace

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestBitrateBins(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 0)
	if c.BinDuration() != 500*time.Millisecond {
		t.Fatalf("default bin = %v", c.BinDuration())
	}
	// 1 Mb/s for one second: 125000 bytes split over two bins.
	for i := 0; i < 10; i++ {
		eng.Schedule(time.Duration(i)*100*time.Millisecond, func() {
			p := &packet.Packet{Flow: 1, Size: 12500}
			c.Tap(p)
			c.TapDelivered(p)
		})
	}
	eng.Run(sim.At(time.Second))
	series := c.BitrateSeries(1, 2)
	if len(series) != 2 {
		t.Fatalf("series length %d", len(series))
	}
	for i, v := range series {
		if v < 0.99 || v > 1.01 {
			t.Errorf("bin %d = %.3f Mb/s, want 1.0", i, v)
		}
	}
}

func TestRateBetween(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	eng.Schedule(250*time.Millisecond, func() {
		p := &packet.Packet{Flow: 2, Size: 62500}
		c.Tap(p)
		c.TapDelivered(p)
	})
	eng.Run(sim.At(2 * time.Second))
	// 62500 B in the first 0.5 s bin = 1 Mb/s over that bin.
	got := c.RateBetween(2, 0, sim.At(500*time.Millisecond))
	if got.Mbit() < 0.99 || got.Mbit() > 1.01 {
		t.Errorf("RateBetween = %v", got)
	}
	// Averaged over 2 s it is 0.25 Mb/s.
	got = c.RateBetween(2, 0, sim.At(2*time.Second))
	if got.Mbit() < 0.24 || got.Mbit() > 0.26 {
		t.Errorf("RateBetween full = %v", got)
	}
}

func TestLossAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	for i := 0; i < 100; i++ {
		c.Tap(&packet.Packet{Flow: 3, Size: 1000})
	}
	for i := 0; i < 5; i++ {
		c.OnDrop(&packet.Packet{Flow: 3, Size: 1000})
	}
	loss := c.LossBetween(3, 0, sim.At(500*time.Millisecond))
	if loss != 0.05 {
		t.Errorf("loss = %v, want 0.05", loss)
	}
	if c.Flow(3).Drops != 5 || c.Flow(3).Packets != 100 {
		t.Errorf("totals: %+v", c.Flow(3))
	}
}

func TestFlowsIndependent(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	c.Tap(&packet.Packet{Flow: 1, Size: 1000})
	c.Tap(&packet.Packet{Flow: 2, Size: 9000})
	c.TapDelivered(&packet.Packet{Flow: 1, Size: 1000})
	if c.Flow(1).Bytes != 1000 || c.Flow(2).Bytes != 9000 {
		t.Error("flows mixed")
	}
	if c.LossBetween(1, 0, sim.At(time.Second)) != 0 {
		t.Error("phantom loss")
	}
	if c.Flow(1).Delivered != 1000 || c.Flow(2).Delivered != 0 {
		t.Error("delivered accounting wrong")
	}
	off := c.OfferedSeries(2, 1)
	if off[0] == 0 {
		t.Error("offered series empty for tapped flow")
	}
}

func TestUnknownFlowEmpty(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCapture(eng, 500*time.Millisecond)
	if c.RateBetween(9, 0, sim.At(time.Second)) != 0 {
		t.Error("unknown flow rate should be 0")
	}
	series := c.BitrateSeries(9, 4)
	for _, v := range series {
		if v != 0 {
			t.Error("unknown flow series should be zero")
		}
	}
}
