// Package trace is the simulator's Wireshark: a capture point that observes
// every packet arriving at the bottleneck router plus every drop at its
// queue, and aggregates per-flow bitrate and loss time series in the 0.5 s
// bins the paper's analysis uses.
package trace

import (
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// DefaultBin matches the paper's 0.5 s bitrate computation interval.
const DefaultBin = 500 * time.Millisecond

// binCount holds all four per-bin counters for one flow in one record, so
// each packet tap touches a single flat array (and usually a single cache
// line) instead of four separately grown slices.
type binCount struct {
	bytes int64 // offered at the router (pre-queue)
	pkts  int64
	drops int64
	dlv   int64 // delivered past the bottleneck (post-queue)
}

// FlowTrace accumulates one flow's per-bin counters.
type FlowTrace struct {
	bins []binCount

	// Totals since capture start.
	Packets   int64
	Bytes     int64
	Drops     int64
	Delivered int64
}

// maxDenseFlow bounds the FlowID range served by the capture's dense
// lookup table; larger IDs spill into a map (never hit in practice —
// scenario builders assign small consecutive IDs).
const maxDenseFlow = 1 << 14

// Capture observes packets at the bottleneck. Attach Tap to the router and
// OnDrop to the bottleneck queue's drop callback.
type Capture struct {
	eng    *sim.Engine
	binDur sim.Time
	// flows is a dense lookup table indexed by FlowID, so the per-packet
	// taps cost a bounds check and a slice load even with hundreds of
	// concurrent flows. IDs at or above maxDenseFlow spill into flowsHi.
	flows   []*FlowTrace
	flowsHi map[packet.FlowID]*FlowTrace
	// binHint is the expected final bin count (from SetHorizon); new flows
	// preallocate their bin slices to it, so the hot taps almost never
	// grow mid-run.
	binHint int
	// arena and binArena are the remainders of the current FlowTrace and
	// bin allocation blocks; see newFlowTrace.
	arena    []FlowTrace
	binArena []binCount
}

// NewCapture creates a capture with the given bin duration (DefaultBin if
// zero).
func NewCapture(eng *sim.Engine, bin time.Duration) *Capture {
	if bin <= 0 {
		bin = DefaultBin
	}
	return &Capture{
		eng:    eng,
		binDur: sim.At(bin),
	}
}

// BinDuration returns the configured bin width.
func (c *Capture) BinDuration() time.Duration { return c.binDur.Duration() }

// SetHorizon tells the capture how long the run is expected to last, so
// per-flow bin slices can be allocated once up front instead of growing
// bin by bin on the packet path. Runs past the horizon still work — grow
// falls back to doubling.
func (c *Capture) SetHorizon(d time.Duration) {
	if d <= 0 {
		c.binHint = 0
		return
	}
	c.binHint = int(sim.At(d)/c.binDur) + 1
}

func (c *Capture) flow(id packet.FlowID) *FlowTrace {
	if id >= 0 && id < maxDenseFlow {
		if int(id) >= len(c.flows) {
			if int(id) < cap(c.flows) {
				c.flows = c.flows[:id+1]
			} else {
				// Geometric growth: population flow IDs arrive in
				// ascending order, so per-maximum reallocation would be
				// quadratic in the flow count.
				nf := make([]*FlowTrace, id+1, 2*(int(id)+1))
				copy(nf, c.flows)
				c.flows = nf
			}
		}
		if f := c.flows[id]; f != nil {
			return f
		}
		f := c.newFlowTrace()
		c.flows[id] = f
		return f
	}
	if f := c.flowsHi[id]; f != nil {
		return f
	}
	if c.flowsHi == nil {
		c.flowsHi = make(map[packet.FlowID]*FlowTrace)
	}
	f := c.newFlowTrace()
	c.flowsHi[id] = f
	return f
}

// flowTraceChunk is how many FlowTrace records one arena block holds.
const flowTraceChunk = 32

func (c *Capture) newFlowTrace() *FlowTrace {
	// FlowTrace records are carved from chunked arena blocks: a campaign
	// population touches hundreds of flows, and one allocation per 32
	// keeps trace setup out of the per-flow cost.
	if len(c.arena) == 0 {
		c.arena = make([]FlowTrace, flowTraceChunk)
	}
	f := &c.arena[0]
	c.arena = c.arena[1:]
	if c.binHint > 0 {
		// Bin backings come from the same chunking discipline; the
		// three-index carve pins capacity so a flow outliving the horizon
		// spills to its own array rather than a neighbour's bins.
		if len(c.binArena) < c.binHint {
			c.binArena = make([]binCount, flowTraceChunk*c.binHint)
		}
		f.bins = c.binArena[:0:c.binHint]
		c.binArena = c.binArena[c.binHint:]
	}
	return f
}

func (c *Capture) bin() int { return int(c.eng.Now() / c.binDur) }

// grow extends s with zeros so bin is addressable. When reallocation is
// needed (horizon unset or exceeded) capacity at least doubles, keeping the
// packet-path cost amortised O(1) instead of O(bins) appends per packet.
func grow(s []binCount, bin int) []binCount {
	if bin < len(s) {
		return s
	}
	if bin < cap(s) {
		return s[:bin+1] // zeroed by construction: len only ever grows here
	}
	ncap := 2 * cap(s)
	if ncap <= bin {
		ncap = bin + 1
	}
	ns := make([]binCount, bin+1, ncap)
	copy(ns, s)
	return ns
}

// Tap records a forwarded packet; register it with Router.Tap.
func (c *Capture) Tap(p *packet.Packet) {
	f := c.flow(p.Flow)
	b := c.bin()
	f.bins = grow(f.bins, b)
	f.bins[b].bytes += int64(p.Size)
	f.bins[b].pkts++
	f.Packets++
	f.Bytes += int64(p.Size)
}

// TapDelivered records a packet that made it past the bottleneck; place it
// on the shaper's egress. Delivered bins are what the paper's bitrate plots
// show (Wireshark saw post-bottleneck traffic at the clients).
func (c *Capture) TapDelivered(p *packet.Packet) {
	f := c.flow(p.Flow)
	b := c.bin()
	f.bins = grow(f.bins, b)
	f.bins[b].dlv += int64(p.Size)
	f.Delivered += int64(p.Size)
}

// OnDrop records a bottleneck drop; register it with the queue's drop
// callback.
func (c *Capture) OnDrop(p *packet.Packet) {
	f := c.flow(p.Flow)
	b := c.bin()
	f.bins = grow(f.bins, b)
	f.bins[b].drops++
	f.Drops++
}

// Flow returns the trace for a flow (empty trace if never seen).
func (c *Capture) Flow(id packet.FlowID) *FlowTrace {
	return c.flow(id)
}

// BitrateSeries returns the flow's delivered on-wire bitrate per bin in
// Mb/s, with exactly n bins (zero-padded). Requires TapDelivered wiring.
func (c *Capture) BitrateSeries(id packet.FlowID, n int) []float64 {
	f := c.flow(id)
	sec := c.binDur.Duration().Seconds()
	out := make([]float64, n)
	for i := 0; i < n && i < len(f.bins); i++ {
		out[i] = float64(f.bins[i].dlv) * 8 / sec / 1e6
	}
	return out
}

// OfferedSeries returns the flow's offered (pre-queue) bitrate per bin in
// Mb/s.
func (c *Capture) OfferedSeries(id packet.FlowID, n int) []float64 {
	f := c.flow(id)
	sec := c.binDur.Duration().Seconds()
	out := make([]float64, n)
	for i := 0; i < n && i < len(f.bins); i++ {
		out[i] = float64(f.bins[i].bytes) * 8 / sec / 1e6
	}
	return out
}

// RateBetween returns the flow's average delivered rate over [from, to),
// resolved to whole bins.
func (c *Capture) RateBetween(id packet.FlowID, from, to sim.Time) units.Rate {
	f := c.flow(id)
	var total int64
	lo, hi := int(from/c.binDur), int(to/c.binDur)
	for i := lo; i < hi && i < len(f.bins); i++ {
		total += f.bins[i].dlv
	}
	if hi <= lo {
		return 0
	}
	dur := time.Duration(hi-lo) * c.binDur.Duration()
	return units.RateFromBytes(units.ByteSize(total), dur)
}

// LossBetween returns the flow's loss fraction over [from, to): drops at
// the bottleneck queue divided by packets offered to the router (the tap
// sits upstream of the queue, so tap counts include the later-dropped
// packets).
func (c *Capture) LossBetween(id packet.FlowID, from, to sim.Time) float64 {
	f := c.flow(id)
	lo, hi := int(from/c.binDur), int(to/c.binDur)
	var pkts, drops int64
	for i := lo; i < hi && i < len(f.bins); i++ {
		pkts += f.bins[i].pkts
		drops += f.bins[i].drops
	}
	if pkts == 0 {
		return 0
	}
	return float64(drops) / float64(pkts)
}
