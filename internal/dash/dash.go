// Package dash implements an HTTP-adaptive-streaming (DASH/HLS-style)
// video session over TCP — the "streaming video (e.g., Netflix)" competitor
// the paper's future-work section calls for. A client requests fixed-length
// segments; each segment's size is picked from a bitrate ladder by a
// throughput-and-buffer rule; the server pushes the bytes over a TCP
// connection (Cubic or BBR). The resulting on-off traffic is the classic
// ABR pattern: bursts at link rate while a segment downloads, idle once the
// playback buffer is full.
package dash

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// DefaultLadder is a typical video bitrate ladder (Mb/s).
var DefaultLadder = []units.Rate{
	units.Kbps(600), units.Mbps(1.5), units.Mbps(3), units.Mbps(5),
	units.Mbps(8), units.Mbps(12), units.Mbps(16),
}

// Config parameterises a session.
type Config struct {
	// CCA is the TCP congestion control for the transfer connection.
	CCA string
	// SegmentDur is the media duration per segment (typ. 4 s).
	SegmentDur time.Duration
	// Ladder is the available bitrate ladder, ascending.
	Ladder []units.Rate
	// MaxBuffer is the playback buffer level at which the client pauses
	// requesting (typ. 20-30 s).
	MaxBuffer time.Duration
	// SafetyFactor scales the throughput estimate when picking a rung
	// (typ. 0.8).
	SafetyFactor float64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.CCA == "" {
		c.CCA = tcp.AlgCubic
	}
	if c.SegmentDur == 0 {
		c.SegmentDur = 4 * time.Second
	}
	if len(c.Ladder) == 0 {
		c.Ladder = DefaultLadder
	}
	if c.MaxBuffer == 0 {
		c.MaxBuffer = 24 * time.Second
	}
	if c.SafetyFactor == 0 {
		c.SafetyFactor = 0.8
	}
	return c
}

// Session is one adaptive-video session: the server side owns the TCP
// sender, the client side owns the receiver, rate adaptation runs at the
// client as segments complete.
type Session struct {
	cfg Config
	eng *sim.Engine

	Sender   *tcp.Sender
	Receiver *tcp.Receiver

	running   bool
	quality   int // current ladder index
	buffer    time.Duration
	lastDrain sim.Time

	segStart    sim.Time
	segBytes    int64
	segReceived int64
	waiting     bool // paused on a full buffer
	throughput  units.Rate

	// Stats for the harness.
	SegmentsFetched int
	Stalls          int
	QualitySum      int64 // for mean quality
}

// New creates a session between serverHost and clientHost on the given
// flow. Call Start to begin fetching.
func New(serverHost, clientHost *netem.Host, flow packet.FlowID, cfg Config) *Session {
	cfg = cfg.Defaults()
	s := &Session{
		cfg:     cfg,
		eng:     serverHost.Engine(),
		quality: 0,
	}
	s.Sender = tcp.NewSender(serverHost, flow, clientHost.Addr, tcp.New(cfg.CCA))
	s.Sender.SetLimit(1) // bounded source: segments arrive via Enqueue
	s.Receiver = tcp.NewReceiver(clientHost, flow, serverHost.Addr)
	s.Receiver.OnDeliver = s.onBytes
	return s
}

// Start begins the session at the lowest rung.
func (s *Session) Start() {
	if s.running {
		return
	}
	s.running = true
	s.lastDrain = s.eng.Now()
	s.Sender.Start()
	s.requestSegment()
}

// Stop halts after the in-flight segment.
func (s *Session) Stop() {
	s.running = false
	s.Sender.StopSending()
}

// Quality returns the current ladder index.
func (s *Session) Quality() int { return s.quality }

// MeanQuality returns the average ladder index over fetched segments.
func (s *Session) MeanQuality() float64 {
	if s.SegmentsFetched == 0 {
		return 0
	}
	return float64(s.QualitySum) / float64(s.SegmentsFetched)
}

// Buffer returns the playback buffer level.
func (s *Session) Buffer() time.Duration {
	s.drainBuffer()
	return s.buffer
}

// drainBuffer advances playback against wall (simulation) time.
func (s *Session) drainBuffer() {
	now := s.eng.Now()
	elapsed := now.Sub(s.lastDrain)
	s.lastDrain = now
	if elapsed <= 0 {
		return
	}
	s.buffer -= elapsed
	if s.buffer < 0 {
		s.buffer = 0
	}
}

// requestSegment begins the next segment download. The request itself is
// modelled as instantaneous control traffic (a few bytes upstream are
// negligible next to the segment).
func (s *Session) requestSegment() {
	if !s.running {
		return
	}
	s.segStart = s.eng.Now()
	s.segReceived = 0
	rate := s.cfg.Ladder[s.quality]
	s.segBytes = int64(rate.BytesIn(s.cfg.SegmentDur))
	s.Sender.Enqueue(s.segBytes)
}

// onBytes accounts delivered segment bytes and completes segments.
func (s *Session) onBytes(n int64) {
	if s.segBytes == 0 {
		return
	}
	s.segReceived += n
	if s.segReceived < s.segBytes {
		return
	}
	// Segment complete.
	now := s.eng.Now()
	dur := now.Sub(s.segStart)
	if dur > 0 {
		s.throughput = units.RateFromBytes(units.ByteSize(s.segBytes), dur)
	}
	s.drainBuffer()
	if s.buffer == 0 && s.SegmentsFetched > 0 {
		s.Stalls++
	}
	s.buffer += s.cfg.SegmentDur
	s.SegmentsFetched++
	s.QualitySum += int64(s.quality)
	s.segBytes = 0
	s.pickQuality()
	s.scheduleNext()
}

// pickQuality selects the highest rung below SafetyFactor x throughput,
// stepping at most one rung up at a time (standard conservative ABR).
func (s *Session) pickQuality() {
	est := s.throughput.Scale(s.cfg.SafetyFactor)
	best := 0
	for i, r := range s.cfg.Ladder {
		if r <= est {
			best = i
		}
	}
	switch {
	case best > s.quality:
		s.quality++
	case best < s.quality:
		s.quality = best
	}
}

// scheduleNext requests immediately while the buffer has room, otherwise
// waits until playback frees one segment of space.
func (s *Session) scheduleNext() {
	if !s.running {
		return
	}
	s.drainBuffer()
	if s.buffer+s.cfg.SegmentDur <= s.cfg.MaxBuffer {
		s.requestSegment()
		return
	}
	wait := s.buffer + s.cfg.SegmentDur - s.cfg.MaxBuffer
	s.eng.Schedule(wait, s.scheduleNext)
}
