package dash

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// dashNet wires a server and client through a shaped bottleneck.
func dashNet(rate units.Rate, seed uint64) (*sim.Engine, *netem.Host, *netem.Host) {
	eng := sim.NewEngine(seed)
	var ids uint64
	var srv, cli *netem.Host
	q := netem.NewDropTail(2 * units.BDP(rate, 20*time.Millisecond))
	fwd := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) { cli.Handle(p) }))
	sh := netem.NewShaper(eng, rate, 2*packet.MTU, q, fwd)
	rev := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) { srv.Handle(p) }))
	srv = netem.NewHost(eng, 1, sh, &ids)
	cli = netem.NewHost(eng, 2, rev, &ids)
	return eng, srv, cli
}

func TestClimbsLadderOnFastLink(t *testing.T) {
	eng, srv, cli := dashNet(units.Mbps(50), 1)
	s := New(srv, cli, 1, Config{})
	s.Start()
	eng.Run(sim.At(120 * time.Second))
	// A 50 Mb/s link carries the top rung (16 Mb/s) with room to spare.
	if s.Quality() != len(DefaultLadder)-1 {
		t.Errorf("quality = %d, want top rung %d", s.Quality(), len(DefaultLadder)-1)
	}
	if s.Stalls != 0 {
		t.Errorf("stalled %d times on an overprovisioned link", s.Stalls)
	}
	if s.SegmentsFetched < 25 {
		t.Errorf("fetched only %d segments in 120 s", s.SegmentsFetched)
	}
}

func TestSettlesBelowCapacity(t *testing.T) {
	eng, srv, cli := dashNet(units.Mbps(6), 2)
	s := New(srv, cli, 1, Config{})
	s.Start()
	eng.Run(sim.At(180 * time.Second))
	// Steady state: the chosen rung's bitrate must fit within capacity.
	rate := DefaultLadder[s.Quality()]
	if rate > units.Mbps(6) {
		t.Errorf("chose %v on a 6 Mb/s link", rate)
	}
	// With safety factor 0.8 it should reach 3 Mb/s (rung 2) at least.
	if s.Quality() < 2 {
		t.Errorf("quality = %d, want >= 2 on a 6 Mb/s link", s.Quality())
	}
}

func TestBufferBounded(t *testing.T) {
	eng, srv, cli := dashNet(units.Mbps(50), 3)
	s := New(srv, cli, 1, Config{MaxBuffer: 12 * time.Second})
	s.Start()
	maxBuf := time.Duration(0)
	probe := sim.NewTicker(eng, time.Second, func() {
		if b := s.Buffer(); b > maxBuf {
			maxBuf = b
		}
	})
	probe.Start(false)
	eng.Run(sim.At(120 * time.Second))
	if maxBuf > 17*time.Second {
		t.Errorf("buffer reached %v, want bounded near 12s+1 segment", maxBuf)
	}
}

func TestOnOffTrafficPattern(t *testing.T) {
	// Once the buffer is full, the connection must go idle between
	// segment fetches (the ABR on-off pattern).
	eng, srv, cli := dashNet(units.Mbps(50), 4)
	s := New(srv, cli, 1, Config{MaxBuffer: 8 * time.Second})
	s.Start()
	eng.Run(sim.At(60 * time.Second))
	sent := s.Sender.Stats.BytesSent
	// Steady state sends at most the playback rate (top rung 16 Mb/s)
	// plus startup: far below what a 50 Mb/s link could carry.
	upper := int64(units.Mbps(16).BytesIn(60*time.Second)) * 13 / 10
	if sent > upper {
		t.Errorf("sent %d bytes in 60 s; on-off pacing should cap near playback rate (%d)", sent, upper)
	}
}

func TestStopHaltsFetching(t *testing.T) {
	eng, srv, cli := dashNet(units.Mbps(20), 5)
	s := New(srv, cli, 1, Config{})
	s.Start()
	eng.Run(sim.At(30 * time.Second))
	s.Stop()
	fetched := s.SegmentsFetched
	eng.Run(sim.At(60 * time.Second))
	if s.SegmentsFetched > fetched+1 {
		t.Errorf("fetched %d more segments after Stop", s.SegmentsFetched-fetched)
	}
}

func TestMeanQuality(t *testing.T) {
	eng, srv, cli := dashNet(units.Mbps(50), 6)
	s := New(srv, cli, 1, Config{})
	s.Start()
	eng.Run(sim.At(90 * time.Second))
	mq := s.MeanQuality()
	if mq <= 0 || mq > float64(len(DefaultLadder)-1) {
		t.Errorf("mean quality = %v out of range", mq)
	}
}

func TestDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.CCA != "cubic" || c.SegmentDur != 4*time.Second || c.SafetyFactor != 0.8 {
		t.Errorf("defaults = %+v", c)
	}
}
