package gamestream

import (
	"math"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// encRateSlew bounds how fast the encoder's operating bitrate moves toward
// the controller target, per second, as a fraction of the span (video
// encoders re-key their rate control smoothly rather than stepping).
const encRateSlew = 4.0

// nackRetain is how long transmitted fragments stay buffered for
// retransmission requests.
const nackRetain = time.Second

// paceGain is the fragment pacing rate relative to the encoder bitrate.
// Pacing spreads key-frame bursts over a few frame intervals instead of
// slamming the bottleneck queue — commercial streamers do the same.
const paceGain = 1.5

// Congestion-indicator parameters for the encoder frame-rate cap: the
// stream is "congested" if a recent feedback window carried noticeable
// loss, or the operating rate is starved relative to the encoder maximum.
const (
	congestionLossSignal = 0.015
	congestionRateFrac   = 0.45
)

// Server is the cloud-side half of a game-streaming session: it generates
// frames at the encoder frame rate, sizes them from the controller's target
// bitrate and the scripted-gameplay complexity process, packetises and
// (optionally) FEC-protects them, paces fragments onto the wire, and
// answers NACKs from its retransmit buffer. Profile rates are on-wire
// bitrates (what Wireshark would report), so FEC and header overhead are
// budgeted inside the encoder's frame sizing.
type Server struct {
	host    *netem.Host
	eng     *sim.Engine
	flow    packet.FlowID
	dst     packet.Addr
	profile Profile
	ctrl    Controller
	rng     *sim.RNG

	encRate    units.Rate // operating on-wire bitrate (slews toward target)
	fps        int
	complexity float64 // AR(1) scene-complexity state
	frameID    int64
	fragSeq    int64
	lastKey    sim.Time
	lastTick   sim.Time
	ticker     *sim.Ticker
	running    bool

	// fragQ is a head-indexed queue of paced fragments; popping advances
	// fragHead and the backing array is reused once drained, so steady
	// state pacing allocates nothing.
	fragQ     []pendingFrag
	fragHead  int
	paceNext  sim.Time
	paceTimer *sim.Timer

	lossyTimes []sim.Time // recent feedback windows with noticeable loss

	// retxRing is the retransmit buffer: a power-of-two ring of frame
	// descriptors keyed by fragment sequence number, each entry holding one
	// FrameInfo reference. Inserting a fragment evicts (and releases) the
	// slot's previous occupant, so the live entry count is bounded by the
	// ring size by construction; lookups additionally age-check against
	// nackRetain so a hit is never older than the map-based prune horizon.
	retxRing []retxSlot
	retxMask int64
	retxTail int64 // oldest fragment seq possibly still retained
	infoPool frameInfoPool

	// Stats counters for the harness.
	FramesSent    int64
	FragmentsSent int64
	BytesSent     int64
	Retransmits   int64
}

// pendingFrag is one queue entry awaiting pacing; info carries a counted
// reference that emit transfers to the outgoing packet.
type pendingFrag struct {
	seq  int64
	info *FrameInfo
	retx bool
}

// retxSlot is one retransmit-ring entry; seq is the generation tag that
// validates a lookup hit.
type retxSlot struct {
	seq  int64
	info *FrameInfo
}

// retxRingSize returns the retransmit ring capacity for a profile: enough
// slots that a fragment stays resident for several times nackRetain even at
// the encoder's maximum rate, so every NACK the client can still usefully
// send finds its descriptor before the ring slides past it.
func retxRingSize(p Profile) int {
	fragsPerSec := p.MaxRate.BytesPerSec() / FragmentPayload
	n := 4096
	for float64(n) < 4*fragsPerSec {
		n *= 2
	}
	return n
}

// NewServer creates a streaming server on host for flow, sending to dst,
// with the given behavioural profile. rng drives the workload process.
func NewServer(host *netem.Host, flow packet.FlowID, dst packet.Addr, profile Profile, rng *sim.RNG) *Server {
	s := &Server{
		host:       host,
		eng:        host.Engine(),
		flow:       flow,
		dst:        dst,
		profile:    profile,
		ctrl:       profile.NewController(),
		rng:        rng,
		encRate:    profile.MaxRate,
		fps:        profile.BaseFPS,
		complexity: 1,
		retxRing:   make([]retxSlot, retxRingSize(profile)),
	}
	s.retxMask = int64(len(s.retxRing) - 1)
	s.ticker = sim.NewTicker(s.eng, time.Second/time.Duration(s.fps), s.tick)
	s.paceTimer = sim.NewTimer(s.eng, s.drainFragQ)
	host.Bind(flow, s)
	return s
}

// Controller exposes the rate controller for probes and tests.
func (s *Server) Controller() Controller { return s.ctrl }

// EncoderRate returns the current operating on-wire bitrate.
func (s *Server) EncoderRate() units.Rate { return s.encRate }

// FPS returns the current encoder frame rate.
func (s *Server) FPS() int { return s.fps }

// Congested reports the congestion indicator driving the frame-rate cap:
// a persistent loss signal (two or more lossy feedback windows within the
// congestion window — a solo probe overshoot produces isolated ones) or a
// starved operating rate.
func (s *Server) Congested() bool {
	now := s.eng.Now()
	recent := 0
	for _, t := range s.lossyTimes {
		if now.Sub(t) < congestedWindow {
			recent++
		}
	}
	if recent >= 2 {
		return true
	}
	return s.encRate < s.profile.MaxRate.Scale(congestionRateFrac)
}

// Start begins streaming.
func (s *Server) Start() {
	if s.running {
		return
	}
	s.running = true
	s.lastTick = s.eng.Now()
	s.lastKey = s.eng.Now().Add(-KeyFrameInterval) // first frame is a key frame
	s.ticker.Start(true)
}

// Stop halts streaming and discards any paced backlog, releasing the
// backlog's frame-descriptor references.
func (s *Server) Stop() {
	s.running = false
	s.ticker.Stop()
	for i := s.fragHead; i < len(s.fragQ); i++ {
		s.fragQ[i].info.Release()
		s.fragQ[i] = pendingFrag{}
	}
	s.fragQ = s.fragQ[:0]
	s.fragHead = 0
}

// wireFactor converts video payload bytes to on-wire bytes: FEC parity plus
// per-fragment header overhead.
func (s *Server) wireFactor() float64 {
	return (1 + s.profile.FECRate) *
		float64(FragmentPayload+FragmentOverhead) / float64(FragmentPayload)
}

// tick emits one encoded frame.
func (s *Server) tick() {
	if !s.running {
		return
	}
	now := s.eng.Now()
	s.updateEncoder(now)

	// Scripted-gameplay workload: AR(1) complexity process, identical in
	// distribution across runs via the seeded RNG.
	draw := s.rng.NormClamped(1, s.profile.ComplexityStdDev, 0.55, 1.7)
	s.complexity = 0.85*s.complexity + 0.15*draw

	key := now.Sub(s.lastKey) >= KeyFrameInterval
	if key {
		s.lastKey = now
	}
	// Normalise P-frame sizes so the long-run mean bitrate matches the
	// encoder rate despite periodic 2x key frames.
	framesPerGOP := float64(s.fps) * KeyFrameInterval.Seconds()
	pScale := (framesPerGOP - KeyFrameScale) / (framesPerGOP - 1)
	scale := pScale
	if key {
		scale = KeyFrameScale
	}

	frameBytes := float64(s.encRate) / 8 / float64(s.fps) * s.complexity * scale / s.wireFactor()
	if frameBytes < FragmentPayload/2 {
		frameBytes = FragmentPayload / 2
	}
	s.sendFrame(now, int(frameBytes), key)
}

// updateEncoder slews the operating bitrate toward the controller target
// and applies the frame-rate ladder and congestion cap.
func (s *Server) updateEncoder(now sim.Time) {
	target := s.ctrl.Target()
	if target > s.profile.MaxRate {
		target = s.profile.MaxRate
	}
	if target < s.profile.MinRate {
		target = s.profile.MinRate
	}
	dt := now.Sub(s.lastTick).Seconds()
	s.lastTick = now
	maxStep := units.Rate(float64(s.profile.MaxRate) * encRateSlew * dt)
	switch {
	case target > s.encRate:
		s.encRate = minRate(s.encRate+maxStep, target)
	case target < s.encRate:
		s.encRate = maxRate(s.encRate-maxStep, target)
	}

	fps := s.profile.EncoderFPS(s.encRate)
	if cap := s.profile.CongestionFPSCap; cap > 0 && fps > cap && s.Congested() {
		fps = cap
	}
	if fps != s.fps && fps > 0 {
		s.fps = fps
		s.ticker.SetInterval(time.Second / time.Duration(fps))
	}
}

// sendFrame packetises one frame into data + parity fragments and hands
// them to the pacer.
func (s *Server) sendFrame(now sim.Time, frameBytes int, key bool) {
	count := (frameBytes + FragmentPayload - 1) / FragmentPayload
	if count < 1 {
		count = 1
	}
	parity := int(math.Ceil(float64(count) * s.profile.FECRate))
	s.FramesSent++
	id := s.frameID
	s.frameID++

	info := s.infoPool.get()
	info.FrameID = id
	info.Count = count
	info.Parity = parity
	info.KeyFrame = key
	info.SeqBase = s.fragSeq
	info.SentAt = now
	if rem := frameBytes - (count-1)*FragmentPayload; rem > 0 {
		info.LastSize = rem
	}
	for i := 0; i < count+parity; i++ {
		seq := s.fragSeq
		s.fragSeq++
		info.Retain()
		sl := &s.retxRing[seq&s.retxMask]
		if sl.info != nil {
			// The window slides: release the descriptor reference held by
			// the slot's previous (long-expired) occupant.
			sl.info.Release()
		}
		sl.seq = seq
		sl.info = info
		info.Retain()
		s.fragQ = append(s.fragQ, pendingFrag{seq: seq, info: info})
	}
	s.sweepRetx(now)
	s.drainFragQ()
}

// sweepRetx releases retransmit-ring references past the nackRetain horizon.
// Fragments enter the ring in sequence order, so age is monotone in seq and
// a tail cursor retires each entry exactly once: O(1) amortised per
// fragment, no scan. Lookups age-check independently, so the sweep only
// bounds how long frame descriptors wait to return to the pool.
func (s *Server) sweepRetx(now sim.Time) {
	for s.retxTail < s.fragSeq {
		sl := &s.retxRing[s.retxTail&s.retxMask]
		if sl.info != nil && sl.seq == s.retxTail {
			if now.Sub(sl.info.SentAt) <= nackRetain {
				return
			}
			sl.info.Release()
			sl.info = nil
		}
		s.retxTail++
	}
}

// drainFragQ emits queued fragments at the pacing rate.
func (s *Server) drainFragQ() {
	now := s.eng.Now()
	gain := s.profile.BurstPace
	if gain <= 0 {
		gain = paceGain
	}
	paceRate := maxRate(s.encRate.Scale(gain), units.Mbps(4))
	for s.fragHead < len(s.fragQ) {
		if now < s.paceNext {
			s.paceTimer.Reset(s.paceNext.Sub(now))
			return
		}
		f := s.fragQ[s.fragHead]
		s.fragQ[s.fragHead] = pendingFrag{}
		s.fragHead++
		if s.fragHead == len(s.fragQ) {
			s.fragQ = s.fragQ[:0]
			s.fragHead = 0
		}
		payload := f.info.PayloadAt(f.info.Index(f.seq))
		s.emit(f.seq, f.info, f.retx, payload)
		wire := units.ByteSize(payload + FragmentOverhead)
		if s.paceNext < now {
			s.paceNext = now
		}
		s.paceNext = s.paceNext.Add(paceRate.TimeToTransmit(wire))
	}
}

// emit puts one fragment on the wire. The caller's FrameInfo reference is
// transferred to the packet: the packet pool releases it when the fragment
// is finally consumed or dropped.
func (s *Server) emit(seq int64, info *FrameInfo, retx bool, payload int) {
	p := s.host.NewPacket()
	p.Flow = s.flow
	p.Kind = packet.KindFrame
	p.Dst = s.dst
	p.Seq = seq
	p.Payload = payload
	p.Size = payload + FragmentOverhead
	p.Retx = retx
	p.App = info
	s.FragmentsSent++
	s.BytesSent += int64(p.Size)
	s.host.Send(p)
}

// RetxLive reports how many retransmit-ring slots currently hold a frame
// descriptor reference. It is bounded by the ring size by construction.
func (s *Server) RetxLive() int {
	n := 0
	for i := range s.retxRing {
		if s.retxRing[i].info != nil {
			n++
		}
	}
	return n
}

// RetxCap returns the retransmit ring capacity.
func (s *Server) RetxCap() int { return len(s.retxRing) }

// Handle implements packet.Handler, processing receiver reports.
func (s *Server) Handle(p *packet.Packet) {
	if p.Kind != packet.KindFeedback {
		return
	}
	fb, ok := p.App.(*Feedback)
	if !ok {
		return
	}
	now := s.eng.Now()
	if fb.LossFraction() >= congestionLossSignal {
		s.lossyTimes = append(s.lossyTimes, now)
		if len(s.lossyTimes) > 64 {
			s.lossyTimes = s.lossyTimes[32:]
		}
	}
	s.ctrl.OnFeedback(now, fb)
	if s.profile.NACK && s.running {
		for _, seq := range fb.Nack {
			sl := &s.retxRing[seq&s.retxMask]
			info := sl.info
			if info == nil || sl.seq != seq || now.Sub(info.SentAt) > nackRetain {
				continue
			}
			// Skip requests already waiting in the pacer queue.
			pending := false
			for _, f := range s.fragQ[s.fragHead:] {
				if f.seq == seq {
					pending = true
					break
				}
			}
			if pending {
				continue
			}
			s.Retransmits++
			info.Retain()
			s.fragQ = append(s.fragQ, pendingFrag{seq: seq, info: info, retx: true})
		}
		s.drainFragQ()
	}
}

func minRate(a, b units.Rate) units.Rate {
	if a < b {
		return a
	}
	return b
}

func maxRate(a, b units.Rate) units.Rate {
	if a > b {
		return a
	}
	return b
}
