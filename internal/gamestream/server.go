package gamestream

import (
	"math"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// encRateSlew bounds how fast the encoder's operating bitrate moves toward
// the controller target, per second, as a fraction of the span (video
// encoders re-key their rate control smoothly rather than stepping).
const encRateSlew = 4.0

// nackRetain is how long transmitted fragments stay buffered for
// retransmission requests.
const nackRetain = time.Second

// paceGain is the fragment pacing rate relative to the encoder bitrate.
// Pacing spreads key-frame bursts over a few frame intervals instead of
// slamming the bottleneck queue — commercial streamers do the same.
const paceGain = 1.5

// Congestion-indicator parameters for the encoder frame-rate cap: the
// stream is "congested" if a recent feedback window carried noticeable
// loss, or the operating rate is starved relative to the encoder maximum.
const (
	congestionLossSignal = 0.015
	congestionRateFrac   = 0.45
)

// Server is the cloud-side half of a game-streaming session: it generates
// frames at the encoder frame rate, sizes them from the controller's target
// bitrate and the scripted-gameplay complexity process, packetises and
// (optionally) FEC-protects them, paces fragments onto the wire, and
// answers NACKs from its retransmit buffer. Profile rates are on-wire
// bitrates (what Wireshark would report), so FEC and header overhead are
// budgeted inside the encoder's frame sizing.
type Server struct {
	host    *netem.Host
	eng     *sim.Engine
	flow    packet.FlowID
	dst     packet.Addr
	profile Profile
	ctrl    Controller
	rng     *sim.RNG

	encRate    units.Rate // operating on-wire bitrate (slews toward target)
	fps        int
	complexity float64 // AR(1) scene-complexity state
	frameID    int64
	fragSeq    int64
	lastKey    sim.Time
	lastTick   sim.Time
	ticker     *sim.Ticker
	running    bool

	fragQ     []pendingFrag
	paceNext  sim.Time
	paceTimer *sim.Timer

	lossyTimes []sim.Time // recent feedback windows with noticeable loss

	retxBuf map[int64]retxEntry

	// Stats counters for the harness.
	FramesSent    int64
	FragmentsSent int64
	BytesSent     int64
	Retransmits   int64
}

type pendingFrag struct {
	seq     int64
	meta    FragMeta
	payload int
}

type retxEntry struct {
	meta FragMeta
	size int
	at   sim.Time
}

// NewServer creates a streaming server on host for flow, sending to dst,
// with the given behavioural profile. rng drives the workload process.
func NewServer(host *netem.Host, flow packet.FlowID, dst packet.Addr, profile Profile, rng *sim.RNG) *Server {
	s := &Server{
		host:       host,
		eng:        host.Engine(),
		flow:       flow,
		dst:        dst,
		profile:    profile,
		ctrl:       profile.NewController(),
		rng:        rng,
		encRate:    profile.MaxRate,
		fps:        profile.BaseFPS,
		complexity: 1,
		retxBuf:    make(map[int64]retxEntry),
	}
	s.ticker = sim.NewTicker(s.eng, time.Second/time.Duration(s.fps), s.tick)
	s.paceTimer = sim.NewTimer(s.eng, s.drainFragQ)
	host.Bind(flow, s)
	return s
}

// Controller exposes the rate controller for probes and tests.
func (s *Server) Controller() Controller { return s.ctrl }

// EncoderRate returns the current operating on-wire bitrate.
func (s *Server) EncoderRate() units.Rate { return s.encRate }

// FPS returns the current encoder frame rate.
func (s *Server) FPS() int { return s.fps }

// Congested reports the congestion indicator driving the frame-rate cap:
// a persistent loss signal (two or more lossy feedback windows within the
// congestion window — a solo probe overshoot produces isolated ones) or a
// starved operating rate.
func (s *Server) Congested() bool {
	now := s.eng.Now()
	recent := 0
	for _, t := range s.lossyTimes {
		if now.Sub(t) < congestedWindow {
			recent++
		}
	}
	if recent >= 2 {
		return true
	}
	return s.encRate < s.profile.MaxRate.Scale(congestionRateFrac)
}

// Start begins streaming.
func (s *Server) Start() {
	if s.running {
		return
	}
	s.running = true
	s.lastTick = s.eng.Now()
	s.lastKey = s.eng.Now().Add(-KeyFrameInterval) // first frame is a key frame
	s.ticker.Start(true)
}

// Stop halts streaming and discards any paced backlog.
func (s *Server) Stop() {
	s.running = false
	s.ticker.Stop()
	s.fragQ = nil
}

// wireFactor converts video payload bytes to on-wire bytes: FEC parity plus
// per-fragment header overhead.
func (s *Server) wireFactor() float64 {
	return (1 + s.profile.FECRate) *
		float64(FragmentPayload+FragmentOverhead) / float64(FragmentPayload)
}

// tick emits one encoded frame.
func (s *Server) tick() {
	if !s.running {
		return
	}
	now := s.eng.Now()
	s.updateEncoder(now)

	// Scripted-gameplay workload: AR(1) complexity process, identical in
	// distribution across runs via the seeded RNG.
	draw := s.rng.NormClamped(1, s.profile.ComplexityStdDev, 0.55, 1.7)
	s.complexity = 0.85*s.complexity + 0.15*draw

	key := now.Sub(s.lastKey) >= KeyFrameInterval
	if key {
		s.lastKey = now
	}
	// Normalise P-frame sizes so the long-run mean bitrate matches the
	// encoder rate despite periodic 2x key frames.
	framesPerGOP := float64(s.fps) * KeyFrameInterval.Seconds()
	pScale := (framesPerGOP - KeyFrameScale) / (framesPerGOP - 1)
	scale := pScale
	if key {
		scale = KeyFrameScale
	}

	frameBytes := float64(s.encRate) / 8 / float64(s.fps) * s.complexity * scale / s.wireFactor()
	if frameBytes < FragmentPayload/2 {
		frameBytes = FragmentPayload / 2
	}
	s.sendFrame(now, int(frameBytes), key)
}

// updateEncoder slews the operating bitrate toward the controller target
// and applies the frame-rate ladder and congestion cap.
func (s *Server) updateEncoder(now sim.Time) {
	target := s.ctrl.Target()
	if target > s.profile.MaxRate {
		target = s.profile.MaxRate
	}
	if target < s.profile.MinRate {
		target = s.profile.MinRate
	}
	dt := now.Sub(s.lastTick).Seconds()
	s.lastTick = now
	maxStep := units.Rate(float64(s.profile.MaxRate) * encRateSlew * dt)
	switch {
	case target > s.encRate:
		s.encRate = minRate(s.encRate+maxStep, target)
	case target < s.encRate:
		s.encRate = maxRate(s.encRate-maxStep, target)
	}

	fps := s.profile.EncoderFPS(s.encRate)
	if cap := s.profile.CongestionFPSCap; cap > 0 && fps > cap && s.Congested() {
		fps = cap
	}
	if fps != s.fps && fps > 0 {
		s.fps = fps
		s.ticker.SetInterval(time.Second / time.Duration(fps))
	}
}

// sendFrame packetises one frame into data + parity fragments and hands
// them to the pacer.
func (s *Server) sendFrame(now sim.Time, frameBytes int, key bool) {
	count := (frameBytes + FragmentPayload - 1) / FragmentPayload
	if count < 1 {
		count = 1
	}
	parity := int(math.Ceil(float64(count) * s.profile.FECRate))
	s.FramesSent++
	id := s.frameID
	s.frameID++

	for i := 0; i < count+parity; i++ {
		payload := FragmentPayload
		if i == count-1 {
			if rem := frameBytes - (count-1)*FragmentPayload; rem > 0 {
				payload = rem
			}
		}
		meta := FragMeta{
			FrameID:     id,
			Index:       i,
			Count:       count,
			Parity:      parity,
			KeyFrame:    key,
			FrameSentAt: now,
		}
		seq := s.fragSeq
		s.fragSeq++
		s.retxBuf[seq] = retxEntry{meta: meta, size: payload, at: now}
		s.fragQ = append(s.fragQ, pendingFrag{seq: seq, meta: meta, payload: payload})
	}
	s.pruneRetx(now)
	s.drainFragQ()
}

// drainFragQ emits queued fragments at the pacing rate.
func (s *Server) drainFragQ() {
	now := s.eng.Now()
	gain := s.profile.BurstPace
	if gain <= 0 {
		gain = paceGain
	}
	paceRate := maxRate(s.encRate.Scale(gain), units.Mbps(4))
	for len(s.fragQ) > 0 {
		if now < s.paceNext {
			s.paceTimer.Reset(s.paceNext.Sub(now))
			return
		}
		f := s.fragQ[0]
		s.fragQ = s.fragQ[1:]
		s.emit(f.seq, f.meta, f.payload)
		wire := units.ByteSize(f.payload + FragmentOverhead)
		if s.paceNext < now {
			s.paceNext = now
		}
		s.paceNext = s.paceNext.Add(paceRate.TimeToTransmit(wire))
	}
}

func (s *Server) emit(seq int64, meta FragMeta, payload int) {
	m := meta
	p := s.host.NewPacket()
	p.Flow = s.flow
	p.Kind = packet.KindFrame
	p.Dst = s.dst
	p.Seq = seq
	p.Payload = payload
	p.Size = payload + FragmentOverhead
	p.App = &m
	s.FragmentsSent++
	s.BytesSent += int64(p.Size)
	s.host.Send(p)
}

func (s *Server) pruneRetx(now sim.Time) {
	if len(s.retxBuf) < 4096 {
		return
	}
	for seq, e := range s.retxBuf {
		if now.Sub(e.at) > nackRetain {
			delete(s.retxBuf, seq)
		}
	}
}

// Handle implements packet.Handler, processing receiver reports.
func (s *Server) Handle(p *packet.Packet) {
	if p.Kind != packet.KindFeedback {
		return
	}
	fb, ok := p.App.(*Feedback)
	if !ok {
		return
	}
	now := s.eng.Now()
	if fb.LossFraction() >= congestionLossSignal {
		s.lossyTimes = append(s.lossyTimes, now)
		if len(s.lossyTimes) > 64 {
			s.lossyTimes = s.lossyTimes[32:]
		}
	}
	s.ctrl.OnFeedback(now, fb)
	if s.profile.NACK && s.running {
		for _, seq := range fb.Nack {
			e, ok := s.retxBuf[seq]
			if !ok {
				continue
			}
			// Skip requests already waiting in the pacer queue.
			pending := false
			for _, f := range s.fragQ {
				if f.seq == seq {
					pending = true
					break
				}
			}
			if pending {
				continue
			}
			m := e.meta
			m.Retx = true
			s.Retransmits++
			s.fragQ = append(s.fragQ, pendingFrag{seq: seq, meta: m, payload: e.size})
		}
		s.drainFragQ()
	}
}

func minRate(a, b units.Rate) units.Rate {
	if a < b {
		return a
	}
	return b
}

func maxRate(a, b units.Rate) units.Rate {
	if a > b {
		return a
	}
	return b
}
