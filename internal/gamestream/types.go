// Package gamestream implements the cloud game-streaming systems under
// test: a video streaming server (frame source, encoder ladder, packetiser,
// FEC, NACK retransmission), a client (reassembly, playout deadline,
// receiver reports), and three adaptive-bitrate controllers calibrated to
// the observable behaviour of Google Stadia, NVidia GeForce Now, and Amazon
// Luna as measured by Xu & Claypool (IMC 2022).
//
// The real platforms are proprietary black boxes; what the paper
// characterises is their emergent congestion response. Each profile here is
// a mechanistically distinct controller (delay-gradient, conservative
// headroom tracking, loss-based AIMD) whose interaction with real TCP
// Cubic/BBR competitors reproduces the paper's findings. See DESIGN.md §4.
package gamestream

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Wire constants.
const (
	// FragmentPayload is the payload carried per UDP fragment.
	FragmentPayload = 1200
	// FragmentOverhead is Ethernet + IP + UDP + 12-byte RTP-style header.
	FragmentOverhead = 14 + 20 + 8 + 12
	// FeedbackInterval is how often the client sends receiver reports.
	FeedbackInterval = 100 * time.Millisecond
	// FeedbackSize is the on-wire size of a receiver report.
	FeedbackSize = 120
	// KeyFrameInterval is the I-frame period.
	KeyFrameInterval = 2 * time.Second
	// KeyFrameScale is the size multiplier for I-frames.
	KeyFrameScale = 2.0
	// nackRetryAfter is how long a client waits before re-requesting a
	// fragment it has already NACKed.
	nackRetryAfter = 150 * time.Millisecond
)

// FrameInfo is the flyweight frame descriptor shared by every fragment of
// one encoded frame. The server draws one per frame from its freelist and
// each holder — an on-wire fragment's App field, a retransmit-buffer entry,
// a pacer-queue entry — keeps a counted reference (packet.AppRef), so the
// steady-state fragment path allocates nothing: per-fragment values (index,
// payload size) are derived from the packet's sequence number instead of
// being stamped onto every packet.
type FrameInfo struct {
	FrameID  int64
	Count    int // data fragments in the frame
	Parity   int // parity fragments appended for FEC
	KeyFrame bool
	// SeqBase is the fragment sequence number of index 0; a frame's
	// count+parity fragments carry consecutive sequence numbers, so a
	// fragment's index is Seq - SeqBase.
	SeqBase int64
	// LastSize is the payload of data fragment Count-1 (the remainder
	// after slicing into FragmentPayload pieces); every other fragment
	// carries FragmentPayload bytes.
	LastSize int
	// SentAt is when the frame left the encoder, driving the client's
	// playout deadline.
	SentAt sim.Time

	refs  int
	owner *frameInfoPool
}

// Index returns the fragment index within the frame for a fragment
// sequence number.
func (fi *FrameInfo) Index(seq int64) int { return int(seq - fi.SeqBase) }

// PayloadAt returns the payload size of the fragment at index.
func (fi *FrameInfo) PayloadAt(index int) int {
	if index == fi.Count-1 && fi.LastSize > 0 {
		return fi.LastSize
	}
	return FragmentPayload
}

// Retain implements packet.AppRef.
func (fi *FrameInfo) Retain() { fi.refs++ }

// Release implements packet.AppRef; at zero references the descriptor
// returns to its owning freelist.
func (fi *FrameInfo) Release() {
	fi.refs--
	if fi.refs < 0 {
		panic("gamestream: FrameInfo over-released")
	}
	if fi.refs == 0 && fi.owner != nil {
		fi.owner.put(fi)
	}
}

// frameInfoPool is a LIFO freelist of frame descriptors, one per server.
// Like packet.Pool it is single-goroutine and deterministic.
type frameInfoPool struct{ free []*FrameInfo }

func (pl *frameInfoPool) get() *FrameInfo {
	if n := len(pl.free); n > 0 {
		fi := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*fi = FrameInfo{owner: pl}
		return fi
	}
	return &FrameInfo{owner: pl}
}

func (pl *frameInfoPool) put(fi *FrameInfo) { pl.free = append(pl.free, fi) }

// Feedback is the receiver report the client sends every FeedbackInterval,
// carried as packet App payload. It is the only signal the server-side
// controller sees, mirroring a WebRTC-style RTCP loop.
type Feedback struct {
	// Interval covered by this report.
	Interval time.Duration
	// RxRate is the goodput observed in the interval.
	RxRate units.Rate
	// ExpectedPkts and LostPkts describe sequence-gap loss in the interval.
	ExpectedPkts int
	LostPkts     int
	// OWDMin and OWDAvg are one-way delay statistics over the interval.
	OWDMin time.Duration
	OWDAvg time.Duration
	// Nack lists fragment sequence numbers the client wants retransmitted.
	Nack []int64

	refs  int
	owner *feedbackPool
}

// Retain implements packet.AppRef.
func (f *Feedback) Retain() { f.refs++ }

// Release implements packet.AppRef; at zero references the report returns
// to its owning freelist (a Feedback literal with no owner is simply left
// to the garbage collector, so tests can build them directly).
func (f *Feedback) Release() {
	f.refs--
	if f.refs < 0 {
		panic("gamestream: Feedback over-released")
	}
	if f.refs == 0 && f.owner != nil {
		f.owner.put(f)
	}
}

// feedbackPool recycles receiver reports (and their NACK backing arrays),
// removing the one steady-state allocation per feedback tick — the term
// that would otherwise scale with the flow count in N-flow populations.
type feedbackPool struct{ free []*Feedback }

func (pl *feedbackPool) get() *Feedback {
	if n := len(pl.free); n > 0 {
		fb := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		nack := fb.Nack[:0]
		*fb = Feedback{Nack: nack, owner: pl}
		return fb
	}
	return &Feedback{owner: pl}
}

func (pl *feedbackPool) put(fb *Feedback) { pl.free = append(pl.free, fb) }

// LossFraction returns the fraction of packets lost in the interval.
func (f *Feedback) LossFraction() float64 {
	if f.ExpectedPkts <= 0 {
		return 0
	}
	return float64(f.LostPkts) / float64(f.ExpectedPkts)
}

// Controller is the adaptive bitrate algorithm: it consumes receiver
// reports and produces a target encoder bitrate. Implementations are pure
// state machines.
type Controller interface {
	// Name identifies the algorithm for traces.
	Name() string
	// OnFeedback processes one receiver report.
	OnFeedback(now sim.Time, fb *Feedback)
	// Target returns the current target bitrate.
	Target() units.Rate
}

// FPSRung maps a bitrate floor to an encoder frame rate.
type FPSRung struct {
	MinRate units.Rate
	FPS     int
}

// Profile is the complete behavioural description of one game-streaming
// system: encoder limits, frame-rate ladder, loss-repair machinery, and the
// rate controller. Calibration targets for each stock profile are
// documented in DESIGN.md §4 and validated in EXPERIMENTS.md.
type Profile struct {
	// Name of the system, e.g. "stadia".
	Name string
	// MaxRate and MinRate bound the encoder bitrate ladder.
	MaxRate units.Rate
	MinRate units.Rate
	// ComplexityStdDev is the relative per-frame size variation driven by
	// scene content (the scripted-gameplay workload process).
	ComplexityStdDev float64
	// FPSLadder maps target bitrate to encoder frame rate; entries must
	// be sorted descending by MinRate. An empty ladder means constant
	// BaseFPS.
	FPSLadder []FPSRung
	// CongestionFPSCap caps the encoder frame rate while the controller
	// reports congestion (0 = no cap).
	CongestionFPSCap int
	// BaseFPS is the uncongested frame rate (the 60 f/s target).
	BaseFPS int
	// FECRate is the fraction of parity fragments added per frame
	// (0 = none). Any k-of-n recovery is assumed (idealised Reed-Solomon).
	FECRate float64
	// NACK enables client retransmission requests for missing fragments.
	NACK bool
	// PlayoutDelay is how long after a frame's first transmission the
	// client will still display it; later frames are dropped.
	PlayoutDelay time.Duration
	// BurstPace is the fragment pacing rate as a multiple of the encoder
	// bitrate (default 1.5 — smooth sender). Large values approximate
	// line-rate frame bursts, the "network turbulence" traffic shape.
	BurstPace float64
	// NewController builds this profile's rate controller.
	NewController func() Controller
}

// EncoderFPS returns the frame rate the profile's ladder selects for a
// target bitrate, before any congestion cap.
func (p *Profile) EncoderFPS(target units.Rate) int {
	for _, rung := range p.FPSLadder {
		if target >= rung.MinRate {
			return rung.FPS
		}
	}
	if n := len(p.FPSLadder); n > 0 {
		return p.FPSLadder[n-1].FPS
	}
	return p.BaseFPS
}
