// Package gamestream implements the cloud game-streaming systems under
// test: a video streaming server (frame source, encoder ladder, packetiser,
// FEC, NACK retransmission), a client (reassembly, playout deadline,
// receiver reports), and three adaptive-bitrate controllers calibrated to
// the observable behaviour of Google Stadia, NVidia GeForce Now, and Amazon
// Luna as measured by Xu & Claypool (IMC 2022).
//
// The real platforms are proprietary black boxes; what the paper
// characterises is their emergent congestion response. Each profile here is
// a mechanistically distinct controller (delay-gradient, conservative
// headroom tracking, loss-based AIMD) whose interaction with real TCP
// Cubic/BBR competitors reproduces the paper's findings. See DESIGN.md §4.
package gamestream

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Wire constants.
const (
	// FragmentPayload is the payload carried per UDP fragment.
	FragmentPayload = 1200
	// FragmentOverhead is Ethernet + IP + UDP + 12-byte RTP-style header.
	FragmentOverhead = 14 + 20 + 8 + 12
	// FeedbackInterval is how often the client sends receiver reports.
	FeedbackInterval = 100 * time.Millisecond
	// FeedbackSize is the on-wire size of a receiver report.
	FeedbackSize = 120
	// KeyFrameInterval is the I-frame period.
	KeyFrameInterval = 2 * time.Second
	// KeyFrameScale is the size multiplier for I-frames.
	KeyFrameScale = 2.0
	// nackRetryAfter is how long a client waits before re-requesting a
	// fragment it has already NACKed.
	nackRetryAfter = 150 * time.Millisecond
)

// FragMeta is the application metadata on a video fragment packet.
type FragMeta struct {
	FrameID  int64
	Index    int // fragment index within the frame
	Count    int // data fragments in the frame
	Parity   int // parity fragments appended for FEC
	KeyFrame bool
	Retx     bool
	// FrameSentAt is when the frame's first fragment left the encoder,
	// used by the client playout deadline.
	FrameSentAt sim.Time
}

// Feedback is the receiver report the client sends every FeedbackInterval,
// carried as packet App payload. It is the only signal the server-side
// controller sees, mirroring a WebRTC-style RTCP loop.
type Feedback struct {
	// Interval covered by this report.
	Interval time.Duration
	// RxRate is the goodput observed in the interval.
	RxRate units.Rate
	// ExpectedPkts and LostPkts describe sequence-gap loss in the interval.
	ExpectedPkts int
	LostPkts     int
	// OWDMin and OWDAvg are one-way delay statistics over the interval.
	OWDMin time.Duration
	OWDAvg time.Duration
	// Nack lists fragment sequence numbers the client wants retransmitted.
	Nack []int64
}

// LossFraction returns the fraction of packets lost in the interval.
func (f *Feedback) LossFraction() float64 {
	if f.ExpectedPkts <= 0 {
		return 0
	}
	return float64(f.LostPkts) / float64(f.ExpectedPkts)
}

// Controller is the adaptive bitrate algorithm: it consumes receiver
// reports and produces a target encoder bitrate. Implementations are pure
// state machines.
type Controller interface {
	// Name identifies the algorithm for traces.
	Name() string
	// OnFeedback processes one receiver report.
	OnFeedback(now sim.Time, fb *Feedback)
	// Target returns the current target bitrate.
	Target() units.Rate
}

// FPSRung maps a bitrate floor to an encoder frame rate.
type FPSRung struct {
	MinRate units.Rate
	FPS     int
}

// Profile is the complete behavioural description of one game-streaming
// system: encoder limits, frame-rate ladder, loss-repair machinery, and the
// rate controller. Calibration targets for each stock profile are
// documented in DESIGN.md §4 and validated in EXPERIMENTS.md.
type Profile struct {
	// Name of the system, e.g. "stadia".
	Name string
	// MaxRate and MinRate bound the encoder bitrate ladder.
	MaxRate units.Rate
	MinRate units.Rate
	// ComplexityStdDev is the relative per-frame size variation driven by
	// scene content (the scripted-gameplay workload process).
	ComplexityStdDev float64
	// FPSLadder maps target bitrate to encoder frame rate; entries must
	// be sorted descending by MinRate. An empty ladder means constant
	// BaseFPS.
	FPSLadder []FPSRung
	// CongestionFPSCap caps the encoder frame rate while the controller
	// reports congestion (0 = no cap).
	CongestionFPSCap int
	// BaseFPS is the uncongested frame rate (the 60 f/s target).
	BaseFPS int
	// FECRate is the fraction of parity fragments added per frame
	// (0 = none). Any k-of-n recovery is assumed (idealised Reed-Solomon).
	FECRate float64
	// NACK enables client retransmission requests for missing fragments.
	NACK bool
	// PlayoutDelay is how long after a frame's first transmission the
	// client will still display it; later frames are dropped.
	PlayoutDelay time.Duration
	// BurstPace is the fragment pacing rate as a multiple of the encoder
	// bitrate (default 1.5 — smooth sender). Large values approximate
	// line-rate frame bursts, the "network turbulence" traffic shape.
	BurstPace float64
	// NewController builds this profile's rate controller.
	NewController func() Controller
}

// EncoderFPS returns the frame rate the profile's ladder selects for a
// target bitrate, before any congestion cap.
func (p *Profile) EncoderFPS(target units.Rate) int {
	for _, rung := range p.FPSLadder {
		if target >= rung.MinRate {
			return rung.FPS
		}
	}
	if n := len(p.FPSLadder); n > 0 {
		return p.FPSLadder[n-1].FPS
	}
	return p.BaseFPS
}
