package gamestream

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func fb(lossPct float64, qd time.Duration, rx units.Rate) *Feedback {
	base := 8 * time.Millisecond
	return &Feedback{
		Interval:     100 * time.Millisecond,
		RxRate:       rx,
		ExpectedPkts: 1000,
		LostPkts:     int(lossPct * 10), // lossPct% of 1000
		OWDMin:       base,
		OWDAvg:       base + qd,
	}
}

func TestAdaptiveThresholdInflatesAndDecays(t *testing.T) {
	a := newAdaptiveThreshold(20*time.Millisecond, 120*time.Millisecond, 1.5, 0.03)
	now := sim.At(0)
	// Persistent 100 ms queuing delay: gamma must approach it.
	for i := 0; i < 100; i++ {
		now = now.Add(100 * time.Millisecond)
		a.observe(now, 100*time.Millisecond)
	}
	if a.gamma < 90*time.Millisecond {
		t.Errorf("gamma = %v after 10 s of 100 ms delay, want near 100 ms", a.gamma)
	}
	// Clean period: gamma decays slowly back toward init.
	for i := 0; i < 3000; i++ {
		now = now.Add(100 * time.Millisecond)
		a.observe(now, 0)
	}
	if a.gamma > 25*time.Millisecond {
		t.Errorf("gamma = %v after a long clean period, want near init", a.gamma)
	}
}

func TestAdaptiveThresholdClamps(t *testing.T) {
	a := newAdaptiveThreshold(20*time.Millisecond, 60*time.Millisecond, 5, 5)
	now := sim.At(0)
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		a.observe(now, 500*time.Millisecond)
	}
	if a.gamma != 60*time.Millisecond {
		t.Errorf("gamma = %v, want clamp at max 60ms", a.gamma)
	}
	for i := 0; i < 50; i++ {
		now = now.Add(100 * time.Millisecond)
		a.observe(now, 0)
	}
	if a.gamma != 20*time.Millisecond {
		t.Errorf("gamma = %v, want clamp at init 20ms", a.gamma)
	}
}

func lunaCfg() LossAIMDConfig {
	return LossAIMDConfig{
		Min: units.Mbps(0.4), Max: units.Mbps(23.7),
		Beta: 0.75, LossThreshold: 0.015, PersistWindows: 2,
		EventDebounce: 800 * time.Millisecond, GrowthPerSec: 0.03,
		DelayThreshold: 30 * time.Millisecond, MaxDelayThreshold: 130 * time.Millisecond,
		RxHeadroom: 1.15,
	}
}

func TestLossAIMDPersistenceRequired(t *testing.T) {
	l := NewLossAIMD(lunaCfg())
	start := l.Target()
	// One isolated lossy window (a Cubic overflow burst): no cut.
	l.OnFeedback(sim.At(time.Second), fb(3, 0, units.Mbps(20)))
	if l.Target() != start {
		t.Error("isolated lossy window triggered a cut")
	}
	// Second consecutive lossy window: cut by beta.
	l.OnFeedback(sim.At(1100*time.Millisecond), fb(3, 0, units.Mbps(20)))
	if want := start.Scale(0.75); l.Target() != want {
		t.Errorf("after persistent loss target = %v, want %v", l.Target(), want)
	}
}

func TestLossAIMDToleratesMildLoss(t *testing.T) {
	l := NewLossAIMD(lunaCfg())
	start := l.Target()
	// Sustained sub-threshold loss (Cubic at a small queue): no cuts.
	for i := 1; i <= 50; i++ {
		l.OnFeedback(sim.At(time.Duration(i)*100*time.Millisecond), fb(0.8, 0, units.Mbps(20)))
	}
	if l.Target() < start {
		t.Errorf("sub-threshold loss cut the target to %v", l.Target())
	}
}

func TestLossAIMDDelayGuardAdapts(t *testing.T) {
	l := NewLossAIMD(lunaCfg())
	now := sim.At(0)
	// Persistent 90 ms exogenous queuing delay (a Cubic-filled 7x queue):
	// initial cuts, then the guard inflates and growth resumes.
	for i := 0; i < 600; i++ {
		now = now.Add(100 * time.Millisecond)
		l.OnFeedback(now, fb(0, 90*time.Millisecond, units.Mbps(10)))
	}
	low := l.Target()
	for i := 0; i < 600; i++ {
		now = now.Add(100 * time.Millisecond)
		l.OnFeedback(now, fb(0, 90*time.Millisecond, units.Mbps(25)))
	}
	if l.Target() <= low {
		t.Errorf("target stuck at %v under persistent exogenous delay; guard did not adapt", low)
	}
}

func TestLossAIMDRxHeadroomCapsGrowth(t *testing.T) {
	cfg := lunaCfg()
	cfg.Start = units.Mbps(5)
	l := NewLossAIMD(cfg)
	// Clean feedback but receive rate stuck at 2 Mb/s: target must not
	// run far ahead of goodput.
	now := sim.At(0)
	for i := 0; i < 100; i++ {
		now = now.Add(100 * time.Millisecond)
		l.OnFeedback(now, fb(0, 0, units.Mbps(2)))
	}
	// The ceiling blocks growth beyond goodput (it does not pull the
	// target down — that is the role of the loss/delay signals).
	if l.Target() != units.Mbps(5) {
		t.Errorf("target %v, want unchanged 5 Mb/s (growth blocked)", l.Target())
	}
}

func TestDelayGradientThresholdAdaptsUnderCubicQueue(t *testing.T) {
	p := ProfileFor(Stadia)
	ctl := p.NewController().(*DelayGradient)
	now := sim.At(0)
	// Persistent 30 ms queuing delay: initial overuse backoffs, then the
	// adaptive gamma inflates past it and the target recovers.
	for i := 0; i < 100; i++ {
		now = now.Add(100 * time.Millisecond)
		ctl.OnFeedback(now, fb(0, 30*time.Millisecond, units.Mbps(12)))
	}
	if ctl.Threshold() < 25*time.Millisecond {
		t.Errorf("threshold %v did not adapt toward the standing 30 ms delay", ctl.Threshold())
	}
	mid := ctl.Target()
	for i := 0; i < 200; i++ {
		now = now.Add(100 * time.Millisecond)
		ctl.OnFeedback(now, fb(0, 30*time.Millisecond, units.Mbps(12)))
	}
	if ctl.Target() <= mid {
		t.Error("target did not recover once the threshold adapted")
	}
}

func TestDelayGradientYieldsUnderBufferbloat(t *testing.T) {
	p := ProfileFor(Stadia)
	ctl := p.NewController().(*DelayGradient)
	now := sim.At(0)
	// 110 ms standing delay exceeds the 65 ms threshold cap: the
	// controller must stay backed off (the paper's 7x-queue cool cells).
	for i := 0; i < 300; i++ {
		now = now.Add(100 * time.Millisecond)
		ctl.OnFeedback(now, fb(0, 110*time.Millisecond, units.Mbps(20)))
	}
	if ctl.Target() > units.Mbps(20) {
		t.Errorf("target %v did not stay reduced under 110 ms bufferbloat", ctl.Target())
	}
}
