package gamestream

import (
	"time"

	"repro/internal/units"
)

// System identifies one of the studied platforms.
type System string

// The three systems compared in the paper.
const (
	Stadia  System = "stadia"
	GeForce System = "geforce"
	Luna    System = "luna"
)

// Systems lists the studied platforms in the paper's presentation order.
var Systems = []System{Stadia, GeForce, Luna}

// ProfileFor returns the calibrated behavioural profile for a system. It
// panics on an unknown system name (a configuration error).
//
// Calibration targets (see DESIGN.md §4 and Table 1 of the paper):
//   - baseline solo bitrates 27.5 / 24.5 / 23.7 Mb/s with descending
//     variation (2.3 / 1.8 / 0.9);
//   - Stadia beats Cubic at shallow queues, defers under bufferbloat,
//     roughly fair vs BBR, adapts fastest, ~50 f/s under contention;
//   - GeForce always under fair share (more so vs BBR), resilient 55+ f/s
//     via FEC + NACK;
//   - Luna fair vs Cubic, starved by BBR with recovery slow enough to
//     exceed the measurement window at high capacity, fragile frame rate.
func ProfileFor(sys System) Profile {
	switch sys {
	case Stadia:
		return Profile{
			Name:             string(Stadia),
			MaxRate:          units.Mbps(27.5),
			MinRate:          units.Mbps(6),
			ComplexityStdDev: 0.24,
			BaseFPS:          60,
			FPSLadder: []FPSRung{
				{MinRate: units.Mbps(9), FPS: 60},
				{MinRate: units.Mbps(5), FPS: 50},
				{MinRate: units.Mbps(2.5), FPS: 40},
				{MinRate: 0, FPS: 30},
			},
			CongestionFPSCap: 50,
			FECRate:          0.05,
			NACK:             true,
			PlayoutDelay:     200 * time.Millisecond,
			NewController: func() Controller {
				return NewDelayGradient(DelayGradientConfig{
					Min:              units.Mbps(6),
					Max:              units.Mbps(27.5),
					IncreaseFactor:   1.012,
					InitThreshold:    13 * time.Millisecond,
					MaxThreshold:     65 * time.Millisecond,
					GainUp:           1.0,
					GainDown:         0.08,
					Beta:             0.85,
					LossThreshold:    0.10,
					HoldAfterBackoff: 800 * time.Millisecond,
					AdditiveStep:     units.Kbps(40),
				})
			},
		}
	case GeForce:
		return Profile{
			Name:             string(GeForce),
			MaxRate:          units.Mbps(24.5),
			MinRate:          units.Mbps(5.5),
			ComplexityStdDev: 0.20,
			BaseFPS:          60,
			// GeForce holds frame rate and scales resolution instead:
			// the ladder only bends at very low rates.
			FPSLadder: []FPSRung{
				{MinRate: units.Mbps(2), FPS: 60},
				{MinRate: 0, FPS: 50},
			},
			CongestionFPSCap: 0,
			FECRate:          0.15,
			NACK:             true,
			PlayoutDelay:     200 * time.Millisecond,
			NewController: func() Controller {
				return NewConservative(ConservativeConfig{
					Min:             units.Mbps(5.5),
					Max:             units.Mbps(24.5),
					Headroom:        0.80,
					LossThreshold:   0.005,
					DelayThreshold:  10 * time.Millisecond,
					CleanBeforeRamp: 1500 * time.Millisecond,
					RampPerSec:      units.Mbps(0.4),
					DescentPerSec:   units.Mbps(0.55),
				})
			},
		}
	case Luna:
		return Profile{
			Name:             string(Luna),
			MaxRate:          units.Mbps(23.7),
			MinRate:          units.Mbps(2.4),
			ComplexityStdDev: 0.10,
			BaseFPS:          60,
			FPSLadder: []FPSRung{
				{MinRate: units.Mbps(8), FPS: 60},
				{MinRate: units.Mbps(5), FPS: 50},
				{MinRate: units.Mbps(3), FPS: 40},
				{MinRate: units.Mbps(2), FPS: 30},
				{MinRate: 0, FPS: 20},
			},
			CongestionFPSCap: 0,
			FECRate:          0,
			NACK:             false,
			PlayoutDelay:     180 * time.Millisecond,

			NewController: func() Controller {
				return NewLossAIMD(LossAIMDConfig{
					Min:               units.Mbps(2.4),
					Max:               units.Mbps(23.7),
					Beta:              0.75,
					LossThreshold:     0.015,
					PersistWindows:    2,
					EventDebounce:     800 * time.Millisecond,
					GrowthPerSec:      0.015,
					DelayThreshold:    30 * time.Millisecond,
					MaxDelayThreshold: 130 * time.Millisecond,
					RxHeadroom:        1.15,
				})
			},
		}
	}
	panic("gamestream: unknown system " + string(sys))
}

// VideoCallProfile returns a live video-conferencing flow model (the
// paper's future-work traffic mix): a GCC-controlled 30 f/s stream capped
// at 3.5 Mb/s — much smaller and more delay-averse than a game stream.
func VideoCallProfile() Profile {
	return Profile{
		Name:             "videocall",
		MaxRate:          units.Mbps(3.5),
		MinRate:          units.Kbps(300),
		ComplexityStdDev: 0.15,
		BaseFPS:          30,
		FPSLadder: []FPSRung{
			{MinRate: units.Mbps(1), FPS: 30},
			{MinRate: 0, FPS: 15},
		},
		FECRate:      0.10,
		NACK:         false,
		PlayoutDelay: 150 * time.Millisecond,
		NewController: func() Controller {
			return NewDelayGradient(DelayGradientConfig{
				Min:              units.Kbps(300),
				Max:              units.Mbps(3.5),
				IncreaseFactor:   1.02,
				InitThreshold:    12 * time.Millisecond,
				MaxThreshold:     50 * time.Millisecond,
				GainUp:           0.8,
				GainDown:         0.05,
				Beta:             0.85,
				LossThreshold:    0.08,
				HoldAfterBackoff: 600 * time.Millisecond,
				AdditiveStep:     units.Kbps(25),
			})
		},
	}
}
