package gamestream

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// streamNet is a one-session testbed: server -> shaper -> delay -> client,
// with a delay-only reverse path for feedback.
type streamNet struct {
	eng    *sim.Engine
	shaper *netem.Shaper
	queue  *netem.DropTail
	server *Server
	client *Client
	ids    uint64
}

func newStreamNet(sys System, rate units.Rate, qlimit units.ByteSize, owd time.Duration, seed uint64) *streamNet {
	sn := &streamNet{eng: sim.NewEngine(seed)}
	profile := ProfileFor(sys)

	var srvHost, cliHost *netem.Host
	sn.queue = netem.NewDropTail(qlimit)
	fwd := netem.NewDelay(sn.eng, owd, packet.HandlerFunc(func(p *packet.Packet) { cliHost.Handle(p) }))
	sn.shaper = netem.NewShaper(sn.eng, rate, 125000, sn.queue, fwd)
	rev := netem.NewDelay(sn.eng, owd, packet.HandlerFunc(func(p *packet.Packet) { srvHost.Handle(p) }))

	srvHost = netem.NewHost(sn.eng, 1, sn.shaper, &sn.ids)
	cliHost = netem.NewHost(sn.eng, 2, rev, &sn.ids)

	sn.server = NewServer(srvHost, 1, 2, profile, sn.eng.Rand().Fork())
	sn.client = NewClient(cliHost, 1, 1, profile)
	return sn
}

func TestBaselineBitratesMatchTable1(t *testing.T) {
	// Table 1: unconstrained bitrates 27.5 / 24.5 / 23.7 Mb/s.
	want := map[System]float64{Stadia: 27.5, GeForce: 24.5, Luna: 23.7}
	for sys, target := range want {
		t.Run(string(sys), func(t *testing.T) {
			sn := newStreamNet(sys, units.Gbps(1), 10*units.MB, 8250*time.Microsecond, 11)
			sn.server.Start()
			sn.eng.Run(sim.At(30 * time.Second))
			warm := sn.client.BytesRecv
			sn.eng.Run(sim.At(90 * time.Second))
			rate := units.RateFromBytes(units.ByteSize(sn.client.BytesRecv-warm), 60*time.Second)
			if math.Abs(rate.Mbit()-target) > 0.12*target {
				t.Errorf("%s baseline %.1f Mb/s, want ~%.1f", sys, rate.Mbit(), target)
			}
		})
	}
}

func TestBaselineFrameRateNear60(t *testing.T) {
	for _, sys := range Systems {
		t.Run(string(sys), func(t *testing.T) {
			sn := newStreamNet(sys, units.Gbps(1), 10*units.MB, 8250*time.Microsecond, 3)
			sn.server.Start()
			sn.eng.Run(sim.At(10 * time.Second))
			d0 := sn.client.FramesDisplayed
			sn.eng.Run(sim.At(40 * time.Second))
			fps := float64(sn.client.FramesDisplayed-d0) / 30
			if fps < 58 || fps > 61 {
				t.Errorf("%s solo fps = %.1f, want ~60", sys, fps)
			}
		})
	}
}

func TestSoloConstrainedAdaptsWithoutLossStorm(t *testing.T) {
	// Paper: at 15 Mb/s capacity, solo systems do not self-induce
	// congestion — loss near 0 once settled, fps near 60.
	for _, sys := range Systems {
		t.Run(string(sys), func(t *testing.T) {
			rate := units.Mbps(15)
			rtt := 16500 * time.Microsecond
			q := units.BDP(rate, rtt) * 2
			sn := newStreamNet(sys, rate, q, rtt/2, 5)
			sn.server.Start()
			sn.eng.Run(sim.At(60 * time.Second))
			// Measure the second half.
			frag0, drop0 := sn.client.FragmentsRecv, sn.server.FragmentsSent
			disp0 := sn.client.FramesDisplayed
			sn.eng.Run(sim.At(120 * time.Second))
			sent := sn.server.FragmentsSent - drop0
			recv := sn.client.FragmentsRecv - frag0
			lossPct := 100 * float64(sent-recv) / float64(sent)
			if lossPct > 1.0 {
				t.Errorf("%s settled loss %.2f%%, want < 1%% (self-induced congestion)", sys, lossPct)
			}
			fps := float64(sn.client.FramesDisplayed-disp0) / 60
			if fps < 55 {
				t.Errorf("%s solo constrained fps %.1f, want near 60", sys, fps)
			}
			gp := sn.server.EncoderRate().Mbit()
			if gp > 15.1 {
				t.Errorf("%s encoder rate %.1f above capacity 15", sys, gp)
			}
			if gp < 10 {
				t.Errorf("%s encoder rate %.1f: failed to use a 15 Mb/s link", sys, gp)
			}
		})
	}
}

func TestFrameSizesTrackBitrate(t *testing.T) {
	sn := newStreamNet(Luna, units.Gbps(1), 10*units.MB, time.Millisecond, 9)
	sn.server.Start()
	sn.eng.Run(sim.At(20 * time.Second))
	// 23.7 Mb/s at 60 fps is ~49 KB per frame on average.
	bytesPerFrame := float64(sn.server.BytesSent) / float64(sn.server.FramesSent)
	want := 23.7e6 / 8 / 60
	if math.Abs(bytesPerFrame-want) > 0.15*want {
		t.Errorf("bytes/frame = %.0f, want ~%.0f", bytesPerFrame, want)
	}
}

func TestKeyFramesPeriodic(t *testing.T) {
	sn := newStreamNet(Stadia, units.Gbps(1), 10*units.MB, time.Millisecond, 9)
	keyTimes := []sim.Time{}
	sn.client.OnFrame = func(fr FrameResult) {
		if fr.KeyFrame {
			keyTimes = append(keyTimes, fr.At)
		}
	}
	sn.server.Start()
	sn.eng.Run(sim.At(10 * time.Second))
	if len(keyTimes) < 4 || len(keyTimes) > 6 {
		t.Fatalf("%d key frames in 10 s, want ~5", len(keyTimes))
	}
	for i := 1; i < len(keyTimes); i++ {
		gap := keyTimes[i].Sub(keyTimes[i-1])
		if gap < 1900*time.Millisecond || gap > 2100*time.Millisecond {
			t.Errorf("key frame gap %v, want ~2s", gap)
		}
	}
}

func TestFECRecoversLoss(t *testing.T) {
	// Drop exactly one data fragment of each frame before the client;
	// GeForce's 15% FEC must recover every frame, Luna (no FEC) must
	// drop them all.
	run := func(sys System) (displayed, dropped int64) {
		sn := newStreamNet(sys, units.Gbps(1), 10*units.MB, time.Millisecond, 9)
		// Intercept: rebind client host flow handler with a dropper.
		inner := sn.client
		dropIdx := 2
		cliHost := clientHost(sn)
		cliHost.Bind(1, packet.HandlerFunc(func(p *packet.Packet) {
			if m, ok := p.App.(*FrameInfo); ok && !p.Retx && m.Index(p.Seq) == dropIdx && m.Count > dropIdx {
				return // dropped
			}
			inner.Handle(p)
		}))
		sn.server.Start()
		sn.eng.Run(sim.At(10 * time.Second))
		return sn.client.FramesDisplayed, sn.client.FramesDropped
	}
	gfDisp, gfDrop := run(GeForce)
	if gfDrop > gfDisp/20 {
		t.Errorf("GeForce with FEC: %d displayed, %d dropped — FEC not recovering", gfDisp, gfDrop)
	}
	luDisp, luDrop := run(Luna)
	if luDrop < luDisp {
		t.Errorf("Luna without FEC: %d displayed, %d dropped — expected most frames lost", luDisp, luDrop)
	}
}

// clientHost digs the client's host out for interception tests.
func clientHost(sn *streamNet) *netem.Host { return sn.client.host }

func TestNACKRepairsFrames(t *testing.T) {
	// Stadia has only 5% FEC but NACK enabled and a 120 ms deadline on an
	// 2 ms RTT path: dropping two fragments per frame (beyond FEC) must
	// still be repaired by retransmission.
	sn := newStreamNet(Stadia, units.Gbps(1), 10*units.MB, time.Millisecond, 9)
	inner := sn.client
	cliHost := clientHost(sn)
	cliHost.Bind(1, packet.HandlerFunc(func(p *packet.Packet) {
		// Drop 6 data fragments per frame — beyond the 5% FEC budget —
		// so repair must come from NACK retransmission.
		if m, ok := p.App.(*FrameInfo); ok && !p.Retx && m.Index(p.Seq) >= 1 && m.Index(p.Seq) <= 6 && m.Count > 8 {
			return
		}
		inner.Handle(p)
	}))
	sn.server.Start()
	sn.eng.Run(sim.At(10 * time.Second))
	if sn.server.Retransmits == 0 {
		t.Fatal("no NACK retransmissions happened")
	}
	total := sn.client.FramesDisplayed + sn.client.FramesDropped
	if sn.client.FramesDisplayed < total*95/100 {
		t.Errorf("NACK repair: %d/%d frames displayed, want ≥95%%",
			sn.client.FramesDisplayed, total)
	}
}

func TestPlayoutDeadlineDropsLateFrames(t *testing.T) {
	// A severe capacity cut (2 Mb/s for a ~24 Mb/s stream) queues frames
	// past their deadline until the controller adapts; some frames must
	// be dropped as late, and the controller must eventually settle.
	sn := newStreamNet(Luna, units.Mbps(2), 50*units.KB, 8*time.Millisecond, 9)
	sn.server.Start()
	sn.eng.Run(sim.At(30 * time.Second))
	if sn.client.FramesDropped == 0 {
		t.Error("no frames dropped despite a 10x capacity cut")
	}
	if sn.server.EncoderRate().Mbit() > 2.5 {
		t.Errorf("encoder rate %.1f did not adapt down to its floor", sn.server.EncoderRate().Mbit())
	}
}

func TestControllerCongestedFlag(t *testing.T) {
	ctl := NewLossAIMD(LossAIMDConfig{
		Min: units.Mbps(1), Max: units.Mbps(20), Beta: 0.7,
		LossThreshold: 0.004, EventDebounce: 100 * time.Millisecond, GrowthPerSec: 0.02,
	})
	now := sim.At(10 * time.Second)
	if ctl.Congested(now) {
		t.Error("congested before any feedback")
	}
	ctl.OnFeedback(now, &Feedback{Interval: 100 * time.Millisecond, ExpectedPkts: 100, LostPkts: 5})
	if !ctl.Congested(now.Add(time.Second)) {
		t.Error("not congested right after a loss backoff")
	}
	if ctl.Congested(now.Add(10 * time.Second)) {
		t.Error("still congested 10 s after the last backoff")
	}
}

func TestLossAIMDDynamics(t *testing.T) {
	ctl := NewLossAIMD(LossAIMDConfig{
		Min: units.Mbps(1), Max: units.Mbps(20), Beta: 0.7,
		LossThreshold: 0.004, EventDebounce: 400 * time.Millisecond, GrowthPerSec: 0.02,
	})
	start := ctl.Target()
	// Loss event cuts by beta.
	ctl.OnFeedback(sim.At(time.Second), &Feedback{Interval: 100 * time.Millisecond, ExpectedPkts: 100, LostPkts: 2})
	if got := ctl.Target(); got != start.Scale(0.7) {
		t.Errorf("after loss, target = %v, want %v", got, start.Scale(0.7))
	}
	// Debounce: an immediate second loss report does not cut again.
	after := ctl.Target()
	ctl.OnFeedback(sim.At(1100*time.Millisecond), &Feedback{Interval: 100 * time.Millisecond, ExpectedPkts: 100, LostPkts: 2})
	if ctl.Target() != after {
		t.Error("debounced loss event still cut the target")
	}
	// Clean feedback grows multiplicatively.
	ctl.OnFeedback(sim.At(2*time.Second), &Feedback{Interval: time.Second, ExpectedPkts: 100})
	want := after.Scale(1.02)
	if math.Abs(float64(ctl.Target()-want)) > 1000 {
		t.Errorf("growth: target = %v, want ~%v", ctl.Target(), want)
	}
}

func TestDelayGradientBacksOffOnBloat(t *testing.T) {
	ctl := NewDelayGradient(DelayGradientConfig{
		Min: units.Mbps(1), Max: units.Mbps(25), IncreaseFactor: 1.01,
		InitThreshold: 13 * time.Millisecond, MaxThreshold: 65 * time.Millisecond,
		GainUp: 1, GainDown: 0.08,
		Beta: 0.85, LossThreshold: 0.1, HoldAfterBackoff: 500 * time.Millisecond,
	})
	// Establish base OWD of 8ms, then report 100 ms average delay.
	ctl.OnFeedback(sim.At(100*time.Millisecond), &Feedback{
		Interval: 100 * time.Millisecond, OWDMin: 8 * time.Millisecond, OWDAvg: 9 * time.Millisecond,
		RxRate: units.Mbps(24), ExpectedPkts: 100,
	})
	before := ctl.Target()
	ctl.OnFeedback(sim.At(200*time.Millisecond), &Feedback{
		Interval: 100 * time.Millisecond, OWDMin: 90 * time.Millisecond, OWDAvg: 108 * time.Millisecond,
		RxRate: units.Mbps(12), ExpectedPkts: 100,
	})
	if ctl.Target() >= before {
		t.Errorf("no backoff on 100 ms queuing delay: %v -> %v", before, ctl.Target())
	}
	if want := units.Mbps(12).Scale(0.85); ctl.Target() != want {
		t.Errorf("backoff target = %v, want beta*rxRate = %v", ctl.Target(), want)
	}
}

func TestDelayGradientToleratesShallowQueue(t *testing.T) {
	ctl := NewDelayGradient(DelayGradientConfig{
		Min: units.Mbps(1), Max: units.Mbps(25), IncreaseFactor: 1.01,
		InitThreshold: 13 * time.Millisecond, MaxThreshold: 65 * time.Millisecond,
		GainUp: 1, GainDown: 0.08,
		Beta: 0.85, LossThreshold: 0.1, HoldAfterBackoff: 500 * time.Millisecond,
	})
	// Shallow queue: 8 ms of queuing delay and 3% loss — no backoff.
	ctl.OnFeedback(sim.At(100*time.Millisecond), &Feedback{
		Interval: 100 * time.Millisecond, OWDMin: 8 * time.Millisecond, OWDAvg: 9 * time.Millisecond,
		RxRate: units.Mbps(20), ExpectedPkts: 100,
	})
	before := ctl.Target()
	ctl.OnFeedback(sim.At(200*time.Millisecond), &Feedback{
		Interval: 100 * time.Millisecond, OWDMin: 14 * time.Millisecond, OWDAvg: 17 * time.Millisecond,
		RxRate: units.Mbps(20), ExpectedPkts: 100, LostPkts: 3,
	})
	if ctl.Target() < before {
		t.Error("delay-gradient backed off on shallow-queue conditions it should tolerate")
	}
}

func TestConservativeDefers(t *testing.T) {
	ctl := NewConservative(ConservativeConfig{
		Min: units.Mbps(1.5), Max: units.Mbps(24.5), Headroom: 0.8,
		LossThreshold: 0.005, DelayThreshold: 10 * time.Millisecond,
		CleanBeforeRamp: time.Second, RampPerSec: units.Mbps(1),
	})
	// Mild constraint: tiny loss. With no descent slew configured the
	// target must defer to 0.8x receive rate immediately.
	ctl.OnFeedback(sim.At(100*time.Millisecond), &Feedback{
		Interval: 100 * time.Millisecond, RxRate: units.Mbps(12),
		ExpectedPkts: 200, LostPkts: 2,
	})
	if want := units.Mbps(12).Scale(0.8); ctl.Target() != want {
		t.Errorf("constrained target = %v, want %v", ctl.Target(), want)
	}
	// Clean for > CleanBeforeRamp: ramps additively.
	ctl.OnFeedback(sim.At(200*time.Millisecond), &Feedback{Interval: 100 * time.Millisecond, RxRate: units.Mbps(9.6), ExpectedPkts: 200})
	ctl.OnFeedback(sim.At(1300*time.Millisecond), &Feedback{Interval: 1100 * time.Millisecond, RxRate: units.Mbps(9.6), ExpectedPkts: 200})
	low := ctl.Target()
	ctl.OnFeedback(sim.At(2300*time.Millisecond), &Feedback{Interval: time.Second, RxRate: units.Mbps(9.6), ExpectedPkts: 200})
	if ctl.Target() <= low {
		t.Error("conservative controller failed to ramp after a clean period")
	}
}

func TestEncoderFPSLadder(t *testing.T) {
	p := ProfileFor(Luna)
	cases := []struct {
		rate float64
		want int
	}{
		{23, 60}, {8, 60}, {6, 50}, {4, 40}, {2.5, 30}, {1.3, 20},
	}
	for _, c := range cases {
		if got := p.EncoderFPS(units.Mbps(c.rate)); got != c.want {
			t.Errorf("Luna fps at %.1f Mb/s = %d, want %d", c.rate, got, c.want)
		}
	}
}

func TestProfileForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ProfileFor(bogus) did not panic")
		}
	}()
	ProfileFor(System("bogus"))
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int64, int64) {
		sn := newStreamNet(Stadia, units.Mbps(15), 60*units.KB, 8*time.Millisecond, 42)
		sn.server.Start()
		sn.eng.Run(sim.At(20 * time.Second))
		return sn.client.BytesRecv, sn.client.FramesDisplayed
	}
	b1, f1 := run()
	b2, f2 := run()
	if b1 != b2 || f1 != f2 {
		t.Errorf("same seed diverged: (%d,%d) vs (%d,%d)", b1, f1, b2, f2)
	}
}

func TestFeedbackLossFraction(t *testing.T) {
	fb := &Feedback{ExpectedPkts: 200, LostPkts: 5}
	if got := fb.LossFraction(); got != 0.025 {
		t.Errorf("LossFraction = %v, want 0.025", got)
	}
	empty := &Feedback{}
	if empty.LossFraction() != 0 {
		t.Error("empty feedback loss fraction should be 0")
	}
}

func TestVideoCallProfile(t *testing.T) {
	p := VideoCallProfile()
	if p.MaxRate != units.Mbps(3.5) || p.BaseFPS != 30 {
		t.Errorf("videocall profile = %+v", p)
	}
	ctl := p.NewController()
	if ctl.Name() != "delay-gradient" {
		t.Errorf("controller = %s", ctl.Name())
	}
	// Solo on a wide link the call reaches its cap and holds 30 f/s.
	sn := &streamNet{eng: sim.NewEngine(13)}
	var srvHost, cliHost *netem.Host
	sn.queue = netem.NewDropTail(10 * units.MB)
	fwd := netem.NewDelay(sn.eng, 8*time.Millisecond, packet.HandlerFunc(func(pk *packet.Packet) { cliHost.Handle(pk) }))
	sn.shaper = netem.NewShaper(sn.eng, units.Mbps(100), 125000, sn.queue, fwd)
	rev := netem.NewDelay(sn.eng, 8*time.Millisecond, packet.HandlerFunc(func(pk *packet.Packet) { srvHost.Handle(pk) }))
	srvHost = netem.NewHost(sn.eng, 1, sn.shaper, &sn.ids)
	cliHost = netem.NewHost(sn.eng, 2, rev, &sn.ids)
	sn.server = NewServer(srvHost, 1, 2, p, sn.eng.Rand().Fork())
	sn.client = NewClient(cliHost, 1, 1, p)
	sn.server.Start()
	sn.eng.Run(sim.At(30 * time.Second))
	if got := sn.server.EncoderRate().Mbit(); got < 3.3 {
		t.Errorf("call rate %.2f, want near 3.5 cap", got)
	}
	fps := float64(sn.client.FramesDisplayed) / 30
	if fps < 28 || fps > 31 {
		t.Errorf("call fps = %.1f, want ~30", fps)
	}
}

// Property: random fragment arrival orders always reassemble frames the
// client can display (no order dependence in the reassembly path).
func TestFrameReassemblyOrderIndependent(t *testing.T) {
	fq := func(perm []int) bool {
		eng := sim.NewEngine(1)
		var ids uint64
		out := packet.HandlerFunc(func(p *packet.Packet) {})
		host := netem.NewHost(eng, 2, out, &ids)
		profile := ProfileFor(GeForce)
		c := NewClient(host, 1, 1, profile)
		const count = 8
		order := make([]int, count)
		for i := range order {
			order[i] = i
		}
		// Permute deterministically from the random slice.
		for i, p := range perm {
			j := ((p % count) + count) % count
			order[i%count], order[j] = order[j], order[i%count]
		}
		info := &FrameInfo{FrameID: 1, Count: count, Parity: 0, SeqBase: 0}
		for _, idx := range order {
			c.Handle(&packet.Packet{
				Flow: 1, Kind: packet.KindFrame, Seq: int64(idx), Size: 1242, Payload: 1200,
				App: info,
			})
		}
		return c.FramesDisplayed == 1
	}
	if err := quick.Check(fq, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRetxBufferBoundedOverLongRun pins the satellite fix for the old
// unbounded retxBuf growth: the ring evicts descriptors on window slide
// and the tail sweep releases references past the NACK retention horizon,
// so over a 60 s run the live-entry count stays bounded by the fragments
// sent within the last nackRetain (1 s) — nowhere near the ring capacity's
// worth of a whole run's fragments, and the capacity itself never grows.
func TestRetxBufferBoundedOverLongRun(t *testing.T) {
	sn := newStreamNet(Stadia, units.Gbps(1), 10*units.MB, 8250*time.Microsecond, 13)
	sn.server.Start()

	cap0 := sn.server.RetxCap()
	// One second of fragments at the profile's ceiling bounds what the
	// retention horizon can keep alive.
	maxLive := int(ProfileFor(Stadia).MaxRate.BytesPerSec()/FragmentPayload) * 2
	for sec := 1; sec <= 60; sec++ {
		sn.eng.Run(sim.At(time.Duration(sec) * time.Second))
		if live := sn.server.RetxLive(); live > maxLive {
			t.Fatalf("t=%ds: %d live retx entries, want <= %d", sec, live, maxLive)
		}
	}
	if sn.server.RetxCap() != cap0 {
		t.Errorf("retx ring grew: cap %d -> %d", cap0, sn.server.RetxCap())
	}
	if sn.server.FramesSent < 3000 {
		t.Errorf("only %d frames sent in 60s — test exercised too little traffic", sn.server.FramesSent)
	}
}
