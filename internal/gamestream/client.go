package gamestream

import (
	"sort"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// frameState tracks reassembly of one frame at the client. States are
// recycled through a per-client freelist and arrival bookkeeping is a
// bitset plus two counters, so reassembly is O(1) per fragment and
// allocation-free in steady state.
type frameState struct {
	need     int // data fragment count
	parity   int
	gotBits  []uint64 // arrival bitset over need+parity fragment indices
	gotData  int      // distinct data fragments received
	gotTotal int      // distinct fragments received (data + parity)
	seqBase  int64    // sequence number of fragment index 0
	sentAt   sim.Time
	key      bool
}

func (fs *frameState) has(i int) bool { return fs.gotBits[i>>6]&(1<<(uint(i)&63)) != 0 }
func (fs *frameState) set(i int)      { fs.gotBits[i>>6] |= 1 << (uint(i) & 63) }

// FrameResult reports the fate of one frame to observers.
type FrameResult struct {
	FrameID   int64
	KeyFrame  bool
	Displayed bool
	At        sim.Time
}

// Client is the player-side half of a streaming session: it reassembles
// frames from fragments (using FEC parity when available), enforces the
// playout deadline, requests retransmissions, and sends periodic receiver
// reports that drive the server's rate controller. Its displayed-frame
// counter is the PresentMon equivalent in the paper's methodology.
type Client struct {
	host    *netem.Host
	eng     *sim.Engine
	flow    packet.FlowID
	peer    packet.Addr
	profile Profile

	frames   map[int64]*frameState
	resolved map[int64]bool
	nackedAt map[int64]sim.Time // last retransmission request per fragment
	ticker   *sim.Ticker

	// Freelists and scratch buffers keeping the steady-state receive and
	// feedback paths allocation-free.
	fsFree     []*frameState
	fbPool     feedbackPool
	nackBuf    []int64
	expiredBuf []int64

	// Sequence-gap loss accounting.
	highestSeq int64
	haveSeq    bool
	winArrived int
	winBase    int64 // highestSeq at window start

	// Window accumulators for feedback.
	winBytes  units.ByteSize
	owdMin    time.Duration
	owdSum    time.Duration
	owdCount  int
	lastFback sim.Time

	// OnFrame, when set, observes every resolved frame.
	OnFrame func(FrameResult)

	// Counters for the harness.
	FramesDisplayed int64
	FramesDropped   int64
	FragmentsRecv   int64
	BytesRecv       int64
	FECRecovered    int64
	NackSent        int64
}

// NewClient creates a client for flow on host, reporting to peer.
func NewClient(host *netem.Host, flow packet.FlowID, peer packet.Addr, profile Profile) *Client {
	c := &Client{
		host:     host,
		eng:      host.Engine(),
		flow:     flow,
		peer:     peer,
		profile:  profile,
		frames:   make(map[int64]*frameState),
		resolved: make(map[int64]bool),
		nackedAt: make(map[int64]sim.Time),
		owdMin:   -1,
	}
	c.ticker = sim.NewTicker(c.eng, FeedbackInterval, c.feedbackTick)
	c.ticker.Start(false)
	host.Bind(flow, c)
	return c
}

// Handle implements packet.Handler, processing video fragments.
func (c *Client) Handle(p *packet.Packet) {
	if p.Kind != packet.KindFrame {
		return
	}
	info, ok := p.App.(*FrameInfo)
	if !ok {
		return
	}
	now := c.eng.Now()
	c.FragmentsRecv++
	c.BytesRecv += int64(p.Size)
	c.winBytes += units.ByteSize(p.Size)

	// One-way delay statistics (the simulator clock is global, so OWD is
	// exact — standing in for the paper's synchronised-capture analysis).
	owd := now.Sub(p.SentAt)
	if c.owdMin < 0 || owd < c.owdMin {
		c.owdMin = owd
	}
	c.owdSum += owd
	c.owdCount++

	// Sequence accounting (retransmissions reuse their original number
	// and do not advance the frontier).
	if !p.Retx {
		if !c.haveSeq {
			c.haveSeq = true
			c.highestSeq = p.Seq - 1
			c.winBase = p.Seq - 1
		}
		if p.Seq > c.highestSeq {
			c.highestSeq = p.Seq
		}
		c.winArrived++
	}

	if c.resolved[info.FrameID] {
		return
	}
	fs := c.frames[info.FrameID]
	if fs == nil {
		fs = c.newFrameState(info)
		c.frames[info.FrameID] = fs
	}
	idx := info.Index(p.Seq)
	if idx < 0 || idx >= fs.need+fs.parity || fs.has(idx) {
		return
	}
	fs.set(idx)
	fs.gotTotal++
	if idx < fs.need {
		fs.gotData++
	}

	// Any `need` of the need+parity fragments decode the frame
	// (idealised erasure code).
	if fs.gotTotal >= fs.need {
		usedParity := fs.gotData < fs.need
		deadline := fs.sentAt.Add(c.profile.PlayoutDelay)
		displayed := now <= deadline
		if displayed && usedParity {
			c.FECRecovered++
		}
		c.finishFrame(info.FrameID, fs, displayed, now)
	}
}

// newFrameState draws a reassembly record from the freelist, sized and
// initialised for the frame described by info.
func (c *Client) newFrameState(info *FrameInfo) *frameState {
	var fs *frameState
	if n := len(c.fsFree); n > 0 {
		fs = c.fsFree[n-1]
		c.fsFree[n-1] = nil
		c.fsFree = c.fsFree[:n-1]
	} else {
		fs = &frameState{}
	}
	words := (info.Count + info.Parity + 63) / 64
	if cap(fs.gotBits) < words {
		fs.gotBits = make([]uint64, words)
	} else {
		fs.gotBits = fs.gotBits[:words]
		for i := range fs.gotBits {
			fs.gotBits[i] = 0
		}
	}
	fs.need = info.Count
	fs.parity = info.Parity
	fs.gotData = 0
	fs.gotTotal = 0
	fs.seqBase = info.SeqBase
	fs.sentAt = info.SentAt
	fs.key = info.KeyFrame
	return fs
}

func (c *Client) finishFrame(id int64, fs *frameState, displayed bool, now sim.Time) {
	c.resolved[id] = true
	for i := 0; i < fs.need; i++ {
		delete(c.nackedAt, fs.seqBase+int64(i))
	}
	delete(c.frames, id)
	if displayed {
		c.FramesDisplayed++
	} else {
		c.FramesDropped++
	}
	if c.OnFrame != nil {
		c.OnFrame(FrameResult{FrameID: id, KeyFrame: fs.key, Displayed: displayed, At: now})
	}
	c.fsFree = append(c.fsFree, fs)
	// Bound the resolved set (ids are monotone; forget old ones).
	if len(c.resolved) > 8192 {
		for k := range c.resolved {
			if k < id-4096 {
				delete(c.resolved, k)
			}
		}
	}
}

// feedbackTick expires overdue frames, assembles NACKs, and sends the
// receiver report.
func (c *Client) feedbackTick() {
	now := c.eng.Now()

	// Expire frames past their playout deadline.
	nack := c.nackBuf[:0]
	expired := c.expiredBuf[:0]
	for id, fs := range c.frames {
		deadline := fs.sentAt.Add(c.profile.PlayoutDelay)
		if now > deadline {
			expired = append(expired, id)
			continue
		}
		if c.profile.NACK {
			// Request missing data fragments still worth repairing; a
			// fragment is re-requested only after the previous request
			// has had time to be answered.
			missing := fs.need - fs.gotTotal
			if missing > 0 {
				for i := 0; i < fs.need && missing > 0; i++ {
					if fs.has(i) {
						continue
					}
					seq := fs.seqBase + int64(i)
					// Only gap-evidenced losses: a fragment not yet
					// overtaken by a later arrival may simply still be
					// in flight (or in the server's pacer).
					if seq >= c.highestSeq {
						continue
					}
					if last, ok := c.nackedAt[seq]; ok && now.Sub(last) < nackRetryAfter {
						missing--
						continue
					}
					c.nackedAt[seq] = now
					nack = append(nack, seq)
					missing--
				}
			}
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		c.finishFrame(id, c.frames[id], false, now)
	}
	sort.Slice(nack, func(i, j int) bool { return nack[i] < nack[j] })
	if len(nack) > 0 {
		c.NackSent += int64(len(nack))
	}

	interval := now.Sub(c.lastFback)
	if c.lastFback == 0 {
		interval = FeedbackInterval
	}
	c.lastFback = now

	expectedPkts := int(c.highestSeq - c.winBase)
	lost := expectedPkts - c.winArrived
	if lost < 0 {
		lost = 0
	}
	var owdAvg time.Duration
	if c.owdCount > 0 {
		owdAvg = c.owdSum / time.Duration(c.owdCount)
	}
	fb := c.fbPool.get()
	fb.Interval = interval
	fb.RxRate = units.RateFromBytes(c.winBytes, interval)
	fb.ExpectedPkts = expectedPkts
	fb.LostPkts = lost
	fb.OWDMin = c.owdMin
	fb.OWDAvg = owdAvg
	fb.Nack = append(fb.Nack[:0], nack...)
	fb.Retain() // the on-wire reference, released by the packet pool
	p := c.host.NewPacket()
	p.Flow = c.flow
	p.Kind = packet.KindFeedback
	p.Dst = c.peer
	p.Size = FeedbackSize + 8*len(nack)
	p.App = fb
	c.host.Send(p)

	// Park the grown scratch buffers for the next tick, then reset the
	// window accumulators.
	c.nackBuf = nack[:0]
	c.expiredBuf = expired[:0]
	c.winBytes = 0
	c.winArrived = 0
	c.winBase = c.highestSeq
	c.owdMin = -1
	c.owdSum = 0
	c.owdCount = 0
}
