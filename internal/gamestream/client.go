package gamestream

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// clientRingSize is the initial frame-reassembly ring capacity. Frames are
// produced in id order and resolved (displayed, FEC-repaired, or expired)
// within the playout window, so the live span is a few dozen frames; the
// ring doubles in the pathological case where it is ever outgrown.
const clientRingSize = 256

// frameSlot is one ring entry tracking reassembly of one frame at the
// client. Slots live in a flat ring indexed by frame id; the id field is the
// generation tag that validates a hit, and resolved keeps the frame's fate
// visible to late fragments until the ring slides past it. Arrival
// bookkeeping is a bitset plus two counters and NACK pacing is a flat
// per-fragment timestamp array, so reassembly, duplicate suppression, and
// retransmission-request pacing are all O(1) per fragment with zero
// steady-state allocations and no map traffic.
type frameSlot struct {
	id       int64 // frame occupying this slot; -1 when never used
	resolved bool  // frame finished (displayed or dropped); id stays valid
	key      bool
	need     int // data fragment count
	parity   int
	gotData  int   // distinct data fragments received
	gotTotal int   // distinct fragments received (data + parity)
	seqBase  int64 // sequence number of fragment index 0
	sentAt   sim.Time
	gotBits  []uint64   // arrival bitset over need+parity fragment indices
	nackAt   []sim.Time // last retransmission request per data fragment; 0 = never
}

func (fs *frameSlot) has(i int) bool { return fs.gotBits[i>>6]&(1<<(uint(i)&63)) != 0 }
func (fs *frameSlot) set(i int)      { fs.gotBits[i>>6] |= 1 << (uint(i) & 63) }

// FrameResult reports the fate of one frame to observers.
type FrameResult struct {
	FrameID   int64
	KeyFrame  bool
	Displayed bool
	At        sim.Time
}

// Client is the player-side half of a streaming session: it reassembles
// frames from fragments (using FEC parity when available), enforces the
// playout deadline, requests retransmissions, and sends periodic receiver
// reports that drive the server's rate controller. Its displayed-frame
// counter is the PresentMon equivalent in the paper's methodology.
type Client struct {
	host    *netem.Host
	eng     *sim.Engine
	flow    packet.FlowID
	peer    packet.Addr
	profile Profile

	// ring holds per-frame reassembly state keyed by frame id & ringMask
	// (see frameSlot). loID..maxID bounds the possibly-active id span the
	// feedback tick scans, advancing loID past the resolved prefix.
	ring     []frameSlot
	ringMask int64
	maxID    int64
	loID     int64
	// High-watermark capacities for the per-slot arrays (see initSlot).
	bitsCapHW int
	nackCapHW int
	// bitsArena/nackArena are carve-forward blocks backing fresh slot
	// arrays: a whole ring's worth of slots first-touch in a burst at
	// startup, and chunked carving turns those hundreds of small makes
	// into a handful of block allocations.
	bitsArena []uint64
	nackArena []sim.Time

	ticker *sim.Ticker

	// Freelist and scratch buffers keeping the steady-state feedback path
	// allocation-free.
	fbPool     feedbackPool
	nackBuf    []int64
	expiredBuf []int64

	// Sequence-gap loss accounting.
	highestSeq int64
	haveSeq    bool
	winArrived int
	winBase    int64 // highestSeq at window start

	// Window accumulators for feedback.
	winBytes  units.ByteSize
	owdMin    time.Duration
	owdSum    time.Duration
	owdCount  int
	lastFback sim.Time

	// OnFrame, when set, observes every resolved frame.
	OnFrame func(FrameResult)

	// Counters for the harness.
	FramesDisplayed int64
	FramesDropped   int64
	FragmentsRecv   int64
	BytesRecv       int64
	FECRecovered    int64
	NackSent        int64
}

// NewClient creates a client for flow on host, reporting to peer.
func NewClient(host *netem.Host, flow packet.FlowID, peer packet.Addr, profile Profile) *Client {
	c := &Client{
		host:     host,
		eng:      host.Engine(),
		flow:     flow,
		peer:     peer,
		profile:  profile,
		ring:     make([]frameSlot, clientRingSize),
		ringMask: clientRingSize - 1,
		maxID:    -1,
		owdMin:   -1,
	}
	for i := range c.ring {
		c.ring[i].id = -1
	}
	c.ticker = sim.NewTicker(c.eng, FeedbackInterval, c.feedbackTick)
	c.ticker.Start(false)
	host.Bind(flow, c)
	return c
}

// Handle implements packet.Handler, processing video fragments.
func (c *Client) Handle(p *packet.Packet) {
	if p.Kind != packet.KindFrame {
		return
	}
	info, ok := p.App.(*FrameInfo)
	if !ok {
		return
	}
	now := c.eng.Now()
	c.FragmentsRecv++
	c.BytesRecv += int64(p.Size)
	c.winBytes += units.ByteSize(p.Size)

	// One-way delay statistics (the simulator clock is global, so OWD is
	// exact — standing in for the paper's synchronised-capture analysis).
	owd := now.Sub(p.SentAt)
	if c.owdMin < 0 || owd < c.owdMin {
		c.owdMin = owd
	}
	c.owdSum += owd
	c.owdCount++

	// Sequence accounting (retransmissions reuse their original number
	// and do not advance the frontier).
	if !p.Retx {
		if !c.haveSeq {
			c.haveSeq = true
			c.highestSeq = p.Seq - 1
			c.winBase = p.Seq - 1
		}
		if p.Seq > c.highestSeq {
			c.highestSeq = p.Seq
		}
		c.winArrived++
	}

	fs := c.slotFor(info)
	if fs == nil {
		return // frame already resolved (or past the ring horizon)
	}
	idx := info.Index(p.Seq)
	if idx < 0 || idx >= fs.need+fs.parity || fs.has(idx) {
		return
	}
	fs.set(idx)
	fs.gotTotal++
	if idx < fs.need {
		fs.gotData++
	}

	// Any `need` of the need+parity fragments decode the frame
	// (idealised erasure code).
	if fs.gotTotal >= fs.need {
		usedParity := fs.gotData < fs.need
		deadline := fs.sentAt.Add(c.profile.PlayoutDelay)
		displayed := now <= deadline
		if displayed && usedParity {
			c.FECRecovered++
		}
		c.finishFrame(info.FrameID, fs, displayed, now)
	}
}

// slotFor returns the reassembly slot for info's frame, claiming and
// initialising a ring slot on first sight. It returns nil when the frame is
// already resolved — including frames the ring has slid past, which by
// construction expired long ago.
func (c *Client) slotFor(info *FrameInfo) *frameSlot {
	id := info.FrameID
	if id+int64(len(c.ring)) <= c.maxID {
		return nil
	}
	fs := &c.ring[id&c.ringMask]
	for fs.id != id {
		if fs.id >= 0 && !fs.resolved {
			// The previous occupant is still reassembling: the live window
			// outgrew the ring. Double it and re-probe.
			c.growRing()
			fs = &c.ring[id&c.ringMask]
			continue
		}
		c.initSlot(fs, info)
		if id > c.maxID {
			c.maxID = id
		}
		if id < c.loID {
			// First sight of a frame the feedback scan already passed
			// (out-of-order first arrival): pull the scan bound back so the
			// frame is still expired and counted.
			c.loID = id
		}
		return fs
	}
	if fs.resolved {
		return nil
	}
	return fs
}

// initSlot prepares fs for the frame described by info, reusing the slot's
// bitset and NACK-timestamp backing arrays. Arrays grow to the client-wide
// high-watermark, so once the largest frame shape has been seen every slot
// reaches a stable capacity after at most one more growth and the ring
// stops touching the allocator.
// slotArenaChunk is how many high-watermark-sized slot arrays one arena
// block backs.
const slotArenaChunk = 64

func (c *Client) initSlot(fs *frameSlot, info *FrameInfo) {
	words := (info.Count + info.Parity + 63) / 64
	if words > c.bitsCapHW {
		c.bitsCapHW = roundPow2(words)
	}
	if cap(fs.gotBits) < words {
		if len(c.bitsArena) < c.bitsCapHW {
			c.bitsArena = make([]uint64, slotArenaChunk*c.bitsCapHW)
		}
		fs.gotBits = c.bitsArena[:words:c.bitsCapHW]
		c.bitsArena = c.bitsArena[c.bitsCapHW:]
	} else {
		fs.gotBits = fs.gotBits[:words]
		for i := range fs.gotBits {
			fs.gotBits[i] = 0
		}
	}
	if info.Count > c.nackCapHW {
		c.nackCapHW = roundPow2(info.Count)
	}
	if cap(fs.nackAt) < info.Count {
		if len(c.nackArena) < c.nackCapHW {
			c.nackArena = make([]sim.Time, slotArenaChunk*c.nackCapHW)
		}
		fs.nackAt = c.nackArena[:info.Count:c.nackCapHW]
		c.nackArena = c.nackArena[c.nackCapHW:]
	} else {
		fs.nackAt = fs.nackAt[:info.Count]
		for i := range fs.nackAt {
			fs.nackAt[i] = 0
		}
	}
	fs.id = info.FrameID
	fs.resolved = false
	fs.need = info.Count
	fs.parity = info.Parity
	fs.gotData = 0
	fs.gotTotal = 0
	fs.seqBase = info.SeqBase
	fs.sentAt = info.SentAt
	fs.key = info.KeyFrame
}

// roundPow2 returns the smallest power of two >= n.
func roundPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// growRing doubles the ring, re-seating every live slot at its new position.
func (c *Client) growRing() {
	old := c.ring
	ring := make([]frameSlot, 2*len(old))
	for i := range ring {
		ring[i].id = -1
	}
	mask := int64(len(ring) - 1)
	for i := range old {
		if old[i].id >= 0 {
			ring[old[i].id&mask] = old[i]
		}
	}
	c.ring = ring
	c.ringMask = mask
}

func (c *Client) finishFrame(id int64, fs *frameSlot, displayed bool, now sim.Time) {
	fs.resolved = true
	if displayed {
		c.FramesDisplayed++
	} else {
		c.FramesDropped++
	}
	if c.OnFrame != nil {
		c.OnFrame(FrameResult{FrameID: id, KeyFrame: fs.key, Displayed: displayed, At: now})
	}
}

// feedbackTick expires overdue frames, assembles NACKs, and sends the
// receiver report. Scanning the ring in ascending frame-id order makes the
// expiry and NACK lists naturally sorted (fragment sequence numbers are
// monotone in frame id), where the old map-based path sorted them per tick.
func (c *Client) feedbackTick() {
	now := c.eng.Now()

	// Expire frames past their playout deadline.
	nack := c.nackBuf[:0]
	expired := c.expiredBuf[:0]
	contig := true // still walking the resolved prefix; loID may advance
	for id := c.loID; id <= c.maxID; id++ {
		fs := &c.ring[id&c.ringMask]
		if fs.id != id || fs.resolved {
			if contig {
				c.loID = id + 1
			}
			continue
		}
		contig = false
		deadline := fs.sentAt.Add(c.profile.PlayoutDelay)
		if now > deadline {
			expired = append(expired, id)
			continue
		}
		if c.profile.NACK {
			// Request missing data fragments still worth repairing; a
			// fragment is re-requested only after the previous request
			// has had time to be answered.
			missing := fs.need - fs.gotTotal
			if missing > 0 {
				for i := 0; i < fs.need && missing > 0; i++ {
					if fs.has(i) {
						continue
					}
					seq := fs.seqBase + int64(i)
					// Only gap-evidenced losses: a fragment not yet
					// overtaken by a later arrival may simply still be
					// in flight (or in the server's pacer).
					if seq >= c.highestSeq {
						continue
					}
					if last := fs.nackAt[i]; last != 0 && now.Sub(last) < nackRetryAfter {
						missing--
						continue
					}
					fs.nackAt[i] = now
					nack = append(nack, seq)
					missing--
				}
			}
		}
	}
	for _, id := range expired {
		c.finishFrame(id, &c.ring[id&c.ringMask], false, now)
	}
	if len(nack) > 0 {
		c.NackSent += int64(len(nack))
	}

	interval := now.Sub(c.lastFback)
	if c.lastFback == 0 {
		interval = FeedbackInterval
	}
	c.lastFback = now

	expectedPkts := int(c.highestSeq - c.winBase)
	lost := expectedPkts - c.winArrived
	if lost < 0 {
		lost = 0
	}
	var owdAvg time.Duration
	if c.owdCount > 0 {
		owdAvg = c.owdSum / time.Duration(c.owdCount)
	}
	fb := c.fbPool.get()
	fb.Interval = interval
	fb.RxRate = units.RateFromBytes(c.winBytes, interval)
	fb.ExpectedPkts = expectedPkts
	fb.LostPkts = lost
	fb.OWDMin = c.owdMin
	fb.OWDAvg = owdAvg
	fb.Nack = append(fb.Nack[:0], nack...)
	fb.Retain() // the on-wire reference, released by the packet pool
	p := c.host.NewPacket()
	p.Flow = c.flow
	p.Kind = packet.KindFeedback
	p.Dst = c.peer
	p.Size = FeedbackSize + 8*len(nack)
	p.App = fb
	c.host.Send(p)

	// Park the grown scratch buffers for the next tick, then reset the
	// window accumulators.
	c.nackBuf = nack[:0]
	c.expiredBuf = expired[:0]
	c.winBytes = 0
	c.winArrived = 0
	c.winBase = c.highestSeq
	c.owdMin = -1
	c.owdSum = 0
	c.owdCount = 0
}
