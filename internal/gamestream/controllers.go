package gamestream

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// congestedWindow is how long after a backoff a controller still reports
// congestion (drives the encoder's congestion frame-rate cap).
const congestedWindow = 3 * time.Second

// backoffTracker gives controllers a shared Congested() implementation.
type backoffTracker struct {
	lastBackoff sim.Time
	everBacked  bool
}

func (b *backoffTracker) noteBackoff(now sim.Time) {
	b.lastBackoff = now
	b.everBacked = true
}

// Congested reports whether a backoff happened within congestedWindow.
func (b *backoffTracker) Congested(now sim.Time) bool {
	return b.everBacked && now.Sub(b.lastBackoff) < congestedWindow
}

// DelayGradientConfig parameterises the GCC-style controller.
type DelayGradientConfig struct {
	Min, Max units.Rate
	// Start is the initial target (defaults to Max).
	Start units.Rate
	// IncreaseFactor is the multiplicative probe per feedback interval
	// while the path looks clean (e.g. 1.015 = +1.5%).
	IncreaseFactor float64
	// InitThreshold is the initial queuing-delay overuse threshold. Like
	// GCC's adaptive gamma, the working threshold inflates toward the
	// observed delay when persistently exceeded (so the controller is not
	// starved by a queue a loss-based competitor holds full) and decays
	// back when conditions clear.
	InitThreshold time.Duration
	// MaxThreshold caps the adaptation: queuing delay beyond it always
	// counts as overuse, which is what makes the controller yield under
	// bufferbloat but not under moderate standing queues.
	MaxThreshold time.Duration
	// GainUp and GainDown are the per-second proportional adaptation
	// rates of the threshold (GCC draft k_u >> k_d).
	GainUp, GainDown float64
	// Beta scales the received rate on overuse backoff.
	Beta float64
	// LossThreshold is the window loss fraction beyond which the loss
	// branch cuts the rate (GCC uses 0.10).
	LossThreshold float64
	// HoldAfterBackoff suppresses probing after a backoff.
	HoldAfterBackoff time.Duration
	// AdditiveStep replaces multiplicative probing once the target is
	// within 10% of the link-capacity estimate learned at the last
	// backoff, mirroring GCC's near-convergence additive mode. Zero
	// disables the additive mode.
	AdditiveStep units.Rate
}

// DelayGradient is a Google-Congestion-Control-style controller: it
// estimates queuing delay from one-way delay samples, backs off
// multiplicatively on overuse (rising delay beyond a threshold) or heavy
// loss, and otherwise probes multiplicatively. This is the Stadia-profile
// mechanism: tolerant of shallow queues (it out-competes loss-based TCP
// there) but strongly averse to bufferbloat.
type DelayGradient struct {
	backoffTracker
	cfg      DelayGradientConfig
	target   units.Rate
	baseOWD  time.Duration
	prevQD   time.Duration
	holdTil  sim.Time
	linkCap  units.Rate    // capacity estimate learned at the last overuse
	gamma    time.Duration // adaptive overuse threshold
	lastSeen sim.Time
}

// NewDelayGradient returns a delay-gradient controller.
func NewDelayGradient(cfg DelayGradientConfig) *DelayGradient {
	start := cfg.Start
	if start == 0 {
		start = cfg.Max
	}
	return &DelayGradient{cfg: cfg, target: start, baseOWD: -1, gamma: cfg.InitThreshold}
}

// Name implements Controller.
func (d *DelayGradient) Name() string { return "delay-gradient" }

// Target implements Controller.
func (d *DelayGradient) Target() units.Rate { return d.target }

// QueuingDelay returns the last estimated queuing delay (for tests).
func (d *DelayGradient) QueuingDelay() time.Duration { return d.prevQD }

// Threshold returns the current adaptive overuse threshold (for tests).
func (d *DelayGradient) Threshold() time.Duration { return d.gamma }

// adaptiveThreshold is the GCC-style inflating delay threshold shared by
// the controllers: it rises quickly toward a persistently-exceeded queuing
// delay (so exogenous standing queues stop triggering) and decays slowly.
type adaptiveThreshold struct {
	gamma    time.Duration
	init     time.Duration
	max      time.Duration
	gainUp   float64
	gainDown float64
	lastSeen sim.Time
}

func newAdaptiveThreshold(init, max time.Duration, up, down float64) adaptiveThreshold {
	return adaptiveThreshold{gamma: init, init: init, max: max, gainUp: up, gainDown: down}
}

// observe updates gamma for the observed queuing delay and returns the
// threshold value in effect before the update.
func (a *adaptiveThreshold) observe(now sim.Time, qd time.Duration) time.Duration {
	prev := a.gamma
	dt := now.Sub(a.lastSeen).Seconds()
	a.lastSeen = now
	if dt <= 0 || dt > 1 {
		dt = 0.1
	}
	if qd > a.gamma {
		a.gamma += time.Duration(a.gainUp * dt * float64(qd-a.gamma))
	} else {
		a.gamma -= time.Duration(a.gainDown * dt * float64(a.gamma-qd))
	}
	if a.gamma < a.init {
		a.gamma = a.init
	}
	if a.gamma > a.max {
		a.gamma = a.max
	}
	return prev
}

func (d *DelayGradient) adaptThreshold(now sim.Time, qd time.Duration) {
	dt := now.Sub(d.lastSeen).Seconds()
	d.lastSeen = now
	if dt <= 0 || dt > 1 {
		dt = 0.1
	}
	if qd > d.gamma {
		d.gamma += time.Duration(d.cfg.GainUp * dt * float64(qd-d.gamma))
	} else {
		d.gamma -= time.Duration(d.cfg.GainDown * dt * float64(d.gamma-qd))
	}
	if d.gamma < d.cfg.InitThreshold {
		d.gamma = d.cfg.InitThreshold
	}
	if d.gamma > d.cfg.MaxThreshold {
		d.gamma = d.cfg.MaxThreshold
	}
}

// OnFeedback implements Controller.
func (d *DelayGradient) OnFeedback(now sim.Time, fb *Feedback) {
	if fb.OWDMin >= 0 && (d.baseOWD < 0 || fb.OWDMin < d.baseOWD) {
		d.baseOWD = fb.OWDMin
	}
	qd := time.Duration(0)
	if d.baseOWD >= 0 && fb.OWDAvg > d.baseOWD {
		qd = fb.OWDAvg - d.baseOWD
	}
	rising := qd > d.prevQD+time.Millisecond
	d.prevQD = qd

	loss := fb.LossFraction()
	overuse := qd > d.gamma+3*time.Millisecond && (rising || qd > d.gamma*3/2)
	d.adaptThreshold(now, qd)

	switch {
	case loss > d.cfg.LossThreshold:
		d.target = d.clamp(units.Rate(float64(d.target) * (1 - 0.5*loss)))
		d.noteBackoff(now)
		d.holdTil = now.Add(d.cfg.HoldAfterBackoff)
	case overuse:
		base := fb.RxRate
		if base <= 0 {
			base = d.target
		}
		d.linkCap = base
		next := d.clamp(base.Scale(d.cfg.Beta))
		if next < d.target {
			d.target = next
			d.noteBackoff(now)
			d.holdTil = now.Add(d.cfg.HoldAfterBackoff)
		}
	case now >= d.holdTil && loss < 0.02:
		if d.cfg.AdditiveStep > 0 && d.linkCap > 0 && d.target > d.linkCap.Scale(0.9) {
			// Near the learned capacity: probe gently (additive).
			d.target = d.clamp(d.target + d.cfg.AdditiveStep)
		} else {
			d.target = d.clamp(d.target.Scale(d.cfg.IncreaseFactor))
		}
	}
}

func (d *DelayGradient) clamp(r units.Rate) units.Rate {
	if r < d.cfg.Min {
		return d.cfg.Min
	}
	if r > d.cfg.Max {
		return d.cfg.Max
	}
	return r
}

// ConservativeConfig parameterises the headroom-tracking controller.
type ConservativeConfig struct {
	Min, Max units.Rate
	Start    units.Rate
	// Headroom scales the received-rate estimate when constrained; the
	// target settles below the fair share by design.
	Headroom float64
	// LossThreshold and DelayThreshold define "constrained".
	LossThreshold  float64
	DelayThreshold time.Duration
	// CleanBeforeRamp is how long the path must look clean before the
	// target ramps back up.
	CleanBeforeRamp time.Duration
	// RampPerSec is the additive recovery rate.
	RampPerSec units.Rate
	// DescentPerSec bounds how fast the target falls toward the
	// constrained level (0 = immediately). A slow descent reproduces
	// GeForce's measured sluggish response to arriving flows.
	DescentPerSec units.Rate
}

// Conservative is a headroom-tracking controller: whenever the path shows
// any sign of constraint (loss or queuing delay), it sets its target to a
// fraction of the currently received rate, deliberately deferring to
// cross traffic; it ramps back linearly only after a sustained clean
// period. This is the GeForce-profile mechanism — the paper found GeForce
// always takes less than its fair share, more so against BBR.
type Conservative struct {
	backoffTracker
	cfg        ConservativeConfig
	target     units.Rate
	baseOWD    time.Duration
	cleanSince sim.Time
	haveClean  bool
}

// NewConservative returns a conservative headroom-tracking controller.
func NewConservative(cfg ConservativeConfig) *Conservative {
	start := cfg.Start
	if start == 0 {
		start = cfg.Max
	}
	return &Conservative{cfg: cfg, target: start, baseOWD: -1}
}

// Name implements Controller.
func (c *Conservative) Name() string { return "conservative" }

// Target implements Controller.
func (c *Conservative) Target() units.Rate { return c.target }

// OnFeedback implements Controller.
func (c *Conservative) OnFeedback(now sim.Time, fb *Feedback) {
	if fb.OWDMin >= 0 && (c.baseOWD < 0 || fb.OWDMin < c.baseOWD) {
		c.baseOWD = fb.OWDMin
	}
	qd := time.Duration(0)
	if c.baseOWD >= 0 && fb.OWDAvg > c.baseOWD {
		qd = fb.OWDAvg - c.baseOWD
	}
	constrained := fb.LossFraction() > c.cfg.LossThreshold || qd > c.cfg.DelayThreshold

	if constrained {
		c.haveClean = false
		base := fb.RxRate
		if base <= 0 {
			base = c.target
		}
		next := c.clamp(base.Scale(c.cfg.Headroom))
		if next < c.target {
			if c.cfg.DescentPerSec > 0 {
				step := units.Rate(float64(c.cfg.DescentPerSec) * fb.Interval.Seconds())
				if floor := c.target - step; next < floor {
					next = floor
				}
			}
			c.target = c.clamp(next)
			c.noteBackoff(now)
		}
		return
	}
	if !c.haveClean {
		c.haveClean = true
		c.cleanSince = now
		return
	}
	if now.Sub(c.cleanSince) >= c.cfg.CleanBeforeRamp {
		step := units.Rate(float64(c.cfg.RampPerSec) * fb.Interval.Seconds())
		c.target = c.clamp(c.target + step)
	}
}

func (c *Conservative) clamp(r units.Rate) units.Rate {
	if r < c.cfg.Min {
		return c.cfg.Min
	}
	if r > c.cfg.Max {
		return c.cfg.Max
	}
	return r
}

// LossAIMDConfig parameterises the loss-based controller.
type LossAIMDConfig struct {
	Min, Max units.Rate
	Start    units.Rate
	// Beta is the multiplicative decrease on a loss event.
	Beta float64
	// LossThreshold is the window loss fraction that makes a window count
	// as lossy.
	LossThreshold float64
	// PersistWindows is how many consecutive lossy windows constitute a
	// loss event. Isolated bursts (a competing Cubic flow's periodic
	// overflow) are tolerated; persistent loss (a competing BBR flow's
	// standing pressure) triggers cuts.
	PersistWindows int
	// EventDebounce merges loss reports into one event.
	EventDebounce time.Duration
	// GrowthPerSec is the multiplicative increase rate while clean
	// (e.g. 0.015 = +1.5%/s), applied per feedback interval.
	GrowthPerSec float64
	// DelayThreshold, when non-zero, also cuts (like a loss event) when
	// the estimated queuing delay persists above it — the latency guard a
	// cloud-gaming service needs even if its rate control is loss-driven.
	// The working threshold adapts upward under persistent exogenous
	// delay (to MaxDelayThreshold), so a competitor that parks a full
	// queue does not permanently starve the stream.
	DelayThreshold time.Duration
	// MaxDelayThreshold caps the adaptation (default 3x DelayThreshold).
	MaxDelayThreshold time.Duration
	// RxHeadroom, when non-zero, caps the target at RxHeadroom × the
	// latest received rate, so the encoder cannot run far ahead of
	// goodput and fill queues on its own (e.g. 1.1).
	RxHeadroom float64
}

// LossAIMD is a loss-signal AIMD controller at streaming timescales: it
// ignores delay entirely, cuts multiplicatively on loss events, and climbs
// back multiplicatively (slowly, in absolute terms, when starting from a
// deep cut). This is the Luna-profile mechanism — sharing on even terms
// with loss-based Cubic, but starved by BBR, whose queue occupation causes
// recurring overflow loss that BBR itself ignores; after a deep cut the
// multiplicative climb can exceed the paper's 170 s recovery window, the
// observed "Luna never recovers" case.
type LossAIMD struct {
	backoffTracker
	cfg       LossAIMDConfig
	target    units.Rate
	lastEvent sim.Time
	lossyRun  int
	delayRun  int
	baseOWD   time.Duration
	guard     adaptiveThreshold
}

// NewLossAIMD returns a loss-based AIMD controller.
func NewLossAIMD(cfg LossAIMDConfig) *LossAIMD {
	start := cfg.Start
	if start == 0 {
		start = cfg.Max
	}
	if cfg.PersistWindows <= 0 {
		cfg.PersistWindows = 1
	}
	l := &LossAIMD{cfg: cfg, target: start}
	if cfg.DelayThreshold > 0 {
		max := cfg.MaxDelayThreshold
		if max <= 0 {
			max = 3 * cfg.DelayThreshold
		}
		l.guard = newAdaptiveThreshold(cfg.DelayThreshold, max, 1.5, 0.01)
	}
	return l
}

// Name implements Controller.
func (l *LossAIMD) Name() string { return "loss-aimd" }

// Target implements Controller.
func (l *LossAIMD) Target() units.Rate { return l.target }

// OnFeedback implements Controller.
func (l *LossAIMD) OnFeedback(now sim.Time, fb *Feedback) {
	if fb.OWDMin >= 0 && (l.baseOWD <= 0 || fb.OWDMin < l.baseOWD) {
		l.baseOWD = fb.OWDMin
	}
	qd := time.Duration(0)
	if l.baseOWD > 0 && fb.OWDAvg > l.baseOWD {
		qd = fb.OWDAvg - l.baseOWD
	}

	cut := func() {
		if now.Sub(l.lastEvent) >= l.cfg.EventDebounce {
			l.lastEvent = now
			l.target = l.clamp(l.target.Scale(l.cfg.Beta))
			l.noteBackoff(now)
		}
	}

	if fb.LossFraction() > l.cfg.LossThreshold {
		l.lossyRun++
		if l.lossyRun >= l.cfg.PersistWindows {
			cut()
		}
		return
	}
	l.lossyRun = 0

	// Latency guard: persistent queuing delay beyond the (adaptive)
	// threshold also counts as congestion, even without loss.
	if l.cfg.DelayThreshold > 0 {
		thresh := l.guard.observe(now, qd)
		// Hysteresis: a sawtooth competitor whose delay peaks ride just
		// above the adapted threshold must not re-trigger every cycle.
		if qd > thresh+6*time.Millisecond {
			l.delayRun++
			if l.delayRun >= l.cfg.PersistWindows {
				cut()
			}
			return
		}
	}
	l.delayRun = 0

	growth := 1 + l.cfg.GrowthPerSec*fb.Interval.Seconds()
	next := l.target.Scale(growth)
	// Goodput ceiling: do not run far ahead of what is being received.
	if l.cfg.RxHeadroom > 0 && fb.RxRate > 0 {
		if cap := fb.RxRate.Scale(l.cfg.RxHeadroom); next > cap && cap > l.cfg.Min {
			next = cap
		}
	}
	if next > l.target {
		l.target = l.clamp(next)
	}
}

func (l *LossAIMD) clamp(r units.Rate) units.Rate {
	if r < l.cfg.Min {
		return l.cfg.Min
	}
	if r > l.cfg.Max {
		return l.cfg.Max
	}
	return r
}
