package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine(1)
	if e.Now() != 0 {
		t.Errorf("Now = %v, want 0", e.Now())
	}
}

func TestScheduleOrder(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	e.Run(End)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("dispatch order = %v, want [1 2 3]", got)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	e.Run(End)
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events dispatched out of scheduling order: %v", got)
		}
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.Run(At(2 * time.Second))
	if len(fired) != 2 {
		t.Errorf("events fired = %v, want exactly the first two", fired)
	}
	if e.Now() != At(2*time.Second) {
		t.Errorf("Now = %v, want 2s", e.Now())
	}
	// Remaining event still pending and fires on the next Run.
	e.Run(End)
	if len(fired) != 3 {
		t.Errorf("after second Run, fired = %v, want 3 events", fired)
	}
}

func TestClockAdvancesToUntilWhenIdle(t *testing.T) {
	e := NewEngine(1)
	e.Run(At(5 * time.Second))
	if e.Now() != At(5*time.Second) {
		t.Errorf("Now = %v, want 5s", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 5; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 2 {
				e.Stop()
			}
		})
	}
	e.Run(End)
	if count != 2 {
		t.Errorf("processed %d events after Stop, want 2", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.ScheduleAt(0, func() {})
	})
	e.Run(End)
}

func TestNegativeDelayClampedToNow(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	e.Run(End)
	if !ran {
		t.Error("negative-delay event did not run")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Schedule(time.Millisecond, func() {
		e.Schedule(time.Millisecond, func() { at = append(at, e.Now()) })
	})
	e.Run(End)
	if len(at) != 1 || at[0] != At(2*time.Millisecond) {
		t.Errorf("nested event at %v, want [2ms]", at)
	}
}

// Property: events always dispatch in non-decreasing time order regardless of
// scheduling order.
func TestDispatchMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(42)
		var seen []Time
		for _, d := range delays {
			e.Schedule(time.Duration(d)*time.Microsecond, func() {
				seen = append(seen, e.Now())
			})
		}
		e.Run(End)
		return sort.SliceIsSorted(seen, func(i, j int) bool { return seen[i] < seen[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimerFires(t *testing.T) {
	e := NewEngine(1)
	fired := Time(-1)
	tm := NewTimer(e, func() { fired = e.Now() })
	tm.Reset(10 * time.Millisecond)
	e.Run(End)
	if fired != At(10*time.Millisecond) {
		t.Errorf("timer fired at %v, want 10ms", fired)
	}
	if tm.Armed() {
		t.Error("timer still armed after firing")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := NewTimer(e, func() { fired = true })
	tm.Reset(10 * time.Millisecond)
	e.Schedule(5*time.Millisecond, func() { tm.Stop() })
	e.Run(End)
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	e := NewEngine(1)
	var fires []Time
	tm := NewTimer(e, func() { fires = append(fires, e.Now()) })
	tm.Reset(10 * time.Millisecond)
	e.Schedule(5*time.Millisecond, func() { tm.Reset(20 * time.Millisecond) })
	e.Run(End)
	if len(fires) != 1 || fires[0] != At(25*time.Millisecond) {
		t.Errorf("fires = %v, want one fire at 25ms", fires)
	}
}

func TestTimerReuseAfterFire(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tm *Timer
	tm = NewTimer(e, func() {
		count++
		if count < 3 {
			tm.Reset(time.Millisecond)
		}
	})
	tm.Reset(time.Millisecond)
	e.Run(End)
	if count != 3 {
		t.Errorf("timer fired %d times, want 3", count)
	}
}

func TestTickerInterval(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 100*time.Millisecond, nil)
	tk.fn = func() { ticks = append(ticks, e.Now()) }
	tk.Start(false)
	e.Run(At(350 * time.Millisecond))
	want := []Time{At(100 * time.Millisecond), At(200 * time.Millisecond), At(300 * time.Millisecond)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerStartNow(t *testing.T) {
	e := NewEngine(1)
	var first Time = -1
	tk := NewTicker(e, time.Second, nil)
	tk.fn = func() {
		if first < 0 {
			first = e.Now()
		}
	}
	tk.Start(true)
	e.Run(At(100 * time.Millisecond))
	if first != 0 {
		t.Errorf("first tick at %v, want 0", first)
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	tk := NewTicker(e, 10*time.Millisecond, nil)
	tk.fn = func() { count++ }
	tk.Start(false)
	e.Schedule(35*time.Millisecond, func() { tk.Stop() })
	e.Run(At(time.Second))
	if count != 3 {
		t.Errorf("ticks after stop = %d, want 3", count)
	}
	if tk.Running() {
		t.Error("ticker reports running after Stop")
	}
}

func TestTickerSetInterval(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	tk := NewTicker(e, 10*time.Millisecond, nil)
	tk.fn = func() {
		ticks = append(ticks, e.Now())
		tk.SetInterval(20 * time.Millisecond)
	}
	tk.Start(false)
	e.Run(At(55 * time.Millisecond))
	want := []Time{At(10 * time.Millisecond), At(30 * time.Millisecond), At(50 * time.Millisecond)}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Errorf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	NewTicker(NewEngine(1), 0, func() {})
}

func TestProcessedCount(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.Run(End)
	if e.Processed() != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := At(time.Second)
	if tm.Add(time.Second) != At(2*time.Second) {
		t.Error("Add")
	}
	if tm.Sub(At(500*time.Millisecond)) != 500*time.Millisecond {
		t.Error("Sub")
	}
	if tm.Seconds() != 1 {
		t.Error("Seconds")
	}
	if tm.Duration() != time.Second {
		t.Error("Duration")
	}
	if tm.String() != "1s" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestStatsInvariants(t *testing.T) {
	e := NewEngine(1)
	// Schedule 10 events; run past only the first 6.
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func() {})
	}
	e.Run(At(5 * time.Second))
	s := e.Stats()
	if s.EventsScheduled != 10 {
		t.Errorf("EventsScheduled = %d, want 10", s.EventsScheduled)
	}
	if s.EventsDispatched != 6 {
		t.Errorf("EventsDispatched = %d, want 6", s.EventsDispatched)
	}
	if s.Pending != 4 {
		t.Errorf("Pending = %d, want 4", s.Pending)
	}
	// The core invariant: dispatched == scheduled - pending, at any point.
	if s.EventsDispatched != s.EventsScheduled-uint64(s.Pending) {
		t.Errorf("invariant violated: dispatched %d != scheduled %d - pending %d",
			s.EventsDispatched, s.EventsScheduled, s.Pending)
	}
	if s.PeakPending != 10 {
		t.Errorf("PeakPending = %d, want 10", s.PeakPending)
	}
	if s.SimTime != At(5*time.Second) {
		t.Errorf("SimTime = %v", s.SimTime)
	}
	if s.WallTime <= 0 {
		t.Error("WallTime not recorded")
	}

	// Drain the rest; the invariant must still hold and peak must not move.
	e.Run(End)
	s = e.Stats()
	if s.EventsDispatched != 10 || s.Pending != 0 {
		t.Errorf("after drain: dispatched %d pending %d", s.EventsDispatched, s.Pending)
	}
	if s.EventsDispatched != s.EventsScheduled-uint64(s.Pending) {
		t.Error("invariant violated after drain")
	}
	if s.PeakPending != 10 {
		t.Errorf("PeakPending moved to %d", s.PeakPending)
	}
}

func TestStatsInvariantHoldsMidRun(t *testing.T) {
	e := NewEngine(1)
	rng := e.Rand()
	// A self-rescheduling workload with a random branching factor checks
	// the invariant under churn, sampled from inside event callbacks.
	n := 0
	var fn func()
	fn = func() {
		n++
		s := e.Stats()
		if s.EventsDispatched != s.EventsScheduled-uint64(s.Pending) {
			t.Fatalf("invariant violated mid-run at event %d: %+v", n, s)
		}
		if n < 500 {
			for k := uint64(0); k <= rng.Uint64()%2; k++ {
				e.Schedule(time.Duration(1+rng.Uint64()%1000)*time.Microsecond, fn)
			}
		}
	}
	e.Schedule(0, fn)
	e.Run(End)
	if n < 500 {
		t.Fatalf("workload ended early: %d events", n)
	}
}

func TestStatsSpeedupAndThroughput(t *testing.T) {
	s := Stats{EventsDispatched: 1000, SimTime: At(10 * time.Second), WallTime: time.Second}
	if got := s.Speedup(); got != 10 {
		t.Errorf("Speedup = %v, want 10", got)
	}
	if got := s.EventsPerSecond(); got != 1000 {
		t.Errorf("EventsPerSecond = %v, want 1000", got)
	}
	var zero Stats
	if zero.Speedup() != 0 || zero.EventsPerSecond() != 0 {
		t.Error("zero-wall stats must report 0, not NaN/Inf")
	}
}
