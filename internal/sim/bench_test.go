package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw event throughput of the engine —
// the figure that bounds how fast full experiment runs can go. The
// events/sec metric gives BENCH_*.json a trajectory to track across
// revisions.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(End)
	if s := e.Stats().EventsPerSecond(); s > 0 {
		b.ReportMetric(s, "events/sec")
	}
}

// BenchmarkDeepHeap measures dispatch with a large pending event set.
func BenchmarkDeepHeap(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 10000; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d+time.Hour, func() {})
	}
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(At(30 * time.Minute))
	if s := e.Stats().EventsPerSecond(); s > 0 {
		b.ReportMetric(s, "events/sec")
	}
}

// BenchmarkScheduleDispatch measures the steady-state cost of one
// schedule+dispatch cycle with a reused closure. allocs/op must stay 0:
// the typed heap stores events by value and a reused func() incurs no
// boxing, so the hot path never touches the allocator.
func BenchmarkScheduleDispatch(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(End)
}

// BenchmarkScheduleCall measures the prebuilt-callback flavor used by the
// netem hot path (Link/Delay delivery): a stable func(any) plus a
// pointer-shaped arg. Also must be 0 allocs/op.
func BenchmarkScheduleCall(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	type payload struct{ v int }
	p := &payload{}
	var call func(any)
	call = func(x any) {
		n++
		if n < b.N {
			e.ScheduleCall(time.Microsecond, call, x)
		}
	}
	e.ScheduleCall(time.Microsecond, call, p)
	b.ResetTimer()
	e.Run(End)
}

// BenchmarkTimerReset measures the indexed-timer reschedule path: each
// Reset moves the entry in place (no tombstones, no new heap node), so a
// retransmission timer that is re-armed on every ACK costs O(log n) swaps
// and zero allocations.
func BenchmarkTimerReset(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	t := NewTimer(e, func() {})
	// A realistic pending population so the reschedule actually sifts.
	for i := 0; i < 1024; i++ {
		e.Schedule(time.Duration(i+1)*time.Hour, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Reset(time.Duration(i%100+1) * time.Millisecond)
	}
	b.StopTimer()
	if e.Stats().TimerMoves == 0 && b.N > 1 {
		b.Fatal("expected in-place timer moves")
	}
}

// BenchmarkTickerSteadyState measures a free-running periodic ticker —
// the encoder frame clock and feedback loop shape — which re-arms its own
// entry each tick and must be allocation-free after Start.
func BenchmarkTickerSteadyState(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, time.Millisecond, nil)
	tk.fn = func() {
		n++
		if n >= b.N {
			tk.Stop()
		}
	}
	tk.Start(true)
	b.ResetTimer()
	e.Run(End)
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
