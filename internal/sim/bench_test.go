package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw event throughput of the engine —
// the figure that bounds how fast full experiment runs can go. The
// events/sec metric gives BENCH_*.json a trajectory to track across
// revisions.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(End)
	if s := e.Stats().EventsPerSecond(); s > 0 {
		b.ReportMetric(s, "events/sec")
	}
}

// BenchmarkDeepHeap measures dispatch with a large pending event set.
func BenchmarkDeepHeap(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 10000; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d+time.Hour, func() {})
	}
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(At(30 * time.Minute))
	if s := e.Stats().EventsPerSecond(); s > 0 {
		b.ReportMetric(s, "events/sec")
	}
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
