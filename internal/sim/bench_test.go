package sim

import (
	"testing"
	"time"
)

// BenchmarkEventDispatch measures raw event throughput of the engine —
// the figure that bounds how fast full experiment runs can go.
func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(End)
}

// BenchmarkDeepHeap measures dispatch with a large pending event set.
func BenchmarkDeepHeap(b *testing.B) {
	e := NewEngine(1)
	for i := 0; i < 10000; i++ {
		d := time.Duration(i) * time.Second
		e.Schedule(d+time.Hour, func() {})
	}
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			e.Schedule(time.Microsecond, fn)
		}
	}
	e.Schedule(time.Microsecond, fn)
	b.ResetTimer()
	e.Run(At(30 * time.Minute))
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
