package sim

import (
	"math/rand"
	"testing"
	"time"
)

// TestSameTimestampSeqOrderProperty is the randomized ordering property
// behind the batched drain loop: events sharing a timestamp fire in
// schedule (seq) order, including events scheduled mid-batch from inside
// callbacks at the very timestamp being drained, and batches larger than
// the fixed drain buffer. Batched and serial dispatch must produce the
// identical dispatch sequence.
func TestSameTimestampSeqOrderProperty(t *testing.T) {
	type fire struct {
		at  Time
		idx int // global schedule order
	}

	// run builds one randomized schedule (driven by a cloned PRNG so both
	// dispatch modes see the same schedule) and records dispatch order.
	run := func(seed int64, batched bool) []fire {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(1)
		e.SetBatchDispatch(batched)
		var got []fire
		idx := 0
		// Few distinct timestamps, many events: heavy collision pressure,
		// with some timestamps drawing far more than batchCap events.
		stamp := func() time.Duration {
			return time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		var sched func(d time.Duration)
		sched = func(d time.Duration) {
			i := idx
			idx++
			e.Schedule(d, func() {
				got = append(got, fire{e.Now(), i})
				// A few callbacks extend the current timestamp's cohort
				// (delay 0) or seed future ones, exercising mid-batch
				// scheduling against the drained buffer.
				if rng.Intn(10) == 0 {
					sched(0)
				}
				if rng.Intn(10) == 0 {
					sched(stamp())
				}
			})
		}
		for i := 0; i < 500; i++ {
			sched(stamp())
		}
		e.Run(End)
		return got
	}

	for seed := int64(1); seed <= 5; seed++ {
		b := run(seed, true)
		s := run(seed, false)
		if len(b) != len(s) {
			t.Fatalf("seed %d: batched fired %d events, serial %d", seed, len(b), len(s))
		}
		for i := range b {
			if b[i] != s[i] {
				t.Fatalf("seed %d: dispatch order diverged at %d: batched %+v, serial %+v",
					seed, i, b[i], s[i])
			}
		}
		// Within a timestamp, schedule order must be preserved. (Across
		// timestamps time is non-decreasing by construction of the heap.)
		for i := 1; i < len(b); i++ {
			if b[i].at < b[i-1].at {
				t.Fatalf("seed %d: time went backwards at %d: %+v after %+v", seed, i, b[i], b[i-1])
			}
			if b[i].at == b[i-1].at && b[i].idx < b[i-1].idx {
				t.Fatalf("seed %d: same-timestamp events out of schedule order: %+v after %+v",
					seed, b[i], b[i-1])
			}
		}
	}
}

// TestBatchWindowZeroAlloc extends the zero-alloc suite to the batch drain
// loop's new interaction sites: ScheduleCall while a same-timestamp batch
// is draining, and Timer.Reset from inside a batch window (the in-place
// move path against an event sitting in the drained buffer — the likeliest
// new-bug site of the refactor).
func TestBatchWindowZeroAlloc(t *testing.T) {
	e := NewEngine(1)

	// Warm the heap's backing array well past batchCap.
	for i := 0; i < 256; i++ {
		e.Schedule(time.Millisecond, func() {})
	}
	e.RunFor(time.Second)

	// ScheduleCall under batch drain: a cohort of 100 same-timestamp
	// events (> batchCap, so the drain loop refills) each re-scheduling
	// via ScheduleCall from inside the batch.
	call := func(any) {}
	arg := new(int)
	reschedule := func(a any) { e.ScheduleCall(time.Microsecond, call, a) }
	if n := testing.AllocsPerRun(50, func() {
		for i := 0; i < 100; i++ {
			e.ScheduleCall(time.Microsecond, reschedule, arg)
		}
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("ScheduleCall under batch drain: %.1f allocs/op, want 0", n)
	}

	// Timer.Reset inside a batch window: the timer's event is drained into
	// the batch buffer alongside its same-timestamp peers, and a peer
	// callback Resets it before it dispatches — the pos<=-2 move path.
	tm := NewTimer(e, func() {})
	noop := func() {}
	move := func() { tm.Reset(time.Millisecond) } // hoisted: the closure itself is not under test
	if n := testing.AllocsPerRun(50, func() {
		tm.Reset(time.Microsecond)
		for i := 0; i < 100; i++ {
			e.Schedule(time.Microsecond, noop)
		}
		e.Schedule(time.Microsecond, move)
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("Timer.Reset inside batch window: %.1f allocs/op, want 0", n)
	}
}

// TestTimerResetMidBatchSemantics pins the behavior of a Reset targeting
// an event already drained into the batch buffer: the timer must not fire
// at the original deadline, must fire exactly once at the new one, and the
// Stats invariant must hold throughout.
func TestTimerResetMidBatchSemantics(t *testing.T) {
	for _, batched := range []bool{true, false} {
		e := NewEngine(1)
		e.SetBatchDispatch(batched)
		fired := 0
		var firedAt Time
		tm := NewTimer(e, func() { fired++; firedAt = e.Now() })
		// The mover is scheduled before the timer arms, so at 1 ms it has
		// the smaller seq and runs first — Resetting the timer while the
		// timer's event sits drained, undispatched, in the batch buffer.
		e.Schedule(time.Millisecond, func() { tm.Reset(5 * time.Millisecond) })
		tm.Reset(time.Millisecond)
		e.Run(End)

		if fired != 1 || firedAt != At(6*time.Millisecond) {
			t.Errorf("batched=%v: timer fired %d times at %v, want once at 6ms",
				batched, fired, firedAt)
		}
		s := e.Stats()
		if s.EventsDispatched != s.EventsScheduled-s.EventsCancelled-uint64(s.Pending) {
			t.Errorf("batched=%v: stats invariant broken: %+v", batched, s)
		}
	}
}

// TestTimerStopMidBatch pins the cancellation path against the drained
// buffer: a same-timestamp peer stops the timer after it has been pulled
// into the batch, so it must not fire at all and must count as cancelled.
func TestTimerStopMidBatch(t *testing.T) {
	for _, batched := range []bool{true, false} {
		e := NewEngine(1)
		e.SetBatchDispatch(batched)
		fired := false
		tm := NewTimer(e, func() { fired = true })
		e.Schedule(time.Millisecond, func() { tm.Stop() }) // earlier seq: runs first
		tm.Reset(time.Millisecond)                         // same timestamp, later seq
		e.Run(End)

		if fired {
			t.Errorf("batched=%v: stopped timer fired", batched)
		}
		if s := e.Stats(); s.EventsCancelled != 1 || s.Pending != 0 {
			t.Errorf("batched=%v: stats after mid-batch stop: %+v", batched, s)
		}
		if tm.Armed() {
			t.Errorf("batched=%v: timer still armed after mid-batch Stop", batched)
		}
	}
}
