package sim

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**)
// seeded via splitmix64. It is not safe for concurrent use; each simulation
// run owns exactly one, which keeps runs reproducible.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator whose state is derived from seed by splitmix64,
// so even consecutive seeds give well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (Box–Muller).
func (r *RNG) Norm() float64 {
	// Guard against log(0).
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// NormClamped returns mean + stddev*Norm() clamped to [lo, hi].
func (r *RNG) NormClamped(mean, stddev, lo, hi float64) float64 {
	v := mean + stddev*r.Norm()
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Fork derives an independent generator from this one's stream, useful for
// giving each component its own RNG while preserving overall determinism.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
