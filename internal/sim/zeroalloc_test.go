package sim

import (
	"testing"
	"time"
)

// TestSteadyStateZeroAlloc pins the tentpole guarantee: once the heap's
// backing array has grown to its working-set size, scheduling and
// dispatching events, re-arming timers, and ticking tickers perform zero
// allocations. Regressions here silently re-introduce GC pressure into
// every simulated packet.
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := NewEngine(1)

	// Warm the heap's backing array. Runs are bounded (not Run(End)) so the
	// clock stays finite and later schedules remain valid.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	e.RunFor(time.Second)

	var fn func()
	fn = func() {}
	if n := testing.AllocsPerRun(100, func() {
		e.Schedule(time.Microsecond, fn)
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("Schedule+Run with reused closure: %.1f allocs/op, want 0", n)
	}

	call := func(any) {}
	arg := new(int)
	if n := testing.AllocsPerRun(100, func() {
		e.ScheduleCall(time.Microsecond, call, arg)
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("ScheduleCall with pointer arg: %.1f allocs/op, want 0", n)
	}

	tm := NewTimer(e, func() {})
	if n := testing.AllocsPerRun(100, func() {
		tm.Reset(time.Microsecond) // fresh arm
		tm.Reset(time.Millisecond) // in-place move
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("Timer.Reset: %.1f allocs/op, want 0", n)
	}

	tk := NewTicker(e, time.Millisecond, nil)
	ticks := 0
	tk.fn = func() {
		ticks++
		if ticks%8 == 0 {
			tk.Stop()
		}
	}
	if n := testing.AllocsPerRun(100, func() {
		tk.Start(false)
		e.RunFor(time.Second)
	}); n != 0 {
		t.Errorf("Ticker steady state: %.1f allocs/op, want 0", n)
	}
}

// TestPoppedSlotsZeroed verifies that dispatch and cancellation zero the
// vacated heap slots: a popped event's closure, call argument, and entry
// pointer must not linger in the backing array where they would pin
// otherwise-dead objects for the lifetime of the engine.
func TestPoppedSlotsZeroed(t *testing.T) {
	e := NewEngine(1)
	big := make([]byte, 1<<10)
	for i := 0; i < 16; i++ {
		e.Schedule(time.Duration(i+1)*time.Millisecond, func() { _ = big })
		e.ScheduleCall(time.Duration(i+1)*time.Millisecond, func(any) {}, &big)
	}
	tm := NewTimer(e, func() {})
	tm.Reset(5 * time.Millisecond)
	tm.Stop() // cancellation path must zero too
	e.Run(End)

	if len(e.events) != 0 {
		t.Fatalf("%d events still pending", len(e.events))
	}
	spare := e.events[:cap(e.events)]
	for i, ev := range spare {
		if ev.call != nil || ev.arg != nil || ev.ent != nil {
			t.Fatalf("vacated slot %d not zeroed: %+v", i, ev)
		}
	}
}

// TestStopOnlyAffectsCurrentRun is the regression test for the old Stop
// semantics, where a single Stop left the engine permanently stopped and
// every later Run returned without dispatching anything. Run must clear the
// flag on entry so a stopped engine resumes from its pending queue.
func TestStopOnlyAffectsCurrentRun(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1); e.Stop() })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })

	e.Run(End)
	if len(order) != 1 || e.Pending() != 2 {
		t.Fatalf("after stopped run: order=%v pending=%d, want [1] and 2", order, e.Pending())
	}
	if got := e.Now(); got != At(1*time.Millisecond) {
		t.Fatalf("clock advanced to %v during stopped run", got)
	}

	// The next Run resumes; Stop did not brick the engine.
	e.Run(At(time.Second))
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("resume dispatched %v, want [1 2 3]", order)
	}

	// Stop outside a run only affects the next Run's first iteration check;
	// Run clears it on entry, so scheduling and running still works.
	e.Stop()
	fired := false
	e.Schedule(time.Millisecond, func() { fired = true })
	e.Run(At(2 * time.Second))
	if !fired {
		t.Fatal("Run after out-of-run Stop dispatched nothing")
	}
}

// TestStatsCancelAndMoveCounters checks the extended Stats accounting: every
// event leaves the queue either by dispatch or by cancellation, in-place
// reschedules are counted as moves (not new schedules), and the invariant
// EventsDispatched == EventsScheduled - EventsCancelled - Pending holds
// through arbitrary timer churn.
func TestStatsCancelAndMoveCounters(t *testing.T) {
	e := NewEngine(1)
	check := func(ctx string) {
		s := e.Stats()
		if s.EventsDispatched != s.EventsScheduled-s.EventsCancelled-uint64(s.Pending) {
			t.Fatalf("%s: invariant broken: %+v", ctx, s)
		}
	}

	tm := NewTimer(e, func() {})
	tm.Reset(time.Millisecond) // push: scheduled
	tm.Reset(2 * time.Millisecond)
	tm.Reset(3 * time.Millisecond) // two in-place moves
	check("after resets")
	if s := e.Stats(); s.TimerMoves != 2 || s.EventsScheduled != 1 {
		t.Errorf("moves=%d scheduled=%d, want 2 and 1", s.TimerMoves, s.EventsScheduled)
	}

	tm.Stop()
	tm.Stop() // second stop is a no-op, not a second cancellation
	check("after stop")
	if s := e.Stats(); s.EventsCancelled != 1 {
		t.Errorf("cancelled=%d, want 1", s.EventsCancelled)
	}

	tk := NewTicker(e, time.Millisecond, nil)
	n := 0
	tk.fn = func() {
		n++
		if n == 5 {
			tk.Stop()
		}
	}
	tk.Start(true)
	e.Schedule(10*time.Millisecond, func() {})
	e.Run(End)
	check("after run")
	if s := e.Stats(); s.Pending != 0 || s.EventsDispatched == 0 {
		t.Errorf("unexpected final stats: %+v", s)
	}
}
