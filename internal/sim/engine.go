// Package sim provides the discrete-event simulation engine that everything
// else in the testbed is built on: a virtual clock, a time-ordered event
// queue, timers, and a deterministic seeded random number generator.
//
// A simulation run is a pure function of its inputs and seed: the engine
// never consults the wall clock, and events scheduled for the same instant
// dispatch in the order they were scheduled, so two runs with identical
// configuration produce bit-identical results.
//
// The event core is built for zero steady-state allocations on the hot
// path (see docs/ARCHITECTURE.md, "hot path & memory discipline"):
//
//   - the queue is a concrete-typed 4-ary min-heap of event values, so
//     pushing an event never boxes through interface{} the way
//     container/heap does;
//   - popped heap slots are zeroed so dispatched closures and arguments
//     become garbage-collectable immediately;
//   - Timer and Ticker own an indexed heap entry that Reset/Stop move or
//     remove in place instead of abandoning tombstone events in the queue;
//   - ScheduleCall carries a pre-built func(arg) plus a pointer-shaped
//     argument through the event record itself, so per-packet network
//     events need no per-event closure allocation.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the run.
type Time int64

// Common instants.
const (
	Start Time = 0
	End   Time = Time(1<<63 - 1)
)

// At returns the Time d after the start of the run.
func At(d time.Duration) Time { return Time(d) }

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the start of the run.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds since the start of the run.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats t as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// event is one queued dispatch. Exactly one of the three dispatch forms is
// set: fn (a one-shot closure), call+arg (a prebuilt function applied to an
// argument, the allocation-free form used for per-packet delivery), or ent
// (an indexed Timer/Ticker entry).
type event struct {
	at   Time
	seq  uint64 // tiebreaker: preserves scheduling order for simultaneous events
	fn   func()
	call func(any)
	arg  any
	ent  *entry
}

// entry is the reschedulable heap handle owned by a Timer or Ticker. The
// heap keeps pos up to date as the entry's event moves, so Reset and Stop
// operate on the live queue position in O(log n) instead of abandoning a
// tombstone event per call.
type entry struct {
	fn  func()
	pos int // current heap index; -1 when not queued
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64 // ordering counter; advances on every (re)schedule
	events  []event
	stopped bool
	rng     *RNG
	// processed counts dispatched events, for diagnostics and benchmarks.
	processed uint64
	// scheduled counts events pushed into the queue.
	scheduled uint64
	// cancelled counts events removed from the queue without dispatching
	// (Timer/Ticker Stop). Before the indexed-timer design these lingered
	// as dead tombstone events and were dispatched as no-ops.
	cancelled uint64
	// moved counts in-place timer reschedules; each one is a tombstone the
	// old design would have leaked into the queue.
	moved uint64
	// peakPending is the high-water mark of the event heap.
	peakPending int
	// wall accumulates wall-clock time spent inside Run. It never feeds
	// back into the simulation, so determinism is preserved.
	wall time.Duration
}

// Stats is a snapshot of the engine's counters. All counters are maintained
// on the hot event loop at the cost of one integer compare per Schedule and
// two wall-clock reads per Run call, so snapshotting is always cheap and
// safe.
type Stats struct {
	// EventsDispatched is the number of events popped and executed.
	EventsDispatched uint64
	// EventsScheduled is the number of events ever pushed into the queue.
	// The invariant EventsDispatched == EventsScheduled - EventsCancelled -
	// uint64(Pending) holds at all times: events leave the queue either by
	// dispatching or by being cancelled in place.
	EventsScheduled uint64
	// EventsCancelled counts events removed from the queue without being
	// dispatched (Timer.Stop / Ticker.Stop on an armed entry). The old
	// heap left these behind as dead no-op events.
	EventsCancelled uint64
	// TimerMoves counts in-place reschedules of armed timers and tickers
	// (Timer.Reset on an armed timer). Each one is a dead event the
	// tombstone design would have queued and dispatched for nothing.
	TimerMoves uint64
	// Pending is the number of events still waiting in the queue.
	Pending int
	// PeakPending is the high-water mark of the event queue depth, a proxy
	// for the simulation's working-set size.
	PeakPending int
	// SimTime is the current virtual clock.
	SimTime Time
	// WallTime is the cumulative wall-clock time spent inside Run.
	WallTime time.Duration
}

// Speedup returns simulated seconds advanced per wall-clock second spent in
// Run — the figure that tells you how much faster than real time the
// simulation executes. Zero if no wall time has been recorded yet.
func (s Stats) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.SimTime.Seconds() / s.WallTime.Seconds()
}

// EventsPerSecond returns dispatched events per wall-clock second, or zero
// if no wall time has been recorded yet.
func (s Stats) EventsPerSecond() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EventsDispatched) / s.WallTime.Seconds()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsDispatched: e.processed,
		EventsScheduled:  e.scheduled,
		EventsCancelled:  e.cancelled,
		TimerMoves:       e.moved,
		Pending:          len(e.events),
		PeakPending:      e.peakPending,
		SimTime:          e.now,
		WallTime:         e.wall,
	}
}

// NewEngine returns an engine with its clock at zero and an RNG seeded with
// the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Processed reports how many events have been dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// --- 4-ary min-heap ---
//
// Children of i live at 4i+1..4i+4; the parent of i is (i-1)/4. A 4-ary
// layout halves the tree depth versus binary, trading slightly wider
// sibling scans (which stay within one or two cache lines of event values)
// for fewer levels of sift work per push/pop.

func lessEv(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// setpos records i as the heap position of the entry backing events[i], if
// any — the bookkeeping that makes in-place Reset/Stop possible.
func (e *Engine) setpos(i int) {
	if ent := e.events[i].ent; ent != nil {
		ent.pos = i
	}
}

// up sifts the event at index i toward the root, moving a hole rather than
// swapping so each displaced event is copied once.
func (e *Engine) up(i int) {
	ev := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !lessEv(&ev, &e.events[parent]) {
			break
		}
		e.events[i] = e.events[parent]
		e.setpos(i)
		i = parent
	}
	e.events[i] = ev
	e.setpos(i)
}

// down sifts the event at index i toward the leaves.
func (e *Engine) down(i int) {
	ev := e.events[i]
	n := len(e.events)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if lessEv(&e.events[c], &e.events[min]) {
				min = c
			}
		}
		if !lessEv(&e.events[min], &ev) {
			break
		}
		e.events[i] = e.events[min]
		e.setpos(i)
		i = min
	}
	e.events[i] = ev
	e.setpos(i)
}

// push appends ev and restores heap order.
func (e *Engine) push(ev event) {
	e.events = append(e.events, ev)
	i := len(e.events) - 1
	e.setpos(i)
	e.up(i)
	e.scheduled++
	if n := len(e.events); n > e.peakPending {
		e.peakPending = n
	}
}

// popRoot removes and returns the earliest event. The vacated tail slot is
// zeroed so the dispatched closure, call argument, and entry pointer do not
// pin garbage from the backing array.
func (e *Engine) popRoot() event {
	root := e.events[0]
	n := len(e.events) - 1
	last := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	if n > 0 {
		e.events[0] = last
		e.setpos(0)
		e.down(0)
	}
	if root.ent != nil {
		root.ent.pos = -1
	}
	return root
}

// removeAt deletes the event at index i without dispatching it, zeroing the
// vacated slot.
func (e *Engine) removeAt(i int) {
	if ent := e.events[i].ent; ent != nil {
		ent.pos = -1
	}
	n := len(e.events) - 1
	if i == n {
		e.events[n] = event{}
		e.events = e.events[:n]
		return
	}
	moved := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	e.events[i] = moved
	e.setpos(i)
	if i > 0 && lessEv(&e.events[i], &e.events[(i-1)/4]) {
		e.up(i)
	} else {
		e.down(i)
	}
}

// updateAt rekeys the event at index i and restores heap order.
func (e *Engine) updateAt(i int, at Time, seq uint64) {
	e.events[i].at = at
	e.events[i].seq = seq
	if i > 0 && lessEv(&e.events[i], &e.events[(i-1)/4]) {
		e.up(i)
	} else {
		e.down(i)
	}
}

// checkFuture panics on scheduling in the past: silently reordering time
// would corrupt every queue model downstream.
func (e *Engine) checkFuture(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
// Events at equal times run in scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at time t. Scheduling in the past is an error in the
// simulation logic and panics.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	e.checkFuture(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, fn: fn})
}

// ScheduleCall runs fn(arg) after delay d (negative delays clamp to zero).
// Unlike Schedule, the callback and its argument travel inside the event
// record, so callers that reuse one prebuilt fn — per-packet delivery in
// the network elements — schedule without allocating a closure per event.
func (e *Engine) ScheduleCall(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.ScheduleCallAt(e.now.Add(d), fn, arg)
}

// ScheduleCallAt runs fn(arg) at time t. See ScheduleCall.
func (e *Engine) ScheduleCallAt(t Time, fn func(any), arg any) {
	e.checkFuture(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, call: fn, arg: arg})
}

// scheduleEntry arms (or re-arms) an indexed entry for time t. An entry
// already in the queue is rekeyed in place; a disarmed one is pushed.
// Either way it receives a fresh sequence number, so a re-armed timer
// orders after events already scheduled for the same instant, exactly as a
// freshly scheduled event would.
func (e *Engine) scheduleEntry(ent *entry, t Time) {
	e.checkFuture(t)
	e.seq++
	if ent.pos >= 0 {
		e.moved++
		e.updateAt(ent.pos, t, e.seq)
		return
	}
	e.push(event{at: t, seq: e.seq, ent: ent})
}

// cancelEntry removes an armed entry from the queue; disarmed entries are
// a no-op.
func (e *Engine) cancelEntry(ent *entry) {
	if ent.pos < 0 {
		return
	}
	e.cancelled++
	e.removeAt(ent.pos)
}

// Stop halts the run loop after the current event finishes. It only affects
// the Run call in progress: the next Run resumes from the pending queue.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in time order until the queue is empty, Stop is
// called, or the clock would pass until. Events scheduled exactly at until
// are dispatched. It returns the final virtual time.
//
// Run clears any previous Stop before dispatching, so an engine stopped
// mid-run can be resumed simply by calling Run again.
func (e *Engine) Run(until Time) Time {
	start := time.Now()
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		ev := e.popRoot()
		e.now = ev.at
		e.processed++
		switch {
		case ev.ent != nil:
			ev.ent.fn()
		case ev.call != nil:
			ev.call(ev.arg)
		default:
			ev.fn()
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.wall += time.Since(start)
	return e.now
}

// RunFor is shorthand for Run(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) Time { return e.Run(e.now.Add(d)) }

// Pending reports how many events are waiting to dispatch.
func (e *Engine) Pending() int { return len(e.events) }

// Timer is a cancellable, reschedulable single-shot timer bound to an engine.
// It is the building block for retransmission timeouts, delayed ACKs, and
// periodic application ticks.
//
// A Timer owns one indexed heap entry: Reset moves the armed entry in place
// and Stop removes it, so no call on a Timer ever strands a dead event in
// the queue or allocates after construction. Timers must not be copied once
// created.
type Timer struct {
	eng *Engine
	fn  func()
	at  Time
	ent entry
}

// NewTimer returns a timer that calls fn when it fires. The timer starts
// disarmed.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{eng: eng, fn: fn}
	t.ent.pos = -1
	t.ent.fn = func() { t.fn() }
	return t
}

// Reset (re)arms the timer to fire after d, cancelling any earlier deadline.
func (t *Timer) Reset(d time.Duration) {
	t.ResetAt(t.eng.now.Add(d))
}

// ResetAt (re)arms the timer to fire at the absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.at = at
	t.eng.scheduleEntry(&t.ent, at)
}

// Stop disarms the timer. It is safe to call on a disarmed timer.
func (t *Timer) Stop() { t.eng.cancelEntry(&t.ent) }

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.ent.pos >= 0 }

// Deadline returns when the timer will fire; meaningful only when Armed.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every interval until stopped. The first tick fires one
// interval after Start (or immediately if startNow). Like Timer, a Ticker
// reuses one indexed heap entry for its whole life, so steady-state ticking
// performs no allocation. Tickers must not be copied once created.
type Ticker struct {
	eng      *Engine
	fn       func()
	interval time.Duration
	running  bool
	ent      entry
}

// NewTicker returns a stopped ticker with the given interval and callback.
func NewTicker(eng *Engine, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, fn: fn, interval: interval}
	t.ent.pos = -1
	t.ent.fn = t.tick
	return t
}

// tick runs one tick and re-arms the entry, unless the callback stopped the
// ticker or re-armed it itself (e.g. via Start).
func (t *Ticker) tick() {
	if !t.running {
		return
	}
	t.fn()
	if t.running && t.ent.pos < 0 {
		t.eng.scheduleEntry(&t.ent, t.eng.now.Add(t.interval))
	}
}

// Start begins ticking. If startNow, the first tick is dispatched at the
// current time (still via the event queue, preserving ordering). Starting a
// running ticker re-arms its pending tick.
func (t *Ticker) Start(startNow bool) {
	t.running = true
	at := t.eng.now.Add(t.interval)
	if startNow {
		at = t.eng.now
	}
	t.eng.scheduleEntry(&t.ent, at)
}

// SetInterval changes the tick interval; takes effect from the next arm.
func (t *Ticker) SetInterval(d time.Duration) {
	if d <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t.interval = d
}

// Interval returns the current tick interval.
func (t *Ticker) Interval() time.Duration { return t.interval }

// Stop halts the ticker. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.running = false
	t.eng.cancelEntry(&t.ent)
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }
