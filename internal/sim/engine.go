// Package sim provides the discrete-event simulation engine that everything
// else in the testbed is built on: a virtual clock, a time-ordered event
// queue, timers, and a deterministic seeded random number generator.
//
// A simulation run is a pure function of its inputs and seed: the engine
// never consults the wall clock, and events scheduled for the same instant
// dispatch in the order they were scheduled, so two runs with identical
// configuration produce bit-identical results.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the run.
type Time int64

// Common instants.
const (
	Start Time = 0
	End   Time = Time(1<<63 - 1)
)

// At returns the Time d after the start of the run.
func At(d time.Duration) Time { return Time(d) }

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the start of the run.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds since the start of the run.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats t as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

type event struct {
	at  Time
	seq uint64 // tiebreaker: preserves scheduling order for simultaneous events
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
	rng     *RNG
	// processed counts dispatched events, for diagnostics and benchmarks.
	processed uint64
	// peakPending is the high-water mark of the event heap.
	peakPending int
	// wall accumulates wall-clock time spent inside Run. It never feeds
	// back into the simulation, so determinism is preserved.
	wall time.Duration
}

// Stats is a snapshot of the engine's counters. All counters are maintained
// on the hot event loop at the cost of one integer compare per Schedule and
// two wall-clock reads per Run call, so snapshotting is always cheap and
// safe.
type Stats struct {
	// EventsDispatched is the number of events popped and executed.
	EventsDispatched uint64
	// EventsScheduled is the number of events ever pushed (including ones
	// still pending). The invariant EventsDispatched == EventsScheduled -
	// uint64(Pending) holds at all times, because events only ever leave
	// the queue by being dispatched.
	EventsScheduled uint64
	// Pending is the number of events still waiting in the queue.
	Pending int
	// PeakPending is the high-water mark of the event queue depth, a proxy
	// for the simulation's working-set size.
	PeakPending int
	// SimTime is the current virtual clock.
	SimTime Time
	// WallTime is the cumulative wall-clock time spent inside Run.
	WallTime time.Duration
}

// Speedup returns simulated seconds advanced per wall-clock second spent in
// Run — the figure that tells you how much faster than real time the
// simulation executes. Zero if no wall time has been recorded yet.
func (s Stats) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.SimTime.Seconds() / s.WallTime.Seconds()
}

// EventsPerSecond returns dispatched events per wall-clock second, or zero
// if no wall time has been recorded yet.
func (s Stats) EventsPerSecond() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EventsDispatched) / s.WallTime.Seconds()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsDispatched: e.processed,
		EventsScheduled:  e.seq,
		Pending:          e.events.Len(),
		PeakPending:      e.peakPending,
		SimTime:          e.now,
		WallTime:         e.wall,
	}
}

// NewEngine returns an engine with its clock at zero and an RNG seeded with
// the given seed.
func NewEngine(seed uint64) *Engine {
	e := &Engine{rng: NewRNG(seed)}
	heap.Init(&e.events)
	return e
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Processed reports how many events have been dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// Events at equal times run in scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at time t. Scheduling in the past is an error in the
// simulation logic and panics, since silently reordering time would corrupt
// every queue model downstream.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
	if n := e.events.Len(); n > e.peakPending {
		e.peakPending = n
	}
}

// Stop halts the run loop after the current event finishes.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in time order until the queue is empty, Stop is
// called, or the clock would pass until. Events scheduled exactly at until
// are dispatched. It returns the final virtual time.
func (e *Engine) Run(until Time) Time {
	start := time.Now()
	for !e.stopped && e.events.Len() > 0 {
		next := e.events[0]
		if next.at > until {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.processed++
		next.fn()
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.wall += time.Since(start)
	return e.now
}

// RunFor is shorthand for Run(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) Time { return e.Run(e.now.Add(d)) }

// Pending reports how many events are waiting to dispatch.
func (e *Engine) Pending() int { return e.events.Len() }

// Timer is a cancellable, reschedulable single-shot timer bound to an engine.
// It is the building block for retransmission timeouts, delayed ACKs, and
// periodic application ticks.
type Timer struct {
	eng     *Engine
	fn      func()
	at      Time
	armed   bool
	version uint64 // invalidates in-flight events from earlier arms
}

// NewTimer returns a timer that calls fn when it fires. The timer starts
// disarmed.
func NewTimer(eng *Engine, fn func()) *Timer {
	return &Timer{eng: eng, fn: fn}
}

// Reset (re)arms the timer to fire after d, cancelling any earlier deadline.
func (t *Timer) Reset(d time.Duration) {
	t.version++
	t.armed = true
	t.at = t.eng.Now().Add(d)
	v := t.version
	t.eng.ScheduleAt(t.at, func() {
		if t.armed && t.version == v {
			t.armed = false
			t.fn()
		}
	})
}

// Stop disarms the timer. It is safe to call on a disarmed timer.
func (t *Timer) Stop() {
	t.version++
	t.armed = false
}

// Armed reports whether the timer is waiting to fire.
func (t *Timer) Armed() bool { return t.armed }

// Deadline returns when the timer will fire; meaningful only when Armed.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every interval until stopped. The first tick fires one
// interval after Start (or immediately if startNow).
type Ticker struct {
	eng      *Engine
	fn       func()
	interval time.Duration
	running  bool
	version  uint64
}

// NewTicker returns a stopped ticker with the given interval and callback.
func NewTicker(eng *Engine, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	return &Ticker{eng: eng, fn: fn, interval: interval}
}

// Start begins ticking. If startNow, the first tick is dispatched at the
// current time (still via the event queue, preserving ordering).
func (t *Ticker) Start(startNow bool) {
	t.version++
	t.running = true
	v := t.version
	delay := t.interval
	if startNow {
		delay = 0
	}
	var tick func()
	tick = func() {
		if !t.running || t.version != v {
			return
		}
		t.fn()
		if t.running && t.version == v {
			t.eng.Schedule(t.interval, tick)
		}
	}
	t.eng.Schedule(delay, tick)
}

// SetInterval changes the tick interval; takes effect from the next arm.
func (t *Ticker) SetInterval(d time.Duration) {
	if d <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t.interval = d
}

// Interval returns the current tick interval.
func (t *Ticker) Interval() time.Duration { return t.interval }

// Stop halts the ticker. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.version++
	t.running = false
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }
