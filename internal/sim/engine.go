// Package sim provides the discrete-event simulation engine that everything
// else in the testbed is built on: a virtual clock, a time-ordered event
// queue, timers, and a deterministic seeded random number generator.
//
// A simulation run is a pure function of its inputs and seed: the engine
// never consults the wall clock, and events scheduled for the same instant
// dispatch in the order they were scheduled, so two runs with identical
// configuration produce bit-identical results.
//
// The event core is built for zero steady-state allocations on the hot
// path (see docs/ARCHITECTURE.md, "hot path & memory discipline"):
//
//   - the queue is a concrete-typed 4-ary min-heap of 48-byte event values,
//     so pushing an event never boxes through interface{} the way
//     container/heap does;
//   - Run drains all events sharing the head timestamp into a small fixed
//     batch buffer and dispatches them without re-touching the heap root
//     per event;
//   - popped heap slots are zeroed so dispatched closures and arguments
//     become garbage-collectable immediately;
//   - Timer and Ticker own an indexed heap entry that Reset/Stop move or
//     remove in place instead of abandoning tombstone events in the queue;
//   - ScheduleCall carries a pre-built func(arg) plus a pointer-shaped
//     argument through the event record itself, so per-packet network
//     events need no per-event closure allocation.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp, in nanoseconds since the start of the run.
type Time int64

// Common instants.
const (
	Start Time = 0
	End   Time = Time(1<<63 - 1)
)

// At returns the Time d after the start of the run.
func At(d time.Duration) Time { return Time(d) }

// Add returns t advanced by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration since the start of the run.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds returns t in seconds since the start of the run.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// String formats t as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// event is one queued dispatch, kept at 48 bytes so heap sift copies stay
// cheap. Exactly one of the two dispatch forms is set: call+arg (a prebuilt
// function applied to an argument; one-shot closures from Schedule travel
// this way too, as runClosure applied to the func() boxed in arg — func
// values are pointer-shaped, so the boxing never allocates), or ent (an
// indexed Timer/Ticker entry).
type event struct {
	at   Time
	seq  uint64 // tiebreaker: preserves scheduling order for simultaneous events
	call func(any)
	arg  any
	ent  *entry
}

// runClosure is the shared dispatch shim for Schedule: the scheduled func()
// rides in the event's arg slot.
func runClosure(a any) { a.(func())() }

// entry is the reschedulable heap handle owned by a Timer or Ticker. The
// heap keeps pos up to date as the entry's event moves, so Reset and Stop
// operate on the live queue position in O(log n) instead of abandoning a
// tombstone event per call.
//
// An entry fires through exactly one of two callback forms: fn (a plain
// func(), possibly a method value allocated at construction) or call+arg
// (a shared prebuilt func(any) applied to a pointer-shaped argument — the
// ScheduleCall pattern, which lets value-embedded timers initialise with
// zero allocations; see Timer.InitCall).
//
// pos encodes where the entry's event lives: a heap index when queued,
// -1 when disarmed, and -2-i when drained into batch slot i of the Run
// loop's dispatch buffer but not yet dispatched. Reset/Stop on a drained
// entry adjust pos (and the engine's inBatch count), which makes the
// dispatch loop skip the stale batch slot.
type entry struct {
	fn   func()
	call func(any)
	arg  any
	pos  int
}

// fire dispatches the entry's callback.
func (en *entry) fire() {
	if en.call != nil {
		en.call(en.arg)
		return
	}
	en.fn()
}

// batchCap bounds one drain pass of the Run loop. Bursts of more than
// batchCap events at one instant are dispatched in successive passes, still
// in seq order, so the cap affects only locality, never semantics.
const batchCap = 64

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64 // ordering counter; advances on every (re)schedule
	events  []event
	stopped bool
	// serial disables the batched drain loop (SetBatchDispatch(false)),
	// keeping the one-pop-per-event reference path for differential tests.
	serial bool
	// inBatch counts events drained into the Run loop's batch buffer that
	// have not yet dispatched (or been cancelled/moved from the buffer).
	// Logical pending = len(events) + inBatch, so Stats taken from inside a
	// callback are identical between batched and serial dispatch.
	inBatch int
	rng     *RNG
	// processed counts dispatched events, for diagnostics and benchmarks.
	processed uint64
	// scheduled counts events pushed into the queue.
	scheduled uint64
	// cancelled counts events removed from the queue without dispatching
	// (Timer/Ticker Stop). Before the indexed-timer design these lingered
	// as dead tombstone events and were dispatched as no-ops.
	cancelled uint64
	// moved counts in-place timer reschedules; each one is a tombstone the
	// old design would have leaked into the queue.
	moved uint64
	// peakPending is the high-water mark of the event heap.
	peakPending int
	// wall accumulates wall-clock time spent inside Run. It never feeds
	// back into the simulation, so determinism is preserved.
	wall time.Duration
}

// Stats is a snapshot of the engine's counters. All counters are maintained
// on the hot event loop at the cost of one integer compare per Schedule and
// two wall-clock reads per Run call, so snapshotting is always cheap and
// safe.
type Stats struct {
	// EventsDispatched is the number of events popped and executed.
	EventsDispatched uint64
	// EventsScheduled is the number of events ever pushed into the queue.
	// The invariant EventsDispatched == EventsScheduled - EventsCancelled -
	// uint64(Pending) holds at all times: events leave the queue either by
	// dispatching or by being cancelled in place.
	EventsScheduled uint64
	// EventsCancelled counts events removed from the queue without being
	// dispatched (Timer.Stop / Ticker.Stop on an armed entry). The old
	// heap left these behind as dead no-op events.
	EventsCancelled uint64
	// TimerMoves counts in-place reschedules of armed timers and tickers
	// (Timer.Reset on an armed timer). Each one is a dead event the
	// tombstone design would have queued and dispatched for nothing.
	TimerMoves uint64
	// Pending is the number of events still waiting in the queue, including
	// any drained into the in-progress dispatch batch but not yet run.
	Pending int
	// PeakPending is the high-water mark of the event queue depth, a proxy
	// for the simulation's working-set size.
	PeakPending int
	// SimTime is the current virtual clock.
	SimTime Time
	// WallTime is the cumulative wall-clock time spent inside Run.
	WallTime time.Duration
}

// Speedup returns simulated seconds advanced per wall-clock second spent in
// Run — the figure that tells you how much faster than real time the
// simulation executes. Zero if no wall time has been recorded yet.
func (s Stats) Speedup() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return s.SimTime.Seconds() / s.WallTime.Seconds()
}

// EventsPerSecond returns dispatched events per wall-clock second, or zero
// if no wall time has been recorded yet.
func (s Stats) EventsPerSecond() float64 {
	if s.WallTime <= 0 {
		return 0
	}
	return float64(s.EventsDispatched) / s.WallTime.Seconds()
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	return Stats{
		EventsDispatched: e.processed,
		EventsScheduled:  e.scheduled,
		EventsCancelled:  e.cancelled,
		TimerMoves:       e.moved,
		Pending:          len(e.events) + e.inBatch,
		PeakPending:      e.peakPending,
		SimTime:          e.now,
		WallTime:         e.wall,
	}
}

// NewEngine returns an engine with its clock at zero and an RNG seeded with
// the given seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's deterministic random number generator.
func (e *Engine) Rand() *RNG { return e.rng }

// Processed reports how many events have been dispatched so far.
func (e *Engine) Processed() uint64 { return e.processed }

// SetBatchDispatch selects between the batched drain loop (the default) and
// the serial one-pop-per-event reference path. Both dispatch the same events
// in the same order with identical Stats; the toggle exists so differential
// tests can prove it.
func (e *Engine) SetBatchDispatch(enabled bool) { e.serial = !enabled }

// --- 4-ary min-heap ---
//
// Children of i live at 4i+1..4i+4; the parent of i is (i-1)/4. A 4-ary
// layout halves the tree depth versus binary, trading slightly wider
// sibling scans (which stay within one or two cache lines of event values)
// for fewer levels of sift work per push/pop.

func lessEv(a, b *event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// down sifts the event at index i toward the leaves, moving a hole rather
// than swapping so each displaced event is copied once. The slice header and
// length are loaded once; the 4-child minimum scan is unrolled.
func (e *Engine) down(i int) {
	evs := e.events
	n := len(evs)
	ev := evs[i]
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		m := c
		if c+1 < n && lessEv(&evs[c+1], &evs[m]) {
			m = c + 1
		}
		if c+2 < n && lessEv(&evs[c+2], &evs[m]) {
			m = c + 2
		}
		if c+3 < n && lessEv(&evs[c+3], &evs[m]) {
			m = c + 3
		}
		if !lessEv(&evs[m], &ev) {
			break
		}
		evs[i] = evs[m]
		if ent := evs[i].ent; ent != nil {
			ent.pos = i
		}
		i = m
	}
	evs[i] = ev
	if ent := ev.ent; ent != nil {
		ent.pos = i
	}
}

// up sifts the event at index i toward the root.
func (e *Engine) up(i int) {
	evs := e.events
	ev := evs[i]
	for i > 0 {
		p := int(uint(i-1) >> 2)
		if !lessEv(&ev, &evs[p]) {
			break
		}
		evs[i] = evs[p]
		if ent := evs[i].ent; ent != nil {
			ent.pos = i
		}
		i = p
	}
	evs[i] = ev
	if ent := ev.ent; ent != nil {
		ent.pos = i
	}
}

// push appends ev, restores heap order with the sift fused in (the appended
// value stays in a register until its final slot is known), and maintains
// the scheduled counter and pending high-water mark.
func (e *Engine) push(ev event) {
	e.pushNoCount(ev)
	e.scheduled++
	if n := len(e.events) + e.inBatch; n > e.peakPending {
		e.peakPending = n
	}
}

// pushNoCount inserts ev without touching the scheduled counter or the peak
// watermark. It is the raw insert under push, and is used directly when an
// event re-enters the heap without being newly scheduled: a timer move out
// of the dispatch batch, or restoring undispatched batch events on Stop —
// cases where logical pending does not grow.
func (e *Engine) pushNoCount(ev event) {
	evs := append(e.events, ev)
	e.events = evs
	i := len(evs) - 1
	for i > 0 {
		p := int(uint(i-1) >> 2)
		if !lessEv(&ev, &evs[p]) {
			break
		}
		evs[i] = evs[p]
		if ent := evs[i].ent; ent != nil {
			ent.pos = i
		}
		i = p
	}
	evs[i] = ev
	if ent := ev.ent; ent != nil {
		ent.pos = i
	}
}

// popInto removes the earliest event into *dst. The vacated tail slot is
// zeroed so the dispatched closure, call argument, and entry pointer do not
// pin garbage from the backing array. The caller is responsible for the
// popped entry's pos (disarmed vs batch-slot encoding).
func (e *Engine) popInto(dst *event) {
	evs := e.events
	*dst = evs[0]
	n := len(evs) - 1
	last := evs[n]
	evs[n] = event{}
	e.events = evs[:n]
	if n > 0 {
		evs[0] = last
		if ent := last.ent; ent != nil {
			ent.pos = 0
		}
		e.down(0)
	}
}

// removeAt deletes the event at index i without dispatching it, zeroing the
// vacated slot.
func (e *Engine) removeAt(i int) {
	if ent := e.events[i].ent; ent != nil {
		ent.pos = -1
	}
	n := len(e.events) - 1
	if i == n {
		e.events[n] = event{}
		e.events = e.events[:n]
		return
	}
	moved := e.events[n]
	e.events[n] = event{}
	e.events = e.events[:n]
	e.events[i] = moved
	if ent := moved.ent; ent != nil {
		ent.pos = i
	}
	if i > 0 && lessEv(&e.events[i], &e.events[(i-1)/4]) {
		e.up(i)
	} else {
		e.down(i)
	}
}

// updateAt rekeys the event at index i and restores heap order.
func (e *Engine) updateAt(i int, at Time, seq uint64) {
	e.events[i].at = at
	e.events[i].seq = seq
	if i > 0 && lessEv(&e.events[i], &e.events[(i-1)/4]) {
		e.up(i)
	} else {
		e.down(i)
	}
}

// checkFuture panics on scheduling in the past: silently reordering time
// would corrupt every queue model downstream.
func (e *Engine) checkFuture(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
// Events at equal times run in scheduling order.
func (e *Engine) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at time t. Scheduling in the past is an error in the
// simulation logic and panics.
func (e *Engine) ScheduleAt(t Time, fn func()) {
	e.checkFuture(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, call: runClosure, arg: fn})
}

// ScheduleCall runs fn(arg) after delay d (negative delays clamp to zero).
// Unlike Schedule, the callback and its argument travel inside the event
// record, so callers that reuse one prebuilt fn — per-packet delivery in
// the network elements — schedule without allocating a closure per event.
func (e *Engine) ScheduleCall(d time.Duration, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.ScheduleCallAt(e.now.Add(d), fn, arg)
}

// ScheduleCallAt runs fn(arg) at time t. See ScheduleCall.
func (e *Engine) ScheduleCallAt(t Time, fn func(any), arg any) {
	e.checkFuture(t)
	e.seq++
	e.push(event{at: t, seq: e.seq, call: fn, arg: arg})
}

// scheduleEntry arms (or re-arms) an indexed entry for time t. An entry
// already in the queue is rekeyed in place; one drained into the dispatch
// batch is pulled back into the heap (the stale batch slot is skipped);
// a disarmed one is pushed. Either way it receives a fresh sequence number,
// so a re-armed timer orders after events already scheduled for the same
// instant, exactly as a freshly scheduled event would.
func (e *Engine) scheduleEntry(ent *entry, t Time) {
	e.checkFuture(t)
	e.seq++
	if ent.pos >= 0 {
		e.moved++
		e.updateAt(ent.pos, t, e.seq)
		return
	}
	if ent.pos <= -2 {
		// Drained but not yet dispatched: this Reset supersedes the pending
		// firing, which in serial dispatch would have been an in-place heap
		// move. Re-enter the heap without counting a new schedule; logical
		// pending (heap + batch) is unchanged.
		e.moved++
		e.inBatch--
		e.pushNoCount(event{at: t, seq: e.seq, ent: ent})
		return
	}
	e.push(event{at: t, seq: e.seq, ent: ent})
}

// cancelEntry removes an armed entry from the queue — or invalidates its
// batch slot if it has been drained but not yet dispatched. Disarmed
// entries are a no-op.
func (e *Engine) cancelEntry(ent *entry) {
	if ent.pos >= 0 {
		e.cancelled++
		e.removeAt(ent.pos)
		return
	}
	if ent.pos <= -2 {
		e.cancelled++
		e.inBatch--
		ent.pos = -1
	}
}

// Stop halts the run loop after the current event finishes. It only affects
// the Run call in progress: the next Run resumes from the pending queue.
func (e *Engine) Stop() { e.stopped = true }

// Run dispatches events in time order until the queue is empty, Stop is
// called, or the clock would pass until. Events scheduled exactly at until
// are dispatched. It returns the final virtual time.
//
// Run drains all events sharing the head timestamp (up to batchCap per
// pass) into a fixed on-stack buffer and dispatches them in seq order
// without re-touching the heap root per event. A lone head event — the
// common case — takes a direct pop-and-dispatch fast path.
//
// Run clears any previous Stop before dispatching, so an engine stopped
// mid-run can be resumed simply by calling Run again.
func (e *Engine) Run(until Time) Time {
	if e.serial {
		return e.runSerial(until)
	}
	start := time.Now()
	e.stopped = false
	var batch [batchCap]event
	for len(e.events) > 0 && !e.stopped {
		t := e.events[0].at
		if t > until {
			break
		}
		e.now = t
		e.popInto(&batch[0])
		if len(e.events) == 0 || e.events[0].at != t {
			// Single event at this instant: dispatch without batch
			// bookkeeping. Identical to one serial loop iteration.
			ev := &batch[0]
			e.processed++
			if ent := ev.ent; ent != nil {
				ent.pos = -1
				ent.fire()
			} else {
				ev.call(ev.arg)
			}
			continue
		}
		if ent := batch[0].ent; ent != nil {
			ent.pos = -2
		}
		n := 1
		for {
			e.popInto(&batch[n])
			if ent := batch[n].ent; ent != nil {
				ent.pos = -2 - n
			}
			n++
			if n == batchCap || len(e.events) == 0 || e.events[0].at != t {
				break
			}
		}
		e.inBatch = n
		for i := 0; i < n; i++ {
			ev := &batch[i]
			if ent := ev.ent; ent != nil {
				if ent.pos != -2-i {
					// Cancelled or re-armed while waiting in the batch;
					// already accounted for there.
					continue
				}
				ent.pos = -1
				e.inBatch--
				e.processed++
				ent.fire()
			} else {
				e.inBatch--
				e.processed++
				ev.call(ev.arg)
			}
			if e.stopped {
				// Restore undispatched live batch events to the heap with
				// their original keys, as if they had never been drained.
				for j := i + 1; j < n; j++ {
					rv := &batch[j]
					if ent := rv.ent; ent != nil && ent.pos != -2-j {
						continue
					}
					e.inBatch--
					e.pushNoCount(*rv)
				}
				break
			}
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.wall += time.Since(start)
	return e.now
}

// runSerial is the one-pop-per-event reference dispatch loop, selected by
// SetBatchDispatch(false). It must remain observably identical to the
// batched loop; the differential determinism tests compare the two.
func (e *Engine) runSerial(until Time) Time {
	start := time.Now()
	e.stopped = false
	var ev event
	for len(e.events) > 0 && !e.stopped {
		if e.events[0].at > until {
			break
		}
		e.popInto(&ev)
		e.now = ev.at
		e.processed++
		if ent := ev.ent; ent != nil {
			ent.pos = -1
			ent.fire()
		} else {
			ev.call(ev.arg)
		}
	}
	if e.now < until && !e.stopped {
		e.now = until
	}
	e.wall += time.Since(start)
	return e.now
}

// RunFor is shorthand for Run(Now().Add(d)).
func (e *Engine) RunFor(d time.Duration) Time { return e.Run(e.now.Add(d)) }

// Pending reports how many events are waiting to dispatch, including any
// drained into the in-progress dispatch batch but not yet run.
func (e *Engine) Pending() int { return len(e.events) + e.inBatch }

// Timer is a cancellable, reschedulable single-shot timer bound to an engine.
// It is the building block for retransmission timeouts, delayed ACKs, and
// periodic application ticks.
//
// A Timer owns one indexed heap entry: Reset moves the armed entry in place
// and Stop removes it, so no call on a Timer ever strands a dead event in
// the queue or allocates after construction. Timers must not be copied once
// created.
type Timer struct {
	eng *Engine
	fn  func()
	at  Time
	ent entry
}

// NewTimer returns a timer that calls fn when it fires. The timer starts
// disarmed.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{eng: eng, fn: fn}
	t.ent.pos = -1
	t.ent.fn = fn
	return t
}

// InitCall prepares a zero-value Timer in place to fire fn(arg), the
// value-embedding construction path: a struct that embeds a Timer by value
// and initialises it with a shared package-level fn and itself as arg arms
// and fires with no per-timer allocation at all (NewTimer costs the Timer
// box plus the callback's closure or method value). The timer starts
// disarmed. Like every Timer, it must not be copied once initialised.
func (t *Timer) InitCall(eng *Engine, fn func(any), arg any) {
	t.eng = eng
	t.ent.pos = -1
	t.ent.call = fn
	t.ent.arg = arg
}

// Reset (re)arms the timer to fire after d, cancelling any earlier deadline.
func (t *Timer) Reset(d time.Duration) {
	t.ResetAt(t.eng.now.Add(d))
}

// ResetAt (re)arms the timer to fire at the absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.at = at
	t.eng.scheduleEntry(&t.ent, at)
}

// Stop disarms the timer. It is safe to call on a disarmed timer.
func (t *Timer) Stop() { t.eng.cancelEntry(&t.ent) }

// Armed reports whether the timer is waiting to fire (queued or drained
// into the in-progress dispatch batch).
func (t *Timer) Armed() bool { return t.ent.pos != -1 }

// Deadline returns when the timer will fire; meaningful only when Armed.
func (t *Timer) Deadline() Time { return t.at }

// Ticker invokes fn every interval until stopped. The first tick fires one
// interval after Start (or immediately if startNow). Like Timer, a Ticker
// reuses one indexed heap entry for its whole life, so steady-state ticking
// performs no allocation. Tickers must not be copied once created.
type Ticker struct {
	eng      *Engine
	fn       func()
	interval time.Duration
	running  bool
	ent      entry
}

// NewTicker returns a stopped ticker with the given interval and callback.
func NewTicker(eng *Engine, interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{eng: eng, fn: fn, interval: interval}
	t.ent.pos = -1
	t.ent.fn = t.tick
	return t
}

// tick runs one tick and re-arms the entry, unless the callback stopped the
// ticker or re-armed it itself (e.g. via Start).
func (t *Ticker) tick() {
	if !t.running {
		return
	}
	t.fn()
	if t.running && t.ent.pos == -1 {
		t.eng.scheduleEntry(&t.ent, t.eng.now.Add(t.interval))
	}
}

// Start begins ticking. If startNow, the first tick is dispatched at the
// current time (still via the event queue, preserving ordering). Starting a
// running ticker re-arms its pending tick.
func (t *Ticker) Start(startNow bool) {
	t.running = true
	at := t.eng.now.Add(t.interval)
	if startNow {
		at = t.eng.now
	}
	t.eng.scheduleEntry(&t.ent, at)
}

// SetInterval changes the tick interval; takes effect from the next arm.
func (t *Ticker) SetInterval(d time.Duration) {
	if d <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t.interval = d
}

// Interval returns the current tick interval.
func (t *Ticker) Interval() time.Duration { return t.interval }

// Stop halts the ticker. Safe to call repeatedly.
func (t *Ticker) Stop() {
	t.running = false
	t.eng.cancelEntry(&t.ent)
}

// Running reports whether the ticker is active.
func (t *Ticker) Running() bool { return t.running }
