package sim

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 identical draws from different seeds", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero-seeded RNG appears stuck at zero")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) produced only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(6)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormClamped(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.NormClamped(0, 10, -1, 1)
		if v < -1 || v > 1 {
			t.Fatalf("NormClamped escaped bounds: %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(8)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("exponential mean = %v, want ~3", mean)
	}
}

func TestForkIndependent(t *testing.T) {
	r := NewRNG(9)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked generators produce identical first draws")
	}
}
