package sim

import (
	"sort"
	"testing"
	"time"
)

// TestHeapPropertyRandomOps drives the typed 4-ary heap with random
// interleavings of Schedule, ScheduleCall, Timer.Reset (both fresh arms and
// in-place moves) and Timer.Stop, across several Run windows, and checks the
// dispatch order against a reference model: pending entries sorted by
// (at, seq), with seq mirroring the engine's ordering counter. Any heap
// bookkeeping bug — a stale entry position after a sift, a missed zeroing, a
// wrong tiebreak — shows up as a dispatch-order mismatch.
func TestHeapPropertyRandomOps(t *testing.T) {
	type ref struct {
		at  Time
		seq uint64
		id  int
	}
	for trial := uint64(1); trial <= 25; trial++ {
		rng := NewRNG(trial)
		e := NewEngine(trial)

		var (
			model  []ref // reference pending set
			got    []int // observed dispatch order
			seq    uint64
			nextID int
		)
		newID := func() int { nextID++; return nextID }

		type timerState struct {
			tm *Timer
			id int // identity of the currently armed deadline
		}
		var timers []*timerState
		for i := 0; i < 4; i++ {
			st := &timerState{}
			st.tm = NewTimer(e, func() { got = append(got, st.id) })
			timers = append(timers, st)
		}
		removeModel := func(id int) {
			for i := range model {
				if model[i].id == id {
					model = append(model[:i], model[i+1:]...)
					return
				}
			}
		}

		for round := 0; round < 6; round++ {
			horizon := 100 * time.Millisecond
			for op := 0; op < 40; op++ {
				at := e.Now().Add(time.Duration(int64(rng.Intn(int(horizon)))) + 1)
				switch rng.Intn(5) {
				case 0, 1: // plain closure
					id := newID()
					seq++
					model = append(model, ref{at, seq, id})
					e.ScheduleAt(at, func() { got = append(got, id) })
				case 2: // prebuilt call + arg
					id := newID()
					seq++
					model = append(model, ref{at, seq, id})
					e.ScheduleCallAt(at, func(x any) { got = append(got, *x.(*int)) }, &id)
				case 3: // timer reset: fresh arm or in-place move
					st := timers[rng.Intn(len(timers))]
					if st.tm.Armed() {
						removeModel(st.id)
					}
					st.id = newID()
					seq++
					model = append(model, ref{at, seq, st.id})
					st.tm.ResetAt(at)
				case 4: // timer stop
					st := timers[rng.Intn(len(timers))]
					if st.tm.Armed() {
						removeModel(st.id)
					}
					st.tm.Stop()
				}
			}

			until := e.Now().Add(time.Duration(int64(rng.Intn(int(horizon)))))
			if round == 5 {
				until = End
			}
			var want []ref
			var rest []ref
			for _, r := range model {
				if r.at <= until {
					want = append(want, r)
				} else {
					rest = append(rest, r)
				}
			}
			sort.Slice(want, func(i, j int) bool {
				return want[i].at < want[j].at ||
					(want[i].at == want[j].at && want[i].seq < want[j].seq)
			})
			model = rest

			got = got[:0]
			e.Run(until)
			if len(got) != len(want) {
				t.Fatalf("trial %d round %d: dispatched %d events, want %d",
					trial, round, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i].id {
					t.Fatalf("trial %d round %d: dispatch[%d] = id %d, want id %d",
						trial, round, i, got[i], want[i].id)
				}
			}
		}
		if e.Pending() != 0 {
			t.Fatalf("trial %d: %d events left after Run(End)", trial, e.Pending())
		}
	}
}
