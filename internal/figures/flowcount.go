package figures

import (
	"fmt"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/units"
)

// FlowCounts is the competing-flow axis of FlowCountTable: from the paper's
// 1-vs-1 duel up to ISP-aggregate populations sharing one bottleneck.
var FlowCounts = []int{0, 1, 2, 5, 10, 20, 50}

// FlowCountTable measures how a game stream degrades as the bottleneck
// population grows: each row runs K on/off cubic flows (heavy-tailed session
// times, see experiment.FlowPopulation) against one stream at 25 Mb/s, 2x BDP
// and reports the stream's bitrate alongside the cross-flow fairness metrics
// — the data behind docs/SCENARIOS.md's bitrate-vs-flow-count figure.
func (c *Campaign) FlowCountTable() *report.Table {
	tb := report.NewTable("Stream bitrate vs competing-flow count (25 Mb/s, 2x BDP, on/off cubic population)",
		"System", "Flows", "Game (Mb/s)", "RTT (ms)", "FPS", "Jain", "Tput p50", "Starved")
	tl := c.Opts.timeline()
	for _, sys := range gamestream.Systems {
		for _, n := range FlowCounts {
			var game, rtt, fps, jain, p50, starved stats.Accumulator
			for it := 0; it < c.Opts.Iterations; it++ {
				r := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System: sys, Capacity: units.Mbps(25), QueueMult: 2, AQM: c.Opts.AQM,
					},
					Population: experiment.FlowPopulation{Flows: n},
					Timeline:   tl,
					Seed:       uint64(11000 + it),
				})
				ff, ft := tl.FairnessWindow()
				game.Add(r.GameSeries().MeanBetween(ff, ft))
				xs := r.RTTBetween(ff, ft)
				if len(xs) > 0 {
					rtt.Add(stats.Mean(xs))
				}
				fps.Add(r.FPSSeries().MeanBetween(ff, ft))
				if n > 0 {
					jain.Add(r.FlowSummary.Jain)
					p50.Add(r.FlowSummary.TputP50Mbps)
					starved.Add(float64(r.FlowSummary.Starved))
				}
			}
			jainCol, p50Col, starvedCol := "-", "-", "-"
			if n > 0 {
				jainCol = fmt.Sprintf("%.3f", jain.Mean())
				p50Col = fmt.Sprintf("%.2f", p50.Mean())
				starvedCol = fmt.Sprintf("%.1f", starved.Mean())
			}
			tb.AddRow(string(sys), fmt.Sprintf("%d", n),
				fmt.Sprintf("%.1f", game.Mean()),
				fmt.Sprintf("%.1f", rtt.Mean()),
				fmt.Sprintf("%.1f", fps.Mean()),
				jainCol, p50Col, starvedCol)
		}
	}
	return tb
}
