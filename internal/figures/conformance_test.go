package figures

import (
	"context"
	"testing"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/units"
)

// TestPaperConformance pins the paper's qualitative findings (the "shape"
// acceptance criterion of EXPERIMENTS.md) with a time-scaled Table-2-style
// campaign at 25 Mb/s. It asserts direction, not magnitude:
//
//  1. The competing Cubic flow takes more bandwidth from the stream than
//     the competing BBR flow does (§4.1) — for Stadia and GeForce Now.
//     Luna is excluded: both the paper and this reproduction find BBR
//     beating Luna (EXPERIMENTS.md "Known deviations" #1 documents the
//     one queue size where the reproduction's Luna-vs-BBR cell differs).
//  2. BBR inflates the bottleneck RTT less than Cubic (§4.3): per system
//     at 2×BDP where the standing queue is unambiguous, and averaged
//     across systems at 1×BDP.
//  3. The game bitrate recovers after the competing flow departs (§4.2):
//     the post-departure mean returns to at least half the pre-arrival
//     mean in every cell.
//
// Runs are pure functions of their position-derived seeds, so the
// campaign — and therefore this test — is fully deterministic.
func TestPaperConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-conformance battery skipped in -short mode")
	}

	const (
		scale = 0.15
		iters = 3
	)
	b25 := units.Mbps(25)

	cfg := experiment.PaperSweep()
	cfg.Iterations = iters
	cfg.Timeline = cfg.Timeline.Scale(scale)
	cfg.Capacities = []units.Rate{b25}
	cfg.QueueMults = []float64{1, 2}
	sw := experiment.RunSweep(context.Background(), cfg)
	if sw.Interrupted {
		t.Fatal("sweep reported Interrupted without cancellation")
	}

	cell := func(sys gamestream.System, cca string, qmult float64) *experiment.ConditionResult {
		t.Helper()
		c := sw.Find(experiment.Condition{System: sys, CCA: cca, Capacity: b25, QueueMult: qmult})
		if c == nil || len(c.Runs) != iters {
			t.Fatalf("missing condition %s/%s/q%g", sys, cca, qmult)
		}
		return c
	}

	// tcpMean is the competing flow's throughput over the stabilised
	// contention window — the paper's measure of how much the bulk flow
	// took from the stream.
	tcpMean := func(c *experiment.ConditionResult) float64 {
		from, to := c.ContentionWindow()
		return c.TCPRate(from, to).Mean
	}
	rttMean := func(c *experiment.ConditionResult) float64 {
		from, to := c.ContentionWindow()
		return c.RTTStats(from, to).Mean
	}

	t.Run("CubicTakesMoreThanBBR", func(t *testing.T) {
		for _, sys := range []gamestream.System{gamestream.Stadia, gamestream.GeForce} {
			cu := tcpMean(cell(sys, "cubic", 2))
			bb := tcpMean(cell(sys, "bbr", 2))
			t.Logf("%s q2: tcp cubic %.1f Mb/s, tcp bbr %.1f Mb/s", sys, cu, bb)
			if cu <= bb {
				t.Errorf("%s at 2xBDP: Cubic took %.1f Mb/s <= BBR's %.1f Mb/s; paper finds Cubic takes more", sys, cu, bb)
			}
		}
		// Luna: the paper itself finds BBR beats Luna at every queue
		// size, so the Cubic>BBR claim does not apply; log for the record.
		t.Logf("luna q2 (excluded, BBR beats Luna per paper): tcp cubic %.1f, tcp bbr %.1f",
			tcpMean(cell(gamestream.Luna, "cubic", 2)), tcpMean(cell(gamestream.Luna, "bbr", 2)))
	})

	t.Run("BBRInflatesRTTLess", func(t *testing.T) {
		// At 2xBDP the drop-tail standing queue separates the CCAs
		// cleanly: Cubic fills the buffer, BBR bounds inflight to ~2xBDP.
		for _, sys := range gamestream.Systems {
			cu := rttMean(cell(sys, "cubic", 2))
			bb := rttMean(cell(sys, "bbr", 2))
			t.Logf("%s q2: rtt cubic %.1f ms, rtt bbr %.1f ms", sys, cu, bb)
			if cu <= bb {
				t.Errorf("%s at 2xBDP: RTT vs Cubic %.1f ms <= RTT vs BBR %.1f ms; paper finds Cubic inflates more", sys, cu, bb)
			}
		}
		// At 1xBDP the shallow buffer caps how far either CCA can push
		// the queue, so per-system gaps are small; the paper's Table 4
		// direction still holds on the across-system average.
		var cuSum, bbSum float64
		for _, sys := range gamestream.Systems {
			cuSum += rttMean(cell(sys, "cubic", 1))
			bbSum += rttMean(cell(sys, "bbr", 1))
		}
		t.Logf("q1 across-system mean: rtt cubic %.1f ms, rtt bbr %.1f ms", cuSum/3, bbSum/3)
		if cuSum <= bbSum {
			t.Errorf("at 1xBDP: mean RTT vs Cubic %.1f ms <= vs BBR %.1f ms across systems", cuSum/3, bbSum/3)
		}
	})

	t.Run("BitrateRecoversAfterDeparture", func(t *testing.T) {
		tl := cfg.Timeline
		// Pre-arrival steady window and post-departure window, leaving
		// the same transient fraction gsreport uses after the departure.
		preFrom, preTo := tl.FlowStart*6/10, tl.FlowStart
		postFrom, postTo := tl.FlowStop+(tl.FlowStop-tl.FlowStart)/5, tl.TraceEnd
		for _, sys := range gamestream.Systems {
			for _, cca := range []string{"cubic", "bbr"} {
				c := cell(sys, cca, 2)
				pre := c.GameRate(preFrom, preTo).Mean
				post := c.GameRate(postFrom, postTo).Mean
				t.Logf("%s/%s q2: pre %.1f Mb/s, post %.1f Mb/s (ratio %.2f)", sys, cca, pre, post, post/pre)
				if pre <= 0 {
					t.Fatalf("%s/%s: no pre-arrival bitrate", sys, cca)
				}
				if post < 0.5*pre {
					t.Errorf("%s/%s at 2xBDP: post-departure bitrate %.1f Mb/s < half of pre-arrival %.1f Mb/s; stream did not recover", sys, cca, post, pre)
				}
				// The competing flow must actually have bitten during
				// contention, or "recovery" is vacuous.
				from, to := c.ContentionWindow()
				mid := c.GameRate(from, to).Mean
				if mid >= pre {
					t.Errorf("%s/%s at 2xBDP: contended bitrate %.1f Mb/s >= pre-arrival %.1f Mb/s; competitor had no effect", sys, cca, mid, pre)
				}
			}
		}
	})
}
