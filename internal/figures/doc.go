// Package figures assembles experiment campaigns into the paper's tables
// and figures: each Table*/Figure* function runs (or reuses) the sweep it
// needs and renders the same rows/series the paper reports. The cmd/gsbench
// binary and the repository's benchmark harness are thin wrappers around
// this package.
//
// Beyond the paper's own artefacts, the package carries the repository's
// extension campaigns: AQM ablations (AQMTable), congestion-control
// mixture grids (MixTable), and the stream-bitrate-vs-competing-flow-count
// curve (FlowCountTable) that backs the worked N-flow example in
// docs/SCENARIOS.md — the axis the paper's 1-vs-1 testbed could not
// explore. Every campaign draws its per-run seeds from a fixed base, so
// regenerating any table is deterministic down to the byte.
package figures
