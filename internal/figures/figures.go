package figures

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/runcache"
	"repro/internal/stats"
	"repro/internal/units"
)

// Options configures campaign size and fidelity.
type Options struct {
	// Iterations per condition (paper: 15).
	Iterations int
	// TimeScale compresses the 9-minute timeline; 0 or 1 is full length.
	TimeScale float64
	// Workers bounds run parallelism (<= 0 = one worker per CPU).
	Workers int
	// AQM overrides the bottleneck discipline (default drop-tail).
	AQM string
	// Progress, when non-nil, observes every sweep the campaign runs.
	Progress obs.Progress
	// RunLog, when non-nil, receives one structured record per run across
	// all of the campaign's sweeps.
	RunLog obs.RunLog
	// Probe, when non-nil, instruments every run of every sweep; ProbeDir,
	// when also non-empty, receives the per-run CSV/JSONL exports.
	Probe    *probe.Config
	ProbeDir string
	// Impairments, when non-empty, adds a path-impairment axis to every
	// sweep the campaign runs; Schedule applies one mid-run retuning
	// program to every run.
	Impairments []netem.Impairment
	Schedule    []experiment.ScheduleStep
	// Cache, when non-nil, is shared by every sweep the campaign runs:
	// runs whose results are already stored are served from disk, so a
	// repeated campaign is pure cache replay and an interrupted one
	// resumes where it stopped. See internal/runcache.
	Cache *runcache.Cache
	// Telemetry, when non-nil, observes every sweep alongside Progress and
	// folds each run into its streaming metric sketches (live HTTP
	// endpoint, snapshot persistence, health timeline). The campaign wires
	// its CacheStats hook to the shared Cache automatically.
	Telemetry *obs.Aggregator
}

func (o Options) defaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 15
	}
	if o.Workers <= 0 {
		o.Workers = experiment.DefaultWorkers()
	}
	return o
}

func (o Options) timeline() metrics.Timeline {
	tl := metrics.PaperTimeline
	if o.TimeScale > 0 && o.TimeScale != 1 {
		tl = tl.Scale(o.TimeScale)
	}
	return tl
}

// Campaign owns the sweeps behind the figures, so several tables can share
// one set of runs (the paper's tables all come from the same 810 traces).
type Campaign struct {
	Opts Options

	ctx         context.Context
	interrupted bool

	contended *experiment.SweepResult // cubic+bbr grid
	solo      *experiment.SweepResult // no competing flow grid
	baseline  *experiment.SweepResult // unconstrained, no competing flow
}

// NewCampaign prepares a campaign with the given options.
func NewCampaign(opts Options) *Campaign {
	return &Campaign{Opts: opts.defaults(), ctx: context.Background()}
}

// SetContext installs the context future sweeps run under. Cancelling it
// makes in-progress sweeps return partial results (flagged via
// Interrupted); tables rendered from partial sweeps mark missing cells
// with "-".
func (c *Campaign) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	c.ctx = ctx
}

// Interrupted reports whether any of the campaign's sweeps was cancelled
// before completing.
func (c *Campaign) Interrupted() bool { return c.interrupted }

// CacheStats snapshots the run cache's counters across everything this
// campaign (and any other user of the same cache object) did; the zero
// value when the campaign runs uncached.
func (c *Campaign) CacheStats() runcache.Stats {
	if c.Opts.Cache == nil {
		return runcache.Stats{}
	}
	return c.Opts.Cache.Stats()
}

// telemetry returns the telemetry sink with its cache hook attached, or nil.
func (c *Campaign) telemetry() obs.Progress {
	ag := c.Opts.Telemetry
	if ag == nil {
		return nil
	}
	if ag.CacheStats == nil && c.Opts.Cache != nil {
		cache := c.Opts.Cache
		ag.CacheStats = func() runcache.Stats { return cache.Stats() }
	}
	return ag
}

// sweep applies the campaign-wide options and runs cfg.
func (c *Campaign) sweep(cfg experiment.SweepConfig) *experiment.SweepResult {
	cfg.Iterations = c.Opts.Iterations
	cfg.Workers = c.Opts.Workers
	cfg.Timeline = c.Opts.timeline()
	cfg.AQM = c.Opts.AQM
	cfg.Progress = obs.MultiProgress(c.Opts.Progress, c.telemetry())
	cfg.RunLog = c.Opts.RunLog
	cfg.Probe = c.Opts.Probe
	cfg.ProbeDir = c.Opts.ProbeDir
	cfg.Impairments = c.Opts.Impairments
	cfg.Schedule = c.Opts.Schedule
	cfg.Cache = c.Opts.Cache
	sw := experiment.RunSweep(c.ctx, cfg)
	if sw.Interrupted {
		c.interrupted = true
	}
	return sw
}

// Contended runs (once) and returns the full competing-flow sweep.
func (c *Campaign) Contended() *experiment.SweepResult {
	if c.contended == nil {
		c.contended = c.sweep(experiment.PaperSweep())
	}
	return c.contended
}

// Solo runs (once) and returns the capacity-constrained solo sweep.
func (c *Campaign) Solo() *experiment.SweepResult {
	if c.solo == nil {
		cfg := experiment.PaperSweep()
		cfg.CCAs = []string{""}
		c.solo = c.sweep(cfg)
	}
	return c.solo
}

// Baseline runs (once) the unconstrained solo conditions behind Table 1.
func (c *Campaign) Baseline() *experiment.SweepResult {
	if c.baseline == nil {
		cfg := experiment.PaperSweep()
		cfg.CCAs = []string{""}
		cfg.Capacities = []units.Rate{units.Mbps(950)}
		cfg.QueueMults = []float64{2}
		c.baseline = c.sweep(cfg)
	}
	return c.baseline
}

// steadyWindow is the measurement window used for solo tables: the same
// offsets as the contention window, for comparability.
func steadyWindow(tl metrics.Timeline) (time.Duration, time.Duration) {
	return tl.FairnessWindow()
}

// Table1 reproduces "Game system bitrates without capacity constraints or
// competing traffic".
func (c *Campaign) Table1() *report.Table {
	sweep := c.Baseline()
	tb := report.NewTable("Table 1: baseline bitrates (unconstrained, no competing flow)",
		"System", "Bitrate (Mb/s)", "Paper")
	paper := map[gamestream.System]string{
		gamestream.Stadia: "27.5 (2.3)", gamestream.GeForce: "24.5 (1.8)", gamestream.Luna: "23.7 (0.9)",
	}
	for _, sys := range gamestream.Systems {
		for _, cond := range sweep.Conditions {
			if cond.Cond.System != sys {
				continue
			}
			from, to := steadyWindow(cond.Runs[0].Cfg.Timeline)
			s := cond.GameRateBins(from, to)
			tb.AddRow(string(sys), report.MeanStd(s.Mean, s.StdDev), paper[sys])
		}
	}
	return tb
}

// Figure2 reproduces the bitrate-versus-time panels at 25 Mb/s: for each
// system × CCA it returns a CSV with the across-run mean and 95% CI per
// queue size.
func (c *Campaign) Figure2() map[string]string {
	sweep := c.Contended()
	out := make(map[string]string)
	for _, sys := range gamestream.Systems {
		for _, cca := range []string{"cubic", "bbr"} {
			headers := []string{"t_sec"}
			var cols [][]float64
			var tcol []float64
			for _, qm := range []float64{0.5, 2, 7} {
				cond := sweep.Find(experiment.Condition{
					System: sys, CCA: cca, Capacity: units.Mbps(25), QueueMult: qm, AQM: c.Opts.AQM,
				})
				if cond == nil {
					continue
				}
				mean, ci := cond.MeanGameSeries()
				if tcol == nil {
					tcol = make([]float64, len(mean.V))
					for i := range tcol {
						tcol[i] = float64(i) * mean.Bin.Seconds()
					}
					cols = append(cols, tcol)
				}
				headers = append(headers,
					fmt.Sprintf("q%.1fx_mean_mbps", qm), fmt.Sprintf("q%.1fx_ci95", qm))
				cols = append(cols, mean.V, ci)
			}
			out[fmt.Sprintf("%s_vs_%s", sys, cca)] = report.CSV(headers, cols)
		}
	}
	return out
}

// Figure3 reproduces the fairness-ratio heatmaps: one per system per CCA,
// rows are capacities, columns queue sizes.
func (c *Campaign) Figure3() []*report.Heatmap {
	sweep := c.Contended()
	var maps []*report.Heatmap
	caps := []units.Rate{units.Mbps(35), units.Mbps(25), units.Mbps(15)}
	queues := []float64{0.5, 2, 7}
	for _, cca := range []string{"cubic", "bbr"} {
		for _, sys := range gamestream.Systems {
			h := &report.Heatmap{
				Title: fmt.Sprintf("Figure 3: (game - tcp)/capacity, %s vs TCP %s", sys, cca),
				Cols:  []string{"q 0.5x", "q 2x", "q 7x"},
			}
			for _, capy := range caps {
				h.Rows = append(h.Rows, fmt.Sprintf("%.0f Mb/s", capy.Mbit()))
				row := make([]float64, 0, len(queues))
				for _, qm := range queues {
					cond := sweep.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						row = append(row, 0)
						continue
					}
					row = append(row, cond.FairnessRatio())
				}
				h.Cells = append(h.Cells, row)
			}
			maps = append(maps, h)
		}
	}
	return maps
}

// Figure4Point is one scatter point of adaptiveness versus fairness.
type Figure4Point struct {
	System       gamestream.System
	CCA          string
	Capacity     units.Rate
	QueueMult    float64
	Fairness     float64
	Adaptiveness float64
	Response     time.Duration
	Recovery     time.Duration
}

// Figure4 reproduces the adaptiveness-versus-fairness scatter: one point
// per system × condition, response/recovery normalised by the maxima
// observed across the compared systems for each CCA.
func (c *Campaign) Figure4() []Figure4Point {
	sweep := c.Contended()
	var pts []Figure4Point
	for _, cca := range []string{"cubic", "bbr"} {
		// First pass: gather response/recovery and the maxima.
		var raw []Figure4Point
		var cmax, emax time.Duration
		for _, cond := range sweep.Conditions {
			if cond.Cond.CCA != cca {
				continue
			}
			rr := cond.ResponseRecovery()
			p := Figure4Point{
				System:    cond.Cond.System,
				CCA:       cca,
				Capacity:  cond.Cond.Capacity,
				QueueMult: cond.Cond.QueueMult,
				Fairness:  cond.FairnessRatio(),
				Response:  rr.Response,
				Recovery:  rr.Recovery,
			}
			if rr.Response > cmax {
				cmax = rr.Response
			}
			if rr.Recovery > emax {
				emax = rr.Recovery
			}
			raw = append(raw, p)
		}
		for i := range raw {
			rr := metrics.ResponseRecovery{Response: raw[i].Response, Recovery: raw[i].Recovery}
			raw[i].Adaptiveness = metrics.Adaptiveness(rr, cmax, emax)
		}
		pts = append(pts, raw...)
	}
	return pts
}

// Figure4Table renders the scatter points as a table.
func (c *Campaign) Figure4Table() *report.Table {
	tb := report.NewTable("Figure 4: adaptiveness vs fairness",
		"System", "CCA", "Capacity", "Queue", "Fairness", "Adaptiveness", "Response", "Recovery")
	for _, p := range c.Figure4() {
		tb.AddRow(string(p.System), p.CCA,
			fmt.Sprintf("%.0f", p.Capacity.Mbit()),
			fmt.Sprintf("%.1fx", p.QueueMult),
			fmt.Sprintf("%+.2f", p.Fairness),
			fmt.Sprintf("%.2f", p.Adaptiveness),
			fmt.Sprintf("%.0fs", p.Response.Seconds()),
			fmt.Sprintf("%.0fs", p.Recovery.Seconds()))
	}
	return tb
}

// Table3 reproduces "Round-trip time (ms) without a competing TCP flow".
func (c *Campaign) Table3() *report.Table {
	sweep := c.Solo()
	return c.rttTable(sweep, []string{""},
		"Table 3: RTT (ms) without a competing TCP flow")
}

// Table4 reproduces "Round-trip time (ms) with a competing TCP flow".
func (c *Campaign) Table4() *report.Table {
	sweep := c.Contended()
	return c.rttTable(sweep, []string{"cubic", "bbr"},
		"Table 4: RTT (ms) with a competing TCP flow")
}

func (c *Campaign) rttTable(sweep *experiment.SweepResult, ccas []string, title string) *report.Table {
	headers := []string{"Capacity", "Queue"}
	for _, sys := range gamestream.Systems {
		for _, cca := range ccas {
			name := string(sys)
			if cca != "" {
				name += "/" + cca
			}
			headers = append(headers, name)
		}
	}
	tb := report.NewTable(title, headers...)
	for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
		for _, qm := range []float64{0.5, 2, 7} {
			row := []string{fmt.Sprintf("%.0f Mb/s", capy.Mbit()), fmt.Sprintf("%.1fx", qm)}
			for _, sys := range gamestream.Systems {
				for _, cca := range ccas {
					cond := sweep.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						row = append(row, "-")
						continue
					}
					from, to := steadyWindow(cond.Runs[0].Cfg.Timeline)
					s := cond.RTTStats(from, to)
					row = append(row, report.MeanStd(s.Mean, s.StdDev))
				}
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// Table5 reproduces "Frame rate (f/s) with competing TCP flow".
func (c *Campaign) Table5() *report.Table {
	sweep := c.Contended()
	headers := []string{"Capacity", "Queue"}
	for _, sys := range gamestream.Systems {
		for _, cca := range []string{"cubic", "bbr"} {
			headers = append(headers, string(sys)+"/"+cca)
		}
	}
	tb := report.NewTable("Table 5: frame rate (f/s) with competing TCP flow", headers...)
	for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
		for _, qm := range []float64{0.5, 2, 7} {
			row := []string{fmt.Sprintf("%.0f Mb/s", capy.Mbit()), fmt.Sprintf("%.1fx", qm)}
			for _, sys := range gamestream.Systems {
				for _, cca := range []string{"cubic", "bbr"} {
					cond := sweep.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						row = append(row, "-")
						continue
					}
					from, to := steadyWindow(cond.Runs[0].Cfg.Timeline)
					s := cond.FPSStats(from, to)
					row = append(row, report.MeanStd(s.Mean, s.StdDev))
				}
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// LossTables reproduces the loss-rate analysis (§4.3 / tech report): game
// flow loss percentage per condition, solo and with each competing flow.
func (c *Campaign) LossTables() *report.Table {
	solo := c.Solo()
	cont := c.Contended()
	headers := []string{"Capacity", "Queue"}
	for _, sys := range gamestream.Systems {
		headers = append(headers, string(sys)+"/solo", string(sys)+"/cubic", string(sys)+"/bbr")
	}
	tb := report.NewTable("Loss rate (%) of the game flow", headers...)
	for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
		for _, qm := range []float64{0.5, 2, 7} {
			row := []string{fmt.Sprintf("%.0f Mb/s", capy.Mbit()), fmt.Sprintf("%.1fx", qm)}
			for _, sys := range gamestream.Systems {
				for _, src := range []struct {
					sweep *experiment.SweepResult
					cca   string
				}{{solo, ""}, {cont, "cubic"}, {cont, "bbr"}} {
					cond := src.sweep.Find(experiment.Condition{
						System: sys, CCA: src.cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						row = append(row, "-")
						continue
					}
					from, to := steadyWindow(cond.Runs[0].Cfg.Timeline)
					s := cond.LossStats(from, to)
					row = append(row, report.MeanStd2(s.Mean*100, s.StdDev*100))
				}
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// Summary renders the adaptiveness/fairness per system ovals (the verbal
// summary of Figure 4), useful for quick eyeballing.
func (c *Campaign) Summary() string {
	pts := c.Figure4()
	var b strings.Builder
	for _, cca := range []string{"cubic", "bbr"} {
		fmt.Fprintf(&b, "vs TCP %s:\n", cca)
		for _, sys := range gamestream.Systems {
			var fair, adapt stats.Accumulator
			for _, p := range pts {
				if p.System == sys && p.CCA == cca {
					fair.Add(p.Fairness)
					adapt.Add(p.Adaptiveness)
				}
			}
			fmt.Fprintf(&b, "  %-8s fairness %+.2f  adaptiveness %.2f\n",
				sys, fair.Mean(), adapt.Mean())
		}
	}
	return b.String()
}

// Save writes whichever sweeps this campaign has materialised into dir, so
// a later invocation can Load them instead of re-running simulations.
func (c *Campaign) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, s *experiment.SweepResult) error {
		if s == nil {
			return nil
		}
		return experiment.SaveSweep(filepath.Join(dir, name+".sweep.gz"), s)
	}
	if err := save("contended", c.contended); err != nil {
		return err
	}
	if err := save("solo", c.solo); err != nil {
		return err
	}
	return save("baseline", c.baseline)
}

// Load restores previously saved sweeps from dir; missing files are simply
// left to be re-run on demand.
func (c *Campaign) Load(dir string) error {
	load := func(name string, dst **experiment.SweepResult) error {
		path := filepath.Join(dir, name+".sweep.gz")
		if _, err := os.Stat(path); err != nil {
			return nil // absent: run on demand
		}
		s, err := experiment.LoadSweep(path)
		if err != nil {
			return err
		}
		*dst = s
		return nil
	}
	if err := load("contended", &c.contended); err != nil {
		return err
	}
	if err := load("solo", &c.solo); err != nil {
		return err
	}
	return load("baseline", &c.baseline)
}
