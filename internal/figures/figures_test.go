package figures

import (
	"strings"
	"testing"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/units"
)

// tinyOpts keeps campaign tests fast: 1 iteration, compressed timeline.
var tinyOpts = Options{Iterations: 1, TimeScale: 0.15, Workers: 8}

// The campaign is shared across tests in this package — building it once
// keeps the full test suite quick while still exercising every table.
var shared = NewCampaign(tinyOpts)

func TestTable1Rendering(t *testing.T) {
	out := shared.Table1().String()
	for _, want := range []string{"Table 1", "stadia", "geforce", "luna", "27.5 (2.3)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure2Panels(t *testing.T) {
	panels := shared.Figure2()
	if len(panels) != 6 {
		t.Fatalf("panels = %d, want 6 (3 systems x 2 CCAs)", len(panels))
	}
	csv := panels["stadia_vs_cubic"]
	if !strings.HasPrefix(csv, "t_sec,") {
		t.Errorf("panel CSV header malformed: %q", csv[:40])
	}
	if !strings.Contains(csv, "q2.0x_mean_mbps") || !strings.Contains(csv, "q7.0x_ci95") {
		t.Error("panel CSV missing queue columns")
	}
	lines := strings.Count(csv, "\n")
	if lines < 50 {
		t.Errorf("panel CSV has only %d lines", lines)
	}
}

func TestFigure3Heatmaps(t *testing.T) {
	maps := shared.Figure3()
	if len(maps) != 6 {
		t.Fatalf("heatmaps = %d, want 6", len(maps))
	}
	out := maps[0].String()
	for _, want := range []string{"Figure 3", "35 Mb/s", "15 Mb/s", "q 0.5x", "q 7x"} {
		if !strings.Contains(out, want) {
			t.Errorf("heatmap missing %q:\n%s", want, out)
		}
	}
}

func TestFigure4PointsComplete(t *testing.T) {
	pts := shared.Figure4()
	// 3 systems x 2 CCAs x 9 conditions.
	if len(pts) != 54 {
		t.Fatalf("points = %d, want 54", len(pts))
	}
	for _, p := range pts {
		if p.Adaptiveness < 0 || p.Adaptiveness > 1 {
			t.Errorf("%s/%s adaptiveness %v out of [0,1]", p.System, p.CCA, p.Adaptiveness)
		}
		if p.Fairness < -1 || p.Fairness > 1 {
			t.Errorf("%s/%s fairness %v out of [-1,1]", p.System, p.CCA, p.Fairness)
		}
	}
	if !strings.Contains(shared.Figure4Table().String(), "Adaptiveness") {
		t.Error("Figure 4 table missing header")
	}
}

func TestTables345Render(t *testing.T) {
	t3 := shared.Table3().String()
	if !strings.Contains(t3, "Table 3") || !strings.Contains(t3, "15 Mb/s") {
		t.Errorf("Table 3 malformed:\n%s", t3)
	}
	t4 := shared.Table4().String()
	if !strings.Contains(t4, "stadia/cubic") || !strings.Contains(t4, "luna/bbr") {
		t.Errorf("Table 4 missing columns:\n%s", t4)
	}
	t5 := shared.Table5().String()
	if !strings.Contains(t5, "Table 5") {
		t.Errorf("Table 5 malformed:\n%s", t5)
	}
	rows := strings.Split(strings.TrimSpace(t4), "\n")
	if len(rows) != 3+9 { // title + header + rule + 9 condition rows
		t.Errorf("Table 4 has %d lines, want 12:\n%s", len(rows), t4)
	}
}

func TestLossTables(t *testing.T) {
	out := shared.LossTables().String()
	if !strings.Contains(out, "Loss rate") || !strings.Contains(out, "stadia/solo") {
		t.Errorf("loss table malformed:\n%s", out)
	}
}

func TestSummary(t *testing.T) {
	out := shared.Summary()
	if !strings.Contains(out, "vs TCP cubic") || !strings.Contains(out, "vs TCP bbr") {
		t.Errorf("summary malformed:\n%s", out)
	}
}

func TestCampaignCachesSweeps(t *testing.T) {
	c := NewCampaign(tinyOpts)
	a := c.Baseline()
	b := c.Baseline()
	if a != b {
		t.Error("Baseline re-ran instead of caching")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.defaults()
	if o.Iterations != 15 || o.Workers != experiment.DefaultWorkers() {
		t.Errorf("defaults = %+v", o)
	}
}

func TestCampaignRespectsAQM(t *testing.T) {
	c := NewCampaign(Options{Iterations: 1, TimeScale: 0.1, Workers: 4, AQM: experiment.AQMFQCoDel})
	sweep := c.Contended()
	found := sweep.Find(experiment.Condition{
		System: gamestream.Stadia, CCA: "cubic", Capacity: units.Mbps(25),
		QueueMult: 2, AQM: experiment.AQMFQCoDel,
	})
	if found == nil {
		t.Fatal("FQ-CoDel campaign did not tag conditions with the AQM")
	}
}

func TestExtensionTablesRender(t *testing.T) {
	// A tiny dedicated campaign keeps the extension sweeps fast.
	c := NewCampaign(Options{Iterations: 1, TimeScale: 0.1, Workers: 4})
	harm := c.HarmTable().String()
	if !strings.Contains(harm, "Harm analysis") || !strings.Contains(harm, "Thr harm") {
		t.Errorf("harm table malformed:\n%s", harm)
	}
	rows := strings.Count(harm, "\n")
	if rows < 54 { // 3 systems x 2 CCAs x 9 conditions + headers
		t.Errorf("harm table has %d lines", rows)
	}
}

func TestMixTableRenders(t *testing.T) {
	c := NewCampaign(Options{Iterations: 1, TimeScale: 0.1, Workers: 4})
	out := c.MixTable().String()
	for _, want := range []string{"Traffic mixtures", "dash/cubic", "videocall", "2x cubic"} {
		if !strings.Contains(out, want) {
			t.Errorf("mix table missing %q:\n%s", want, out)
		}
	}
}

func TestAblationTableRenders(t *testing.T) {
	c := NewCampaign(Options{Iterations: 1, TimeScale: 0.1, Workers: 4})
	out := c.AblationTable().String()
	for _, want := range []string{"Ablations", "stadia: fixed", "luna: no loss-persistence", "FEC disabled"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation table missing %q:\n%s", want, out)
		}
	}
}

func TestAQMTableRenders(t *testing.T) {
	c := NewCampaign(Options{Iterations: 1, TimeScale: 0.1, Workers: 4})
	out := c.AQMTable().String()
	for _, want := range []string{"Queue discipline", "droptail", "codel", "fq_codel"} {
		if !strings.Contains(out, want) {
			t.Errorf("AQM table missing %q:\n%s", want, out)
		}
	}
}
