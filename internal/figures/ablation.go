package figures

import (
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/units"
)

// ablation describes one mechanism knock-out: a profile mutation and the
// condition where the mechanism matters (DESIGN.md design-choice list).
type ablation struct {
	Name   string
	System gamestream.System
	CCA    string
	Queue  float64
	Mutate func(p *gamestream.Profile)
}

// ablations knocks out each calibrated mechanism in the condition where it
// is load-bearing.
var ablations = []ablation{
	{
		// Stadia's adaptive overuse threshold is what lets it compete
		// with Cubic's standing queue; frozen at its initial value the
		// controller should be starved.
		Name: "stadia: fixed (non-adaptive) delay threshold", System: gamestream.Stadia,
		CCA: "cubic", Queue: 2,
		Mutate: func(p *gamestream.Profile) {
			p.NewController = func() gamestream.Controller {
				return gamestream.NewDelayGradient(gamestream.DelayGradientConfig{
					Min: units.Mbps(6), Max: units.Mbps(27.5),
					IncreaseFactor: 1.012,
					// Frozen at the initial 13 ms threshold.
					InitThreshold: 13 * time.Millisecond,
					MaxThreshold:  13 * time.Millisecond,
					GainUp:        0, GainDown: 0,
					Beta: 0.85, LossThreshold: 0.10,
					HoldAfterBackoff: 800 * time.Millisecond,
					AdditiveStep:     units.Kbps(40),
				})
			}
		},
	},
	{
		// Luna's loss-persistence rule is what lets it tolerate Cubic's
		// isolated overflow bursts; cutting on every lossy window should
		// push it well below its stock share.
		Name: "luna: no loss-persistence rule", System: gamestream.Luna,
		CCA: "cubic", Queue: 0.5,
		Mutate: func(p *gamestream.Profile) {
			p.NewController = func() gamestream.Controller {
				return gamestream.NewLossAIMD(gamestream.LossAIMDConfig{
					Min: units.Mbps(2.4), Max: units.Mbps(23.7),
					Beta: 0.75, LossThreshold: 0.015,
					PersistWindows:    1, // cut on any lossy window
					EventDebounce:     800 * time.Millisecond,
					GrowthPerSec:      0.015,
					DelayThreshold:    30 * time.Millisecond,
					MaxDelayThreshold: 130 * time.Millisecond,
					RxHeadroom:        1.15,
				})
			}
		},
	},
	{
		// Stadia's NACK repair keeps frames alive through BBR's loss; a
		// NACK-less Stadia should display fewer frames at the lossy cell.
		Name: "stadia: NACK disabled", System: gamestream.Stadia,
		CCA: "bbr", Queue: 0.5,
		Mutate: func(p *gamestream.Profile) { p.NACK = false },
	},
	{
		// GeForce's FEC budget is its frame-rate insurance.
		Name: "geforce: FEC disabled", System: gamestream.GeForce,
		CCA: "bbr", Queue: 0.5,
		Mutate: func(p *gamestream.Profile) { p.FECRate = 0 },
	},
}

// AblationTable knocks out each design choice and reports the stock versus
// ablated behaviour at the condition where the mechanism is load-bearing.
func (c *Campaign) AblationTable() *report.Table {
	tb := report.NewTable("Ablations: each calibrated mechanism at its load-bearing condition (25 Mb/s)",
		"Ablation", "Condition", "Game Mb/s (stock)", "(ablated)", "FPS (stock)", "(ablated)")
	tl := c.Opts.timeline()
	for _, ab := range ablations {
		cond := experiment.Condition{
			System: ab.System, CCA: ab.CCA, Capacity: units.Mbps(25),
			QueueMult: ab.Queue, AQM: c.Opts.AQM,
		}
		var stockRate, ablRate, stockFPS, ablFPS stats.Accumulator
		for it := 0; it < c.Opts.Iterations; it++ {
			seed := uint64(5000 + it)
			stock := experiment.Run(experiment.RunConfig{
				Condition: cond, Timeline: tl, Seed: seed,
			})
			prof := gamestream.ProfileFor(ab.System)
			ab.Mutate(&prof)
			abl := experiment.Run(experiment.RunConfig{
				Condition: cond, Timeline: tl, Seed: seed, Profile: &prof,
			})
			ff, ft := tl.FairnessWindow()
			stockRate.Add(stock.GameSeries().MeanBetween(ff, ft))
			ablRate.Add(abl.GameSeries().MeanBetween(ff, ft))
			stockFPS.Add(stock.FPSSeries().MeanBetween(ff, ft))
			ablFPS.Add(abl.FPSSeries().MeanBetween(ff, ft))
		}
		tb.AddRow(ab.Name,
			fmt.Sprintf("%s/%s q%.1fx", ab.System, ab.CCA, ab.Queue),
			fmt.Sprintf("%.1f", stockRate.Mean()),
			fmt.Sprintf("%.1f", ablRate.Mean()),
			fmt.Sprintf("%.1f", stockFPS.Mean()),
			fmt.Sprintf("%.1f", ablFPS.Mean()))
	}
	return tb
}
