package figures

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/stats"
)

// fmtQ renders a sketch quantile, "-" when the metric has no samples.
func fmtQ(ms *stats.MetricSketch, q float64) string {
	if ms == nil || ms.N() == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", ms.Quantile(q))
}

// fmtMeanCI renders mean ± ci95, "-" when the metric has no samples.
func fmtMeanCI(ms *stats.MetricSketch) string {
	if ms == nil || ms.N() == 0 {
		return "-"
	}
	return report.MeanCI(ms.Mean(), ms.CI95())
}

// RenderTelemetry renders a telemetry snapshot as the standard report:
// a header line, the campaign-wide quantiles-with-CI table over every
// recorded metric, and the per-condition table over the paper's headline
// metrics. It is shared by gsreport -telemetry/-campaign and gscampaign,
// and works on any snapshot — live, persisted, or merged from shards —
// because everything it prints comes from the sketches alone.
func RenderTelemetry(w io.Writer, label string, snap *obs.Snapshot) {
	state := "complete"
	if snap.Interrupted {
		state = "interrupted"
	} else if snap.Done < snap.Total {
		state = "in progress"
	}
	fmt.Fprintf(w, "telemetry snapshot: %s (%s, %d/%d runs", label, state, snap.Done, snap.Total)
	if snap.Cached > 0 {
		fmt.Fprintf(w, ", %d cached", snap.Cached)
	}
	fmt.Fprintf(w, ", %d conditions, %.1fs elapsed)\n", len(snap.Conditions), snap.ElapsedS)
	if c := snap.Cache; c != nil && c.Lookups() > 0 {
		fmt.Fprintf(w, "run cache: %s\n", c)
	}
	if h := snap.Health; h != nil && h.EventsPerSRoll > 0 {
		fmt.Fprintf(w, "engine: %.3g events/s rolling (opening %.3g)", h.EventsPerSRoll, h.EventsPerSOpen)
		if h.Drift {
			fmt.Fprintf(w, "  [drift warning: %.0f%% below opening window]", h.DriftPct)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	// Campaign-wide table: one row per paper metric, quantiles + exact CI.
	tb := report.NewTable("campaign metrics (across all conditions)",
		"metric", "n", "mean ± ci95", "p10", "p50", "p90", "min", "max")
	names := make([]string, 0, len(snap.Campaign))
	for name := range snap.Campaign {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ms := snap.Campaign[name]
		if ms == nil || ms.N() == 0 {
			continue
		}
		tb.AddRow(name, fmt.Sprintf("%d", ms.N()),
			fmtMeanCI(ms),
			fmtQ(ms, 0.10), fmtQ(ms, 0.50), fmtQ(ms, 0.90),
			fmt.Sprintf("%.2f", ms.Min()), fmt.Sprintf("%.2f", ms.Max()))
	}
	fmt.Fprintln(w, tb)

	// Per-condition table over the paper's headline metrics.
	ct := report.NewTable("per-condition stream metrics",
		"condition", "runs", "game Mb/s ± ci", "game p50", "rtt ms ± ci", "fps ± ci", "loss % p90")
	for _, c := range snap.Conditions {
		game, rtt, fps, loss := c.Metrics["game_mbps"], c.Metrics["rtt_ms"], c.Metrics["fps"], c.Metrics["loss_pct"]
		if game == nil {
			continue
		}
		ct.AddRow(c.Cond, fmt.Sprintf("%d", c.Runs),
			fmtMeanCI(game), fmtQ(game, 0.50), fmtMeanCI(rtt), fmtMeanCI(fps), fmtQ(loss, 0.90))
	}
	fmt.Fprintln(w, ct)
}
