package figures

import (
	"fmt"

	"repro/internal/report"
	"repro/internal/scenario"
)

// InvariantTable renders a chaos campaign's per-invariant verdicts: how
// many runs each property was checked on, how many passed, how many were
// outside its applicability gate, and the first recorded reproducer when
// it failed.
func InvariantTable(rep *scenario.CampaignReport) *report.Table {
	tb := report.NewTable(
		fmt.Sprintf("Chaos campaign seed=%d: %d runs at scale %g (%d cache hits)",
			rep.Seed, rep.Runs, rep.Scale, rep.CacheHits),
		"Invariant", "Checked", "Passed", "Skipped", "Verdict")
	for _, inv := range rep.Invariants {
		verdict := "PASS"
		if inv.Checked == 0 {
			verdict = "not exercised"
		}
		if n := inv.Checked - inv.Passed; n > 0 {
			verdict = fmt.Sprintf("FAIL (%d)", n)
			if len(inv.ViolationList) > 0 {
				v := inv.ViolationList[0]
				verdict += fmt.Sprintf(" e.g. run %d seed %d", v.Run, v.Seed)
			}
		}
		tb.AddRow(inv.Name,
			fmt.Sprintf("%d", inv.Checked),
			fmt.Sprintf("%d", inv.Passed),
			fmt.Sprintf("%d", inv.Skipped),
			verdict)
	}
	return tb
}
