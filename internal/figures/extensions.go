package figures

import (
	"fmt"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/qoe"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/units"
)

// HarmTable implements the harm-based comparison the paper proposes as
// future work (Ware et al.): for every contended condition it reports how
// much of the game system's solo throughput the competing flow destroyed
// (harm ∈ [0,1]) and the RTT harm, using the solo sweep as the baseline.
func (c *Campaign) HarmTable() *report.Table {
	solo := c.Solo()
	cont := c.Contended()
	tb := report.NewTable("Harm analysis (Ware et al.): competing flow's damage to the game system",
		"System", "CCA", "Capacity", "Queue", "Thr harm", "RTT harm", "FPS harm")
	for _, sys := range gamestream.Systems {
		for _, cca := range []string{"cubic", "bbr"} {
			for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
				for _, qm := range []float64{0.5, 2, 7} {
					sCond := solo.Find(experiment.Condition{
						System: sys, CCA: "", Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					kCond := cont.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if sCond == nil || kCond == nil {
						continue
					}
					from, to := sCond.ContentionWindow()
					thrHarm := metrics.Harm(sCond.GameRate(from, to).Mean, kCond.GameRate(from, to).Mean)
					rttHarm := metrics.HarmInverse(sCond.RTTStats(from, to).Mean, kCond.RTTStats(from, to).Mean)
					fpsHarm := metrics.Harm(sCond.FPSStats(from, to).Mean, kCond.FPSStats(from, to).Mean)
					tb.AddRow(string(sys), cca,
						fmt.Sprintf("%.0f", capy.Mbit()),
						fmt.Sprintf("%.1fx", qm),
						fmt.Sprintf("%.2f", thrHarm),
						fmt.Sprintf("%.2f", rttHarm),
						fmt.Sprintf("%.2f", fpsHarm))
				}
			}
		}
	}
	return tb
}

// Mixes are the future-work traffic mixtures evaluated by MixTable.
var Mixes = []struct {
	Name        string
	Competitors []experiment.Competitor
}{
	{"1x cubic", []experiment.Competitor{{Kind: experiment.CompIperf, CCA: "cubic"}}},
	{"2x cubic", []experiment.Competitor{
		{Kind: experiment.CompIperf, CCA: "cubic"}, {Kind: experiment.CompIperf, CCA: "cubic"}}},
	{"1x bbr", []experiment.Competitor{{Kind: experiment.CompIperf, CCA: "bbr"}}},
	{"cubic+bbr", []experiment.Competitor{
		{Kind: experiment.CompIperf, CCA: "cubic"}, {Kind: experiment.CompIperf, CCA: "bbr"}}},
	{"dash/cubic", []experiment.Competitor{{Kind: experiment.CompDash, CCA: "cubic"}}},
	{"dash/bbr", []experiment.Competitor{{Kind: experiment.CompDash, CCA: "bbr"}}},
	{"videocall", []experiment.Competitor{{Kind: experiment.CompVideoCall}}},
	{"dash+call", []experiment.Competitor{
		{Kind: experiment.CompDash, CCA: "cubic"}, {Kind: experiment.CompVideoCall}}},
	{"ledbat", []experiment.Competitor{{Kind: experiment.CompIperf, CCA: "ledbat"}}},
}

// MixTable runs the future-work traffic mixtures (25 Mb/s, 2x BDP) against
// each game system and reports the shares and player-experience measures.
func (c *Campaign) MixTable() *report.Table {
	tb := report.NewTable("Traffic mixtures at 25 Mb/s, 2x BDP queue (paper §5 future work)",
		"System", "Mix", "Game (Mb/s)", "Cross (Mb/s)", "RTT (ms)", "FPS")
	tl := c.Opts.timeline()
	for _, sys := range gamestream.Systems {
		for _, mix := range Mixes {
			var game, cross, rtt, fps stats.Accumulator
			for it := 0; it < c.Opts.Iterations; it++ {
				r := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System: sys, Capacity: units.Mbps(25), QueueMult: 2, AQM: c.Opts.AQM,
					},
					Competitors: mix.Competitors,
					Timeline:    tl,
					Seed:        uint64(9000 + it),
				})
				ff, ft := tl.FairnessWindow()
				game.Add(r.GameSeries().MeanBetween(ff, ft))
				cross.Add(r.TCPSeries().MeanBetween(ff, ft))
				xs := r.RTTBetween(ff, ft)
				if len(xs) > 0 {
					rtt.Add(stats.Mean(xs))
				}
				fps.Add(r.FPSSeries().MeanBetween(ff, ft))
			}
			tb.AddRow(string(sys), mix.Name,
				fmt.Sprintf("%.1f", game.Mean()),
				fmt.Sprintf("%.1f", cross.Mean()),
				fmt.Sprintf("%.1f", rtt.Mean()),
				fmt.Sprintf("%.1f", fps.Mean()))
		}
	}
	return tb
}

// QoETable combines §4.3's indicators (frame rate, RTT, loss) into the
// qoe package's 0–100 score per contended condition — the "assess and
// compare QoE across systems" item from the paper's future work.
func (c *Campaign) QoETable() *report.Table {
	sweep := c.Contended()
	model := qoe.DefaultModel()
	headers := []string{"Capacity", "Queue"}
	for _, sys := range gamestream.Systems {
		for _, cca := range []string{"cubic", "bbr"} {
			headers = append(headers, string(sys)+"/"+cca)
		}
	}
	tb := report.NewTable("QoE score (0-100) during contention", headers...)
	for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
		for _, qm := range []float64{0.5, 2, 7} {
			row := []string{fmt.Sprintf("%.0f Mb/s", capy.Mbit()), fmt.Sprintf("%.1fx", qm)}
			for _, sys := range gamestream.Systems {
				for _, cca := range []string{"cubic", "bbr"} {
					cond := sweep.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						row = append(row, "-")
						continue
					}
					from, to := cond.ContentionWindow()
					var acc stats.Accumulator
					for _, r := range cond.Runs {
						fps := r.FPSSeries().MeanBetween(from, to)
						rtts := r.RTTBetween(from, to)
						rtt := time.Duration(stats.Mean(rtts) * float64(time.Millisecond))
						loss := r.LossBetween(from, to)
						acc.Add(model.Score(fps, rtt, loss))
					}
					row = append(row, fmt.Sprintf("%.0f", acc.Mean()))
				}
			}
			tb.AddRow(row...)
		}
	}
	return tb
}

// ResponseRecoveryTable is the breakdown the paper defers to its technical
// report: per condition, the response time C (adjusting to the arriving
// flow) and recovery time E (returning to the original bitrate after it
// departs), measured on the across-run mean bitrate series (§4.2). An
// asterisk marks conditions that never settled within the window — the
// paper's "never responds / never recovers" cases.
func (c *Campaign) ResponseRecoveryTable() *report.Table {
	sweep := c.Contended()
	tb := report.NewTable("Response and recovery times (s), per condition",
		"System", "CCA", "Capacity", "Queue", "Response", "Recovery")
	for _, sys := range gamestream.Systems {
		for _, cca := range []string{"cubic", "bbr"} {
			for _, capy := range []units.Rate{units.Mbps(15), units.Mbps(25), units.Mbps(35)} {
				for _, qm := range []float64{0.5, 2, 7} {
					cond := sweep.Find(experiment.Condition{
						System: sys, CCA: cca, Capacity: capy, QueueMult: qm, AQM: c.Opts.AQM,
					})
					if cond == nil {
						continue
					}
					rr := cond.ResponseRecovery()
					respMark, recMark := "", ""
					if !rr.Responded {
						respMark = "*"
					}
					if !rr.Recovered {
						recMark = "*"
					}
					tb.AddRow(string(sys), cca,
						fmt.Sprintf("%.0f", capy.Mbit()),
						fmt.Sprintf("%.1fx", qm),
						fmt.Sprintf("%.0f%s", rr.Response.Seconds(), respMark),
						fmt.Sprintf("%.0f%s", rr.Recovery.Seconds(), recMark))
				}
			}
		}
	}
	return tb
}

// AQMTable reruns the worst bufferbloat condition (7x BDP, competing
// Cubic) under each queue discipline — the paper's AQM future-work item.
func (c *Campaign) AQMTable() *report.Table {
	tb := report.NewTable("Queue discipline comparison: 25 Mb/s, 7x BDP, vs TCP Cubic",
		"System", "Qdisc", "Game (Mb/s)", "TCP (Mb/s)", "RTT (ms)", "FPS")
	tl := c.Opts.timeline()
	for _, sys := range gamestream.Systems {
		for _, aqm := range []string{experiment.AQMDropTail, experiment.AQMCoDel, experiment.AQMFQCoDel} {
			var game, tcp, rtt, fps stats.Accumulator
			for it := 0; it < c.Opts.Iterations; it++ {
				r := experiment.Run(experiment.RunConfig{
					Condition: experiment.Condition{
						System: sys, CCA: "cubic", Capacity: units.Mbps(25), QueueMult: 7, AQM: aqm,
					},
					Timeline: tl,
					Seed:     uint64(7000 + it),
				})
				ff, ft := tl.FairnessWindow()
				game.Add(r.GameSeries().MeanBetween(ff, ft))
				tcp.Add(r.TCPSeries().MeanBetween(ff, ft))
				xs := r.RTTBetween(ff, ft)
				if len(xs) > 0 {
					rtt.Add(stats.Mean(xs))
				}
				fps.Add(r.FPSSeries().MeanBetween(ff, ft))
			}
			tb.AddRow(string(sys), aqm,
				fmt.Sprintf("%.1f", game.Mean()),
				fmt.Sprintf("%.1f", tcp.Mean()),
				fmt.Sprintf("%.1f", rtt.Mean()),
				fmt.Sprintf("%.1f", fps.Mean()))
		}
	}
	return tb
}
