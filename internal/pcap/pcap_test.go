package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

func TestGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	_, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:]) != magicMicros {
		t.Error("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:]) != linkTypeEther {
		t.Error("bad link type")
	}
}

func TestRecordLayout(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := &packet.Packet{
		Kind: packet.KindData, Flow: 2, Src: 1, Dst: 11,
		Seq: 1000, Ack: 0, Size: 1514, Payload: 1448, ECT: true,
	}
	if err := w.Write(sim.At(1500*time.Millisecond), p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[24:]
	// Record header.
	if got := binary.LittleEndian.Uint32(b[0:]); got != 1 {
		t.Errorf("ts_sec = %d", got)
	}
	if got := binary.LittleEndian.Uint32(b[4:]); got != 500000 {
		t.Errorf("ts_usec = %d", got)
	}
	if got := binary.LittleEndian.Uint32(b[8:]); got != 1514 {
		t.Errorf("caplen = %d", got)
	}
	frame := b[16:]
	// Ethertype IPv4.
	if binary.BigEndian.Uint16(frame[12:]) != 0x0800 {
		t.Error("ethertype")
	}
	ip := frame[14:]
	if ip[0] != 0x45 || ip[9] != 6 {
		t.Errorf("IP header: ver/ihl=%#x proto=%d", ip[0], ip[9])
	}
	if ip[1]&0x03 != 0x02 {
		t.Errorf("ECT bit not set in TOS: %#x", ip[1])
	}
	if got := binary.BigEndian.Uint16(ip[2:]); got != 1500 {
		t.Errorf("IP total length = %d", got)
	}
	if ip[12] != 10 || ip[15] != 1 || ip[19] != 11 {
		t.Errorf("addresses: src %v dst %v", ip[12:16], ip[16:20])
	}
	tcp := frame[34:]
	if got := binary.BigEndian.Uint16(tcp[0:]); got != 5201 {
		t.Errorf("src port = %d", got)
	}
	if got := binary.BigEndian.Uint32(tcp[4:]); got != 1000 {
		t.Errorf("seq = %d", got)
	}
}

func TestUDPForFrames(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	p := &packet.Packet{Kind: packet.KindFrame, Flow: 1, Src: 1, Dst: 11, Size: 1242}
	if err := w.Write(0, p); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()[24+16:]
	if frame[14+9] != 17 {
		t.Errorf("frame fragment not UDP: proto=%d", frame[14+9])
	}
	udp := frame[34:]
	if got := binary.BigEndian.Uint16(udp[0:]); got != 3478 {
		t.Errorf("udp src port = %d", got)
	}
	if got := binary.BigEndian.Uint16(udp[4:]); got != 1242-34 {
		t.Errorf("udp length = %d", got)
	}
}

func TestTruncate(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Truncate = 96
	p := &packet.Packet{Kind: packet.KindData, Size: 1514}
	if err := w.Write(0, p); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[24:]
	if got := binary.LittleEndian.Uint32(b[8:]); got != 96 {
		t.Errorf("caplen = %d, want 96", got)
	}
	if got := binary.LittleEndian.Uint32(b[12:]); got != 1514 {
		t.Errorf("origlen = %d, want 1514", got)
	}
	if len(b) != 16+96 {
		t.Errorf("record bytes = %d", len(b))
	}
}

func TestMultipleRecordsAndCount(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		p := &packet.Packet{Kind: packet.KindAck, Size: 66}
		if err := w.Write(sim.At(time.Duration(i)*time.Millisecond), p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Packets() != 10 {
		t.Errorf("Packets = %d", w.Packets())
	}
	want := 24 + 10*(16+66)
	if buf.Len() != want {
		t.Errorf("file size = %d, want %d", buf.Len(), want)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 {
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestTapStopsOnError(t *testing.T) {
	eng := sim.NewEngine(1)
	fw := &failWriter{}
	w, err := NewWriter(fw)
	if err != nil {
		t.Fatal(err)
	}
	tap := NewTap(eng, w)
	tap.Handle(&packet.Packet{Kind: packet.KindAck, Size: 66})
	if tap.Err == nil {
		t.Fatal("tap did not surface the write error")
	}
	tap.Handle(&packet.Packet{Kind: packet.KindAck, Size: 66})
	if w.Packets() != 0 {
		t.Error("tap kept writing after an error")
	}
}
