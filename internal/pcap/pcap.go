// Package pcap writes simulated traffic as standard pcap files, openable in
// Wireshark/tshark — closing the loop with the paper's methodology, whose
// raw artefacts were Wireshark captures. Packets are synthesised with
// Ethernet/IPv4/TCP-or-UDP headers whose addresses and ports encode the
// simulated hosts and flows, and whose payload lengths match the simulated
// on-wire sizes.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
)

// Link-layer and pcap constants.
const (
	magicMicros   = 0xa1b2c3d4
	versionMajor  = 2
	versionMinor  = 4
	linkTypeEther = 1
	snapLen       = 262144
)

// Writer streams pcap records to an io.Writer. It is not safe for
// concurrent use; attach it to one capture point.
type Writer struct {
	w       io.Writer
	wrote   int
	scratch []byte
	// Truncate bounds how many payload bytes are written per packet
	// (headers always complete); 0 writes the full simulated size.
	Truncate int
}

// NewWriter writes the pcap global header and returns the writer.
func NewWriter(w io.Writer) (*Writer, error) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], linkTypeEther)
	if _, err := w.Write(hdr); err != nil {
		return nil, fmt.Errorf("pcap: global header: %w", err)
	}
	return &Writer{w: w}, nil
}

// Packets returns how many records have been written.
func (pw *Writer) Packets() int { return pw.wrote }

// ipFor maps a simulated address into 10.0.0.0/24.
func ipFor(a packet.Addr) [4]byte {
	return [4]byte{10, 0, 0, byte(int(a) & 0xff)}
}

// portsFor derives stable ports from the flow id: TCP flows look like a
// bulk download from port 5201 (iperf's default); UDP flows use a
// WebRTC-ish high port pair.
func portsFor(p *packet.Packet) (src, dst uint16, tcp bool) {
	base := uint16(40000 + int(p.Flow)*2)
	switch p.Kind {
	case packet.KindData:
		return 5201, base, true
	case packet.KindAck:
		return base, 5201, true
	case packet.KindFrame:
		return 3478, base, false
	case packet.KindFeedback:
		return base, 3478, false
	case packet.KindPing, packet.KindPong:
		return base + 1, base + 1, false
	}
	return base, base, false
}

// Write emits one packet record stamped at the given simulation time.
func (pw *Writer) Write(at sim.Time, p *packet.Packet) error {
	srcPort, dstPort, isTCP := portsFor(p)

	wire := p.Size
	if wire < 54 {
		wire = 54
	}
	capLen := wire
	if pw.Truncate > 0 && capLen > pw.Truncate {
		capLen = pw.Truncate
	}
	if capLen > snapLen {
		capLen = snapLen
	}

	if cap(pw.scratch) < 16+capLen {
		pw.scratch = make([]byte, 16+capLen)
	}
	buf := pw.scratch[:16+capLen]
	for i := range buf {
		buf[i] = 0
	}

	// Record header.
	ts := at.Duration()
	binary.LittleEndian.PutUint32(buf[0:], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(buf[4:], uint32((ts%time.Second)/time.Microsecond))
	binary.LittleEndian.PutUint32(buf[8:], uint32(capLen))
	binary.LittleEndian.PutUint32(buf[12:], uint32(wire))
	frame := buf[16:]

	// Ethernet II.
	srcIP, dstIP := ipFor(p.Src), ipFor(p.Dst)
	copy(frame[0:6], []byte{0x02, 0, 0, 0, 0, byte(p.Dst)})
	copy(frame[6:12], []byte{0x02, 0, 0, 0, 0, byte(p.Src)})
	binary.BigEndian.PutUint16(frame[12:], 0x0800)

	// IPv4.
	if len(frame) >= 34 {
		ip := frame[14:]
		ip[0] = 0x45
		tos := byte(0)
		if p.ECT {
			tos |= 0x02 // ECT(0)
		}
		if p.CE {
			tos |= 0x03 // CE
		}
		ip[1] = tos
		binary.BigEndian.PutUint16(ip[2:], uint16(wire-14))
		ip[8] = 64 // TTL
		if isTCP {
			ip[9] = 6
		} else {
			ip[9] = 17
		}
		copy(ip[12:16], srcIP[:])
		copy(ip[16:20], dstIP[:])
	}

	// Transport.
	if isTCP && len(frame) >= 54 {
		tcp := frame[34:]
		binary.BigEndian.PutUint16(tcp[0:], srcPort)
		binary.BigEndian.PutUint16(tcp[2:], dstPort)
		binary.BigEndian.PutUint32(tcp[4:], uint32(p.Seq))
		binary.BigEndian.PutUint32(tcp[8:], uint32(p.Ack))
		tcp[12] = 5 << 4 // data offset
		tcp[13] = 0x10   // ACK flag
		binary.BigEndian.PutUint16(tcp[14:], 65535)
	} else if len(frame) >= 42 {
		udp := frame[34:]
		binary.BigEndian.PutUint16(udp[0:], srcPort)
		binary.BigEndian.PutUint16(udp[2:], dstPort)
		binary.BigEndian.PutUint16(udp[4:], uint16(wire-34))
	}

	if _, err := pw.w.Write(buf); err != nil {
		return fmt.Errorf("pcap: record: %w", err)
	}
	pw.wrote++
	return nil
}

// Tap adapts the writer into a capture tap (for netem.Router.Tap); write
// errors surface via the Err field, since taps cannot return errors.
type Tap struct {
	W   *Writer
	eng *sim.Engine
	Err error
}

// NewTap returns a router tap writing every observed packet.
func NewTap(eng *sim.Engine, w *Writer) *Tap {
	return &Tap{W: w, eng: eng}
}

// Handle records the packet at the current simulation time.
func (t *Tap) Handle(p *packet.Packet) {
	if t.Err != nil {
		return
	}
	t.Err = t.W.Write(t.eng.Now(), p)
}
