// Package core is the library facade: a stable, documented entry point to
// the reproduction of "Measurement of Cloud-based Game Streaming System
// Response to Competing TCP Cubic or TCP BBR Flows" (Xu & Claypool,
// IMC 2022).
//
// The typical flow is:
//
//	res := core.Run(core.Config{
//	        System:   core.Stadia,
//	        CCA:      core.Cubic,
//	        Capacity: core.Mbps(25),
//	        Queue:    2, // ×BDP
//	})
//	fmt.Println(res.FairnessRatio())
//
// or, for a full campaign reproducing the paper's grid:
//
//	sweep := core.Sweep(core.SweepOptions{Iterations: 15})
//
// Everything underneath — the discrete-event engine, the tc-style network
// elements, the TCP Cubic/BBR senders, and the three calibrated streaming
// profiles — lives in the sibling internal packages and is re-exported
// here only to the extent a harness needs.
package core

import (
	"context"
	"time"

	"repro/internal/experiment"
	"repro/internal/gamestream"
	"repro/internal/metrics"
	"repro/internal/netem"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/probe"
	"repro/internal/runcache"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// ProbeConfig configures the tcp_probe-style instrumentation layer (alias
// of probe.Config): CC state sampling cadence and the lifecycle event ring
// capacity.
type ProbeConfig = probe.Config

// Impairment configures netem-style path impairments on the bottleneck:
// Bernoulli or Gilbert-Elliott loss, delay jitter with optional reordering,
// and duplicate injection (alias of netem.Impairment).
type Impairment = netem.Impairment

// ScheduleStep is one mid-run retuning action — a shaper rate step, a delay
// change, a loss-rate change, or a link flap (alias of
// experiment.ScheduleStep). Parse a compact spec with ParseSchedule.
type ScheduleStep = experiment.ScheduleStep

// FlowPopulation describes an N-flow bottleneck population: extra game
// streams plus on/off competing flows with heavy-tailed session times (alias
// of experiment.FlowPopulation). See docs/SCENARIOS.md.
type FlowPopulation = experiment.FlowPopulation

// ParseLoss parses a loss spec ("2%", "0.02", "ge:p=0.01,r=0.25") into the
// loss fields of an Impairment.
func ParseLoss(spec string, im *Impairment) error { return experiment.ParseLoss(spec, im) }

// ParseProb parses a probability given as a percentage ("1%") or a plain
// fraction ("0.01").
func ParseProb(s string) (float64, error) { return experiment.ParseProb(s) }

// ParseSchedule parses a semicolon-separated retuning program such as
// "60s rate=10mbit; 120s down; 121s up" into schedule steps.
func ParseSchedule(spec string) ([]ScheduleStep, error) { return experiment.ParseSchedule(spec) }

// ParseMix parses a comma-separated population mix spec such as
// "iperf:cubic,iperf:bbr,dash,videocall" into competitor entries for
// FlowPopulation.Mix.
func ParseMix(spec string) ([]experiment.Competitor, error) { return experiment.ParseMix(spec) }

// RunCache is the content-addressed run-result store (alias of
// runcache.Cache): results are keyed by a canonical hash of the run
// configuration, seed, and module version, so a hit is byte-identical to
// re-executing the run.
type RunCache = runcache.Cache

// CacheStats is a run cache's counter snapshot (alias of runcache.Stats).
type CacheStats = runcache.Stats

// OpenCache opens a run cache rooted at dir, creating it if needed.
func OpenCache(dir string) (*RunCache, error) { return runcache.Open(dir) }

// Game-streaming systems under test.
const (
	Stadia  = gamestream.Stadia
	GeForce = gamestream.GeForce
	Luna    = gamestream.Luna
)

// Competing-flow congestion control algorithms.
const (
	Cubic = tcp.AlgCubic
	BBR   = tcp.AlgBBR
	// None runs the game stream without a competing flow (the solo
	// baseline conditions of Tables 1 and 3).
	None = ""
)

// Bottleneck queue disciplines.
const (
	DropTail = experiment.AQMDropTail
	CoDel    = experiment.AQMCoDel
	FQCoDel  = experiment.AQMFQCoDel
)

// Systems lists the three platforms in the paper's order.
var Systems = gamestream.Systems

// Rate is a data rate in bits per second (alias of units.Rate).
type Rate = units.Rate

// Mbps converts megabits per second to a Rate.
func Mbps(m float64) Rate { return units.Mbps(m) }

// Config describes one run. Zero-valued fields default to the paper's
// setup: 16.5 ms base RTT, 125 kB token-bucket burst, drop-tail queue, and
// the 9-minute timeline with the competing flow between 185 s and 370 s.
type Config struct {
	System   gamestream.System
	CCA      string
	Capacity units.Rate
	// Queue is the bottleneck queue limit in multiples of the
	// bandwidth-delay product (the paper used 0.5, 2, and 7).
	Queue float64
	// AQM selects the queue discipline (default DropTail).
	AQM string
	// Seed makes the run reproducible; runs are pure functions of Config.
	Seed uint64
	// TimeScale optionally compresses the 9-minute timeline (e.g. 0.2
	// runs the same phases in 108 s); 0 or 1 is full fidelity.
	TimeScale float64
	// OnPacket, when non-nil, observes every packet at the bottleneck
	// router (e.g. a pcap tap).
	OnPacket func(at sim.Time, p *packet.Packet)
	// Competitors, when non-empty, replaces the single CCA iperf flow with
	// one bulk iperf flow per listed algorithm (e.g. {"cubic", "bbr"} for
	// a mixed-contention run).
	Competitors []string
	// Probe, when non-nil, attaches CC/queue/lifecycle instrumentation;
	// the capture comes back on Result.Probe.
	Probe *probe.Config
	// Impair applies netem-style path impairments (loss, jitter, reorder,
	// duplication) on the bottleneck downlink.
	Impair Impairment
	// Schedule retunes the path mid-run (rate steps, delay changes, loss
	// changes, link flaps).
	Schedule []ScheduleStep
	// Population, when enabled, shares the bottleneck with an N-flow
	// population: extra game streams plus on/off competing flows with
	// heavy-tailed session times. Result.FlowSummary then carries the
	// cross-flow fairness metrics.
	Population FlowPopulation
	// Cache, when non-nil, serves the run from the content-addressed run
	// cache when its result is already stored, and stores it otherwise.
	// Probed/tapped runs bypass the cache. Result.Cached reports which
	// path was taken.
	Cache *runcache.Cache
}

// Result is the outcome of one run. It embeds the experiment-level result
// and adds convenience accessors for the paper's headline measures.
type Result struct {
	*experiment.RunResult
	// Cached reports whether the result was served from Config.Cache
	// instead of being executed.
	Cached bool
}

// Run executes a single experiment run.
func Run(cfg Config) Result {
	tl := metrics.PaperTimeline
	if cfg.TimeScale > 0 && cfg.TimeScale != 1 {
		tl = tl.Scale(cfg.TimeScale)
	}
	var comps []experiment.Competitor
	for _, cca := range cfg.Competitors {
		comps = append(comps, experiment.Competitor{Kind: experiment.CompIperf, CCA: cca})
	}
	rr, hit := experiment.RunCached(cfg.Cache, experiment.RunConfig{
		Condition: experiment.Condition{
			System:    cfg.System,
			CCA:       cfg.CCA,
			Capacity:  cfg.Capacity,
			QueueMult: cfg.Queue,
			AQM:       cfg.AQM,
			Impair:    cfg.Impair,
		},
		Timeline:    tl,
		Seed:        cfg.Seed,
		OnPacket:    cfg.OnPacket,
		Competitors: comps,
		Probe:       cfg.Probe,
		Schedule:    cfg.Schedule,
		Population:  cfg.Population,
	})
	return Result{RunResult: rr, Cached: hit}
}

// FairnessRatio returns the paper's normalised bitrate difference over the
// stabilised contention window: (game − tcp) / capacity in [-1, 1].
func (r Result) FairnessRatio() float64 {
	from, to := r.Cfg.Timeline.FairnessWindow()
	g := r.GameSeries().MeanBetween(from, to)
	t := r.TCPSeries().MeanBetween(from, to)
	return metrics.FairnessRatio(g, t, r.Cfg.Capacity.Mbit())
}

// ResponseRecovery measures §4.2 response and recovery on this run.
func (r Result) ResponseRecovery() metrics.ResponseRecovery {
	return metrics.MeasureResponseRecovery(r.GameSeries(), r.Cfg.Timeline)
}

// MeanRTT returns the average ping RTT in milliseconds over the contention
// window (or the same window of a solo run for Table 3).
func (r Result) MeanRTT() float64 {
	from, to := r.Cfg.Timeline.FairnessWindow()
	xs := r.RTTBetween(from, to)
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanFPS returns the displayed frame rate over the contention window.
func (r Result) MeanFPS() float64 {
	from, to := r.Cfg.Timeline.FairnessWindow()
	return r.FPSSeries().MeanBetween(from, to)
}

// SweepOptions configures a campaign. Zero values reproduce the paper's
// grid (Table 2) at 15 iterations.
type SweepOptions struct {
	Iterations int
	// TimeScale compresses the timeline for quick campaigns.
	TimeScale float64
	// Workers bounds parallelism (0 = one worker per CPU).
	Workers int
	// AQM selects the bottleneck discipline for the whole campaign.
	AQM string
	// Systems, CCAs, Capacities and Queues narrow the grid; empty slices
	// mean the paper's full sets.
	Systems    []gamestream.System
	CCAs       []string
	Capacities []units.Rate
	Queues     []float64
	// Progress, when non-nil, receives live sweep progress (e.g. an
	// obs.Printer on stderr).
	Progress obs.Progress
	// RunLog, when non-nil, receives one structured record per run (e.g.
	// an obs.JSONL on a file).
	RunLog obs.RunLog
	// Probe, when non-nil, instruments every run; ProbeDir, when also
	// non-empty, receives per-run CSV/JSONL exports.
	Probe    *probe.Config
	ProbeDir string
	// Impairments, when non-empty, becomes an extra sweep axis: every grid
	// cell runs once per impairment profile.
	Impairments []Impairment
	// Schedule applies the same mid-run retuning program to every run.
	Schedule []ScheduleStep
	// Population attaches the same N-flow population to every run of the
	// campaign.
	Population FlowPopulation
	// Cache, when non-nil, serves already-stored runs from disk and
	// stores fresh ones, making repeated or interrupted-then-resumed
	// sweeps incremental (see internal/runcache).
	Cache *runcache.Cache
	// DiscardRuns drops each run's result once the Progress and RunLog
	// sinks have seen it, keeping a campaign-scale sweep in O(conditions)
	// memory. The returned SweepResult then carries no per-run data; pair
	// it with a streaming sink such as an obs.Aggregator.
	DiscardRuns bool
}

// Sweep runs a campaign over the paper's grid (or the narrowed grid in
// opts) and returns the aggregated results.
func Sweep(opts SweepOptions) *experiment.SweepResult {
	return SweepContext(context.Background(), opts)
}

// SweepContext is Sweep with cancellation: cancelling ctx stops new runs
// from starting, drains in-flight runs, and returns the partial results
// with Interrupted set.
func SweepContext(ctx context.Context, opts SweepOptions) *experiment.SweepResult {
	cfg := experiment.PaperSweep()
	cfg.Iterations = opts.Iterations
	cfg.Workers = opts.Workers
	cfg.AQM = opts.AQM
	cfg.Progress = opts.Progress
	cfg.RunLog = opts.RunLog
	cfg.Probe = opts.Probe
	cfg.ProbeDir = opts.ProbeDir
	cfg.Impairments = opts.Impairments
	cfg.Schedule = opts.Schedule
	cfg.Population = opts.Population
	cfg.Cache = opts.Cache
	cfg.DiscardRuns = opts.DiscardRuns
	if opts.TimeScale > 0 && opts.TimeScale != 1 {
		cfg.Timeline = cfg.Timeline.Scale(opts.TimeScale)
	}
	if len(opts.Systems) > 0 {
		cfg.Systems = opts.Systems
	}
	if len(opts.CCAs) > 0 {
		cfg.CCAs = opts.CCAs
	}
	if len(opts.Capacities) > 0 {
		cfg.Capacities = opts.Capacities
	}
	if len(opts.Queues) > 0 {
		cfg.QueueMults = opts.Queues
	}
	return experiment.RunSweep(ctx, cfg)
}

// Baselines returns Table 1's reference values: the unconstrained solo
// bitrates the three systems were measured at (Mb/s mean and stddev).
func Baselines() map[gamestream.System][2]float64 {
	return map[gamestream.System][2]float64{
		Stadia:  {27.5, 2.3},
		GeForce: {24.5, 1.8},
		Luna:    {23.7, 0.9},
	}
}

// PaperTimeline exposes the 9-minute experimental timeline.
func PaperTimeline() metrics.Timeline { return metrics.PaperTimeline }

// BaseRTT is the equalised round-trip time of the paper's testbed.
const BaseRTT = 16500 * time.Microsecond
