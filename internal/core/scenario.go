package core

import (
	"io"

	"repro/internal/experiment"
	"repro/internal/scenario"
)

// Scenario is a declarative experiment specification parsed from a
// scenario file (alias of scenario.Spec): topology, flows, impairments,
// and a retuning schedule, compiled to run configurations with
// Scenario.RunConfig. See docs/SCENARIOS.md for the file format.
type Scenario = scenario.Spec

// ChaosOptions configures a seed-derived chaos campaign (alias of
// scenario.ChaosConfig).
type ChaosOptions = scenario.ChaosConfig

// CampaignReport is a chaos campaign's aggregated invariant verdicts
// (alias of scenario.CampaignReport); render it with gsreport -invariants.
type CampaignReport = scenario.CampaignReport

// ParseScenario parses a scenario file.
func ParseScenario(r io.Reader) (*Scenario, error) { return scenario.Parse(r) }

// LoadScenario parses a scenario file from disk.
func LoadScenario(path string) (*Scenario, error) { return scenario.Load(path) }

// RunScenario executes one iteration of a parsed scenario, through the
// cache when one is given.
func RunScenario(sp *Scenario, iteration int, cache *RunCache) Result {
	rr, hit := experiment.RunCached(cache, sp.RunConfig(iteration))
	return Result{RunResult: rr, Cached: hit}
}

// RunChaos executes a seed-derived chaos campaign, checking every run
// against the metamorphic invariant suite.
func RunChaos(opts ChaosOptions) (*CampaignReport, error) { return scenario.RunChaos(opts) }

// SaveCampaignReport writes a campaign report as JSON for gsreport.
func SaveCampaignReport(path string, rep *CampaignReport) error {
	return scenario.SaveReport(path, rep)
}

// LoadCampaignReport reads a campaign report written by SaveCampaignReport.
func LoadCampaignReport(path string) (*CampaignReport, error) { return scenario.LoadReport(path) }
