package core

import (
	"testing"

	"repro/internal/gamestream"
)

func TestRunFacade(t *testing.T) {
	res := Run(Config{
		System:    Stadia,
		CCA:       Cubic,
		Capacity:  Mbps(25),
		Queue:     2,
		Seed:      1,
		TimeScale: 0.15,
	})
	if res.FramesDisplayed == 0 {
		t.Fatal("no frames displayed")
	}
	fr := res.FairnessRatio()
	if fr < -1 || fr > 1 {
		t.Errorf("fairness %v out of range", fr)
	}
	if res.MeanRTT() < 16 {
		t.Errorf("RTT %v below base", res.MeanRTT())
	}
	if fps := res.MeanFPS(); fps <= 0 || fps > 61 {
		t.Errorf("fps %v out of range", fps)
	}
	rr := res.ResponseRecovery()
	if rr.OriginalMbs <= 0 {
		t.Error("no original bitrate measured")
	}
}

func TestRunSoloNoCompetitor(t *testing.T) {
	res := Run(Config{
		System:    Luna,
		CCA:       None,
		Capacity:  Mbps(15),
		Queue:     2,
		Seed:      2,
		TimeScale: 0.15,
	})
	from, to := res.Cfg.Timeline.FairnessWindow()
	if got := res.TCPSeries().MeanBetween(from, to); got != 0 {
		t.Errorf("solo run has TCP traffic: %v", got)
	}
}

func TestSweepFacade(t *testing.T) {
	sw := Sweep(SweepOptions{
		Iterations: 1,
		TimeScale:  0.1,
		Workers:    4,
		Systems:    []gamestream.System{GeForce},
		CCAs:       []string{Cubic},
		Capacities: []Rate{Mbps(25)},
		Queues:     []float64{2},
	})
	if len(sw.Conditions) != 1 {
		t.Fatalf("conditions = %d, want 1", len(sw.Conditions))
	}
}

func TestBaselines(t *testing.T) {
	b := Baselines()
	if b[Stadia][0] != 27.5 || b[Luna][1] != 0.9 {
		t.Errorf("baselines = %v", b)
	}
}

func TestPaperTimeline(t *testing.T) {
	tl := PaperTimeline()
	if tl.FlowStart.Seconds() != 185 || tl.FlowStop.Seconds() != 370 || tl.TraceEnd.Seconds() != 540 {
		t.Errorf("timeline = %+v", tl)
	}
}
