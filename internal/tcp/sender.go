package tcp

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// RFC 6298 / Linux-flavoured retransmission timer bounds.
const (
	minRTO     = 200 * time.Millisecond
	maxRTO     = 60 * time.Second
	initialRTO = time.Second

	dupThresh = 3 // segments of SACK advance before a hole is declared lost

	// initialWindow is the IW10 initial congestion window (RFC 6928).
	initialWindow = 10
)

// seg is one in-flight segment on the sender's scoreboard, carrying the
// per-packet state for delivery-rate estimation.
type seg struct {
	seq           int64
	len           int64
	sentAt        sim.Time
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time
	appLimited    bool
	retx          bool
	sacked        bool
	lost          bool
}

// ackMeta is the TCP option block attached to ACK packets (SACK ranges and
// the ECN echo flag).
type ackMeta struct {
	sack [][2]int64 // [start, end) byte ranges above the cumulative ACK
	ece  bool       // congestion experienced since the last ACK

	// sackBuf is the inline backing store for sack on pooled records: SACK
	// is capped at maxSackBlocks ranges per ACK, so the whole option block
	// is one allocation for the life of the pool record.
	sackBuf [maxSackBlocks][2]int64
	refs    int
	owner   *ackMetaPool
}

// Retain and Release implement packet.AppRef, so the packet pool recycles
// option blocks alongside the packets that carry them.
func (m *ackMeta) Retain() { m.refs++ }

func (m *ackMeta) Release() {
	m.refs--
	if m.refs < 0 {
		panic("tcp: ackMeta over-released")
	}
	if m.refs == 0 && m.owner != nil {
		m.owner.put(m)
	}
}

// ackMetaPool recycles ACK option blocks (and their SACK backing arrays)
// through the packet refcount protocol, so a lossy ACK stream — every ACK
// carrying SACK ranges — allocates nothing in steady state.
type ackMetaPool struct{ free []*ackMeta }

func (pl *ackMetaPool) get() *ackMeta {
	if n := len(pl.free); n > 0 {
		m := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		return m
	}
	m := &ackMeta{owner: pl}
	m.sack = m.sackBuf[:0]
	return m
}

func (pl *ackMetaPool) put(m *ackMeta) {
	m.sack = m.sack[:0]
	m.ece = false
	pl.free = append(pl.free, m)
}

// Stats holds sender-side counters exposed to the harness.
type Stats struct {
	BytesSent    int64
	BytesAcked   int64
	Retransmits  int
	RTOs         int
	LossEvents   int
	AckedPackets int
	ECNResponses int
}

// Sender is a TCP data sender: an unbounded (or byte-limited) source, a
// SACK scoreboard, loss detection and recovery, RTT/RTO estimation,
// delivery-rate sampling, and optional pacing, with the congestion window
// delegated to a CongestionControl.
type Sender struct {
	host *netem.Host
	eng  *sim.Engine
	flow packet.FlowID
	dst  packet.Addr
	cc   CongestionControl
	mss  int64

	running bool
	sndNxt  int64
	sndUna  int64
	// limit is the total payload bytes to send; 0 means unbounded.
	limit int64

	segs        []*seg
	segBase     []*seg // full-capacity backing array of segs (see pushSeg)
	segFree     []*seg   // freelist of scoreboard records (per-sender, deterministic)
	segShared   *SegPool // optional shared freelist (population senders); overrides segFree
	pipeBytes   int64  // bytes considered in flight
	highSacked  int64  // highest sequence+len SACKed
	retxPending int    // segments marked lost awaiting retransmit

	// Delivery-rate estimation state (per the rate-sample algorithm used
	// by Linux/BBR).
	delivered     int64
	deliveredTime sim.Time
	firstSentTime sim.Time
	appLimitedSeq int64 // delivered-marker below which samples are app-limited

	srtt, rttvar, rto time.Duration
	minRTT            time.Duration
	rtoTimer          sim.Timer
	backoff           uint

	inRecovery  bool
	recoveryEnd int64

	// ECN state: when enabled, data is sent ECN-capable and ECE echoes
	// trigger a once-per-RTT congestion response without retransmission.
	ecn          bool
	ecnNextReact sim.Time

	roundTrips         int64
	nextRoundDelivered int64

	// rackTime is the transmit time of the most recently sent segment
	// known delivered, for RACK-style loss detection (catches lost
	// retransmissions without waiting for an RTO).
	rackTime sim.Time

	paceNext  sim.Time
	paceTimer sim.Timer

	// lastRate retains the most recent valid delivery-rate sample so
	// interval-based probes can read it between ACKs.
	lastRate units.Rate

	// ackObs, when non-nil, observes every AckSample handed to the
	// congestion controller (the probe layer's per-ACK sampling hook).
	ackObs func(AckSample)

	// Stats accumulates counters for the harness.
	Stats Stats
}

// NewSender creates a sender on host for the given flow, destined for dst,
// governed by cc. The sender binds itself to the host for ACK delivery.
func NewSender(host *netem.Host, flow packet.FlowID, dst packet.Addr, cc CongestionControl) *Sender {
	s := &Sender{}
	s.Init(host, flow, dst, cc)
	return s
}

// senderRTO and senderTrySend are the shared timer dispatch shims: every
// Sender's timers carry the same two package-level functions plus the
// sender itself as the argument, so arming a value-embedded sender's timers
// never allocates a closure or method value.
func senderRTO(a any)     { a.(*Sender).onRTO() }
func senderTrySend(a any) { a.(*Sender).trySend() }

// Init prepares a zero-value Sender in place — the value-embedding
// construction path for flow populations, where hundreds of senders live
// inside one backing array and construction must not allocate per slot.
// Like NewSender, it binds the sender to the host for ACK delivery. A
// Sender must be Init'ed exactly once, before any use, and (like its
// timers) must not be copied afterwards.
func (s *Sender) Init(host *netem.Host, flow packet.FlowID, dst packet.Addr, cc CongestionControl) {
	s.host = host
	s.eng = host.Engine()
	s.flow = flow
	s.dst = dst
	s.cc = cc
	s.mss = packet.MSS
	s.rto = initialRTO
	s.minRTT = -1
	s.rtoTimer.InitCall(s.eng, senderRTO, s)
	s.paceTimer.InitCall(s.eng, senderTrySend, s)
	cc.Init(s.mss)
	host.Bind(flow, s)
}

// EnableECN marks outgoing data ECN-capable (RFC 3168). ECE echoes from
// the receiver then cut the congestion window like a loss event, but
// without retransmissions — pair with an ECN-enabled CoDel bottleneck.
func (s *Sender) EnableECN() { s.ecn = true }

// SetLimit bounds the total payload bytes this sender will transmit.
func (s *Sender) SetLimit(n int64) { s.limit = n }

// Enqueue adds n more payload bytes to the send limit — the application
// write path for request/response workloads (e.g. a video server pushing
// one segment at a time). A sender created without a limit is an unbounded
// source and ignores Enqueue.
func (s *Sender) Enqueue(n int64) {
	if n <= 0 || s.limit == 0 {
		return
	}
	s.limit += n
	if s.running {
		s.trySend()
	}
}

// Outstanding returns payload bytes accepted from the application but not
// yet acknowledged (0 for unbounded senders).
func (s *Sender) Outstanding() int64 {
	if s.limit == 0 {
		return 0
	}
	return s.limit - s.sndUna
}

// Start begins transmitting.
func (s *Sender) Start() {
	s.running = true
	s.trySend()
}

// StopSending halts new transmissions; in-flight data drains normally and
// remains subject to retransmission until acknowledged.
func (s *Sender) StopSending() {
	s.running = false
}

// CC returns the congestion controller, for state inspection by tests and
// the harness.
func (s *Sender) CC() CongestionControl { return s.cc }

// Reset rearms the sender as a fresh connection on the same flow and host
// binding, governed by a new congestion controller (nil re-initialises the
// current one in place, the allocation-free path when the algorithm does
// not change) — the slot-reuse path for N-flow populations, where one
// Sender serves many short connection lifetimes without reallocating its
// scoreboard or timers. The sequence space continues from sndNxt rather
// than restarting at zero, so a stray ACK from the previous lifetime still
// in flight satisfies Ack <= sndUna and is absorbed as a no-op instead of
// corrupting the new connection. Cumulative Stats are retained; the RTT
// estimator, rate sampler, and recovery state start over.
func (s *Sender) Reset(cc CongestionControl) {
	s.running = false
	s.rtoTimer.Stop()
	s.paceTimer.Stop()
	for i, sg := range s.segs {
		s.segs[i] = nil
		s.freeSeg(sg)
	}
	if len(s.segBase) > 0 {
		s.segs = s.segBase[:0]
	} else {
		s.segs = s.segs[:0]
	}
	s.sndUna = s.sndNxt
	s.limit = 0
	s.pipeBytes = 0
	s.highSacked = s.sndNxt
	s.retxPending = 0
	s.appLimitedSeq = 0
	s.nextRoundDelivered = s.delivered
	s.roundTrips = 0
	s.srtt, s.rttvar = 0, 0
	s.rto = initialRTO
	s.minRTT = -1
	s.backoff = 0
	s.inRecovery = false
	s.recoveryEnd = 0
	s.ecnNextReact = 0
	s.rackTime = 0
	s.paceNext = 0
	s.lastRate = 0
	if cc != nil {
		s.cc = cc
	}
	s.cc.Init(s.mss)
}

// SndNxt returns the next sequence number to be sent — after Reset, the
// base of the new connection's sequence space (for Receiver.ResetAt).
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// SRTT returns the smoothed RTT estimate.
func (s *Sender) SRTT() time.Duration { return s.srtt }

// RTTVar returns the RTT variance estimate (RFC 6298).
func (s *Sender) RTTVar() time.Duration { return s.rttvar }

// MinRTT returns the connection's lifetime minimum RTT (-1 before any
// sample).
func (s *Sender) MinRTT() time.Duration { return s.minRTT }

// Delivered returns the connection's total delivered bytes.
func (s *Sender) Delivered() int64 { return s.delivered }

// DeliveryRate returns the most recent valid delivery-rate sample (0 before
// the first one).
func (s *Sender) DeliveryRate() units.Rate { return s.lastRate }

// InRecovery reports whether the sender is in loss recovery.
func (s *Sender) InRecovery() bool { return s.inRecovery }

// SetAckObserver registers fn to observe every AckSample handed to the
// congestion controller, after the controller has processed it. One
// observer at most; nil disables. The hook costs a nil check per ACK when
// unset, so leaving it unwired has no measurable overhead.
func (s *Sender) SetAckObserver(fn func(AckSample)) { s.ackObs = fn }

// Inflight returns the bytes currently considered in flight.
func (s *Sender) Inflight() int64 { return s.pipeBytes }

// dataAvail reports whether new payload remains to send.
func (s *Sender) dataAvail() bool {
	if !s.running {
		return false
	}
	return s.limit == 0 || s.sndNxt < s.limit
}

// nextSegLen returns the payload size for the next new segment.
func (s *Sender) nextSegLen() int64 {
	n := s.mss
	if s.limit > 0 && s.limit-s.sndNxt < n {
		n = s.limit - s.sndNxt
	}
	return n
}

// trySend transmits retransmissions first, then new data, subject to the
// congestion window and (if the controller requests it) pacing.
func (s *Sender) trySend() {
	for {
		wantRetx := s.retxPending > 0
		if !wantRetx && !s.dataAvail() {
			s.markAppLimited()
			return
		}
		if !wantRetx && s.pipeBytes+s.nextSegLen() > s.cc.CwndBytes() {
			return
		}
		if wantRetx && s.pipeBytes >= s.cc.CwndBytes() && s.pipeBytes > 0 {
			// Even retransmits respect the window, except that a
			// silent pipe may always retransmit one segment.
			return
		}
		if pr := s.cc.PacingRate(); pr > 0 {
			now := s.eng.Now()
			if now < s.paceNext {
				s.paceTimer.Reset(s.paceNext.Sub(now))
				return
			}
		}
		if wantRetx {
			s.retransmitOne()
		} else {
			s.sendNew()
		}
	}
}

// markAppLimited records that the sender ran out of data with window to
// spare, so subsequent rate samples must not drag down max filters.
func (s *Sender) markAppLimited() {
	if s.pipeBytes < s.cc.CwndBytes() {
		marker := s.delivered + s.pipeBytes
		if marker > s.appLimitedSeq {
			s.appLimitedSeq = marker
		}
	}
}

func (s *Sender) paceAfter(bytes int64) {
	pr := s.cc.PacingRate()
	if pr <= 0 {
		return
	}
	interval := pr.TimeToTransmit(units.ByteSize(bytes))
	now := s.eng.Now()
	if s.paceNext < now {
		s.paceNext = now
	}
	s.paceNext = s.paceNext.Add(interval)
}

// segBlock is how many scoreboard records a freelist miss allocates at
// once: records are only ever needed in window-sized bursts, so block
// allocation divides the miss cost without changing peak memory much.
const segBlock = 16

// SegPool is a shared scoreboard-record freelist. Senders that share one
// bottleneck (an N-flow population's slots) attach the same pool via
// SetSegPool, so the records in circulation are bounded by the total
// in-flight window across the population rather than by per-sender
// high-water marks — a 200-sender population warms up one freelist, not
// two hundred. Get/put order is deterministic (the engine is
// single-goroutine), so sharing never perturbs run output.
type SegPool struct {
	free []*seg
	// boards is a carve-forward arena handing pool-attached senders their
	// initial scoreboard backing, so a population's 200 scoreboards cost a
	// few chunk allocations instead of a geometric-growth ladder each.
	boards []*seg
}

// boardCap is the initial scoreboard capacity carved for pool-attached
// senders: enough for a full BDP worth of in-flight segments on the
// shared-bottleneck scenarios populations model, so pushSeg's growth
// path is reserved for genuinely window-heavy flows.
const boardCap = 64

// boardChunk is how many boards one arena block holds.
const boardChunk = 32

func (p *SegPool) board() []*seg {
	if len(p.boards) < boardCap {
		p.boards = make([]*seg, boardChunk*boardCap)
	}
	b := p.boards[:boardCap:boardCap]
	p.boards = p.boards[boardCap:]
	return b
}

// get returns a zeroed record, replenishing a block at a time on miss.
func (p *SegPool) get() *seg {
	if len(p.free) == 0 {
		block := make([]seg, segBlock)
		for i := range block {
			p.free = append(p.free, &block[i])
		}
	}
	n := len(p.free)
	sg := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*sg = seg{}
	return sg
}

func (p *SegPool) put(sg *seg) { p.free = append(p.free, sg) }

// SetSegPool attaches a shared scoreboard-record freelist, replacing the
// sender's private one. Call before the first transmission; records from
// the private freelist are handed to the shared pool so none strand.
func (s *Sender) SetSegPool(p *SegPool) {
	p.free = append(p.free, s.segFree...)
	s.segFree = nil
	s.segShared = p
	if cap(s.segs) == 0 && len(s.segBase) == 0 {
		b := p.board()
		s.segBase = b
		s.segs = b[:0]
	}
}

// newSeg returns a zeroed scoreboard record, reusing a retired one when
// available and replenishing the freelist a block at a time otherwise.
func (s *Sender) newSeg() *seg {
	if s.segShared != nil {
		return s.segShared.get()
	}
	if len(s.segFree) == 0 {
		block := make([]seg, segBlock)
		for i := range block {
			s.segFree = append(s.segFree, &block[i])
		}
	}
	n := len(s.segFree)
	sg := s.segFree[n-1]
	s.segFree[n-1] = nil
	s.segFree = s.segFree[:n-1]
	*sg = seg{}
	return sg
}

// freeSeg retires a scoreboard record to whichever freelist the sender
// draws from.
func (s *Sender) freeSeg(sg *seg) {
	if s.segShared != nil {
		s.segShared.put(sg)
		return
	}
	s.segFree = append(s.segFree, sg)
}

// pushSeg appends sg to the scoreboard. The scoreboard is a sliding
// window over a stable backing array (segBase): cumulative ACKs advance
// the front by re-slicing, and pushSeg reclaims the dead front space by
// compacting in place once at least half the array is dead. Compacting
// no more often than every len(segs) pops keeps the amortised cost O(1)
// and means the steady-state data path never reallocates the scoreboard,
// however many segments pass through the connection.
func (s *Sender) pushSeg(sg *seg) {
	if len(s.segs) == cap(s.segs) {
		dead := len(s.segBase) - cap(s.segs)
		if dead > 0 && dead >= len(s.segs) {
			n := copy(s.segBase, s.segs)
			for i := n; i < n+dead; i++ {
				s.segBase[i] = nil
			}
			s.segs = s.segBase[:n]
		} else {
			grown := make([]*seg, len(s.segs), 2*len(s.segBase)+8)
			copy(grown, s.segs)
			s.segs = grown
			s.segBase = grown[:cap(grown)]
		}
	}
	s.segs = append(s.segs, sg)
}

func (s *Sender) sendNew() {
	n := s.nextSegLen()
	now := s.eng.Now()
	if s.pipeBytes == 0 {
		s.firstSentTime = now
		s.deliveredTime = now
	}
	sg := s.newSeg()
	*sg = seg{
		seq:           s.sndNxt,
		len:           n,
		sentAt:        now,
		delivered:     s.delivered,
		deliveredTime: s.deliveredTime,
		firstSentTime: s.firstSentTime,
		appLimited:    s.delivered < s.appLimitedSeq,
	}
	s.firstSentTime = now
	s.pushSeg(sg)
	s.sndNxt += n
	s.pipeBytes += n
	s.transmit(sg)
}

func (s *Sender) retransmitOne() {
	for _, sg := range s.segs {
		if sg.lost {
			sg.lost = false
			sg.retx = true
			now := s.eng.Now()
			sg.sentAt = now
			sg.delivered = s.delivered
			sg.deliveredTime = s.deliveredTime
			sg.firstSentTime = now
			s.retxPending--
			s.pipeBytes += sg.len
			s.Stats.Retransmits++
			s.transmit(sg)
			return
		}
	}
	// Scoreboard out of sync; repair the counter.
	s.retxPending = 0
}

func (s *Sender) transmit(sg *seg) {
	p := s.host.NewPacket()
	p.Flow = s.flow
	p.Kind = packet.KindData
	p.Dst = s.dst
	p.Seq = sg.seq
	p.Payload = int(sg.len)
	p.Size = int(sg.len) + packet.EthIPOverhead + packet.TCPHeader + 12 // TS option
	p.ECT = s.ecn
	p.Retx = sg.retx
	s.Stats.BytesSent += sg.len
	s.host.Send(p)
	s.paceAfter(sg.len + packet.EthIPOverhead + packet.TCPHeader + 12)
	if !s.rtoTimer.Armed() {
		s.rtoTimer.Reset(s.curRTO())
	}
}

func (s *Sender) curRTO() time.Duration {
	d := s.rto << s.backoff
	if s.rto > 0 && d/s.rto != 1<<s.backoff {
		d = maxRTO // overflow guard
	}
	if d > maxRTO {
		d = maxRTO
	}
	return d
}

// Handle implements packet.Handler, processing ACKs.
func (s *Sender) Handle(p *packet.Packet) {
	if p.Kind != packet.KindAck {
		return
	}
	now := s.eng.Now()
	s.Stats.AckedPackets++

	// ECN congestion response: at most once per SRTT.
	if meta, ok := p.App.(*ackMeta); ok && meta.ece && s.ecn && now >= s.ecnNextReact {
		hold := s.srtt
		if hold < 10*time.Millisecond {
			hold = 10 * time.Millisecond
		}
		s.ecnNextReact = now.Add(hold)
		s.Stats.ECNResponses++
		s.cc.OnLoss(now, s.pipeBytes)
	}

	var newlyDelivered int64
	// sample is a copy of the most recently sent delivered segment's state;
	// a copy rather than a pointer because cumulatively ACKed segments are
	// released to the freelist below and may be reused before the rate
	// sample is taken.
	var sample seg
	haveSample := false

	// Cumulative ACK advance.
	if p.Ack > s.sndUna {
		for len(s.segs) > 0 {
			sg := s.segs[0]
			if sg.seq+sg.len > p.Ack {
				break
			}
			if !sg.sacked {
				newlyDelivered += sg.len
				if !sg.lost {
					s.pipeBytes -= sg.len
				} else {
					s.retxPending--
				}
				s.accountDelivered(sg, now)
			}
			if !haveSample || sg.delivered > sample.delivered {
				sample = *sg
				haveSample = true
			}
			s.segs[0] = nil
			s.segs = s.segs[1:]
			s.freeSeg(sg)
		}
		if len(s.segs) == 0 && len(s.segBase) > 0 {
			s.segs = s.segBase[:0]
		}
		s.Stats.BytesAcked += p.Ack - s.sndUna
		s.sndUna = p.Ack
		s.backoff = 0
	}

	// SACK processing.
	if meta, ok := p.App.(*ackMeta); ok {
		for _, blk := range meta.sack {
			for _, sg := range s.segs {
				if sg.sacked || sg.seq < blk[0] {
					continue
				}
				if sg.seq+sg.len > blk[1] {
					break
				}
				sg.sacked = true
				newlyDelivered += sg.len
				if sg.lost {
					sg.lost = false
					s.retxPending--
				} else {
					s.pipeBytes -= sg.len
				}
				s.accountDelivered(sg, now)
				if end := sg.seq + sg.len; end > s.highSacked {
					s.highSacked = end
				}
				if !haveSample || sg.delivered > sample.delivered {
					sample = *sg
					haveSample = true
				}
			}
		}
	}

	// RTT from the timestamp echo (valid for retransmits too, since the
	// receiver echoes the arriving segment's own transmit timestamp).
	var rtt time.Duration
	if p.EchoTS > 0 {
		rtt = now.Sub(p.EchoTS)
		if rtt > 0 {
			s.updateRTT(rtt)
		}
	}

	// Loss detection. Two rules, as in Linux v5.4:
	//  - SACK: a hole is lost once the SACK frontier is dupThresh
	//    segments beyond it (first transmissions only);
	//  - RACK: any segment (retransmissions included) sent a reordering
	//    window before the most recently delivered segment is lost.
	reoWnd := s.srtt / 4
	if reoWnd < time.Millisecond {
		reoWnd = time.Millisecond
	}
	lossDetected := false
	for _, sg := range s.segs {
		if sg.sacked || sg.lost {
			continue
		}
		sackLost := !sg.retx && sg.seq+dupThresh*s.mss <= s.highSacked
		rackLost := s.rackTime > 0 && sg.sentAt.Add(reoWnd) < s.rackTime
		if sackLost || rackLost {
			sg.lost = true
			s.pipeBytes -= sg.len
			s.retxPending++
			lossDetected = true
		}
	}
	if lossDetected && !s.inRecovery {
		s.inRecovery = true
		s.recoveryEnd = s.sndNxt
		s.Stats.LossEvents++
		s.cc.OnLoss(now, s.pipeBytes)
	}
	if s.inRecovery && s.sndUna >= s.recoveryEnd {
		s.inRecovery = false
		s.cc.OnExitRecovery(now)
	}

	// Delivery-rate sample from the most recently sent delivered segment.
	var rateSample units.Rate
	rateAppLimited := false
	if haveSample && newlyDelivered > 0 {
		sendElapsed := sample.sentAt.Sub(sample.firstSentTime)
		ackElapsed := now.Sub(sample.deliveredTime)
		interval := sendElapsed
		if ackElapsed > interval {
			interval = ackElapsed
		}
		// Discard samples measured over less than the path min-RTT:
		// they arise from ACK compression and spurious-retransmission
		// bursts and would wildly overestimate bandwidth (same guard as
		// Linux's rate sampler).
		if interval > 0 && (s.minRTT <= 0 || interval >= s.minRTT) {
			rateSample = units.RateFromBytes(units.ByteSize(s.delivered-sample.delivered), interval)
		}
		rateAppLimited = sample.appLimited
		// Round accounting.
		if sample.delivered >= s.nextRoundDelivered {
			s.roundTrips++
			s.nextRoundDelivered = s.delivered
		}
	}

	if rateSample > 0 {
		s.lastRate = rateSample
	}
	if newlyDelivered > 0 || rtt > 0 {
		ack := AckSample{
			Now:            now,
			BytesAcked:     newlyDelivered,
			RTT:            rtt,
			MinRTT:         s.minRTT,
			SRTT:           s.srtt,
			Delivered:      s.delivered,
			DeliveryRate:   rateSample,
			RateAppLimited: rateAppLimited,
			Inflight:       s.pipeBytes,
			InRecovery:     s.inRecovery,
			RoundTrips:     s.roundTrips,
			MSS:            s.mss,
		}
		s.cc.OnAck(ack)
		if s.ackObs != nil {
			s.ackObs(ack)
		}
	}

	// Retransmission timer management.
	if s.pipeBytes > 0 || s.retxPending > 0 {
		if newlyDelivered > 0 {
			s.rtoTimer.Reset(s.curRTO())
		}
	} else if len(s.segs) == 0 {
		s.rtoTimer.Stop()
	}

	s.trySend()
}

// accountDelivered updates connection-level delivery state for a segment
// leaving the network.
func (s *Sender) accountDelivered(sg *seg, now sim.Time) {
	s.delivered += sg.len
	s.deliveredTime = now
	if sg.sentAt > s.firstSentTime {
		s.firstSentTime = sg.sentAt
	}
	if sg.sentAt > s.rackTime {
		s.rackTime = sg.sentAt
	}
}

func (s *Sender) updateRTT(rtt time.Duration) {
	if s.minRTT < 0 || rtt < s.minRTT {
		s.minRTT = rtt
	}
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		diff := s.srtt - rtt
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < minRTO {
		s.rto = minRTO
	}
	if s.rto > maxRTO {
		s.rto = maxRTO
	}
}

// onRTO fires when the retransmission timer expires: every outstanding
// segment is marked lost and recovery restarts from sndUna.
func (s *Sender) onRTO() {
	if len(s.segs) == 0 {
		return
	}
	now := s.eng.Now()
	s.Stats.RTOs++
	for _, sg := range s.segs {
		if sg.sacked || sg.lost {
			continue
		}
		sg.lost = true
		sg.retx = false
		s.pipeBytes -= sg.len
		s.retxPending++
	}
	s.inRecovery = true
	s.recoveryEnd = s.sndNxt
	s.backoff++
	s.cc.OnRTO(now, s.pipeBytes)
	s.rtoTimer.Reset(s.curRTO())
	// Pacing must not delay the recovery retransmit.
	s.paceNext = now
	s.trySend()
}
