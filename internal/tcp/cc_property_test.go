package tcp

import (
	"math"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// TestCubicTracksRFC8312Curve drives Cubic through a single post-loss epoch
// on an idealised ACK clock and checks the implemented window against the
// closed form of RFC 8312 §4.1, W(t) = C(t-K)^3 + W_max, at many sample
// points across both the concave (t < K) and convex (t > K) regions.
func TestCubicTracksRFC8312Curve(t *testing.T) {
	const mss = 1448
	c := NewCubic()
	c.Init(mss)
	c.cwnd = 100 * mss
	c.OnLoss(0, 0)

	wMax := 100.0
	k := math.Cbrt(wMax * (1 - cubicBeta) / cubicC) // ~4.217 s
	if math.Abs(c.segs(c.cwnd)-cubicBeta*wMax) > 1 {
		t.Fatalf("post-loss cwnd = %.1f segs, want %.1f", c.segs(c.cwnd), cubicBeta*wMax)
	}

	// Ack-clock the controller the way a real full window does: each round
	// trip delivers one cwnd of data, spread over several ACKs. The 100 ms
	// RTT keeps the TCP-friendly W_est of §4.2 below the cubic curve for
	// the whole epoch, so the cubic shape is what is under test.
	rtt := 100 * time.Millisecond
	const acksPerRTT = 10
	now := sim.At(0)
	prev := c.segs(c.cwnd)
	round := int64(0)
	type sample struct{ t, got, want float64 }
	var samples []sample
	for now.Seconds() < 2*k {
		round++
		chunk := c.cwnd / acksPerRTT
		for i := 0; i < acksPerRTT; i++ {
			now = now.Add(rtt / acksPerRTT)
			c.OnAck(AckSample{
				Now: now, BytesAcked: chunk, RTT: rtt, SRTT: rtt, MinRTT: rtt,
				MSS: mss, RoundTrips: round,
			})
		}
		got := c.segs(c.cwnd)
		if got < prev {
			t.Fatalf("cwnd shrank without loss at t=%.2fs: %.1f -> %.1f", now.Seconds(), prev, got)
		}
		prev = got
		// The implementation targets W(t+RTT); compare after a settle
		// period of a few RTTs so the one-RTT approach ramp has caught up.
		// The reference is RFC 8312's max of the cubic window (§4.1) and
		// the TCP-friendly estimate (§4.2).
		if now.Seconds() > 0.5 {
			ts := now.Seconds() + rtt.Seconds() - k
			wCubic := wMax + cubicC*ts*ts*ts
			wEst := cubicBeta*wMax + 3*(1-cubicBeta)/(1+cubicBeta)*(now.Seconds()/rtt.Seconds())
			samples = append(samples, sample{now.Seconds(), got, math.Max(wCubic, wEst)})
		}
	}
	if len(samples) < 50 {
		t.Fatalf("only %d curve samples", len(samples))
	}
	// Tolerance: 8%% of W_max absorbs ACK-clock discretisation and the
	// Reno-friendly floor of §4.2, which sits well below the cubic curve
	// for this W_max but nudges the early concave region.
	tol := 0.08 * wMax
	for _, s := range samples {
		if math.Abs(s.got-s.want) > tol {
			t.Errorf("t=%.2fs: cwnd %.1f segs, RFC 8312 W(t)=%.1f (tol %.1f)", s.t, s.got, s.want, tol)
		}
	}

	// Shape: concave below K (growth decelerating into the plateau), convex
	// above it (growth accelerating away from it).
	at := func(tm float64) float64 {
		best := samples[0]
		for _, s := range samples {
			if math.Abs(s.t-tm) < math.Abs(best.t-tm) {
				best = s
			}
		}
		return best.got
	}
	earlyGrowth := at(k/2) - at(1.0)
	lateConcave := at(k) - at(k/2)
	convexGrowth := at(2*k) - at(1.5*k)
	if earlyGrowth <= lateConcave {
		t.Errorf("concave region not decelerating: growth %.1f then %.1f segs", earlyGrowth, lateConcave)
	}
	if convexGrowth <= lateConcave {
		t.Errorf("convex region not accelerating: %.1f segs after K vs %.1f before", convexGrowth, lateConcave)
	}
	// Plateau: the window returns to W_max at t=K.
	if got := at(k); math.Abs(got-wMax) > tol {
		t.Errorf("cwnd at t=K is %.1f segs, want ~%.0f", got, wMax)
	}
}

// TestBBRProbeRTTCadence runs BBR on a real simulated path for 35 s and
// checks the PROBE_RTT invariants of the BBR v1 draft: the state is entered
// roughly every min-RTT window (10 s), each visit lasts at least
// bbrProbeRTTTime, and inflight drains to about bbrMinCwndSegs packets
// while probing.
func TestBBRProbeRTTCadence(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, 7*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgBBR)
	s.Start()
	b := s.CC().(*BBR)

	type episode struct {
		enter, exit sim.Time
		minInflight int64
	}
	var eps []episode
	inProbe := false
	probe := sim.NewTicker(tn.eng, 2*time.Millisecond, func() {
		is := b.State() == "PROBE_RTT"
		now := tn.eng.Now()
		switch {
		case is && !inProbe:
			eps = append(eps, episode{enter: now, minInflight: s.Inflight()})
		case is && inProbe:
			if fl := s.Inflight(); fl < eps[len(eps)-1].minInflight {
				eps[len(eps)-1].minInflight = fl
			}
		case !is && inProbe:
			eps[len(eps)-1].exit = now
		}
		inProbe = is
	})
	probe.Start(false)
	tn.eng.Run(sim.At(35 * time.Second))

	if len(eps) < 2 {
		t.Fatalf("only %d PROBE_RTT episodes in 35 s, want >= 2 (10 s cadence)", len(eps))
	}
	for i, ep := range eps {
		if ep.exit == 0 {
			continue // still probing at trace end
		}
		if dur := ep.exit.Sub(ep.enter); dur < bbrProbeRTTTime {
			t.Errorf("episode %d lasted %v, want >= %v", i, dur, bbrProbeRTTTime)
		}
		// Inflight must drain to roughly the 4-packet PROBE_RTT floor
		// (one extra MSS of slack for the segment in flight when the
		// sampler ticks).
		floor := int64(bbrMinCwndSegs+1) * packet.MSS
		if ep.minInflight > floor {
			t.Errorf("episode %d: min inflight %d bytes, want <= %d (~%d pkts)",
				i, ep.minInflight, floor, bbrMinCwndSegs)
		}
	}
	for i := 1; i < len(eps); i++ {
		gap := eps[i].enter.Sub(eps[i-1].enter)
		if gap < 9*time.Second || gap > 13*time.Second {
			t.Errorf("PROBE_RTT cadence gap %v, want ~%v", gap, bbrMinRTTWindow)
		}
	}
}

// TestBBRGainCycleVisitsAllPhases drives a synthetic ACK clock through
// PROBE_BW and checks the pacing-gain cycle: all 8 phases are visited in
// cyclic order, phase 0 paces at 1.25, phase 1 at 0.75, and the six cruise
// phases at 1.0.
func TestBBRGainCycleVisitsAllPhases(t *testing.T) {
	const mss = 1448
	b := NewBBR()
	b.Init(mss)
	b.rtProp = 10 * time.Millisecond
	b.btlBw = []bwSample{{rate: units.Mbps(25), round: 0}}
	b.filledPipe = true
	b.enterProbeBW(sim.At(0))

	if b.cycleIndex != 2 {
		t.Fatalf("enterProbeBW starts in phase %d, want 2", b.cycleIndex)
	}

	visited := map[int]bool{b.cycleIndex: true}
	var order []int
	prevIdx := b.cycleIndex
	now := sim.At(0)
	bdp := b.bdpBytes(1.0)
	for i := 0; i < 400 && len(visited) < bbrGainCycleLen+1; i++ {
		now = now.Add(3 * time.Millisecond)
		inflight := bdp // cruise: around one BDP
		if b.cycleIndex == 0 {
			inflight = b.bdpBytes(bbrProbeGainUp) + mss // probe-up fills the pipe
		}
		b.OnAck(AckSample{
			Now: now, BytesAcked: mss, RTT: b.rtProp, SRTT: b.rtProp, MinRTT: b.rtProp,
			MSS: mss, RoundTrips: int64(i), Inflight: inflight,
			DeliveryRate: units.Mbps(25),
		})
		if b.state != bbrProbeBW {
			t.Fatalf("left PROBE_BW for %s at i=%d", b.State(), i)
		}
		if b.cycleIndex != prevIdx {
			if want := (prevIdx + 1) % bbrGainCycleLen; b.cycleIndex != want {
				t.Fatalf("phase jumped %d -> %d, want %d", prevIdx, b.cycleIndex, want)
			}
			order = append(order, b.cycleIndex)
			visited[b.cycleIndex] = true
			prevIdx = b.cycleIndex
		}
		var wantGain float64
		switch b.cycleIndex {
		case 0:
			wantGain = bbrProbeGainUp
		case 1:
			wantGain = bbrProbeGainDown
		default:
			wantGain = 1.0
		}
		if b.pacingGain != wantGain {
			t.Fatalf("phase %d pacing gain %v, want %v", b.cycleIndex, b.pacingGain, wantGain)
		}
	}
	for ph := 0; ph < bbrGainCycleLen; ph++ {
		if !visited[ph] {
			t.Errorf("gain-cycle phase %d never visited (order %v)", ph, order)
		}
	}
}

// TestBBRProbeRTTCwndFloor: the PROBE_RTT window is pinned at the 4-segment
// minimum for the whole visit, straight from the state machine with a
// synthetic clock.
func TestBBRProbeRTTCwndFloor(t *testing.T) {
	const mss = 1448
	b := NewBBR()
	b.Init(mss)
	b.rtProp = 10 * time.Millisecond
	b.rtPropAt = sim.At(0)
	b.btlBw = []bwSample{{rate: units.Mbps(25), round: 0}}
	b.filledPipe = true
	b.enterProbeBW(sim.At(0))

	// Establish the min, then feed slightly-above-min RTTs past the window:
	// the estimate goes stale and the state machine must probe.
	now := sim.At(0)
	entered := false
	for i := 0; i < 12_000; i++ {
		now = now.Add(time.Millisecond)
		b.OnAck(AckSample{
			Now: now, BytesAcked: mss, RTT: b.rtProp + time.Millisecond,
			SRTT: b.rtProp, MinRTT: b.rtProp, MSS: mss, RoundTrips: int64(i / 10),
			Inflight: b.bdpBytes(1.0), DeliveryRate: units.Mbps(25),
		})
		if b.state == bbrProbeRTT {
			entered = true
			if b.cwnd != bbrMinCwndSegs*mss {
				t.Fatalf("PROBE_RTT cwnd = %d, want %d", b.cwnd, bbrMinCwndSegs*mss)
			}
		}
	}
	if !entered {
		t.Fatal("stale min-RTT never triggered PROBE_RTT")
	}
	if b.state == bbrProbeRTT {
		t.Fatal("PROBE_RTT never exited")
	}
}
