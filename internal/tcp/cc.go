// Package tcp implements the TCP senders that serve as the paper's
// competing iperf flows: a sender with a SACK scoreboard, RFC 6298
// retransmission timing, NewReno-style recovery, delivery-rate sampling
// (for BBR), optional pacing, and pluggable congestion control — Cubic
// (RFC 8312), BBR v1.0, Reno, and Vegas.
//
// The implementation purposefully skips connection establishment and
// teardown (flows start established, as in most simulation studies); all of
// the congestion-relevant machinery — cwnd, ssthresh, RTO, fast retransmit,
// SACK-based loss detection, pacing — is implemented in full, because the
// paper's findings depend on exactly these dynamics.
package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// AckSample summarises one ACK arrival for the congestion controller.
type AckSample struct {
	Now        sim.Time
	BytesAcked int64 // newly cumulatively-acked plus newly-SACKed bytes

	// RTT is the round-trip sample from the timestamp echo, 0 if none.
	RTT time.Duration
	// MinRTT is the connection's lifetime minimum RTT.
	MinRTT time.Duration
	// SRTT is the smoothed RTT estimate.
	SRTT time.Duration

	// Delivered is the connection's total delivered bytes.
	Delivered int64
	// DeliveryRate is the rate sample computed per the delivery-rate
	// estimation algorithm (0 if unavailable).
	DeliveryRate units.Rate
	// RateAppLimited marks the rate sample as taken while the sender was
	// application-limited, so it only raises (never lowers) a max filter.
	RateAppLimited bool

	// Inflight is bytes outstanding after processing this ACK.
	Inflight int64
	// InRecovery reports whether the sender is in loss recovery.
	InRecovery bool
	// RoundTrips counts completed delivery rounds (for BBR's filters).
	RoundTrips int64
	// MSS is the sender's maximum segment size in bytes.
	MSS int64
}

// CongestionControl is the pluggable congestion-control algorithm driven by
// the Sender. Implementations are pure state machines: they never touch the
// network directly.
type CongestionControl interface {
	// Name returns the algorithm name, e.g. "cubic".
	Name() string
	// Init is called once with the sender's MSS before any traffic.
	Init(mss int64)
	// OnAck processes an ACK arrival.
	OnAck(s AckSample)
	// OnLoss is called once per loss event (entering recovery), with the
	// bytes in flight at detection time.
	OnLoss(now sim.Time, inflight int64)
	// OnRTO is called when the retransmission timer fires.
	OnRTO(now sim.Time, inflight int64)
	// OnExitRecovery is called when recovery completes.
	OnExitRecovery(now sim.Time)
	// CwndBytes returns the current congestion window in bytes.
	CwndBytes() int64
	// PacingRate returns the pacing rate, or 0 for pure window clocking.
	PacingRate() units.Rate
}

// CCState is a point-in-time snapshot of a congestion controller's internal
// model, the simulator's analogue of Linux's tcp_probe / ss -i output. Only
// the fields relevant to the algorithm are populated; the rest stay zero.
// Snapshots are cheap (a handful of loads) so probes may take one per ACK.
type CCState struct {
	// Mode is the algorithm's phase label: "slow_start"/"avoidance" for the
	// loss-based family, the state-machine phase (STARTUP, DRAIN, PROBE_BW,
	// PROBE_RTT) for BBR/BBRv2.
	Mode string
	// SsthreshBytes is the slow-start threshold (loss-based algorithms).
	SsthreshBytes int64
	// WMaxSegs and KSec are Cubic's epoch anchor: the window (in segments)
	// where loss last occurred and the cubic-function inflection time.
	WMaxSegs float64
	KSec     float64
	// BtlBw and RTProp are the BBR path model: max-filtered bottleneck
	// bandwidth and min-filtered round-trip propagation delay.
	BtlBw  units.Rate
	RTProp time.Duration
	// InflightHiBytes is BBRv2's loss-derived inflight bound (0 = unset).
	InflightHiBytes int64
	// BaseRTT is the delay-based floor estimate (Vegas, LEDBAT).
	BaseRTT time.Duration
}

// Inspector is the optional introspection side of a CongestionControl:
// controllers that implement it expose their internal model for the probe
// layer. All controllers shipped by this package implement it; external
// ones may not, so callers must type-assert.
type Inspector interface {
	InspectCC() CCState
}

// Algorithm names accepted by New.
const (
	AlgCubic = "cubic"
	AlgBBR   = "bbr"
	AlgReno  = "reno"
	AlgVegas = "vegas"
)

// New returns a congestion controller by name. It panics on an unknown
// name, which is a configuration error.
func New(name string) CongestionControl {
	switch name {
	case AlgCubic:
		return NewCubic()
	case AlgBBR:
		return NewBBR()
	case AlgBBR2:
		return NewBBR2()
	case AlgReno:
		return NewReno()
	case AlgVegas:
		return NewVegas()
	case AlgLEDBAT:
		return NewLEDBAT()
	}
	panic("tcp: unknown congestion control " + name)
}

// NewBulk returns n independent controllers of the named algorithm. Cubic
// controllers — the default for large flow populations — come from one
// backing array, so constructing hundreds costs one allocation; other
// algorithms fall back to per-controller construction.
func NewBulk(name string, n int) []CongestionControl {
	out := make([]CongestionControl, n)
	if name == AlgCubic {
		arr := make([]Cubic, n)
		for i := range out {
			out[i] = &arr[i]
		}
		return out
	}
	for i := range out {
		out[i] = New(name)
	}
	return out
}
