package tcp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// testNet is a two-host dumbbell: sender host(s) -> bottleneck shaper ->
// one-way delay -> receiver host, with the reverse path delay-only.
type testNet struct {
	eng    *sim.Engine
	shaper *netem.Shaper
	queue  *netem.DropTail
	sndH   []*netem.Host
	rcvH   []*netem.Host
	ids    uint64
}

// newTestNet builds n connection pairs sharing one bottleneck of the given
// rate, queue limit, and symmetric one-way delay owd.
func newTestNet(n int, rate units.Rate, qlimit units.ByteSize, owd time.Duration) *testNet {
	tn := &testNet{eng: sim.NewEngine(7)}
	rcvRouter := netem.NewRouter()
	sndRouter := netem.NewRouter()

	tn.queue = netem.NewDropTail(qlimit)
	fwdDelay := netem.NewDelay(tn.eng, owd, rcvRouter)
	tn.shaper = netem.NewShaper(tn.eng, rate, 2*packet.MTU, tn.queue, fwdDelay)
	revDelay := netem.NewDelay(tn.eng, owd, sndRouter)

	for i := 0; i < n; i++ {
		snd := netem.NewHost(tn.eng, packet.Addr(100+i), tn.shaper, &tn.ids)
		rcv := netem.NewHost(tn.eng, packet.Addr(200+i), revDelay, &tn.ids)
		sndRouter.Route(snd.Addr, snd)
		rcvRouter.Route(rcv.Addr, rcv)
		tn.sndH = append(tn.sndH, snd)
		tn.rcvH = append(tn.rcvH, rcv)
	}
	return tn
}

// pair wires up sender i with algorithm alg and returns both endpoints.
func (tn *testNet) pair(i int, alg string) (*Sender, *Receiver) {
	flow := packet.FlowID(i + 1)
	s := NewSender(tn.sndH[i], flow, tn.rcvH[i].Addr, New(alg))
	r := NewReceiver(tn.rcvH[i], flow, tn.sndH[i].Addr)
	return s, r
}

func TestSingleFlowSaturatesLink(t *testing.T) {
	for _, alg := range []string{AlgReno, AlgCubic, AlgBBR, AlgVegas} {
		t.Run(alg, func(t *testing.T) {
			rate := units.Mbps(25)
			rtt := 16 * time.Millisecond
			bdp := units.BDP(rate, rtt)
			tn := newTestNet(1, rate, 2*bdp, rtt/2)
			s, r := tn.pair(0, alg)
			s.Start()
			tn.eng.Run(sim.At(20 * time.Second))
			// Skip 5 s of startup; measure 15 s of steady state.
			goodput := units.RateFromBytes(units.ByteSize(r.BytesReceived), 20*time.Second)
			if goodput.Mbit() < 20 {
				t.Errorf("%s goodput = %.1f Mb/s on a 25 Mb/s link", alg, goodput.Mbit())
			}
			if goodput.Mbit() > 25.1 {
				t.Errorf("%s goodput = %.1f Mb/s exceeds link rate", alg, goodput.Mbit())
			}
		})
	}
}

func TestReceiverDeliversInOrder(t *testing.T) {
	rate := units.Mbps(10)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt)/2, rtt/2) // tiny queue: heavy loss
	s, r := tn.pair(0, AlgCubic)
	var delivered int64
	r.OnDeliver = func(n int64) { delivered += n }
	s.Start()
	tn.eng.Run(sim.At(10 * time.Second))
	if delivered != r.BytesReceived {
		t.Errorf("OnDeliver total %d != BytesReceived %d", delivered, r.BytesReceived)
	}
	if r.BytesReceived == 0 {
		t.Fatal("nothing delivered")
	}
	if s.Stats.Retransmits == 0 {
		t.Error("expected retransmissions with a half-BDP queue")
	}
	// Everything acked must have been received: sndUna == rcvNxt
	// eventually (after drain).
	s.StopSending()
	tn.eng.Run(sim.At(15 * time.Second))
	if s.sndUna != r.rcvNxt {
		t.Errorf("sndUna %d != rcvNxt %d after drain", s.sndUna, r.rcvNxt)
	}
}

func TestByteLimitedTransferCompletes(t *testing.T) {
	rate := units.Mbps(10)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt), rtt/2)
	s, r := tn.pair(0, AlgCubic)
	const total = 5_000_000
	s.SetLimit(total)
	s.Start()
	tn.eng.Run(sim.At(30 * time.Second))
	if r.BytesReceived != total {
		t.Errorf("received %d bytes, want %d", r.BytesReceived, total)
	}
	if s.Stats.BytesAcked != total {
		t.Errorf("acked %d bytes, want %d", s.Stats.BytesAcked, total)
	}
	if s.Inflight() != 0 {
		t.Errorf("inflight %d after completion", s.Inflight())
	}
}

func TestCubicFillsQueueBBRDoesNot(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	bdp := units.BDP(rate, rtt)
	qlimit := 7 * bdp // bloated buffer

	measure := func(alg string) (avgOcc float64) {
		tn := newTestNet(1, rate, qlimit, rtt/2)
		s, _ := tn.pair(0, alg)
		s.Start()
		samples, sum := 0, 0.0
		tick := sim.NewTicker(tn.eng, 50*time.Millisecond, nil)
		_ = tick
		tn.eng.Schedule(5*time.Second, func() {}) // warmup marker
		probe := sim.NewTicker(tn.eng, 50*time.Millisecond, func() {
			if tn.eng.Now() > sim.At(5*time.Second) {
				sum += float64(tn.queue.Bytes())
				samples++
			}
		})
		probe.Start(false)
		tn.eng.Run(sim.At(30 * time.Second))
		return sum / float64(samples)
	}

	cubicOcc := measure(AlgCubic)
	bbrOcc := measure(AlgBBR)
	// Cubic should hold a large standing queue (well above 2 BDP on
	// average given the 7x limit); BBR should keep it near or below 1 BDP.
	if cubicOcc < float64(2*bdp) {
		t.Errorf("Cubic avg queue %.0f B, want > %d (2 BDP) in a bloated buffer", cubicOcc, 2*bdp)
	}
	if bbrOcc > float64(2*bdp) {
		t.Errorf("BBR avg queue %.0f B, want <= %d (2 BDP): inflight cap failed", bbrOcc, 2*bdp)
	}
	if bbrOcc >= cubicOcc {
		t.Errorf("BBR queue %.0f >= Cubic queue %.0f: paper's central contrast lost", bbrOcc, cubicOcc)
	}
}

func TestIntraProtocolFairness(t *testing.T) {
	for _, alg := range []string{AlgCubic, AlgBBR} {
		t.Run(alg, func(t *testing.T) {
			rate := units.Mbps(30)
			rtt := 16 * time.Millisecond
			tn := newTestNet(2, rate, 2*units.BDP(rate, rtt), rtt/2)
			s1, r1 := tn.pair(0, alg)
			s2, r2 := tn.pair(1, alg)
			s1.Start()
			s2.Start()
			tn.eng.Run(sim.At(60 * time.Second))
			g1 := float64(r1.BytesReceived)
			g2 := float64(r2.BytesReceived)
			ratio := g1 / g2
			if ratio < 1 {
				ratio = 1 / ratio
			}
			// Same-protocol flows should converge near equal shares
			// (paper's related work: balanced intra-protocol bitrates).
			if ratio > 1.8 {
				t.Errorf("%s vs %s share ratio %.2f, want < 1.8 (g1=%.0f g2=%.0f)",
					alg, alg, ratio, g1, g2)
			}
		})
	}
}

func TestRTORecovery(t *testing.T) {
	// Break the path entirely for a while: all inflight lost, RTO must
	// fire and the connection must recover when the path heals.
	rate := units.Mbps(10)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt), rtt/2)
	s, r := tn.pair(0, AlgCubic)

	// Blackhole: swap receiver's handler to drop data between t=2s and 4s.
	rcv := tn.rcvH[0]
	dropping := false
	orig := r
	rcv.Bind(1, packet.HandlerFunc(func(p *packet.Packet) {
		if dropping {
			return
		}
		orig.Handle(p)
	}))
	tn.eng.Schedule(2*time.Second, func() { dropping = true })
	tn.eng.Schedule(4*time.Second, func() { dropping = false })

	s.Start()
	tn.eng.Run(sim.At(10 * time.Second))
	if s.Stats.RTOs == 0 {
		t.Error("no RTO during a 2 s blackhole")
	}
	// Delivery must resume after healing.
	before := r.BytesReceived
	tn.eng.Run(sim.At(12 * time.Second))
	if r.BytesReceived <= before {
		t.Error("connection did not recover after blackhole")
	}
}

func TestBBRReachesProbeBW(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, 2*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgBBR)
	s.Start()
	tn.eng.Run(sim.At(5 * time.Second))
	b := s.CC().(*BBR)
	if b.State() != "PROBE_BW" {
		t.Errorf("BBR state after 5 s = %s, want PROBE_BW", b.State())
	}
	if est := b.BtlBw().Mbit(); est < 20 || est > 30 {
		t.Errorf("BtlBw estimate %.1f Mb/s, want ~25", est)
	}
	if rt := b.RTProp(); rt <= 0 || rt > 25*time.Millisecond {
		t.Errorf("RTProp %v, want ~16ms", rt)
	}
}

func TestBBRProbeRTTVisited(t *testing.T) {
	// A competing Cubic flow keeps a standing queue, so BBR's min-RTT
	// estimate goes stale and PROBE_RTT must trigger within the 10 s
	// window. (A solo BBR flow can legitimately skip PROBE_RTT: its drain
	// phases re-touch the true minimum.)
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(2, rate, 7*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgBBR)
	s2, _ := tn.pair(1, AlgCubic)
	s.Start()
	s2.Start()
	b := s.CC().(*BBR)
	sawProbeRTT := false
	probe := sim.NewTicker(tn.eng, 10*time.Millisecond, func() {
		if b.State() == "PROBE_RTT" {
			sawProbeRTT = true
		}
	})
	probe.Start(false)
	tn.eng.Run(sim.At(25 * time.Second))
	if !sawProbeRTT {
		t.Error("BBR never entered PROBE_RTT in 25 s (min-RTT window is 10 s)")
	}
}

func TestCubicBeatsRenoOnLongFatPipe(t *testing.T) {
	// Sanity: on a high-BDP path with random early losses Cubic should
	// recover its window faster than Reno. Compare goodput on a lossy
	// 100 Mb/s, 40 ms RTT path.
	run := func(alg string) int64 {
		rate := units.Mbps(100)
		rtt := 40 * time.Millisecond
		tn := newTestNet(1, rate, 2*units.BDP(rate, rtt), rtt/2)
		s, r := tn.pair(0, alg)
		s.Start()
		tn.eng.Run(sim.At(60 * time.Second))
		return r.BytesReceived
	}
	cubic := run(AlgCubic)
	reno := run(AlgReno)
	if cubic < reno*95/100 {
		t.Errorf("Cubic (%d B) materially slower than Reno (%d B) on long fat pipe", cubic, reno)
	}
}

func TestVegasKeepsQueueSmall(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	bdp := units.BDP(rate, rtt)
	tn := newTestNet(1, rate, 7*bdp, rtt/2)
	s, _ := tn.pair(0, AlgVegas)
	s.Start()
	sum, n := 0.0, 0
	probe := sim.NewTicker(tn.eng, 50*time.Millisecond, func() {
		if tn.eng.Now() > sim.At(5*time.Second) {
			sum += float64(tn.queue.Bytes())
			n++
		}
	})
	probe.Start(false)
	tn.eng.Run(sim.At(20 * time.Second))
	avg := sum / float64(n)
	// Vegas targets alpha..beta segments of queue: far below 1 BDP here.
	if avg > float64(bdp) {
		t.Errorf("Vegas avg queue %.0f B, want < 1 BDP (%d B)", avg, bdp)
	}
}

func TestStopSendingDrains(t *testing.T) {
	rate := units.Mbps(10)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, 2*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgCubic)
	s.Start()
	tn.eng.Schedule(5*time.Second, s.StopSending)
	tn.eng.Run(sim.At(8 * time.Second))
	if s.Inflight() != 0 {
		t.Errorf("inflight %d two seconds after StopSending", s.Inflight())
	}
	sent := s.Stats.BytesSent
	tn.eng.Run(sim.At(10 * time.Second))
	if s.Stats.BytesSent != sent {
		t.Error("sender transmitted after StopSending and drain")
	}
}

func TestNewUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(\"nope\") did not panic")
		}
	}()
	New("nope")
}

func TestSRTTTracksPathRTT(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt)/2, rtt/2)
	s, _ := tn.pair(0, AlgVegas) // small queue, delay-based: little queueing
	s.Start()
	tn.eng.Run(sim.At(10 * time.Second))
	if s.SRTT() < rtt || s.SRTT() > rtt+20*time.Millisecond {
		t.Errorf("SRTT = %v, want within [%v, %v+20ms]", s.SRTT(), rtt, rtt)
	}
}

func TestReceiverSACKBlocks(t *testing.T) {
	// Drive the receiver directly with a gap and verify the ACK carries
	// SACK ranges.
	eng := sim.NewEngine(1)
	var ids uint64
	var sentAcks []*packet.Packet
	sndSide := netem.NewHost(eng, 1, packet.HandlerFunc(func(p *packet.Packet) {}), &ids)
	_ = sndSide
	rcvOut := packet.HandlerFunc(func(p *packet.Packet) { sentAcks = append(sentAcks, p) })
	rcv := netem.NewHost(eng, 2, rcvOut, &ids)
	r := NewReceiver(rcv, 1, 1)

	data := func(seq int64, n int) *packet.Packet {
		return &packet.Packet{Flow: 1, Kind: packet.KindData, Seq: seq, Payload: n, Size: n + 54}
	}
	r.Handle(data(0, 1000))    // in order
	r.Handle(data(2000, 1000)) // gap at [1000,2000)
	eng.Run(sim.End)

	if len(sentAcks) == 0 {
		t.Fatal("no ACK generated for out-of-order data")
	}
	last := sentAcks[len(sentAcks)-1]
	if last.Ack != 1000 {
		t.Errorf("cumulative ack = %d, want 1000", last.Ack)
	}
	meta := last.App.(*ackMeta)
	if len(meta.sack) != 1 || meta.sack[0] != [2]int64{2000, 3000} {
		t.Errorf("sack = %v, want [[2000 3000]]", meta.sack)
	}

	// Fill the hole; cumulative ack should jump past the SACKed range.
	sentAcks = nil
	r.Handle(data(1000, 1000))
	eng.Run(sim.End)
	if len(sentAcks) == 0 || sentAcks[len(sentAcks)-1].Ack != 3000 {
		t.Fatalf("hole fill did not advance ack to 3000: %v", sentAcks)
	}
}

func TestReceiverOOOMerging(t *testing.T) {
	eng := sim.NewEngine(1)
	var ids uint64
	out := packet.HandlerFunc(func(p *packet.Packet) {})
	rcv := netem.NewHost(eng, 2, out, &ids)
	r := NewReceiver(rcv, 1, 1)
	data := func(seq int64, n int) *packet.Packet {
		return &packet.Packet{Flow: 1, Kind: packet.KindData, Seq: seq, Payload: n, Size: n + 54}
	}
	// Insert out-of-order in scrambled order with overlap-adjacency.
	r.Handle(data(3000, 1000))
	r.Handle(data(1000, 1000))
	r.Handle(data(2000, 1000))
	if len(r.ooo) != 1 || r.ooo[0] != (span{1000, 4000}) {
		t.Fatalf("ooo = %v, want single span [1000,4000)", r.ooo)
	}
	r.Handle(data(0, 1000))
	if r.rcvNxt != 4000 {
		t.Errorf("rcvNxt = %d, want 4000 after filling the first hole", r.rcvNxt)
	}
	if r.BytesReceived != 4000 {
		t.Errorf("BytesReceived = %d, want 4000", r.BytesReceived)
	}
}

func TestDelayedAckTimer(t *testing.T) {
	eng := sim.NewEngine(1)
	var ids uint64
	var acks []sim.Time
	out := packet.HandlerFunc(func(p *packet.Packet) { acks = append(acks, eng.Now()) })
	rcv := netem.NewHost(eng, 2, out, &ids)
	r := NewReceiver(rcv, 1, 1)
	// A single segment should be acked by the 40 ms delayed-ack timer.
	r.Handle(&packet.Packet{Flow: 1, Kind: packet.KindData, Seq: 0, Payload: 1448, Size: 1502})
	eng.Run(sim.End)
	if len(acks) != 1 || acks[0] != sim.At(delAckTimeout) {
		t.Errorf("acks = %v, want one at 40ms", acks)
	}
}

func TestSecondSegmentAckedImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	var ids uint64
	var acks []sim.Time
	out := packet.HandlerFunc(func(p *packet.Packet) { acks = append(acks, eng.Now()) })
	rcv := netem.NewHost(eng, 2, out, &ids)
	r := NewReceiver(rcv, 1, 1)
	r.Handle(&packet.Packet{Flow: 1, Kind: packet.KindData, Seq: 0, Payload: 1448, Size: 1502})
	r.Handle(&packet.Packet{Flow: 1, Kind: packet.KindData, Seq: 1448, Payload: 1448, Size: 1502})
	if len(acks) != 1 || acks[0] != 0 {
		t.Errorf("acks = %v, want immediate ack of second segment", acks)
	}
	eng.Run(sim.End)
	if len(acks) != 1 {
		t.Errorf("delayed-ack timer fired despite immediate ack: %v", acks)
	}
}

func TestEnqueueDrivesTransfer(t *testing.T) {
	rate := units.Mbps(10)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, 2*units.BDP(rate, rtt), rtt/2)
	s, r := tn.pair(0, AlgCubic)
	s.SetLimit(1) // bounded source from the start
	s.Start()
	// Three application writes, spaced out.
	for i := 0; i < 3; i++ {
		i := i
		tn.eng.Schedule(time.Duration(i)*2*time.Second, func() { s.Enqueue(500_000) })
	}
	tn.eng.Run(sim.At(20 * time.Second))
	want := int64(1 + 3*500_000)
	if r.BytesReceived != want {
		t.Errorf("received %d, want %d", r.BytesReceived, want)
	}
	if s.Outstanding() != 0 {
		t.Errorf("outstanding %d after drain", s.Outstanding())
	}
}

func TestEnqueueIgnoredOnUnboundedSource(t *testing.T) {
	eng := sim.NewEngine(1)
	var ids uint64
	h := netem.NewHost(eng, 1, packet.HandlerFunc(func(p *packet.Packet) {}), &ids)
	s := NewSender(h, 1, 2, New(AlgReno))
	s.Enqueue(100)
	if s.limit != 0 && s.Outstanding() != 0 {
		// Unbounded senders have no limit; Enqueue is a no-op... unless
		// the sender was never bounded, in which case limit stays 0.
		t.Errorf("Enqueue changed unbounded sender state: limit=%d", s.limit)
	}
}
