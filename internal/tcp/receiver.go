package tcp

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

const (
	// delAckTimeout bounds how long a receiver holds a delayed ACK.
	delAckTimeout = 40 * time.Millisecond
	// delAckCount acknowledges every Nth full-size segment immediately.
	delAckCount = 2
	// maxSackBlocks caps the SACK ranges carried per ACK.
	maxSackBlocks = 3
	// ackBaseSize is Ethernet+IP+TCP plus the timestamp option.
	ackBaseSize = packet.EthIPOverhead + packet.TCPHeader + 12
	// sackBlockSize is the wire cost of one SACK range.
	sackBlockSize = 8
)

// span is a half-open received byte range beyond the cumulative frontier.
type span struct{ start, end int64 }

// Receiver is the TCP data sink: it reassembles the byte stream, generates
// cumulative + SACK acknowledgements with delayed-ACK behaviour, and counts
// goodput for the application.
type Receiver struct {
	host *netem.Host
	eng  *sim.Engine
	flow packet.FlowID
	peer packet.Addr

	rcvNxt  int64
	ooo     []span
	oooBuf  [8]span // inline backing for ooo; spills to the heap past 8 holes
	lastTS  sim.Time
	pending int  // full-size segments since last ACK
	ceSeen  bool // CE mark arrived since the last ACK

	delAck sim.Timer
	// metaPool supplies ackMeta records. It points at ownPool by default;
	// population receivers share one pool via SetAckPool so SACK episodes
	// across hundreds of flows recycle a single freelist.
	metaPool *ackMetaPool
	ownPool  ackMetaPool

	// BytesReceived counts distinct payload bytes delivered in order.
	BytesReceived int64
	// DupSegments counts retransmitted data the receiver had already seen.
	DupSegments int
	// OnDeliver, when set, is invoked with newly in-order byte counts.
	OnDeliver func(n int64)
	// sink, when set, takes precedence over OnDeliver. Attaching a
	// pointer-shaped value through the interface costs no allocation,
	// unlike the closure (or method value) OnDeliver needs.
	sink DeliverSink
}

// DeliverSink observes newly in-order byte counts; see Receiver.SetSink.
type DeliverSink interface{ Deliver(n int64) }

// SetSink registers s to observe in-order deliveries, taking precedence
// over OnDeliver.
func (r *Receiver) SetSink(s DeliverSink) { r.sink = s }

// NewReceiver creates a receiver for flow on host, acknowledging to peer.
// It binds itself to the host for data delivery.
func NewReceiver(host *netem.Host, flow packet.FlowID, peer packet.Addr) *Receiver {
	r := &Receiver{}
	r.Init(host, flow, peer)
	return r
}

func receiverAck(a any) { a.(*Receiver).sendAck() }

// Init readies a (possibly embedded, zero-valued) Receiver in place —
// the allocation-free twin of NewReceiver for callers that lay receivers
// out in bulk arrays.
func (r *Receiver) Init(host *netem.Host, flow packet.FlowID, peer packet.Addr) {
	r.host = host
	r.eng = host.Engine()
	r.flow = flow
	r.peer = peer
	r.ooo = r.oooBuf[:0]
	r.metaPool = &r.ownPool
	r.delAck.InitCall(r.eng, receiverAck, r)
	host.Bind(flow, r)
}

// SetAckPool shares one ACK-option freelist across receivers (population
// slots), replacing the receiver's private pool.
func (r *Receiver) SetAckPool(p *ackMetaPool) { r.metaPool = p }

// AckPool exposes the pool type for wiring shared state; see SetAckPool.
type AckPool = ackMetaPool

// RcvNxt returns the cumulative in-order frontier.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// ResetAt rearms the receiver for a fresh connection whose payload starts
// at seq (the peer Sender's post-Reset sndNxt). Data from the previous
// lifetime still in flight ends at or below seq, so it classifies as
// entirely old and only provokes a harmless duplicate ACK. Cumulative
// counters (BytesReceived, DupSegments) are retained.
func (r *Receiver) ResetAt(seq int64) {
	r.rcvNxt = seq
	r.ooo = r.ooo[:0]
	r.pending = 0
	r.ceSeen = false
	r.delAck.Stop()
}

// Handle implements packet.Handler, processing data segments.
func (r *Receiver) Handle(p *packet.Packet) {
	if p.Kind != packet.KindData {
		return
	}
	r.lastTS = p.SentAt
	if p.CE {
		r.ceSeen = true
	}
	seq, end := p.Seq, p.Seq+int64(p.Payload)

	switch {
	case end <= r.rcvNxt:
		// Entirely old: a spurious retransmission. ACK immediately so
		// the sender can repair its view.
		r.DupSegments++
		r.sendAck()
		return
	case seq <= r.rcvNxt:
		// In order — or straddling the frontier (a retransmission whose
		// prefix was already delivered): only the bytes from rcvNxt on are
		// new, and advance counts exactly those. Buffering the whole range
		// as out-of-order instead would advertise SACK blocks below the
		// cumulative ACK (forbidden by RFC 2018).
		hadHole := len(r.ooo) > 0
		r.advance(end)
		if hadHole {
			// Filling a hole: ACK now to release the sender promptly.
			r.sendAck()
			return
		}
		r.pending++
		if r.pending >= delAckCount {
			r.sendAck()
		} else if !r.delAck.Armed() {
			r.delAck.Reset(delAckTimeout)
		}
		return
	default:
		// Out of order: buffer and send an immediate duplicate ACK with
		// SACK information.
		r.insertOOO(span{seq, end})
		r.sendAck()
	}
}

// advance moves the cumulative frontier to at least end, absorbing any
// out-of-order ranges that become contiguous.
func (r *Receiver) advance(end int64) {
	grown := end - r.rcvNxt
	r.rcvNxt = end
	// Drop absorbed spans by compacting in place rather than re-slicing
	// from the front: the list stays anchored to its backing array, so
	// insertOOO's append never reallocates in steady state. The copy is
	// over at most a few spans.
	drop := 0
	for drop < len(r.ooo) && r.ooo[drop].start <= r.rcvNxt {
		if r.ooo[drop].end > r.rcvNxt {
			grown += r.ooo[drop].end - r.rcvNxt
			r.rcvNxt = r.ooo[drop].end
		}
		drop++
	}
	if drop > 0 {
		n := copy(r.ooo, r.ooo[drop:])
		r.ooo = r.ooo[:n]
	}
	r.BytesReceived += grown
	if r.sink != nil {
		r.sink.Deliver(grown)
	} else if r.OnDeliver != nil {
		r.OnDeliver(grown)
	}
}

// insertOOO adds a range into the sorted, disjoint out-of-order list.
func (r *Receiver) insertOOO(s span) {
	i := 0
	for i < len(r.ooo) && r.ooo[i].start < s.start {
		i++
	}
	r.ooo = append(r.ooo, span{})
	copy(r.ooo[i+1:], r.ooo[i:])
	r.ooo[i] = s
	// Merge overlaps around i.
	merged := r.ooo[:0]
	for _, sp := range r.ooo {
		if n := len(merged); n > 0 && sp.start <= merged[n-1].end {
			if sp.end > merged[n-1].end {
				merged[n-1].end = sp.end
			}
		} else {
			merged = append(merged, sp)
		}
	}
	r.ooo = merged
}

func (r *Receiver) sendAck() {
	r.pending = 0
	r.delAck.Stop()
	// A plain cumulative ACK (no SACK ranges, no ECN echo) carries no
	// option block at all: the sender treats a missing meta exactly like an
	// empty one, and the steady-state ACK stream allocates nothing.
	var meta *ackMeta
	if r.ceSeen || len(r.ooo) > 0 {
		meta = r.metaPool.get()
		meta.ece = r.ceSeen
		for i := 0; i < len(r.ooo) && i < maxSackBlocks; i++ {
			meta.sack = append(meta.sack, [2]int64{r.ooo[i].start, r.ooo[i].end})
		}
	}
	r.ceSeen = false
	p := r.host.NewPacket()
	p.Flow = r.flow
	p.Kind = packet.KindAck
	p.Dst = r.peer
	p.Ack = r.rcvNxt
	p.EchoTS = r.lastTS
	p.Size = ackBaseSize
	if meta != nil {
		p.Size += sackBlockSize * len(meta.sack)
		meta.Retain() // released by the packet pool when p is recycled
		p.App = meta
	}
	r.host.Send(p)
}
