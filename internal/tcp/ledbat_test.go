package tcp

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func TestLEDBATSaturatesAlone(t *testing.T) {
	rate := units.Mbps(20)
	rtt := 20 * time.Millisecond
	// Queue deep enough to hold the 100 ms target.
	tn := newTestNet(1, rate, units.BDP(rate, rtt+200*time.Millisecond), rtt/2)
	s, r := tn.pair(0, AlgLEDBAT)
	s.Start()
	tn.eng.Run(sim.At(30 * time.Second))
	goodput := units.RateFromBytes(units.ByteSize(r.BytesReceived), 30*time.Second)
	if goodput.Mbit() < 15 {
		t.Errorf("solo LEDBAT goodput %.1f Mb/s on a 20 Mb/s link", goodput.Mbit())
	}
}

func TestLEDBATTargetsBoundedDelay(t *testing.T) {
	rate := units.Mbps(20)
	rtt := 20 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt+400*time.Millisecond), rtt/2)
	s, _ := tn.pair(0, AlgLEDBAT)
	s.Start()
	sum, n := 0.0, 0
	probe := sim.NewTicker(tn.eng, 100*time.Millisecond, func() {
		if tn.eng.Now() > sim.At(10*time.Second) {
			sum += float64(tn.queue.Bytes())
			n++
		}
	})
	probe.Start(false)
	tn.eng.Run(sim.At(40 * time.Second))
	avgDelay := time.Duration(sum / float64(n) * 8 / float64(rate) * float64(time.Second))
	// Self-induced queuing should sit near the 100 ms target, not at the
	// (much deeper) queue limit.
	if avgDelay > 180*time.Millisecond {
		t.Errorf("LEDBAT standing queue delay %v, want near the 100 ms target", avgDelay)
	}
	if avgDelay < 30*time.Millisecond {
		t.Errorf("LEDBAT queue delay %v: not using its delay budget", avgDelay)
	}
}

func TestLEDBATYieldsToCubic(t *testing.T) {
	rate := units.Mbps(20)
	rtt := 20 * time.Millisecond
	tn := newTestNet(2, rate, 4*units.BDP(rate, rtt), rtt/2)
	sl, rl := tn.pair(0, AlgLEDBAT)
	sc, rc := tn.pair(1, AlgCubic)
	sl.Start()
	sc.Start()
	tn.eng.Run(sim.At(40 * time.Second))
	led := float64(rl.BytesReceived)
	cub := float64(rc.BytesReceived)
	// The scavenger must take a clear minority share.
	if led > cub/2 {
		t.Errorf("LEDBAT %.0f vs Cubic %.0f: scavenger not yielding", led, cub)
	}
}
