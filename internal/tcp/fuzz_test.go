package tcp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
)

// fuzzMaxSeq bounds the sequence space the fuzzer can address, keeping the
// sent-byte coverage map small. 16-bit seq plus the largest payload.
const fuzzMaxSeq = 1<<16 + 2048

// FuzzReceiverReassembly feeds the receiver arbitrary segment streams —
// out of order, overlapping, duplicated, gapped — and checks the stream
// reassembly invariants after every segment. Each 3-byte chunk of input is
// one segment: a 16-bit little-endian sequence number and a payload length
// byte (1..2041 bytes in steps of 8).
func FuzzReceiverReassembly(f *testing.F) {
	// In-order pair.
	f.Add([]byte{0x00, 0x00, 0xb4, 0xa1, 0x05, 0xb4})
	// Gap then fill (hole at 0 closed by the second segment).
	f.Add([]byte{0xa1, 0x05, 0xb4, 0x00, 0x00, 0xb4})
	// Overlapping ranges.
	f.Add([]byte{0x00, 0x00, 0xb4, 0x00, 0x01, 0xb4, 0x80, 0x00, 0xb4})
	// Pure duplicates.
	f.Add([]byte{0x00, 0x00, 0x10, 0x00, 0x00, 0x10, 0x00, 0x00, 0x10})
	// Many tiny interleaved islands.
	f.Add([]byte{
		0x10, 0x00, 0x01, 0x30, 0x00, 0x01, 0x20, 0x00, 0x01,
		0x00, 0x00, 0xff, 0x40, 0x00, 0x01, 0x00, 0x01, 0xff,
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		eng := sim.NewEngine(1)
		var ids uint64
		// ACKs leave through a discarding first hop; the fuzz target is the
		// reassembly path, not the network.
		host := netem.NewHost(eng, 2, packet.HandlerFunc(func(p *packet.Packet) {}), &ids)
		r := NewReceiver(host, 1, 1)

		var delivered int64
		r.OnDeliver = func(n int64) { delivered += n }

		sent := make([]bool, fuzzMaxSeq)
		covered := int64(0) // frontier up to which sent[] has been verified
		var lastRcv int64
		for i := 0; i+3 <= len(data); i += 3 {
			seq := int64(data[i]) | int64(data[i+1])<<8
			payload := 1 + int(data[i+2])*8
			p := &packet.Packet{
				Kind:    packet.KindData,
				Flow:    1,
				Seq:     seq,
				Payload: payload,
				Size:    payload + packet.EthIPOverhead + packet.TCPHeader,
				SentAt:  eng.Now(),
			}
			for b := seq; b < seq+int64(payload); b++ {
				sent[b] = true
			}
			r.Handle(p)

			// Invariant: the frontier only moves forward.
			if r.rcvNxt < lastRcv {
				t.Fatalf("frontier moved backwards: %d -> %d", lastRcv, r.rcvNxt)
			}
			lastRcv = r.rcvNxt
			// Invariant: in-order goodput equals the frontier exactly (the
			// stream starts at 0), both in the counter and via OnDeliver.
			if r.BytesReceived != r.rcvNxt || delivered != r.rcvNxt {
				t.Fatalf("BytesReceived %d / delivered %d != frontier %d",
					r.BytesReceived, delivered, r.rcvNxt)
			}
			// Invariant: no fabricated bytes — everything below the
			// frontier was actually sent at least once.
			for ; covered < r.rcvNxt; covered++ {
				if !sent[covered] {
					t.Fatalf("frontier %d covers byte %d that was never sent", r.rcvNxt, covered)
				}
			}
			// Invariant: the out-of-order list is sorted, disjoint,
			// non-empty per span, and strictly beyond the frontier.
			prevEnd := r.rcvNxt
			for j, sp := range r.ooo {
				if sp.start >= sp.end {
					t.Fatalf("ooo[%d] empty span [%d,%d)", j, sp.start, sp.end)
				}
				// Strictly beyond prevEnd: adjacent spans must have merged,
				// and a span at or below the frontier must have been
				// absorbed into it.
				if sp.start <= prevEnd {
					t.Fatalf("ooo[%d] [%d,%d) not disjoint/sorted after %d", j, sp.start, sp.end, prevEnd)
				}
				prevEnd = sp.end
			}
		}
		// Drain the delayed-ACK timer; it must not disturb the stream state.
		before := r.rcvNxt
		eng.Run(sim.At(time.Second))
		if r.rcvNxt != before || r.BytesReceived != before {
			t.Fatalf("timer drain changed stream state: %d -> %d", before, r.rcvNxt)
		}
	})
}
