package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// LEDBAT parameters (RFC 6817).
const (
	ledbatTarget = 100 * time.Millisecond // target queuing delay
	ledbatGain   = 1.0                    // cwnd gain per off-target RTT
	// ledbatBaseWindow is the base-delay history window.
	ledbatBaseWindow = 2 * time.Minute
)

// AlgLEDBAT selects the LEDBAT controller in New.
const AlgLEDBAT = "ledbat"

// LEDBAT implements the Low Extra Delay Background Transport scavenger
// (RFC 6817): it targets a bounded amount of self-induced queuing delay
// and backs away from any foreground traffic, making it the polite
// opposite of the paper's bulk Cubic/BBR competitors. Useful as a contrast
// row in the traffic-mixture experiments: a scavenger download should
// leave a game stream essentially untouched.
type LEDBAT struct {
	mss      int64
	cwnd     int64
	baseRTT  time.Duration
	baseAt   sim.Time
	lastLoss sim.Time
}

// NewLEDBAT returns a LEDBAT controller.
func NewLEDBAT() *LEDBAT { return &LEDBAT{baseRTT: -1} }

// Name implements CongestionControl.
func (l *LEDBAT) Name() string { return AlgLEDBAT }

// Init implements CongestionControl. It fully resets the controller, so a
// reused instance behaves exactly like a freshly constructed one.
func (l *LEDBAT) Init(mss int64) {
	*l = LEDBAT{baseRTT: -1}
	l.mss = mss
	l.cwnd = 2 * mss
}

// OnAck implements CongestionControl.
func (l *LEDBAT) OnAck(s AckSample) {
	if s.RTT <= 0 {
		return
	}
	// Base-delay tracking with periodic reset so route changes and
	// clock-ish drift don't pin an unreachable floor (RFC 6817 §4.2 uses
	// a history of per-minute minima; a windowed reset approximates it).
	if l.baseRTT < 0 || s.RTT < l.baseRTT || s.Now.Sub(l.baseAt) > ledbatBaseWindow {
		l.baseRTT = s.RTT
		l.baseAt = s.Now
	}
	if s.InRecovery {
		return
	}
	queuing := s.RTT - l.baseRTT
	offTarget := float64(ledbatTarget-queuing) / float64(ledbatTarget)
	// cwnd += gain * offTarget * bytes_acked * MSS / cwnd  (RFC 6817)
	delta := ledbatGain * offTarget * float64(s.BytesAcked) * float64(l.mss) / float64(l.cwnd)
	l.cwnd += int64(delta)
	if l.cwnd < 2*l.mss {
		l.cwnd = 2 * l.mss
	}
}

// OnLoss implements CongestionControl: halve, at most once per RTT-ish
// debounce.
func (l *LEDBAT) OnLoss(now sim.Time, inflight int64) {
	if now.Sub(l.lastLoss) < 100*time.Millisecond {
		return
	}
	l.lastLoss = now
	l.cwnd = max64(l.cwnd/2, 2*l.mss)
}

// OnRTO implements CongestionControl.
func (l *LEDBAT) OnRTO(now sim.Time, inflight int64) {
	l.cwnd = 2 * l.mss
}

// OnExitRecovery implements CongestionControl.
func (l *LEDBAT) OnExitRecovery(now sim.Time) {}

// InspectCC implements Inspector.
func (l *LEDBAT) InspectCC() CCState {
	return CCState{Mode: "scavenge", BaseRTT: l.baseRTT}
}

// CwndBytes implements CongestionControl.
func (l *LEDBAT) CwndBytes() int64 { return l.cwnd }

// PacingRate implements CongestionControl.
func (l *LEDBAT) PacingRate() units.Rate { return 0 }
