package tcp

import (
	"repro/internal/sim"
	"repro/internal/units"
)

// Reno implements classic NewReno congestion control: slow start,
// additive-increase congestion avoidance, and a halving multiplicative
// decrease on loss. It serves as a baseline and as the "Reno-friendly"
// reference inside Cubic.
type Reno struct {
	mss      int64
	cwnd     int64
	ssthresh int64
	acked    int64 // bytes acked since last cwnd increment in CA
}

// NewReno returns a NewReno controller.
func NewReno() *Reno { return &Reno{} }

// Name implements CongestionControl.
func (r *Reno) Name() string { return AlgReno }

// Init implements CongestionControl. It fully resets the controller, so a
// reused instance behaves exactly like a freshly constructed one.
func (r *Reno) Init(mss int64) {
	*r = Reno{}
	r.mss = mss
	r.cwnd = initialWindow * mss
	r.ssthresh = 1 << 40
}

// OnAck implements CongestionControl.
func (r *Reno) OnAck(s AckSample) {
	if s.InRecovery {
		// RTO recovery slow-starts back toward ssthresh (CA_Loss
		// behaviour); fast recovery holds the window.
		if r.cwnd < r.ssthresh {
			r.cwnd = min64(r.cwnd+s.BytesAcked, r.ssthresh)
		}
		return
	}
	if r.cwnd < r.ssthresh {
		// Slow start with appropriate byte counting.
		r.cwnd += s.BytesAcked
		if r.cwnd > r.ssthresh {
			r.cwnd = r.ssthresh
		}
		return
	}
	// Congestion avoidance: one MSS per window of data acked.
	r.acked += s.BytesAcked
	if r.acked >= r.cwnd {
		r.acked -= r.cwnd
		r.cwnd += r.mss
	}
}

// OnLoss implements CongestionControl.
func (r *Reno) OnLoss(now sim.Time, inflight int64) {
	r.ssthresh = max64(r.cwnd/2, 2*r.mss)
	r.cwnd = r.ssthresh
}

// OnRTO implements CongestionControl.
func (r *Reno) OnRTO(now sim.Time, inflight int64) {
	r.ssthresh = max64(r.cwnd/2, 2*r.mss)
	r.cwnd = r.mss
}

// OnExitRecovery implements CongestionControl.
func (r *Reno) OnExitRecovery(now sim.Time) {}

// InspectCC implements Inspector.
func (r *Reno) InspectCC() CCState {
	mode := "avoidance"
	if r.cwnd < r.ssthresh {
		mode = "slow_start"
	}
	return CCState{Mode: mode, SsthreshBytes: r.ssthresh}
}

// CwndBytes implements CongestionControl.
func (r *Reno) CwndBytes() int64 { return r.cwnd }

// PacingRate implements CongestionControl: Reno is purely ACK-clocked.
func (r *Reno) PacingRate() units.Rate { return 0 }

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
