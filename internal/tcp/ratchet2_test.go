package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

type loggingCC struct {
	*BBR
	eng  *sim.Engine
	logT sim.Time
}

func (l *loggingCC) OnAck(s AckSample) {
	if s.Now > sim.At(20*time.Second) && s.Now < sim.At(20200*time.Millisecond) {
		fmt.Printf("  t=%.4fs acked=%d rate=%.3f appLim=%v gain=%.2f inflight=%d rtt=%v\n",
			s.Now.Seconds(), s.BytesAcked, s.DeliveryRate.Mbit(), s.RateAppLimited, l.BBR.pacingGain, s.Inflight, s.RTT)
	}
	l.BBR.OnAck(s)
}

func TestDebugBBRSamples(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16500 * time.Microsecond
	q := 2 * units.BDP(rate, rtt)
	tn := newTestNet(1, rate, q, rtt/2)
	cc := &loggingCC{BBR: NewBBR(), eng: tn.eng}
	s := NewSender(tn.sndH[0], 1, tn.rcvH[0].Addr, cc)
	NewReceiver(tn.rcvH[0], 1, tn.sndH[0].Addr)
	blast := sim.NewTicker(tn.eng, 550*time.Microsecond, func() {
		tn.shaper.Handle(&packet.Packet{Flow: 99, Kind: packet.KindFrame, Size: 1514, Dst: 201})
	})
	blast.Start(true)
	s.Start()
	tn.eng.Run(sim.At(21 * time.Second))
}
