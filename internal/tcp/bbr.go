package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// BBR v1.0 constants, matching the Linux v4.9+ implementation the paper's
// kernel v5.4 iperf server offered.
const (
	bbrHighGain       = 2.885 // 2/ln(2)
	bbrDrainGain      = 1 / bbrHighGain
	bbrCwndGain       = 2.0
	bbrBtlBwWindow    = 10 // rounds for the max-bandwidth filter
	bbrMinRTTWindow   = 10 * time.Second
	bbrProbeRTTTime   = 200 * time.Millisecond
	bbrMinCwndSegs    = 4
	bbrFullBwThresh   = 1.25 // growth factor that resets the plateau count
	bbrFullBwRounds   = 3
	bbrGainCycleLen   = 8
	bbrProbeGainUp    = 1.25
	bbrProbeGainDown  = 0.75
	bbrPacingMarginPc = 1.05 // slight overdrive: the net effect of ack-aggregation bursts and the max-filter bias that makes real BBRv1 hold standing queues (Hock et al.)
)

type bbrState int

const (
	bbrStartup bbrState = iota
	bbrDrain
	bbrProbeBW
	bbrProbeRTT
)

func (s bbrState) String() string {
	switch s {
	case bbrStartup:
		return "STARTUP"
	case bbrDrain:
		return "DRAIN"
	case bbrProbeBW:
		return "PROBE_BW"
	case bbrProbeRTT:
		return "PROBE_RTT"
	}
	return "?"
}

// bwSample is one delivery-rate measurement tagged with its round.
type bwSample struct {
	rate  units.Rate
	round int64
}

// BBR implements BBR v1.0 (Cardwell et al.): it models the path with a
// windowed-max bandwidth filter and windowed-min RTT filter, paces at the
// modelled bottleneck bandwidth scaled by a cyclic gain, and caps inflight
// at cwnd_gain × BDP — the property responsible for the paper's finding
// that BBR bounds bottleneck queues to roughly one BDP where Cubic fills
// them to the limit.
type BBR struct {
	mss int64

	state       bbrState
	btlBw       []bwSample // max filter: monotone-decreasing deque within bbrBtlBwWindow rounds
	rtProp      time.Duration
	rtPropAt    sim.Time
	rtPropStale bool

	pacingGain float64
	cwndGain   float64

	fullBw       units.Rate
	fullBwCount  int
	fullBwRound  int64 // last round evaluated, so the plateau check runs once per round
	filledPipe   bool
	cycleIndex   int
	cycleStart   sim.Time
	probeRTTDone sim.Time
	priorState   bbrState
	priorCwnd    int64

	cwnd int64
	// packetConservation marks the first round of a recovery episode,
	// during which cwnd follows inflight (Linux bbr_set_cwnd semantics);
	// afterwards the model-driven window applies even in recovery.
	packetConservation bool
	recoveryRound      int64
	inRecovery         bool

	rounds int64
}

// NewBBR returns a BBR v1.0 controller.
func NewBBR() *BBR {
	return &BBR{
		state:      bbrStartup,
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
		rtProp:     -1,
	}
}

// Name implements CongestionControl.
func (b *BBR) Name() string { return AlgBBR }

// Init implements CongestionControl. It fully resets the controller (keeping
// the bandwidth filter's backing array), so a reused instance behaves
// exactly like a freshly constructed one.
func (b *BBR) Init(mss int64) {
	btlBw := b.btlBw[:0]
	*b = BBR{
		state:      bbrStartup,
		pacingGain: bbrHighGain,
		cwndGain:   bbrHighGain,
		rtProp:     -1,
	}
	b.btlBw = btlBw
	b.mss = mss
	b.cwnd = initialWindow * mss
}

// State returns the current BBR state name, for tests and traces.
func (b *BBR) State() string { return b.state.String() }

// BtlBw returns the current bottleneck bandwidth estimate. The filter is
// kept as a monotone-decreasing deque (newer, larger samples evict the
// dominated tail on insert), so the windowed max is always the front
// element — O(1) per call instead of a scan, and OnAck calls this several
// times per ACK.
func (b *BBR) BtlBw() units.Rate {
	if len(b.btlBw) == 0 {
		return 0
	}
	return b.btlBw[0].rate
}

// RTProp returns the current min-RTT estimate (-1 before any sample).
func (b *BBR) RTProp() time.Duration { return b.rtProp }

func (b *BBR) bdpBytes(gain float64) int64 {
	bw := b.BtlBw()
	if bw <= 0 || b.rtProp <= 0 {
		return initialWindow * b.mss
	}
	bdp := float64(bw) / 8 * b.rtProp.Seconds()
	return int64(gain * bdp)
}

// OnAck implements CongestionControl.
func (b *BBR) OnAck(s AckSample) {
	b.rounds = s.RoundTrips

	// Update the bandwidth filter. App-limited samples only count if they
	// raise the estimate.
	if s.DeliveryRate > 0 && (!s.RateAppLimited || s.DeliveryRate > b.BtlBw()) {
		// A new sample dominates every older entry with rate <= its own
		// (those could never again be the windowed max, since they expire
		// first); popping them keeps the deque decreasing and bounded.
		for n := len(b.btlBw); n > 0 && b.btlBw[n-1].rate <= s.DeliveryRate; n-- {
			b.btlBw = b.btlBw[:n-1]
		}
		b.btlBw = append(b.btlBw, bwSample{rate: s.DeliveryRate, round: s.RoundTrips})
		// Expire entries beyond the window. Shift in place so the backing
		// array is reused instead of crawling forward allocation by
		// allocation.
		cut := 0
		for cut < len(b.btlBw) && b.btlBw[cut].round < s.RoundTrips-bbrBtlBwWindow {
			cut++
		}
		if cut > 0 {
			b.btlBw = b.btlBw[:copy(b.btlBw, b.btlBw[cut:])]
		}
	}

	// Update min-RTT; schedule PROBE_RTT on expiry.
	if s.RTT > 0 {
		if b.rtProp <= 0 || s.RTT <= b.rtProp {
			b.rtProp = s.RTT
			b.rtPropAt = s.Now
			b.rtPropStale = false
		} else if s.Now.Sub(b.rtPropAt) > bbrMinRTTWindow {
			b.rtPropStale = true
		}
	}

	b.checkFullPipe(s)
	b.updateState(s)
	b.setCwnd(s)
}

func (b *BBR) checkFullPipe(s AckSample) {
	if b.filledPipe || s.RateAppLimited {
		return
	}
	// Evaluate the plateau once per round trip, as the BBR draft requires
	// — per-ACK counting would declare the pipe full within milliseconds.
	if s.RoundTrips == b.fullBwRound {
		return
	}
	b.fullBwRound = s.RoundTrips
	bw := b.BtlBw()
	if float64(bw) >= float64(b.fullBw)*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.filledPipe = true
	}
}

func (b *BBR) updateState(s AckSample) {
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
			b.pacingGain = bbrDrainGain
			b.cwndGain = bbrHighGain
		}
	case bbrDrain:
		if s.Inflight <= b.bdpBytes(1.0) {
			b.enterProbeBW(s.Now)
		}
	case bbrProbeBW:
		b.advanceCyclePhase(s)
	case bbrProbeRTT:
		if s.Now >= b.probeRTTDone {
			b.rtPropAt = s.Now
			b.rtPropStale = false
			b.exitProbeRTT(s.Now)
		}
	}

	// Enter PROBE_RTT when the min-RTT estimate goes stale (except while
	// already probing).
	if b.rtPropStale && b.state != bbrProbeRTT && b.state != bbrStartup {
		b.priorState = b.state
		b.priorCwnd = b.cwnd
		b.state = bbrProbeRTT
		b.pacingGain = 1.0
		b.cwndGain = 1.0
		b.probeRTTDone = s.Now.Add(bbrProbeRTTTime)
	}
}

func (b *BBR) enterProbeBW(now sim.Time) {
	b.state = bbrProbeBW
	b.cwndGain = bbrCwndGain
	// Start in a deterministic but non-degenerate phase (Linux randomises;
	// phase 2 keeps the first cycle neutral and determinism intact).
	b.cycleIndex = 2
	b.cycleStart = now
	b.setCycleGain()
}

func (b *BBR) exitProbeRTT(now sim.Time) {
	if b.priorState == bbrProbeBW || b.priorState == 0 && b.filledPipe {
		b.enterProbeBW(now)
	} else {
		b.state = b.priorState
		b.pacingGain = bbrHighGain
		b.cwndGain = bbrHighGain
	}
	if b.priorCwnd > 0 {
		b.cwnd = max64(b.cwnd, b.priorCwnd)
	}
}

func (b *BBR) setCycleGain() {
	switch b.cycleIndex {
	case 0:
		b.pacingGain = bbrProbeGainUp
	case 1:
		b.pacingGain = bbrProbeGainDown
	default:
		b.pacingGain = 1.0
	}
}

func (b *BBR) advanceCyclePhase(s AckSample) {
	if b.rtProp <= 0 {
		return
	}
	elapsed := s.Now.Sub(b.cycleStart)
	advance := false
	switch b.cycleIndex {
	case 0:
		// Probe up: move on after one rtProp if we've filled the pipe to
		// the probed level (or suffered loss, approximated by recovery).
		if elapsed > b.rtProp && (s.InRecovery || s.Inflight >= b.bdpBytes(bbrProbeGainUp)) {
			advance = true
		}
	case 1:
		// Drain: leave early once inflight is at or below the BDP.
		if elapsed > b.rtProp || s.Inflight <= b.bdpBytes(1.0) {
			advance = true
		}
	default:
		if elapsed > b.rtProp {
			advance = true
		}
	}
	if advance {
		b.cycleIndex = (b.cycleIndex + 1) % bbrGainCycleLen
		b.cycleStart = s.Now
		b.setCycleGain()
	}
}

func (b *BBR) setCwnd(s AckSample) {
	if s.InRecovery && !b.inRecovery {
		b.inRecovery = true
		b.packetConservation = true
		b.recoveryRound = s.RoundTrips
	}
	if b.packetConservation && s.RoundTrips > b.recoveryRound {
		b.packetConservation = false
	}
	if !s.InRecovery {
		b.inRecovery = false
		b.packetConservation = false
	}

	target := b.bdpBytes(b.cwndGain)
	if b.state == bbrProbeRTT {
		target = bbrMinCwndSegs * b.mss
	}
	if b.packetConservation {
		// First recovery round only: cwnd follows delivery.
		target = min64(target, s.Inflight+s.BytesAcked)
	}
	target = max64(target, bbrMinCwndSegs*b.mss)
	if b.filledPipe {
		b.cwnd = target
	} else {
		// During startup, never shrink.
		b.cwnd = max64(b.cwnd, target)
	}
}

// OnLoss implements CongestionControl. BBR v1 does not treat loss as a
// congestion signal; recovery's packet conservation is applied in setCwnd.
func (b *BBR) OnLoss(now sim.Time, inflight int64) {}

// OnRTO implements CongestionControl: collapse to minimum and re-probe.
func (b *BBR) OnRTO(now sim.Time, inflight int64) {
	b.cwnd = bbrMinCwndSegs * b.mss
}

// OnExitRecovery implements CongestionControl: restore the model-driven
// window immediately.
func (b *BBR) OnExitRecovery(now sim.Time) {
	b.cwnd = max64(b.cwnd, b.bdpBytes(b.cwndGain))
}

// InspectCC implements Inspector: BBR exposes its path model (btlbw,
// rtprop) and state-machine phase — the internals behind the paper's
// finding that BBR holds inflight near 2×BDP.
func (b *BBR) InspectCC() CCState {
	return CCState{
		Mode:   b.state.String(),
		BtlBw:  b.BtlBw(),
		RTProp: b.rtProp,
	}
}

// CwndBytes implements CongestionControl.
func (b *BBR) CwndBytes() int64 { return b.cwnd }

// PacingRate implements CongestionControl.
func (b *BBR) PacingRate() units.Rate {
	bw := b.BtlBw()
	if bw <= 0 {
		// Before any estimate: pace the initial window over a nominal
		// 10 ms round trip to avoid an unbounded burst.
		return units.RateFromBytes(units.ByteSize(initialWindow*b.mss), 10*time.Millisecond).Scale(bbrHighGain)
	}
	return bw.Scale(b.pacingGain * bbrPacingMarginPc)
}
