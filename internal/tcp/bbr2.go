package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// BBRv2 constants (after the IETF draft / Linux bbr2 defaults).
const (
	bbr2StartupGain    = 2.77
	bbr2CwndGain       = 2.0
	bbr2Beta           = 0.7  // inflight_hi multiplicative decrease
	bbr2LossThresh     = 0.02 // per-round loss rate that marks inflight_hi
	bbr2ProbeUpCwndAdd = 1    // segments added to inflight_hi per round while probing
	bbr2MinRTTWindow   = 5 * time.Second
	bbr2ProbeRTTTime   = 200 * time.Millisecond
	// bbr2ProbeWaitBase spaces PROBE_UP episodes (the draft randomises
	// 2-3 s; we use the midpoint for determinism).
	bbr2ProbeWait = 2500 * time.Millisecond
)

// AlgBBR2 selects the BBRv2 controller in New.
const AlgBBR2 = "bbr2"

// bw2Sample is a delivery-rate sample tagged with its arrival time: v2's
// filter window spans probe cycles (seconds), not round trips.
type bw2Sample struct {
	rate units.Rate
	at   sim.Time
}

// BBR2 implements a faithful-in-mechanism, simplified BBRv2: on top of
// v1's bandwidth/min-RTT model it bounds inflight with a loss-responsive
// upper limit (inflight_hi, cut by beta when a round's loss rate exceeds
// 2%), probes for more bandwidth on a time schedule instead of a fixed
// 8-phase cycle, and uses a shorter min-RTT window with a shallower
// PROBE_RTT. The headline behavioural difference from v1 — and the reason
// it exists — is loss-responsiveness: BBRv2 coexists with loss-based flows
// and inelastic traffic instead of bulldozing or starving.
type BBR2 struct {
	mss int64

	state       bbrState // reuses v1 state labels
	btlBw       []bw2Sample
	rtProp      time.Duration
	rtPropAt    sim.Time
	rtPropStale bool

	pacingGain float64
	cwndGain   float64

	fullBw      units.Rate
	fullBwCount int
	fullBwRound int64
	filledPipe  bool

	// Loss accounting per round.
	roundStart     int64
	roundDelivered int64
	roundLost      int64
	lossRound      int64

	inflightHi int64 // loss-derived upper bound (0 = unknown)
	probeWait  sim.Time
	probingUp  bool

	probeRTTDone sim.Time
	priorCwnd    int64

	cwnd int64
}

// NewBBR2 returns a BBRv2 controller.
func NewBBR2() *BBR2 {
	return &BBR2{
		state:      bbrStartup,
		pacingGain: bbr2StartupGain,
		cwndGain:   bbr2StartupGain,
		rtProp:     -1,
	}
}

// Name implements CongestionControl.
func (b *BBR2) Name() string { return AlgBBR2 }

// Init implements CongestionControl. It fully resets the controller (keeping
// the bandwidth filter's backing array), so a reused instance behaves
// exactly like a freshly constructed one.
func (b *BBR2) Init(mss int64) {
	btlBw := b.btlBw[:0]
	*b = BBR2{
		state:      bbrStartup,
		pacingGain: bbr2StartupGain,
		cwndGain:   bbr2StartupGain,
		rtProp:     -1,
	}
	b.btlBw = btlBw
	b.mss = mss
	b.cwnd = initialWindow * mss
}

// State returns the state name for probes.
func (b *BBR2) State() string { return b.state.String() }

// InflightHi returns the loss-derived inflight bound (0 = unset).
func (b *BBR2) InflightHi() int64 { return b.inflightHi }

// BtlBw returns the bandwidth estimate.
func (b *BBR2) BtlBw() units.Rate {
	var m units.Rate
	for _, s := range b.btlBw {
		if s.rate > m {
			m = s.rate
		}
	}
	return m
}

// bwWindow is the max-filter retention: two probe cycles.
const bbr2BwWindow = 2 * bbr2ProbeWait

func (b *BBR2) bdpBytes(gain float64) int64 {
	bw := b.BtlBw()
	if bw <= 0 || b.rtProp <= 0 {
		return initialWindow * b.mss
	}
	return int64(gain * float64(bw) / 8 * b.rtProp.Seconds())
}

// OnAck implements CongestionControl.
func (b *BBR2) OnAck(s AckSample) {
	// Bandwidth filter: max over the last two probe cycles.
	if s.DeliveryRate > 0 && (!s.RateAppLimited || s.DeliveryRate > b.BtlBw()) {
		b.btlBw = append(b.btlBw, bw2Sample{rate: s.DeliveryRate, at: s.Now})
		cut := 0
		for cut < len(b.btlBw) && s.Now.Sub(b.btlBw[cut].at) > bbr2BwWindow {
			cut++
		}
		b.btlBw = b.btlBw[cut:]
	}
	// Min-RTT, 5 s window.
	if s.RTT > 0 {
		if b.rtProp <= 0 || s.RTT <= b.rtProp {
			b.rtProp = s.RTT
			b.rtPropAt = s.Now
			b.rtPropStale = false
		} else if s.Now.Sub(b.rtPropAt) > bbr2MinRTTWindow {
			b.rtPropStale = true
		}
	}

	b.updateRoundLoss(s)
	b.checkFullPipe(s)
	b.updateState(s)
	b.setCwnd(s)
}

// updateRoundLoss applies the loss-exceedance rule once per round.
func (b *BBR2) updateRoundLoss(s AckSample) {
	if s.RoundTrips == b.roundStart {
		b.roundDelivered += s.BytesAcked
		return
	}
	// Round boundary: evaluate the finished round.
	if b.roundDelivered > 0 && b.lossRound != b.roundStart {
		lossRate := float64(b.roundLost) / float64(b.roundDelivered+b.roundLost)
		if lossRate > bbr2LossThresh {
			b.lossRound = b.roundStart
			// Mark inflight_hi at a beta-scaled view of what flew.
			hi := int64(float64(s.Inflight+s.BytesAcked) * bbr2Beta)
			if b.inflightHi == 0 || hi < b.inflightHi {
				b.inflightHi = max64(hi, bbrMinCwndSegs*b.mss)
			}
			b.probingUp = false
			b.probeWait = s.Now.Add(bbr2ProbeWait)
		}
	}
	b.roundStart = s.RoundTrips
	b.roundDelivered = s.BytesAcked
	b.roundLost = 0
}

// OnLoss implements CongestionControl: losses accumulate into the round
// accounting (the sender reports loss events; sizes approximated by MSS).
func (b *BBR2) OnLoss(now sim.Time, inflight int64) {
	b.roundLost += b.mss
}

func (b *BBR2) checkFullPipe(s AckSample) {
	if b.filledPipe || s.RateAppLimited {
		return
	}
	if s.RoundTrips == b.fullBwRound {
		return
	}
	b.fullBwRound = s.RoundTrips
	bw := b.BtlBw()
	if float64(bw) >= float64(b.fullBw)*bbrFullBwThresh {
		b.fullBw = bw
		b.fullBwCount = 0
		return
	}
	b.fullBwCount++
	if b.fullBwCount >= bbrFullBwRounds {
		b.filledPipe = true
	}
}

func (b *BBR2) updateState(s AckSample) {
	switch b.state {
	case bbrStartup:
		if b.filledPipe {
			b.state = bbrDrain
			b.pacingGain = 1 / bbr2StartupGain
			b.cwndGain = bbr2CwndGain
		}
	case bbrDrain:
		if s.Inflight <= b.bdpBytes(1.0) {
			b.state = bbrProbeBW
			b.pacingGain = 1.0
			b.cwndGain = bbr2CwndGain
			b.probeWait = s.Now.Add(bbr2ProbeWait)
		}
	case bbrProbeBW:
		b.cruiseOrProbe(s)
	case bbrProbeRTT:
		if s.Now >= b.probeRTTDone {
			b.rtPropAt = s.Now
			b.rtPropStale = false
			b.state = bbrProbeBW
			b.pacingGain = 1.0
			b.cwndGain = bbr2CwndGain
			b.cwnd = max64(b.cwnd, b.priorCwnd)
			b.probeWait = s.Now.Add(bbr2ProbeWait)
		}
	}

	if b.rtPropStale && b.state != bbrProbeRTT && b.state != bbrStartup {
		b.priorCwnd = b.cwnd
		b.state = bbrProbeRTT
		b.pacingGain = 1.0
		b.cwndGain = 0.5 // v2 probes RTT at half-BDP, not 4 packets
		b.probeRTTDone = s.Now.Add(bbr2ProbeRTTTime)
	}
}

// cruiseOrProbe implements the time-scheduled PROBE_UP / cruise behaviour.
func (b *BBR2) cruiseOrProbe(s AckSample) {
	if b.probingUp {
		// Grow inflight_hi while probing cleanly; the loss rule ends it.
		if b.inflightHi > 0 {
			b.inflightHi += bbr2ProbeUpCwndAdd * b.mss
		}
		if s.Inflight >= b.bdpBytes(1.25) || s.InRecovery {
			b.probingUp = false
			b.pacingGain = 1.0
			b.probeWait = s.Now.Add(bbr2ProbeWait)
		}
		return
	}
	if s.Now >= b.probeWait && b.probeWait > 0 {
		b.probingUp = true
		b.pacingGain = 1.25
	}
}

func (b *BBR2) setCwnd(s AckSample) {
	target := b.bdpBytes(b.cwndGain)
	if b.state == bbrProbeRTT {
		target = b.bdpBytes(0.5)
	}
	if b.inflightHi > 0 && target > b.inflightHi && b.state != bbrStartup {
		target = b.inflightHi
	}
	target = max64(target, bbrMinCwndSegs*b.mss)
	if b.filledPipe {
		b.cwnd = target
	} else {
		b.cwnd = max64(b.cwnd, target)
	}
}

// OnRTO implements CongestionControl.
func (b *BBR2) OnRTO(now sim.Time, inflight int64) {
	b.cwnd = bbrMinCwndSegs * b.mss
	b.inflightHi = 0 // re-learn after a timeout
}

// OnExitRecovery implements CongestionControl.
func (b *BBR2) OnExitRecovery(now sim.Time) {}

// InspectCC implements Inspector: BBRv2 adds the loss-derived inflight_hi
// bound to the v1 path model.
func (b *BBR2) InspectCC() CCState {
	return CCState{
		Mode:            b.state.String(),
		BtlBw:           b.BtlBw(),
		RTProp:          b.rtProp,
		InflightHiBytes: b.inflightHi,
	}
}

// CwndBytes implements CongestionControl.
func (b *BBR2) CwndBytes() int64 { return b.cwnd }

// PacingRate implements CongestionControl.
func (b *BBR2) PacingRate() units.Rate {
	bw := b.BtlBw()
	if bw <= 0 {
		return units.RateFromBytes(units.ByteSize(initialWindow*b.mss), 10*time.Millisecond).Scale(bbr2StartupGain)
	}
	return bw.Scale(b.pacingGain)
}
