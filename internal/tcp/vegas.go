package tcp

import (
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Vegas parameters (Brakmo & Peterson), in segments of queued data.
const (
	vegasAlpha = 2
	vegasBeta  = 4
	vegasGamma = 1 // slow-start exit threshold
)

// Vegas implements delay-based TCP Vegas: it estimates the number of its
// own segments queued at the bottleneck from the difference between
// expected and actual throughput, holding that backlog between alpha and
// beta segments. Included as the delay-based representative used in the
// related-work comparisons (Turkovic et al.).
type Vegas struct {
	mss      int64
	cwnd     int64
	ssthresh int64

	baseRTT time.Duration
	// Per-round accounting: min RTT observed this round.
	roundMinRTT time.Duration
	roundStart  int64 // RoundTrips value at round start
	slowStart   bool
	ssToggle    bool // Vegas grows every other RTT in slow start
}

// NewVegas returns a Vegas controller.
func NewVegas() *Vegas { return &Vegas{} }

// Name implements CongestionControl.
func (v *Vegas) Name() string { return AlgVegas }

// Init implements CongestionControl. It fully resets the controller, so a
// reused instance behaves exactly like a freshly constructed one.
func (v *Vegas) Init(mss int64) {
	*v = Vegas{}
	v.mss = mss
	v.cwnd = initialWindow * mss
	v.ssthresh = 1 << 40
	v.slowStart = true
	v.baseRTT = -1
	v.roundMinRTT = -1
}

// OnAck implements CongestionControl.
func (v *Vegas) OnAck(s AckSample) {
	if s.RTT > 0 {
		if v.baseRTT < 0 || s.RTT < v.baseRTT {
			v.baseRTT = s.RTT
		}
		if v.roundMinRTT < 0 || s.RTT < v.roundMinRTT {
			v.roundMinRTT = s.RTT
		}
	}
	if s.InRecovery {
		return
	}
	if s.RoundTrips == v.roundStart {
		return // decide once per round trip
	}
	defer func() {
		v.roundStart = s.RoundTrips
		v.roundMinRTT = -1
	}()
	if v.baseRTT <= 0 || v.roundMinRTT <= 0 {
		return
	}

	// diff = cwnd * (rtt - baseRTT) / rtt, in segments: our own queue.
	rtt := v.roundMinRTT
	diffSegs := float64(v.cwnd) / float64(v.mss) * float64(rtt-v.baseRTT) / float64(rtt)

	if v.slowStart {
		if diffSegs > vegasGamma {
			v.slowStart = false
			v.cwnd = max64(v.cwnd*3/4, 2*v.mss)
			return
		}
		// Double every other round.
		v.ssToggle = !v.ssToggle
		if v.ssToggle {
			v.cwnd *= 2
		}
		return
	}

	switch {
	case diffSegs < vegasAlpha:
		v.cwnd += v.mss
	case diffSegs > vegasBeta:
		v.cwnd -= v.mss
		if v.cwnd < 2*v.mss {
			v.cwnd = 2 * v.mss
		}
	}
}

// OnLoss implements CongestionControl.
func (v *Vegas) OnLoss(now sim.Time, inflight int64) {
	v.cwnd = max64(v.cwnd*3/4, 2*v.mss)
	v.slowStart = false
}

// OnRTO implements CongestionControl.
func (v *Vegas) OnRTO(now sim.Time, inflight int64) {
	v.cwnd = 2 * v.mss
	v.slowStart = false
}

// OnExitRecovery implements CongestionControl.
func (v *Vegas) OnExitRecovery(now sim.Time) {}

// InspectCC implements Inspector: Vegas exposes its base-RTT floor, the
// quantity its backlog estimate is anchored to.
func (v *Vegas) InspectCC() CCState {
	mode := "avoidance"
	if v.slowStart {
		mode = "slow_start"
	}
	return CCState{Mode: mode, SsthreshBytes: v.ssthresh, BaseRTT: v.baseRTT}
}

// CwndBytes implements CongestionControl.
func (v *Vegas) CwndBytes() int64 { return v.cwnd }

// PacingRate implements CongestionControl.
func (v *Vegas) PacingRate() units.Rate { return 0 }
