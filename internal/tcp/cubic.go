package tcp

import (
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Cubic constants from RFC 8312 (and the Linux implementation the paper's
// kernel v5.4 iperf sender used).
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// Cubic implements TCP Cubic (RFC 8312): the window grows as a cubic
// function of time since the last congestion event, anchored at the window
// size where loss last occurred, with a TCP(Reno)-friendly lower bound and
// fast convergence.
type Cubic struct {
	mss      int64
	cwnd     int64
	ssthresh int64

	wMax       float64 // segments
	k          float64 // seconds
	epochStart sim.Time
	inEpoch    bool
	ackedBytes int64   // CA byte counter for Reno-friendly estimate
	wEst       float64 // Reno-friendly window estimate, segments
	lastMinRTT time.Duration

	// HyStart delay-detection state (Linux default: exits slow start on a
	// per-round RTT rise before the queue-overflow loss storm).
	hsRound     int64
	hsCurrMin   time.Duration
	hsPrevMin   time.Duration
	hsSamples   int
	hsTriggered bool
}

// HyStart parameters (after the Linux implementation).
const (
	hystartMinSamples = 8
	hystartDelayMin   = 4 * time.Millisecond
	hystartDelayMax   = 16 * time.Millisecond
)

// hystart runs the delay-increase slow-start exit check once per ACK while
// in slow start.
func (c *Cubic) hystart(s AckSample) {
	if c.hsTriggered || s.RTT <= 0 {
		return
	}
	if s.RoundTrips != c.hsRound {
		c.hsRound = s.RoundTrips
		c.hsPrevMin = c.hsCurrMin
		c.hsCurrMin = 0
		c.hsSamples = 0
	}
	if c.hsSamples < hystartMinSamples {
		c.hsSamples++
		if c.hsCurrMin == 0 || s.RTT < c.hsCurrMin {
			c.hsCurrMin = s.RTT
		}
	}
	if c.hsSamples >= hystartMinSamples && c.hsPrevMin > 0 {
		thresh := c.hsPrevMin / 8
		if thresh < hystartDelayMin {
			thresh = hystartDelayMin
		}
		if thresh > hystartDelayMax {
			thresh = hystartDelayMax
		}
		if c.hsCurrMin >= c.hsPrevMin+thresh {
			c.hsTriggered = true
			c.ssthresh = c.cwnd
		}
	}
}

// NewCubic returns a Cubic controller.
func NewCubic() *Cubic { return &Cubic{} }

// Name implements CongestionControl.
func (c *Cubic) Name() string { return AlgCubic }

// Init implements CongestionControl. It fully resets the controller, so a
// reused instance (flow-population slot arrivals) behaves exactly like a
// freshly constructed one.
func (c *Cubic) Init(mss int64) {
	*c = Cubic{}
	c.mss = mss
	c.cwnd = initialWindow * mss
	c.ssthresh = 1 << 40
}

func (c *Cubic) segs(bytes int64) float64 { return float64(bytes) / float64(c.mss) }

// OnAck implements CongestionControl.
func (c *Cubic) OnAck(s AckSample) {
	if s.InRecovery {
		// RTO recovery slow-starts back toward ssthresh (CA_Loss
		// behaviour); fast recovery holds the window.
		if c.cwnd < c.ssthresh {
			c.cwnd = min64(c.cwnd+s.BytesAcked, c.ssthresh)
		}
		return
	}
	if s.MinRTT > 0 {
		c.lastMinRTT = s.MinRTT
	}
	if c.cwnd < c.ssthresh {
		c.hystart(s)
		c.cwnd += s.BytesAcked
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh
		}
		return
	}
	rtt := s.SRTT
	if rtt <= 0 {
		rtt = 100 * time.Millisecond
	}
	if !c.inEpoch {
		c.inEpoch = true
		c.epochStart = s.Now
		cwndSegs := c.segs(c.cwnd)
		if cwndSegs < c.wMax {
			c.k = math.Cbrt((c.wMax - cwndSegs) / cubicC)
		} else {
			c.k = 0
			c.wMax = cwndSegs
		}
		c.wEst = cwndSegs
		c.ackedBytes = 0
	}

	// Cubic window: W(t+RTT) is the target one RTT ahead.
	t := s.Now.Sub(c.epochStart) + rtt
	ts := t.Seconds() - c.k
	target := c.wMax + cubicC*ts*ts*ts

	// Reno-friendly region (RFC 8312 §4.2).
	c.ackedBytes += s.BytesAcked
	c.wEst += 3 * (1 - cubicBeta) / (1 + cubicBeta) * (float64(s.BytesAcked) / float64(c.cwnd))
	if target < c.wEst {
		target = c.wEst
	}

	cwndSegs := c.segs(c.cwnd)
	if target > cwndSegs {
		// Approach the target over one RTT, one increment per ACK.
		inc := (target - cwndSegs) / cwndSegs * c.segs(s.BytesAcked)
		if inc > c.segs(s.BytesAcked) {
			inc = c.segs(s.BytesAcked) // at most slow-start speed
		}
		c.cwnd += int64(inc * float64(c.mss))
	} else {
		// In the concave plateau / max probing region below target:
		// minimal growth to keep probing.
		c.ackedBytes += s.BytesAcked
		if c.ackedBytes >= 100*c.cwnd {
			c.cwnd += c.mss
			c.ackedBytes = 0
		}
	}
}

// OnLoss implements CongestionControl.
func (c *Cubic) OnLoss(now sim.Time, inflight int64) {
	cwndSegs := c.segs(c.cwnd)
	// Fast convergence: if this loss came before regaining the previous
	// wMax, release bandwidth faster.
	if cwndSegs < c.wMax {
		c.wMax = cwndSegs * (1 + cubicBeta) / 2
	} else {
		c.wMax = cwndSegs
	}
	c.cwnd = max64(int64(float64(c.cwnd)*cubicBeta), 2*c.mss)
	c.ssthresh = c.cwnd
	c.inEpoch = false
}

// OnRTO implements CongestionControl.
func (c *Cubic) OnRTO(now sim.Time, inflight int64) {
	c.wMax = c.segs(c.cwnd)
	c.ssthresh = max64(int64(float64(c.cwnd)*cubicBeta), 2*c.mss)
	c.cwnd = c.mss
	c.inEpoch = false
	c.hsTriggered = false
	c.hsPrevMin = 0
	c.hsCurrMin = 0
}

// OnExitRecovery implements CongestionControl.
func (c *Cubic) OnExitRecovery(now sim.Time) {}

// InspectCC implements Inspector: Cubic exposes its epoch anchor (W_max, K)
// so traces can show the concave/convex window evolution around each loss.
func (c *Cubic) InspectCC() CCState {
	mode := "avoidance"
	if c.cwnd < c.ssthresh {
		mode = "slow_start"
	}
	return CCState{
		Mode:          mode,
		SsthreshBytes: c.ssthresh,
		WMaxSegs:      c.wMax,
		KSec:          c.k,
	}
}

// CwndBytes implements CongestionControl.
func (c *Cubic) CwndBytes() int64 { return c.cwnd }

// PacingRate implements CongestionControl: Cubic is ACK-clocked.
func (c *Cubic) PacingRate() units.Rate { return 0 }
