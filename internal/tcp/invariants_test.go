package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// lossyNet builds a single-pair network whose forward path drops packets
// according to a seeded random process with the given drop probability.
func lossyNet(seed uint64, dropProb float64, alg string) (*sim.Engine, *Sender, *Receiver, *invariantProbe) {
	eng := sim.NewEngine(seed)
	rng := eng.Rand().Fork()
	var ids uint64

	var sndHost, rcvHost *netem.Host
	fwd := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) {
		rcvHost.Handle(p)
	}))
	dropper := packet.HandlerFunc(func(p *packet.Packet) {
		if rng.Float64() < dropProb {
			return
		}
		fwd.Handle(p)
	})
	link := netem.NewLink(eng, units.Mbps(20), 0, dropper)
	rev := netem.NewDelay(eng, 10*time.Millisecond, packet.HandlerFunc(func(p *packet.Packet) {
		sndHost.Handle(p)
	}))
	sndHost = netem.NewHost(eng, 1, link, &ids)
	rcvHost = netem.NewHost(eng, 2, rev, &ids)

	s := NewSender(sndHost, 1, 2, New(alg))
	r := NewReceiver(rcvHost, 1, 1)
	probe := &invariantProbe{s: s, r: r}
	return eng, s, r, probe
}

type invariantProbe struct {
	s       *Sender
	r       *Receiver
	lastUna int64
	lastRcv int64
	bad     string
}

func (p *invariantProbe) check() {
	switch {
	case p.s.sndUna < p.lastUna:
		p.bad = "cumulative ACK moved backwards"
	case p.r.rcvNxt < p.lastRcv:
		p.bad = "receiver frontier moved backwards"
	case p.s.sndUna > p.s.sndNxt:
		p.bad = "acked beyond sent"
	case p.r.BytesReceived > p.s.Stats.BytesSent:
		p.bad = "received more than sent"
	case p.s.CC().CwndBytes() < packet.MSS:
		p.bad = "cwnd below 1 MSS"
	case p.s.pipeBytes < 0:
		p.bad = "negative inflight"
	}
	p.lastUna = p.s.sndUna
	p.lastRcv = p.r.rcvNxt
}

// TestInvariantsUnderRandomLoss drives every algorithm through random-loss
// paths and asserts the core transport invariants at every probe tick.
func TestInvariantsUnderRandomLoss(t *testing.T) {
	for _, alg := range []string{AlgReno, AlgCubic, AlgBBR, AlgVegas} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			f := func(seed uint16, dropPerMille uint8) bool {
				drop := float64(dropPerMille%200) / 1000 // 0..20%
				eng, s, r, probe := lossyNet(uint64(seed)+1, drop, alg)
				s.Start()
				tick := sim.NewTicker(eng, 20*time.Millisecond, probe.check)
				tick.Start(false)
				eng.Run(sim.At(4 * time.Second))
				if probe.bad != "" {
					t.Logf("%s: %s (drop=%.1f%%)", alg, probe.bad, drop*100)
					return false
				}
				// Liveness: some data must get through below 20% loss.
				return r.BytesReceived > 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestStreamIntegrityUnderLoss verifies no data corruption semantics: the
// receiver's contiguous frontier never exceeds the sender's highest sent
// byte, and after the path heals everything sent (within a limit) arrives.
func TestStreamIntegrityUnderLoss(t *testing.T) {
	eng, s, r, _ := lossyNet(99, 0.05, AlgCubic)
	const total = 2_000_000
	s.SetLimit(total)
	s.Start()
	eng.Run(sim.At(60 * time.Second))
	if r.BytesReceived != total {
		t.Errorf("received %d of %d despite retransmission", r.BytesReceived, total)
	}
	if s.sndUna != total {
		t.Errorf("sender acked %d of %d", s.sndUna, total)
	}
}

// TestNoRetransmitsOnCleanPath: a loss-free path must deliver with zero
// retransmissions for every algorithm.
func TestNoRetransmitsOnCleanPath(t *testing.T) {
	for _, alg := range []string{AlgReno, AlgCubic, AlgBBR, AlgVegas} {
		eng, s, _, _ := lossyNet(7, 0, alg)
		s.SetLimit(1_000_000)
		s.Start()
		eng.Run(sim.At(30 * time.Second))
		if s.Stats.Retransmits != 0 {
			t.Errorf("%s: %d spurious retransmits on a clean path", alg, s.Stats.Retransmits)
		}
		if s.Stats.RTOs != 0 {
			t.Errorf("%s: %d RTOs on a clean path", alg, s.Stats.RTOs)
		}
	}
}

// TestBBRInflightCapProperty: BBR's inflight stays at or below
// cwnd_gain x estimated BDP (plus one segment of slack) once in PROBE_BW.
func TestBBRInflightCapProperty(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, 7*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgBBR)
	s.Start()
	b := s.CC().(*BBR)
	violations := 0
	probe := sim.NewTicker(tn.eng, 50*time.Millisecond, func() {
		if b.State() != "PROBE_BW" {
			return
		}
		cap := b.bdpBytes(bbrCwndGain) + int64(packet.MSS)
		if s.Inflight() > cap {
			violations++
		}
	})
	probe.Start(false)
	tn.eng.Run(sim.At(20 * time.Second))
	if violations > 0 {
		t.Errorf("inflight exceeded 2x estimated BDP %d times", violations)
	}
}

// TestCubicWindowFunction checks the closed-form W(t) against the
// implementation's growth right after a loss event on an idealised path.
func TestCubicWindowFunction(t *testing.T) {
	c := NewCubic()
	c.Init(1448)
	// Force a known post-loss state.
	c.cwnd = 100 * 1448
	c.OnLoss(0, 0)
	if got := c.segs(c.cwnd); got < 69 || got > 71 {
		t.Fatalf("post-loss cwnd = %.1f segments, want 70 (beta=0.7)", got)
	}
	if c.wMax != 100 {
		t.Fatalf("wMax = %v, want 100", c.wMax)
	}
	// K = cbrt(wMax*(1-beta)/C) = cbrt(100*0.3/0.4) = cbrt(75) ~ 4.217s.
	// Feed ACKs with a stable RTT for ~K seconds: the window must return
	// to ~wMax at t=K.
	rtt := 50 * time.Millisecond
	now := sim.At(0)
	for now.Seconds() < 4.217 {
		now = now.Add(rtt)
		c.OnAck(AckSample{
			Now: now, BytesAcked: 14480, RTT: rtt, SRTT: rtt, MinRTT: rtt,
			MSS: 1448, RoundTrips: int64(now / sim.At(rtt)),
		})
	}
	got := c.segs(c.cwnd)
	if got < 90 || got > 115 {
		t.Errorf("cwnd at t=K is %.1f segments, want ~100 (wMax)", got)
	}
}
