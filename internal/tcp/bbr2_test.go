package tcp

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestBBR2SaturatesSolo(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, 2*units.BDP(rate, rtt), rtt/2)
	s, r := tn.pair(0, AlgBBR2)
	s.Start()
	tn.eng.Run(sim.At(20 * time.Second))
	goodput := units.RateFromBytes(units.ByteSize(r.BytesReceived), 20*time.Second)
	if goodput.Mbit() < 20 {
		t.Errorf("BBR2 goodput %.1f Mb/s on a 25 Mb/s link", goodput.Mbit())
	}
}

func TestBBR2LearnsInflightHiUnderLoss(t *testing.T) {
	// A half-BDP queue forces loss; v2 must learn a bound where v1 would
	// keep hammering.
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(1, rate, units.BDP(rate, rtt)/2, rtt/2)
	s, _ := tn.pair(0, AlgBBR2)
	s.Start()
	tn.eng.Run(sim.At(20 * time.Second))
	b := s.CC().(*BBR2)
	if b.InflightHi() == 0 {
		t.Error("BBR2 never set inflight_hi despite sustained loss")
	}
}

func TestBBR2GentlerThanV1AgainstInelasticUDP(t *testing.T) {
	// v2's loss response must make it less damaging to a fixed-rate UDP
	// flow at a shallow queue than loss-blind v1.
	lossFor := func(alg string) float64 {
		rate := units.Mbps(25)
		rtt := 16500 * time.Microsecond
		tn := newTestNet(1, rate, units.BDP(rate, rtt)/2, rtt/2)
		s, _ := tn.pair(0, alg)
		sent, dropped := 0, tn.queue.Drops
		blast := sim.NewTicker(tn.eng, 700*time.Microsecond, func() {
			tn.shaper.Handle(&packet.Packet{Flow: 99, Kind: packet.KindFrame, Size: 1514, Dst: 201})
			sent++
		})
		blast.Start(true)
		s.Start()
		tn.eng.Run(sim.At(30 * time.Second))
		return float64(tn.queue.Drops-dropped) / float64(sent)
	}
	v1 := lossFor(AlgBBR)
	v2 := lossFor(AlgBBR2)
	if v2 >= v1 {
		t.Errorf("BBR2 inflicted loss %.3f >= BBR1 %.3f against inelastic UDP", v2, v1)
	}
}

func TestBBR2ProbeRTTShallow(t *testing.T) {
	// v2 visits PROBE_RTT at half-BDP cwnd, not 4 packets: the cwnd
	// should never collapse to the v1 floor during steady state.
	rate := units.Mbps(25)
	rtt := 16 * time.Millisecond
	tn := newTestNet(2, rate, 2*units.BDP(rate, rtt), rtt/2)
	s, _ := tn.pair(0, AlgBBR2)
	s2, _ := tn.pair(1, AlgCubic)
	s.Start()
	s2.Start()
	b := s.CC().(*BBR2)
	minCwnd := int64(1 << 60)
	probe := sim.NewTicker(tn.eng, 20*time.Millisecond, func() {
		if tn.eng.Now() > sim.At(5*time.Second) && b.CwndBytes() < minCwnd {
			minCwnd = b.CwndBytes()
		}
	})
	probe.Start(false)
	tn.eng.Run(sim.At(25 * time.Second))
	if minCwnd < 4*int64(packet.MSS) {
		t.Errorf("cwnd collapsed to %d during steady state", minCwnd)
	}
}
