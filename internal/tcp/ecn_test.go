package tcp

import (
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

// codelNet builds a single pair over an ECN-enabled CoDel bottleneck.
func codelNet(ecn bool) (*sim.Engine, *netem.CoDel, *Sender, *Receiver) {
	eng := sim.NewEngine(11)
	var ids uint64
	rate := units.Mbps(20)
	rtt := 20 * time.Millisecond

	var sndH, rcvH *netem.Host
	cd := netem.NewCoDel(7 * units.BDP(rate, rtt))
	cd.ECN = ecn
	fwd := netem.NewDelay(eng, rtt/2, packet.HandlerFunc(func(p *packet.Packet) { rcvH.Handle(p) }))
	sh := netem.NewShaper(eng, rate, 2*packet.MTU, cd, fwd)
	rev := netem.NewDelay(eng, rtt/2, packet.HandlerFunc(func(p *packet.Packet) { sndH.Handle(p) }))
	sndH = netem.NewHost(eng, 1, sh, &ids)
	rcvH = netem.NewHost(eng, 2, rev, &ids)

	s := NewSender(sndH, 1, 2, New(AlgCubic))
	if ecn {
		s.EnableECN()
	}
	r := NewReceiver(rcvH, 1, 1)
	return eng, cd, s, r
}

func TestECNMarksReplaceDrops(t *testing.T) {
	eng, cd, s, r := codelNet(true)
	s.Start()
	eng.Run(sim.At(30 * time.Second))
	if cd.Marks == 0 {
		t.Fatal("ECN CoDel never marked despite a saturating Cubic flow")
	}
	if s.Stats.ECNResponses == 0 {
		t.Fatal("sender never responded to ECE echoes")
	}
	// With marking doing the signalling, CoDel-initiated drops vanish
	// (only overflow drops remain, and the cwnd responses prevent those).
	if cd.Drops > cd.Marks/10 {
		t.Errorf("drops %d vs marks %d: marking should displace dropping", cd.Drops, cd.Marks)
	}
	if s.Stats.Retransmits > 20 {
		t.Errorf("%d retransmits with ECN; congestion signalling should be loss-free", s.Stats.Retransmits)
	}
	goodput := units.RateFromBytes(units.ByteSize(r.BytesReceived), 30*time.Second)
	if goodput.Mbit() < 16 {
		t.Errorf("goodput %.1f Mb/s with ECN on a 20 Mb/s link", goodput.Mbit())
	}
}

func TestECNKeepsQueueAtTarget(t *testing.T) {
	eng, cd, s, _ := codelNet(true)
	s.Start()
	sum, n := 0.0, 0
	probe := sim.NewTicker(eng, 100*time.Millisecond, func() {
		if eng.Now() > sim.At(5*time.Second) {
			sum += float64(cd.Bytes())
			n++
		}
	})
	probe.Start(false)
	eng.Run(sim.At(30 * time.Second))
	avg := units.ByteSize(sum / float64(n))
	// CoDel holds the queue near its 5 ms target: 12.5 kB at 20 Mb/s.
	// Allow generous slack for Cubic's sawtooth.
	if avg > 40*units.KB {
		t.Errorf("average queue %v under ECN CoDel, want near the 5 ms target", avg)
	}
}

func TestNonECNFlowStillDropped(t *testing.T) {
	eng, cd, s, _ := codelNet(false)
	s.Start()
	eng.Run(sim.At(20 * time.Second))
	if cd.Marks != 0 {
		t.Errorf("CoDel marked %d packets of a non-ECN flow", cd.Marks)
	}
	if cd.Drops == 0 {
		t.Error("CoDel never dropped a non-ECN saturating flow")
	}
	if s.Stats.ECNResponses != 0 {
		t.Error("sender reacted to ECE without ECN enabled")
	}
}

func TestECNResponseRateLimited(t *testing.T) {
	// Feed the sender a burst of ECE acks directly; only one response per
	// SRTT may happen.
	eng := sim.NewEngine(3)
	var ids uint64
	out := packet.HandlerFunc(func(p *packet.Packet) {})
	h := netem.NewHost(eng, 1, out, &ids)
	s := NewSender(h, 1, 2, New(AlgCubic))
	s.EnableECN()
	s.srtt = 50 * time.Millisecond
	before := s.CC().CwndBytes()
	for i := 0; i < 5; i++ {
		s.Handle(&packet.Packet{Flow: 1, Kind: packet.KindAck, Ack: 0, App: &ackMeta{ece: true}})
	}
	after := s.CC().CwndBytes()
	if s.Stats.ECNResponses != 1 {
		t.Errorf("ECN responses = %d for a same-instant ECE burst, want 1", s.Stats.ECNResponses)
	}
	if after >= before {
		t.Error("cwnd did not shrink on ECE")
	}
}
