package tcp

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestDebugBBRRatchet(t *testing.T) {
	rate := units.Mbps(25)
	rtt := 16500 * time.Microsecond
	q := 2 * units.BDP(rate, rtt)
	tn := newTestNet(1, rate, q, rtt/2)
	s, r := tn.pair(0, AlgBBR)
	blast := sim.NewTicker(tn.eng, 550*time.Microsecond, func() {
		tn.shaper.Handle(&packet.Packet{Flow: 99, Kind: packet.KindFrame, Size: 1514, Dst: 201})
	})
	blast.Start(true)
	s.Start()
	prevBytes := int64(0)
	probe := sim.NewTicker(tn.eng, 10*time.Second, func() {
		b := s.CC().(*BBR)
		thr := float64(r.BytesReceived-prevBytes) * 8 / 10 / 1e6
		prevBytes = r.BytesReceived
		fmt.Printf("t=%3.0fs thr=%5.2f btlbw=%5.2f rtprop=%v cwnd=%d pipe=%d state=%s qocc=%d\n",
			tn.eng.Now().Seconds(), thr, b.BtlBw().Mbit(), b.RTProp(), b.CwndBytes(), s.pipeBytes, b.State(), tn.queue.Bytes())
	})
	probe.Start(false)
	tn.eng.Run(sim.At(120 * time.Second))
}
