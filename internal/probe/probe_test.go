package probe

import (
	"strings"
	"testing"
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/units"
)

func TestEventLogRingWrap(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 10; i++ {
		l.Record(Event{At: sim.Time(i), Kind: EvEnqueue, ID: uint64(i)})
	}
	if l.Total() != 10 || l.Len() != 4 || l.Lost() != 6 {
		t.Fatalf("total=%d len=%d lost=%d", l.Total(), l.Len(), l.Lost())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	// The ring keeps the newest events in chronological order.
	for i, ev := range evs {
		if want := uint64(6 + i); ev.ID != want {
			t.Errorf("event %d: id = %d, want %d", i, ev.ID, want)
		}
	}
}

func TestEventLogUnderfill(t *testing.T) {
	l := NewEventLog(8)
	for i := 0; i < 3; i++ {
		l.Record(Event{ID: uint64(i)})
	}
	if l.Lost() != 0 || l.Len() != 3 {
		t.Fatalf("lost=%d len=%d", l.Lost(), l.Len())
	}
	evs := l.Events()
	for i, ev := range evs {
		if ev.ID != uint64(i) {
			t.Errorf("event %d: id = %d", i, ev.ID)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		EvEnqueue: "enqueue", EvDequeue: "dequeue", EvDrop: "drop", EvDeliver: "deliver",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestQueueProbeSampling(t *testing.T) {
	eng := sim.NewEngine(1)
	q := netem.NewDropTail(10 * packet.MTU)
	p := New(eng, Config{Interval: 100 * time.Millisecond})
	qp := p.AttachQueue("bottleneck", q)
	q.SetDropCallback(func(pk *packet.Packet) { p.OnDrop(qp, pk) })

	// Two packets sit in the queue from 50 ms on; sojourn grows with time.
	eng.Schedule(50*time.Millisecond, func() {
		q.Enqueue(&packet.Packet{Flow: 1, ID: 1, Size: 1000}, eng.Now())
		q.Enqueue(&packet.Packet{Flow: 1, ID: 2, Size: 1000}, eng.Now())
	})
	p.Start()
	eng.Run(sim.At(time.Second))
	p.Stop()

	if qp.Samples.Len() < 10 {
		t.Fatalf("samples = %d", qp.Samples.Len())
	}
	first := qp.Samples.At(0)
	if first.Packets != 0 || first.HasSojourn {
		t.Errorf("t=0 sample should be empty: %+v", first)
	}
	last := qp.Samples.At(qp.Samples.Len() - 1)
	if last.Packets != 2 || int64(last.Bytes) != 2000 {
		t.Errorf("last sample: %+v", last)
	}
	if !last.HasSojourn || last.Sojourn < 900*time.Millisecond {
		t.Errorf("sojourn = %v (has=%v), want >= 900ms", last.Sojourn, last.HasSojourn)
	}
}

func TestQueueProbeDropEvents(t *testing.T) {
	eng := sim.NewEngine(1)
	q := netem.NewDropTail(packet.MTU) // room for a single MTU
	p := New(eng, Config{Interval: 100 * time.Millisecond, Events: 16})
	qp := p.AttachQueue("bottleneck", q)
	q.SetDropCallback(func(pk *packet.Packet) { p.OnDrop(qp, pk) })

	q.Enqueue(&packet.Packet{Flow: 1, ID: 1, Size: 1400}, eng.Now())
	q.Enqueue(&packet.Packet{Flow: 2, ID: 2, Size: 1400}, eng.Now()) // over limit
	if qp.DropEvents.Len() != 1 || qp.DropEvents.At(0).ID != 2 {
		t.Fatalf("drop events: %+v", qp.DropEvents)
	}
	evs := p.Events().Events()
	if len(evs) != 1 || evs[0].Kind != EvDrop || evs[0].Flow != 2 {
		t.Fatalf("ring events: %+v", evs)
	}
}

func TestShaperTapsFeedEventRing(t *testing.T) {
	eng := sim.NewEngine(1)
	q := netem.NewDropTail(100 * packet.MTU)
	sink := packet.HandlerFunc(func(*packet.Packet) {})
	// 1 kB/ms shaper with a one-MTU burst: the second packet must queue.
	sh := netem.NewShaper(eng, units.Rate(8_000_000), packet.MTU, q, sink)
	p := New(eng, Config{Interval: time.Second, Events: 64})
	sh.SetQueueTap(p.LogTap(EvEnqueue), p.LogTap(EvDequeue))

	sh.Handle(&packet.Packet{Flow: 1, ID: 1, Size: 1400}) // passes on tokens
	sh.Handle(&packet.Packet{Flow: 1, ID: 2, Size: 1400}) // queued
	eng.Run(sim.At(time.Second))

	var kinds []string
	for _, ev := range p.Events().Events() {
		kinds = append(kinds, ev.Kind.String())
	}
	got := strings.Join(kinds, ",")
	if got != "enqueue,dequeue" {
		t.Fatalf("event kinds = %q, want enqueue,dequeue", got)
	}
}

func TestExportCSVShape(t *testing.T) {
	eng := sim.NewEngine(1)
	q := netem.NewDropTail(10 * packet.MTU)
	p := New(eng, Config{Interval: 250 * time.Millisecond})
	p.AttachQueue("bottleneck", q)
	p.Start()
	eng.Run(sim.At(time.Second))

	var sb strings.Builder
	if err := p.WriteQueueCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+p.Queues()[0].Samples.Len() {
		t.Fatalf("lines = %d, samples = %d", len(lines), p.Queues()[0].Samples.Len())
	}
	if !strings.HasPrefix(lines[0], "queue,t_s,packets,bytes") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "bottleneck,0.000000,0,0,") {
		t.Fatalf("first row = %q", lines[1])
	}

	m := p.Meta()
	if m.QueueSamples != p.Queues()[0].Samples.Len() || m.IntervalMS != 250 {
		t.Fatalf("meta: %+v", m)
	}
}

func TestDisabledEventLogIsNil(t *testing.T) {
	eng := sim.NewEngine(1)
	p := New(eng, Config{})
	if p.Events() != nil {
		t.Fatal("events ring allocated with Events=0")
	}
	// Logging without a ring must be a no-op, not a panic.
	p.Log(EvDeliver, &packet.Packet{})
}
