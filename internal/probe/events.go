package probe

import (
	"repro/internal/packet"
	"repro/internal/sim"
)

// EventKind classifies a packet lifecycle event.
type EventKind uint8

// Lifecycle event kinds: a packet enters the bottleneck queue, leaves it for
// transmission, is dropped by the queue's policy, or clears the bottleneck
// (post-shaper, pre-propagation — the capture point the paper's tcpdump on
// the router egress corresponds to).
const (
	EvEnqueue EventKind = iota
	EvDequeue
	EvDrop
	EvDeliver
)

// String returns the export spelling of the kind.
func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "enqueue"
	case EvDequeue:
		return "dequeue"
	case EvDrop:
		return "drop"
	case EvDeliver:
		return "deliver"
	}
	return "unknown"
}

// Event is one packet lifecycle record.
type Event struct {
	At   sim.Time
	Kind EventKind
	Flow packet.FlowID
	ID   uint64
	Size int
}

// EventLog is a bounded ring buffer of lifecycle events. When full, new
// events overwrite the oldest — the trace keeps the end of the run, which is
// where post-mortems usually look. Records are O(1) with no allocation after
// construction, so logging stays off the simulator's critical path.
type EventLog struct {
	buf   []Event
	next  int
	total uint64
}

// NewEventLog returns a ring holding at most capacity events.
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		panic("probe: event log capacity must be positive")
	}
	return &EventLog{buf: make([]Event, 0, capacity)}
}

// Record appends ev, overwriting the oldest event when full.
func (l *EventLog) Record(ev Event) {
	l.total++
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
		return
	}
	l.buf[l.next] = ev
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
	}
}

// Events returns the retained events in chronological order. The returned
// slice is freshly allocated.
func (l *EventLog) Events() []Event {
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Len returns the number of retained events.
func (l *EventLog) Len() int { return len(l.buf) }

// Total returns the number of events ever recorded, including overwritten
// ones.
func (l *EventLog) Total() uint64 { return l.total }

// Lost returns the number of events overwritten by ring wrap-around.
func (l *EventLog) Lost() uint64 { return l.total - uint64(len(l.buf)) }
