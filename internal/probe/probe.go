// Package probe is the run-local instrumentation layer: the simulator's
// answer to Linux tcp_probe, `ss -i` polling and `tc -s qdisc show`. It
// snapshots per-flow congestion-control state (cwnd, ssthresh, pacing rate,
// bytes in flight, RTT estimators, delivery rate, plus the CC-specific
// internals exposed through tcp.Inspector), samples bottleneck queue
// occupancy and head sojourn time on a sim-event ticker, and keeps a bounded
// ring buffer of per-packet lifecycle events (enqueue/dequeue/drop/deliver).
//
// The package deliberately knows nothing about experiments: callers attach
// senders and queues by name, start the probe, and export the captured
// series afterwards (see export.go). When no probe is attached the hooks it
// would use (tcp.Sender ACK observers, netem.Shaper queue taps) stay nil and
// cost one predictable branch per packet, so disabled runs pay nothing
// measurable.
package probe

import (
	"time"

	"repro/internal/netem"
	"repro/internal/packet"
	"repro/internal/sim"
	"repro/internal/tcp"
	"repro/internal/units"
)

// DefaultInterval is the sampler tick used when Config.Interval is zero and
// per-ACK sampling is off. 100 ms matches the `ss -i` polling cadence the
// paper's methodology section describes for sender-side state capture.
const DefaultInterval = 100 * time.Millisecond

// Config selects what the probe records.
type Config struct {
	// Interval is the periodic sampling interval for CC state and queue
	// telemetry. Zero selects DefaultInterval unless PerAck is set, in
	// which case periodic CC sampling is replaced by ACK-driven sampling
	// (queue telemetry still ticks at DefaultInterval).
	Interval time.Duration
	// PerAck snapshots CC state on every ACK the sender processes, the
	// tcp_probe behaviour. Produces large traces; prefer Interval for
	// sweeps.
	PerAck bool
	// Events is the capacity of the packet lifecycle event ring. Zero
	// disables lifecycle logging entirely.
	Events int
}

// tickInterval resolves the periodic sampling interval.
func (c Config) tickInterval() time.Duration {
	if c.Interval > 0 {
		return c.Interval
	}
	return DefaultInterval
}

// CCSample is one congestion-control snapshot, the simulator's tcp_probe
// line.
type CCSample struct {
	At             sim.Time
	CwndBytes      int64
	SsthreshBytes  int64
	PacingRate     units.Rate
	InflightBytes  int64
	SRTT           time.Duration
	RTTVar         time.Duration
	MinRTT         time.Duration
	DeliveryRate   units.Rate
	DeliveredBytes int64
	InRecovery     bool
	// State carries the controller-specific internals (Cubic W_max/K, BBR
	// state machine and btlbw/rtprop estimates, ...). Zero-valued when the
	// controller does not implement tcp.Inspector.
	State tcp.CCState
}

// CCSeries is a structure-of-arrays congestion-control time series: one
// flat column per field, appended in sample order. Columns grow
// independently of row width, so a 100 ms sampler over a 9-minute trace
// stays cache-friendly and reallocation stays cheap; CCSample is the
// materialised-row view for exports and tests.
type CCSeries struct {
	at             []sim.Time
	cwndBytes      []int64
	ssthreshBytes  []int64
	pacingRate     []units.Rate
	inflightBytes  []int64
	srtt           []time.Duration
	rttVar         []time.Duration
	minRTT         []time.Duration
	deliveryRate   []units.Rate
	deliveredBytes []int64
	inRecovery     []bool
	state          []tcp.CCState
}

// Len returns the number of samples.
func (c *CCSeries) Len() int { return len(c.at) }

// At materialises sample i as a row.
func (c *CCSeries) At(i int) CCSample {
	return CCSample{
		At:             c.at[i],
		CwndBytes:      c.cwndBytes[i],
		SsthreshBytes:  c.ssthreshBytes[i],
		PacingRate:     c.pacingRate[i],
		InflightBytes:  c.inflightBytes[i],
		SRTT:           c.srtt[i],
		RTTVar:         c.rttVar[i],
		MinRTT:         c.minRTT[i],
		DeliveryRate:   c.deliveryRate[i],
		DeliveredBytes: c.deliveredBytes[i],
		InRecovery:     c.inRecovery[i],
		State:          c.state[i],
	}
}

func (c *CCSeries) append(s CCSample) {
	c.at = append(c.at, s.At)
	c.cwndBytes = append(c.cwndBytes, s.CwndBytes)
	c.ssthreshBytes = append(c.ssthreshBytes, s.SsthreshBytes)
	c.pacingRate = append(c.pacingRate, s.PacingRate)
	c.inflightBytes = append(c.inflightBytes, s.InflightBytes)
	c.srtt = append(c.srtt, s.SRTT)
	c.rttVar = append(c.rttVar, s.RTTVar)
	c.minRTT = append(c.minRTT, s.MinRTT)
	c.deliveryRate = append(c.deliveryRate, s.DeliveryRate)
	c.deliveredBytes = append(c.deliveredBytes, s.DeliveredBytes)
	c.inRecovery = append(c.inRecovery, s.InRecovery)
	c.state = append(c.state, s.State)
}

// FlowProbe samples one TCP sender.
type FlowProbe struct {
	// Name labels the flow in exports, e.g. "iperf-cubic-0".
	Name string
	// Alg is the congestion-control algorithm name.
	Alg string
	// Samples is the captured time series, in sample order.
	Samples CCSeries

	s *tcp.Sender
}

// snapshot appends one sample at time now.
func (f *FlowProbe) snapshot(now sim.Time) {
	s := f.s
	cc := s.CC()
	smp := CCSample{
		At:             now,
		CwndBytes:      cc.CwndBytes(),
		PacingRate:     cc.PacingRate(),
		InflightBytes:  s.Inflight(),
		SRTT:           s.SRTT(),
		RTTVar:         s.RTTVar(),
		MinRTT:         s.MinRTT(),
		DeliveryRate:   s.DeliveryRate(),
		DeliveredBytes: s.Delivered(),
		InRecovery:     s.InRecovery(),
	}
	if insp, ok := cc.(tcp.Inspector); ok {
		smp.State = insp.InspectCC()
		smp.SsthreshBytes = smp.State.SsthreshBytes
	}
	f.Samples.append(smp)
}

// QueueSample is one bottleneck-queue telemetry point.
type QueueSample struct {
	At      sim.Time
	Packets int
	Bytes   units.ByteSize
	// Sojourn is the head packet's waiting time; valid only when
	// HasSojourn is true (the queue was non-empty and supports sojourn
	// accounting).
	Sojourn    time.Duration
	HasSojourn bool
	// CumDrops is the number of drops observed up to this sample.
	CumDrops int
}

// QueueSeries is the structure-of-arrays occupancy/sojourn time series;
// QueueSample is its materialised-row view.
type QueueSeries struct {
	at         []sim.Time
	packets    []int
	bytes      []units.ByteSize
	sojourn    []time.Duration
	hasSojourn []bool
	cumDrops   []int
}

// Len returns the number of samples.
func (q *QueueSeries) Len() int { return len(q.at) }

// At materialises sample i as a row.
func (q *QueueSeries) At(i int) QueueSample {
	return QueueSample{
		At:         q.at[i],
		Packets:    q.packets[i],
		Bytes:      q.bytes[i],
		Sojourn:    q.sojourn[i],
		HasSojourn: q.hasSojourn[i],
		CumDrops:   q.cumDrops[i],
	}
}

func (q *QueueSeries) append(s QueueSample) {
	q.at = append(q.at, s.At)
	q.packets = append(q.packets, s.Packets)
	q.bytes = append(q.bytes, s.Bytes)
	q.sojourn = append(q.sojourn, s.Sojourn)
	q.hasSojourn = append(q.hasSojourn, s.HasSojourn)
	q.cumDrops = append(q.cumDrops, s.CumDrops)
}

// DropEvent records one packet dropped by a probed queue.
type DropEvent struct {
	At   sim.Time
	Flow packet.FlowID
	ID   uint64
	Size int
}

// DropSeries is the structure-of-arrays drop-event series; DropEvent is its
// materialised-row view.
type DropSeries struct {
	at   []sim.Time
	flow []packet.FlowID
	id   []uint64
	size []int
}

// Len returns the number of recorded drops.
func (d *DropSeries) Len() int { return len(d.at) }

// At materialises drop i as a row.
func (d *DropSeries) At(i int) DropEvent {
	return DropEvent{At: d.at[i], Flow: d.flow[i], ID: d.id[i], Size: d.size[i]}
}

func (d *DropSeries) append(e DropEvent) {
	d.at = append(d.at, e.At)
	d.flow = append(d.flow, e.Flow)
	d.id = append(d.id, e.ID)
	d.size = append(d.size, e.Size)
}

// QueueProbe samples one bottleneck queue.
type QueueProbe struct {
	// Name labels the queue in exports, e.g. "bottleneck".
	Name string
	// Samples is the occupancy/sojourn time series.
	Samples QueueSeries
	// DropEvents lists every drop with its sim timestamp, in order.
	DropEvents DropSeries

	q     netem.Queue
	drops int
}

// snapshot appends one sample at time now.
func (qp *QueueProbe) snapshot(now sim.Time) {
	smp := QueueSample{
		At:       now,
		Packets:  qp.q.Len(),
		Bytes:    qp.q.Bytes(),
		CumDrops: qp.drops,
	}
	if hs, ok := qp.q.(netem.HeadSojourner); ok {
		if d, ok := hs.HeadSojourn(now); ok {
			smp.Sojourn = d
			smp.HasSojourn = true
		}
	}
	qp.Samples.append(smp)
}

// Probe owns all instrumentation for one run.
type Probe struct {
	eng    *sim.Engine
	cfg    Config
	flows  []*FlowProbe
	queues []*QueueProbe
	events *EventLog
	ticker *sim.Ticker
}

// New returns a probe for eng. Call the Attach methods before Start.
func New(eng *sim.Engine, cfg Config) *Probe {
	p := &Probe{eng: eng, cfg: cfg}
	if cfg.Events > 0 {
		p.events = NewEventLog(cfg.Events)
	}
	return p
}

// Config returns the probe's configuration.
func (p *Probe) Config() Config { return p.cfg }

// Flows returns the attached flow probes.
func (p *Probe) Flows() []*FlowProbe { return p.flows }

// Queues returns the attached queue probes.
func (p *Probe) Queues() []*QueueProbe { return p.queues }

// Events returns the lifecycle event log, nil when disabled.
func (p *Probe) Events() *EventLog { return p.events }

// AttachSender registers a TCP sender for CC sampling under name. With
// Config.PerAck the sender's ACK observer is claimed; the probe is then the
// sole observer for that sender.
func (p *Probe) AttachSender(name string, s *tcp.Sender) *FlowProbe {
	fp := &FlowProbe{Name: name, Alg: s.CC().Name(), s: s}
	p.flows = append(p.flows, fp)
	if p.cfg.PerAck {
		s.SetAckObserver(func(tcp.AckSample) { fp.snapshot(p.eng.Now()) })
	}
	return fp
}

// AttachQueue registers a bottleneck queue for occupancy/sojourn sampling
// under name. The caller remains responsible for routing the queue's drop
// callback into qp.OnDrop (drop callbacks are single-slot, and the capture
// layer usually owns them).
func (p *Probe) AttachQueue(name string, q netem.Queue) *QueueProbe {
	qp := &QueueProbe{Name: name, q: q}
	p.queues = append(p.queues, qp)
	return qp
}

// AttachDropSource registers a drop-only probe under name, for elements
// that kill packets without queueing them (e.g. a netem-style impairer).
// There is no occupancy to poll, so the ticker skips it, but drops routed
// into OnDrop land in the drop-event series and exports like any queue's.
func (p *Probe) AttachDropSource(name string) *QueueProbe {
	qp := &QueueProbe{Name: name}
	p.queues = append(p.queues, qp)
	return qp
}

// OnDrop records a drop on the queue probe: a drop event, the cumulative
// counter for the occupancy series, and a ring entry when lifecycle logging
// is on. Wire it into the queue's drop callback (chained with any other
// consumer).
func (p *Probe) OnDrop(qp *QueueProbe, pk *packet.Packet) {
	now := p.eng.Now()
	qp.drops++
	qp.DropEvents.append(DropEvent{At: now, Flow: pk.Flow, ID: pk.ID, Size: pk.Size})
	p.Log(EvDrop, pk)
}

// Log records a lifecycle event when the ring is enabled; otherwise it is a
// nil-check and return. Suitable for use inside packet taps.
func (p *Probe) Log(kind EventKind, pk *packet.Packet) {
	if p.events == nil {
		return
	}
	p.events.Record(Event{At: p.eng.Now(), Kind: kind, Flow: pk.Flow, ID: pk.ID, Size: pk.Size})
}

// LogTap adapts Log to a packet tap for the given kind.
func (p *Probe) LogTap(kind EventKind) func(*packet.Packet) {
	return func(pk *packet.Packet) { p.Log(kind, pk) }
}

// Start begins periodic sampling. CC state ticks unless PerAck claimed the
// ACK path; queue telemetry always ticks (there is no per-ACK equivalent for
// a queue). Sampling starts immediately so every series has a t=0 point.
func (p *Probe) Start() {
	p.ticker = sim.NewTicker(p.eng, p.cfg.tickInterval(), func() {
		now := p.eng.Now()
		if !p.cfg.PerAck {
			for _, f := range p.flows {
				f.snapshot(now)
			}
		}
		for _, q := range p.queues {
			if q.q == nil {
				continue // drop-only source: nothing to poll
			}
			q.snapshot(now)
		}
	})
	p.ticker.Start(true)
}

// Stop halts periodic sampling.
func (p *Probe) Stop() {
	if p.ticker != nil {
		p.ticker.Stop()
	}
}

// CCSampleCount returns the total CC samples across all flows.
func (p *Probe) CCSampleCount() int {
	n := 0
	for _, f := range p.flows {
		n += f.Samples.Len()
	}
	return n
}

// QueueSampleCount returns the total queue samples across all queues.
func (p *Probe) QueueSampleCount() int {
	n := 0
	for _, q := range p.queues {
		n += q.Samples.Len()
	}
	return n
}
