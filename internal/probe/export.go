package probe

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ts renders a sim timestamp as seconds with microsecond precision. Purely
// integer arithmetic so exports are byte-identical for identical runs
// regardless of platform float formatting.
func ts(at sim.Time) string {
	ns := int64(at)
	return fmt.Sprintf("%d.%06d", ns/int64(time.Second), (ns%int64(time.Second))/int64(time.Microsecond))
}

// usOrEmpty renders a duration in whole microseconds, or "" for unset
// optional columns.
func usOrEmpty(d time.Duration, ok bool) string {
	if !ok {
		return ""
	}
	return fmt.Sprintf("%d", d.Microseconds())
}

// WriteCCCSV writes every flow's CC sample series as one flat CSV, flows in
// attach order. Controller-specific columns are left empty where they do not
// apply (e.g. btlbw for Cubic).
func (p *Probe) WriteCCCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "flow,alg,t_s,cwnd_bytes,ssthresh_bytes,pacing_bps,inflight_bytes,srtt_us,rttvar_us,min_rtt_us,delivery_bps,delivered_bytes,in_recovery,mode,wmax_segs,k_s,btlbw_bps,rtprop_us,inflight_hi_bytes,base_rtt_us")
	for _, f := range p.flows {
		for i := 0; i < f.Samples.Len(); i++ {
			s := f.Samples.At(i)
			rec := 0
			if s.InRecovery {
				rec = 1
			}
			wmax, k := "", ""
			if s.State.WMaxSegs != 0 {
				wmax = fmt.Sprintf("%.4f", s.State.WMaxSegs)
				k = fmt.Sprintf("%.6f", s.State.KSec)
			}
			btlbw, rtprop := "", ""
			if s.State.BtlBw != 0 || s.State.RTProp != 0 {
				btlbw = fmt.Sprintf("%d", int64(s.State.BtlBw))
				rtprop = fmt.Sprintf("%d", s.State.RTProp.Microseconds())
			}
			inflHi := ""
			if s.State.InflightHiBytes != 0 {
				inflHi = fmt.Sprintf("%d", s.State.InflightHiBytes)
			}
			baseRTT := ""
			if s.State.BaseRTT != 0 {
				baseRTT = fmt.Sprintf("%d", s.State.BaseRTT.Microseconds())
			}
			fmt.Fprintf(bw, "%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%s,%s,%s,%s,%s,%s\n",
				f.Name, f.Alg, ts(s.At),
				s.CwndBytes, s.SsthreshBytes, int64(s.PacingRate), s.InflightBytes,
				s.SRTT.Microseconds(), s.RTTVar.Microseconds(), s.MinRTT.Microseconds(),
				int64(s.DeliveryRate), s.DeliveredBytes, rec,
				s.State.Mode, wmax, k, btlbw, rtprop, inflHi, baseRTT)
		}
	}
	return bw.Flush()
}

// WriteQueueCSV writes every queue's occupancy/sojourn series. The sojourn
// column is empty when the queue was empty at the sample instant (or the
// queue type has no sojourn accounting).
func (p *Probe) WriteQueueCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "queue,t_s,packets,bytes,sojourn_us,cum_drops")
	for _, qp := range p.queues {
		for i := 0; i < qp.Samples.Len(); i++ {
			s := qp.Samples.At(i)
			fmt.Fprintf(bw, "%s,%s,%d,%d,%s,%d\n",
				qp.Name, ts(s.At), s.Packets, int64(s.Bytes),
				usOrEmpty(s.Sojourn, s.HasSojourn), s.CumDrops)
		}
	}
	return bw.Flush()
}

// WriteDropsCSV writes every queue's drop events with sim timestamps.
func (p *Probe) WriteDropsCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "queue,t_s,flow,id,size")
	for _, qp := range p.queues {
		for i := 0; i < qp.DropEvents.Len(); i++ {
			d := qp.DropEvents.At(i)
			fmt.Fprintf(bw, "%s,%s,%d,%d,%d\n", qp.Name, ts(d.At), d.Flow, d.ID, d.Size)
		}
	}
	return bw.Flush()
}

// WriteEventsJSONL writes the retained lifecycle events, one JSON object per
// line, oldest first. Returns nil without writing when the ring is disabled.
func (p *Probe) WriteEventsJSONL(w io.Writer) error {
	if p.events == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, ev := range p.events.Events() {
		fmt.Fprintf(bw, "{\"t_s\":%s,\"kind\":%q,\"flow\":%d,\"id\":%d,\"size\":%d}\n",
			ts(ev.At), ev.Kind.String(), ev.Flow, ev.ID, ev.Size)
	}
	return bw.Flush()
}

// Meta summarises the capture without export paths.
func (p *Probe) Meta() obs.ProbeMeta {
	m := obs.ProbeMeta{
		IntervalMS:   float64(p.cfg.tickInterval()) / float64(time.Millisecond),
		PerAck:       p.cfg.PerAck,
		CCSamples:    p.CCSampleCount(),
		QueueSamples: p.QueueSampleCount(),
	}
	if p.events != nil {
		m.Events = uint64(p.events.Len())
		m.EventsLost = p.events.Lost()
	}
	return m
}

// Export writes the captured series to dir as base.cc.csv, base.queue.csv,
// base.drops.csv and (when the ring is enabled) base.events.jsonl, creating
// dir if needed, and returns the filled metadata. File names land in the
// metadata relative to dir, matching how run logs reference artefacts.
func (p *Probe) Export(dir, base string) (obs.ProbeMeta, error) {
	m := p.Meta()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return m, err
	}
	write := func(name string, fn func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write(base+".cc.csv", p.WriteCCCSV); err != nil {
		return m, err
	}
	m.CCCSV = base + ".cc.csv"
	if err := write(base+".queue.csv", p.WriteQueueCSV); err != nil {
		return m, err
	}
	m.QueueCSV = base + ".queue.csv"
	if err := write(base+".drops.csv", p.WriteDropsCSV); err != nil {
		return m, err
	}
	m.DropsCSV = base + ".drops.csv"
	if p.events != nil {
		if err := write(base+".events.jsonl", p.WriteEventsJSONL); err != nil {
			return m, err
		}
		m.EventsJSONL = base + ".events.jsonl"
	}
	return m, nil
}
