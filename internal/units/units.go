// Package units provides typed quantities used throughout the simulator:
// data rates in bits per second, byte sizes, and bandwidth-delay-product
// helpers. Keeping these as distinct types prevents the classic
// bits-versus-bytes confusion in rate-limiter and congestion-control math.
package units

import (
	"fmt"
	"math"
	"time"
)

// Rate is a data rate in bits per second.
type Rate int64

// Common rate constants.
const (
	BitPerSec  Rate = 1
	KbitPerSec Rate = 1_000
	MbitPerSec Rate = 1_000_000
	GbitPerSec Rate = 1_000_000_000
)

// Mbps returns a Rate of m megabits per second.
func Mbps(m float64) Rate { return Rate(m * float64(MbitPerSec)) }

// Kbps returns a Rate of k kilobits per second.
func Kbps(k float64) Rate { return Rate(k * float64(KbitPerSec)) }

// Gbps returns a Rate of g gigabits per second.
func Gbps(g float64) Rate { return Rate(g * float64(GbitPerSec)) }

// Mbit returns the rate in megabits per second as a float.
func (r Rate) Mbit() float64 { return float64(r) / float64(MbitPerSec) }

// BytesPerSec returns the rate in bytes per second.
func (r Rate) BytesPerSec() float64 { return float64(r) / 8 }

// TimeToTransmit returns how long transmitting n bytes takes at rate r.
// A zero or negative rate transmits instantaneously (infinite capacity).
func (r Rate) TimeToTransmit(n ByteSize) time.Duration {
	if r <= 0 {
		return 0
	}
	bits := float64(n) * 8
	sec := bits / float64(r)
	return time.Duration(sec * float64(time.Second))
}

// BytesIn returns how many whole bytes rate r delivers in d.
func (r Rate) BytesIn(d time.Duration) ByteSize {
	if r <= 0 || d <= 0 {
		return 0
	}
	bits := float64(r) * d.Seconds()
	return ByteSize(bits / 8)
}

// Scale returns r scaled by factor f.
func (r Rate) Scale(f float64) Rate {
	return Rate(math.Round(float64(r) * f))
}

// String formats the rate with an adaptive unit, e.g. "25.0 Mb/s".
func (r Rate) String() string {
	switch {
	case r >= GbitPerSec:
		return fmt.Sprintf("%.1f Gb/s", float64(r)/float64(GbitPerSec))
	case r >= MbitPerSec:
		return fmt.Sprintf("%.1f Mb/s", float64(r)/float64(MbitPerSec))
	case r >= KbitPerSec:
		return fmt.Sprintf("%.1f Kb/s", float64(r)/float64(KbitPerSec))
	default:
		return fmt.Sprintf("%d b/s", int64(r))
	}
}

// ByteSize is a size in bytes.
type ByteSize int64

// Common size constants.
const (
	Byte ByteSize = 1
	KB   ByteSize = 1_000
	MB   ByteSize = 1_000_000
)

// Bits returns the size in bits.
func (b ByteSize) Bits() int64 { return int64(b) * 8 }

// String formats the size with an adaptive unit, e.g. "510.0 KB".
func (b ByteSize) String() string {
	switch {
	case b >= MB:
		return fmt.Sprintf("%.1f MB", float64(b)/float64(MB))
	case b >= KB:
		return fmt.Sprintf("%.1f KB", float64(b)/float64(KB))
	default:
		return fmt.Sprintf("%d B", int64(b))
	}
}

// BDP returns the bandwidth-delay product in bytes for a bottleneck of the
// given rate and round-trip time. This mirrors the paper's definition: link
// capacity in bits per second multiplied by the round-trip time in seconds.
func BDP(rate Rate, rtt time.Duration) ByteSize {
	return rate.BytesIn(rtt)
}

// RateFromBytes returns the average rate of n bytes transferred over d.
func RateFromBytes(n ByteSize, d time.Duration) Rate {
	if d <= 0 {
		return 0
	}
	return Rate(float64(n.Bits()) / d.Seconds())
}
